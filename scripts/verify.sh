#!/usr/bin/env sh
# Tier-1 verification, runnable on a machine with no network and no
# vendored registry: the workspace has zero crates.io dependencies, so
# --offline must always succeed from a bare checkout.
set -eu

cd "$(dirname "$0")/.."

echo "== cargo build --release --offline =="
cargo build --release --offline

echo "== cargo test -q --offline =="
cargo test -q --offline

echo "== fault-injection smoke (rollback, checksum fallback, bit-identical resume) =="
cargo test -q --offline -p lasagne-train --test fault_injection

echo "== release CLI links with --resume/--max-recoveries/--clip-norm =="
cargo run --release --offline --bin lasagne-cli -- --list > /dev/null

echo "== determinism across thread counts (LASAGNE_THREADS=1 vs 4) =="
# The kernel suites under both pool sizes...
LASAGNE_THREADS=1 cargo test -q --offline -p lasagne-tensor -p lasagne-sparse
LASAGNE_THREADS=4 cargo test -q --offline -p lasagne-tensor -p lasagne-sparse
# ...and a short end-to-end training run: the saved checkpoints must be
# byte-identical (same JSON, same bits) whatever the thread count.
LASAGNE_THREADS=1 cargo run --release --offline --bin lasagne-cli -- \
    cora gcn --epochs 3 --save target/verify_t1.ckpt.json > /dev/null
LASAGNE_THREADS=4 cargo run --release --offline --bin lasagne-cli -- \
    cora gcn --epochs 3 --save target/verify_t4.ckpt.json > /dev/null
cmp target/verify_t1.ckpt.json target/verify_t4.ckpt.json

echo "== kernels bench smoke (tiny shapes, JSON artifact) =="
cargo run --release --offline -p lasagne-bench --bin kernels -- \
    --smoke --out target/BENCH_kernels.smoke.json > /dev/null
test -s target/BENCH_kernels.smoke.json

echo "verify: OK"
