#!/usr/bin/env sh
# Tier-1 verification, runnable on a machine with no network and no
# vendored registry: the workspace has zero crates.io dependencies, so
# --offline must always succeed from a bare checkout.
set -eu

cd "$(dirname "$0")/.."

echo "== cargo build --release --offline =="
cargo build --release --offline

echo "== cargo test -q --offline =="
cargo test -q --offline

echo "verify: OK"
