#!/usr/bin/env sh
# Tier-1 verification, runnable on a machine with no network and no
# vendored registry: the workspace has zero crates.io dependencies, so
# --offline must always succeed from a bare checkout.
set -eu

cd "$(dirname "$0")/.."

echo "== cargo build --release --offline =="
cargo build --release --offline

echo "== cargo test -q --offline =="
cargo test -q --offline

echo "== fault-injection smoke (rollback, checksum fallback, bit-identical resume) =="
cargo test -q --offline -p lasagne-train --test fault_injection

echo "== release CLI links with --resume/--max-recoveries/--clip-norm =="
cargo run --release --offline --bin lasagne-cli -- --list > /dev/null

echo "== determinism across thread counts (LASAGNE_THREADS=1 vs 4) =="
# The kernel suites under both pool sizes...
LASAGNE_THREADS=1 cargo test -q --offline -p lasagne-tensor -p lasagne-sparse
LASAGNE_THREADS=4 cargo test -q --offline -p lasagne-tensor -p lasagne-sparse
# ...and a short end-to-end training run: the saved checkpoints must be
# byte-identical (same JSON, same bits) whatever the thread count.
LASAGNE_THREADS=1 cargo run --release --offline --bin lasagne-cli -- \
    cora gcn --epochs 3 --save target/verify_t1.ckpt.json > /dev/null
LASAGNE_THREADS=4 cargo run --release --offline --bin lasagne-cli -- \
    cora gcn --epochs 3 --save target/verify_t4.ckpt.json > /dev/null
cmp target/verify_t1.ckpt.json target/verify_t4.ckpt.json

echo "== kernel equivalence: blocked kernels bitwise-equal pinned seed references =="
# The blocked/tiled matmul family and the column-blocked SpMM must compute
# bit-for-bit what the pre-blocking seed loops computed, at 1 and 4 pool
# threads (the suites additionally sweep thread counts internally).
LASAGNE_THREADS=1 cargo test -q --offline -p lasagne-tensor --test blocked_equiv
LASAGNE_THREADS=4 cargo test -q --offline -p lasagne-tensor --test blocked_equiv
LASAGNE_THREADS=1 cargo test -q --offline -p lasagne-sparse --test spmm_blocked
LASAGNE_THREADS=4 cargo test -q --offline -p lasagne-sparse --test spmm_blocked

echo "== gradcheck sweeps (13 baselines + Lasagne aggregators + GC-FM) =="
cargo test -q --offline -p lasagne-gnn --test gradcheck_models
cargo test -q --offline -p lasagne-core --test gradcheck_lasagne

echo "== MI golden tests (closed-form histogram + KSG cases) =="
cargo test -q --offline -p lasagne-mi --test golden

echo "== trace: artifact is valid and has the expected spans =="
rm -f target/verify_trace.ckpt.json
cargo run --release --offline --bin lasagne-cli -- \
    cora gcn --epochs 3 --resume target/verify_trace.ckpt.json \
    --trace-out target/verify_trace.jsonl --trace-summary > /dev/null
cargo run --release --offline -p lasagne-obs --bin tracecheck -- \
    target/verify_trace.jsonl

echo "== trace: deterministic artifacts are byte-identical across runs =="
rm -f target/verify_det.ckpt.json
cargo run --release --offline --bin lasagne-cli -- \
    cora gcn --epochs 3 --resume target/verify_det.ckpt.json \
    --trace-out target/verify_det_a.jsonl --trace-deterministic > /dev/null
rm -f target/verify_det.ckpt.json
cargo run --release --offline --bin lasagne-cli -- \
    cora gcn --epochs 3 --resume target/verify_det.ckpt.json \
    --trace-out target/verify_det_b.jsonl --trace-deterministic > /dev/null
cmp target/verify_det_a.jsonl target/verify_det_b.jsonl

echo "== trace: tracing does not perturb training (checkpoints bitwise equal) =="
cargo run --release --offline --bin lasagne-cli -- \
    cora gcn --epochs 3 --save target/verify_traced.ckpt.json \
    --trace-out target/verify_traced.jsonl > /dev/null
cmp target/verify_t1.ckpt.json target/verify_traced.ckpt.json

echo "== kernels bench smoke (tiny shapes, JSON artifact, disabled-span contract) =="
cargo run --release --offline -p lasagne-bench --bin kernels -- \
    --smoke --out target/BENCH_kernels.smoke.json > /dev/null
test -s target/BENCH_kernels.smoke.json

echo "== serve: frozen export is byte-deterministic (same run, same bytes) =="
cargo run --release --offline --bin lasagne-cli -- \
    cora gcn --epochs 3 --export target/verify_frozen_a.json > /dev/null
cargo run --release --offline --bin lasagne-cli -- \
    cora gcn --epochs 3 --export target/verify_frozen_b.json > /dev/null
cmp target/verify_frozen_a.json target/verify_frozen_b.json

echo "== serve: live server conforms to the wire protocol =="
cargo run --release --offline --bin lasagne-cli -- \
    serve --frozen target/verify_frozen_a.json --port 17878 > /dev/null &
SERVE_PID=$!
# The --check drive retries its connect, so no sleep-and-hope here; it
# sends well-formed, malformed, and out-of-range requests and asserts
# every typed response, then --shutdown stops the server cleanly.
cargo run --release --offline -p lasagne-bench --bin serve-bench -- \
    --check --addr 127.0.0.1:17878
cargo run --release --offline -p lasagne-bench --bin serve-bench -- \
    --shutdown --addr 127.0.0.1:17878
wait "$SERVE_PID"

echo "== serve: quantized export + serve smoke (opt-in path, DESIGN.md 13) =="
# The i8 artifact must be byte-deterministic, strictly smaller than the
# exact f32 artifact, refused by a plain `serve`, and served cleanly under
# `serve --quantized` (protocol check included). The logit-tolerance and
# bitwise fused-kernel contracts are covered by the dedicated suite.
cargo test -q --offline -p lasagne-serve --test quantized
cargo run --release --offline --bin lasagne-cli -- \
    cora gcn --epochs 3 --export-quantized target/verify_quant_a.json > /dev/null
cargo run --release --offline --bin lasagne-cli -- \
    cora gcn --epochs 3 --export-quantized target/verify_quant_b.json > /dev/null
cmp target/verify_quant_a.json target/verify_quant_b.json
F32_BYTES=$(wc -c < target/verify_frozen_a.json)
QUANT_BYTES=$(wc -c < target/verify_quant_a.json)
test "$QUANT_BYTES" -lt "$F32_BYTES"
if cargo run --release --offline --bin lasagne-cli -- \
    serve --frozen target/verify_quant_a.json --port 17880 > /dev/null 2>&1; then
  echo "serving a quantized artifact without --quantized must be refused"; exit 1
fi
cargo run --release --offline --bin lasagne-cli -- \
    serve --frozen target/verify_quant_a.json --quantized --port 17880 > /dev/null &
QUANT_PID=$!
cargo run --release --offline -p lasagne-bench --bin serve-bench -- \
    --check --addr 127.0.0.1:17880
cargo run --release --offline -p lasagne-bench --bin serve-bench -- \
    --shutdown --addr 127.0.0.1:17880
wait "$QUANT_PID"

echo "== serve bench smoke (in-process server, 1/8/64 clients, saturation knee, JSON artifact) =="
cargo run --release --offline -p lasagne-bench --bin serve-bench -- \
    --smoke --out target/BENCH_serve.smoke.json > /dev/null
test -s target/BENCH_serve.smoke.json

echo "== overload contract: bounded admission, deadlines, hot swap, protocol fuzz =="
cargo test -q --offline -p lasagne-serve --test overload

echo "== overload soak: 30s flood at 4x the knee with chaos clients, hot swap mid-flood =="
# Pass criteria enforced by the binary (DESIGN.md §12): zero untyped
# failures under flood + garbage + slowloris + hangups, health p99 < 5ms
# on the fast path throughout, the mid-soak swap installs atomically, and
# shutdown drains cleanly.
cargo run --release --offline -p lasagne-bench --bin serve-bench -- \
    --soak --duration-s 30

echo "== streaming: bitwise property suites (delta layer + live-vs-cold engines) =="
cargo test -q --offline -p lasagne-sparse --test delta
cargo test -q --offline -p lasagne-sparse --test transpose_cache_delta
cargo test -q --offline -p lasagne-serve --test streaming_equiv
cargo test -q --offline -p lasagne-serve --test server_robustness

echo "== streaming: live mutated server is bitwise-equal to an always-cold engine =="
# The drive replays a scripted mutation session over TCP against a server
# running the incremental path, then dumps every node's prediction bits.
# The reference replays the identical script on a local engine pinned to
# compact_every=1 (every mutation is a from-scratch recompute). cmp of the
# two dumps is the end-to-end exactness check of DESIGN.md §11.
cargo run --release --offline --bin lasagne-cli -- \
    serve --frozen target/verify_frozen_a.json --port 17879 > /dev/null &
STREAM_PID=$!
cargo run --release --offline -p lasagne-bench --bin streaming-bench -- \
    --drive --addr 127.0.0.1:17879 --seed 7 --mutations 40 \
    --out target/verify_stream_drive.txt
cargo run --release --offline -p lasagne-bench --bin serve-bench -- \
    --shutdown --addr 127.0.0.1:17879
wait "$STREAM_PID"
cargo run --release --offline -p lasagne-bench --bin streaming-bench -- \
    --reference --frozen target/verify_frozen_a.json --seed 7 --mutations 40 \
    --out target/verify_stream_reference.txt
cmp target/verify_stream_drive.txt target/verify_stream_reference.txt

echo "== streaming bench smoke (latency vs dirty-set size, JSON artifact) =="
cargo run --release --offline -p lasagne-bench --bin streaming-bench -- \
    --smoke --out target/BENCH_streaming.smoke.json > /dev/null
test -s target/BENCH_streaming.smoke.json

echo "== partitioning: property suite + equivalence harnesses at 1 and 4 threads =="
# The partition-equivalence contract (DESIGN.md §14): partitioned eval,
# streamed out-of-core training, and lazy partitioned serving are bitwise
# identical to the resident paths, at both pool sizes; corrupted partition
# blocks always fail typed.
LASAGNE_THREADS=1 cargo test -q --offline -p lasagne-graph --test partition
LASAGNE_THREADS=4 cargo test -q --offline -p lasagne-graph --test partition
LASAGNE_THREADS=1 cargo test -q --offline -p lasagne-train --test partition_equiv
LASAGNE_THREADS=4 cargo test -q --offline -p lasagne-train --test partition_equiv
cargo test -q --offline -p lasagne-train --test partition_faults
LASAGNE_THREADS=1 cargo test -q --offline -p lasagne-serve --test partition_equiv
LASAGNE_THREADS=4 cargo test -q --offline -p lasagne-serve --test partition_equiv

echo "== partitioned serving: lazy server conforms to the wire protocol =="
cargo run --release --offline --bin lasagne-cli -- \
    serve --frozen target/verify_frozen_a.json --partitions 4 --port 17881 > /dev/null &
LAZY_PID=$!
cargo run --release --offline -p lasagne-bench --bin serve-bench -- \
    --check --addr 127.0.0.1:17881
cargo run --release --offline -p lasagne-bench --bin serve-bench -- \
    --shutdown --addr 127.0.0.1:17881
wait "$LAZY_PID"

echo "== scale bench smoke (per-mode child processes, peak-RSS regression guard) =="
# Exits non-zero unless partitioned peak RSS is strictly below resident
# peak RSS on the largest smoke graph — the out-of-core memory claim,
# measured, not asserted.
cargo run --release --offline -p lasagne-bench --bin scale-bench -- \
    --smoke --out target/BENCH_scale.smoke.json
test -s target/BENCH_scale.smoke.json

echo "== rec: edge-data, gated-model, and serving suites at 1 and 4 threads =="
# The recommendation contract (DESIGN.md §15): edge features stay aligned
# through deltas and gathers, the gate is gradient-checked, per-edge
# attributes are bitwise seed-deterministic, and frozen `recommend` is
# bitwise the training-side ranker at both pool sizes.
cargo test -q --offline -p lasagne-sparse --test edgedata
cargo test -q --offline -p lasagne-graph --test bipartite_attrs
LASAGNE_THREADS=1 cargo test -q --offline -p lasagne-serve --test frozen_forward
LASAGNE_THREADS=4 cargo test -q --offline -p lasagne-serve --test frozen_forward
LASAGNE_THREADS=1 cargo test -q --offline -p lasagne-serve --test rec_serving
LASAGNE_THREADS=4 cargo test -q --offline -p lasagne-serve --test rec_serving

echo "== rec: exported artifact is byte-deterministic =="
cargo run --release --offline --bin lasagne-cli -- \
    rec --epochs 3 --export target/verify_rec_a.json > /dev/null
cargo run --release --offline --bin lasagne-cli -- \
    rec --epochs 3 --export target/verify_rec_b.json > /dev/null
cmp target/verify_rec_a.json target/verify_rec_b.json

echo "== rec: live server conforms to the recommend protocol =="
# The check regenerates the dataset from the same seed and asserts slate
# shape (sorted, deduped, never a seen item), plus typed refusals for
# k=0, item ids, and out-of-range nodes — against a real TCP server.
cargo run --release --offline --bin lasagne-cli -- \
    serve --frozen target/verify_rec_a.json --port 17882 > /dev/null &
REC_PID=$!
cargo run --release --offline -p lasagne-bench --bin rec-bench -- \
    --check --addr 127.0.0.1:17882 --seed 0
cargo run --release --offline -p lasagne-bench --bin serve-bench -- \
    --shutdown --addr 127.0.0.1:17882
wait "$REC_PID"

echo "== rec: classification server refuses recommend typed =="
cargo run --release --offline --bin lasagne-cli -- \
    serve --frozen target/verify_frozen_a.json --port 17883 > /dev/null &
CLS_PID=$!
cargo run --release --offline -p lasagne-bench --bin rec-bench -- \
    --expect-not-recommender --addr 127.0.0.1:17883
cargo run --release --offline -p lasagne-bench --bin serve-bench -- \
    --shutdown --addr 127.0.0.1:17883
wait "$CLS_PID"

echo "== rec bench smoke (hit-rate@10 must beat popularity, JSON artifact) =="
cargo run --release --offline -p lasagne-bench --bin rec-bench -- \
    --smoke --out target/BENCH_rec.smoke.json > /dev/null
test -s target/BENCH_rec.smoke.json

echo "verify: OK"
