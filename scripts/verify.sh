#!/usr/bin/env sh
# Tier-1 verification, runnable on a machine with no network and no
# vendored registry: the workspace has zero crates.io dependencies, so
# --offline must always succeed from a bare checkout.
set -eu

cd "$(dirname "$0")/.."

echo "== cargo build --release --offline =="
cargo build --release --offline

echo "== cargo test -q --offline =="
cargo test -q --offline

echo "== fault-injection smoke (rollback, checksum fallback, bit-identical resume) =="
cargo test -q --offline -p lasagne-train --test fault_injection

echo "== release CLI links with --resume/--max-recoveries/--clip-norm =="
cargo run --release --offline --bin lasagne-cli -- --list > /dev/null

echo "verify: OK"
