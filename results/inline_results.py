#!/usr/bin/env python3
"""Inline the measured results (results/*.txt) into EXPERIMENTS.md at the
<!-- MARKER --> placeholders, wrapped in code fences."""
import pathlib

ROOT = pathlib.Path(__file__).resolve().parent.parent
MARKERS = {
    "TABLE3": "table3.txt",
    "TABLE4": "table4.txt",
    "TABLE5": "table5.txt",
    "TABLE6": "table6.txt",
    "TABLE7": "table7.txt",
    "TABLE8": "table8.txt",
    "FIG2": "fig2.txt",
    "FIG5": "fig5.txt",
    "FIG6": "fig6.txt",
    "FIG7": "fig7.txt",
    "LOCALITY": "locality.txt",
    "ABLATION": "ablation.txt",
}

doc = (ROOT / "EXPERIMENTS.md").read_text()
for marker, fname in MARKERS.items():
    path = ROOT / "results" / fname
    tag = f"<!-- {marker} -->"
    if tag not in doc:
        continue
    if path.exists() and path.stat().st_size > 0:
        lines = [
            l for l in path.read_text().splitlines()
            if not l.startswith("===") and l.strip() not in ("done", "FAILED")
        ]
        body = "\n".join(lines).strip("\n")
        block = f"```text\n{body}\n```"
    else:
        block = "_not recorded in this run_"
    doc = doc.replace(tag, block)
(ROOT / "EXPERIMENTS.md").write_text(doc)
print("inlined")
