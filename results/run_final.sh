#!/bin/bash
# Final touch-ups after the second pass: fig6 with the hidden-layer probe.
cd /root/repo
export LASAGNE_SEEDS=2 LASAGNE_EPOCHS=150
target/release/fig6 > results/fig6.txt 2> results/fig6.log && echo done-fig6
