#!/bin/bash
# Regenerate every paper artifact into results/*.txt.
#
# Knobs: LASAGNE_SEEDS (default 2 here; paper uses 10), LASAGNE_EPOCHS
# (default 150; paper uses 400), LASAGNE_FIG5_DATASETS (comma list).
# Full run takes a few hours on one CPU core; see EXPERIMENTS.md for the
# settings used in the recorded run.
cd "$(dirname "$0")/.."
export LASAGNE_SEEDS=${LASAGNE_SEEDS:-2}
export LASAGNE_EPOCHS=${LASAGNE_EPOCHS:-150}
BIN=target/release
cargo build --release -p lasagne-bench
for t in table3 table4 table5 table6 table7 table8 fig2 fig5 fig6 fig7 locality ablation; do
  echo "=== $t ($(date +%H:%M:%S)) ==="
  if $BIN/$t > results/$t.txt 2> results/$t.log; then echo "done $t"; else echo "FAILED $t"; fi
done
python3 results/inline_results.py
echo "ALL DONE $(date +%H:%M:%S)"
