#!/bin/bash
# Second pass: artifacts not yet recorded + reruns affected by the
# multi-head GAT / PCA-MI / locality fixes. Ordered so every table records.
cd /root/repo
export LASAGNE_SEEDS=${LASAGNE_SEEDS:-2}
export LASAGNE_EPOCHS=${LASAGNE_EPOCHS:-150}
BIN=target/release
run() { echo "=== $1 ($(date +%H:%M:%S)) ==="; shift; "$@" && echo "done" || echo "FAILED"; }
run fig2     $BIN/fig2      > results/fig2.txt     2> results/fig2.log
run fig6     $BIN/fig6      > results/fig6.txt     2> results/fig6.log
run locality $BIN/locality  > results/locality.txt 2> results/locality.log
run fig7     $BIN/fig7      > results/fig7.txt     2> results/fig7.log
run table4   $BIN/table4    > results/table4.txt   2> results/table4.log
run ablation $BIN/ablation  > results/ablation.txt 2> results/ablation.log
run table5   $BIN/table5    > results/table5.txt   2> results/table5.log
run table8   $BIN/table8    > results/table8.txt   2> results/table8.log
run fig5     env LASAGNE_SEEDS=1 LASAGNE_FIG5_DATASETS=cora,citeseer,pubmed $BIN/fig5 > results/fig5.txt 2> results/fig5.log
run table3   $BIN/table3    > results/table3.txt   2> results/table3.log
echo "REMAINING DONE $(date +%H:%M:%S)"
