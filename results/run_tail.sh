#!/bin/bash
cd /root/repo
BIN=target/release
export LASAGNE_EPOCHS=120
echo "table5 $(date +%H:%M:%S)"
LASAGNE_SEEDS=1 $BIN/table5 > results/table5.txt 2> results/table5.log
echo "table8 $(date +%H:%M:%S)"
LASAGNE_SEEDS=1 $BIN/table8 > results/table8.txt 2> results/table8.log
echo "fig5 $(date +%H:%M:%S)"
LASAGNE_SEEDS=1 LASAGNE_FIG5_DATASETS=cora,citeseer $BIN/fig5 > results/fig5.txt 2> results/fig5.log
echo "fig6 $(date +%H:%M:%S)"
LASAGNE_SEEDS=2 $BIN/fig6 > results/fig6.txt 2> results/fig6.log
echo "TAIL DONE $(date +%H:%M:%S)"
