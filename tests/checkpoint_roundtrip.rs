//! Integration test: persist a trained Lasagne model and reload it into a
//! fresh instance — evaluation logits must be bit-identical.

use lasagne::prelude::*;
use lasagne_train::{evaluate, load_params, save_params};

#[test]
fn trained_lasagne_round_trips_through_checkpoint() {
    let ds = Dataset::generate(DatasetId::Cora, 9);
    let ctx = GraphContext::from_dataset(&ds);
    let hyper = Hyper::for_dataset(DatasetId::Cora).with_depth(4);
    let cfg = LasagneConfig::from_hyper(&hyper, AggregatorKind::Weighted);

    // Train briefly.
    let mut model = Lasagne::new(ds.num_features(), ds.num_classes, Some(ds.num_nodes()), &cfg, 9);
    let mut strat = FullBatch::from_dataset(&ds);
    let mut rng = TensorRng::seed_from_u64(9);
    let train_cfg = TrainConfig { max_epochs: 15, ..TrainConfig::from_hyper(&hyper) };
    let _ = fit(&mut model, &mut strat, &ctx, &ds.split, &train_cfg, &mut rng);

    // Save → rebuild with the same config/seed topology → load.
    let path = std::env::temp_dir().join(format!("lasagne-it-{}.json", std::process::id()));
    save_params(model.store(), &path).expect("save");
    let mut reloaded =
        Lasagne::new(ds.num_features(), ds.num_classes, Some(ds.num_nodes()), &cfg, 1234);
    // Different init seed ⇒ different logits before loading…
    let before = evaluate(&reloaded, &ctx, &mut rng);
    let original = evaluate(&model, &ctx, &mut rng);
    assert!(!before.approx_eq(&original, 1e-6));
    // …identical after.
    load_params(reloaded.store_mut(), &path).expect("load");
    let after = evaluate(&reloaded, &ctx, &mut rng);
    assert!(after.approx_eq(&original, 0.0), "checkpoint must restore exact weights");
    let _ = std::fs::remove_file(path);
}
