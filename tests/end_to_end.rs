//! Cross-crate integration tests: dataset → context → model → trainer →
//! metrics, exercising the public API the examples and benches use.

use lasagne::prelude::*;

fn quick_cfg(hyper: &Hyper, epochs: usize) -> TrainConfig {
    TrainConfig {
        max_epochs: epochs,
        patience: 20,
        ..TrainConfig::from_hyper(hyper)
    }
}

#[test]
fn gcn_pipeline_beats_majority_class() {
    let ds = Dataset::generate(DatasetId::Cora, 0);
    let hyper = Hyper::for_dataset(DatasetId::Cora);
    let ctx = GraphContext::from_dataset(&ds);
    let mut model = models::Gcn::new(ds.num_features(), ds.num_classes, &hyper, 0);
    let mut strat = FullBatch::from_dataset(&ds);
    let mut rng = TensorRng::seed_from_u64(0);
    let r = fit(&mut model, &mut strat, &ctx, &ds.split, &quick_cfg(&hyper, 80), &mut rng);
    assert!(
        r.test_acc > ds.majority_baseline() + 0.25,
        "GCN {:.3} vs majority {:.3}",
        r.test_acc,
        ds.majority_baseline()
    );
}

#[test]
fn lasagne_all_aggregators_train_end_to_end() {
    let ds = Dataset::generate(DatasetId::Cora, 1);
    let hyper = Hyper::for_dataset(DatasetId::Cora).with_depth(4);
    let ctx = GraphContext::from_dataset(&ds);
    for agg in AggregatorKind::all() {
        let cfg = LasagneConfig::from_hyper(&hyper, agg);
        let mut model = Lasagne::new(
            ds.num_features(),
            ds.num_classes,
            Some(ds.num_nodes()),
            &cfg,
            1,
        );
        let mut strat = FullBatch::from_dataset(&ds);
        let mut rng = TensorRng::seed_from_u64(1);
        let r = fit(&mut model, &mut strat, &ctx, &ds.split, &quick_cfg(&hyper, 60), &mut rng);
        assert!(
            r.test_acc > 0.5,
            "Lasagne({}) test accuracy {:.3} too low",
            agg.label(),
            r.test_acc
        );
    }
}

#[test]
fn deep_lasagne_survives_where_deep_gcn_collapses() {
    // The headline claim of the paper, as an invariant: at depth 8 on a
    // hub-heavy graph, Lasagne's accuracy stays far above vanilla GCN's.
    let ds = Dataset::generate(DatasetId::Cora, 2);
    let hyper = Hyper::for_dataset(DatasetId::Cora).with_depth(8);
    let ctx = GraphContext::from_dataset(&ds);
    let cfg_train = quick_cfg(&hyper, 100);
    let mut rng = TensorRng::seed_from_u64(2);

    let mut gcn = models::Gcn::new(ds.num_features(), ds.num_classes, &hyper, 2);
    let mut strat = FullBatch::from_dataset(&ds);
    let r_gcn = fit(&mut gcn, &mut strat, &ctx, &ds.split, &cfg_train, &mut rng);

    let cfg = LasagneConfig::from_hyper(&hyper, AggregatorKind::Weighted);
    let mut las = Lasagne::new(ds.num_features(), ds.num_classes, Some(ds.num_nodes()), &cfg, 2);
    let mut strat = FullBatch::from_dataset(&ds);
    let r_las = fit(&mut las, &mut strat, &ctx, &ds.split, &cfg_train, &mut rng);

    assert!(
        r_las.test_acc > r_gcn.test_acc + 0.03,
        "depth-8: Lasagne {:.3} must clearly beat GCN {:.3}",
        r_las.test_acc,
        r_gcn.test_acc
    );
}

#[test]
fn inductive_training_never_sees_test_nodes() {
    let ds = Dataset::generate(DatasetId::Flickr, 0);
    let view = ds.inductive_train_view();
    // No validation or test node leaks into the training view.
    let train_set: std::collections::HashSet<usize> = ds.split.train.iter().copied().collect();
    for &orig in &view.original_ids {
        assert!(train_set.contains(&orig));
    }

    // An inductive-capable model trained on the view evaluates on the full
    // graph and beats chance.
    let hyper = Hyper::for_dataset(DatasetId::Flickr);
    let train_ctx = GraphContext::new(
        &view.graph,
        view.features.clone(),
        view.labels.clone(),
        ds.num_classes,
    );
    let eval_ctx = GraphContext::from_dataset(&ds);
    let mut model = models::GraphSage::new(ds.num_features(), ds.num_classes, &hyper, 0);
    let mut strat = FullBatch::new(train_ctx, (0..view.graph.num_nodes()).collect());
    let mut rng = TensorRng::seed_from_u64(0);
    let r = fit(&mut model, &mut strat, &eval_ctx, &ds.split, &quick_cfg(&hyper, 40), &mut rng);
    assert!(r.test_acc > 1.5 / ds.num_classes as f64, "inductive acc {:.3}", r.test_acc);
}

#[test]
fn cluster_and_saint_strategies_train_models() {
    let ds = Dataset::generate(DatasetId::Cora, 3);
    let hyper = Hyper::for_dataset(DatasetId::Cora);
    let ctx = GraphContext::from_dataset(&ds);
    let mut rng = TensorRng::seed_from_u64(3);

    let mut m1 = models::Gcn::new(ds.num_features(), ds.num_classes, &hyper, 3);
    let mut cluster = ClusterBatches::new(&ds, 8, &mut rng);
    let r1 = fit(&mut m1, &mut cluster, &ctx, &ds.split, &quick_cfg(&hyper, 60), &mut rng);
    assert!(r1.test_acc > ds.majority_baseline() + 0.15, "clustergcn {:.3}", r1.test_acc);

    let mut m2 = models::Gcn::new(ds.num_features(), ds.num_classes, &hyper, 3);
    let mut saint = SaintNodeSampler::new(&ds, 1200);
    let r2 = fit(&mut m2, &mut saint, &ctx, &ds.split, &quick_cfg(&hyper, 60), &mut rng);
    assert!(r2.test_acc > ds.majority_baseline() + 0.15, "graphsaint {:.3}", r2.test_acc);
}

#[test]
fn mi_analysis_detects_oversmoothing_in_deep_gcn() {
    // Fig 2's core signal as an invariant: for a converged deep GCN the
    // last layer's MI with X is below the first hidden layer's.
    let ds = Dataset::generate(DatasetId::Cora, 4);
    let hyper = Hyper::for_dataset(DatasetId::Cora).with_depth(8);
    let ctx = GraphContext::from_dataset(&ds);
    let mut model = models::Gcn::new(ds.num_features(), ds.num_classes, &hyper, 4);
    let mut strat = FullBatch::from_dataset(&ds);
    let mut rng = TensorRng::seed_from_u64(4);
    let _ = fit(&mut model, &mut strat, &ctx, &ds.split, &quick_cfg(&hyper, 80), &mut rng);

    let mut tape = Tape::new();
    let (_, hiddens) = model.forward_with_hiddens(&mut tape, &ctx, Mode::Eval, &mut rng);
    let est = MiEstimator { max_samples: 500, ..Default::default() };
    let mut mi_rng = TensorRng::seed_from_u64(0);
    let first = est.estimate(tape.value(hiddens[0]), &ctx.features, &mut mi_rng);
    let last = est.estimate(tape.value(*hiddens.last().unwrap()), &ctx.features, &mut mi_rng);
    assert!(
        last < first,
        "over-smoothing: MI must decay with depth (first {first:.3}, last {last:.3})"
    );
}

#[test]
fn experiment_runner_aggregates_deterministically() {
    let ds = Dataset::generate(DatasetId::Cora, 5);
    let hyper = Hyper::for_dataset(DatasetId::Cora);
    let ctx = GraphContext::from_dataset(&ds);
    let one = |seed: u64| {
        let mut m = models::Gcn::new(ds.num_features(), ds.num_classes, &hyper, seed);
        let mut strat = FullBatch::from_dataset(&ds);
        let mut rng = TensorRng::seed_from_u64(seed);
        fit(&mut m, &mut strat, &ctx, &ds.split, &quick_cfg(&hyper, 30), &mut rng)
    };
    let a = run_seeds(2, 7, one);
    let b = run_seeds(2, 7, one);
    assert_eq!(a.accs, b.accs, "same seeds must reproduce identical results");
    assert!(a.std >= 0.0);
}
