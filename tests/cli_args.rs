//! Smoke tests for CLI argument-error reporting: a bad flag value must
//! name **both** the flag and the offending value (exit code 2), not just
//! dump the usage text — that's the difference between "what did I typo"
//! and re-reading the whole synopsis.

use std::process::{Command, Output};

fn run(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_lasagne-cli"))
        .args(args)
        .output()
        .expect("spawn lasagne-cli")
}

fn stderr(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

#[test]
fn bad_flag_value_names_flag_and_value() {
    let out = run(&["cora", "gcn", "--epochs", "abc"]);
    assert_eq!(out.status.code(), Some(2));
    let err = stderr(&out);
    assert!(
        err.contains("--epochs: invalid value 'abc'"),
        "stderr must name the flag and value, got:\n{err}"
    );
}

#[test]
fn missing_flag_value_is_reported() {
    let out = run(&["cora", "gcn", "--epochs"]);
    assert_eq!(out.status.code(), Some(2));
    let err = stderr(&out);
    assert!(err.contains("--epochs: missing value"), "got:\n{err}");
}

#[test]
fn unknown_flag_is_reported_by_name() {
    let out = run(&["cora", "gcn", "--florp", "3"]);
    assert_eq!(out.status.code(), Some(2));
    let err = stderr(&out);
    assert!(err.contains("unknown flag '--florp'"), "got:\n{err}");
}

#[test]
fn serve_requires_frozen_path() {
    let out = run(&["serve", "--port", "7878"]);
    assert_eq!(out.status.code(), Some(2));
    let err = stderr(&out);
    assert!(err.contains("missing required --frozen"), "got:\n{err}");
}

#[test]
fn serve_rejects_bad_port() {
    let out = run(&["serve", "--frozen", "x.json", "--port", "99999"]);
    assert_eq!(out.status.code(), Some(2));
    let err = stderr(&out);
    assert!(err.contains("--port: invalid value '99999'"), "got:\n{err}");
}
