//! Regression test: the whole stack — dataset generation, parameter init,
//! the training loop, and the JSON checkpoint writer — is a pure function
//! of the seed. Two identical runs must agree *bitwise*, not just
//! approximately; anything less means the in-workspace PRNG or the
//! serializer leaked nondeterminism.

use lasagne::prelude::*;
use lasagne_train::save_params;

struct RunArtifacts {
    loss_bits: Vec<u32>,
    val_acc_bits: Vec<u64>,
    checkpoint: Vec<u8>,
}

fn train_once(tag: &str) -> RunArtifacts {
    let ds = Dataset::generate(DatasetId::Cora, 7);
    let ctx = GraphContext::from_dataset(&ds);
    let hyper = Hyper::for_dataset(DatasetId::Cora);
    let mut model = models::Gcn::new(ds.num_features(), ds.num_classes, &hyper, 7);
    let mut strat = FullBatch::from_dataset(&ds);
    let mut rng = TensorRng::seed_from_u64(7);
    let cfg = TrainConfig { max_epochs: 5, patience: 50, ..TrainConfig::from_hyper(&hyper) };
    let result = fit(&mut model, &mut strat, &ctx, &ds.split, &cfg, &mut rng);
    assert_eq!(result.epochs, 5);

    let path = std::env::temp_dir()
        .join(format!("lasagne-det-{tag}-{}.json", std::process::id()));
    save_params(model.store(), &path).expect("save");
    let checkpoint = std::fs::read(&path).expect("read back");
    let _ = std::fs::remove_file(&path);

    RunArtifacts {
        loss_bits: result.history.iter().map(|e| e.loss.to_bits()).collect(),
        val_acc_bits: result
            .history
            .iter()
            .filter_map(|e| e.val_acc.map(f64::to_bits))
            .collect(),
        checkpoint,
    }
}

#[test]
fn same_seed_training_is_bitwise_reproducible() {
    let a = train_once("a");
    let b = train_once("b");
    assert_eq!(a.loss_bits, b.loss_bits, "per-epoch losses must be bit-identical");
    assert_eq!(a.val_acc_bits, b.val_acc_bits, "validation accuracies must be bit-identical");
    assert_eq!(a.checkpoint, b.checkpoint, "checkpoint bytes must be identical");
    assert!(!a.checkpoint.is_empty());
}

#[test]
fn different_seeds_actually_diverge() {
    // Guard against the degenerate "deterministic because the RNG is
    // ignored" failure mode: a different seed must change the trajectory.
    let a = train_once("c");
    let ds = Dataset::generate(DatasetId::Cora, 7);
    let ctx = GraphContext::from_dataset(&ds);
    let hyper = Hyper::for_dataset(DatasetId::Cora);
    let mut model = models::Gcn::new(ds.num_features(), ds.num_classes, &hyper, 8);
    let mut strat = FullBatch::from_dataset(&ds);
    let mut rng = TensorRng::seed_from_u64(8);
    let cfg = TrainConfig { max_epochs: 5, patience: 50, ..TrainConfig::from_hyper(&hyper) };
    let result = fit(&mut model, &mut strat, &ctx, &ds.split, &cfg, &mut rng);
    let other: Vec<u32> = result.history.iter().map(|e| e.loss.to_bits()).collect();
    assert_ne!(a.loss_bits, other, "changing the seed must change the loss trajectory");
}
