//! Integration test: every synthetic dataset matches the statistics its
//! spec promises (the Table 2 substitution contract of DESIGN.md §3).

use lasagne::prelude::*;
use lasagne_graph::degree_stats;

/// The spec is the contract: node counts exact, mean degree within 25%,
/// homophily within 0.1, splits exactly sized and disjoint.
fn check(id: DatasetId) {
    let ds = Dataset::generate(id, 0);
    let spec = &ds.spec;
    assert_eq!(ds.num_nodes(), spec.nodes, "{id}: node count");
    assert_eq!(ds.num_classes, spec.classes, "{id}: class count");
    assert_eq!(ds.num_features(), spec.features, "{id}: feature dim");

    let deg = ds.graph.average_degree();
    assert!(
        (deg - spec.avg_degree).abs() / spec.avg_degree < 0.25,
        "{id}: avg degree {deg:.2} vs target {}",
        spec.avg_degree
    );

    // Homophily only meaningful where labels drive edges directly
    // (the bipartite Tencent graph plants preference structure instead).
    if id != DatasetId::Tencent {
        let h = ds.graph.edge_homophily(&ds.labels);
        assert!(
            (h - spec.homophily).abs() < 0.1,
            "{id}: homophily {h:.3} vs target {}",
            spec.homophily
        );
    }

    assert_eq!(ds.split.train.len(), spec.train, "{id}: train size");
    assert_eq!(ds.split.val.len(), spec.val, "{id}: val size");
    assert_eq!(ds.split.test.len(), spec.test, "{id}: test size");
    ds.split.validate(ds.num_nodes());

    // The locality story needs hubs: heavy-tailed degree distribution.
    let stats = degree_stats(&ds.graph);
    assert!(
        stats.max as f64 > 5.0 * stats.mean,
        "{id}: max degree {} vs mean {:.1} — no hubs",
        stats.max,
        stats.mean
    );
}

#[test]
fn citation_datasets_match_their_specs() {
    for id in DatasetId::citation() {
        check(id);
    }
}

#[test]
fn remaining_transductive_datasets_match_their_specs() {
    for id in [
        DatasetId::Nell,
        DatasetId::AmazonComputer,
        DatasetId::AmazonPhoto,
        DatasetId::CoauthorCs,
        DatasetId::CoauthorPhysics,
        DatasetId::Tencent,
    ] {
        check(id);
    }
}

#[test]
fn inductive_datasets_match_their_specs() {
    for id in [DatasetId::Flickr, DatasetId::Reddit] {
        check(id);
    }
}

#[test]
fn paper_statistics_are_recorded_for_every_dataset() {
    // The substitution table must carry the original Table 2 numbers.
    for id in DatasetId::all() {
        let s = lasagne_datasets::spec(id);
        assert!(s.paper_nodes >= s.nodes, "{id}: paper nodes not recorded");
        assert!(s.paper_classes >= s.classes);
        assert!(s.paper_features >= s.features);
        assert!(s.paper_edges > 0);
    }
}
