//! Golden tests pinning both MI estimators against closed-form cases.
//!
//! The histogram (plug-in) estimator is *exactly* computable on lattice
//! inputs whose bin probabilities are powers of two — the f64 arithmetic
//! inside `histogram_mi_2d` incurs no rounding there, so those cases are
//! pinned tightly. The KSG estimator is a finite-sample kNN method; its
//! goldens are the bivariate-Gaussian closed form `I = −½ ln(1 − ρ²)`
//! within the estimator's known bias envelope, plus the two limits
//! (independence → 0, near-functional dependence → saturation).

use lasagne_mi::{histogram_entropy_1d, histogram_mi_2d, ksg_mi};
use lasagne_tensor::{Tensor, TensorRng};

const BINS: usize = 8;

/// One sample per cell of the `BINS × BINS` product lattice.
fn product_grid() -> (Vec<f32>, Vec<f32>) {
    let mut xs = Vec::with_capacity(BINS * BINS);
    let mut ys = Vec::with_capacity(BINS * BINS);
    for i in 0..BINS {
        for j in 0..BINS {
            xs.push(i as f32);
            ys.push(j as f32);
        }
    }
    (xs, ys)
}

#[test]
fn histogram_mi_product_grid_is_exactly_zero() {
    // Joint = product of marginals ⇒ every term is p·ln(1). With 64
    // samples and 8 bins all probabilities are exact binary fractions, so
    // the estimator returns a literal 0.0, not merely something small.
    let (xs, ys) = product_grid();
    assert_eq!(histogram_mi_2d(&xs, &ys, BINS), 0.0);
}

#[test]
fn histogram_mi_diagonal_grid_is_log_bins() {
    // y = x on an 8-level lattice: the joint is diagonal, so
    // I = H(X) = ln 8. Diagonal mass 1/8 and marginals 1/8 are exact, so
    // only the final `ln` and the f64→f32 cast can deviate.
    let xs: Vec<f32> = (0..8 * BINS).map(|i| (i % BINS) as f32).collect();
    let mi = histogram_mi_2d(&xs, &xs, BINS);
    assert!((mi - (BINS as f32).ln()).abs() < 1e-6, "I = {mi}");
}

#[test]
fn histogram_entropy_uniform_grid_is_log_bins() {
    let xs: Vec<f32> = (0..8 * BINS).map(|i| (i % BINS) as f32).collect();
    let h = histogram_entropy_1d(&xs, BINS);
    assert!((h - (BINS as f32).ln()).abs() < 1e-6, "H = {h}");
}

#[test]
fn histogram_mi_never_exceeds_min_marginal_entropy() {
    // I(X;Y) ≤ min(H(X), H(Y)) — checked on a skewed lattice where the
    // bound is not tight, as a guard against sign/normalization slips.
    let xs: Vec<f32> = (0..512).map(|i| ((i * i) % 97) as f32).collect();
    let ys: Vec<f32> = (0..512).map(|i| ((i * 7) % 31) as f32).collect();
    let mi = histogram_mi_2d(&xs, &ys, BINS);
    let bound = histogram_entropy_1d(&xs, BINS).min(histogram_entropy_1d(&ys, BINS));
    assert!(mi >= 0.0 && mi <= bound + 1e-6, "I {mi} vs bound {bound}");
}

fn gaussian_pair(n: usize, rho: f32, seed: u64) -> (Tensor, Tensor) {
    let mut rng = TensorRng::seed_from_u64(seed);
    let mut xs = Vec::with_capacity(n);
    let mut ys = Vec::with_capacity(n);
    for _ in 0..n {
        let a = rng.normal();
        let b = rng.normal();
        xs.push(a);
        ys.push(rho * a + (1.0 - rho * rho).sqrt() * b);
    }
    (Tensor::col_vector(&xs), Tensor::col_vector(&ys))
}

#[test]
fn ksg_independent_gaussians_are_near_zero() {
    let (x, _) = gaussian_pair(1200, 0.0, 21);
    let (y, _) = gaussian_pair(1200, 0.0, 22);
    let est = ksg_mi(&x, &y, 4);
    assert!(est.abs() < 0.05, "independent KSG MI {est}");
}

#[test]
fn ksg_correlated_gaussians_match_closed_form() {
    // ρ = 0.9 ⇒ I = −½ ln(1 − 0.81) ≈ 0.8304 nats.
    let rho = 0.9f32;
    let truth = -0.5 * (1.0 - rho * rho).ln();
    let (x, y) = gaussian_pair(1500, rho, 23);
    let est = ksg_mi(&x, &y, 4);
    assert!((est - truth).abs() < 0.1, "est {est} vs truth {truth:.4}");
}

#[test]
fn ksg_near_functional_dependence_saturates() {
    // y = x + tiny jitter: true MI is huge; the estimate must blow well
    // past anything a genuinely noisy pair produces.
    let mut rng = TensorRng::seed_from_u64(24);
    let xs: Vec<f32> = (0..1000).map(|_| rng.normal()).collect();
    let ys: Vec<f32> = xs.iter().map(|&x| x + 1e-3 * rng.normal()).collect();
    let est = ksg_mi(&Tensor::col_vector(&xs), &Tensor::col_vector(&ys), 4);
    assert!(est > 2.0, "near-copy KSG MI {est}");
}
