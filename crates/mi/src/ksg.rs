//! The Kraskov–Stögbauer–Grassberger (KSG-1) kNN mutual-information
//! estimator (Kraskov et al., PRE 2004, Eq 8).

use lasagne_tensor::Tensor;

use crate::digamma;

/// Chebyshev (max-norm) distance between two rows.
#[inline]
fn cheb(a: &[f32], b: &[f32]) -> f32 {
    let mut m = 0.0f32;
    for (x, y) in a.iter().zip(b) {
        let d = (x - y).abs();
        if d > m {
            m = d;
        }
    }
    m
}

/// KSG-1 estimate of `I(X; Y)` in nats.
///
/// `x` and `y` are sample matrices with one row per joint observation.
/// Distances in the joint space use the max over the two marginal Chebyshev
/// distances, as the estimator requires. O(N²) — subsample before calling
/// for large N (see [`crate::MiEstimator`]).
///
/// The estimator assumes continuous marginals; add tiny jitter when the data
/// has atoms (e.g. exact zeros from ReLU).
pub fn ksg_mi(x: &Tensor, y: &Tensor, k: usize) -> f32 {
    let n = x.rows();
    assert_eq!(n, y.rows(), "ksg_mi: sample count mismatch");
    assert!(k >= 1, "ksg_mi: k must be ≥ 1");
    assert!(n > k + 1, "ksg_mi: need more than k+1 samples");

    // Pairwise marginal distances, reused for both the kNN search and the
    // marginal counts. n ≤ ~1000 keeps this ~8 MB.
    let mut dx = vec![0.0f32; n * n];
    let mut dy = vec![0.0f32; n * n];
    for i in 0..n {
        for j in (i + 1)..n {
            let vx = cheb(x.row(i), x.row(j));
            let vy = cheb(y.row(i), y.row(j));
            dx[i * n + j] = vx;
            dx[j * n + i] = vx;
            dy[i * n + j] = vy;
            dy[j * n + i] = vy;
        }
    }

    let mut acc = 0.0f64;
    let mut joint: Vec<f32> = vec![0.0; n];
    for i in 0..n {
        // k-th smallest joint distance among j ≠ i.
        joint.clear();
        for j in 0..n {
            if j != i {
                joint.push(dx[i * n + j].max(dy[i * n + j]));
            }
        }
        // select_nth_unstable is O(n).
        let (_, eps, _) = joint.select_nth_unstable_by(k - 1, |a, b| {
            a.partial_cmp(b).expect("finite distances")
        });
        let eps = *eps;
        // Strictly-closer marginal counts.
        let mut nx = 0usize;
        let mut ny = 0usize;
        for j in 0..n {
            if j == i {
                continue;
            }
            if dx[i * n + j] < eps {
                nx += 1;
            }
            if dy[i * n + j] < eps {
                ny += 1;
            }
        }
        acc += digamma((nx + 1) as f64) + digamma((ny + 1) as f64);
    }

    (digamma(k as f64) + digamma(n as f64) - acc / n as f64) as f32
}

#[cfg(test)]
mod tests {
    use super::*;
    use lasagne_tensor::TensorRng;

    /// Closed form for bivariate Gaussians: I = −½ ln(1 − ρ²).
    fn gaussian_mi(rho: f32) -> f32 {
        -0.5 * (1.0 - rho * rho).ln()
    }

    fn correlated_pair(n: usize, rho: f32, seed: u64) -> (Tensor, Tensor) {
        let mut rng = TensorRng::seed_from_u64(seed);
        let mut xs = Vec::with_capacity(n);
        let mut ys = Vec::with_capacity(n);
        for _ in 0..n {
            let a = rng.normal();
            let b = rng.normal();
            xs.push(a);
            ys.push(rho * a + (1.0 - rho * rho).sqrt() * b);
        }
        (Tensor::col_vector(&xs), Tensor::col_vector(&ys))
    }

    #[test]
    fn matches_gaussian_closed_form() {
        for &rho in &[0.3f32, 0.6, 0.9] {
            let (x, y) = correlated_pair(1500, rho, 7);
            let est = ksg_mi(&x, &y, 4);
            let truth = gaussian_mi(rho);
            assert!(
                (est - truth).abs() < 0.1,
                "rho={rho}: est {est} vs truth {truth}"
            );
        }
    }

    #[test]
    fn independent_is_near_zero() {
        let mut rng = TensorRng::seed_from_u64(8);
        let x = rng.normal_tensor(1000, 2, 0.0, 1.0);
        let y = rng.normal_tensor(1000, 2, 0.0, 1.0);
        let est = ksg_mi(&x, &y, 4);
        assert!(est.abs() < 0.1, "independent MI {est}");
    }

    #[test]
    fn invariant_to_common_scaling_and_shift() {
        // Uniform rescaling and translation leave all neighbor relations
        // intact, so the estimate must be *exactly* unchanged. (Anisotropic
        // scale mismatch between X and Y degrades finite-sample KSG — which
        // is why `MiEstimator` standardizes columns first.)
        let (x, y) = correlated_pair(1000, 0.7, 9);
        let a = ksg_mi(&x, &y, 4);
        let b = ksg_mi(&x.scale(37.0).add_scalar(5.0), &y.scale(37.0).add_scalar(-2.0), 4);
        assert!((a - b).abs() < 1e-4, "{a} vs {b}");
    }

    #[test]
    fn increases_with_k_consistency() {
        // Different k give consistent estimates (sanity on the counts).
        let (x, y) = correlated_pair(1200, 0.8, 10);
        let a = ksg_mi(&x, &y, 3);
        let b = ksg_mi(&x, &y, 8);
        assert!((a - b).abs() < 0.1, "{a} vs {b}");
    }

    #[test]
    #[should_panic(expected = "more than k+1")]
    fn rejects_tiny_samples() {
        let x = Tensor::col_vector(&[1.0, 2.0, 3.0]);
        let _ = ksg_mi(&x, &x, 4);
    }
}
