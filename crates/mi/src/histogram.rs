//! Histogram (plug-in) entropy and MI estimators — simple, biased, but
//! exactly computable; used to validate the KSG estimator and for quick
//! 1-D diagnostics.

/// Plug-in Shannon entropy (nats) of a 1-D sample using `bins` equal-width
/// bins over the sample range, *of the discretized variable* (no bin-width
/// correction — callers compare entropies under the same binning).
pub fn histogram_entropy_1d(xs: &[f32], bins: usize) -> f32 {
    assert!(bins >= 1, "histogram_entropy_1d: bins must be ≥ 1");
    if xs.is_empty() {
        return 0.0;
    }
    let (lo, hi) = range(xs);
    if hi <= lo {
        return 0.0; // constant sample: zero entropy
    }
    let mut counts = vec![0usize; bins];
    for &x in xs {
        counts[bin_of(x, lo, hi, bins)] += 1;
    }
    let n = xs.len() as f64;
    -counts
        .iter()
        .filter(|&&c| c > 0)
        .map(|&c| {
            let p = c as f64 / n;
            p * p.ln()
        })
        .sum::<f64>() as f32
}

/// Plug-in MI (nats) between two 1-D samples using a `bins × bins` joint
/// histogram: `I = Σ p_ij ln(p_ij / (p_i q_j))`.
pub fn histogram_mi_2d(xs: &[f32], ys: &[f32], bins: usize) -> f32 {
    assert_eq!(xs.len(), ys.len(), "histogram_mi_2d: length mismatch");
    assert!(bins >= 1, "histogram_mi_2d: bins must be ≥ 1");
    if xs.is_empty() {
        return 0.0;
    }
    let (xlo, xhi) = range(xs);
    let (ylo, yhi) = range(ys);
    if xhi <= xlo || yhi <= ylo {
        return 0.0; // a constant marginal carries no information
    }
    let mut joint = vec![0usize; bins * bins];
    let mut px = vec![0usize; bins];
    let mut py = vec![0usize; bins];
    for (&x, &y) in xs.iter().zip(ys) {
        let bx = bin_of(x, xlo, xhi, bins);
        let by = bin_of(y, ylo, yhi, bins);
        joint[bx * bins + by] += 1;
        px[bx] += 1;
        py[by] += 1;
    }
    let n = xs.len() as f64;
    let mut mi = 0.0f64;
    for bx in 0..bins {
        for by in 0..bins {
            let c = joint[bx * bins + by];
            if c == 0 {
                continue;
            }
            let pij = c as f64 / n;
            let pi = px[bx] as f64 / n;
            let qj = py[by] as f64 / n;
            mi += pij * (pij / (pi * qj)).ln();
        }
    }
    mi as f32
}

fn range(xs: &[f32]) -> (f32, f32) {
    let mut lo = f32::INFINITY;
    let mut hi = f32::NEG_INFINITY;
    for &x in xs {
        lo = lo.min(x);
        hi = hi.max(x);
    }
    (lo, hi)
}

#[inline]
fn bin_of(x: f32, lo: f32, hi: f32, bins: usize) -> usize {
    let t = (x - lo) / (hi - lo);
    ((t * bins as f32) as usize).min(bins - 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lasagne_tensor::TensorRng;

    #[test]
    fn uniform_entropy_is_log_bins() {
        // A dense uniform grid fills every bin equally: H = ln(bins).
        let xs: Vec<f32> = (0..10_000).map(|i| i as f32 / 10_000.0).collect();
        let h = histogram_entropy_1d(&xs, 16);
        assert!((h - (16.0f32).ln()).abs() < 0.01, "H = {h}");
    }

    #[test]
    fn constant_sample_zero_entropy() {
        assert_eq!(histogram_entropy_1d(&[2.0; 100], 8), 0.0);
        assert_eq!(histogram_entropy_1d(&[], 8), 0.0);
    }

    #[test]
    fn identical_variables_mi_equals_entropy() {
        let mut rng = TensorRng::seed_from_u64(0);
        let xs: Vec<f32> = (0..5000).map(|_| rng.uniform(0.0, 1.0)).collect();
        let h = histogram_entropy_1d(&xs, 10);
        let mi = histogram_mi_2d(&xs, &xs, 10);
        assert!((h - mi).abs() < 1e-4, "H {h} vs I {mi}");
    }

    #[test]
    fn independent_mi_near_zero() {
        let mut rng = TensorRng::seed_from_u64(1);
        let xs: Vec<f32> = (0..20_000).map(|_| rng.uniform(0.0, 1.0)).collect();
        let ys: Vec<f32> = (0..20_000).map(|_| rng.uniform(0.0, 1.0)).collect();
        let mi = histogram_mi_2d(&xs, &ys, 8);
        // Plug-in MI is biased up by ~ (bins-1)²/(2N).
        assert!(mi < 0.01, "independent MI {mi}");
    }

    #[test]
    fn mi_monotone_in_correlation() {
        let mut rng = TensorRng::seed_from_u64(2);
        let base: Vec<f32> = (0..8000).map(|_| rng.normal()).collect();
        let make = |rho: f32, rng: &mut TensorRng| -> Vec<f32> {
            base.iter()
                .map(|&x| rho * x + (1.0 - rho * rho).sqrt() * rng.normal())
                .collect()
        };
        let weak = histogram_mi_2d(&base, &make(0.3, &mut rng), 12);
        let strong = histogram_mi_2d(&base, &make(0.9, &mut rng), 12);
        assert!(strong > weak + 0.2, "strong {strong} weak {weak}");
    }

    #[test]
    fn agrees_with_gaussian_closed_form_roughly() {
        let mut rng = TensorRng::seed_from_u64(3);
        let rho = 0.8f32;
        let xs: Vec<f32> = (0..30_000).map(|_| rng.normal()).collect();
        let ys: Vec<f32> = xs
            .iter()
            .map(|&x| rho * x + (1.0 - rho * rho).sqrt() * rng.normal())
            .collect();
        let mi = histogram_mi_2d(&xs, &ys, 24);
        let truth = -0.5 * (1.0 - rho * rho).ln();
        assert!((mi - truth).abs() < 0.1, "est {mi} truth {truth}");
    }
}
