//! Principal-component projection by orthogonal (block power) iteration —
//! no external linear-algebra dependency.
//!
//! Random Johnson–Lindenstrauss projections preserve *distances* but
//! dilute low-rank *structure*: when the informative part of a
//! 128-dimensional feature matrix lives in a handful of directions (class
//! centroids), a random 4-dim projection keeps only ~4/128 of it and kNN
//! MI estimates collapse toward zero. Projecting onto the top principal
//! components instead concentrates exactly the variance the estimator
//! needs (this is what made Fig 2/6 readable).

use lasagne_tensor::{Tensor, TensorRng};

/// Orthonormalize the columns of `b` in place (modified Gram–Schmidt);
/// near-zero columns are replaced by fresh random directions.
fn orthonormalize(b: &mut Tensor, rng: &mut TensorRng) {
    let (n, k) = b.shape();
    for j in 0..k {
        // Subtract projections onto the previous columns.
        for prev in 0..j {
            let mut dot = 0.0f32;
            for i in 0..n {
                dot += b.get(i, j) * b.get(i, prev);
            }
            for i in 0..n {
                let v = b.get(i, j) - dot * b.get(i, prev);
                b.set(i, j, v);
            }
        }
        let norm: f32 = (0..n).map(|i| b.get(i, j).powi(2)).sum::<f32>().sqrt();
        if norm > 1e-12 {
            for i in 0..n {
                b.set(i, j, b.get(i, j) / norm);
            }
        } else {
            // Degenerate direction: re-randomize (will be orthogonalized on
            // the next sweep).
            for i in 0..n {
                b.set(i, j, rng.normal());
            }
        }
    }
}

/// Project the rows of `x` (N×D) onto its top `d` principal components
/// (directions of maximal variance), computed by `iters` rounds of
/// orthogonal iteration on the D×D covariance. Columns of `x` should be
/// (approximately) centered — [`crate::standardize_columns`] does that.
pub fn pca_projection(x: &Tensor, d: usize, iters: usize, rng: &mut TensorRng) -> Tensor {
    let (n, dim) = x.shape();
    assert!(d >= 1, "pca_projection: d must be ≥ 1");
    if d >= dim || n == 0 {
        return x.clone();
    }
    // Covariance C = XᵀX / n (D×D).
    let mut cov = x.matmul_tn(x);
    cov.scale_assign(1.0 / n as f32);

    let mut basis = rng.normal_tensor(dim, d, 0.0, 1.0);
    orthonormalize(&mut basis, rng);
    for _ in 0..iters {
        basis = cov.matmul(&basis);
        orthonormalize(&mut basis, rng);
    }
    x.matmul(&basis)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recovers_a_planted_direction() {
        // Data = strong 1-D signal along `dir` + weak isotropic noise in
        // 32 dims. The first principal component must align with `dir`.
        let mut rng = TensorRng::seed_from_u64(0);
        let dim = 32;
        let dir = rng.normal_tensor(1, dim, 0.0, 1.0);
        let mut x = Tensor::zeros(400, dim);
        for i in 0..400 {
            let a = 5.0 * rng.normal();
            for j in 0..dim {
                x.set(i, j, a * dir.get(0, j) + 0.1 * rng.normal());
            }
        }
        let p = pca_projection(&x, 1, 30, &mut rng);
        // Variance captured along the top component ≈ total signal variance.
        let captured = p.sqr().mean();
        let total_row_var = x.sqr().sum() / 400.0;
        assert!(
            captured > 0.8 * total_row_var,
            "captured {captured} of {total_row_var}"
        );
    }

    #[test]
    fn projection_is_orthonormal_basis() {
        // Projecting twice onto d dims must preserve the projected norms.
        let mut rng = TensorRng::seed_from_u64(1);
        let x = rng.normal_tensor(300, 16, 0.0, 1.0);
        let p = pca_projection(&x, 4, 25, &mut rng);
        assert_eq!(p.shape(), (300, 4));
        // Projected variance ≤ total variance (Parseval under orthonormal
        // columns), and > 4/16 of it (top components beat random ones).
        let total = x.sqr().sum();
        let proj = p.sqr().sum();
        assert!(proj <= total * 1.001);
        assert!(proj > total * (4.0 / 16.0));
    }

    #[test]
    fn d_at_least_dim_is_identity() {
        let mut rng = TensorRng::seed_from_u64(2);
        let x = rng.normal_tensor(10, 3, 0.0, 1.0);
        let p = pca_projection(&x, 5, 10, &mut rng);
        assert!(p.approx_eq(&x, 0.0));
    }

    #[test]
    fn survives_rank_deficient_input() {
        // Constant matrix: covariance is rank 0; must not NaN or hang.
        let mut rng = TensorRng::seed_from_u64(3);
        let x = Tensor::full(50, 8, 1.0);
        let p = pca_projection(&x, 3, 10, &mut rng);
        assert_eq!(p.shape(), (50, 3));
        assert!(!p.has_non_finite());
    }
}
