//! The digamma function ψ, the only special function the KSG estimator
//! needs.

/// Digamma ψ(x) for x > 0, via the upward recurrence
/// `ψ(x) = ψ(x+1) − 1/x` into the asymptotic region, then the Stirling-type
/// series. Accuracy is ~1e-8 for x > 0, far below the statistical error of
/// any kNN MI estimate.
pub fn digamma(mut x: f64) -> f64 {
    assert!(x > 0.0, "digamma: domain is x > 0, got {x}");
    let mut result = 0.0;
    while x < 6.0 {
        result -= 1.0 / x;
        x += 1.0;
    }
    let inv = 1.0 / x;
    let inv2 = inv * inv;
    result + x.ln() - 0.5 * inv
        - inv2 * (1.0 / 12.0 - inv2 * (1.0 / 120.0 - inv2 / 252.0))
}

#[cfg(test)]
mod tests {
    use super::*;

    const EULER_GAMMA: f64 = 0.577_215_664_901_532_9;

    #[test]
    fn known_values() {
        assert!((digamma(1.0) + EULER_GAMMA).abs() < 1e-8);
        // ψ(2) = 1 − γ
        assert!((digamma(2.0) - (1.0 - EULER_GAMMA)).abs() < 1e-8);
        // ψ(1/2) = −γ − 2 ln 2
        assert!((digamma(0.5) + EULER_GAMMA + 2.0 * (2.0f64).ln()).abs() < 1e-8);
    }

    #[test]
    fn recurrence_holds() {
        for &x in &[0.3, 1.7, 4.2, 11.0] {
            assert!(
                (digamma(x + 1.0) - digamma(x) - 1.0 / x).abs() < 1e-9,
                "recurrence at {x}"
            );
        }
    }

    #[test]
    fn asymptotically_logarithmic() {
        assert!((digamma(1e6) - (1e6f64).ln()).abs() < 1e-5);
    }

    #[test]
    #[should_panic(expected = "domain")]
    fn rejects_non_positive() {
        digamma(0.0);
    }
}
