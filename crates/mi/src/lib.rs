//! Mutual-information estimation.
//!
//! §3.2 of the paper interprets deep-GCN architectures through the mutual
//! information `I(H^{(l)}; X)` between hidden representations and the input
//! features: over-smoothed layers lose information about `X`, and "the
//! higher MI of the last layer the model has, the better performance the
//! model may achieve" (Fig 2, Fig 6).
//!
//! Estimating MI between high-dimensional continuous variables is done with
//! the Kraskov–Stögbauer–Grassberger kNN estimator ([`ksg_mi`]) on
//! principal-component projections ([`MiEstimator`]; PCA concentrates the
//! low-rank class structure that random projections dilute), with a classic
//! histogram estimator ([`histogram_mi_2d`]) kept for validation against
//! closed forms.
//!
//! # Example
//! ```
//! use lasagne_mi::MiEstimator;
//! use lasagne_tensor::TensorRng;
//!
//! let mut rng = TensorRng::seed_from_u64(0);
//! let x = rng.normal_tensor(400, 4, 0.0, 1.0);
//! let noise = rng.normal_tensor(400, 4, 0.0, 0.05);
//! let y = x.add(&noise); // nearly a copy of x → high MI
//! let z = rng.normal_tensor(400, 4, 0.0, 1.0); // independent → MI ≈ 0
//!
//! let est = MiEstimator::default();
//! let mi_copy = est.estimate(&x, &y, &mut rng);
//! let mi_indep = est.estimate(&x, &z, &mut rng);
//! assert!(mi_copy > mi_indep + 0.5);
//! ```

mod digamma;
mod histogram;
mod ksg;
mod pca;
mod projection;

pub use digamma::digamma;
pub use histogram::{histogram_entropy_1d, histogram_mi_2d};
pub use ksg::ksg_mi;
pub use pca::pca_projection;
pub use projection::{random_projection, standardize_columns};

use lasagne_tensor::{Tensor, TensorRng};

/// How high-dimensional inputs are reduced before the KSG estimate.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Reduction {
    /// Top principal components (default): concentrates low-rank structure,
    /// which is where class signal lives in GNN representations.
    Pca,
    /// Gaussian random projection: unbiased w.r.t. direction but dilutes
    /// low-rank structure by `projection_dim / dim`.
    Random,
}

/// High-level estimator for `I(X; H)` between two high-dimensional node
/// representation matrices (rows = nodes = samples).
///
/// Pipeline per projection: subsample rows → standardize columns → reduce
/// to `projection_dim` dims ([`Reduction`]) → KSG-1 with `k` neighbors;
/// results are averaged over `n_projections` repetitions.
#[derive(Clone, Debug)]
pub struct MiEstimator {
    /// kNN order of the KSG estimator.
    pub k: usize,
    /// Cap on the number of rows used (KSG is O(N²)).
    pub max_samples: usize,
    /// Output dimensionality of the reduction.
    pub projection_dim: usize,
    /// Number of repetitions averaged (jitter + subsample vary).
    pub n_projections: usize,
    /// Reduction method.
    pub reduction: Reduction,
}

impl Default for MiEstimator {
    fn default() -> Self {
        MiEstimator {
            k: 4,
            max_samples: 800,
            projection_dim: 4,
            n_projections: 3,
            reduction: Reduction::Pca,
        }
    }
}

impl MiEstimator {
    /// Estimate `I(x; y)` in nats. `x` and `y` must have the same row count
    /// (one row per sample).
    pub fn estimate(&self, x: &Tensor, y: &Tensor, rng: &mut TensorRng) -> f32 {
        assert_eq!(x.rows(), y.rows(), "MiEstimator: sample count mismatch");
        let n = x.rows();
        let (xs, ys) = if n > self.max_samples {
            let idx = rng.sample_indices(n, self.max_samples);
            (x.gather_rows(&idx), y.gather_rows(&idx))
        } else {
            (x.clone(), y.clone())
        };
        let xs = standardize_columns(&xs);
        let ys = standardize_columns(&ys);
        let reduce = |t: &Tensor, rng: &mut TensorRng| -> Tensor {
            if t.cols() <= self.projection_dim {
                return t.clone();
            }
            match self.reduction {
                Reduction::Pca => pca_projection(t, self.projection_dim, 25, rng),
                Reduction::Random => random_projection(t, self.projection_dim, rng),
            }
        };
        let mut total = 0.0;
        for _ in 0..self.n_projections {
            let xp = reduce(&xs, rng);
            let yp = reduce(&ys, rng);
            // Tiny jitter breaks exact ties (KSG assumes continuous data;
            // ReLU outputs have mass at exactly 0).
            let xj = jitter(&xp, 1e-5, rng);
            let yj = jitter(&yp, 1e-5, rng);
            total += ksg_mi(&xj, &yj, self.k).max(0.0);
        }
        total / self.n_projections as f32
    }
}

fn jitter(t: &Tensor, scale: f32, rng: &mut TensorRng) -> Tensor {
    let noise = rng.normal_tensor(t.rows(), t.cols(), 0.0, scale);
    t.add(&noise)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn estimator_orders_dependence_strength() {
        let mut rng = TensorRng::seed_from_u64(1);
        let x = rng.normal_tensor(500, 3, 0.0, 1.0);
        let strong = x.add(&rng.normal_tensor(500, 3, 0.0, 0.1));
        let weak = x.add(&rng.normal_tensor(500, 3, 0.0, 1.0));
        let indep = rng.normal_tensor(500, 3, 0.0, 1.0);
        let est = MiEstimator::default();
        let mi_strong = est.estimate(&x, &strong, &mut rng);
        let mi_weak = est.estimate(&x, &weak, &mut rng);
        let mi_indep = est.estimate(&x, &indep, &mut rng);
        assert!(mi_strong > mi_weak, "{mi_strong} vs {mi_weak}");
        assert!(mi_weak > mi_indep, "{mi_weak} vs {mi_indep}");
        assert!(mi_indep < 0.2, "independent MI {mi_indep}");
    }

    #[test]
    fn estimator_subsamples_large_inputs() {
        let mut rng = TensorRng::seed_from_u64(2);
        let x = rng.normal_tensor(3000, 2, 0.0, 1.0);
        let y = x.scale(2.0);
        let est = MiEstimator { max_samples: 200, ..MiEstimator::default() };
        let mi = est.estimate(&x, &y, &mut rng);
        assert!(mi > 1.0, "MI of a deterministic map should be large, got {mi}");
    }

    #[test]
    fn constant_columns_survive_standardization() {
        // Over-smoothed representations collapse toward constant rows — the
        // estimator must not NaN there, it must report low MI.
        let mut rng = TensorRng::seed_from_u64(3);
        let x = rng.normal_tensor(300, 3, 0.0, 1.0);
        let y = Tensor::full(300, 3, 1.234);
        let est = MiEstimator::default();
        let mi = est.estimate(&x, &y, &mut rng);
        assert!(mi.is_finite());
        assert!(mi < 0.25, "constant target must carry ~no information, got {mi}");
    }
}
