//! Dimensionality reduction for MI estimation: column standardization and
//! Gaussian random projection (Johnson–Lindenstrauss style).

use lasagne_tensor::{Tensor, TensorRng};

/// Standardize each column to zero mean / unit variance. Constant columns
/// become all-zero instead of NaN (important for over-smoothed hidden
/// representations, which collapse toward constants).
pub fn standardize_columns(x: &Tensor) -> Tensor {
    let n = x.rows();
    if n == 0 {
        return x.clone();
    }
    let mean = x.mean_rows();
    let mut out = x.clone();
    for i in 0..n {
        for (v, &m) in out.row_mut(i).iter_mut().zip(mean.row(0)) {
            *v -= m;
        }
    }
    // Column stds.
    let mut std = vec![0.0f32; x.cols()];
    for i in 0..n {
        for (s, &v) in std.iter_mut().zip(out.row(i)) {
            *s += v * v;
        }
    }
    for s in &mut std {
        *s = (*s / n as f32).sqrt();
    }
    for i in 0..n {
        for (v, &s) in out.row_mut(i).iter_mut().zip(&std) {
            if s > 1e-12 {
                *v /= s;
            } else {
                *v = 0.0;
            }
        }
    }
    out
}

/// Project `x (N×D)` to `N×d` with an i.i.d. Gaussian matrix scaled by
/// `1/sqrt(d)` (approximately norm-preserving).
pub fn random_projection(x: &Tensor, d: usize, rng: &mut TensorRng) -> Tensor {
    assert!(d >= 1, "random_projection: d must be ≥ 1");
    let proj = rng.normal_tensor(x.cols(), d, 0.0, 1.0 / (d as f32).sqrt());
    x.matmul(&proj)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standardize_produces_zero_mean_unit_var() {
        let mut rng = TensorRng::seed_from_u64(0);
        let x = rng.uniform_tensor(500, 3, 5.0, 9.0);
        let s = standardize_columns(&x);
        let mean = s.mean_rows();
        for &m in mean.row(0) {
            assert!(m.abs() < 1e-4, "mean {m}");
        }
        let var = s.sqr().mean_rows();
        for &v in var.row(0) {
            assert!((v - 1.0).abs() < 1e-3, "var {v}");
        }
    }

    #[test]
    fn standardize_zeroes_constant_columns() {
        let x = Tensor::from_fn(10, 2, |i, j| if j == 0 { 7.0 } else { i as f32 });
        let s = standardize_columns(&x);
        assert!(s.col(0).iter().all(|&v| v == 0.0));
        assert!(s.col(1).iter().any(|&v| v != 0.0));
    }

    #[test]
    fn projection_shape_and_norm_preservation() {
        let mut rng = TensorRng::seed_from_u64(1);
        let x = rng.normal_tensor(200, 64, 0.0, 1.0);
        let p = random_projection(&x, 8, &mut rng);
        assert_eq!(p.shape(), (200, 8));
        // Average squared row norm is approximately preserved (JL).
        let before = x.row_sq_norms().mean();
        let after = p.row_sq_norms().mean();
        assert!(
            (after / before - 1.0).abs() < 0.25,
            "norm ratio {}",
            after / before
        );
    }
}
