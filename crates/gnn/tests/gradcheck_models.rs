//! Model-wide gradient-check sweep: every model in `models::*` must have
//! analytic gradients matching central differences on a tiny fixed graph,
//! at every thread count in {1, 4} (the `lasagne-par` determinism contract
//! says the numbers cannot differ — this proves the *gradients* don't
//! either).
//!
//! The companion sweep for the Lasagne model itself (GC-FM layer + the
//! three node-aware aggregators) lives in
//! `crates/core/tests/gradcheck_lasagne.rs` — the dependency direction
//! (`core` depends on `gnn`) keeps it out of this file.
//!
//! Checks run the loss in `Mode::Eval` so the forward pass is
//! deterministic (no dropout masks / sampled supports); every parameter
//! still participates in the eval path, so the sweep covers the full
//! stores.

use std::rc::Rc;

use lasagne_autograd::{grad_check_owner, NodeId, ParamStore, Tape};
use lasagne_gnn::models;
use lasagne_gnn::{GraphContext, Hyper, Mode, NodeClassifier};
use lasagne_graph::generators::{dc_sbm, DcSbmConfig};
use lasagne_tensor::TensorRng;

const EPS: f32 = 5e-3;
const TOL: f32 = 1e-2;
const IN_DIM: usize = 6;
const CLASSES: usize = 3;

/// A 24-node, 3-class planted-partition context — small enough that a
/// coordinate-wise central-difference sweep over a whole model is cheap.
fn tiny_ctx(seed: u64) -> (GraphContext, Vec<usize>) {
    let mut rng = TensorRng::seed_from_u64(seed);
    let (g, labels) = dc_sbm(
        &DcSbmConfig {
            nodes: 24,
            classes: CLASSES,
            avg_degree: 4.0,
            homophily: 0.9,
            power_exponent: 2.5,
            max_weight_ratio: 20.0,
        },
        &mut rng,
    );
    let features = lasagne_datasets::generate_features(
        &g,
        &labels,
        CLASSES,
        &lasagne_datasets::FeatureConfig {
            dim: IN_DIM,
            signal: 1.5,
            noise_scale: 0.5,
            degree_noise_exponent: 0.3,
            mask_base: 0.0,
        },
        &mut rng,
    );
    let train: Vec<usize> = (0..12).collect();
    (GraphContext::new(&g, features, labels, CLASSES), train)
}

fn tiny_hyper() -> Hyper {
    Hyper {
        hidden: 4,
        depth: 2,
        dropout_keep: 1.0,
        gat_heads: 2,
        appnp_k: 3,
        fastgcn_samples: 24,
        madreg_pairs: 8,
        sgc_k: 2,
        ..Hyper::default()
    }
}

fn store_of(m: &mut Box<dyn NodeClassifier>) -> &mut ParamStore {
    m.store_mut()
}

fn check_model(name: &str, mut model: Box<dyn NodeClassifier>) {
    let (ctx, train) = tiny_ctx(11);
    let labels = Rc::new((*ctx.labels).clone());
    let idx = Rc::new(train);
    for &threads in &[1usize, 4] {
        lasagne_par::set_threads(threads);
        let forward = |m: &Box<dyn NodeClassifier>, tape: &mut Tape| -> NodeId {
            // Reseeded per call: eval consumes no randomness today, but the
            // checker's contract is a deterministic closure regardless.
            let mut rng = TensorRng::seed_from_u64(7);
            let out = m.forward(tape, &ctx, Mode::Eval, &mut rng);
            let lp = tape.log_softmax(out.logits);
            let mut loss = tape.nll_masked(lp, labels.clone(), idx.clone());
            if let Some(reg) = out.regularizer {
                loss = tape.add(loss, reg);
            }
            loss
        };
        let report = grad_check_owner(&mut model, store_of, |_| false, EPS, forward);
        assert!(report.checked > 0, "{name}: no parameters were checked");
        assert!(
            report.max_rel_err < TOL,
            "{name} @ {threads} thread(s): max_rel_err {} (max_abs_err {}, {} coords)",
            report.max_rel_err,
            report.max_abs_err,
            report.checked
        );
    }
}

macro_rules! model_gradcheck {
    ($test:ident, $ty:ident) => {
        #[test]
        fn $test() {
            check_model(
                stringify!($ty),
                Box::new(models::$ty::new(IN_DIM, CLASSES, &tiny_hyper(), 5)),
            );
        }
    };
}

model_gradcheck!(gcn_gradients_match, Gcn);

/// The edge-gated model needs a context carrying edge features, so it gets
/// its own fixture: a 30-node bipartite graph with rating/recency link
/// attributes. Same sweep, same tolerances, same thread counts.
#[test]
fn edgegated_gradients_match() {
    use lasagne_graph::generators::{bipartite_user_item, BipartiteConfig};
    use lasagne_sparse::EdgeData;
    use lasagne_tensor::Tensor;

    let mut rng = TensorRng::seed_from_u64(13);
    let items = 18usize;
    let buckets = 4usize;
    let b = bipartite_user_item(
        &BipartiteConfig {
            items,
            users: 12,
            classes: CLASSES,
            avg_user_degree: 3.0,
            popularity_exponent: 2.0,
            user_focus: 0.8,
            time_buckets: buckets,
        },
        &mut rng,
    );
    let n = b.graph.num_nodes();
    let centroids = rng.normal_tensor(CLASSES, IN_DIM, 0.0, 0.6);
    let mut features = Tensor::zeros(n, IN_DIM);
    let mut labels = vec![0usize; n];
    for v in 0..n {
        labels[v] = if v < items { b.item_labels[v] } else { b.user_prefs[v - items] };
        for (x, &mu) in features.row_mut(v).iter_mut().zip(centroids.row(labels[v])) {
            *x = mu + 0.3 * rng.normal();
        }
    }
    let attrs: std::collections::HashMap<(u32, u32), (u8, u8)> = b
        .interactions
        .iter()
        .enumerate()
        .map(|(e, &(i, u))| ((i, u), (b.edge_ratings[e], b.edge_time_buckets[e])))
        .collect();
    let edges = EdgeData::for_csr(b.graph.adjacency(), 2, |r, c, out| {
        let key = if (r as usize) < items { (r, c) } else { (c, r) };
        let (rating, bucket) = attrs[&key];
        out[0] = (rating as f32 - 3.0) / 2.0;
        out[1] = bucket as f32 / (buckets - 1) as f32 - 0.5;
    });
    let ctx = GraphContext::with_edge_data(&b.graph, features, labels, CLASSES, &edges)
        .expect("edge data aligned by construction");
    let train: Vec<usize> = (0..items / 2).collect();

    let labels = Rc::new((*ctx.labels).clone());
    let idx = Rc::new(train);
    let mut model: Box<dyn NodeClassifier> = Box::new(models::EdgeGatedGcn::new(
        IN_DIM,
        CLASSES,
        2,
        &tiny_hyper(),
        5,
    ));
    for &threads in &[1usize, 4] {
        lasagne_par::set_threads(threads);
        let forward = |m: &Box<dyn NodeClassifier>, tape: &mut Tape| -> NodeId {
            let mut rng = TensorRng::seed_from_u64(7);
            let out = m.forward(tape, &ctx, Mode::Eval, &mut rng);
            let lp = tape.log_softmax(out.logits);
            tape.nll_masked(lp, labels.clone(), idx.clone())
        };
        let report = grad_check_owner(&mut model, store_of, |_| false, EPS, forward);
        assert!(report.checked > 0, "EdgeGatedGcn: no parameters were checked");
        assert!(
            report.max_rel_err < TOL,
            "EdgeGatedGcn @ {threads} thread(s): max_rel_err {} (max_abs_err {}, {} coords)",
            report.max_rel_err,
            report.max_abs_err,
            report.checked
        );
    }
}
model_gradcheck!(resgcn_gradients_match, ResGcn);
model_gradcheck!(densegcn_gradients_match, DenseGcn);
model_gradcheck!(jknet_gradients_match, JkNet);
model_gradcheck!(gat_gradients_match, Gat);
model_gradcheck!(sgc_gradients_match, Sgc);
model_gradcheck!(appnp_gradients_match, Appnp);
model_gradcheck!(mixhop_gradients_match, MixHop);
model_gradcheck!(dropedge_gradients_match, DropEdgeGcn);
model_gradcheck!(pairnorm_gradients_match, PairNormGcn);
model_gradcheck!(madreg_gradients_match, MadRegGcn);
model_gradcheck!(graphsage_gradients_match, GraphSage);
model_gradcheck!(fastgcn_gradients_match, FastGcn);
