//! Subgraph batch strategies: the *training procedures* behind ClusterGCN
//! and GraphSAINT (Table 4). Both train an ordinary GCN — what changes is
//! the graph each optimization step sees.

use lasagne_datasets::Dataset;
use lasagne_tensor::TensorRng;

use crate::GraphContext;

/// One training batch: a (sub)graph context plus the local indices to
/// compute the loss on.
pub struct TrainBatch {
    /// The context models forward on this step.
    pub ctx: GraphContext,
    /// Loss nodes, as indices into `ctx`.
    pub train_idx: Vec<usize>,
}

/// Produces the context used for each training step.
pub trait BatchStrategy {
    /// Strategy name (for logging).
    fn name(&self) -> &'static str;
    /// The batch for optimization step `step`.
    fn batch(&mut self, step: usize, rng: &mut TensorRng) -> &TrainBatch;
}

/// Full-batch training on a fixed context (the default for every
/// transductive model, and for GraphSAGE/FastGCN whose sampling happens
/// inside the model).
pub struct FullBatch {
    batch: TrainBatch,
}

impl FullBatch {
    /// Train on `ctx` with the given loss indices every step.
    pub fn new(ctx: GraphContext, train_idx: Vec<usize>) -> FullBatch {
        FullBatch {
            batch: TrainBatch { ctx, train_idx },
        }
    }

    /// Full-batch over a dataset's training split.
    pub fn from_dataset(ds: &Dataset) -> FullBatch {
        FullBatch::new(GraphContext::from_dataset(ds), ds.split.train.clone())
    }
}

impl BatchStrategy for FullBatch {
    fn name(&self) -> &'static str {
        "full"
    }
    fn batch(&mut self, _step: usize, _rng: &mut TensorRng) -> &TrainBatch {
        &self.batch
    }
}

/// ClusterGCN (Chiang et al., KDD'19): partition the training graph once,
/// then cycle through partition-induced subgraphs, "limiting the training
/// inside graph partitions to alleviate the neighborhood expansion".
pub struct ClusterBatches {
    batches: Vec<TrainBatch>,
}

impl ClusterBatches {
    /// Partition `ds`'s *training* view into `k` BFS-grown clusters.
    ///
    /// For an inductive dataset the training view is the induced training
    /// subgraph; for a transductive one it is the full graph with loss
    /// restricted to training nodes inside each cluster.
    ///
    /// Panics on an invalid `k`; use [`ClusterBatches::try_new`] when the
    /// part count comes from untrusted input.
    pub fn new(ds: &Dataset, k: usize, rng: &mut TensorRng) -> ClusterBatches {
        ClusterBatches::try_new(ds, k, rng)
            .unwrap_or_else(|e| panic!("ClusterBatches: {e}"))
    }

    /// Like [`ClusterBatches::new`] but with a typed error on a bad part
    /// count instead of a panic.
    pub fn try_new(
        ds: &Dataset,
        k: usize,
        rng: &mut TensorRng,
    ) -> Result<ClusterBatches, lasagne_graph::GraphError> {
        let parts = lasagne_graph::partition_bfs(&ds.graph, k, rng)?;
        let mut is_train = vec![false; ds.num_nodes()];
        for &v in &ds.split.train {
            is_train[v] = true;
        }
        let mut batches = Vec::with_capacity(parts.len());
        for part in &parts {
            let train_idx: Vec<usize> = part
                .iter()
                .enumerate()
                .filter(|&(_, &orig)| is_train[orig])
                .map(|(local, _)| local)
                .collect();
            if train_idx.is_empty() {
                continue; // nothing to learn from in this cluster
            }
            let sub = ds.graph.induced_subgraph(part);
            let feats = ds.features.gather_rows(part);
            let labels: Vec<usize> = part.iter().map(|&v| ds.labels[v]).collect();
            let ctx = GraphContext::new(&sub, feats, labels, ds.num_classes);
            batches.push(TrainBatch { ctx, train_idx });
        }
        assert!(!batches.is_empty(), "ClusterBatches: no cluster holds a training node");
        Ok(ClusterBatches { batches })
    }

    /// Number of usable clusters.
    pub fn len(&self) -> usize {
        self.batches.len()
    }

    /// True when no cluster contains training nodes (cannot happen after
    /// construction, kept for API completeness).
    pub fn is_empty(&self) -> bool {
        self.batches.is_empty()
    }
}

impl BatchStrategy for ClusterBatches {
    fn name(&self) -> &'static str {
        "clustergcn"
    }
    fn batch(&mut self, step: usize, _rng: &mut TensorRng) -> &TrainBatch {
        &self.batches[step % self.batches.len()]
    }
}

/// GraphSAINT (Zeng et al., ICLR'20) with the node sampler: each step
/// trains on the subgraph induced by a fresh random node sample.
pub struct SaintNodeSampler {
    ds: Dataset,
    sample_size: usize,
    is_train: Vec<bool>,
    current: Option<TrainBatch>,
}

impl SaintNodeSampler {
    /// Sample `sample_size` nodes per step from `ds`.
    pub fn new(ds: &Dataset, sample_size: usize) -> SaintNodeSampler {
        let mut is_train = vec![false; ds.num_nodes()];
        for &v in &ds.split.train {
            is_train[v] = true;
        }
        SaintNodeSampler {
            ds: ds.clone(),
            sample_size: sample_size.min(ds.num_nodes()),
            is_train,
            current: None,
        }
    }
}

impl BatchStrategy for SaintNodeSampler {
    fn name(&self) -> &'static str {
        "graphsaint"
    }

    fn batch(&mut self, _step: usize, rng: &mut TensorRng) -> &TrainBatch {
        // Resample until the subgraph contains at least one training node
        // (instant on realistic splits).
        loop {
            let nodes = rng.sample_indices(self.ds.num_nodes(), self.sample_size);
            let train_idx: Vec<usize> = nodes
                .iter()
                .enumerate()
                .filter(|&(_, &orig)| self.is_train[orig])
                .map(|(local, _)| local)
                .collect();
            if train_idx.is_empty() {
                continue;
            }
            let sub = self.ds.graph.induced_subgraph(&nodes);
            let feats = self.ds.features.gather_rows(&nodes);
            let labels: Vec<usize> = nodes.iter().map(|&v| self.ds.labels[v]).collect();
            let ctx = GraphContext::new(&sub, feats, labels, self.ds.num_classes);
            self.current = Some(TrainBatch { ctx, train_idx });
            return self.current.as_ref().expect("just set");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lasagne_datasets::DatasetId;

    fn small_ds() -> Dataset {
        Dataset::generate(DatasetId::Cora, 0)
    }

    #[test]
    fn full_batch_is_stable() {
        let ds = small_ds();
        let mut fb = FullBatch::from_dataset(&ds);
        let mut rng = TensorRng::seed_from_u64(0);
        let b = fb.batch(0, &mut rng);
        assert_eq!(b.ctx.num_nodes(), ds.num_nodes());
        assert_eq!(b.train_idx, ds.split.train);
    }

    #[test]
    fn cluster_batches_cover_training_nodes() {
        let ds = small_ds();
        let mut rng = TensorRng::seed_from_u64(1);
        let mut cb = ClusterBatches::new(&ds, 8, &mut rng);
        assert!(cb.len() >= 2, "expected several usable clusters");
        let total_train: usize = (0..cb.len())
            .map(|s| cb.batch(s, &mut rng).train_idx.len())
            .sum();
        assert_eq!(total_train, ds.split.train.len());
        // Cluster contexts are genuinely smaller than the full graph.
        assert!(cb.batch(0, &mut rng).ctx.num_nodes() < ds.num_nodes());
    }

    #[test]
    fn cluster_batch_labels_are_consistent() {
        let ds = small_ds();
        let mut rng = TensorRng::seed_from_u64(2);
        let mut cb = ClusterBatches::new(&ds, 4, &mut rng);
        let b = cb.batch(0, &mut rng);
        for &local in &b.train_idx {
            assert!(local < b.ctx.num_nodes());
            assert!(b.ctx.labels[local] < ds.num_classes);
        }
    }

    #[test]
    fn saint_resamples_each_step() {
        let ds = small_ds();
        let mut sampler = SaintNodeSampler::new(&ds, 300);
        let mut rng = TensorRng::seed_from_u64(3);
        let n1 = sampler.batch(0, &mut rng).ctx.num_nodes();
        let f1 = sampler.batch(0, &mut rng).ctx.features.clone();
        let f2 = sampler.batch(1, &mut rng).ctx.features.clone();
        assert_eq!(n1, 300);
        assert!(!f1.approx_eq(&f2, 1e-9), "expected different samples");
    }

    #[test]
    fn saint_batches_always_contain_training_nodes() {
        let ds = small_ds();
        let mut sampler = SaintNodeSampler::new(&ds, 200);
        let mut rng = TensorRng::seed_from_u64(4);
        for step in 0..5 {
            assert!(!sampler.batch(step, &mut rng).train_idx.is_empty());
        }
    }
}
