//! The shared forward interface: [`GraphContext`] (what a model sees of the
//! data) and [`NodeClassifier`] (what the trainer sees of a model).

use std::rc::Rc;

use lasagne_autograd::{NodeId, ParamStore, Tape};
use lasagne_datasets::Dataset;
use lasagne_graph::Graph;
use lasagne_sparse::Csr;
use lasagne_tensor::{Tensor, TensorRng};

/// Train vs eval forward semantics (dropout on/off, sampled vs expected
/// stochastic gates, DropEdge on/off).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// Stochastic forward used for optimization.
    Train,
    /// Deterministic forward used for validation/test.
    Eval,
}

/// Everything a model needs from a dataset, with the derived operators
/// precomputed once.
#[derive(Clone)]
pub struct GraphContext {
    /// `Â = D̃^{-1/2}(A+I)D̃^{-1/2}` — the Eq (1) propagation operator.
    pub a_hat: Rc<Csr>,
    /// Raw symmetric adjacency, no self-loops (DropEdge re-normalizes it).
    pub adjacency: Rc<Csr>,
    /// Structure with self-loops (attention neighborhoods for GAT).
    pub adj_loops: Rc<Csr>,
    /// Row-stochastic `D̃^{-1}(A+I)` (mean aggregation for GraphSAGE).
    pub rw_adj: Rc<Csr>,
    /// `N×M` input features.
    pub features: Rc<Tensor>,
    /// Label per node.
    pub labels: Rc<Vec<usize>>,
    /// Number of classes.
    pub num_classes: usize,
}

impl GraphContext {
    /// Build all derived operators from a graph + data.
    pub fn new(
        graph: &Graph,
        features: Tensor,
        labels: Vec<usize>,
        num_classes: usize,
    ) -> GraphContext {
        let adjacency = Rc::new(graph.adjacency().clone());
        let with_loops = adjacency.with_self_loops();
        GraphContext {
            a_hat: Rc::new(with_loops.sym_normalize()),
            rw_adj: Rc::new(with_loops.rw_normalize()),
            adj_loops: Rc::new(with_loops),
            adjacency,
            features: Rc::new(features),
            labels: Rc::new(labels),
            num_classes,
        }
    }

    /// Context over a full dataset.
    pub fn from_dataset(ds: &Dataset) -> GraphContext {
        GraphContext::new(
            &ds.graph,
            ds.features.clone(),
            ds.labels.clone(),
            ds.num_classes,
        )
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.features.rows()
    }

    /// Input feature dimensionality.
    pub fn input_dim(&self) -> usize {
        self.features.cols()
    }
}

/// What a forward pass yields: class logits (pre-softmax) and an optional
/// additive regularizer (MADReg uses it).
pub struct ForwardOutput {
    /// `N×F` logits node.
    pub logits: NodeId,
    /// Optional `1×1` regularization term to *add* to the NLL loss.
    pub regularizer: Option<NodeId>,
}

impl ForwardOutput {
    /// Plain logits without a regularizer.
    pub fn logits(logits: NodeId) -> ForwardOutput {
        ForwardOutput { logits, regularizer: None }
    }
}

/// A trainable node-classification model.
///
/// Implementations own their [`ParamStore`]; the trainer drives
/// `forward → backward(store_mut) → optimizer.step(store_mut)`.
pub trait NodeClassifier {
    /// Display name (matches the paper's tables).
    fn name(&self) -> String;

    /// Record one forward pass on `tape` and return the logits.
    ///
    /// Must work on *any* context whose feature dimension and class count
    /// match the constructor's — that is what makes a model inductive-
    /// capable. Models with per-node parameters (Lasagne Weighted /
    /// Stochastic) are pinned to their construction graph and panic on a
    /// context of a different size, mirroring the paper's remark that those
    /// aggregators "are not suitable" for inductive tasks.
    fn forward(
        &self,
        tape: &mut Tape,
        ctx: &GraphContext,
        mode: Mode,
        rng: &mut TensorRng,
    ) -> ForwardOutput;

    /// Like [`NodeClassifier::forward`], additionally returning the hidden
    /// representations `H(1)…H(L-1)` when the architecture has a meaningful
    /// notion of them (the deep-GCN family and Lasagne override this; the
    /// default returns no hiddens). Used by the mutual-information analyses
    /// of Figs 2 and 6.
    fn forward_with_hiddens(
        &self,
        tape: &mut Tape,
        ctx: &GraphContext,
        mode: Mode,
        rng: &mut TensorRng,
    ) -> (ForwardOutput, Vec<NodeId>) {
        (self.forward(tape, ctx, mode, rng), Vec::new())
    }

    /// The parameter store (read side).
    fn store(&self) -> &ParamStore;

    /// The parameter store (written by backward + optimizer).
    fn store_mut(&mut self) -> &mut ParamStore;

    /// Whether `forward` folds graph structure into tape *constants*
    /// instead of going through the context's sparse operators (SGC's
    /// off-tape `Â^K X` is the one such model in the stack). Such constants
    /// are opaque to any downstream graph-dependency analysis — the serving
    /// layer uses this to refuse live graph mutations with a typed error
    /// rather than silently serving stale propagations.
    fn bakes_graph_into_constants(&self) -> bool {
        false
    }
}
