//! The shared forward interface: [`GraphContext`] (what a model sees of the
//! data) and [`NodeClassifier`] (what the trainer sees of a model).

use std::rc::Rc;

use lasagne_autograd::{NodeId, ParamStore, Tape};
use lasagne_datasets::Dataset;
use lasagne_graph::Graph;
use lasagne_sparse::{Csr, EdgeData, EdgeDataError};
use lasagne_tensor::{Tensor, TensorRng};

/// Train vs eval forward semantics (dropout on/off, sampled vs expected
/// stochastic gates, DropEdge on/off).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// Stochastic forward used for optimization.
    Train,
    /// Deterministic forward used for validation/test.
    Eval,
}

/// Everything a model needs from a dataset, with the derived operators
/// precomputed once.
#[derive(Clone)]
pub struct GraphContext {
    /// `Â = D̃^{-1/2}(A+I)D̃^{-1/2}` — the Eq (1) propagation operator.
    pub a_hat: Rc<Csr>,
    /// Raw symmetric adjacency, no self-loops (DropEdge re-normalizes it).
    pub adjacency: Rc<Csr>,
    /// Structure with self-loops (attention neighborhoods for GAT).
    pub adj_loops: Rc<Csr>,
    /// Row-stochastic `D̃^{-1}(A+I)` (mean aggregation for GraphSAGE).
    pub rw_adj: Rc<Csr>,
    /// `N×M` input features.
    pub features: Rc<Tensor>,
    /// Label per node.
    pub labels: Rc<Vec<usize>>,
    /// Number of classes.
    pub num_classes: usize,
    /// Edge-feature bundle for edge-aware models (DESIGN.md §15); `None`
    /// for the node-feature-only datasets.
    pub edge: Option<Rc<EdgeBundle>>,
}

/// The incidence decomposition of `Â` plus the aligned edge features — what
/// an edge-gated layer consumes (DESIGN.md §15).
///
/// `Â x` factors as `T · diag(g) · S x` where `S` (nnz×N) selects each
/// edge's source column scaled by its `Â` value, `T` (N×nnz) sums each
/// row's edges, and `g` is the per-edge gate. Both operators are plain
/// [`Csr`]s, so the whole layer is expressible in tape ops the program
/// exporter and the serving engine already handle.
pub struct EdgeBundle {
    /// `nnz×N` selector: row `e` has a single entry `Â_val(e)` at the
    /// source column of `Â`'s `e`-th stored entry.
    pub select: Rc<Csr>,
    /// `N×nnz` aggregator: row `i` has a `1` for every flat position of
    /// `Â`'s row `i`.
    pub aggregate: Rc<Csr>,
    /// `nnz×d_e` edge features aligned to `Â`'s flat entry order.
    /// Self-loop entries (absent from the raw adjacency) get zero rows, so
    /// their gate is `σ(b_g)`.
    pub feats: Tensor,
    /// Edge-feature width `d_e`.
    pub dim: usize,
}

impl EdgeBundle {
    /// Decompose `a_hat` and align `edges` (which is aligned to the raw
    /// `adjacency`) to its entry order. Fails typed if the edge table and
    /// the adjacency disagree on entry count.
    pub fn new(a_hat: &Csr, adjacency: &Csr, edges: &EdgeData) -> Result<EdgeBundle, EdgeDataError> {
        edges.check_aligned(adjacency)?;
        let nnz = a_hat.nnz();
        let n = a_hat.rows();
        let select = Csr::from_parts(
            nnz,
            n,
            (0..=nnz).collect(),
            a_hat.indices().to_vec(),
            a_hat.values().to_vec(),
        );
        let aggregate = Csr::from_parts(
            n,
            nnz,
            a_hat.indptr().to_vec(),
            (0..nnz as u32).collect(),
            vec![1.0; nnz],
        );
        let mut feats = Tensor::zeros(nnz, edges.dim());
        let mut flat = 0usize;
        for r in 0..n {
            for &c in a_hat.row_indices(r) {
                if r as u32 != c {
                    let e = adjacency.edge_position(r as u32, c).ok_or(
                        EdgeDataError::MissingFeature { row: r as u32, col: c },
                    )?;
                    feats.row_mut(flat).copy_from_slice(edges.row(e));
                }
                flat += 1;
            }
        }
        Ok(EdgeBundle {
            select: Rc::new(select),
            aggregate: Rc::new(aggregate),
            feats,
            dim: edges.dim(),
        })
    }
}

impl GraphContext {
    /// Build all derived operators from a graph + data.
    pub fn new(
        graph: &Graph,
        features: Tensor,
        labels: Vec<usize>,
        num_classes: usize,
    ) -> GraphContext {
        let adjacency = Rc::new(graph.adjacency().clone());
        let with_loops = adjacency.with_self_loops();
        GraphContext {
            a_hat: Rc::new(with_loops.sym_normalize()),
            rw_adj: Rc::new(with_loops.rw_normalize()),
            adj_loops: Rc::new(with_loops),
            adjacency,
            features: Rc::new(features),
            labels: Rc::new(labels),
            num_classes,
            edge: None,
        }
    }

    /// Like [`GraphContext::new`], additionally attaching edge features
    /// aligned to the graph's adjacency (nnz order). Fails typed on
    /// misalignment instead of serving a silently-permuted gate.
    pub fn with_edge_data(
        graph: &Graph,
        features: Tensor,
        labels: Vec<usize>,
        num_classes: usize,
        edges: &EdgeData,
    ) -> Result<GraphContext, EdgeDataError> {
        let mut ctx = GraphContext::new(graph, features, labels, num_classes);
        let bundle = EdgeBundle::new(&ctx.a_hat, &ctx.adjacency, edges)?;
        ctx.edge = Some(Rc::new(bundle));
        Ok(ctx)
    }

    /// Context over a full dataset.
    pub fn from_dataset(ds: &Dataset) -> GraphContext {
        GraphContext::new(
            &ds.graph,
            ds.features.clone(),
            ds.labels.clone(),
            ds.num_classes,
        )
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.features.rows()
    }

    /// Input feature dimensionality.
    pub fn input_dim(&self) -> usize {
        self.features.cols()
    }
}

/// What a forward pass yields: class logits (pre-softmax) and an optional
/// additive regularizer (MADReg uses it).
pub struct ForwardOutput {
    /// `N×F` logits node.
    pub logits: NodeId,
    /// Optional `1×1` regularization term to *add* to the NLL loss.
    pub regularizer: Option<NodeId>,
}

impl ForwardOutput {
    /// Plain logits without a regularizer.
    pub fn logits(logits: NodeId) -> ForwardOutput {
        ForwardOutput { logits, regularizer: None }
    }
}

/// A trainable node-classification model.
///
/// Implementations own their [`ParamStore`]; the trainer drives
/// `forward → backward(store_mut) → optimizer.step(store_mut)`.
pub trait NodeClassifier {
    /// Display name (matches the paper's tables).
    fn name(&self) -> String;

    /// Record one forward pass on `tape` and return the logits.
    ///
    /// Must work on *any* context whose feature dimension and class count
    /// match the constructor's — that is what makes a model inductive-
    /// capable. Models with per-node parameters (Lasagne Weighted /
    /// Stochastic) are pinned to their construction graph and panic on a
    /// context of a different size, mirroring the paper's remark that those
    /// aggregators "are not suitable" for inductive tasks.
    fn forward(
        &self,
        tape: &mut Tape,
        ctx: &GraphContext,
        mode: Mode,
        rng: &mut TensorRng,
    ) -> ForwardOutput;

    /// Like [`NodeClassifier::forward`], additionally returning the hidden
    /// representations `H(1)…H(L-1)` when the architecture has a meaningful
    /// notion of them (the deep-GCN family and Lasagne override this; the
    /// default returns no hiddens). Used by the mutual-information analyses
    /// of Figs 2 and 6.
    fn forward_with_hiddens(
        &self,
        tape: &mut Tape,
        ctx: &GraphContext,
        mode: Mode,
        rng: &mut TensorRng,
    ) -> (ForwardOutput, Vec<NodeId>) {
        (self.forward(tape, ctx, mode, rng), Vec::new())
    }

    /// The parameter store (read side).
    fn store(&self) -> &ParamStore;

    /// The parameter store (written by backward + optimizer).
    fn store_mut(&mut self) -> &mut ParamStore;

    /// Whether `forward` folds graph structure into tape *constants*
    /// instead of going through the context's sparse operators (SGC's
    /// off-tape `Â^K X` is the one such model in the stack). Such constants
    /// are opaque to any downstream graph-dependency analysis — the serving
    /// layer uses this to refuse live graph mutations with a typed error
    /// rather than silently serving stale propagations.
    fn bakes_graph_into_constants(&self) -> bool {
        false
    }
}
