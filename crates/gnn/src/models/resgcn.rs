//! ResGCN: GCN with residual (skip) connections between hidden layers, the
//! ResNet-inspired deep variant the paper discusses in §2.2.

use lasagne_autograd::{ParamStore, Tape};
use lasagne_tensor::TensorRng;

use crate::layers::GraphConvLayer;
use crate::models::{input_node, maybe_dropout};
use crate::{ForwardOutput, GraphContext, Hyper, Mode, NodeClassifier};

/// `H(l+1) = ReLU(Â H(l) W(l)) + H(l)` on the hidden layers. The residual
/// path requires all hidden dimensions to be equal — the restriction
/// Lasagne's layer aggregators remove (§4.1).
pub struct ResGcn {
    input_layer: GraphConvLayer,
    hidden_layers: Vec<GraphConvLayer>,
    output_layer: GraphConvLayer,
    dropout_keep: f32,
    store: ParamStore,
}

impl ResGcn {
    /// `hyper.depth` total GC layers (input + residual hidden + output).
    pub fn new(in_dim: usize, num_classes: usize, hyper: &Hyper, seed: u64) -> ResGcn {
        assert!(hyper.depth >= 2, "ResGcn: depth must be ≥ 2");
        let mut rng = TensorRng::seed_from_u64(seed);
        let mut store = ParamStore::new();
        let input_layer =
            GraphConvLayer::new(&mut store, "gc0", in_dim, hyper.hidden, &mut rng);
        let hidden_layers: Vec<GraphConvLayer> = (1..hyper.depth - 1)
            .map(|l| {
                GraphConvLayer::new(&mut store, &format!("gc{l}"), hyper.hidden, hyper.hidden, &mut rng)
            })
            .collect();
        let output_layer = GraphConvLayer::new(
            &mut store,
            &format!("gc{}", hyper.depth - 1),
            hyper.hidden,
            num_classes,
            &mut rng,
        );
        ResGcn {
            input_layer,
            hidden_layers,
            output_layer,
            dropout_keep: hyper.dropout_keep,
            store,
        }
    }

    /// Total GC layer count.
    pub fn depth(&self) -> usize {
        self.hidden_layers.len() + 2
    }
}

impl NodeClassifier for ResGcn {
    fn name(&self) -> String {
        format!("ResGCN-{}", self.depth())
    }

    fn forward(
        &self,
        tape: &mut Tape,
        ctx: &GraphContext,
        mode: Mode,
        rng: &mut TensorRng,
    ) -> ForwardOutput {
        self.forward_with_hiddens(tape, ctx, mode, rng).0
    }

    fn forward_with_hiddens(
        &self,
        tape: &mut Tape,
        ctx: &GraphContext,
        mode: Mode,
        rng: &mut TensorRng,
    ) -> (ForwardOutput, Vec<lasagne_autograd::NodeId>) {
        let x = input_node(tape, ctx, mode, self.dropout_keep, rng);
        let first = self.input_layer.forward(tape, &self.store, &ctx.a_hat, x);
        let mut h = tape.relu(first);
        let mut hiddens = vec![h];
        for layer in &self.hidden_layers {
            let hd = maybe_dropout(tape, h, mode, self.dropout_keep, rng);
            let conv = layer.forward(tape, &self.store, &ctx.a_hat, hd);
            let act = tape.relu(conv);
            // Residual connection (ResNet-style identity skip).
            h = tape.add(act, h);
            hiddens.push(h);
        }
        let hd = maybe_dropout(tape, h, mode, self.dropout_keep, rng);
        let logits = self.output_layer.forward(tape, &self.store, &ctx.a_hat, hd);
        hiddens.push(logits);
        (ForwardOutput::logits(logits), hiddens)
    }

    fn store(&self) -> &ParamStore {
        &self.store
    }

    fn store_mut(&mut self) -> &mut ParamStore {
        &mut self.store
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::test_support::{assert_model_learns, tiny_ctx};

    #[test]
    fn resgcn_learns() {
        let mut m = ResGcn::new(8, 3, &Hyper::default().with_depth(4), 0);
        assert_model_learns(&mut m, 0);
    }

    #[test]
    fn deep_resgcn_stays_finite() {
        // 10 layers of un-normalized residual adds can blow up; Â's spectral
        // radius ≤ 1 keeps activations bounded enough to stay finite.
        let m = ResGcn::new(8, 3, &Hyper::default().with_depth(10), 1);
        let (ctx, _) = tiny_ctx(1);
        let mut rng = TensorRng::seed_from_u64(0);
        let mut tape = Tape::new();
        let out = m.forward(&mut tape, &ctx, Mode::Eval, &mut rng);
        assert!(!tape.value(out.logits).has_non_finite());
    }

    #[test]
    fn depth_accounts_all_layers() {
        let m = ResGcn::new(8, 3, &Hyper::default().with_depth(6), 0);
        assert_eq!(m.depth(), 6);
        assert_eq!(m.name(), "ResGCN-6");
    }

    #[test]
    #[should_panic(expected = "depth must be ≥ 2")]
    fn rejects_single_layer() {
        let _ = ResGcn::new(8, 3, &Hyper { depth: 1, ..Hyper::default() }, 0);
    }
}
