//! LASE-style edge-gated GCN (DESIGN.md §15): graph convolution whose
//! messages are scaled by a learned per-edge gate over link attributes —
//! the GCN-LASE idea specialized to the gate (the part that carries the
//! recommendation signal) on top of the incidence decomposition of `Â`.

use lasagne_autograd::{ParamStore, Tape};
use lasagne_tensor::TensorRng;

use crate::layers::EdgeGatedConvLayer;
use crate::models::{input_node, maybe_dropout};
use crate::{ForwardOutput, GraphContext, Hyper, Mode, NodeClassifier};

/// Multi-layer edge-gated GCN:
/// `H(l) = ReLU(T diag(σ(E w_g + b_g)) S (H(l-1) W(l)) + b(l))`.
///
/// Requires a context carrying an [`crate::EdgeBundle`]
/// ([`GraphContext::with_edge_data`]); forwarding on a node-feature-only
/// context panics with a named reason — there is no meaningful gate to
/// compute without link attributes.
pub struct EdgeGatedGcn {
    layers: Vec<EdgeGatedConvLayer>,
    edge_dim: usize,
    dropout_keep: f32,
    store: ParamStore,
}

impl EdgeGatedGcn {
    /// Build a `hyper.depth`-layer stack for `in_dim` node features,
    /// `edge_dim` link attributes, and `num_classes` outputs.
    pub fn new(
        in_dim: usize,
        num_classes: usize,
        edge_dim: usize,
        hyper: &Hyper,
        seed: u64,
    ) -> EdgeGatedGcn {
        assert!(hyper.depth >= 1, "EdgeGatedGcn: depth must be ≥ 1");
        assert!(edge_dim >= 1, "EdgeGatedGcn: edge_dim must be ≥ 1");
        let mut rng = TensorRng::seed_from_u64(seed);
        let mut store = ParamStore::new();
        let mut layers = Vec::with_capacity(hyper.depth);
        for l in 0..hyper.depth {
            let din = if l == 0 { in_dim } else { hyper.hidden };
            let dout = if l + 1 == hyper.depth { num_classes } else { hyper.hidden };
            layers.push(EdgeGatedConvLayer::new(
                &mut store,
                &format!("eg{l}"),
                din,
                dout,
                edge_dim,
                &mut rng,
            ));
        }
        EdgeGatedGcn {
            layers,
            edge_dim,
            dropout_keep: hyper.dropout_keep,
            store,
        }
    }

    /// Number of gated-convolution layers.
    pub fn depth(&self) -> usize {
        self.layers.len()
    }
}

impl NodeClassifier for EdgeGatedGcn {
    fn name(&self) -> String {
        format!("EdgeGatedGCN-{}", self.layers.len())
    }

    fn forward(
        &self,
        tape: &mut Tape,
        ctx: &GraphContext,
        mode: Mode,
        rng: &mut TensorRng,
    ) -> ForwardOutput {
        let edge = ctx
            .edge
            .as_ref()
            .expect("EdgeGatedGcn: context has no edge features (use GraphContext::with_edge_data)");
        assert_eq!(
            edge.dim, self.edge_dim,
            "EdgeGatedGcn: context edge dim {} != model edge dim {}",
            edge.dim, self.edge_dim
        );
        // One shared constant for the edge-feature table; every layer's
        // gate reads the same node, so the exporter stores it once.
        let e_feats = tape.constant(edge.feats.clone());
        let mut h = input_node(tape, ctx, mode, self.dropout_keep, rng);
        for (l, layer) in self.layers.iter().enumerate() {
            h = layer.forward(
                tape,
                &self.store,
                &edge.select,
                &edge.aggregate,
                e_feats,
                h,
            );
            if l + 1 < self.layers.len() {
                h = tape.relu(h);
                h = maybe_dropout(tape, h, mode, self.dropout_keep, rng);
            }
        }
        ForwardOutput::logits(h)
    }

    fn store(&self) -> &ParamStore {
        &self.store
    }

    fn store_mut(&mut self) -> &mut ParamStore {
        &mut self.store
    }

    /// The edge-feature table is a tape constant aligned to the frozen
    /// `Â` entry order — any live graph mutation would silently misalign
    /// it, so the serving layer must refuse mutations typed.
    fn bakes_graph_into_constants(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::test_support::{short_fit, tiny_edge_ctx};

    #[test]
    fn edge_gated_learns_on_bipartite_ctx() {
        let (ctx, train) = tiny_edge_ctx(0);
        let mut m = EdgeGatedGcn::new(ctx.input_dim(), ctx.num_classes, 2, &Hyper::default(), 0);
        let mut rng = TensorRng::seed_from_u64(1);
        let mut tape = Tape::new();
        let out = m.forward(&mut tape, &ctx, Mode::Eval, &mut rng);
        let logits = tape.value(out.logits);
        assert_eq!(logits.shape(), (ctx.num_nodes(), ctx.num_classes));
        assert!(!logits.has_non_finite());
        let (first, last) = short_fit(&mut m, &ctx, &train, 30);
        assert!(last < first * 0.9, "loss did not decrease ({first} → {last})");
    }

    #[test]
    fn eval_mode_is_deterministic() {
        let (ctx, _) = tiny_edge_ctx(3);
        let m = EdgeGatedGcn::new(ctx.input_dim(), ctx.num_classes, 2, &Hyper::default(), 0);
        let mut rng = TensorRng::seed_from_u64(5);
        let mut t1 = Tape::new();
        let a = m.forward(&mut t1, &ctx, Mode::Eval, &mut rng);
        let mut t2 = Tape::new();
        let b = m.forward(&mut t2, &ctx, Mode::Eval, &mut rng);
        assert!(t1.value(a.logits).approx_eq(t2.value(b.logits), 0.0));
    }

    #[test]
    #[should_panic(expected = "no edge features")]
    fn refuses_contexts_without_edge_features() {
        let (ctx, _) = crate::models::test_support::tiny_ctx(0);
        let m = EdgeGatedGcn::new(8, 3, 2, &Hyper::default(), 0);
        let mut rng = TensorRng::seed_from_u64(0);
        let mut tape = Tape::new();
        let _ = m.forward(&mut tape, &ctx, Mode::Eval, &mut rng);
    }
}
