//! FastGCN (Chen et al., ICLR'18): per-layer importance sampling of the
//! propagation — the Monte-Carlo view of graph convolution (Table 4).

use std::rc::Rc;

use lasagne_autograd::{NodeId, ParamStore, Tape};
use lasagne_tensor::TensorRng;

use lasagne_autograd::ParamId;

use crate::models::{input_node, maybe_dropout};
use crate::{ForwardOutput, GraphContext, Hyper, Mode, NodeClassifier};

/// A 2-layer GCN whose training-time propagation `Â H` is replaced by the
/// importance-sampled estimator `Â[:, S] H[S] / (t·q_S)` with
/// `q(v) ∝ ‖Â[:, v]‖²` (the variance-minimizing proposal of the FastGCN
/// paper). Evaluation uses the exact propagation.
///
/// Sampling is with replacement over `t = hyper.fastgcn_samples` draws (as
/// in the original paper, which makes the `1/(t·q)` weights exactly
/// unbiased); repeated draws of the same column are collapsed into one
/// column with weight `count/(t·q)`.
pub struct FastGcn {
    /// `(W, b)` per layer.
    weights: Vec<(ParamId, ParamId)>,
    samples: usize,
    dropout_keep: f32,
    store: ParamStore,
}

impl FastGcn {
    /// FastGCN over `hyper.depth` layers (the published model uses 2).
    pub fn new(in_dim: usize, num_classes: usize, hyper: &Hyper, seed: u64) -> FastGcn {
        assert!(hyper.depth >= 1, "FastGcn: depth must be ≥ 1");
        let mut rng = TensorRng::seed_from_u64(seed);
        let mut store = ParamStore::new();
        let mut weights = Vec::with_capacity(hyper.depth);
        for l in 0..hyper.depth {
            let din = if l == 0 { in_dim } else { hyper.hidden };
            let dout = if l + 1 == hyper.depth { num_classes } else { hyper.hidden };
            let w = store.add(format!("gc{l}.w"), rng.glorot_uniform(din, dout));
            let b = store.add_with_decay(
                format!("gc{l}.b"),
                lasagne_tensor::Tensor::zeros(1, dout),
                false,
            );
            weights.push((w, b));
        }
        FastGcn {
            weights,
            samples: hyper.fastgcn_samples,
            dropout_keep: hyper.dropout_keep,
            store,
        }
    }

    /// One importance-sampled propagation step: returns a node computing
    /// an unbiased estimate of `Â · h`.
    fn sampled_spmm(
        &self,
        tape: &mut Tape,
        ctx: &GraphContext,
        h: NodeId,
        rng: &mut TensorRng,
    ) -> NodeId {
        let n = ctx.num_nodes();
        let t = self.samples.min(n);
        if t == n {
            return tape.spmm(ctx.a_hat.clone(), h);
        }
        // q(v) ∝ ‖Â[:,v]‖².
        let sq = ctx.a_hat.col_sq_norms();
        let total: f32 = sq.iter().sum();
        let mut cumulative: Vec<f32> = Vec::with_capacity(n);
        let mut acc = 0.0;
        for &w in &sq {
            acc += w;
            cumulative.push(acc);
        }
        // t draws with replacement; multiplicities fold into the weights so
        // the estimator Σ_draws Â[:,v] h_v / (t·q_v) stays exactly unbiased.
        let mut counts = vec![0u32; n];
        for _ in 0..t {
            let r = rng.uniform(0.0, total.max(f32::MIN_POSITIVE));
            let v = cumulative.partition_point(|&c| c < r).min(n - 1);
            counts[v] += 1;
        }
        let chosen: Vec<usize> = (0..n).filter(|&v| counts[v] > 0).collect();

        // Rectangular slice Â[:, S], reweighted by count/(t·q_v).
        let all_rows: Vec<usize> = (0..n).collect();
        let mut rect = ctx.a_hat.slice(&all_rows, &chosen);
        let weights: Vec<f32> = chosen
            .iter()
            .map(|&v| {
                let q = (sq[v] / total).max(1e-12);
                counts[v] as f32 / (t as f32 * q)
            })
            .collect();
        // Scale each stored entry by its column weight.
        for i in 0..rect.rows() {
            let lo = rect.indptr()[i];
            let hi = rect.indptr()[i + 1];
            for e in lo..hi {
                let c = rect.indices()[e] as usize;
                rect.values_mut()[e] *= weights[c];
            }
        }
        let h_s = tape.gather_rows(h, Rc::new(chosen));
        tape.spmm(Rc::new(rect), h_s)
    }
}

impl NodeClassifier for FastGcn {
    fn name(&self) -> String {
        format!("FastGCN-t{}", self.samples)
    }

    fn forward(
        &self,
        tape: &mut Tape,
        ctx: &GraphContext,
        mode: Mode,
        rng: &mut TensorRng,
    ) -> ForwardOutput {
        let mut h = input_node(tape, ctx, mode, self.dropout_keep, rng);
        for (l, &(w, b)) in self.weights.iter().enumerate() {
            // Weight first (cheap), then propagate (sampled in training).
            let wn = tape.param(w, &self.store);
            let bn = tape.param(b, &self.store);
            let hw = tape.matmul(h, wn);
            let prop = match mode {
                Mode::Train => self.sampled_spmm(tape, ctx, hw, rng),
                Mode::Eval => tape.spmm(ctx.a_hat.clone(), hw),
            };
            h = tape.add_row_broadcast(prop, bn);
            if l + 1 < self.weights.len() {
                h = tape.relu(h);
                h = maybe_dropout(tape, h, mode, self.dropout_keep, rng);
            }
        }
        ForwardOutput::logits(h)
    }

    fn store(&self) -> &ParamStore {
        &self.store
    }

    fn store_mut(&mut self) -> &mut ParamStore {
        &mut self.store
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::test_support::{assert_model_learns, tiny_ctx};

    #[test]
    fn fastgcn_learns() {
        let h = Hyper { fastgcn_samples: 30, ..Hyper::default() };
        let mut m = FastGcn::new(8, 3, &h, 0);
        assert_model_learns(&mut m, 0);
    }

    #[test]
    fn full_sample_size_equals_exact_propagation() {
        // t ≥ N short-circuits to the exact SpMM, so train (minus dropout)
        // equals eval.
        let h = Hyper {
            fastgcn_samples: 10_000,
            dropout_keep: 1.0,
            ..Hyper::default()
        };
        let m = FastGcn::new(8, 3, &h, 0);
        let (ctx, _) = tiny_ctx(1);
        let mut rng = TensorRng::seed_from_u64(0);
        let mut t1 = Tape::new();
        let a = m.forward(&mut t1, &ctx, Mode::Train, &mut rng);
        let mut t2 = Tape::new();
        let b = m.forward(&mut t2, &ctx, Mode::Eval, &mut rng);
        assert!(t1.value(a.logits).approx_eq(t2.value(b.logits), 1e-5));
    }

    #[test]
    fn sampled_estimate_is_unbiased_ish() {
        // Average many sampled propagations of a fixed vector and compare
        // with the exact product.
        let (ctx, _) = tiny_ctx(2);
        let h = Hyper { fastgcn_samples: 30, dropout_keep: 1.0, ..Hyper::default() };
        let m = FastGcn::new(8, 3, &h, 0);
        let mut rng = TensorRng::seed_from_u64(5);
        let x = rng.uniform_tensor(60, 4, -1.0, 1.0);
        let exact = ctx.a_hat.spmm(&x);
        let mut mean = lasagne_tensor::Tensor::zeros(60, 4);
        let reps = 300;
        for _ in 0..reps {
            let mut tape = Tape::new();
            let xn = tape.constant(x.clone());
            let est = m.sampled_spmm(&mut tape, &ctx, xn, &mut rng);
            mean.add_assign(tape.value(est));
        }
        mean.scale_assign(1.0 / reps as f32);
        // Monte-Carlo error shrinks like 1/√reps; tolerance is loose but
        // catches systematic bias (e.g. forgetting the 1/(t·q) factor).
        let err = mean.max_abs_diff(&exact);
        assert!(err < 0.35, "sampled propagation bias too large: {err}");
    }
}
