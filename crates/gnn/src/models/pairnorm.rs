//! PairNorm (Zhao & Akoglu, ICLR'20): keep the total pairwise distance of
//! node representations constant across layers so they cannot all collapse
//! together (§2.3 of the paper).

use lasagne_autograd::{ParamStore, Tape};
use lasagne_tensor::TensorRng;

use crate::layers::GraphConvLayer;
use crate::models::{input_node, maybe_dropout};
use crate::{ForwardOutput, GraphContext, Hyper, Mode, NodeClassifier};

/// GCN with a PairNorm block (center + rescale-to-constant-norm) after
/// every hidden activation.
pub struct PairNormGcn {
    layers: Vec<GraphConvLayer>,
    scale: f32,
    dropout_keep: f32,
    store: ParamStore,
}

impl PairNormGcn {
    /// GCN of `hyper.depth` layers with PairNorm scale `hyper.pairnorm_scale`.
    pub fn new(in_dim: usize, num_classes: usize, hyper: &Hyper, seed: u64) -> PairNormGcn {
        assert!(hyper.depth >= 1, "PairNormGcn: depth must be ≥ 1");
        let mut rng = TensorRng::seed_from_u64(seed);
        let mut store = ParamStore::new();
        let mut layers = Vec::with_capacity(hyper.depth);
        for l in 0..hyper.depth {
            let din = if l == 0 { in_dim } else { hyper.hidden };
            let dout = if l + 1 == hyper.depth { num_classes } else { hyper.hidden };
            layers.push(GraphConvLayer::new(&mut store, &format!("gc{l}"), din, dout, &mut rng));
        }
        PairNormGcn {
            layers,
            scale: hyper.pairnorm_scale,
            dropout_keep: hyper.dropout_keep,
            store,
        }
    }
}

impl NodeClassifier for PairNormGcn {
    fn name(&self) -> String {
        format!("PairNorm-{}", self.layers.len())
    }

    fn forward(
        &self,
        tape: &mut Tape,
        ctx: &GraphContext,
        mode: Mode,
        rng: &mut TensorRng,
    ) -> ForwardOutput {
        let mut h = input_node(tape, ctx, mode, self.dropout_keep, rng);
        for (l, layer) in self.layers.iter().enumerate() {
            h = layer.forward(tape, &self.store, &ctx.a_hat, h);
            if l + 1 < self.layers.len() {
                h = tape.pairnorm(h, self.scale);
                h = tape.relu(h);
                h = maybe_dropout(tape, h, mode, self.dropout_keep, rng);
            }
        }
        ForwardOutput::logits(h)
    }

    fn store(&self) -> &ParamStore {
        &self.store
    }

    fn store_mut(&mut self) -> &mut ParamStore {
        &mut self.store
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::test_support::{assert_model_learns, tiny_ctx};
    use lasagne_tensor::Tensor;

    #[test]
    fn pairnorm_gcn_learns() {
        let mut m = PairNormGcn::new(8, 3, &Hyper::default(), 0);
        assert_model_learns(&mut m, 0);
    }

    /// Row-representation variance across nodes — PairNorm's whole job is
    /// keeping this away from zero as depth grows.
    fn representation_variance(t: &Tensor) -> f32 {
        let mean = t.mean_rows();
        let mut acc = 0.0;
        for i in 0..t.rows() {
            for (v, &mu) in t.row(i).iter().zip(mean.row(0)) {
                acc += (v - mu) * (v - mu);
            }
        }
        acc / t.len() as f32
    }

    #[test]
    fn pairnorm_resists_collapse_vs_plain_gcn() {
        let (ctx, _) = tiny_ctx(1);
        let depth = 8;
        let plain = crate::models::Gcn::new(8, 3, &Hyper::default().with_depth(depth), 3);
        let pn = PairNormGcn::new(8, 3, &Hyper::default().with_depth(depth), 3);
        let mut rng = TensorRng::seed_from_u64(0);
        let mut t1 = Tape::new();
        let a = plain.forward(&mut t1, &ctx, Mode::Eval, &mut rng);
        let mut t2 = Tape::new();
        let b = pn.forward(&mut t2, &ctx, Mode::Eval, &mut rng);
        let v_plain = representation_variance(t1.value(a.logits));
        let v_pn = representation_variance(t2.value(b.logits));
        assert!(
            v_pn > v_plain,
            "PairNorm logit variance {v_pn} should exceed plain deep GCN {v_plain}"
        );
    }
}
