//! GAT (Veličković et al., ICLR'18): per-edge additive attention. The
//! paper's efficiency comparison (Fig 7) hinges on GAT's per-edge score
//! work being far more expensive than GCN/Lasagne's linear-time
//! aggregation.

use lasagne_autograd::{ParamStore, Tape};
use lasagne_tensor::TensorRng;

use crate::layers::GatLayer;
use crate::models::{input_node, maybe_dropout};
use crate::{ForwardOutput, GraphContext, Hyper, Mode, NodeClassifier};

/// Multi-layer, multi-head GAT: hidden layers concatenate `gat_heads`
/// independent attention heads (8 in the original paper); the output layer
/// uses a single head. The per-edge attention work scales with the head
/// count — exactly the cost the paper's Fig 7 attributes to GAT.
pub struct Gat {
    /// `layers[l]` holds the heads of layer `l` (one for the output layer).
    layers: Vec<Vec<GatLayer>>,
    dropout_keep: f32,
    store: ParamStore,
}

impl Gat {
    /// `hyper.depth` attention layers with `hyper.gat_heads` heads each
    /// (output layer: 1 head).
    pub fn new(in_dim: usize, num_classes: usize, hyper: &Hyper, seed: u64) -> Gat {
        assert!(hyper.depth >= 1, "Gat: depth must be ≥ 1");
        assert!(hyper.gat_heads >= 1, "Gat: need at least one head");
        let mut rng = TensorRng::seed_from_u64(seed);
        let mut store = ParamStore::new();
        let head_dim = (hyper.hidden / hyper.gat_heads).max(1);
        let hidden_out = head_dim * hyper.gat_heads;
        let mut layers = Vec::with_capacity(hyper.depth);
        for l in 0..hyper.depth {
            let din = if l == 0 { in_dim } else { hidden_out };
            let last = l + 1 == hyper.depth;
            let heads = if last { 1 } else { hyper.gat_heads };
            let dout = if last { num_classes } else { head_dim };
            let layer_heads = (0..heads)
                .map(|h| {
                    GatLayer::new(
                        &mut store,
                        &format!("gat{l}h{h}"),
                        din,
                        dout,
                        hyper.gat_slope,
                        &mut rng,
                    )
                })
                .collect();
            layers.push(layer_heads);
        }
        Gat {
            layers,
            dropout_keep: hyper.dropout_keep,
            store,
        }
    }

    /// Attention layer count.
    pub fn depth(&self) -> usize {
        self.layers.len()
    }

    /// Heads on the hidden layers.
    pub fn heads(&self) -> usize {
        self.layers.first().map_or(1, Vec::len)
    }
}

impl NodeClassifier for Gat {
    fn name(&self) -> String {
        format!("GAT-{}", self.layers.len())
    }

    fn forward(
        &self,
        tape: &mut Tape,
        ctx: &GraphContext,
        mode: Mode,
        rng: &mut TensorRng,
    ) -> ForwardOutput {
        let mut h = input_node(tape, ctx, mode, self.dropout_keep, rng);
        for (l, heads) in self.layers.iter().enumerate() {
            let outs: Vec<_> = heads
                .iter()
                .map(|head| head.forward(tape, &self.store, &ctx.adj_loops, h))
                .collect();
            h = if outs.len() == 1 {
                outs[0]
            } else {
                tape.concat_cols(&outs)
            };
            if l + 1 < self.layers.len() {
                // ELU in the original; LeakyReLU keeps the op set small with
                // the same qualitative smooth-negative behavior.
                h = tape.leaky_relu(h, 0.1);
                h = maybe_dropout(tape, h, mode, self.dropout_keep, rng);
            }
        }
        ForwardOutput::logits(h)
    }

    fn store(&self) -> &ParamStore {
        &self.store
    }

    fn store_mut(&mut self) -> &mut ParamStore {
        &mut self.store
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::test_support::assert_model_learns;

    #[test]
    fn gat_learns() {
        let h = Hyper { gat_heads: 2, ..Hyper::default() };
        let mut m = Gat::new(8, 3, &h, 0);
        assert_model_learns(&mut m, 0);
    }

    #[test]
    fn four_layer_gat_builds() {
        let h = Hyper { gat_heads: 2, ..Hyper::default().with_depth(4) };
        let m = Gat::new(8, 3, &h, 0);
        assert_eq!(m.depth(), 4);
        assert_eq!(m.heads(), 2);
        assert_eq!(m.name(), "GAT-4");
        // 3 params per head: 3 hidden layers × 2 heads + 1 output head.
        assert_eq!(m.store().len(), 3 * (3 * 2 + 1));
    }

    #[test]
    fn multi_head_output_width_is_consistent() {
        use crate::models::test_support::tiny_ctx;
        // hidden 30 with 8 heads → head_dim 3, hidden width 24.
        let h = Hyper { gat_heads: 8, ..Hyper::default().with_hidden(30).with_depth(3) };
        let m = Gat::new(8, 3, &h, 0);
        let (ctx, _) = tiny_ctx(5);
        let mut rng = TensorRng::seed_from_u64(0);
        let mut tape = Tape::new();
        let out = m.forward(&mut tape, &ctx, Mode::Eval, &mut rng);
        assert_eq!(tape.value(out.logits).shape(), (60, 3));
    }
}
