//! GraphSAGE (Hamilton et al., NIPS'17) with the mean aggregator — the
//! inductive baseline of Table 4.

use lasagne_autograd::{ParamStore, Tape};
use lasagne_tensor::TensorRng;

use crate::layers::LinearLayer;
use crate::models::{input_node, maybe_dropout};
use crate::{ForwardOutput, GraphContext, Hyper, Mode, NodeClassifier};

/// SAGE-mean: each layer computes `σ(W · [h ‖ mean_{j∈N(i)} h_j])`. All
/// parameters are graph-size independent, so a model trained on the
/// inductive training subgraph evaluates directly on the full graph.
pub struct GraphSage {
    layers: Vec<LinearLayer>,
    dropout_keep: f32,
    store: ParamStore,
}

impl GraphSage {
    /// `hyper.depth` SAGE-mean layers.
    pub fn new(in_dim: usize, num_classes: usize, hyper: &Hyper, seed: u64) -> GraphSage {
        assert!(hyper.depth >= 1, "GraphSage: depth must be ≥ 1");
        let mut rng = TensorRng::seed_from_u64(seed);
        let mut store = ParamStore::new();
        let mut layers = Vec::with_capacity(hyper.depth);
        for l in 0..hyper.depth {
            let din = 2 * if l == 0 { in_dim } else { hyper.hidden };
            let dout = if l + 1 == hyper.depth { num_classes } else { hyper.hidden };
            layers.push(LinearLayer::new(&mut store, &format!("sage{l}"), din, dout, &mut rng));
        }
        GraphSage {
            layers,
            dropout_keep: hyper.dropout_keep,
            store,
        }
    }
}

impl NodeClassifier for GraphSage {
    fn name(&self) -> String {
        format!("GraphSAGE-{}", self.layers.len())
    }

    fn forward(
        &self,
        tape: &mut Tape,
        ctx: &GraphContext,
        mode: Mode,
        rng: &mut TensorRng,
    ) -> ForwardOutput {
        let mut h = input_node(tape, ctx, mode, self.dropout_keep, rng);
        for (l, layer) in self.layers.iter().enumerate() {
            let neigh = tape.spmm(ctx.rw_adj.clone(), h);
            let cat = tape.concat_cols(&[h, neigh]);
            h = layer.forward(tape, &self.store, cat);
            if l + 1 < self.layers.len() {
                h = tape.relu(h);
                h = maybe_dropout(tape, h, mode, self.dropout_keep, rng);
            }
        }
        ForwardOutput::logits(h)
    }

    fn store(&self) -> &ParamStore {
        &self.store
    }

    fn store_mut(&mut self) -> &mut ParamStore {
        &mut self.store
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::test_support::{assert_model_learns, tiny_ctx};

    #[test]
    fn sage_learns() {
        let mut m = GraphSage::new(8, 3, &Hyper::default(), 0);
        assert_model_learns(&mut m, 0);
    }

    #[test]
    fn same_weights_run_on_differently_sized_graphs() {
        // The inductive property: a model built once forwards on a context
        // with a different node count.
        let m = GraphSage::new(8, 3, &Hyper::default(), 0);
        let (big, _) = tiny_ctx(1);
        let mut rng = TensorRng::seed_from_u64(0);
        let mut t1 = Tape::new();
        let a = m.forward(&mut t1, &big, Mode::Eval, &mut rng);
        assert_eq!(t1.value(a.logits).rows(), 60);

        // A smaller context with the same feature dim.
        let g = lasagne_graph::Graph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]);
        let feats = rng.uniform_tensor(5, 8, -1.0, 1.0);
        let small = crate::GraphContext::new(&g, feats, vec![0, 1, 2, 0, 1], 3);
        let mut t2 = Tape::new();
        let b = m.forward(&mut t2, &small, Mode::Eval, &mut rng);
        assert_eq!(t2.value(b.logits).rows(), 5);
    }
}
