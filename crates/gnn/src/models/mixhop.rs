//! MixHop (Abu-El-Haija et al., ICML'19): each layer mixes the powers of
//! the adjacency — `concat_p(Â^p H W_p)` — so long-distance neighbors reach
//! a node without deep stacking (§2.3 of the paper).

use lasagne_autograd::{NodeId, ParamStore, Tape};
use lasagne_tensor::TensorRng;

use crate::layers::LinearLayer;
use crate::models::{input_node, maybe_dropout};
use crate::{ForwardOutput, GraphContext, Hyper, Mode, NodeClassifier};

/// Two-level MixHop (the published configuration): each layer owns one
/// weight matrix per adjacency power `p ∈ 0..=P`, and the outputs are
/// concatenated; a linear head classifies.
pub struct MixHop {
    /// `layer_weights[l][p]` transforms the p-th power branch of layer l.
    layer_weights: Vec<Vec<LinearLayer>>,
    classifier: LinearLayer,
    powers: usize,
    dropout_keep: f32,
    store: ParamStore,
}

impl MixHop {
    /// `hyper.depth` mixing layers over powers `0..=hyper.mixhop_powers`.
    pub fn new(in_dim: usize, num_classes: usize, hyper: &Hyper, seed: u64) -> MixHop {
        assert!(hyper.depth >= 1, "MixHop: depth must be ≥ 1");
        let mut rng = TensorRng::seed_from_u64(seed);
        let mut store = ParamStore::new();
        let branches = hyper.mixhop_powers + 1;
        let mut layer_weights = Vec::with_capacity(hyper.depth);
        for l in 0..hyper.depth {
            let din = if l == 0 { in_dim } else { hyper.hidden * branches };
            let ws = (0..branches)
                .map(|p| {
                    LinearLayer::new(&mut store, &format!("mix{l}p{p}"), din, hyper.hidden, &mut rng)
                })
                .collect();
            layer_weights.push(ws);
        }
        let classifier = LinearLayer::new(
            &mut store,
            "mix_out",
            hyper.hidden * branches,
            num_classes,
            &mut rng,
        );
        MixHop {
            layer_weights,
            classifier,
            powers: hyper.mixhop_powers,
            dropout_keep: hyper.dropout_keep,
            store,
        }
    }

    fn mix_layer(
        &self,
        tape: &mut Tape,
        ctx: &GraphContext,
        weights: &[LinearLayer],
        h: NodeId,
    ) -> NodeId {
        // Power branches share the propagation chain: Â⁰h, Â¹h, Â²h, …
        let mut powered = h;
        let mut branches = Vec::with_capacity(weights.len());
        for (p, w) in weights.iter().enumerate() {
            if p > 0 {
                powered = tape.spmm(ctx.a_hat.clone(), powered);
            }
            branches.push(w.forward(tape, &self.store, powered));
        }
        let cat = tape.concat_cols(&branches);
        tape.relu(cat)
    }

    /// Highest adjacency power mixed in.
    pub fn powers(&self) -> usize {
        self.powers
    }
}

impl NodeClassifier for MixHop {
    fn name(&self) -> String {
        format!("MixHop-P{}", self.powers)
    }

    fn forward(
        &self,
        tape: &mut Tape,
        ctx: &GraphContext,
        mode: Mode,
        rng: &mut TensorRng,
    ) -> ForwardOutput {
        let mut h = input_node(tape, ctx, mode, self.dropout_keep, rng);
        for ws in &self.layer_weights {
            h = self.mix_layer(tape, ctx, ws, h);
            h = maybe_dropout(tape, h, mode, self.dropout_keep, rng);
        }
        let logits = self.classifier.forward(tape, &self.store, h);
        ForwardOutput::logits(logits)
    }

    fn store(&self) -> &ParamStore {
        &self.store
    }

    fn store_mut(&mut self) -> &mut ParamStore {
        &mut self.store
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::test_support::{assert_model_learns, tiny_ctx};

    #[test]
    fn mixhop_learns() {
        let mut m = MixHop::new(8, 3, &Hyper::default(), 0);
        assert_model_learns(&mut m, 0);
    }

    #[test]
    fn powers_zero_reduces_to_mlp_structure() {
        let h = Hyper { mixhop_powers: 0, ..Hyper::default() };
        let m = MixHop::new(8, 3, &h, 0);
        // One branch per layer + classifier = depth + 1 linear layers,
        // 2 params each.
        assert_eq!(m.store().len(), (h.depth + 1) * 2);
    }

    #[test]
    fn high_powers_stay_finite() {
        let h = Hyper { mixhop_powers: 5, ..Hyper::default() };
        let m = MixHop::new(8, 3, &h, 0);
        let (ctx, _) = tiny_ctx(1);
        let mut rng = TensorRng::seed_from_u64(0);
        let mut tape = Tape::new();
        let out = m.forward(&mut tape, &ctx, Mode::Eval, &mut rng);
        assert!(!tape.value(out.logits).has_non_finite());
    }
}
