//! DenseGCN (Li et al., ICCV'19): DenseNet-style dense connectivity — every
//! layer consumes the concatenation of *all* previous layer outputs.

use lasagne_autograd::{ParamStore, Tape};
use lasagne_tensor::TensorRng;

use crate::layers::GraphConvLayer;
use crate::models::{input_node, maybe_dropout};
use crate::{ForwardOutput, GraphContext, Hyper, Mode, NodeClassifier};

/// Dense connectivity: layer `l` maps `concat(H(1)…H(l-1))` (dimension
/// `hidden·(l-1)`, or the input dimension for `l = 1`) to `hidden`; the
/// classifier is a GC layer over the concatenation of every hidden output.
/// The vertex-wise concatenation "treats the node hidden representations
/// from different layers in the same way" — the locality blindness Lasagne
/// fixes (§4.1).
pub struct DenseGcn {
    layers: Vec<GraphConvLayer>,
    classifier: GraphConvLayer,
    hidden: usize,
    dropout_keep: f32,
    store: ParamStore,
}

impl DenseGcn {
    /// `hyper.depth` total GC layers (hidden stack + dense classifier).
    pub fn new(in_dim: usize, num_classes: usize, hyper: &Hyper, seed: u64) -> DenseGcn {
        assert!(hyper.depth >= 2, "DenseGcn: depth must be ≥ 2");
        let mut rng = TensorRng::seed_from_u64(seed);
        let mut store = ParamStore::new();
        let hidden_count = hyper.depth - 1;
        let mut layers = Vec::with_capacity(hidden_count);
        for l in 0..hidden_count {
            let din = if l == 0 { in_dim } else { hyper.hidden * l };
            layers.push(GraphConvLayer::new(
                &mut store,
                &format!("gc{l}"),
                din,
                hyper.hidden,
                &mut rng,
            ));
        }
        let classifier = GraphConvLayer::new(
            &mut store,
            "classifier",
            hyper.hidden * hidden_count,
            num_classes,
            &mut rng,
        );
        DenseGcn {
            layers,
            classifier,
            hidden: hyper.hidden,
            dropout_keep: hyper.dropout_keep,
            store,
        }
    }

    /// Total GC layer count.
    pub fn depth(&self) -> usize {
        self.layers.len() + 1
    }

    /// Width of each hidden block.
    pub fn hidden(&self) -> usize {
        self.hidden
    }
}

impl NodeClassifier for DenseGcn {
    fn name(&self) -> String {
        format!("DenseGCN-{}", self.depth())
    }

    fn forward(
        &self,
        tape: &mut Tape,
        ctx: &GraphContext,
        mode: Mode,
        rng: &mut TensorRng,
    ) -> ForwardOutput {
        self.forward_with_hiddens(tape, ctx, mode, rng).0
    }

    fn forward_with_hiddens(
        &self,
        tape: &mut Tape,
        ctx: &GraphContext,
        mode: Mode,
        rng: &mut TensorRng,
    ) -> (ForwardOutput, Vec<lasagne_autograd::NodeId>) {
        let x = input_node(tape, ctx, mode, self.dropout_keep, rng);
        let mut outputs = Vec::with_capacity(self.layers.len());
        for (l, layer) in self.layers.iter().enumerate() {
            let input = if l == 0 {
                x
            } else {
                tape.concat_cols(&outputs)
            };
            let input = maybe_dropout(tape, input, mode, self.dropout_keep, rng);
            let conv = layer.forward(tape, &self.store, &ctx.a_hat, input);
            outputs.push(tape.relu(conv));
        }
        let all = tape.concat_cols(&outputs);
        let all = maybe_dropout(tape, all, mode, self.dropout_keep, rng);
        let logits = self.classifier.forward(tape, &self.store, &ctx.a_hat, all);
        outputs.push(logits);
        (ForwardOutput::logits(logits), outputs)
    }

    fn store(&self) -> &ParamStore {
        &self.store
    }

    fn store_mut(&mut self) -> &mut ParamStore {
        &mut self.store
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::test_support::{assert_model_learns, tiny_ctx};

    #[test]
    fn densegcn_learns() {
        let mut m = DenseGcn::new(8, 3, &Hyper::default().with_depth(4), 0);
        assert_model_learns(&mut m, 0);
    }

    #[test]
    fn layer_widths_grow_linearly() {
        let m = DenseGcn::new(8, 3, &Hyper::default().with_depth(5).with_hidden(16), 0);
        // Hidden layers: 8→16, 16→16, 32→16, 48→16; classifier 64→3.
        assert_eq!(m.layers[0].in_dim(), 8);
        assert_eq!(m.layers[1].in_dim(), 16);
        assert_eq!(m.layers[2].in_dim(), 32);
        assert_eq!(m.layers[3].in_dim(), 48);
        assert_eq!(m.classifier.in_dim(), 64);
    }

    #[test]
    fn deep_dense_runs() {
        let m = DenseGcn::new(8, 3, &Hyper::default().with_depth(10), 0);
        let (ctx, _) = tiny_ctx(1);
        let mut rng = TensorRng::seed_from_u64(0);
        let mut tape = Tape::new();
        let out = m.forward(&mut tape, &ctx, Mode::Eval, &mut rng);
        assert_eq!(tape.value(out.logits).shape(), (60, 3));
        assert!(!tape.value(out.logits).has_non_finite());
    }
}
