//! Vanilla GCN (Kipf & Welling, ICLR'17) — Eq (2) of the paper.

use lasagne_autograd::{ParamStore, Tape};
use lasagne_tensor::TensorRng;

use crate::layers::GraphConvLayer;
use crate::models::{input_node, maybe_dropout};
use crate::{ForwardOutput, GraphContext, Hyper, Mode, NodeClassifier};

/// Multi-layer GCN: `H(l) = ReLU(Â H(l-1) W(l))`, logits from the last
/// layer. The reference 2-layer configuration is the paper's strongest
/// shallow baseline; deeper stacks exhibit the over-smoothing collapse of
/// Fig 5.
pub struct Gcn {
    layers: Vec<GraphConvLayer>,
    dropout_keep: f32,
    store: ParamStore,
}

impl Gcn {
    /// Build a `hyper.depth`-layer GCN for `in_dim` features and
    /// `num_classes` outputs.
    pub fn new(in_dim: usize, num_classes: usize, hyper: &Hyper, seed: u64) -> Gcn {
        assert!(hyper.depth >= 1, "Gcn: depth must be ≥ 1");
        let mut rng = TensorRng::seed_from_u64(seed);
        let mut store = ParamStore::new();
        let mut layers = Vec::with_capacity(hyper.depth);
        for l in 0..hyper.depth {
            let din = if l == 0 { in_dim } else { hyper.hidden };
            let dout = if l + 1 == hyper.depth { num_classes } else { hyper.hidden };
            layers.push(GraphConvLayer::new(&mut store, &format!("gc{l}"), din, dout, &mut rng));
        }
        Gcn {
            layers,
            dropout_keep: hyper.dropout_keep,
            store,
        }
    }

    /// Number of graph-convolution layers.
    pub fn depth(&self) -> usize {
        self.layers.len()
    }
}

impl NodeClassifier for Gcn {
    fn name(&self) -> String {
        format!("GCN-{}", self.layers.len())
    }

    fn forward(
        &self,
        tape: &mut Tape,
        ctx: &GraphContext,
        mode: Mode,
        rng: &mut TensorRng,
    ) -> ForwardOutput {
        self.forward_with_hiddens(tape, ctx, mode, rng).0
    }

    fn forward_with_hiddens(
        &self,
        tape: &mut Tape,
        ctx: &GraphContext,
        mode: Mode,
        rng: &mut TensorRng,
    ) -> (ForwardOutput, Vec<lasagne_autograd::NodeId>) {
        let mut h = input_node(tape, ctx, mode, self.dropout_keep, rng);
        let mut hiddens = Vec::with_capacity(self.layers.len());
        for (l, layer) in self.layers.iter().enumerate() {
            h = layer.forward(tape, &self.store, &ctx.a_hat, h);
            if l + 1 < self.layers.len() {
                h = tape.relu(h);
                hiddens.push(h);
                h = maybe_dropout(tape, h, mode, self.dropout_keep, rng);
            }
        }
        hiddens.push(h); // the final layer counts as H(L)
        (ForwardOutput::logits(h), hiddens)
    }

    fn store(&self) -> &ParamStore {
        &self.store
    }

    fn store_mut(&mut self) -> &mut ParamStore {
        &mut self.store
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::test_support::{assert_model_learns, tiny_ctx};

    #[test]
    fn two_layer_gcn_learns() {
        let mut m = Gcn::new(8, 3, &Hyper::default(), 0);
        assert_model_learns(&mut m, 0);
    }

    #[test]
    fn deep_gcn_builds_and_runs() {
        let h = Hyper::default().with_depth(8);
        let mut m = Gcn::new(8, 3, &h, 0);
        assert_eq!(m.depth(), 8);
        let (ctx, _) = tiny_ctx(1);
        let mut rng = TensorRng::seed_from_u64(0);
        let mut tape = Tape::new();
        let out = m.forward(&mut tape, &ctx, Mode::Eval, &mut rng);
        assert_eq!(tape.value(out.logits).shape(), (60, 3));
        // Keep the borrow checker honest about the trait API.
        assert!(m.store_mut().len() > 0);
    }

    #[test]
    fn single_layer_degenerate_case() {
        let h = Hyper { depth: 1, ..Hyper::default() };
        let m = Gcn::new(8, 3, &h, 0);
        assert_eq!(m.depth(), 1);
        let (ctx, _) = tiny_ctx(2);
        let mut rng = TensorRng::seed_from_u64(0);
        let mut tape = Tape::new();
        let out = m.forward(&mut tape, &ctx, Mode::Eval, &mut rng);
        assert_eq!(tape.value(out.logits).shape(), (60, 3));
    }

    #[test]
    fn eval_mode_is_deterministic() {
        let m = Gcn::new(8, 3, &Hyper::default(), 0);
        let (ctx, _) = tiny_ctx(3);
        let mut rng = TensorRng::seed_from_u64(5);
        let mut t1 = Tape::new();
        let a = m.forward(&mut t1, &ctx, Mode::Eval, &mut rng);
        let mut t2 = Tape::new();
        let b = m.forward(&mut t2, &ctx, Mode::Eval, &mut rng);
        assert!(t1.value(a.logits).approx_eq(t2.value(b.logits), 0.0));
    }

    #[test]
    fn train_mode_is_stochastic() {
        let m = Gcn::new(8, 3, &Hyper::default(), 0);
        let (ctx, _) = tiny_ctx(4);
        let mut rng = TensorRng::seed_from_u64(5);
        let mut t1 = Tape::new();
        let a = m.forward(&mut t1, &ctx, Mode::Train, &mut rng);
        let mut t2 = Tape::new();
        let b = m.forward(&mut t2, &ctx, Mode::Train, &mut rng);
        assert!(!t1.value(a.logits).approx_eq(t2.value(b.logits), 1e-9));
    }
}
