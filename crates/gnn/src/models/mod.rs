//! The baseline model zoo (one module per published model).

mod appnp;
mod densegcn;
mod dropedge;
mod edgegated;
mod fastgcn;
mod gat;
mod gcn;
mod jknet;
mod madreg;
mod mixhop;
mod pairnorm;
mod resgcn;
mod sage;
mod sgc;

pub use appnp::Appnp;
pub use densegcn::DenseGcn;
pub use dropedge::DropEdgeGcn;
pub use edgegated::EdgeGatedGcn;
pub use fastgcn::FastGcn;
pub use gat::Gat;
pub use gcn::Gcn;
pub use jknet::JkNet;
pub use madreg::MadRegGcn;
pub use mixhop::MixHop;
pub use pairnorm::PairNormGcn;
pub use resgcn::ResGcn;
pub use sage::GraphSage;
pub use sgc::Sgc;

use lasagne_autograd::{NodeId, Tape};
use lasagne_tensor::TensorRng;

use crate::{GraphContext, Mode};

/// Record the input features, with dropout when training.
pub(crate) fn input_node(
    tape: &mut Tape,
    ctx: &GraphContext,
    mode: Mode,
    keep: f32,
    rng: &mut TensorRng,
) -> NodeId {
    let x = tape.constant((*ctx.features).clone());
    match mode {
        Mode::Train => tape.dropout(x, keep, rng),
        Mode::Eval => x,
    }
}

/// Dropout only when training.
pub(crate) fn maybe_dropout(
    tape: &mut Tape,
    x: NodeId,
    mode: Mode,
    keep: f32,
    rng: &mut TensorRng,
) -> NodeId {
    match mode {
        Mode::Train => tape.dropout(x, keep, rng),
        Mode::Eval => x,
    }
}

#[cfg(test)]
pub(crate) mod test_support {
    //! Shared fixtures for model smoke tests: a tiny planted-community
    //! graph, and a short optimization run that must reduce the loss.

    use std::rc::Rc;

    use lasagne_autograd::{Adam, Optimizer, Tape};
    use lasagne_graph::generators::{dc_sbm, DcSbmConfig};
    use lasagne_tensor::TensorRng;

    use crate::{GraphContext, Mode, NodeClassifier};

    /// A 60-node, 3-class planted-partition context.
    pub fn tiny_ctx(seed: u64) -> (GraphContext, Vec<usize>) {
        let mut rng = TensorRng::seed_from_u64(seed);
        let (g, labels) = dc_sbm(
            &DcSbmConfig {
                nodes: 60,
                classes: 3,
                avg_degree: 6.0,
                homophily: 0.9,
                power_exponent: 2.5,
                max_weight_ratio: 20.0,
            },
            &mut rng,
        );
        let features = lasagne_datasets::generate_features(
            &g,
            &labels,
            3,
            &lasagne_datasets::FeatureConfig {
                dim: 8,
                signal: 1.5,
                noise_scale: 0.5,
                degree_noise_exponent: 0.3,
                mask_base: 0.0,
            },
            &mut rng,
        );
        let train: Vec<usize> = (0..30).collect();
        let ctx = GraphContext::new(&g, features, labels, 3);
        (ctx, train)
    }

    /// A 40-node bipartite context (24 items / 16 users, 3 classes) with
    /// rating + recency edge features attached — the fixture for the
    /// edge-gated model family.
    pub fn tiny_edge_ctx(seed: u64) -> (GraphContext, Vec<usize>) {
        use lasagne_graph::generators::{bipartite_user_item, BipartiteConfig};
        use lasagne_sparse::EdgeData;
        use lasagne_tensor::Tensor;

        let mut rng = TensorRng::seed_from_u64(seed);
        let items = 24usize;
        let buckets = 4usize;
        let b = bipartite_user_item(
            &BipartiteConfig {
                items,
                users: 16,
                classes: 3,
                avg_user_degree: 3.0,
                popularity_exponent: 2.0,
                user_focus: 0.8,
                time_buckets: buckets,
            },
            &mut rng,
        );
        let n = b.graph.num_nodes();
        let centroids = rng.normal_tensor(3, 8, 0.0, 0.6);
        let mut features = Tensor::zeros(n, 8);
        let mut labels = vec![0usize; n];
        for v in 0..n {
            labels[v] = if v < items { b.item_labels[v] } else { b.user_prefs[v - items] };
            for (x, &mu) in features.row_mut(v).iter_mut().zip(centroids.row(labels[v])) {
                *x = mu + 0.3 * rng.normal();
            }
        }
        // Per-interaction attributes, mirrored onto both CSR directions.
        let attrs: std::collections::HashMap<(u32, u32), (u8, u8)> = b
            .interactions
            .iter()
            .enumerate()
            .map(|(e, &(i, u))| ((i, u), (b.edge_ratings[e], b.edge_time_buckets[e])))
            .collect();
        let edges = EdgeData::for_csr(b.graph.adjacency(), 2, |r, c, out| {
            let key = if (r as usize) < items { (r, c) } else { (c, r) };
            let (rating, bucket) = attrs[&key];
            out[0] = (rating as f32 - 3.0) / 2.0;
            out[1] = bucket as f32 / (buckets - 1) as f32 - 0.5;
        });
        let ctx = GraphContext::with_edge_data(&b.graph, features, labels, 3, &edges)
            .expect("edge data aligned by construction");
        let train: Vec<usize> = (0..items / 2).collect();
        (ctx, train)
    }

    /// Run `steps` of Adam on the masked NLL; returns (first, last) loss.
    pub fn short_fit(
        model: &mut dyn NodeClassifier,
        ctx: &GraphContext,
        train: &[usize],
        steps: usize,
    ) -> (f32, f32) {
        let labels = Rc::new((*ctx.labels).clone());
        let idx = Rc::new(train.to_vec());
        let mut rng = TensorRng::seed_from_u64(99);
        let mut opt = Adam::new(model.store(), 0.02, 5e-4);
        let mut first = f32::NAN;
        let mut last = f32::NAN;
        for step in 0..steps {
            let mut tape = Tape::new();
            let out = model.forward(&mut tape, ctx, Mode::Train, &mut rng);
            let lp = tape.log_softmax(out.logits);
            let mut loss = tape.nll_masked(lp, labels.clone(), idx.clone());
            if let Some(reg) = out.regularizer {
                loss = tape.add(loss, reg);
            }
            let v = tape.value(loss).get(0, 0);
            if step == 0 {
                first = v;
            }
            last = v;
            model.store_mut().zero_grads();
            tape.backward(loss, model.store_mut());
            opt.step(model.store_mut());
        }
        (first, last)
    }

    /// Assert the usual smoke properties: correct logit shape, finite
    /// values, and a loss that went down over a short fit.
    pub fn assert_model_learns(model: &mut dyn NodeClassifier, seed: u64) {
        let (ctx, train) = tiny_ctx(seed);
        let mut rng = TensorRng::seed_from_u64(1);
        let mut tape = Tape::new();
        let out = model.forward(&mut tape, &ctx, Mode::Eval, &mut rng);
        let logits = tape.value(out.logits);
        assert_eq!(logits.shape(), (60, 3), "{}: logit shape", model.name());
        assert!(!logits.has_non_finite(), "{}: non-finite logits", model.name());

        let (first, last) = short_fit(model, &ctx, &train, 30);
        assert!(
            last < first * 0.9,
            "{}: loss did not decrease ({first} → {last})",
            model.name()
        );
    }
}
