//! JK-Net (Xu et al., ICML'18): jumping-knowledge network with the
//! concatenation aggregator ("we choose the concatenation as the final
//! aggregation layer since it performs best on the citation dataset",
//! §5.1.3 of the paper).

use lasagne_autograd::{ParamStore, Tape};
use lasagne_tensor::TensorRng;

use crate::layers::{GraphConvLayer, LinearLayer};
use crate::models::{input_node, maybe_dropout};
use crate::{ForwardOutput, GraphContext, Hyper, Mode, NodeClassifier};

/// A stack of GCN layers whose *per-layer outputs* are concatenated and fed
/// to a linear classifier — the GoogleNet-style multi-level combination the
/// paper credits JK-Net with, applied uniformly to all nodes (no node
/// awareness).
pub struct JkNet {
    layers: Vec<GraphConvLayer>,
    classifier: LinearLayer,
    dropout_keep: f32,
    store: ParamStore,
}

impl JkNet {
    /// `hyper.depth` GC layers plus the concat classifier.
    pub fn new(in_dim: usize, num_classes: usize, hyper: &Hyper, seed: u64) -> JkNet {
        assert!(hyper.depth >= 1, "JkNet: depth must be ≥ 1");
        let mut rng = TensorRng::seed_from_u64(seed);
        let mut store = ParamStore::new();
        let mut layers = Vec::with_capacity(hyper.depth);
        for l in 0..hyper.depth {
            let din = if l == 0 { in_dim } else { hyper.hidden };
            layers.push(GraphConvLayer::new(
                &mut store,
                &format!("gc{l}"),
                din,
                hyper.hidden,
                &mut rng,
            ));
        }
        let classifier = LinearLayer::new(
            &mut store,
            "jk_classifier",
            hyper.hidden * hyper.depth,
            num_classes,
            &mut rng,
        );
        JkNet {
            layers,
            classifier,
            dropout_keep: hyper.dropout_keep,
            store,
        }
    }

    /// GC layer count (excluding the classifier).
    pub fn depth(&self) -> usize {
        self.layers.len()
    }
}

impl NodeClassifier for JkNet {
    fn name(&self) -> String {
        format!("JK-Net-{}", self.layers.len())
    }

    fn forward(
        &self,
        tape: &mut Tape,
        ctx: &GraphContext,
        mode: Mode,
        rng: &mut TensorRng,
    ) -> ForwardOutput {
        self.forward_with_hiddens(tape, ctx, mode, rng).0
    }

    fn forward_with_hiddens(
        &self,
        tape: &mut Tape,
        ctx: &GraphContext,
        mode: Mode,
        rng: &mut TensorRng,
    ) -> (ForwardOutput, Vec<lasagne_autograd::NodeId>) {
        let mut h = input_node(tape, ctx, mode, self.dropout_keep, rng);
        let mut per_layer = Vec::with_capacity(self.layers.len());
        for layer in &self.layers {
            let conv = layer.forward(tape, &self.store, &ctx.a_hat, h);
            h = tape.relu(conv);
            per_layer.push(h);
            h = maybe_dropout(tape, h, mode, self.dropout_keep, rng);
        }
        let jumped = tape.concat_cols(&per_layer);
        let jumped = maybe_dropout(tape, jumped, mode, self.dropout_keep, rng);
        let logits = self.classifier.forward(tape, &self.store, jumped);
        let mut hiddens = per_layer;
        hiddens.push(logits);
        (ForwardOutput::logits(logits), hiddens)
    }

    fn store(&self) -> &ParamStore {
        &self.store
    }

    fn store_mut(&mut self) -> &mut ParamStore {
        &mut self.store
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::test_support::{assert_model_learns, tiny_ctx};

    #[test]
    fn jknet_learns() {
        let mut m = JkNet::new(8, 3, &Hyper::default().with_depth(3), 0);
        assert_model_learns(&mut m, 0);
    }

    #[test]
    fn concat_width_scales_with_depth() {
        // depth GC layers of width hidden each → classifier sees
        // hidden·depth inputs; indirectly verified through param count.
        let shallow = JkNet::new(8, 3, &Hyper::default().with_depth(2).with_hidden(16), 0);
        let deep = JkNet::new(8, 3, &Hyper::default().with_depth(6).with_hidden(16), 0);
        assert!(deep.store().num_scalars() > shallow.store().num_scalars());
        assert_eq!(deep.depth(), 6);
    }

    #[test]
    fn ten_layer_jknet_is_finite() {
        let m = JkNet::new(8, 3, &Hyper::default().with_depth(10), 0);
        let (ctx, _) = tiny_ctx(1);
        let mut rng = TensorRng::seed_from_u64(0);
        let mut tape = Tape::new();
        let out = m.forward(&mut tape, &ctx, Mode::Eval, &mut rng);
        assert!(!tape.value(out.logits).has_non_finite());
    }
}
