//! MADReg (Chen et al., AAAI'20): regularize training with the MADGap —
//! neighbor representations should be close, remote ones far. The paper
//! lists it among the over-smoothing remedies of §2.3 and Table 3.

use std::rc::Rc;

use lasagne_autograd::{NodeId, ParamStore, Tape};
use lasagne_tensor::TensorRng;

use crate::layers::GraphConvLayer;
use crate::models::{input_node, maybe_dropout};
use crate::{ForwardOutput, GraphContext, Hyper, Mode, NodeClassifier};

/// GCN plus a MADGap-based regularizer evaluated on the last hidden layer:
/// `λ · (mean cos-distance of neighbor pairs − mean cos-distance of remote
/// pairs)` — minimizing it pushes neighbors together and remote pairs apart.
/// Pairs are re-sampled each forward (an unbiased stochastic estimate of
/// the full O(N²) MAD matrix the original paper computes).
pub struct MadRegGcn {
    layers: Vec<GraphConvLayer>,
    weight: f32,
    pairs: usize,
    dropout_keep: f32,
    store: ParamStore,
}

impl MadRegGcn {
    /// GCN of `hyper.depth` layers, regularizer weight `hyper.madreg_weight`
    /// and `hyper.madreg_pairs` sampled pairs per side.
    pub fn new(in_dim: usize, num_classes: usize, hyper: &Hyper, seed: u64) -> MadRegGcn {
        assert!(hyper.depth >= 2, "MadRegGcn: depth must be ≥ 2");
        let mut rng = TensorRng::seed_from_u64(seed);
        let mut store = ParamStore::new();
        let mut layers = Vec::with_capacity(hyper.depth);
        for l in 0..hyper.depth {
            let din = if l == 0 { in_dim } else { hyper.hidden };
            let dout = if l + 1 == hyper.depth { num_classes } else { hyper.hidden };
            layers.push(GraphConvLayer::new(&mut store, &format!("gc{l}"), din, dout, &mut rng));
        }
        MadRegGcn {
            layers,
            weight: hyper.madreg_weight,
            pairs: hyper.madreg_pairs,
            dropout_keep: hyper.dropout_keep,
            store,
        }
    }

    /// Mean cosine similarity over the sampled `(us, vs)` row pairs of `h`.
    fn mean_cosine(
        &self,
        tape: &mut Tape,
        h: NodeId,
        us: Vec<usize>,
        vs: Vec<usize>,
    ) -> NodeId {
        let hu = tape.gather_rows(h, Rc::new(us));
        let hv = tape.gather_rows(h, Rc::new(vs));
        let prod = tape.mul(hu, hv);
        let dots = tape.sum_cols(prod);
        let uu = tape.mul(hu, hu);
        let nu = tape.sum_cols(uu);
        let vv = tape.mul(hv, hv);
        let nv = tape.sum_cols(vv);
        let inv_u = tape.pow(nu, -0.5, 1e-8);
        let inv_v = tape.pow(nv, -0.5, 1e-8);
        let cos_u = tape.mul(dots, inv_u);
        let cos = tape.mul(cos_u, inv_v);
        tape.mean_all(cos)
    }
}

impl NodeClassifier for MadRegGcn {
    fn name(&self) -> String {
        format!("MADReg-{}", self.layers.len())
    }

    fn forward(
        &self,
        tape: &mut Tape,
        ctx: &GraphContext,
        mode: Mode,
        rng: &mut TensorRng,
    ) -> ForwardOutput {
        let mut h = input_node(tape, ctx, mode, self.dropout_keep, rng);
        let mut last_hidden = h;
        for (l, layer) in self.layers.iter().enumerate() {
            h = layer.forward(tape, &self.store, &ctx.a_hat, h);
            if l + 1 < self.layers.len() {
                h = tape.relu(h);
                last_hidden = h;
                h = maybe_dropout(tape, h, mode, self.dropout_keep, rng);
            }
        }

        let regularizer = if mode == Mode::Train && self.weight > 0.0 {
            let n = ctx.num_nodes();
            // Neighbor pairs: random node with a neighbor; remote pairs:
            // independent uniform pairs (overwhelmingly non-adjacent).
            let mut nu = Vec::with_capacity(self.pairs);
            let mut nv = Vec::with_capacity(self.pairs);
            while nu.len() < self.pairs {
                let u = rng.index(n);
                let deg = ctx.adjacency.row_nnz(u);
                if deg == 0 {
                    continue;
                }
                let v = ctx.adjacency.row_indices(u)[rng.index(deg)] as usize;
                nu.push(u);
                nv.push(v);
            }
            let ru: Vec<usize> = (0..self.pairs).map(|_| rng.index(n)).collect();
            let rv: Vec<usize> = (0..self.pairs).map(|_| rng.index(n)).collect();

            let cos_neighbor = self.mean_cosine(tape, last_hidden, nu, nv);
            let cos_remote = self.mean_cosine(tape, last_hidden, ru, rv);
            // loss += λ((1−cos_n) − (1−cos_r)) = λ(cos_r − cos_n)
            let diff = tape.sub(cos_remote, cos_neighbor);
            Some(tape.scale(diff, self.weight))
        } else {
            None
        };

        ForwardOutput { logits: h, regularizer }
    }

    fn store(&self) -> &ParamStore {
        &self.store
    }

    fn store_mut(&mut self) -> &mut ParamStore {
        &mut self.store
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::test_support::{assert_model_learns, tiny_ctx};

    #[test]
    fn madreg_learns() {
        let mut m = MadRegGcn::new(8, 3, &Hyper::default(), 0);
        assert_model_learns(&mut m, 0);
    }

    #[test]
    fn regularizer_present_in_train_absent_in_eval() {
        let m = MadRegGcn::new(8, 3, &Hyper::default(), 0);
        let (ctx, _) = tiny_ctx(1);
        let mut rng = TensorRng::seed_from_u64(0);
        let mut t1 = Tape::new();
        let train = m.forward(&mut t1, &ctx, Mode::Train, &mut rng);
        assert!(train.regularizer.is_some());
        let mut t2 = Tape::new();
        let eval = m.forward(&mut t2, &ctx, Mode::Eval, &mut rng);
        assert!(eval.regularizer.is_none());
    }

    #[test]
    fn regularizer_is_finite_scalar() {
        let m = MadRegGcn::new(8, 3, &Hyper::default(), 0);
        let (ctx, _) = tiny_ctx(2);
        let mut rng = TensorRng::seed_from_u64(1);
        let mut tape = Tape::new();
        let out = m.forward(&mut tape, &ctx, Mode::Train, &mut rng);
        let r = tape.value(out.regularizer.unwrap());
        assert_eq!(r.shape(), (1, 1));
        assert!(r.get(0, 0).is_finite());
    }
}
