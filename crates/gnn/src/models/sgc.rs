//! SGC (Wu et al., ICML'19): GCN with all nonlinearities removed —
//! `softmax(Â^K X W)` — one of the Table 7 base models.

use lasagne_autograd::{ParamStore, Tape};
use lasagne_tensor::{Tensor, TensorRng};

use crate::layers::LinearLayer;
use crate::models::maybe_dropout;
use crate::{ForwardOutput, GraphContext, Hyper, Mode, NodeClassifier};

/// Simplified graph convolution: the propagation `Â^K X` carries no
/// parameters, so it is computed outside the tape; only the logistic
/// regression head is trained.
pub struct Sgc {
    classifier: LinearLayer,
    k: usize,
    dropout_keep: f32,
    store: ParamStore,
}

impl Sgc {
    /// `K = hyper.sgc_k` propagation steps.
    pub fn new(in_dim: usize, num_classes: usize, hyper: &Hyper, seed: u64) -> Sgc {
        let mut rng = TensorRng::seed_from_u64(seed);
        let mut store = ParamStore::new();
        let classifier = LinearLayer::new(&mut store, "sgc", in_dim, num_classes, &mut rng);
        Sgc {
            classifier,
            k: hyper.sgc_k,
            dropout_keep: hyper.dropout_keep,
            store,
        }
    }

    /// `Â^K X` for the given context (recomputed per call so the model stays
    /// context-agnostic; K sparse products are cheap relative to training).
    pub fn propagate(&self, ctx: &GraphContext) -> Tensor {
        let mut p = (*ctx.features).clone();
        for _ in 0..self.k {
            p = ctx.a_hat.spmm(&p);
        }
        p
    }

    /// Propagation steps K.
    pub fn k(&self) -> usize {
        self.k
    }
}

impl NodeClassifier for Sgc {
    fn name(&self) -> String {
        format!("SGC-K{}", self.k)
    }

    fn forward(
        &self,
        tape: &mut Tape,
        ctx: &GraphContext,
        mode: Mode,
        rng: &mut TensorRng,
    ) -> ForwardOutput {
        let propagated = tape.constant(self.propagate(ctx));
        let x = maybe_dropout(tape, propagated, mode, self.dropout_keep, rng);
        let logits = self.classifier.forward(tape, &self.store, x);
        ForwardOutput::logits(logits)
    }

    fn store(&self) -> &ParamStore {
        &self.store
    }

    fn store_mut(&mut self) -> &mut ParamStore {
        &mut self.store
    }

    /// `Â^K X` enters the tape as a constant, so the exported program has no
    /// visible graph dependence — streaming mutations must be refused.
    fn bakes_graph_into_constants(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::test_support::{assert_model_learns, tiny_ctx};

    #[test]
    fn sgc_learns() {
        let mut m = Sgc::new(8, 3, &Hyper::default(), 0);
        assert_model_learns(&mut m, 0);
    }

    #[test]
    fn propagation_smooths_features() {
        // Propagation contracts toward the dominant eigenvector: the
        // variance of features across nodes must shrink.
        let (ctx, _) = tiny_ctx(1);
        let m = Sgc::new(8, 3, &Hyper { sgc_k: 8, ..Hyper::default() }, 0);
        let p = m.propagate(&ctx);
        let var = |t: &Tensor| {
            let mean = t.mean_rows();
            let mut acc = 0.0;
            for i in 0..t.rows() {
                for (v, &mu) in t.row(i).iter().zip(mean.row(0)) {
                    acc += (v - mu) * (v - mu);
                }
            }
            acc / t.len() as f32
        };
        assert!(var(&p) < var(&ctx.features), "propagation must smooth");
    }

    #[test]
    fn k_zero_is_plain_logreg() {
        let (ctx, _) = tiny_ctx(2);
        let m = Sgc::new(8, 3, &Hyper { sgc_k: 0, ..Hyper::default() }, 0);
        assert!(m.propagate(&ctx).approx_eq(&ctx.features, 0.0));
    }
}
