//! DropEdge (Rong et al., ICLR'20): randomly remove edges each training
//! iteration to slow the convergence of over-smoothing (§2.3 of the paper).

use std::rc::Rc;

use lasagne_autograd::{ParamStore, Tape};
use lasagne_sparse::Csr;
use lasagne_tensor::TensorRng;

use crate::layers::GraphConvLayer;
use crate::models::{input_node, maybe_dropout};
use crate::{ForwardOutput, GraphContext, Hyper, Mode, NodeClassifier};

/// A GCN whose training-time propagation operator is rebuilt every forward
/// pass from a randomly-thinned symmetric adjacency, renormalized
/// (`Â_drop = norm(A_drop + I)`). Evaluation uses the full `Â`.
pub struct DropEdgeGcn {
    layers: Vec<GraphConvLayer>,
    keep: f32,
    dropout_keep: f32,
    store: ParamStore,
}

impl DropEdgeGcn {
    /// GCN of `hyper.depth` layers with edge-keep rate `hyper.dropedge_keep`.
    pub fn new(in_dim: usize, num_classes: usize, hyper: &Hyper, seed: u64) -> DropEdgeGcn {
        assert!(hyper.depth >= 1, "DropEdgeGcn: depth must be ≥ 1");
        assert!(
            (0.0..=1.0).contains(&hyper.dropedge_keep),
            "DropEdgeGcn: keep rate {}",
            hyper.dropedge_keep
        );
        let mut rng = TensorRng::seed_from_u64(seed);
        let mut store = ParamStore::new();
        let mut layers = Vec::with_capacity(hyper.depth);
        for l in 0..hyper.depth {
            let din = if l == 0 { in_dim } else { hyper.hidden };
            let dout = if l + 1 == hyper.depth { num_classes } else { hyper.hidden };
            layers.push(GraphConvLayer::new(&mut store, &format!("gc{l}"), din, dout, &mut rng));
        }
        DropEdgeGcn {
            layers,
            keep: hyper.dropedge_keep,
            dropout_keep: hyper.dropout_keep,
            store,
        }
    }

    /// Edge keep probability.
    pub fn edge_keep(&self) -> f32 {
        self.keep
    }
}

impl NodeClassifier for DropEdgeGcn {
    fn name(&self) -> String {
        format!("DropEdge-{}", self.layers.len())
    }

    fn forward(
        &self,
        tape: &mut Tape,
        ctx: &GraphContext,
        mode: Mode,
        rng: &mut TensorRng,
    ) -> ForwardOutput {
        let a_hat: Rc<Csr> = match mode {
            Mode::Train => Rc::new(
                ctx.adjacency
                    .drop_edges_sym(self.keep, rng)
                    .gcn_normalize(),
            ),
            Mode::Eval => ctx.a_hat.clone(),
        };
        let mut h = input_node(tape, ctx, mode, self.dropout_keep, rng);
        for (l, layer) in self.layers.iter().enumerate() {
            h = layer.forward(tape, &self.store, &a_hat, h);
            if l + 1 < self.layers.len() {
                h = tape.relu(h);
                h = maybe_dropout(tape, h, mode, self.dropout_keep, rng);
            }
        }
        ForwardOutput::logits(h)
    }

    fn store(&self) -> &ParamStore {
        &self.store
    }

    fn store_mut(&mut self) -> &mut ParamStore {
        &mut self.store
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::test_support::{assert_model_learns, tiny_ctx};

    #[test]
    fn dropedge_learns() {
        let mut m = DropEdgeGcn::new(8, 3, &Hyper::default(), 0);
        assert_model_learns(&mut m, 0);
    }

    #[test]
    fn eval_ignores_edge_dropping() {
        let m = DropEdgeGcn::new(8, 3, &Hyper::default(), 0);
        let (ctx, _) = tiny_ctx(1);
        let mut rng = TensorRng::seed_from_u64(2);
        let mut t1 = Tape::new();
        let a = m.forward(&mut t1, &ctx, Mode::Eval, &mut rng);
        let mut t2 = Tape::new();
        let b = m.forward(&mut t2, &ctx, Mode::Eval, &mut rng);
        assert!(t1.value(a.logits).approx_eq(t2.value(b.logits), 0.0));
    }

    #[test]
    fn keep_one_matches_plain_training_graph() {
        // keep = 1.0 drops nothing, so the train-time operator equals Â and
        // with dropout disabled the train forward equals the eval forward.
        let h = Hyper { dropedge_keep: 1.0, dropout_keep: 1.0, ..Hyper::default() };
        let m = DropEdgeGcn::new(8, 3, &h, 0);
        let (ctx, _) = tiny_ctx(2);
        let mut rng = TensorRng::seed_from_u64(3);
        let mut t1 = Tape::new();
        let a = m.forward(&mut t1, &ctx, Mode::Train, &mut rng);
        let mut t2 = Tape::new();
        let b = m.forward(&mut t2, &ctx, Mode::Eval, &mut rng);
        assert!(t1.value(a.logits).approx_eq(t2.value(b.logits), 1e-5));
    }
}
