//! APPNP (Klicpera et al., ICLR'19): predict-then-propagate with
//! personalized PageRank — the over-smoothing fix via teleport that the
//! paper cites in §2.3.

use lasagne_autograd::{ParamStore, Tape};
use lasagne_tensor::TensorRng;

use crate::layers::LinearLayer;
use crate::models::{input_node, maybe_dropout};
use crate::{ForwardOutput, GraphContext, Hyper, Mode, NodeClassifier};

/// A 2-layer MLP produces per-node predictions `Z₀`, which are then smoothed
/// by `Z ← (1−α) Â Z + α Z₀` for K steps. The teleport term `α Z₀` keeps the
/// rooted node in the loop and prevents full over-smoothing.
pub struct Appnp {
    fc1: LinearLayer,
    fc2: LinearLayer,
    alpha: f32,
    k: usize,
    dropout_keep: f32,
    store: ParamStore,
}

impl Appnp {
    /// Standard APPNP with `α = hyper.appnp_alpha`, `K = hyper.appnp_k`.
    pub fn new(in_dim: usize, num_classes: usize, hyper: &Hyper, seed: u64) -> Appnp {
        let mut rng = TensorRng::seed_from_u64(seed);
        let mut store = ParamStore::new();
        let fc1 = LinearLayer::new(&mut store, "fc1", in_dim, hyper.hidden, &mut rng);
        let fc2 = LinearLayer::new(&mut store, "fc2", hyper.hidden, num_classes, &mut rng);
        Appnp {
            fc1,
            fc2,
            alpha: hyper.appnp_alpha,
            k: hyper.appnp_k,
            dropout_keep: hyper.dropout_keep,
            store,
        }
    }

    /// Teleport probability α.
    pub fn alpha(&self) -> f32 {
        self.alpha
    }
}

impl NodeClassifier for Appnp {
    fn name(&self) -> String {
        format!("APPNP-a{:.2}K{}", self.alpha, self.k)
    }

    fn forward(
        &self,
        tape: &mut Tape,
        ctx: &GraphContext,
        mode: Mode,
        rng: &mut TensorRng,
    ) -> ForwardOutput {
        let x = input_node(tape, ctx, mode, self.dropout_keep, rng);
        let h = self.fc1.forward(tape, &self.store, x);
        let h = tape.relu(h);
        let h = maybe_dropout(tape, h, mode, self.dropout_keep, rng);
        let z0 = self.fc2.forward(tape, &self.store, h);
        // Personalized-PageRank propagation.
        let z0_scaled = tape.scale(z0, self.alpha);
        let mut z = z0;
        for _ in 0..self.k {
            let prop = tape.spmm(ctx.a_hat.clone(), z);
            let damped = tape.scale(prop, 1.0 - self.alpha);
            z = tape.add(damped, z0_scaled);
        }
        ForwardOutput::logits(z)
    }

    fn store(&self) -> &ParamStore {
        &self.store
    }

    fn store_mut(&mut self) -> &mut ParamStore {
        &mut self.store
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::test_support::{assert_model_learns, tiny_ctx};
    use crate::Mode;

    #[test]
    fn appnp_learns() {
        let mut m = Appnp::new(8, 3, &Hyper::default(), 0);
        assert_model_learns(&mut m, 0);
    }

    #[test]
    fn alpha_one_disables_propagation() {
        // α = 1 makes Z = Z₀ at every step; K must be irrelevant.
        let h1 = Hyper { appnp_alpha: 1.0, appnp_k: 1, ..Hyper::default() };
        let h2 = Hyper { appnp_alpha: 1.0, appnp_k: 10, ..Hyper::default() };
        let m1 = Appnp::new(8, 3, &h1, 7);
        let m2 = Appnp::new(8, 3, &h2, 7);
        let (ctx, _) = tiny_ctx(1);
        let mut rng = TensorRng::seed_from_u64(0);
        let mut t1 = Tape::new();
        let a = m1.forward(&mut t1, &ctx, Mode::Eval, &mut rng);
        let mut t2 = Tape::new();
        let b = m2.forward(&mut t2, &ctx, Mode::Eval, &mut rng);
        assert!(t1.value(a.logits).approx_eq(t2.value(b.logits), 1e-4));
    }

    #[test]
    fn deep_propagation_stays_finite() {
        let h = Hyper { appnp_k: 50, ..Hyper::default() };
        let m = Appnp::new(8, 3, &h, 0);
        let (ctx, _) = tiny_ctx(2);
        let mut rng = TensorRng::seed_from_u64(0);
        let mut tape = Tape::new();
        let out = m.forward(&mut tape, &ctx, Mode::Eval, &mut rng);
        assert!(!tape.value(out.logits).has_non_finite());
    }
}
