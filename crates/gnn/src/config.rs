//! Hyper-parameters, with the paper's §5.1.3 per-dataset defaults.

use lasagne_datasets::DatasetId;

/// Hyper-parameters shared by all models (model-specific knobs carry
/// defaults matching the cited baselines).
#[derive(Clone, Debug)]
pub struct Hyper {
    /// Hidden dimension (paper: 32 for citation datasets, 100 otherwise —
    /// scaled to 64 here for the big datasets, see EXPERIMENTS.md).
    pub hidden: usize,
    /// Number of graph-convolution layers.
    pub depth: usize,
    /// Dropout *keep* probability (paper reports drop rates 0.8/0.5/0.3/0.2
    /// by dataset; keep = 1 − rate).
    pub dropout_keep: f32,
    /// Adam learning rate.
    pub lr: f32,
    /// L2 regularization factor.
    pub weight_decay: f32,

    /// APPNP teleport probability α.
    pub appnp_alpha: f32,
    /// APPNP power-iteration steps K.
    pub appnp_k: usize,
    /// DropEdge keep probability.
    pub dropedge_keep: f32,
    /// PairNorm target scale s.
    pub pairnorm_scale: f32,
    /// MADReg regularizer weight λ.
    pub madreg_weight: f32,
    /// MADReg sampled pair count per side.
    pub madreg_pairs: usize,
    /// Highest adjacency power used by MixHop (powers 0..=p).
    pub mixhop_powers: usize,
    /// GAT LeakyReLU slope.
    pub gat_slope: f32,
    /// GAT attention heads on hidden layers (the original uses 8). The
    /// per-edge attention work scales with this — the source of GAT's cost
    /// in Fig 7.
    pub gat_heads: usize,
    /// FastGCN per-layer sample size.
    pub fastgcn_samples: usize,
    /// SGC propagation steps K.
    pub sgc_k: usize,
    /// GC-FM latent dimension k (paper: 5).
    pub gcfm_k: usize,
}

impl Default for Hyper {
    fn default() -> Self {
        Hyper {
            hidden: 32,
            depth: 2,
            dropout_keep: 0.5,
            lr: 0.01,
            weight_decay: 5e-4,
            appnp_alpha: 0.1,
            appnp_k: 10,
            dropedge_keep: 0.8,
            pairnorm_scale: 1.0,
            madreg_weight: 0.01,
            madreg_pairs: 256,
            mixhop_powers: 2,
            gat_slope: 0.2,
            gat_heads: 8,
            fastgcn_samples: 800,
            sgc_k: 2,
            gcfm_k: 5,
        }
    }
}

impl Hyper {
    /// The paper's §5.1.3 settings for a dataset: lr 0.02 for citation
    /// datasets and Tencent, 0.005 for Reddit, 0.01 elsewhere; L2 5e-4 for
    /// citation, 1e-5 otherwise; dropout rate 0.8 citation / 0.5 Flickr &
    /// Tencent / 0.2 Reddit / 0.3 otherwise; hidden 32 for citation.
    pub fn for_dataset(id: DatasetId) -> Hyper {
        use DatasetId::*;
        let mut h = Hyper::default();
        match id {
            Cora | Citeseer | Pubmed | Nell => {
                h.lr = 0.02;
                h.weight_decay = 5e-4;
                // Paper's 0.8 dropout *rate* starves single-core training;
                // 0.4 keeps the same regularizing role (EXPERIMENTS.md).
                h.dropout_keep = 0.6;
                h.hidden = 32;
            }
            Tencent => {
                h.lr = 0.02;
                h.weight_decay = 1e-5;
                h.dropout_keep = 0.5;
                h.hidden = 64;
            }
            Reddit => {
                h.lr = 0.005;
                h.weight_decay = 1e-5;
                h.dropout_keep = 0.8;
                h.hidden = 64;
            }
            Flickr => {
                h.lr = 0.01;
                h.weight_decay = 1e-5;
                h.dropout_keep = 0.5;
                h.hidden = 64;
            }
            AmazonComputer | AmazonPhoto | CoauthorCs | CoauthorPhysics => {
                h.lr = 0.01;
                h.weight_decay = 1e-5;
                h.dropout_keep = 0.7;
                h.hidden = 64;
            }
        }
        h
    }

    /// Builder-style override of the depth.
    pub fn with_depth(mut self, depth: usize) -> Hyper {
        self.depth = depth;
        self
    }

    /// Builder-style override of the hidden width.
    pub fn with_hidden(mut self, hidden: usize) -> Hyper {
        self.hidden = hidden;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn citation_defaults_match_paper() {
        for id in DatasetId::citation() {
            let h = Hyper::for_dataset(id);
            assert_eq!(h.lr, 0.02);
            assert_eq!(h.weight_decay, 5e-4);
            assert_eq!(h.hidden, 32);
        }
    }

    #[test]
    fn reddit_uses_low_lr() {
        assert_eq!(Hyper::for_dataset(DatasetId::Reddit).lr, 0.005);
    }

    #[test]
    fn builders_compose() {
        let h = Hyper::default().with_depth(7).with_hidden(96);
        assert_eq!(h.depth, 7);
        assert_eq!(h.hidden, 96);
    }
}
