//! Baseline GNNs and the shared model interface.
//!
//! The paper compares Lasagne against a zoo of published models; every row
//! of Tables 3–8 marked `*` ("we ran our own implementation") is implemented
//! here behind one [`NodeClassifier`] trait:
//!
//! | Model | Module | Paper table |
//! |---|---|---|
//! | GCN (Kipf & Welling) | [`models::Gcn`] | 3, 5, 7, 8 |
//! | ResGCN (residual connections) | [`models::ResGcn`] | 3, 5, 8 |
//! | DenseGCN (dense concatenation) | [`models::DenseGcn`] | 3, 5, 8 |
//! | JK-Net (jumping knowledge, concat) | [`models::JkNet`] | 3, 5, 8 |
//! | SGC (linearized GCN) | [`models::Sgc`] | 3, 7 |
//! | GAT (graph attention) | [`models::Gat`] | 3, 5, 7 |
//! | APPNP (personalized PageRank) | [`models::Appnp`] | 3 |
//! | MixHop (adjacency powers) | [`models::MixHop`] | 3 |
//! | DropEdge | [`models::DropEdgeGcn`] | 3 |
//! | PairNorm | [`models::PairNormGcn`] | 3 |
//! | MADReg (MADGap regularizer) | [`models::MadRegGcn`] | 3 |
//! | GraphSAGE (mean aggregator) | [`models::GraphSage`] | 4 |
//! | FastGCN (importance sampling) | [`models::FastGcn`] | 4 |
//! | EdgeGatedGCN (LASE-style gated aggregation) | [`models::EdgeGatedGcn`] | — (DESIGN.md §15) |
//!
//! ClusterGCN and GraphSAINT are *training procedures* over a GCN, provided
//! as batch strategies in [`sampling`].

pub mod config;
mod context;
pub mod layers;
pub mod models;
pub mod sampling;

pub use config::Hyper;
pub use context::{EdgeBundle, ForwardOutput, GraphContext, Mode, NodeClassifier};
