//! Reusable layers: graph convolution, linear, and GAT attention.

use std::rc::Rc;

use lasagne_autograd::{NodeId, ParamId, ParamStore, Tape};
use lasagne_sparse::Csr;
use lasagne_tensor::TensorRng;

/// One GCN layer: `Â (X W) + b` (Eq 1 without the nonlinearity — callers
/// apply the activation so residual/dense variants can splice in between).
pub struct GraphConvLayer {
    w: ParamId,
    b: ParamId,
    in_dim: usize,
    out_dim: usize,
}

impl GraphConvLayer {
    /// Glorot-initialized layer registered under `name`.
    pub fn new(
        store: &mut ParamStore,
        name: &str,
        in_dim: usize,
        out_dim: usize,
        rng: &mut TensorRng,
    ) -> GraphConvLayer {
        let w = store.add(format!("{name}.w"), rng.glorot_uniform(in_dim, out_dim));
        let b = store.add_with_decay(
            format!("{name}.b"),
            lasagne_tensor::Tensor::zeros(1, out_dim),
            false,
        );
        GraphConvLayer { w, b, in_dim, out_dim }
    }

    /// `Â (x W) + b`.
    pub fn forward(
        &self,
        tape: &mut Tape,
        store: &ParamStore,
        a_hat: &Rc<Csr>,
        x: NodeId,
    ) -> NodeId {
        let w = tape.param(self.w, store);
        let xw = tape.matmul(x, w);
        let prop = tape.spmm(Rc::clone(a_hat), xw);
        let b = tape.param(self.b, store);
        tape.add_row_broadcast(prop, b)
    }

    /// Input dimension.
    pub fn in_dim(&self) -> usize {
        self.in_dim
    }

    /// Output dimension.
    pub fn out_dim(&self) -> usize {
        self.out_dim
    }
}

/// One LASE-style edge-gated convolution (DESIGN.md §15):
/// `T diag(σ(E w_g + b_g)) S (X W) + b`, where `S`/`T` are the incidence
/// decomposition of `Â` ([`crate::EdgeBundle`]) and `E` is the aligned
/// `nnz×d_e` edge-feature table. Each message `Â_ij x_j W` is scaled by a
/// per-edge gate `σ(e_ij · w_g + b_g)` before the row aggregation — the
/// link attribute decides how much of the neighbor gets through.
pub struct EdgeGatedConvLayer {
    w: ParamId,
    b: ParamId,
    wg: ParamId,
    bg: ParamId,
}

impl EdgeGatedConvLayer {
    /// Glorot-initialized layer; the gate starts at `σ(E w_g)` with a zero
    /// (decay-exempt) bias.
    pub fn new(
        store: &mut ParamStore,
        name: &str,
        in_dim: usize,
        out_dim: usize,
        edge_dim: usize,
        rng: &mut TensorRng,
    ) -> EdgeGatedConvLayer {
        let w = store.add(format!("{name}.w"), rng.glorot_uniform(in_dim, out_dim));
        let b = store.add_with_decay(
            format!("{name}.b"),
            lasagne_tensor::Tensor::zeros(1, out_dim),
            false,
        );
        let wg = store.add(format!("{name}.wg"), rng.glorot_uniform(edge_dim, 1));
        let bg = store.add_with_decay(
            format!("{name}.bg"),
            lasagne_tensor::Tensor::zeros(1, 1),
            false,
        );
        EdgeGatedConvLayer { w, b, wg, bg }
    }

    /// Gated aggregation. `e_feats` is the `nnz×d_e` edge-feature constant
    /// (recorded once per forward by the model and shared across layers);
    /// `select`/`aggregate` come from the context's [`crate::EdgeBundle`].
    pub fn forward(
        &self,
        tape: &mut Tape,
        store: &ParamStore,
        select: &Rc<Csr>,
        aggregate: &Rc<Csr>,
        e_feats: NodeId,
        x: NodeId,
    ) -> NodeId {
        let w = tape.param(self.w, store);
        let xw = tape.matmul(x, w);
        let msgs = tape.spmm(Rc::clone(select), xw);
        let wg = tape.param(self.wg, store);
        let score = tape.matmul(e_feats, wg);
        let bg = tape.param(self.bg, store);
        let score = tape.add_row_broadcast(score, bg);
        let gate = tape.sigmoid(score);
        let gated = tape.mul_col_broadcast(msgs, gate);
        let agg = tape.spmm(Rc::clone(aggregate), gated);
        let b = tape.param(self.b, store);
        tape.add_row_broadcast(agg, b)
    }
}

/// Dense layer `X W + b`.
pub struct LinearLayer {
    w: ParamId,
    b: ParamId,
}

impl LinearLayer {
    /// Glorot-initialized dense layer.
    pub fn new(
        store: &mut ParamStore,
        name: &str,
        in_dim: usize,
        out_dim: usize,
        rng: &mut TensorRng,
    ) -> LinearLayer {
        let w = store.add(format!("{name}.w"), rng.glorot_uniform(in_dim, out_dim));
        let b = store.add_with_decay(
            format!("{name}.b"),
            lasagne_tensor::Tensor::zeros(1, out_dim),
            false,
        );
        LinearLayer { w, b }
    }

    /// `x W + b`.
    pub fn forward(&self, tape: &mut Tape, store: &ParamStore, x: NodeId) -> NodeId {
        let w = tape.param(self.w, store);
        let xw = tape.matmul(x, w);
        let b = tape.param(self.b, store);
        tape.add_row_broadcast(xw, b)
    }
}

/// One single-head GAT layer: project, score neighbors with additive
/// attention, aggregate with per-row softmax weights.
pub struct GatLayer {
    w: ParamId,
    a_src: ParamId,
    a_dst: ParamId,
    slope: f32,
}

impl GatLayer {
    /// Glorot-initialized attention layer.
    pub fn new(
        store: &mut ParamStore,
        name: &str,
        in_dim: usize,
        out_dim: usize,
        slope: f32,
        rng: &mut TensorRng,
    ) -> GatLayer {
        GatLayer {
            w: store.add(format!("{name}.w"), rng.glorot_uniform(in_dim, out_dim)),
            a_src: store.add(format!("{name}.a_src"), rng.glorot_uniform(out_dim, 1)),
            a_dst: store.add(format!("{name}.a_dst"), rng.glorot_uniform(out_dim, 1)),
            slope,
        }
    }

    /// Attention-weighted aggregation over `adj_loops` neighborhoods.
    pub fn forward(
        &self,
        tape: &mut Tape,
        store: &ParamStore,
        adj_loops: &Rc<Csr>,
        x: NodeId,
    ) -> NodeId {
        let w = tape.param(self.w, store);
        let z = tape.matmul(x, w);
        let a_src = tape.param(self.a_src, store);
        let a_dst = tape.param(self.a_dst, store);
        let ssrc = tape.matmul(z, a_src);
        let sdst = tape.matmul(z, a_dst);
        tape.gat_aggregate(Rc::clone(adj_loops), z, ssrc, sdst, self.slope)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lasagne_sparse::Csr;
    use lasagne_tensor::Tensor;

    fn tiny_ahat() -> Rc<Csr> {
        Rc::new(
            Csr::from_coo(3, 3, &[(0, 1, 1.0), (1, 0, 1.0), (1, 2, 1.0), (2, 1, 1.0)])
                .gcn_normalize(),
        )
    }

    #[test]
    fn graph_conv_shapes() {
        let mut rng = TensorRng::seed_from_u64(0);
        let mut store = ParamStore::new();
        let layer = GraphConvLayer::new(&mut store, "gc0", 5, 4, &mut rng);
        assert_eq!(layer.in_dim(), 5);
        assert_eq!(layer.out_dim(), 4);
        let mut tape = Tape::new();
        let x = tape.constant(Tensor::ones(3, 5));
        let y = layer.forward(&mut tape, &store, &tiny_ahat(), x);
        assert_eq!(tape.value(y).shape(), (3, 4));
    }

    #[test]
    fn bias_is_decay_exempt() {
        let mut rng = TensorRng::seed_from_u64(1);
        let mut store = ParamStore::new();
        let _ = GraphConvLayer::new(&mut store, "gc0", 2, 2, &mut rng);
        // Params: w (decayed), b (exempt).
        assert_eq!(store.len(), 2);
        let b = store.require("gc0.b").expect("bias registered");
        let w = store.require("gc0.w").expect("weight registered");
        assert_eq!(store.decay_factor(b), 0.0);
        assert_eq!(store.decay_factor(w), 1.0);
    }

    #[test]
    fn linear_matches_manual() {
        let mut rng = TensorRng::seed_from_u64(2);
        let mut store = ParamStore::new();
        let layer = LinearLayer::new(&mut store, "fc", 3, 2, &mut rng);
        let x = Tensor::from_fn(4, 3, |i, j| (i + j) as f32 * 0.1);
        let mut tape = Tape::new();
        let xn = tape.constant(x.clone());
        let y = layer.forward(&mut tape, &store, xn);
        // b is zero at init, so y = x·w.
        let expect = x.matmul(store.value(layer.w));
        assert!(tape.value(y).approx_eq(&expect, 1e-6));
    }

    #[test]
    fn edge_gated_with_zero_features_halves_plain_conv() {
        // With E = 0 and b_g = 0 every gate is σ(0) = 0.5, so the layer
        // must compute exactly 0.5·Â(XW) — which pins the incidence
        // decomposition T·diag(g)·S against the fused SpMM.
        let adj = Csr::from_coo(3, 3, &[(0, 1, 1.0), (1, 0, 1.0), (1, 2, 1.0), (2, 1, 1.0)]);
        let a_hat = adj.gcn_normalize();
        let edges = lasagne_sparse::EdgeData::zeros(adj.nnz(), 2);
        let bundle = crate::EdgeBundle::new(&a_hat, &adj, &edges).unwrap();
        let mut rng = TensorRng::seed_from_u64(4);
        let mut store = ParamStore::new();
        let layer = EdgeGatedConvLayer::new(&mut store, "eg0", 5, 4, 2, &mut rng);
        let x = rng.uniform_tensor(3, 5, -1.0, 1.0);
        let mut tape = Tape::new();
        let xn = tape.constant(x.clone());
        let ef = tape.constant(bundle.feats.clone());
        let y = layer.forward(&mut tape, &store, &bundle.select, &bundle.aggregate, ef, xn);
        let w = store.value(layer.w);
        let expect = a_hat.spmm(&x.matmul(w)).scale(0.5);
        assert!(tape.value(y).approx_eq(&expect, 1e-6));
    }

    #[test]
    fn gat_layer_shapes_and_finiteness() {
        let mut rng = TensorRng::seed_from_u64(3);
        let mut store = ParamStore::new();
        let layer = GatLayer::new(&mut store, "gat0", 4, 6, 0.2, &mut rng);
        let adj = Rc::new(
            Csr::from_coo(
                3,
                3,
                &[(0, 0, 1.0), (1, 1, 1.0), (2, 2, 1.0), (0, 1, 1.0), (1, 0, 1.0)],
            ),
        );
        let mut tape = Tape::new();
        let x = tape.constant(rng.uniform_tensor(3, 4, -1.0, 1.0));
        let y = layer.forward(&mut tape, &store, &adj, x);
        assert_eq!(tape.value(y).shape(), (3, 6));
        assert!(!tape.value(y).has_non_finite());
    }
}
