//! Shared harness for the table/figure regeneration binaries and the
//! Criterion benches.
//!
//! Every artifact of the paper's evaluation section has a binary here
//! (`cargo run -p lasagne-bench --release --bin <name>`):
//!
//! | Binary | Paper artifact |
//! |---|---|
//! | `table3` | Table 3 — citation-benchmark accuracy |
//! | `table4` | Table 4 — inductive tasks (Flickr/Reddit) |
//! | `table5` | Table 5 — Amazon/Coauthor/Tencent |
//! | `table6` | Table 6 — GC-FM ablation |
//! | `table7` | Table 7 — Lasagne over GCN/SGC/GAT bases |
//! | `table8` | Table 8 — label-rate sweep (Cora, NELL) |
//! | `fig2`   | Fig 2 — per-layer MI of 10-layer deep GCNs |
//! | `fig5`   | Fig 5 — accuracy vs depth |
//! | `fig6`   | Fig 6 — last-layer MI during training |
//! | `fig7`   | Fig 7 — per-epoch time (depth 4 across datasets; vs depth) |
//! | `locality` | §5.2.2 — APL per dataset + learned stochastic gates of the max/min PageRank nodes |
//!
//! Environment knobs (all optional):
//! * `LASAGNE_SEEDS` — repeated runs per configuration (default 3; the
//!   paper uses 10);
//! * `LASAGNE_EPOCHS` — max epochs (default 200; the paper uses 400);
//! * `LASAGNE_FAST=1` — tiny smoke-mode (1 seed, 30 epochs) for CI.

use lasagne_core::{AggregatorKind, Lasagne, LasagneConfig};
use lasagne_datasets::{Dataset, DatasetId};
use lasagne_gnn::models::{
    Appnp, DenseGcn, DropEdgeGcn, FastGcn, Gat, Gcn, GraphSage, JkNet, MadRegGcn, MixHop,
    PairNormGcn, ResGcn, Sgc,
};
use lasagne_gnn::sampling::{BatchStrategy, ClusterBatches, FullBatch, SaintNodeSampler};
use lasagne_gnn::{GraphContext, Hyper, NodeClassifier};
use lasagne_tensor::TensorRng;
use lasagne_train::{run_seeds_fallible, try_fit, SeedSummary, TrainConfig, TrainResult};

/// Number of seeded repetitions (env `LASAGNE_SEEDS`, clamped to ≥ 1).
pub fn num_seeds() -> usize {
    if fast_mode() {
        return 1;
    }
    std::env::var("LASAGNE_SEEDS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(3)
        .max(1)
}

/// [`run_seeds_fallible`] with the bench binaries' degradation policy: a
/// seed that still fails after its retry is reported on stderr and skipped
/// (its cell aggregates the surviving seeds, or renders `n/a`), so one
/// diverged configuration cannot kill a whole table regeneration.
fn run_seeds_graceful(
    n_seeds: usize,
    base_seed: u64,
    f: impl FnMut(u64) -> TrainResult<lasagne_train::FitResult>,
) -> SeedSummary {
    let summary =
        run_seeds_fallible(n_seeds, base_seed, f).expect("num_seeds() guarantees ≥ 1 seed");
    for (seed, err) in &summary.failures {
        eprintln!("warning: seed {seed} skipped after one retry: {err}");
    }
    summary
}

/// Epoch cap (env `LASAGNE_EPOCHS`).
pub fn max_epochs() -> usize {
    if fast_mode() {
        return 30;
    }
    std::env::var("LASAGNE_EPOCHS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(200)
}

/// Smoke mode for CI (`LASAGNE_FAST=1`).
pub fn fast_mode() -> bool {
    std::env::var("LASAGNE_FAST").map(|v| v == "1").unwrap_or(false)
}

/// All models a table row can name. Depth conventions follow the paper:
/// shallow baselines run at their published best depth (2), the deep-GCN
/// family at `deep_depth`, Lasagne at `lasagne_depth`.
pub fn build_model(name: &str, ds: &Dataset, hyper: &Hyper, seed: u64) -> Box<dyn NodeClassifier> {
    let in_dim = ds.num_features();
    let classes = ds.num_classes;
    let n = ds.num_nodes();
    let lasagne = |agg: AggregatorKind| -> Box<dyn NodeClassifier> {
        let cfg = LasagneConfig::from_hyper(hyper, agg);
        Box::new(Lasagne::new(in_dim, classes, Some(n), &cfg, seed))
    };
    match name {
        "GCN" => Box::new(Gcn::new(in_dim, classes, hyper, seed)),
        "ResGCN" => Box::new(ResGcn::new(in_dim, classes, hyper, seed)),
        "DenseGCN" => Box::new(DenseGcn::new(in_dim, classes, hyper, seed)),
        "JK-Net" => Box::new(JkNet::new(in_dim, classes, hyper, seed)),
        "GAT" => Box::new(Gat::new(in_dim, classes, hyper, seed)),
        "SGC" => Box::new(Sgc::new(in_dim, classes, hyper, seed)),
        "APPNP" => Box::new(Appnp::new(in_dim, classes, hyper, seed)),
        "MixHop" => Box::new(MixHop::new(in_dim, classes, hyper, seed)),
        "DropEdge" => Box::new(DropEdgeGcn::new(in_dim, classes, hyper, seed)),
        "Pairnorm" => Box::new(PairNormGcn::new(in_dim, classes, hyper, seed)),
        "MADReg" => Box::new(MadRegGcn::new(in_dim, classes, hyper, seed)),
        "GraphSAGE" => Box::new(GraphSage::new(in_dim, classes, hyper, seed)),
        "FastGCN" => Box::new(FastGcn::new(in_dim, classes, hyper, seed)),
        "Lasagne (Weighted)" => lasagne(AggregatorKind::Weighted),
        "Lasagne (Stochastic)" => lasagne(AggregatorKind::Stochastic),
        "Lasagne (Max pooling)" => lasagne(AggregatorKind::MaxPooling),
        other => panic!("unknown model '{other}'"),
    }
}

/// The depth each model family runs at in the accuracy tables.
pub fn table_depth(name: &str) -> usize {
    match name {
        // Shallow models at their published best.
        "GCN" | "GAT" | "SGC" | "APPNP" | "MixHop" | "DropEdge" | "Pairnorm" | "MADReg"
        | "GraphSAGE" | "FastGCN" => 2,
        // The deep family benefits from extra layers.
        "ResGCN" | "DenseGCN" | "JK-Net" => 4,
        // "Lasagne gets the best result with more than 5 layers" (§5.2.2).
        n if n.starts_with("Lasagne") => 5,
        other => panic!("unknown model '{other}'"),
    }
}

/// Train `model_name` on `ds` over the configured seeds, full-batch,
/// returning the seed aggregate. `depth_override` forces a specific depth
/// (used by the Fig 5 sweep); otherwise [`table_depth`] applies.
pub fn run_model(
    model_name: &str,
    ds: &Dataset,
    depth_override: Option<usize>,
    base_seed: u64,
) -> SeedSummary {
    let mut hyper = Hyper::for_dataset(ds.spec.id);
    hyper.depth = depth_override.unwrap_or_else(|| table_depth(model_name));
    let train_cfg = TrainConfig {
        max_epochs: max_epochs(),
        ..TrainConfig::from_hyper(&hyper)
    };
    let ctx = GraphContext::from_dataset(ds);
    run_seeds_graceful(num_seeds(), base_seed, |seed| {
        let mut model = build_model(model_name, ds, &hyper, seed);
        let mut strat = FullBatch::from_dataset(ds);
        let mut rng = TensorRng::seed_from_u64(seed ^ 0x5eed);
        try_fit(model.as_mut(), &mut strat, &ctx, &ds.split, &train_cfg, &mut rng)
    })
}

/// Generate (or scale down, in fast mode) a dataset.
pub fn dataset(id: DatasetId, seed: u64) -> Dataset {
    Dataset::generate(id, seed)
}

/// How an inductive baseline consumes the training subgraph (Table 4).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum InductiveStrategy {
    /// Full-batch on the training subgraph (GraphSAGE, FastGCN, Lasagne).
    Full,
    /// Cycle BFS-grown partitions of the training subgraph (ClusterGCN).
    Cluster(usize),
    /// Fresh random induced subgraph per step (GraphSAINT node sampler).
    Saint(usize),
}

/// A `Dataset` wrapper around the inductive training view so the batch
/// strategies (which take datasets) can run on it.
fn view_as_dataset(ds: &Dataset) -> Dataset {
    let view = ds.inductive_train_view();
    let n = view.graph.num_nodes();
    let pool: Vec<usize> = (0..n).collect();
    Dataset {
        spec: ds.spec.clone(),
        graph: view.graph,
        features: view.features,
        labels: view.labels,
        num_classes: ds.num_classes,
        split: lasagne_datasets::Split {
            train: pool.clone(),
            val: Vec::new(),
            test: Vec::new(),
        },
        label_pool: pool,
    }
}

/// Table 4 runner: train on the inductive view with the given strategy,
/// early-stop and test on the *full* graph (GraphSAINT evaluation
/// convention).
pub fn run_inductive(
    model_name: &str,
    strategy: InductiveStrategy,
    ds: &Dataset,
    base_seed: u64,
) -> SeedSummary {
    let mut hyper = Hyper::for_dataset(ds.spec.id);
    hyper.depth = table_depth(model_name);
    let train_cfg = TrainConfig {
        max_epochs: max_epochs(),
        ..TrainConfig::from_hyper(&hyper)
    };
    let eval_ctx = GraphContext::from_dataset(ds);
    let train_ds = view_as_dataset(ds);
    run_seeds_graceful(num_seeds(), base_seed, |seed| {
        let mut model = build_model(model_name, ds, &hyper, seed);
        let mut rng = TensorRng::seed_from_u64(seed ^ 0x1d0c);
        let mut strat: Box<dyn BatchStrategy> = match strategy {
            InductiveStrategy::Full => Box::new(FullBatch::from_dataset(&train_ds)),
            InductiveStrategy::Cluster(k) => {
                Box::new(ClusterBatches::new(&train_ds, k, &mut rng))
            }
            InductiveStrategy::Saint(size) => {
                Box::new(SaintNodeSampler::new(&train_ds, size))
            }
        };
        try_fit(
            model.as_mut(),
            strat.as_mut(),
            &eval_ctx,
            &ds.split,
            &train_cfg,
            &mut rng,
        )
    })
}

/// Run a custom-configured Lasagne (Table 6 ablation, Table 7 bases).
pub fn run_lasagne_config(
    cfg: &LasagneConfig,
    ds: &Dataset,
    base_seed: u64,
) -> SeedSummary {
    let hyper = Hyper::for_dataset(ds.spec.id);
    let train_cfg = TrainConfig {
        max_epochs: max_epochs(),
        ..TrainConfig::from_hyper(&hyper)
    };
    let ctx = GraphContext::from_dataset(ds);
    run_seeds_graceful(num_seeds(), base_seed, |seed| {
        let mut model = Lasagne::new(
            ds.num_features(),
            ds.num_classes,
            Some(ds.num_nodes()),
            cfg,
            seed,
        );
        let mut strat = FullBatch::from_dataset(ds);
        let mut rng = TensorRng::seed_from_u64(seed ^ 0x5eed);
        try_fit(&mut model, &mut strat, &ctx, &ds.split, &train_cfg, &mut rng)
    })
}

/// The paper-reported reference numbers for rows this reproduction does not
/// re-implement (models the paper itself only quotes; see DESIGN.md §3).
/// `(model, cora, citeseer, pubmed)`.
pub const TABLE3_QUOTED_ROWS: &[(&str, &str, &str, &str)] = &[
    ("GPNN (paper-quoted)", "81.8", "69.7", "79.3"),
    ("NGCN (paper-quoted)", "83.0", "72.2", "79.5"),
    ("DGCN (paper-quoted)", "83.5", "72.6", "80.0"),
    ("STGCN (paper-quoted)", "83.6", "72.6", "79.5"),
    ("DGI (paper-quoted)", "82.3±0.6", "71.8±0.7", "76.8±0.6"),
    ("GMI (paper-quoted)", "82.7±0.2", "73.0±0.3", "80.1±0.2"),
    ("GIN (paper-quoted)", "77.6±1.1", "66.1±0.9", "77.0±1.2"),
    ("LGCN (paper-quoted)", "83.3±0.5", "73.0±0.6", "79.5±0.2"),
    ("ADSF (paper-quoted)", "83.8±0.5", "72.8±0.7", "80.1±0.8"),
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_builds_every_table_model() {
        let ds = Dataset::generate(DatasetId::Cora, 0);
        let hyper = Hyper::for_dataset(DatasetId::Cora).with_depth(2);
        for name in [
            "GCN", "ResGCN", "DenseGCN", "JK-Net", "GAT", "SGC", "APPNP", "MixHop",
            "DropEdge", "Pairnorm", "MADReg", "GraphSAGE", "FastGCN",
        ] {
            let m = build_model(name, &ds, &hyper, 0);
            assert!(!m.store().is_empty(), "{name}");
        }
        for name in [
            "Lasagne (Weighted)",
            "Lasagne (Stochastic)",
            "Lasagne (Max pooling)",
        ] {
            let m = build_model(name, &ds, &hyper, 0);
            assert!(m.name().starts_with("Lasagne"), "{name}");
        }
    }

    #[test]
    #[should_panic(expected = "unknown model")]
    fn unknown_model_rejected() {
        let ds = Dataset::generate(DatasetId::Cora, 0);
        let _ = build_model("NoSuchNet", &ds, &Hyper::default(), 0);
    }

    #[test]
    fn depth_conventions() {
        assert_eq!(table_depth("GCN"), 2);
        assert_eq!(table_depth("JK-Net"), 4);
        assert_eq!(table_depth("Lasagne (Weighted)"), 5);
    }
}
