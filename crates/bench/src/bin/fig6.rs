//! **Fig 6** — MI between the last layer's hidden representation and the
//! input features *during training* (10-layer models on Cora).
//!
//! Shapes to reproduce: DenseGCN/JK-Net start high and drop as
//! over-smoothing kicks in; Lasagne climbs to and keeps the highest MI.

use lasagne_bench::{build_model, dataset, max_epochs};
use lasagne_core::{AggregatorKind, Lasagne, LasagneConfig};
use lasagne_datasets::DatasetId;
use lasagne_gnn::sampling::FullBatch;
use lasagne_gnn::{GraphContext, Hyper, Mode, NodeClassifier};
use lasagne_mi::MiEstimator;
use lasagne_tensor::TensorRng;
use lasagne_train::{fit_with_callback, Table, TrainConfig};

fn trace_mi(model: &mut dyn NodeClassifier, ds_ctx: &GraphContext, every: usize) -> Vec<(usize, f32)> {
    let est = MiEstimator { max_samples: 500, ..MiEstimator::default() };
    let mut trace = Vec::new();
    let hyper = Hyper::for_dataset(DatasetId::Cora);
    let cfg = TrainConfig {
        max_epochs: max_epochs().min(120),
        patience: usize::MAX, // run the full budget so every curve has equal length
        ..TrainConfig::from_hyper(&hyper)
    };
    let ds = dataset(DatasetId::Cora, 0);
    let mut strat = FullBatch::from_dataset(&ds);
    let mut rng = TensorRng::seed_from_u64(7);
    let mut cb = |epoch: usize, m: &dyn NodeClassifier, ctx: &GraphContext| {
        if !epoch.is_multiple_of(every) {
            return;
        }
        let mut tape = lasagne_autograd::Tape::new();
        let mut eval_rng = TensorRng::seed_from_u64(5);
        let (_, hiddens) = m.forward_with_hiddens(&mut tape, ctx, Mode::Eval, &mut eval_rng);
        // Probe the deepest *hidden* representation (layer L−1), not the
        // F-dimensional logits: comparable across architectures whose output
        // heads differ (GC-FM vs linear vs conv).
        let probe = if hiddens.len() >= 2 { hiddens.len() - 2 } else { hiddens.len() - 1 };
        if let Some(&last) = hiddens.get(probe) {
            let mut mi_rng = TensorRng::seed_from_u64(epoch as u64);
            let mi = est.estimate(tape.value(last), &ctx.features, &mut mi_rng);
            trace.push((epoch, mi));
        }
    };
    let _ = fit_with_callback(
        model,
        &mut strat,
        ds_ctx,
        &ds.split,
        &cfg,
        &mut rng,
        Some(&mut cb),
    );
    trace
}

fn main() {
    let depth = 10;
    let every = 10;
    let ds = dataset(DatasetId::Cora, 0);
    let ctx = GraphContext::from_dataset(&ds);

    let mut rows: Vec<(String, Vec<(usize, f32)>)> = Vec::new();
    for name in ["GCN", "ResGCN", "JK-Net", "DenseGCN"] {
        eprintln!("tracing {name}…");
        let mut hyper = Hyper::for_dataset(DatasetId::Cora);
        hyper.depth = depth;
        let mut model = build_model(name, &ds, &hyper, 7);
        rows.push((name.to_string(), trace_mi(model.as_mut(), &ctx, every)));
    }
    eprintln!("tracing Lasagne…");
    let hyper = Hyper::for_dataset(DatasetId::Cora).with_depth(depth);
    let cfg = LasagneConfig::from_hyper(&hyper, AggregatorKind::Weighted);
    let mut lasagne = Lasagne::new(ds.num_features(), ds.num_classes, Some(ds.num_nodes()), &cfg, 7);
    rows.push(("Lasagne (Weighted)".into(), trace_mi(&mut lasagne, &ctx, every)));

    let epochs: Vec<usize> = rows[0].1.iter().map(|&(e, _)| e).collect();
    let mut headers = vec!["Model".to_string()];
    headers.extend(epochs.iter().map(|e| format!("ep{e}")));
    let headers_ref: Vec<&str> = headers.iter().map(String::as_str).collect();
    let mut table = Table::new(
        "Fig 6 — last-layer MI with the input during training (10-layer models, Cora, nats)",
        &headers_ref,
    );
    for (name, trace) in rows {
        let mut cells = vec![name];
        for (_, mi) in &trace {
            cells.push(format!("{mi:.2}"));
        }
        while cells.len() < headers.len() {
            cells.push("-".into());
        }
        table.row(cells);
    }
    println!("{table}");
}
