//! **Table 7** — Lasagne (Stochastic) wrapped around different base models:
//! each row keeps the base's per-layer aggregation (GCN conv / SGC powers /
//! GAT attention) but replaces the deep architecture with Lasagne.

use lasagne_bench::{dataset, num_seeds, run_lasagne_config, run_model};
use lasagne_core::{AggregatorKind, BaseConv, LasagneConfig};
use lasagne_datasets::DatasetId;
use lasagne_gnn::Hyper;
use lasagne_train::Table;

fn main() {
    let datasets: Vec<_> = DatasetId::citation()
        .into_iter()
        .map(|id| dataset(id, 0))
        .collect();

    let bases = [
        ("GCN", BaseConv::Gcn),
        ("SGC", BaseConv::Sgc),
        ("GAT", BaseConv::Gat),
    ];

    let mut table = Table::new(
        format!(
            "Table 7 — with/without Lasagne(Stochastic) (%, mean±std over {} seeds)",
            num_seeds()
        ),
        &[
            "Models",
            "Cora base", "Cora +Lasagne(S)",
            "Citeseer base", "Citeseer +Lasagne(S)",
            "PubMed base", "PubMed +Lasagne(S)",
        ],
    );
    for (name, base) in bases {
        eprintln!("running base {name}…");
        let mut cells = vec![name.to_string()];
        for ds in &datasets {
            // Baseline: the plain model at its best (2-layer) depth.
            let baseline = run_model(name, ds, None, 42);
            // Lasagne(S) on that base, depth 5.
            let hyper = Hyper::for_dataset(ds.spec.id).with_depth(5);
            let cfg = LasagneConfig::from_hyper(&hyper, AggregatorKind::Stochastic)
                .with_base(base);
            let wrapped = run_lasagne_config(&cfg, ds, 42);
            cells.push(baseline.cell());
            cells.push(wrapped.cell());
        }
        table.row(cells);
    }
    println!("{table}");
}
