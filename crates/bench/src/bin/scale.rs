//! Out-of-core scaling bench (DESIGN.md §14): peak RSS and nodes/sec of
//! resident full-graph evaluation vs. partitioned row-demand evaluation,
//! across degree-corrected SBM graphs up to a million nodes.
//!
//! Each (size, mode) cell runs in its **own child process** — peak RSS is
//! read from `VmHWM` in `/proc/self/status`, a process-lifetime high-water
//! mark, so resident and partitioned must not share an address space. The
//! child regenerates the same seeded dc-SBM graph and two-layer GCN-shaped
//! program, then either
//!
//! * **resident**: evaluates the whole program at once through
//!   [`lasagne_serve::evaluate_program`] — every intermediate is a full
//!   `N×H` tensor, the O(graph) memory profile every pre-partitioning code
//!   path has; or
//! * **partitioned**: plans once with [`lasagne_autograd::RowPlan`] and
//!   sweeps the node set in `PARTS` contiguous partitions — peak memory is
//!   O(partition + halo), the logits come out bitwise identical (pinned by
//!   the partition-equivalence suites, not re-proven here).
//!
//! The orchestrator records both cells per size into `BENCH_scale.json` and
//! **fails** (exit 1) if partitioned peak RSS is not strictly below resident
//! peak RSS on the largest size — the regression guard verify.sh leans on.
//!
//! ```sh
//! cargo run --release --bin scale-bench -- --smoke   # CI guard, small sizes
//! cargo run --release --bin scale-bench              # full sweep to 1M nodes
//! ```

use std::path::PathBuf;
use std::process::Command;
use std::time::Instant;

use lasagne_autograd::{ProgramOp, RowPlan};
use lasagne_graph::generators::{dc_sbm, DcSbmConfig};
use lasagne_sparse::Csr;
use lasagne_tensor::{Tensor, TensorRng};
use lasagne_testkit::Json;

/// Feature width of the synthetic input.
const IN_DIM: usize = 16;
/// Hidden width — sized so resident intermediates dominate the footprint.
const HIDDEN: usize = 64;
/// Output classes.
const CLASSES: usize = 8;
/// Partition count for the partitioned sweep.
const PARTS: usize = 32;
/// Average degree of the generated dc-SBM graphs (1M nodes → 3M edges).
const AVG_DEGREE: f64 = 6.0;
/// One seed for everything: both children regenerate identical inputs.
const SEED: u64 = 42;

struct Args {
    smoke: bool,
    out: PathBuf,
    /// `Some((mode, nodes))` when running as a measurement child.
    child: Option<(String, usize)>,
}

fn usage() -> ! {
    eprintln!("usage: scale-bench [--smoke] [--out PATH]");
    eprintln!("       scale-bench --child resident|partitioned --nodes N");
    std::process::exit(2);
}

fn parse_args() -> Args {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut args =
        Args { smoke: false, out: PathBuf::from("BENCH_scale.json"), child: None };
    let (mut child_mode, mut child_nodes) = (None::<String>, None::<usize>);
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--smoke" => {
                args.smoke = true;
                i += 1;
            }
            flag @ ("--out" | "--child" | "--nodes") => {
                let value = argv.get(i + 1).unwrap_or_else(|| {
                    eprintln!("{flag}: missing value");
                    usage()
                });
                match flag {
                    "--out" => args.out = value.into(),
                    "--child" => child_mode = Some(value.clone()),
                    _ => child_nodes = Some(value.parse().unwrap_or_else(|_| usage())),
                }
                i += 2;
            }
            other => {
                eprintln!("unknown flag '{other}'");
                usage()
            }
        }
    }
    match (child_mode, child_nodes) {
        (Some(mode), Some(nodes)) => args.child = Some((mode, nodes)),
        (None, None) => {}
        _ => usage(),
    }
    args
}

fn fail(msg: &str) -> ! {
    eprintln!("scale-bench: {msg}");
    std::process::exit(1);
}

/// Process-lifetime peak resident set, from `VmHWM` in `/proc/self/status`
/// (kiB → bytes). Linux-only by construction; the bench is too.
fn peak_rss_bytes() -> u64 {
    let status = std::fs::read_to_string("/proc/self/status")
        .unwrap_or_else(|e| fail(&format!("read /proc/self/status: {e}")));
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmHWM:") {
            let kib: u64 = rest
                .split_whitespace()
                .next()
                .and_then(|v| v.parse().ok())
                .unwrap_or_else(|| fail("unparseable VmHWM line"));
            return kib * 1024;
        }
    }
    fail("no VmHWM in /proc/self/status")
}

/// The shared workload: a seeded dc-SBM graph, random features, and a
/// hand-assembled two-layer GCN program (`Â·relu(Â·X·W₁+b₁)·W₂+b₂`). Both
/// children build exactly this; only the evaluation strategy differs.
struct Workload {
    nodes: usize,
    edges: usize,
    ahat: Csr,
    ops: Vec<ProgramOp>,
    weights: Vec<(String, Tensor)>,
    output: usize,
    build_seconds: f64,
}

fn build_workload(nodes: usize) -> Workload {
    let build = Instant::now();
    let mut rng = TensorRng::seed_from_u64(SEED);
    let (graph, _labels) = dc_sbm(
        &DcSbmConfig {
            nodes,
            classes: CLASSES,
            avg_degree: AVG_DEGREE,
            homophily: 0.8,
            power_exponent: 2.5,
            max_weight_ratio: 10.0,
        },
        &mut rng,
    );
    let edges = graph.num_edges();
    let ahat = graph.normalized_adjacency();
    drop(graph); // the raw adjacency is not part of either memory profile
    let x = rng.normal_tensor(nodes, IN_DIM, 0.0, 1.0);
    let weights = vec![
        ("w1".to_string(), rng.normal_tensor(IN_DIM, HIDDEN, 0.0, 0.1)),
        ("b1".to_string(), rng.normal_tensor(1, HIDDEN, 0.0, 0.1)),
        ("w2".to_string(), rng.normal_tensor(HIDDEN, CLASSES, 0.0, 0.1)),
        ("b2".to_string(), rng.normal_tensor(1, CLASSES, 0.0, 0.1)),
    ];
    let ops = vec![
        ProgramOp::Constant { value: x },              // 0: X
        ProgramOp::Param { name: "w1".into() },        // 1
        ProgramOp::MatMul { a: 0, b: 1 },              // 2: X·W₁
        ProgramOp::SpMM { m: 0, x: 2 },                // 3: Â·(X·W₁)
        ProgramOp::Param { name: "b1".into() },        // 4
        ProgramOp::AddRowBroadcast { x: 3, b: 4 },     // 5
        ProgramOp::Relu { x: 5 },                      // 6
        ProgramOp::Param { name: "w2".into() },        // 7
        ProgramOp::MatMul { a: 6, b: 7 },              // 8
        ProgramOp::SpMM { m: 0, x: 8 },                // 9
        ProgramOp::Param { name: "b2".into() },        // 10
        ProgramOp::AddRowBroadcast { x: 9, b: 10 },    // 11: logits
    ];
    Workload {
        nodes,
        edges,
        ahat,
        ops,
        weights,
        output: 11,
        build_seconds: build.elapsed().as_secs_f64(),
    }
}

/// Resident cell: whole-program evaluation, every intermediate N rows tall.
fn run_resident(w: &Workload) -> (f64, f32) {
    let program = lasagne_autograd::Program {
        ops: w.ops.clone(),
        sparse: vec![std::rc::Rc::new(w.ahat.clone())],
        output: w.output,
    };
    let eval = Instant::now();
    let logits = lasagne_serve::evaluate_program(&program, &w.weights)
        .unwrap_or_else(|e| fail(&format!("resident evaluation: {e}")));
    let seconds = eval.elapsed().as_secs_f64();
    assert_eq!(logits.shape(), (w.nodes, CLASSES), "resident output shape");
    (seconds, logits.get(w.nodes - 1, 0))
}

/// Partitioned cell: one row-demand plan, swept in PARTS contiguous blocks.
fn run_partitioned(w: &Workload) -> (f64, f32) {
    let plan = RowPlan::from_parts(&w.ops, vec![&w.ahat], &w.weights, w.output)
        .unwrap_or_else(|e| fail(&format!("partitioned plan: {e}")));
    let cap = w.nodes.div_ceil(PARTS);
    let eval = Instant::now();
    let mut rows_done = 0usize;
    let mut last = 0.0f32;
    for part in 0..PARTS {
        let lo = part * cap;
        let hi = ((part + 1) * cap).min(w.nodes);
        if lo >= hi {
            continue;
        }
        let rows: Vec<usize> = (lo..hi).collect();
        let block = plan
            .eval_rows(&rows)
            .unwrap_or_else(|e| fail(&format!("partition {part} evaluation: {e}")));
        assert_eq!(block.shape(), (rows.len(), CLASSES), "partition output shape");
        rows_done += rows.len();
        last = block.get(rows.len() - 1, 0);
    }
    let seconds = eval.elapsed().as_secs_f64();
    assert_eq!(rows_done, w.nodes, "partitioned sweep must cover every node");
    (seconds, last)
}

/// Measurement child: build the workload, evaluate in one mode, print a
/// single JSON line with timings and the process peak RSS.
fn run_child(mode: &str, nodes: usize) {
    lasagne_par::set_threads(1);
    let w = build_workload(nodes);
    let (eval_seconds, witness) = match mode {
        "resident" => run_resident(&w),
        "partitioned" => run_partitioned(&w),
        other => fail(&format!("unknown child mode '{other}'")),
    };
    let doc = Json::Obj(vec![
        ("mode".into(), Json::Str(mode.into())),
        ("nodes".into(), Json::Num(w.nodes as f64)),
        ("edges".into(), Json::Num(w.edges as f64)),
        ("build_seconds".into(), Json::Num(w.build_seconds)),
        ("eval_seconds".into(), Json::Num(eval_seconds)),
        ("nodes_per_sec".into(), Json::Num(w.nodes as f64 / eval_seconds.max(1e-9))),
        ("peak_rss_bytes".into(), Json::Num(peak_rss_bytes() as f64)),
        // A logits witness: both modes print the same bits (belt on top of
        // the equivalence suites' suspenders).
        ("logit_witness_bits".into(), Json::Num(f64::from(witness.to_bits()))),
    ]);
    println!("{doc}");
}

/// Spawn one measurement child and parse its JSON report.
fn measure(mode: &str, nodes: usize) -> Json {
    let exe = std::env::current_exe()
        .unwrap_or_else(|e| fail(&format!("current_exe: {e}")));
    let out = Command::new(exe)
        .args(["--child", mode, "--nodes", &nodes.to_string()])
        .output()
        .unwrap_or_else(|e| fail(&format!("spawn {mode} child: {e}")));
    if !out.status.success() {
        fail(&format!(
            "{mode} child for {nodes} nodes failed: {}",
            String::from_utf8_lossy(&out.stderr)
        ));
    }
    let stdout = String::from_utf8_lossy(&out.stdout);
    let line = stdout.lines().last().unwrap_or_else(|| fail("child printed nothing"));
    Json::parse(line).unwrap_or_else(|e| fail(&format!("child report parse: {e}")))
}

fn num(doc: &Json, field: &str) -> f64 {
    doc.get(field)
        .and_then(Json::as_f64)
        .unwrap_or_else(|| fail(&format!("child report missing '{field}'")))
}

fn run_orchestrator(args: &Args) {
    let sizes: &[usize] =
        if args.smoke { &[5_000, 30_000] } else { &[100_000, 300_000, 1_000_000] };
    let mut rows = Vec::new();
    let mut guard: Option<(usize, u64, u64)> = None;
    for &nodes in sizes {
        let resident = measure("resident", nodes);
        let partitioned = measure("partitioned", nodes);
        let res_rss = num(&resident, "peak_rss_bytes") as u64;
        let part_rss = num(&partitioned, "peak_rss_bytes") as u64;
        if num(&resident, "logit_witness_bits") != num(&partitioned, "logit_witness_bits") {
            fail(&format!("{nodes} nodes: resident and partitioned logits disagree"));
        }
        println!(
            "nodes={nodes:>9}  edges={:>9}  resident: {:>9.0} n/s, peak {:>7.1} MiB  \
             partitioned: {:>9.0} n/s, peak {:>7.1} MiB  (ratio {:.2}x)",
            num(&resident, "edges"),
            num(&resident, "nodes_per_sec"),
            res_rss as f64 / (1 << 20) as f64,
            num(&partitioned, "nodes_per_sec"),
            part_rss as f64 / (1 << 20) as f64,
            res_rss as f64 / part_rss.max(1) as f64,
        );
        rows.push(Json::Obj(vec![
            ("nodes".into(), Json::Num(nodes as f64)),
            ("edges".into(), Json::Num(num(&resident, "edges"))),
            ("resident".into(), resident),
            ("partitioned".into(), partitioned),
        ]));
        guard = Some((nodes, res_rss, part_rss));
    }
    // The regression guard: on the largest size both modes ran, partitioned
    // peak RSS must be strictly below resident peak RSS.
    let (guard_nodes, res_rss, part_rss) = guard.unwrap_or_else(|| fail("no sizes ran"));
    let doc = Json::Obj(vec![
        ("bench".into(), Json::Str("scale".into())),
        ("smoke".into(), Json::Bool(args.smoke)),
        ("parts".into(), Json::Num(PARTS as f64)),
        ("hidden".into(), Json::Num(HIDDEN as f64)),
        ("sizes".into(), Json::Arr(rows)),
        (
            "rss_guard".into(),
            Json::Obj(vec![
                ("nodes".into(), Json::Num(guard_nodes as f64)),
                ("resident_peak_rss_bytes".into(), Json::Num(res_rss as f64)),
                ("partitioned_peak_rss_bytes".into(), Json::Num(part_rss as f64)),
                ("partitioned_below_resident".into(), Json::Bool(part_rss < res_rss)),
            ]),
        ),
    ]);
    std::fs::write(&args.out, format!("{doc}\n"))
        .unwrap_or_else(|e| fail(&format!("write {}: {e}", args.out.display())));
    println!("wrote {}", args.out.display());
    if part_rss >= res_rss {
        fail(&format!(
            "peak-RSS guard violated at {guard_nodes} nodes: partitioned {part_rss} B \
             is not below resident {res_rss} B"
        ));
    }
    println!(
        "rss guard ok at {guard_nodes} nodes: partitioned peak is {:.2}x below resident",
        res_rss as f64 / part_rss.max(1) as f64
    );
}

fn main() {
    let args = parse_args();
    match &args.child {
        Some((mode, nodes)) => run_child(mode, *nodes),
        None => run_orchestrator(&args),
    }
}
