//! **Node-awareness ablation** (DESIGN.md §5; not a paper artifact but the
//! experiment its §4.1 invites): how much of Lasagne's gain comes from
//! node-aware aggregation rather than from dense layer aggregation alone?
//!
//! The Mean aggregator densely aggregates all previous layers exactly like
//! the Weighted aggregator, but with a uniform, node-*blind* coefficient —
//! so (node-aware − Mean) isolates the paper's central mechanism.

use lasagne_bench::{dataset, num_seeds, run_lasagne_config};
use lasagne_core::{AggregatorKind, LasagneConfig};
use lasagne_datasets::DatasetId;
use lasagne_gnn::Hyper;
use lasagne_train::Table;

fn main() {
    let datasets: Vec<_> = DatasetId::citation()
        .into_iter()
        .map(|id| dataset(id, 0))
        .collect();

    let mut table = Table::new(
        format!(
            "Node-awareness ablation (%, mean±std over {} seeds, depth 5)",
            num_seeds()
        ),
        &["Aggregator", "node-aware?", "Cora", "Citeseer", "Pubmed"],
    );
    for agg in AggregatorKind::extended() {
        eprintln!("running {}…", agg.label());
        let mut cells = vec![
            agg.label().to_string(),
            if agg == AggregatorKind::Mean { "no".into() } else { "yes".into() },
        ];
        for ds in &datasets {
            let hyper = Hyper::for_dataset(ds.spec.id).with_depth(5);
            let cfg = LasagneConfig::from_hyper(&hyper, agg);
            cells.push(run_lasagne_config(&cfg, ds, 42).cell());
        }
        table.row(cells);
    }
    println!("{table}");
}
