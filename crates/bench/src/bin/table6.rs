//! **Table 6** — GC-FM ablation: each aggregator with the GC-FM output
//! layer vs with a plain graph-convolution output layer.

use lasagne_bench::{dataset, num_seeds, run_lasagne_config};
use lasagne_core::{AggregatorKind, LasagneConfig};
use lasagne_datasets::DatasetId;
use lasagne_gnn::Hyper;
use lasagne_train::Table;

fn main() {
    let datasets: Vec<_> = DatasetId::citation()
        .into_iter()
        .map(|id| dataset(id, 0))
        .collect();

    let mut table = Table::new(
        format!("Table 6 — GC-FM ablation (%, mean±std over {} seeds)", num_seeds()),
        &[
            "Aggregators",
            "Cora base", "Cora +GC-FM",
            "Citeseer base", "Citeseer +GC-FM",
            "PubMed base", "PubMed +GC-FM",
        ],
    );
    for agg in AggregatorKind::all() {
        eprintln!("running {}…", agg.label());
        let mut cells = vec![agg.label().to_string()];
        for ds in &datasets {
            let hyper = Hyper::for_dataset(ds.spec.id).with_depth(5);
            let with_fm = LasagneConfig::from_hyper(&hyper, agg);
            let without = with_fm.clone().with_gcfm(false);
            cells.push(run_lasagne_config(&without, ds, 42).cell());
            cells.push(run_lasagne_config(&with_fm, ds, 42).cell());
        }
        // Reorder: all baselines first per dataset pair already interleaved.
        table.row(cells);
    }
    println!("{table}");
}
