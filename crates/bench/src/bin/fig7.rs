//! **Fig 7** — efficiency comparison: per-epoch training time of GCN,
//! Lasagne (Weighted) and GAT.
//!
//! (a) depth 4 across datasets; (b) depth 2..10 on Cora. The shape to
//! reproduce: Lasagne tracks GCN (its extra work is linear), while GAT's
//! per-edge attention is far slower and scales worst with depth.

use lasagne_bench::{build_model, dataset};
use lasagne_datasets::DatasetId;
use lasagne_gnn::sampling::{BatchStrategy, FullBatch};
use lasagne_gnn::{Hyper, Mode};
use lasagne_tensor::TensorRng;
use lasagne_train::Table;

/// Median per-epoch optimization time over `reps` epochs (forward +
/// backward + Adam step), warmup excluded.
fn epoch_seconds(model_name: &str, ds: &lasagne_datasets::Dataset, depth: usize, reps: usize) -> f64 {
    use lasagne_autograd::{Adam, Optimizer, Tape};
    use std::rc::Rc;
    let mut hyper = Hyper::for_dataset(ds.spec.id);
    hyper.depth = depth;
    let mut model = build_model(model_name, ds, &hyper, 0);
    let mut strat = FullBatch::from_dataset(ds);
    let mut rng = TensorRng::seed_from_u64(0);
    let mut opt = Adam::new(model.store(), hyper.lr, hyper.weight_decay);
    let mut times = Vec::with_capacity(reps);
    for step in 0..(reps + 1) {
        let start = std::time::Instant::now();
        let batch = strat.batch(step, &mut rng);
        let labels = Rc::new((*batch.ctx.labels).clone());
        let idx = Rc::new(batch.train_idx.clone());
        let mut tape = Tape::new();
        let out = model.forward(&mut tape, &batch.ctx, Mode::Train, &mut rng);
        let lp = tape.log_softmax(out.logits);
        let loss = tape.nll_masked(lp, labels, idx);
        model.store_mut().zero_grads();
        tape.backward(loss, model.store_mut());
        opt.step(model.store_mut());
        if step > 0 {
            times.push(start.elapsed().as_secs_f64());
        }
    }
    times.sort_by(|a, b| a.partial_cmp(b).expect("finite times"));
    times[times.len() / 2]
}

fn main() {
    let reps = if lasagne_bench::fast_mode() { 2 } else { 5 };
    let models = ["GCN", "Lasagne (Weighted)", "GAT"];

    // (a) depth 4 across datasets.
    let ids = [
        DatasetId::Cora,
        DatasetId::Citeseer,
        DatasetId::Pubmed,
        DatasetId::Tencent,
    ];
    let mut table_a = Table::new(
        "Fig 7(a) — per-epoch time (s), depth 4",
        &["Model", "Cora", "Citeseer", "Pubmed", "Tencent"],
    );
    let datasets: Vec<_> = ids.into_iter().map(|id| dataset(id, 0)).collect();
    for model in models {
        eprintln!("timing {model} at depth 4…");
        let mut cells = vec![model.to_string()];
        for ds in &datasets {
            cells.push(format!("{:.3}", epoch_seconds(model, ds, 4, reps)));
        }
        table_a.row(cells);
    }
    println!("{table_a}");

    // (b) depth sweep on Cora.
    let depths = [2usize, 4, 6, 8, 10];
    let cora = dataset(DatasetId::Cora, 0);
    let mut headers = vec!["Model".to_string()];
    headers.extend(depths.iter().map(|d| format!("depth {d}")));
    let headers_ref: Vec<&str> = headers.iter().map(String::as_str).collect();
    let mut table_b = Table::new("Fig 7(b) — per-epoch time (s) vs depth on Cora", &headers_ref);
    for model in models {
        eprintln!("timing {model} across depths…");
        let mut cells = vec![model.to_string()];
        for &d in &depths {
            cells.push(format!("{:.3}", epoch_seconds(model, &cora, d, reps)));
        }
        table_b.row(cells);
    }
    println!("{table_b}");
}
