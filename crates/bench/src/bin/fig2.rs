//! **Fig 2** — mutual information `I(H(l); X)` of every hidden layer of
//! converged 10-layer deep GCNs on Cora.
//!
//! The paper's observations to reproduce: vanilla GCN's MI decays sharply
//! with depth (over-smoothing); ResGCN holds it up for shallow layers;
//! JK-Net lifts the last layers; DenseGCN retains information at all
//! depths.

use lasagne_bench::{build_model, dataset, max_epochs};
use lasagne_datasets::DatasetId;
use lasagne_gnn::sampling::FullBatch;
use lasagne_gnn::{GraphContext, Hyper, Mode};
use lasagne_mi::MiEstimator;
use lasagne_tensor::TensorRng;
use lasagne_train::{fit, Table, TrainConfig};

fn main() {
    let depth = 10;
    let ds = dataset(DatasetId::Cora, 0);
    let ctx = GraphContext::from_dataset(&ds);
    let est = MiEstimator::default();

    let mut headers = vec!["Model".to_string()];
    headers.extend((1..=depth).map(|l| format!("H({l})")));
    let headers_ref: Vec<&str> = headers.iter().map(String::as_str).collect();
    let mut table = Table::new(
        "Fig 2 — per-layer MI with the input features, 10-layer models on Cora (nats)",
        &headers_ref,
    );

    for model_name in ["GCN", "ResGCN", "JK-Net", "DenseGCN"] {
        eprintln!("training {model_name}…");
        let mut hyper = Hyper::for_dataset(DatasetId::Cora);
        hyper.depth = depth;
        let mut model = build_model(model_name, &ds, &hyper, 7);
        let cfg = TrainConfig { max_epochs: max_epochs(), ..TrainConfig::from_hyper(&hyper) };
        let mut strat = FullBatch::from_dataset(&ds);
        let mut rng = TensorRng::seed_from_u64(7);
        let _ = fit(model.as_mut(), &mut strat, &ctx, &ds.split, &cfg, &mut rng);

        // Converged model: estimate MI(H(l); X) per layer.
        let mut tape = lasagne_autograd::Tape::new();
        let (_, mut hiddens) = model.forward_with_hiddens(&mut tape, &ctx, Mode::Eval, &mut rng);
        // Architectures expose at most `depth` meaningful H(l); JK-Net also
        // returns its classifier output — keep exactly H(1..depth).
        hiddens.truncate(depth);
        let mut cells = vec![model_name.to_string()];
        let mut mi_rng = TensorRng::seed_from_u64(99);
        for &h in &hiddens {
            let mi = est.estimate(tape.value(h), &ctx.features, &mut mi_rng);
            cells.push(format!("{mi:.2}"));
        }
        while cells.len() < headers.len() {
            cells.push("-".into());
        }
        table.row(cells);
    }
    println!("{table}");
}
