//! **Table 3** — test accuracy (%) on the citation datasets.
//!
//! Rows the paper ran itself (`*`) are re-run here; rows the paper only
//! quotes from other publications are echoed as reference values.

use lasagne_bench::{dataset, num_seeds, run_model, TABLE3_QUOTED_ROWS};
use lasagne_datasets::DatasetId;
use lasagne_train::Table;

fn main() {
    let datasets: Vec<_> = DatasetId::citation()
        .into_iter()
        .map(|id| dataset(id, 0))
        .collect();

    let models = [
        "GCN",
        "JK-Net",
        "ResGCN",
        "DenseGCN",
        "GAT",
        "SGC",
        "APPNP",
        "MixHop",
        "DropEdge",
        "Pairnorm",
        "MADReg",
        "Lasagne (Weighted)",
        "Lasagne (Stochastic)",
        "Lasagne (Max pooling)",
    ];

    let mut table = Table::new(
        format!("Table 3 — citation accuracy (%, mean±std over {} seeds)", num_seeds()),
        &["Models", "Cora", "Citeseer", "Pubmed"],
    );
    for (name, cora, cite, pub_) in TABLE3_QUOTED_ROWS {
        table.row(vec![name.to_string(), cora.to_string(), cite.to_string(), pub_.to_string()]);
    }
    for model in models {
        eprintln!("running {model}…");
        let cells: Vec<String> = datasets
            .iter()
            .map(|ds| run_model(model, ds, None, 42).cell())
            .collect();
        table.row(vec![
            format!("{model}*"),
            cells[0].clone(),
            cells[1].clone(),
            cells[2].clone(),
        ]);
    }
    println!("{table}");
}
