//! **Fig 5** — influence of model depth (2..10) on classification accuracy,
//! on the citation datasets (+ NELL), for the deep-GCN family vs Lasagne.
//!
//! Shapes to reproduce: vanilla GCN peaks shallow and collapses;
//! ResGCN/DenseGCN/JK-Net degrade gracefully; Lasagne keeps improving (or
//! stays flat) and wins at depth ≥ 5.

use lasagne_bench::{dataset, run_model};
use lasagne_datasets::DatasetId;
use lasagne_train::Table;

fn main() {
    let depths = [2usize, 4, 6, 8, 10];
    let models = [
        "GCN",
        "ResGCN",
        "DenseGCN",
        "JK-Net",
        "Lasagne (Weighted)",
        "Lasagne (Stochastic)",
        "Lasagne (Max pooling)",
    ];
    // `LASAGNE_FIG5_DATASETS=cora,citeseer` restricts the sweep (the full
    // four-dataset sweep is ~140 training runs).
    let ids: Vec<DatasetId> = match std::env::var("LASAGNE_FIG5_DATASETS") {
        Ok(list) => list
            .split(',')
            .map(|s| s.trim().parse().expect("dataset name"))
            .collect(),
        Err(_) => vec![
            DatasetId::Cora,
            DatasetId::Citeseer,
            DatasetId::Pubmed,
            DatasetId::Nell,
        ],
    };

    for id in ids {
        let ds = dataset(id, 0);
        let mut headers = vec!["Model".to_string()];
        headers.extend(depths.iter().map(|d| format!("depth {d}")));
        let headers_ref: Vec<&str> = headers.iter().map(String::as_str).collect();
        let mut table = Table::new(
            format!("Fig 5 — accuracy (%) vs depth on {}", ds.spec.name),
            &headers_ref,
        );
        for model in models {
            eprintln!("[{id}] running {model}…");
            let mut cells = vec![model.to_string()];
            for &d in &depths {
                let s = run_model(model, &ds, Some(d), 42);
                cells.push(format!("{:.1}", s.mean_pct()));
            }
            table.row(cells);
        }
        println!("{table}");
    }
}
