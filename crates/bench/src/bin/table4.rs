//! **Table 4** — inductive tasks (Flickr, Reddit): sampling baselines vs
//! Lasagne (Max pooling), the only aggregator whose parameters are
//! node-set independent.

use lasagne_bench::{dataset, num_seeds, run_inductive, InductiveStrategy};
use lasagne_datasets::DatasetId;
use lasagne_train::Table;

fn main() {
    let flickr = dataset(DatasetId::Flickr, 0);
    let reddit = dataset(DatasetId::Reddit, 0);

    let rows: [(&str, InductiveStrategy); 5] = [
        ("GraphSAGE", InductiveStrategy::Full),
        ("FastGCN", InductiveStrategy::Full),
        ("GCN", InductiveStrategy::Cluster(16)), // ClusterGCN = clustered GCN training
        ("GCN", InductiveStrategy::Saint(1500)), // GraphSAINT = node-sampled GCN training
        ("Lasagne (Max pooling)", InductiveStrategy::Full),
    ];
    let labels = ["GraphSAGE", "FastGCN", "ClusterGCN", "GraphSAINT", "Lasagne (Max pooling)*"];

    let mut table = Table::new(
        format!("Table 4 — inductive accuracy (%, mean±std over {} seeds)", num_seeds()),
        &["Models", "Flickr", "Reddit"],
    );
    for ((model, strat), label) in rows.iter().zip(labels) {
        eprintln!("running {label}…");
        let f = run_inductive(model, *strat, &flickr, 42);
        let r = run_inductive(model, *strat, &reddit, 42);
        table.row(vec![label.to_string(), f.cell(), r.cell()]);
    }
    println!("{table}");
}
