//! Streaming-mutation bench + the verify-script equivalence drive.
//!
//! Three modes:
//!
//! * **Bench** (default): freeze a cora GCN, then replay a deterministic
//!   edge-toggle script against the live engine at several compaction
//!   cadences (`compact_every` ∈ {8, 64, 512} — from "almost every mutation
//!   is a full recompute" to "almost every mutation is incremental").
//!   Per-mutation latency is recorded as a function of dirty-set size and
//!   written to `BENCH_streaming.json`.
//! * **Drive** (`--drive --addr HOST:PORT`): replay the same script against
//!   an already-running server over TCP, then dump every node's prediction
//!   (class + probability bits) to `--out`. Used by `scripts/verify.sh`.
//! * **Reference** (`--reference --frozen PATH`): replay the identical
//!   script on a local engine forced to `compact_every = 1` — every
//!   mutation takes the full-recompute (cold) path — and dump the same
//!   prediction format. `verify.sh` byte-compares the two dumps: the
//!   incremental server must be bitwise indistinguishable from always-cold.
//!
//! ```sh
//! cargo run --release --bin streaming-bench                 # bench, cora GCN
//! cargo run --release --bin streaming-bench -- --smoke      # quick CI smoke
//! cargo run --release --bin streaming-bench -- --drive --addr 127.0.0.1:7878 \
//!     --seed 7 --mutations 40 --out /tmp/drive.txt
//! cargo run --release --bin streaming-bench -- --reference --frozen model.json \
//!     --seed 7 --mutations 40 --out /tmp/reference.txt
//! ```

use std::collections::BTreeSet;
use std::fmt::Write as _;
use std::path::PathBuf;
use std::time::Instant;

use lasagne_datasets::{Dataset, DatasetId};
use lasagne_gnn::{models, GraphContext, Hyper};
use lasagne_serve::{freeze, Client, Engine, FrozenModel, Mutation, Request};
use lasagne_testkit::rng::Rng;
use lasagne_testkit::Json;

struct Args {
    frozen: Option<PathBuf>,
    addr: Option<String>,
    out: Option<PathBuf>,
    seed: u64,
    mutations: usize,
    drive: bool,
    reference: bool,
    smoke: bool,
}

fn usage() -> ! {
    eprintln!("usage: streaming-bench [--frozen PATH] [--out PATH] [--smoke]");
    eprintln!("       streaming-bench --drive --addr HOST:PORT --out PATH [--seed N] [--mutations N]");
    eprintln!("       streaming-bench --reference --frozen PATH --out PATH [--seed N] [--mutations N]");
    std::process::exit(2);
}

fn parse_args() -> Args {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut args = Args {
        frozen: None,
        addr: None,
        out: None,
        seed: 7,
        mutations: 40,
        drive: false,
        reference: false,
        smoke: false,
    };
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--drive" => {
                args.drive = true;
                i += 1;
            }
            "--reference" => {
                args.reference = true;
                i += 1;
            }
            "--smoke" => {
                args.smoke = true;
                i += 1;
            }
            flag @ ("--frozen" | "--addr" | "--out" | "--seed" | "--mutations") => {
                let value = argv.get(i + 1).unwrap_or_else(|| {
                    eprintln!("{flag}: missing value");
                    usage()
                });
                match flag {
                    "--frozen" => args.frozen = Some(value.into()),
                    "--addr" => args.addr = Some(value.clone()),
                    "--out" => args.out = Some(value.into()),
                    "--seed" => args.seed = value.parse().unwrap_or_else(|_| usage()),
                    _ => args.mutations = value.parse().unwrap_or_else(|_| usage()),
                }
                i += 2;
            }
            other => {
                eprintln!("unknown flag '{other}'");
                usage()
            }
        }
    }
    args
}

fn fail(msg: &str) -> ! {
    eprintln!("streaming-bench: {msg}");
    std::process::exit(1);
}

/// Load the engine from a frozen file, or freeze an untrained cora GCN
/// (mutation latency does not care whether the weights are trained).
fn build_engine(frozen: &Option<PathBuf>) -> Engine {
    let frozen_model = match frozen {
        Some(path) => FrozenModel::load(path)
            .unwrap_or_else(|e| fail(&format!("cannot load {}: {e}", path.display()))),
        None => {
            let ds = Dataset::generate(DatasetId::Cora, 0);
            let ctx = GraphContext::from_dataset(&ds);
            let hyper = Hyper::for_dataset(DatasetId::Cora);
            let model = models::Gcn::new(ds.num_features(), ds.num_classes, &hyper, 0);
            freeze(&model, &ctx, ds.spec.name)
                .unwrap_or_else(|e| fail(&format!("freeze failed: {e}")))
        }
    };
    Engine::new(frozen_model).unwrap_or_else(|e| fail(&format!("engine build failed: {e}")))
}

/// What one scripted edge toggle did.
enum Applied {
    Ok,
    /// The add hit an edge the frozen graph already had.
    Duplicate,
}

/// The deterministic mutation script shared by every mode: toggle random
/// pairs, tracking which edges *we* created. An add colliding with a
/// pre-existing graph edge is turned into its removal — that decision
/// depends only on (seed, frozen graph), so the drive and the reference
/// replay byte-identical mutation sequences without sharing any state.
fn run_script<F>(num_nodes: usize, seed: u64, mutations: usize, mut apply: F)
where
    F: FnMut(&Mutation) -> Applied,
{
    let mut rng = Rng::seed_from_u64(seed);
    let mut ours: BTreeSet<(usize, usize)> = BTreeSet::new();
    let mut done = 0usize;
    while done < mutations {
        let (u, v) = (rng.index(num_nodes), rng.index(num_nodes));
        if u == v {
            continue;
        }
        let key = (u.min(v), u.max(v));
        if ours.remove(&key) {
            match apply(&Mutation::RemoveEdge { u: key.0, v: key.1 }) {
                Applied::Ok => {}
                Applied::Duplicate => fail("remove of our own edge reported duplicate"),
            }
        } else {
            match apply(&Mutation::AddEdge { u: key.0, v: key.1 }) {
                Applied::Ok => {
                    ours.insert(key);
                }
                Applied::Duplicate => {
                    // Pre-existing edge: delete it instead (also a mutation).
                    match apply(&Mutation::RemoveEdge { u: key.0, v: key.1 }) {
                        Applied::Ok => {}
                        Applied::Duplicate => fail("remove reported duplicate"),
                    }
                }
            }
        }
        done += 1;
    }
}

fn is_duplicate_error(message: &str) -> bool {
    message.contains("already exists")
}

/// Dump format shared by drive and reference: one line per node with the
/// argmax class and the exact bit pattern of every probability, so a `cmp`
/// of two dumps is a bitwise-equivalence check.
fn prediction_dump(mut predict: impl FnMut(usize) -> (usize, Vec<f32>), n: usize) -> String {
    let mut out = String::new();
    for node in 0..n {
        let (class, probs) = predict(node);
        write!(out, "{node} {class}").expect("string write");
        for p in probs {
            write!(out, " {:08x}", p.to_bits()).expect("string write");
        }
        out.push('\n');
    }
    out
}

fn write_out(path: &Option<PathBuf>, content: &str) {
    let Some(path) = path else { fail("--out is required for this mode") };
    std::fs::write(path, content)
        .unwrap_or_else(|e| fail(&format!("write {}: {e}", path.display())));
    println!("wrote {}", path.display());
}

/// Scripted mutation session against a live server, then a full prediction
/// dump over the same TCP connection.
fn run_drive(args: &Args) {
    let Some(addr) = &args.addr else { fail("--drive needs --addr HOST:PORT") };
    let mut client = connect_patiently(addr);
    let health = client.call_ok(&Request::Health).unwrap_or_else(|e| fail(&e.to_string()));
    let boot_nodes = health.get("num_nodes").and_then(Json::as_usize).unwrap_or(0);
    if boot_nodes == 0 {
        fail("health reported no nodes");
    }
    let mut num_nodes = boot_nodes;
    run_script(boot_nodes, args.seed, args.mutations, |m| {
        let request = match *m {
            Mutation::AddEdge { u, v } => Request::AddEdge { u, v },
            Mutation::RemoveEdge { u, v } => Request::RemoveEdge { u, v },
            Mutation::AddNode { ref features } => Request::AddNode { features: features.clone() },
        };
        let doc = client.call(&request).unwrap_or_else(|e| fail(&format!("mutation: {e}")));
        if doc.get("ok").and_then(Json::as_bool) == Some(true) {
            num_nodes = doc.get("num_nodes").and_then(Json::as_usize).unwrap_or(num_nodes);
            return Applied::Ok;
        }
        let message = doc
            .get("error")
            .and_then(|e| e.get("message"))
            .and_then(Json::as_str)
            .unwrap_or("")
            .to_string();
        if is_duplicate_error(&message) {
            Applied::Duplicate
        } else {
            fail(&format!("unexpected mutation error: {message}"))
        }
    });
    let dump = prediction_dump(
        |node| {
            let doc = client
                .call_ok(&Request::Predict { node })
                .unwrap_or_else(|e| fail(&format!("predict {node}: {e}")));
            let class = doc.get("class").and_then(Json::as_usize).unwrap_or(usize::MAX);
            let probs = doc.get("probs").and_then(Json::to_f32s).unwrap_or_default();
            (class, probs)
        },
        num_nodes,
    );
    write_out(&args.out, &dump);
    // Overload-contract fields (PR 7): the enriched `stats` payload must
    // round-trip through the testkit codec as plain numbers.
    let stats = client.call_ok(&Request::Stats).unwrap_or_else(|e| fail(&format!("stats: {e}")));
    for field in ["queue_depth", "shed", "expired", "swaps", "model_version", "connections"] {
        if stats.get(field).and_then(Json::as_usize).is_none() {
            fail(&format!("stats response missing numeric field '{field}'"));
        }
    }
    if stats.get("model_version").and_then(Json::as_usize) < Some(1) {
        fail("stats model_version must be >= 1");
    }
    println!("drive ok: {} scripted mutations, {} nodes dumped", args.mutations, num_nodes);
}

/// Identical script on a local always-cold engine (`compact_every = 1`
/// forces a from-scratch recompute for every mutation), same dump format.
fn run_reference(args: &Args) {
    if args.frozen.is_none() {
        fail("--reference needs --frozen PATH (the same file the server loaded)");
    }
    let mut engine = build_engine(&args.frozen);
    engine.set_compact_every(1);
    let boot_nodes = engine.num_nodes();
    run_script(boot_nodes, args.seed, args.mutations, |m| match engine.apply_mutation(m) {
        Ok(report) => {
            if !report.full {
                fail("reference engine must take the full path on every mutation");
            }
            Applied::Ok
        }
        Err(e) if is_duplicate_error(&e.to_string()) => Applied::Duplicate,
        Err(e) => fail(&format!("reference mutation: {e}")),
    });
    let dump = prediction_dump(
        |node| {
            let p = engine.predict(node).unwrap_or_else(|e| fail(&format!("predict {node}: {e}")));
            (p.class, p.probs)
        },
        engine.num_nodes(),
    );
    write_out(&args.out, &dump);
    println!("reference ok: {} scripted mutations, {} nodes dumped", args.mutations, boot_nodes);
}

/// Latency-vs-dirty-set-size buckets (the last bucket catches full
/// recomputes, whose "dirty set" is every row).
const BUCKETS: &[(usize, &str)] = &[
    (16, "<=16"),
    (64, "<=64"),
    (256, "<=256"),
    (1024, "<=1024"),
    (usize::MAX, ">1024"),
];

fn run_bench(args: &Args) {
    let mutations = if args.smoke { 30 } else { 200 };
    let mut settings: Vec<Json> = Vec::new();
    // compact_every doubles as the mutation-rate knob: how many live
    // mutations the engine absorbs before folding the delta back in.
    for &compact_every in &[8usize, 64, 512] {
        let mut engine = build_engine(&args.frozen);
        engine.set_compact_every(compact_every);
        let num_nodes = engine.num_nodes();
        let mut latencies_us: Vec<f64> = Vec::with_capacity(mutations);
        let mut bucket_us: Vec<Vec<f64>> = vec![Vec::new(); BUCKETS.len()];
        let mut fulls = 0usize;
        run_script(num_nodes, args.seed, mutations, |m| {
            let start = Instant::now();
            match engine.apply_mutation(m) {
                Ok(report) => {
                    let us = start.elapsed().as_secs_f64() * 1e6;
                    latencies_us.push(us);
                    if report.full {
                        fulls += 1;
                    }
                    let slot = BUCKETS
                        .iter()
                        .position(|&(cap, _)| report.dirty_rows <= cap)
                        .unwrap_or(BUCKETS.len() - 1);
                    bucket_us[slot].push(us);
                    Applied::Ok
                }
                Err(e) if is_duplicate_error(&e.to_string()) => Applied::Duplicate,
                Err(e) => fail(&format!("bench mutation: {e}")),
            }
        });
        latencies_us.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        let mean = latencies_us.iter().sum::<f64>() / latencies_us.len().max(1) as f64;
        let p50 = percentile(&latencies_us, 0.50);
        let p99 = percentile(&latencies_us, 0.99);
        println!(
            "compact_every={compact_every:>4}  mutations={:>4}  full={fulls:>4}  \
             p50={p50:>9.1}us  p99={p99:>9.1}us  mean={mean:>9.1}us",
            latencies_us.len()
        );
        let buckets: Vec<Json> = BUCKETS
            .iter()
            .zip(&bucket_us)
            .filter(|(_, us)| !us.is_empty())
            .map(|(&(_, label), us)| {
                let mean = us.iter().sum::<f64>() / us.len() as f64;
                println!("    dirty {label:>7}: n={:>4}  mean={mean:>9.1}us", us.len());
                Json::Obj(vec![
                    ("dirty_rows".into(), Json::Str(label.into())),
                    ("mutations".into(), Json::Num(us.len() as f64)),
                    ("mean_us".into(), Json::Num(mean)),
                ])
            })
            .collect();
        settings.push(Json::Obj(vec![
            ("compact_every".into(), Json::Num(compact_every as f64)),
            ("mutations".into(), Json::Num(latencies_us.len() as f64)),
            ("full_recomputes".into(), Json::Num(fulls as f64)),
            ("p50_us".into(), Json::Num(p50)),
            ("p99_us".into(), Json::Num(p99)),
            ("mean_us".into(), Json::Num(mean)),
            ("by_dirty_rows".into(), Json::Arr(buckets)),
        ]));
    }
    let doc = Json::Obj(vec![
        ("bench".into(), Json::Str("streaming".into())),
        ("smoke".into(), Json::Bool(args.smoke)),
        ("seed".into(), Json::Num(args.seed as f64)),
        ("settings".into(), Json::Arr(settings)),
    ]);
    let out = args.out.clone().unwrap_or_else(|| PathBuf::from("BENCH_streaming.json"));
    std::fs::write(&out, format!("{doc}\n"))
        .unwrap_or_else(|e| fail(&format!("write {}: {e}", out.display())));
    println!("wrote {}", out.display());
}

fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

/// Connect with retries — verify.sh starts the server in the background,
/// so the first attempts may race its bind.
fn connect_patiently(addr: &str) -> Client {
    Client::connect_with_retry(addr, 12, 50, 0x57a7)
        .unwrap_or_else(|e| fail(&format!("connect {addr}: {e}")))
}

fn main() {
    let args = parse_args();
    if args.drive && args.reference {
        fail("--drive and --reference are mutually exclusive");
    }
    if args.drive {
        run_drive(&args);
    } else if args.reference {
        run_reference(&args);
    } else {
        run_bench(&args);
    }
}
