//! Quick calibration probe (not a paper artifact): accuracy of a few key
//! models on one dataset, with timing. Used while tuning the generators.

use lasagne_bench::{dataset, run_model};
use lasagne_datasets::DatasetId;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let ds_name = args.get(1).map(String::as_str).unwrap_or("cora");
    let id: DatasetId = ds_name.parse().expect("dataset name");
    let ds = dataset(id, 0);
    println!(
        "{}: N={} E={} classes={} homophily={:.3} majority={:.3}",
        ds.spec.name,
        ds.num_nodes(),
        ds.graph.num_edges(),
        ds.num_classes,
        ds.graph.edge_homophily(&ds.labels),
        ds.majority_baseline(),
    );
    let models: Vec<&str> = if args.len() > 2 {
        args[2..].iter().map(String::as_str).collect()
    } else {
        vec!["GCN", "JK-Net", "Lasagne (Stochastic)"]
    };
    for m in models {
        let start = std::time::Instant::now();
        let s = run_model(m, &ds, None, 42);
        println!(
            "  {m:<24} {}  ({:.1}s total, {:.0} ms/epoch, {:.0} epochs)",
            s.cell(),
            start.elapsed().as_secs_f64(),
            1000.0 * s.mean_epoch_seconds,
            s.mean_epochs,
        );
    }
}
