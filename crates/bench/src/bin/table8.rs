//! **Table 8** — accuracy as the label rate per class varies
//! (Cora: 5/10/15/20 labels per class ≈ 1.3/2.6/3.9/5.2%;
//! NELL: three rates scaled from the paper's 0.1/1/10%).

use lasagne_bench::{max_epochs, num_seeds};
use lasagne_bench::{build_model, dataset, table_depth};
use lasagne_datasets::{Dataset, DatasetId};
use lasagne_gnn::sampling::FullBatch;
use lasagne_gnn::{GraphContext, Hyper};
use lasagne_tensor::TensorRng;
use lasagne_train::{fit, run_seeds, Table, TrainConfig};

fn run_at_rate(model: &str, ds: &Dataset, base_seed: u64) -> String {
    let mut hyper = Hyper::for_dataset(ds.spec.id);
    hyper.depth = table_depth(model);
    let cfg = TrainConfig { max_epochs: max_epochs(), ..TrainConfig::from_hyper(&hyper) };
    let ctx = GraphContext::from_dataset(ds);
    let s = run_seeds(num_seeds(), base_seed, |seed| {
        let mut m = build_model(model, ds, &hyper, seed);
        let mut strat = FullBatch::from_dataset(ds);
        let mut rng = TensorRng::seed_from_u64(seed ^ 0xab);
        fit(m.as_mut(), &mut strat, &ctx, &ds.split, &cfg, &mut rng)
    });
    format!("{:.1}", s.mean_pct())
}

fn main() {
    let cora = dataset(DatasetId::Cora, 0);
    let nell = dataset(DatasetId::Nell, 0);
    // Cora: labeled nodes per class → label rate = 7·k / 2708.
    let cora_rates = [5usize, 10, 15, 20];
    // NELL (scaled): per-class counts giving low/medium/high label rates.
    let nell_rates = [2usize, 10, 25];

    let models = [
        "GCN",
        "ResGCN",
        "DenseGCN",
        "JK-Net",
        "Lasagne (Weighted)",
        "Lasagne (Stochastic)",
        "Lasagne (Max pooling)",
    ];

    let mut headers: Vec<String> = vec!["Models".into()];
    for k in cora_rates {
        headers.push(format!(
            "Cora {:.1}%",
            100.0 * (cora.num_classes * k) as f64 / cora.num_nodes() as f64
        ));
    }
    for k in nell_rates {
        headers.push(format!(
            "NELL {:.1}%",
            100.0 * (nell.num_classes * k) as f64 / nell.num_nodes() as f64
        ));
    }
    let headers_ref: Vec<&str> = headers.iter().map(String::as_str).collect();
    let mut table = Table::new(
        format!("Table 8 — accuracy vs label rate (%, mean over {} seeds)", num_seeds()),
        &headers_ref,
    );

    for model in models {
        eprintln!("running {model}…");
        let mut cells = vec![model.to_string()];
        for &k in &cora_rates {
            let ds = cora.with_train_per_class(k, 1000 + k as u64);
            cells.push(run_at_rate(model, &ds, 42));
        }
        for &k in &nell_rates {
            let ds = nell.with_train_per_class(k, 2000 + k as u64);
            cells.push(run_at_rate(model, &ds, 42));
        }
        table.row(cells);
    }
    println!("{table}");
}
