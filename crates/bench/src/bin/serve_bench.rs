//! Load generator, saturation prober, and chaos soak for the
//! `lasagne-serve` TCP server.
//!
//! Modes:
//!
//! * **Bench** (default): start an in-process server (from `--frozen PATH`,
//!   or a freshly built GCN on cora when omitted — serving latency does not
//!   care whether the weights are trained), then drive it with 1, 8, and 64
//!   concurrent clients, followed by a saturation sweep that walks
//!   concurrency up until throughput stops improving — the **knee**.
//!   Writes `BENCH_serve.json` with p50/p99 + throughput per level and the
//!   measured knee.
//! * **Soak** (`--soak`): the overload-contract proof (DESIGN.md §12,
//!   verify.sh stage). Measures the knee, then floods an overload-tuned
//!   server at 4× the knee concurrency for `--duration-s` seconds (default
//!   30) with chaos clients mixed in — garbage lines, oversized lines,
//!   mid-request hangups, slowloris tricklers, and periodic slow requests
//!   that stall the batcher. A dedicated prober hits `health` continuously.
//!   Mid-soak the model is hot-swapped. Exits non-zero unless: every flood
//!   response was typed (zero untyped failures), health p99 stayed under
//!   5 ms, the server actually shed and expired work (the flood really
//!   overloaded it), the swap installed, and shutdown drained cleanly.
//! * **Check** (`--check`): a protocol conformance drive for an already
//!   running server at `--addr HOST:PORT` — used by `scripts/verify.sh`.
//!   Sends well-formed, malformed, and out-of-range requests and asserts
//!   the typed responses; exits non-zero on any surprise.
//!
//! ```sh
//! cargo run --release --bin serve-bench                          # bench, cora GCN
//! cargo run --release --bin serve-bench -- --smoke               # quick CI smoke
//! cargo run --release --bin serve-bench -- --soak --duration-s 30
//! cargo run --release --bin serve-bench -- --check --addr 127.0.0.1:7878
//! ```

use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use lasagne_datasets::{Dataset, DatasetId};
use lasagne_gnn::{models, GraphContext, Hyper};
use lasagne_serve::{freeze, Client, Engine, FrozenModel, QuantMode, Request, Server, ServerConfig};
use lasagne_testkit::rng::Rng;
use lasagne_testkit::{chaos, Json};

struct Args {
    frozen: Option<PathBuf>,
    addr: Option<String>,
    out: PathBuf,
    check: bool,
    shutdown: bool,
    smoke: bool,
    soak: bool,
    duration_s: u64,
}

fn usage() -> ! {
    eprintln!("usage: serve-bench [--frozen PATH] [--out PATH] [--smoke]");
    eprintln!("       serve-bench --soak [--duration-s N] [--smoke]");
    eprintln!("       serve-bench --check --addr HOST:PORT");
    eprintln!("       serve-bench --shutdown --addr HOST:PORT");
    std::process::exit(2);
}

fn parse_args() -> Args {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut args = Args {
        frozen: None,
        addr: None,
        out: PathBuf::from("BENCH_serve.json"),
        check: false,
        shutdown: false,
        smoke: false,
        soak: false,
        duration_s: 30,
    };
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--check" => {
                args.check = true;
                i += 1;
            }
            "--shutdown" => {
                args.shutdown = true;
                i += 1;
            }
            "--smoke" => {
                args.smoke = true;
                i += 1;
            }
            "--soak" => {
                args.soak = true;
                i += 1;
            }
            flag @ ("--frozen" | "--addr" | "--out" | "--duration-s") => {
                let value = argv.get(i + 1).unwrap_or_else(|| {
                    eprintln!("{flag}: missing value");
                    usage()
                });
                match flag {
                    "--frozen" => args.frozen = Some(value.into()),
                    "--addr" => args.addr = Some(value.clone()),
                    "--duration-s" => {
                        args.duration_s = value.parse().unwrap_or_else(|_| usage())
                    }
                    _ => args.out = value.into(),
                }
                i += 2;
            }
            other => {
                eprintln!("unknown flag '{other}'");
                usage()
            }
        }
    }
    args
}

fn fail(msg: &str) -> ! {
    eprintln!("serve-bench: {msg}");
    std::process::exit(1);
}

/// Load the engine from a frozen file, or freeze a cora GCN with the given
/// weight seed (distinct seeds give distinct models — the soak's hot-swap
/// target uses a different seed than the primary).
fn build_engine(frozen: &Option<PathBuf>, weight_seed: u64) -> Engine {
    let frozen_model = frozen_model(frozen, weight_seed);
    Engine::new(frozen_model).unwrap_or_else(|e| fail(&format!("engine build failed: {e}")))
}

fn frozen_model(frozen: &Option<PathBuf>, weight_seed: u64) -> FrozenModel {
    match frozen {
        Some(path) => FrozenModel::load(path)
            .unwrap_or_else(|e| fail(&format!("cannot load {}: {e}", path.display()))),
        None => {
            let ds = Dataset::generate(DatasetId::Cora, 0);
            let ctx = GraphContext::from_dataset(&ds);
            let hyper = Hyper::for_dataset(DatasetId::Cora);
            let model = models::Gcn::new(ds.num_features(), ds.num_classes, &hyper, weight_seed);
            freeze(&model, &ctx, ds.spec.name)
                .unwrap_or_else(|e| fail(&format!("freeze failed: {e}")))
        }
    }
}

/// One client worker: `n` sequential predicts on its own connection,
/// returning per-request latencies in microseconds.
fn drive(addr: &str, n: usize, num_nodes: usize, seed: u64) -> Vec<f64> {
    let mut client = Client::connect_with_retry(addr, 8, 50, seed)
        .unwrap_or_else(|e| fail(&format!("connect {addr}: {e}")));
    let mut rng = Rng::seed_from_u64(seed);
    let mut latencies = Vec::with_capacity(n);
    for _ in 0..n {
        let node = (rng.next_u64() % num_nodes as u64) as usize;
        let start = Instant::now();
        let doc = client
            .call_ok(&Request::Predict { node })
            .unwrap_or_else(|e| fail(&format!("predict failed: {e}")));
        latencies.push(start.elapsed().as_secs_f64() * 1e6);
        debug_assert!(doc.get("class").is_some());
    }
    latencies
}

fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

/// Closed-loop throughput at one concurrency level, measured over `window`.
fn throughput_at(addr: &str, clients: usize, num_nodes: usize, window: Duration) -> f64 {
    let stop = Arc::new(AtomicBool::new(false));
    let handles: Vec<_> = (0..clients)
        .map(|c| {
            let addr = addr.to_string();
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut client = Client::connect_with_retry(&addr, 8, 50, 0xbeef + c as u64)
                    .unwrap_or_else(|e| fail(&format!("connect {addr}: {e}")));
                let mut rng = Rng::seed_from_u64(0xbeef + c as u64);
                let mut done = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let node = (rng.next_u64() % num_nodes as u64) as usize;
                    client
                        .call_ok(&Request::Predict { node })
                        .unwrap_or_else(|e| fail(&format!("sweep predict: {e}")));
                    done += 1;
                }
                done
            })
        })
        .collect();
    let wall = Instant::now();
    std::thread::sleep(window);
    stop.store(true, Ordering::Relaxed);
    let total: u64 = handles
        .into_iter()
        .map(|h| h.join().unwrap_or_else(|_| fail("sweep thread panicked")))
        .sum();
    total as f64 / wall.elapsed().as_secs_f64()
}

/// Walk concurrency up until throughput stops improving; the knee is the
/// level with the best observed throughput. Returns (rows, knee_clients,
/// knee_rps).
fn saturation_sweep(
    addr: &str,
    num_nodes: usize,
    window: Duration,
) -> (Vec<Json>, usize, f64) {
    let mut rows = Vec::new();
    let (mut knee_clients, mut knee_rps) = (1usize, 0.0f64);
    for &clients in &[1usize, 2, 4, 8, 16, 32] {
        let rps = throughput_at(addr, clients, num_nodes, window);
        println!("saturation: clients={clients:>3}  {rps:>9.0} req/s");
        rows.push(Json::Obj(vec![
            ("clients".into(), Json::Num(clients as f64)),
            ("throughput_rps".into(), Json::Num(rps)),
        ]));
        if rps > knee_rps {
            knee_rps = rps;
            knee_clients = clients;
        } else if rps < knee_rps * 0.9 {
            // Throughput is falling, not just flat — past the knee; stop
            // burning bench time.
            break;
        }
    }
    (rows, knee_clients, knee_rps)
}

/// Drive `clients × per_client` predicts against a freshly started server
/// for `model`, returning `(requests, p50_us, p99_us, rps)`.
fn drive_model(model: FrozenModel, clients: usize, per_client: usize) -> (usize, f64, f64, f64) {
    let engine =
        Engine::new(model).unwrap_or_else(|e| fail(&format!("comparison engine build: {e}")));
    let num_nodes = engine.num_nodes();
    let server = Server::start(
        engine,
        ServerConfig { addr: "127.0.0.1:0".into(), ..ServerConfig::default() },
    )
    .unwrap_or_else(|e| fail(&format!("comparison server start: {e}")));
    let addr = server.local_addr().to_string();
    let wall = Instant::now();
    let handles: Vec<_> = (0..clients)
        .map(|c| {
            let addr = addr.clone();
            std::thread::spawn(move || drive(&addr, per_client, num_nodes, 0x9a17 + c as u64))
        })
        .collect();
    let mut latencies: Vec<f64> = Vec::with_capacity(clients * per_client);
    for h in handles {
        latencies.extend(h.join().unwrap_or_else(|_| fail("comparison client panicked")));
    }
    let elapsed = wall.elapsed().as_secs_f64();
    server.shutdown();
    latencies.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let total = latencies.len();
    (total, percentile(&latencies, 0.50), percentile(&latencies, 0.99), total as f64 / elapsed)
}

/// Quantized-vs-f32 serving rows: same model exported exact and
/// i8-quantized, each served and driven identically, with the frozen file
/// sizes alongside (the engine caches full-graph logits at load, so req/s
/// should match and the artifact size is where quantization pays).
fn quantized_comparison(args: &Args, per_client: usize) -> Option<Json> {
    let f32_model = frozen_model(&args.frozen, 0);
    let q_model = match f32_model.clone().quantize(QuantMode::I8) {
        Ok(m) => m,
        Err(e) => {
            println!("quantized comparison skipped: {e}");
            return None;
        }
    };
    let mut rows = Vec::new();
    for (label, model) in [("f32", f32_model), ("quantized_i8", q_model)] {
        let path = std::env::temp_dir()
            .join(format!("lasagne-serve-bench-{label}-{}.json", std::process::id()));
        model.save(&path).unwrap_or_else(|e| fail(&format!("save {label} artifact: {e}")));
        let bytes = std::fs::metadata(&path).map(|m| m.len()).unwrap_or(0);
        let load = Instant::now();
        let reloaded = FrozenModel::load(&path)
            .unwrap_or_else(|e| fail(&format!("reload {label} artifact: {e}")));
        let load_ms = load.elapsed().as_secs_f64() * 1e3;
        let _ = std::fs::remove_file(&path);
        let (requests, p50, p99, rps) = drive_model(reloaded, 8, per_client);
        println!(
            "{label:<13} frozen={bytes:>9} B  load={load_ms:>7.1} ms  requests={requests:>6}  \
             p50={p50:>9.1}us  p99={p99:>9.1}us  {rps:>9.0} req/s"
        );
        rows.push(Json::Obj(vec![
            ("weights".into(), Json::Str(label.into())),
            ("frozen_bytes".into(), Json::Num(bytes as f64)),
            ("load_ms".into(), Json::Num(load_ms)),
            ("requests".into(), Json::Num(requests as f64)),
            ("p50_us".into(), Json::Num(p50)),
            ("p99_us".into(), Json::Num(p99)),
            ("throughput_rps".into(), Json::Num(rps)),
        ]));
    }
    Some(Json::Arr(rows))
}

fn run_bench(args: &Args) {
    let engine = build_engine(&args.frozen, 0);
    let num_nodes = engine.num_nodes();
    let server = Server::start(
        engine,
        ServerConfig { addr: "127.0.0.1:0".into(), ..ServerConfig::default() },
    )
    .unwrap_or_else(|e| fail(&format!("server start: {e}")));
    let addr = server.local_addr().to_string();

    let per_client = if args.smoke { 20 } else { 400 };
    let mut rows: Vec<Json> = Vec::new();
    for &clients in &[1usize, 8, 64] {
        let wall = Instant::now();
        let handles: Vec<_> = (0..clients)
            .map(|c| {
                let addr = addr.clone();
                std::thread::spawn(move || drive(&addr, per_client, num_nodes, 0x5e4e + c as u64))
            })
            .collect();
        let mut latencies: Vec<f64> = Vec::with_capacity(clients * per_client);
        for h in handles {
            latencies.extend(h.join().unwrap_or_else(|_| fail("client thread panicked")));
        }
        let elapsed = wall.elapsed().as_secs_f64();
        latencies.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        let total = latencies.len();
        let p50 = percentile(&latencies, 0.50);
        let p99 = percentile(&latencies, 0.99);
        let throughput = total as f64 / elapsed;
        println!(
            "clients={clients:>3}  requests={total:>6}  p50={p50:>9.1}us  p99={p99:>9.1}us  {throughput:>9.0} req/s"
        );
        rows.push(Json::Obj(vec![
            ("clients".into(), Json::Num(clients as f64)),
            ("requests".into(), Json::Num(total as f64)),
            ("p50_us".into(), Json::Num(p50)),
            ("p99_us".into(), Json::Num(p99)),
            ("throughput_rps".into(), Json::Num(throughput)),
        ]));
    }
    let window = Duration::from_millis(if args.smoke { 150 } else { 500 });
    let (sweep_rows, knee_clients, knee_rps) = saturation_sweep(&addr, num_nodes, window);
    println!("knee: {knee_rps:.0} req/s at {knee_clients} clients");
    let quant_rows = quantized_comparison(args, per_client);
    let stats = server.stats();
    println!(
        "server side: {} requests in {} batches (max batch {}, mean {:.2})",
        stats.requests, stats.batches, stats.max_batch, stats.mean_batch
    );
    let mut doc_fields = vec![
        ("bench".to_string(), Json::Str("serve".into())),
        ("smoke".to_string(), Json::Bool(args.smoke)),
        ("levels".to_string(), Json::Arr(rows)),
        ("saturation".to_string(), Json::Arr(sweep_rows)),
        (
            "knee".into(),
            Json::Obj(vec![
                ("clients".into(), Json::Num(knee_clients as f64)),
                ("throughput_rps".into(), Json::Num(knee_rps)),
            ]),
        ),
        (
            "server".into(),
            Json::Obj(vec![
                ("requests".into(), Json::Num(stats.requests as f64)),
                ("batches".into(), Json::Num(stats.batches as f64)),
                ("max_batch".into(), Json::Num(stats.max_batch as f64)),
                ("mean_batch".into(), Json::Num(stats.mean_batch)),
            ]),
        ),
    ];
    if let Some(rows) = quant_rows {
        doc_fields.push(("quantized_comparison".to_string(), rows));
    }
    let doc = Json::Obj(doc_fields);
    server.shutdown();
    std::fs::write(&args.out, format!("{doc}\n"))
        .unwrap_or_else(|e| fail(&format!("write {}: {e}", args.out.display())));
    println!("wrote {}", args.out.display());
}

/// Per-outcome counters shared by every soak client.
#[derive(Default)]
struct SoakLedger {
    ok: AtomicU64,
    overloaded: AtomicU64,
    expired: AtomicU64,
    draining: AtomicU64,
    too_large: AtomicU64,
    refused: AtomicU64,
    /// Typed rejections of malformed input (parse errors, unknown ops,
    /// unknown nodes) — the expected answer to the garbage chaos client.
    rejected: AtomicU64,
    /// Typed `internal` responses — the panic shield fired. Zero expected.
    internal: AtomicU64,
    /// Responses that were not well-formed typed protocol lines, or
    /// connections that died without the expected typed refusal. The soak
    /// passes only if this stays zero.
    untyped: AtomicU64,
    v1: AtomicU64,
    v2: AtomicU64,
}

/// Classify one parsed response into the ledger. Returns the server's
/// retry hint when the request was shed.
fn tally(ledger: &SoakLedger, doc: &Json) -> Option<u64> {
    if doc.get("ok").and_then(Json::as_bool) == Some(true) {
        ledger.ok.fetch_add(1, Ordering::Relaxed);
        match doc.get("model_version").and_then(Json::as_usize) {
            Some(1) => ledger.v1.fetch_add(1, Ordering::Relaxed),
            Some(2) => ledger.v2.fetch_add(1, Ordering::Relaxed),
            _ => 0,
        };
        return None;
    }
    let kind = doc
        .get("error")
        .and_then(|e| e.get("kind"))
        .and_then(Json::as_str)
        .unwrap_or("");
    match kind {
        "overloaded" => {
            ledger.overloaded.fetch_add(1, Ordering::Relaxed);
            return doc
                .get("error")
                .and_then(|e| e.get("retry_after_ms"))
                .and_then(Json::as_usize)
                .map(|ms| ms as u64);
        }
        "deadline_exceeded" => ledger.expired.fetch_add(1, Ordering::Relaxed),
        "draining" => ledger.draining.fetch_add(1, Ordering::Relaxed),
        "request_too_large" => ledger.too_large.fetch_add(1, Ordering::Relaxed),
        "too_many_connections" => ledger.refused.fetch_add(1, Ordering::Relaxed),
        "internal" => ledger.internal.fetch_add(1, Ordering::Relaxed),
        "" => ledger.untyped.fetch_add(1, Ordering::Relaxed),
        _ => ledger.rejected.fetch_add(1, Ordering::Relaxed),
    };
    None
}

/// The chaos soak (DESIGN.md §12; the verify.sh soak stage). See the
/// module docs for the pass criteria.
fn run_soak(args: &Args) {
    let duration = Duration::from_secs(if args.smoke { 4 } else { args.duration_s.max(4) });

    // Phase 1: measure the knee on a default-tuned server.
    let engine = build_engine(&args.frozen, 0);
    let num_nodes = engine.num_nodes();
    let probe = Server::start(
        engine,
        ServerConfig { addr: "127.0.0.1:0".into(), ..ServerConfig::default() },
    )
    .unwrap_or_else(|e| fail(&format!("probe server start: {e}")));
    let window = Duration::from_millis(if args.smoke { 150 } else { 400 });
    let (_, knee_clients, knee_rps) =
        saturation_sweep(&probe.local_addr().to_string(), num_nodes, window);
    probe.shutdown();
    println!("soak: knee {knee_rps:.0} req/s at {knee_clients} clients; flooding at 4x");

    // The hot-swap target: same graph, different weights.
    let swap_path = std::env::temp_dir()
        .join(format!("lasagne-soak-swap-{}.json", std::process::id()));
    frozen_model(&args.frozen, 1)
        .save(&swap_path)
        .unwrap_or_else(|e| fail(&format!("save swap target: {e}")));

    // Phase 2: an overload-tuned server — queue sized to the knee so a 4×
    // flood genuinely sheds, deadlines short enough that batcher stalls
    // expire queued work, debug ops on so chaos can inject slow requests.
    let flood_clients = (knee_clients * 4).clamp(8, 64);
    let config = ServerConfig {
        addr: "127.0.0.1:0".into(),
        max_batch: 8,
        debug_ops: true,
        queue_capacity: knee_clients.max(2),
        deadline_ms: 50,
        max_connections: flood_clients + 32,
        max_request_bytes: 4096,
        idle_timeout_ms: 2_000,
        poll_interval_ms: 20,
        ..ServerConfig::default()
    };
    let server = Server::start(build_engine(&args.frozen, 0), config)
        .unwrap_or_else(|e| fail(&format!("soak server start: {e}")));
    let addr = server.local_addr().to_string();

    let ledger = Arc::new(SoakLedger::default());
    let stop = Arc::new(AtomicBool::new(false));
    let mut threads = Vec::new();

    // Flood clients: full-tilt predicts, honoring the shed retry hint —
    // exactly the client behavior README's operating guide prescribes.
    for c in 0..flood_clients {
        let addr = addr.clone();
        let ledger = Arc::clone(&ledger);
        let stop = Arc::clone(&stop);
        threads.push(std::thread::spawn(move || {
            let mut client = Client::connect_with_retry(&addr, 8, 50, 0xf100d + c as u64)
                .unwrap_or_else(|e| fail(&format!("flood connect: {e}")));
            client.set_timeout(Some(Duration::from_secs(10))).unwrap_or_else(|e| fail(&e.to_string()));
            let mut rng = Rng::seed_from_u64(0xf100d + c as u64);
            while !stop.load(Ordering::Relaxed) {
                let node = (rng.next_u64() % num_nodes as u64) as usize;
                match client.call(&Request::Predict { node }) {
                    Ok(doc) => {
                        if let Some(hint_ms) = tally(&ledger, &doc) {
                            std::thread::sleep(Duration::from_millis(hint_ms.min(200)));
                        }
                    }
                    Err(_) => {
                        ledger.untyped.fetch_add(1, Ordering::Relaxed);
                        return;
                    }
                }
            }
        }));
    }

    // Chaos: garbage + mutated lines on a long-lived connection; the
    // server must answer every complete line with a typed rejection.
    {
        let addr = addr.clone();
        let ledger = Arc::clone(&ledger);
        let stop = Arc::clone(&stop);
        threads.push(std::thread::spawn(move || {
            let mut rng = Rng::seed_from_u64(0xbad);
            let mut client = Client::connect_with_retry(&addr, 8, 50, 0xbad)
                .unwrap_or_else(|e| fail(&format!("garbage connect: {e}")));
            client
                .set_timeout(Some(Duration::from_secs(10)))
                .unwrap_or_else(|e| fail(&e.to_string()));
            while !stop.load(Ordering::Relaxed) {
                let node = rng.index(num_nodes);
                let line = if rng.bernoulli(0.5) {
                    chaos::garbage_line(&mut rng, 200)
                } else {
                    chaos::mutate_line(&mut rng, &Request::Predict { node }.to_line())
                };
                // Blank lines are skipped by the server (no response to
                // wait for); oversize lines belong to the dedicated thread.
                if line.trim().is_empty() || line.len() >= 4096 {
                    continue;
                }
                match client.roundtrip_raw(&line).map(|raw| Json::parse(&raw)) {
                    Ok(Ok(doc)) => {
                        tally(&ledger, &doc);
                    }
                    _ => {
                        ledger.untyped.fetch_add(1, Ordering::Relaxed);
                        return;
                    }
                }
                std::thread::sleep(Duration::from_millis(2));
            }
        }));
    }

    // Chaos: oversized lines. Contract: a typed `request_too_large`, then
    // the server closes the connection — so reconnect each round.
    {
        let addr = addr.clone();
        let ledger = Arc::clone(&ledger);
        let stop = Arc::clone(&stop);
        threads.push(std::thread::spawn(move || {
            let payload = "x".repeat(8192);
            while !stop.load(Ordering::Relaxed) {
                let Ok(mut client) = Client::connect(&addr) else {
                    std::thread::sleep(Duration::from_millis(50));
                    continue;
                };
                if client.set_timeout(Some(Duration::from_secs(10))).is_err() {
                    continue;
                }
                match client.roundtrip_raw(&payload).map(|raw| Json::parse(&raw)) {
                    Ok(Ok(doc)) => {
                        tally(&ledger, &doc);
                    }
                    _ => {
                        ledger.untyped.fetch_add(1, Ordering::Relaxed);
                        return;
                    }
                }
                std::thread::sleep(Duration::from_millis(20));
            }
        }));
    }

    // Chaos: mid-request hangups — the server must reap the half-request
    // without leaking the connection slot.
    {
        let addr = addr.clone();
        let stop = Arc::clone(&stop);
        threads.push(std::thread::spawn(move || {
            while !stop.load(Ordering::Relaxed) {
                let _ = chaos::drop_mid_request(&addr, "{\"op\": \"pre");
                std::thread::sleep(Duration::from_millis(10));
            }
        }));
    }

    // Chaos: a slow trickler that drips an unterminated line one byte at a
    // time and then hangs up. The cap/idle machinery bounds it; it never
    // completes a request.
    {
        let addr = addr.clone();
        let stop = Arc::clone(&stop);
        threads.push(std::thread::spawn(move || {
            let payload = "y".repeat(400);
            while !stop.load(Ordering::Relaxed) {
                let _ = chaos::slow_sender(&addr, payload.as_bytes(), Duration::from_millis(1));
            }
        }));
    }

    // Chaos: periodic slow requests (debug_sleep) stall the batcher past
    // the 50 ms deadline so queued flood work genuinely expires.
    {
        let addr = addr.clone();
        let ledger = Arc::clone(&ledger);
        let stop = Arc::clone(&stop);
        threads.push(std::thread::spawn(move || {
            let mut client = Client::connect_with_retry(&addr, 8, 50, 0x57a11)
                .unwrap_or_else(|e| fail(&format!("staller connect: {e}")));
            client
                .set_timeout(Some(Duration::from_secs(10)))
                .unwrap_or_else(|e| fail(&e.to_string()));
            while !stop.load(Ordering::Relaxed) {
                match client.call(&Request::DebugSleep { ms: 120 }) {
                    Ok(doc) => {
                        tally(&ledger, &doc);
                    }
                    Err(_) => {
                        ledger.untyped.fetch_add(1, Ordering::Relaxed);
                        return;
                    }
                }
                std::thread::sleep(Duration::from_millis(400));
            }
        }));
    }

    // The health prober: control ops ride the reserved fast path, so they
    // must stay snappy no matter what the flood does to the model queue.
    let prober = {
        let addr = addr.clone();
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut client = Client::connect_with_retry(&addr, 8, 50, 0x4ea1)
                .unwrap_or_else(|e| fail(&format!("prober connect: {e}")));
            client
                .set_timeout(Some(Duration::from_secs(10)))
                .unwrap_or_else(|e| fail(&e.to_string()));
            let mut samples_ms: Vec<f64> = Vec::new();
            while !stop.load(Ordering::Relaxed) {
                let t = Instant::now();
                client
                    .call_ok(&Request::Health)
                    .unwrap_or_else(|e| fail(&format!("health probe failed mid-soak: {e}")));
                samples_ms.push(t.elapsed().as_secs_f64() * 1e3);
                std::thread::sleep(Duration::from_millis(5));
            }
            samples_ms
        })
    };

    // Let the flood rage, hot-swap the model at the midpoint, keep flooding.
    let half = duration / 2;
    std::thread::sleep(half);
    let swapped_version = server
        .swap(&swap_path)
        .unwrap_or_else(|e| fail(&format!("mid-soak swap: {e}")));
    println!("soak: hot swap submitted mid-flood (installing version {swapped_version})");
    std::thread::sleep(duration - half);
    stop.store(true, Ordering::Relaxed);
    for t in threads {
        t.join().unwrap_or_else(|_| fail("soak thread panicked"));
    }
    let mut samples_ms = prober.join().unwrap_or_else(|_| fail("prober thread panicked"));
    samples_ms.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let health_p99_ms = percentile(&samples_ms, 0.99);

    let stats = server.stats();
    let drain = Instant::now();
    server.shutdown();
    let drain_ms = drain.elapsed().as_secs_f64() * 1e3;
    let _ = std::fs::remove_file(&swap_path);

    let get = |c: &AtomicU64| c.load(Ordering::Relaxed);
    println!(
        "soak: ok={} overloaded={} expired={} rejected={} too_large={} refused={} draining={} internal={} untyped={}",
        get(&ledger.ok),
        get(&ledger.overloaded),
        get(&ledger.expired),
        get(&ledger.rejected),
        get(&ledger.too_large),
        get(&ledger.refused),
        get(&ledger.draining),
        get(&ledger.internal),
        get(&ledger.untyped),
    );
    println!(
        "soak: versions v1={} v2={}; server shed={} expired={} swaps={} model_version={}",
        get(&ledger.v1),
        get(&ledger.v2),
        stats.shed,
        stats.expired,
        stats.swaps,
        stats.model_version,
    );
    println!(
        "soak: health probes={} p99={health_p99_ms:.3}ms; drain took {drain_ms:.1}ms",
        samples_ms.len()
    );

    let mut failures = Vec::new();
    if get(&ledger.untyped) > 0 {
        failures.push(format!("{} untyped failures (contract: zero)", get(&ledger.untyped)));
    }
    if get(&ledger.internal) > 0 {
        failures.push(format!("{} internal errors", get(&ledger.internal)));
    }
    if health_p99_ms >= 5.0 {
        failures.push(format!("health p99 {health_p99_ms:.3}ms >= 5ms"));
    }
    if stats.shed == 0 {
        failures.push("flood never shed — overload was not reached".into());
    }
    if stats.expired == 0 {
        failures.push("no queued work expired — deadlines untested".into());
    }
    if stats.swaps != 1 || stats.model_version != swapped_version {
        failures.push(format!(
            "swap did not install (swaps={}, version={})",
            stats.swaps, stats.model_version
        ));
    }
    if get(&ledger.v1) == 0 || get(&ledger.v2) == 0 {
        failures.push("flood did not observe both model versions".into());
    }
    if failures.is_empty() {
        println!("soak passed: every response typed, health fast path held, swap atomic, drain clean");
    } else {
        for f in &failures {
            eprintln!("soak FAILED: {f}");
        }
        std::process::exit(1);
    }
}

/// Connect with retries — verify.sh starts the server in the background,
/// so the first attempts may race its bind.
fn connect_patiently(addr: &str) -> Client {
    Client::connect_with_retry(addr, 40, 50, 0x5e4e)
        .unwrap_or_else(|e| fail(&format!("connect {addr}: {e}")))
}

/// Protocol conformance drive against a live server (verify.sh stage).
fn run_check(addr: &str) {
    let mut client = connect_patiently(addr);
    let expect = |cond: bool, what: &str| {
        if !cond {
            fail(&format!("check failed: {what}"));
        }
    };

    // 1. Health names the model and its degradation state.
    let health = client.call_ok(&Request::Health).unwrap_or_else(|e| fail(&e.to_string()));
    let num_nodes = health.get("num_nodes").and_then(Json::as_usize).unwrap_or(0);
    expect(num_nodes > 0, "health must report num_nodes > 0");
    let status = health.get("status").and_then(Json::as_str).unwrap_or("");
    expect(
        matches!(status, "ok" | "degraded" | "draining"),
        "health status must be ok|degraded|draining",
    );
    expect(
        health.get("model_version").and_then(Json::as_usize) >= Some(1),
        "health must carry model_version >= 1",
    );

    // 2. A valid predict answers with a class and a normalized distribution.
    let pred =
        client.call_ok(&Request::Predict { node: 0 }).unwrap_or_else(|e| fail(&e.to_string()));
    let probs = pred.get("probs").and_then(Json::to_f32s).unwrap_or_default();
    expect(!probs.is_empty(), "predict must return probs");
    let mass: f32 = probs.iter().sum();
    expect((mass - 1.0).abs() < 1e-3, "probs must sum to ~1");
    expect(
        pred.get("model_version").and_then(Json::as_usize).is_some(),
        "predict must be stamped with model_version",
    );

    // 3. top_k is sorted descending.
    let topk = client
        .call_ok(&Request::TopK { node: 0, k: 3 })
        .unwrap_or_else(|e| fail(&e.to_string()));
    let top: &[Json] = topk.get("top").and_then(Json::as_arr).unwrap_or(&[]);
    expect(!top.is_empty(), "top_k must return entries");
    let top_probs: Vec<f64> =
        top.iter().filter_map(|t| t.get("prob").and_then(Json::as_f64)).collect();
    expect(top_probs.windows(2).all(|w| w[0] >= w[1]), "top_k must be sorted descending");

    // 4. Garbage JSON gets a typed parse error, not a hangup.
    let garbage = client
        .roundtrip_raw("{\"op\": \"predict\", node}")
        .unwrap_or_else(|e| fail(&e.to_string()));
    let doc = Json::parse(&garbage).unwrap_or_else(|e| fail(&format!("garbage response: {e}")));
    expect(doc.get("ok").and_then(Json::as_bool) == Some(false), "garbage must be ok:false");

    // 5. Unknown node id gets the typed unknown_node error.
    let oob = client
        .call(&Request::Predict { node: num_nodes + 17 })
        .unwrap_or_else(|e| fail(&e.to_string()));
    let kind = oob
        .get("error")
        .and_then(|e| e.get("kind"))
        .and_then(Json::as_str)
        .unwrap_or("<missing>")
        .to_string();
    expect(kind == "unknown_node", &format!("out-of-range node must be unknown_node, got {kind}"));

    // 6. Stats carries the overload-contract counters.
    let stats = client.call_ok(&Request::Stats).unwrap_or_else(|e| fail(&e.to_string()));
    for field in ["queue_depth", "shed", "expired", "swaps", "model_version", "connections"] {
        expect(
            stats.get(field).and_then(Json::as_usize).is_some(),
            &format!("stats must carry numeric '{field}'"),
        );
    }
    expect(
        stats.get("quantized").and_then(Json::as_bool).is_some(),
        "stats must carry boolean 'quantized'",
    );

    // 7. The server is still healthy after all the abuse.
    client.call_ok(&Request::Health).unwrap_or_else(|e| fail(&e.to_string()));
    println!("serve check ok: health, predict, top_k, garbage, unknown node, stats all conform");
}

fn main() {
    let args = parse_args();
    if args.check || args.shutdown {
        let Some(addr) = &args.addr else {
            eprintln!("--check/--shutdown need --addr HOST:PORT");
            usage()
        };
        if args.check {
            run_check(addr);
        }
        if args.shutdown {
            let mut client = connect_patiently(addr);
            client
                .call_ok(&Request::Shutdown)
                .unwrap_or_else(|e| fail(&format!("shutdown: {e}")));
            println!("server at {addr} acknowledged shutdown");
        }
    } else if args.soak {
        run_soak(&args);
    } else {
        run_bench(&args);
    }
}
