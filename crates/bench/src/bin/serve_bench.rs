//! Load generator + latency bench for the `lasagne-serve` TCP server.
//!
//! Two modes:
//!
//! * **Bench** (default): start an in-process server (from `--frozen PATH`,
//!   or a freshly built GCN on cora when omitted — serving latency does not
//!   care whether the weights are trained), then drive it with 1, 8, and 64
//!   concurrent clients. Per-request latency is measured client-side over
//!   real TCP; writes `BENCH_serve.json` with p50/p99 and throughput per
//!   concurrency level.
//! * **Check** (`--check`): a protocol conformance drive for an already
//!   running server at `--addr HOST:PORT` — used by `scripts/verify.sh`.
//!   Sends well-formed, malformed, and out-of-range requests and asserts
//!   the typed responses; exits non-zero on any surprise.
//!
//! ```sh
//! cargo run --release --bin serve-bench                          # bench, cora GCN
//! cargo run --release --bin serve-bench -- --smoke               # quick CI smoke
//! cargo run --release --bin serve-bench -- --check --addr 127.0.0.1:7878
//! ```

use std::path::PathBuf;
use std::time::Instant;

use lasagne_datasets::{Dataset, DatasetId};
use lasagne_gnn::{models, GraphContext, Hyper};
use lasagne_serve::{freeze, Client, Engine, FrozenModel, Request, Server, ServerConfig};
use lasagne_testkit::rng::Rng;
use lasagne_testkit::Json;

struct Args {
    frozen: Option<PathBuf>,
    addr: Option<String>,
    out: PathBuf,
    check: bool,
    shutdown: bool,
    smoke: bool,
}

fn usage() -> ! {
    eprintln!("usage: serve-bench [--frozen PATH] [--out PATH] [--smoke]");
    eprintln!("       serve-bench --check --addr HOST:PORT");
    eprintln!("       serve-bench --shutdown --addr HOST:PORT");
    std::process::exit(2);
}

fn parse_args() -> Args {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut args = Args {
        frozen: None,
        addr: None,
        out: PathBuf::from("BENCH_serve.json"),
        check: false,
        shutdown: false,
        smoke: false,
    };
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--check" => {
                args.check = true;
                i += 1;
            }
            "--shutdown" => {
                args.shutdown = true;
                i += 1;
            }
            "--smoke" => {
                args.smoke = true;
                i += 1;
            }
            flag @ ("--frozen" | "--addr" | "--out") => {
                let value = argv.get(i + 1).unwrap_or_else(|| {
                    eprintln!("{flag}: missing value");
                    usage()
                });
                match flag {
                    "--frozen" => args.frozen = Some(value.into()),
                    "--addr" => args.addr = Some(value.clone()),
                    _ => args.out = value.into(),
                }
                i += 2;
            }
            other => {
                eprintln!("unknown flag '{other}'");
                usage()
            }
        }
    }
    args
}

fn fail(msg: &str) -> ! {
    eprintln!("serve-bench: {msg}");
    std::process::exit(1);
}

/// Load the engine from a frozen file, or freeze an untrained cora GCN.
fn build_engine(frozen: &Option<PathBuf>) -> Engine {
    let frozen_model = match frozen {
        Some(path) => FrozenModel::load(path)
            .unwrap_or_else(|e| fail(&format!("cannot load {}: {e}", path.display()))),
        None => {
            let ds = Dataset::generate(DatasetId::Cora, 0);
            let ctx = GraphContext::from_dataset(&ds);
            let hyper = Hyper::for_dataset(DatasetId::Cora);
            let model = models::Gcn::new(ds.num_features(), ds.num_classes, &hyper, 0);
            freeze(&model, &ctx, ds.spec.name)
                .unwrap_or_else(|e| fail(&format!("freeze failed: {e}")))
        }
    };
    Engine::new(frozen_model).unwrap_or_else(|e| fail(&format!("engine build failed: {e}")))
}

/// One client worker: `n` sequential predicts on its own connection,
/// returning per-request latencies in microseconds.
fn drive(addr: &str, n: usize, num_nodes: usize, seed: u64) -> Vec<f64> {
    let mut client =
        Client::connect(addr).unwrap_or_else(|e| fail(&format!("connect {addr}: {e}")));
    let mut rng = Rng::seed_from_u64(seed);
    let mut latencies = Vec::with_capacity(n);
    for _ in 0..n {
        let node = (rng.next_u64() % num_nodes as u64) as usize;
        let start = Instant::now();
        let doc = client
            .call_ok(&Request::Predict { node })
            .unwrap_or_else(|e| fail(&format!("predict failed: {e}")));
        latencies.push(start.elapsed().as_secs_f64() * 1e6);
        debug_assert!(doc.get("class").is_some());
    }
    latencies
}

fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

fn run_bench(args: &Args) {
    let engine = build_engine(&args.frozen);
    let num_nodes = engine.num_nodes();
    let server = Server::start(
        engine,
        ServerConfig { addr: "127.0.0.1:0".into(), ..ServerConfig::default() },
    )
    .unwrap_or_else(|e| fail(&format!("server start: {e}")));
    let addr = server.local_addr().to_string();

    let per_client = if args.smoke { 20 } else { 400 };
    let mut rows: Vec<Json> = Vec::new();
    for &clients in &[1usize, 8, 64] {
        let wall = Instant::now();
        let handles: Vec<_> = (0..clients)
            .map(|c| {
                let addr = addr.clone();
                std::thread::spawn(move || drive(&addr, per_client, num_nodes, 0x5e4e + c as u64))
            })
            .collect();
        let mut latencies: Vec<f64> = Vec::with_capacity(clients * per_client);
        for h in handles {
            latencies.extend(h.join().unwrap_or_else(|_| fail("client thread panicked")));
        }
        let elapsed = wall.elapsed().as_secs_f64();
        latencies.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        let total = latencies.len();
        let p50 = percentile(&latencies, 0.50);
        let p99 = percentile(&latencies, 0.99);
        let throughput = total as f64 / elapsed;
        println!(
            "clients={clients:>3}  requests={total:>6}  p50={p50:>9.1}us  p99={p99:>9.1}us  {throughput:>9.0} req/s"
        );
        rows.push(Json::Obj(vec![
            ("clients".into(), Json::Num(clients as f64)),
            ("requests".into(), Json::Num(total as f64)),
            ("p50_us".into(), Json::Num(p50)),
            ("p99_us".into(), Json::Num(p99)),
            ("throughput_rps".into(), Json::Num(throughput)),
        ]));
    }
    let stats = server.stats();
    println!(
        "server side: {} requests in {} batches (max batch {}, mean {:.2})",
        stats.requests, stats.batches, stats.max_batch, stats.mean_batch
    );
    let doc = Json::Obj(vec![
        ("bench".into(), Json::Str("serve".into())),
        ("smoke".into(), Json::Bool(args.smoke)),
        ("levels".into(), Json::Arr(rows)),
        (
            "server".into(),
            Json::Obj(vec![
                ("requests".into(), Json::Num(stats.requests as f64)),
                ("batches".into(), Json::Num(stats.batches as f64)),
                ("max_batch".into(), Json::Num(stats.max_batch as f64)),
                ("mean_batch".into(), Json::Num(stats.mean_batch)),
            ]),
        ),
    ]);
    server.shutdown();
    std::fs::write(&args.out, format!("{doc}\n"))
        .unwrap_or_else(|e| fail(&format!("write {}: {e}", args.out.display())));
    println!("wrote {}", args.out.display());
}

/// Connect with retries — verify.sh starts the server in the background,
/// so the first attempts may race its bind.
fn connect_patiently(addr: &str) -> Client {
    let mut last = String::new();
    for _ in 0..40 {
        match Client::connect(addr) {
            Ok(client) => return client,
            Err(e) => last = e.to_string(),
        }
        std::thread::sleep(std::time::Duration::from_millis(250));
    }
    fail(&format!("connect {addr}: {last}"))
}

/// Protocol conformance drive against a live server (verify.sh stage).
fn run_check(addr: &str) {
    let mut client = connect_patiently(addr);
    let expect = |cond: bool, what: &str| {
        if !cond {
            fail(&format!("check failed: {what}"));
        }
    };

    // 1. Health names the model.
    let health = client.call_ok(&Request::Health).unwrap_or_else(|e| fail(&e.to_string()));
    let num_nodes = health.get("num_nodes").and_then(Json::as_usize).unwrap_or(0);
    expect(num_nodes > 0, "health must report num_nodes > 0");

    // 2. A valid predict answers with a class and a normalized distribution.
    let pred =
        client.call_ok(&Request::Predict { node: 0 }).unwrap_or_else(|e| fail(&e.to_string()));
    let probs = pred.get("probs").and_then(Json::to_f32s).unwrap_or_default();
    expect(!probs.is_empty(), "predict must return probs");
    let mass: f32 = probs.iter().sum();
    expect((mass - 1.0).abs() < 1e-3, "probs must sum to ~1");

    // 3. top_k is sorted descending.
    let topk = client
        .call_ok(&Request::TopK { node: 0, k: 3 })
        .unwrap_or_else(|e| fail(&e.to_string()));
    let top: &[Json] = topk.get("top").and_then(Json::as_arr).unwrap_or(&[]);
    expect(!top.is_empty(), "top_k must return entries");
    let top_probs: Vec<f64> =
        top.iter().filter_map(|t| t.get("prob").and_then(Json::as_f64)).collect();
    expect(top_probs.windows(2).all(|w| w[0] >= w[1]), "top_k must be sorted descending");

    // 4. Garbage JSON gets a typed parse error, not a hangup.
    let garbage = client
        .roundtrip_raw("{\"op\": \"predict\", node}")
        .unwrap_or_else(|e| fail(&e.to_string()));
    let doc = Json::parse(&garbage).unwrap_or_else(|e| fail(&format!("garbage response: {e}")));
    expect(doc.get("ok").and_then(Json::as_bool) == Some(false), "garbage must be ok:false");

    // 5. Unknown node id gets the typed unknown_node error.
    let oob = client
        .call(&Request::Predict { node: num_nodes + 17 })
        .unwrap_or_else(|e| fail(&e.to_string()));
    let kind = oob
        .get("error")
        .and_then(|e| e.get("kind"))
        .and_then(Json::as_str)
        .unwrap_or("<missing>")
        .to_string();
    expect(kind == "unknown_node", &format!("out-of-range node must be unknown_node, got {kind}"));

    // 6. The server is still healthy after all the abuse.
    client.call_ok(&Request::Health).unwrap_or_else(|e| fail(&e.to_string()));
    println!("serve check ok: health, predict, top_k, garbage, unknown node all conform");
}

fn main() {
    let args = parse_args();
    if args.check || args.shutdown {
        let Some(addr) = &args.addr else {
            eprintln!("--check/--shutdown need --addr HOST:PORT");
            usage()
        };
        if args.check {
            run_check(addr);
        }
        if args.shutdown {
            let mut client = connect_patiently(addr);
            client
                .call_ok(&Request::Shutdown)
                .unwrap_or_else(|e| fail(&format!("shutdown: {e}")));
            println!("server at {addr} acknowledged shutdown");
        }
    } else {
        run_bench(&args);
    }
}
