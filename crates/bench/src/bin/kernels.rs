//! Serial-vs-parallel throughput baseline for the five `lasagne-par`-wired
//! kernels: `matmul`, `matmul_tn`, `matmul_nt`, `spmm`, `spmm_t` (plus the
//! retired scatter `spmm_t` for reference). Replaces the old
//! `benches/kernels` target.
//!
//! Each kernel runs on Cora-scale and Pubmed-scale synthetic operators
//! across hidden widths from 16 to 512, once with the pool pinned to one
//! thread and once at the `--threads` count, and the medians land in
//! `BENCH_kernels.json` at the repo root (testkit JSON codec, so the file
//! is deterministic byte-wise up to the timings themselves).
//!
//! ```text
//! cargo run --release -p lasagne-bench --bin kernels [-- --smoke] [--threads N] [--out PATH]
//! ```
//!
//! By the determinism contract the parallel run computes bitwise the same
//! outputs — this binary double-checks that on the first shape of every
//! kernel as a guard against silent contract rot. Note the `speedup` column
//! is only meaningful on multi-core hardware; `available_parallelism` is
//! recorded in the JSON so a reader can tell a 1-core CI box from a real
//! measurement.

use std::hint::black_box;

use lasagne_obs::{SpanGuard, TraceSink};
use lasagne_sparse::Csr;
use lasagne_tensor::{Tensor, TensorRng};
use lasagne_testkit::bench::bench_with;
use lasagne_testkit::json::Json;

struct Config {
    smoke: bool,
    threads: usize,
    out: String,
    warmup: usize,
    samples: usize,
}

fn usage() -> ! {
    eprintln!("usage: kernels [--smoke] [--threads N] [--out PATH]");
    std::process::exit(2);
}

fn parse_args() -> Config {
    let default_out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_kernels.json");
    let mut cfg = Config {
        smoke: false,
        threads: 4,
        out: default_out.to_string(),
        warmup: 1,
        samples: 5,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--smoke" => cfg.smoke = true,
            "--threads" => {
                i += 1;
                cfg.threads = argv
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .filter(|&n| n >= 1)
                    .unwrap_or_else(|| usage());
            }
            "--out" => {
                i += 1;
                cfg.out = argv.get(i).cloned().unwrap_or_else(|| usage());
            }
            _ => usage(),
        }
        i += 1;
    }
    if cfg.smoke {
        cfg.warmup = 1;
        cfg.samples = 3;
    }
    cfg
}

/// A random symmetric graph operator at GCN normalization, Cora/Pubmed
/// shaped: `n` nodes, ≈ `2 * edges` stored entries plus self-loops.
fn synthetic_a_hat(rng: &mut TensorRng, n: usize, edges: usize) -> Csr {
    let mut coo = Vec::with_capacity(2 * edges + n);
    for _ in 0..edges {
        let u = rng.index(n) as u32;
        let v = rng.index(n) as u32;
        if u != v {
            coo.push((u, v, 1.0));
            coo.push((v, u, 1.0));
        }
    }
    Csr::from_coo(n, n, &coo).gcn_normalize()
}

/// Nominal work of one kernel invocation, for the throughput columns:
/// dense products report GFLOP/s (`2·n·k·m` flops), sparse products GB/s
/// (compulsory traffic: 8 B per stored entry for the CSR value + column
/// index, `4·d` B of gathered dense rows per entry, `4·d` B per output
/// row written).
#[derive(Clone, Copy)]
enum Work {
    Flops(f64),
    Bytes(f64),
}

/// `2·n·k·m` — one multiply + one add per inner-loop step.
fn mm_flops(n: usize, k: usize, m: usize) -> Work {
    Work::Flops(2.0 * n as f64 * k as f64 * m as f64)
}

fn spmm_bytes(nnz: usize, rows: usize, d: usize) -> Work {
    Work::Bytes(nnz as f64 * (8.0 + 4.0 * d as f64) + rows as f64 * 4.0 * d as f64)
}

struct Entry {
    kernel: &'static str,
    shape: String,
    serial_ms: f64,
    /// `None` for seed-reference rows, which are serial by construction.
    parallel_ms: Option<f64>,
    work: Work,
}

impl Entry {
    /// GFLOP/s or GB/s achieved by a run of `ms` milliseconds.
    fn throughput(&self, ms: f64) -> f64 {
        let units = match self.work {
            Work::Flops(f) => f,
            Work::Bytes(b) => b,
        };
        units / (ms * 1e-3).max(1e-12) / 1e9
    }

    fn unit(&self) -> &'static str {
        match self.work {
            Work::Flops(_) => "GFLOP/s",
            Work::Bytes(_) => "GB/s",
        }
    }
}

/// Time `f` serially and at `threads` threads; on `check`, also assert the
/// two thread counts produce bitwise identical output.
fn measure(
    cfg: &Config,
    entries: &mut Vec<Entry>,
    kernel: &'static str,
    shape: String,
    work: Work,
    check: bool,
    f: impl Fn() -> Tensor,
) {
    if check {
        lasagne_par::set_threads(1);
        let serial = f();
        lasagne_par::set_threads(cfg.threads);
        let parallel = f();
        assert_eq!(
            serial.as_slice().iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            parallel.as_slice().iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            "{kernel} {shape}: determinism contract violated"
        );
    }
    lasagne_par::set_threads(1);
    let s = bench_with(&format!("{kernel}/{shape}/serial"), cfg.warmup, cfg.samples, || {
        black_box(f());
    });
    lasagne_par::set_threads(cfg.threads);
    let p = bench_with(
        &format!("{kernel}/{shape}/threads{}", cfg.threads),
        cfg.warmup,
        cfg.samples,
        || {
            black_box(f());
        },
    );
    // Min-of-samples, not median: scheduler/VM noise on a shared host is
    // strictly additive for a CPU-bound kernel, so the fastest sample is
    // the least-contaminated estimate — the right basis for the
    // blocked-vs-seed comparison rows.
    let (s_ms, p_ms) = (s.min.as_secs_f64() * 1e3, p.min.as_secs_f64() * 1e3);
    let entry = Entry {
        kernel,
        shape,
        serial_ms: s_ms,
        parallel_ms: Some(p_ms),
        work,
    };
    println!(
        "{kernel:<16} {:<24} serial {:>9.3} ms ({:>7.2} {})  x{} {:>9.3} ms  speedup {:.2}",
        entry.shape,
        entry.serial_ms,
        entry.throughput(entry.serial_ms),
        entry.unit(),
        cfg.threads,
        p_ms,
        s_ms / p_ms.max(1e-12),
    );
    entries.push(entry);
}

/// Time a pinned seed-reference kernel (serial by construction) so the
/// JSON carries blocked-vs-seed comparison rows next to the live numbers.
fn measure_seed(
    cfg: &Config,
    entries: &mut Vec<Entry>,
    kernel: &'static str,
    shape: String,
    work: Work,
    f: impl Fn() -> Tensor,
) {
    lasagne_par::set_threads(1);
    let s = bench_with(&format!("{kernel}/{shape}/serial"), cfg.warmup, cfg.samples, || {
        black_box(f());
    });
    let entry = Entry {
        kernel,
        shape,
        serial_ms: s.min.as_secs_f64() * 1e3,
        parallel_ms: None,
        work,
    };
    println!(
        "{kernel:<16} {:<24} serial {:>9.3} ms ({:>7.2} {})  [seed reference]",
        entry.shape,
        entry.serial_ms,
        entry.throughput(entry.serial_ms),
        entry.unit(),
    );
    entries.push(entry);
}

/// Median cost of one *disabled* span probe in nanoseconds. The overhead
/// contract (DESIGN.md §9) says instrumentation without an active sink is a
/// single relaxed atomic load — this measures it so the bench can assert it
/// stays within noise of the cheapest hot kernel.
fn disabled_span_cost_ns() -> f64 {
    const ITERS: u64 = 1_000_000;
    assert!(!lasagne_obs::enabled(), "probe must run with tracing disabled");
    let r = bench_with("obs_disabled_span", 2, 7, || {
        for _ in 0..ITERS {
            let g = SpanGuard::enter("probe");
            black_box(&g);
        }
    });
    r.median_seconds() * 1e9 / ITERS as f64
}

fn main() {
    let cfg = parse_args();
    let mut rng = TensorRng::seed_from_u64(7);

    let span_ns = disabled_span_cost_ns();
    println!("obs disabled-span probe: {span_ns:.2} ns/span");

    // (label, nodes, random edges) per graph; hidden widths swept per kernel.
    let (graphs, dims): (Vec<(&str, usize, usize)>, Vec<usize>) = if cfg.smoke {
        (vec![("tiny", 200, 400)], vec![8])
    } else {
        (
            vec![("cora_scale", 2708, 5400), ("pubmed_scale", 19717, 44300)],
            vec![16, 64, 256, 512],
        )
    };

    let mut entries: Vec<Entry> = Vec::new();

    for &(label, n, edges) in &graphs {
        let a_hat = synthetic_a_hat(&mut rng, n, edges);
        let a_hat_t = a_hat.transpose();
        let nnz = a_hat.nnz();
        for (di, &d) in dims.iter().enumerate() {
            let h = rng.uniform_tensor(n, d, -1.0, 1.0);
            let check = di == 0;
            let bytes = spmm_bytes(nnz, n, d);
            measure(&cfg, &mut entries, "spmm", format!("{label}_x{d}"), bytes, check, || {
                a_hat.spmm(&h)
            });
            // Blocked-vs-seed row: the pinned pre-blocking whole-row-axpy
            // loop on the same operator. The acceptance bar is the blocked
            // kernel being no slower on every shape.
            measure_seed(&cfg, &mut entries, "spmm_seed", format!("{label}_x{d}"), bytes, || {
                a_hat.spmm_reference(&h)
            });
            measure(&cfg, &mut entries, "spmm_t", format!("{label}_x{d}"), bytes, check, || {
                a_hat.spmm_t(&h)
            });
            measure_seed(&cfg, &mut entries, "spmm_t_seed", format!("{label}_x{d}"), bytes, || {
                a_hat_t.spmm_reference(&h)
            });
            if di == 0 {
                // The retired per-edge scatter kernel, for the record: the
                // gather rewrite must not be slower even single-threaded.
                measure(
                    &cfg,
                    &mut entries,
                    "spmm_t_scatter",
                    format!("{label}_x{d}"),
                    bytes,
                    false,
                    || a_hat.spmm_t_scatter(&h),
                );
            }
        }
    }

    // Dense products at GCN layer shapes: n×k · k×m forward, plus both
    // transposed backward products, widths spanning 16–512.
    let n = if cfg.smoke { 128 } else { 2708 };
    let mm_dims: Vec<(usize, usize)> = if cfg.smoke {
        vec![(8, 8)]
    } else {
        vec![(16, 16), (128, 64), (512, 128)]
    };
    for (ki, &(k, m)) in mm_dims.iter().enumerate() {
        let a = rng.uniform_tensor(n, k, -1.0, 1.0);
        let b = rng.uniform_tensor(k, m, -1.0, 1.0);
        let g = rng.uniform_tensor(n, m, -1.0, 1.0);
        let check = ki == 0;
        let shape = format!("{n}x{k}x{m}");
        let flops = mm_flops(n, k, m);
        measure(&cfg, &mut entries, "matmul", shape.clone(), flops, check, || a.matmul(&b));
        measure_seed(&cfg, &mut entries, "matmul_seed", shape.clone(), flops, || {
            a.matmul_reference(&b)
        });
        measure(&cfg, &mut entries, "matmul_tn", shape.clone(), flops, check, || {
            a.matmul_tn(&g)
        });
        measure_seed(&cfg, &mut entries, "matmul_tn_seed", shape.clone(), flops, || {
            a.matmul_tn_reference(&g)
        });
        measure(&cfg, &mut entries, "matmul_nt", shape.clone(), flops, check, || {
            g.matmul_nt(&b)
        });
        measure_seed(&cfg, &mut entries, "matmul_nt_seed", shape.clone(), flops, || {
            g.matmul_nt_reference(&b)
        });
    }

    // Overhead contract: one disabled span must be ≤ 2% of the matmul
    // median — i.e. within measurement noise of the cheapest dense kernel
    // at its smallest benched shape.
    let matmul_ns = entries
        .iter()
        .find(|e| e.kernel == "matmul")
        .map(|e| e.serial_ms * 1e6)
        .expect("matmul was benched");
    assert!(
        span_ns <= 0.02 * matmul_ns,
        "disabled-path span overhead {span_ns:.2} ns exceeds 2% of the matmul \
         median ({:.0} ns) — the single-atomic-load contract is broken",
        matmul_ns
    );

    // Kernel-time breakdown: one traced pass of each wired kernel, run
    // *after* the timed loops so the medians above never include an active
    // sink. This is what gives BENCH_*.json rows a span/counter view.
    let trace = {
        let sink = TraceSink::start(false);
        let (_, gn, ge) = graphs[0];
        let a_hat = synthetic_a_hat(&mut rng, gn, ge);
        let h = rng.uniform_tensor(gn, dims[0], -1.0, 1.0);
        black_box(a_hat.spmm(&h));
        black_box(a_hat.spmm_t(&h));
        let (k, m) = mm_dims[0];
        let a = rng.uniform_tensor(n, k, -1.0, 1.0);
        let b = rng.uniform_tensor(k, m, -1.0, 1.0);
        let g = rng.uniform_tensor(n, m, -1.0, 1.0);
        black_box(a.matmul(&b));
        black_box(a.matmul_tn(&g));
        black_box(g.matmul_nt(&b));
        sink.finish()
    };

    let cores = std::thread::available_parallelism().map(|v| v.get()).unwrap_or(1);
    let json = Json::Obj(vec![
        ("bench".into(), Json::Str("kernels".into())),
        ("smoke".into(), Json::Bool(cfg.smoke)),
        ("available_parallelism".into(), Json::Num(cores as f64)),
        ("serial_threads".into(), Json::Num(1.0)),
        ("parallel_threads".into(), Json::Num(cfg.threads as f64)),
        ("samples".into(), Json::Num(cfg.samples as f64)),
        ("obs_disabled_span_ns".into(), Json::Num(span_ns)),
        ("obs_overhead_pct_of_matmul".into(), Json::Num(100.0 * span_ns / matmul_ns)),
        (
            "trace".into(),
            Json::Obj(vec![
                (
                    "spans".into(),
                    Json::Arr(
                        trace
                            .spans
                            .iter()
                            .map(|s| {
                                Json::Obj(vec![
                                    ("path".into(), Json::Str(s.path.clone())),
                                    ("count".into(), Json::Num(s.count as f64)),
                                    ("total_ns".into(), Json::Num(s.total_ns as f64)),
                                ])
                            })
                            .collect(),
                    ),
                ),
                (
                    "counters".into(),
                    Json::Obj(
                        trace
                            .counters
                            .iter()
                            .map(|(n, v)| (n.clone(), Json::Num(*v as f64)))
                            .collect(),
                    ),
                ),
            ]),
        ),
        (
            "entries".into(),
            Json::Arr(
                entries
                    .iter()
                    .map(|e| {
                        let mut row = vec![
                            ("kernel".into(), Json::Str(e.kernel.into())),
                            ("shape".into(), Json::Str(e.shape.clone())),
                            ("serial_ms".into(), Json::Num(e.serial_ms)),
                        ];
                        if let Some(p) = e.parallel_ms {
                            row.push(("parallel_ms".into(), Json::Num(p)));
                            row.push(("speedup".into(), Json::Num(e.serial_ms / p.max(1e-12))));
                        }
                        // Throughput columns: GFLOP/s for dense products,
                        // GB/s (nominal compulsory traffic) for sparse.
                        let (skey, pkey) = match e.work {
                            Work::Flops(_) => ("gflops_serial", "gflops_parallel"),
                            Work::Bytes(_) => ("gbs_serial", "gbs_parallel"),
                        };
                        row.push((skey.into(), Json::Num(e.throughput(e.serial_ms))));
                        if let Some(p) = e.parallel_ms {
                            row.push((pkey.into(), Json::Num(e.throughput(p))));
                        }
                        Json::Obj(row)
                    })
                    .collect(),
            ),
        ),
    ]);
    std::fs::write(&cfg.out, json.to_string()).expect("write bench json");
    println!("wrote {}", cfg.out);
}
