//! **Table 5** — accuracy on the Amazon, Coauthor and Tencent datasets.

use lasagne_bench::{dataset, num_seeds, run_model};
use lasagne_datasets::DatasetId;
use lasagne_train::Table;

fn main() {
    let ids = [
        DatasetId::AmazonComputer,
        DatasetId::AmazonPhoto,
        DatasetId::CoauthorCs,
        DatasetId::CoauthorPhysics,
        DatasetId::Tencent,
    ];
    let datasets: Vec<_> = ids.into_iter().map(|id| dataset(id, 0)).collect();

    let models = [
        "GAT",
        "GCN",
        "JK-Net",
        "ResGCN",
        "DenseGCN",
        "Lasagne (Weighted)",
        "Lasagne (Stochastic)",
        "Lasagne (Max pooling)",
    ];

    let mut table = Table::new(
        format!("Table 5 — other datasets (%, mean±std over {} seeds)", num_seeds()),
        &["Models", "Amazon Computer", "Amazon Photo", "Coauthor CS", "Coauthor Physics", "Tencent"],
    );
    for model in models {
        eprintln!("running {model}…");
        let mut cells = vec![format!("{model}*")];
        for ds in &datasets {
            cells.push(run_model(model, ds, None, 42).cell());
        }
        table.row(cells);
    }
    println!("{table}");
}
