//! Recommendation bench + protocol conformance drive (DESIGN.md §15).
//!
//! Modes:
//!
//! * **Bench** (default): generate the synthetic bipartite rec dataset,
//!   train the edge-gated model on the item-classification loss, evaluate
//!   leave-one-out hit-rate@10 / NDCG@10 against the popularity baseline
//!   (**exits non-zero unless the model beats popularity** — the learned
//!   ranker earning its keep is the whole point), then freeze with the
//!   recommendation binding, serve in-process, and measure `recommend`
//!   p50/p99. Writes `BENCH_rec.json`.
//! * **Check** (`--check --addr HOST:PORT [--seed N]`): conformance drive
//!   against a live rec server exported from the same seed — happy-path
//!   ranking (sorted, deduplicated, masked items excluded), `k = 0`
//!   rejected as `bad_request`, item ids and out-of-range ids rejected as
//!   `unknown_user` with the bipartite layout as structured hints.
//! * **Expect-not-recommender** (`--expect-not-recommender --addr ...`):
//!   asserts a *classification* server refuses `recommend` with the typed
//!   `not_a_recommender` error while `predict` keeps answering.
//!
//! ```sh
//! cargo run --release --bin rec-bench                       # full bench
//! cargo run --release --bin rec-bench -- --smoke            # quick CI smoke
//! cargo run --release --bin rec-bench -- --check --addr 127.0.0.1:17882
//! cargo run --release --bin rec-bench -- --expect-not-recommender --addr 127.0.0.1:17883
//! ```

use std::path::PathBuf;
use std::rc::Rc;
use std::time::Instant;

use lasagne_autograd::{Adam, Optimizer, Tape};
use lasagne_datasets::{RecConfig, RecDataset};
use lasagne_gnn::{models, GraphContext, Hyper, Mode, NodeClassifier};
use lasagne_serve::{
    freeze_rec, Client, Engine, FrozenRec, Request, Server, ServerConfig,
};
use lasagne_tensor::TensorRng;
use lasagne_testkit::Json;

struct Args {
    out: PathBuf,
    addr: Option<String>,
    seed: u64,
    check: bool,
    expect_not_recommender: bool,
    smoke: bool,
}

fn usage() -> ! {
    eprintln!("usage: rec-bench [--out PATH] [--seed N] [--smoke]");
    eprintln!("       rec-bench --check --addr HOST:PORT [--seed N]");
    eprintln!("       rec-bench --expect-not-recommender --addr HOST:PORT");
    std::process::exit(2);
}

fn parse_args() -> Args {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut args = Args {
        out: PathBuf::from("BENCH_rec.json"),
        addr: None,
        seed: 0,
        check: false,
        expect_not_recommender: false,
        smoke: false,
    };
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--check" => {
                args.check = true;
                i += 1;
            }
            "--expect-not-recommender" => {
                args.expect_not_recommender = true;
                i += 1;
            }
            "--smoke" => {
                args.smoke = true;
                i += 1;
            }
            flag @ ("--out" | "--addr" | "--seed") => {
                let value = argv.get(i + 1).unwrap_or_else(|| {
                    eprintln!("{flag}: missing value");
                    usage()
                });
                match flag {
                    "--out" => args.out = value.into(),
                    "--addr" => args.addr = Some(value.clone()),
                    _ => args.seed = value.parse().unwrap_or_else(|_| usage()),
                }
                i += 2;
            }
            other => {
                eprintln!("unknown flag '{other}'");
                usage()
            }
        }
    }
    args
}

fn fail(msg: &str) -> ! {
    eprintln!("rec-bench: {msg}");
    std::process::exit(1);
}

/// The bench's dataset shape. More categories than the classification
/// default (12 over 600 items) so class-space dot products carry real
/// ranking signal — the frozen engine scores in logit space — and a
/// flatter catalog (Pareto exponent 3.5) with focused users (0.85), the
/// regime where personalization rather than blockbuster-counting decides
/// the ranking.
pub fn bench_config() -> RecConfig {
    RecConfig {
        items: 600,
        users: 400,
        classes: 12,
        features: 32,
        avg_user_degree: 8.0,
        time_buckets: 8,
        popularity_exponent: 3.5,
        user_focus: 0.85,
    }
}

fn rec_ctx(ds: &RecDataset) -> GraphContext {
    GraphContext::with_edge_data(
        &ds.graph,
        ds.features.clone(),
        ds.labels.clone(),
        ds.num_classes,
        &ds.edge_data,
    )
    .unwrap_or_else(|e| fail(&format!("edge context build: {e}")))
}

/// Train the edge-gated model on the item-classification loss (the users'
/// preferred-category labels stay out of the loss; their logits are shaped
/// by propagation alone, so no holdout signal leaks).
fn train_model(ds: &RecDataset, ctx: &GraphContext, epochs: usize, seed: u64) -> models::EdgeGatedGcn {
    let hyper = Hyper { hidden: 16, depth: 2, dropout_keep: 1.0, ..Hyper::default() };
    let mut model =
        models::EdgeGatedGcn::new(ds.features.shape().1, ds.num_classes, ds.edge_dim, &hyper, seed);
    let labels = Rc::new(ds.labels.clone());
    let idx = Rc::new(ds.train_items.clone());
    let mut opt = Adam::new(model.store(), 0.01, 5e-4);
    let mut rng = TensorRng::seed_from_u64(seed ^ 0x7ea1);
    for _ in 0..epochs {
        let mut tape = Tape::new();
        let out = model.forward(&mut tape, ctx, Mode::Train, &mut rng);
        let lp = tape.log_softmax(out.logits);
        let loss = tape.nll_masked(lp, labels.clone(), idx.clone());
        model.store_mut().zero_grads();
        tape.backward(loss, model.store_mut());
        opt.step(model.store_mut());
    }
    model
}

fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

fn run_bench(args: &Args) {
    let k = 10usize;
    let epochs = if args.smoke { 12 } else { 40 };
    let cfg = bench_config();
    println!(
        "rec-bench: {} items x {} users, {} classes, seed {}, {} epochs",
        cfg.items, cfg.users, cfg.classes, args.seed, epochs
    );
    let ds = RecDataset::generate(&cfg, args.seed);
    let ctx = rec_ctx(&ds);
    let train_start = Instant::now();
    let model = train_model(&ds, &ctx, epochs, 5);
    let train_s = train_start.elapsed().as_secs_f64();

    // Leave-one-out evaluation: learned ranker vs the popularity baseline,
    // both masked identically.
    let frozen = freeze_rec(
        &model,
        &ctx,
        "rec-synthetic",
        FrozenRec { items: ds.items, users: ds.users, interacted: ds.interacted.clone() },
    )
    .unwrap_or_else(|e| fail(&format!("freeze_rec: {e}")));
    let engine = Engine::new(frozen.clone()).unwrap_or_else(|e| fail(&format!("engine: {e}")));
    let model_eval = ds.evaluate(k, |user| {
        engine
            .recommend(user, k)
            .unwrap_or_else(|e| fail(&format!("recommend user {user}: {e}")))
            .into_iter()
            .map(|(i, _)| i)
            .collect()
    });
    let pop_eval = ds.evaluate(k, |user| ds.popularity_topk(user, k));
    println!(
        "model:      hit@{k}={:.4}  ndcg@{k}={:.4}  ({} users)",
        model_eval.hit_rate, model_eval.ndcg, model_eval.users_evaluated
    );
    println!(
        "popularity: hit@{k}={:.4}  ndcg@{k}={:.4}",
        pop_eval.hit_rate, pop_eval.ndcg
    );

    // Serving latency: one client, sequential `recommend` over the wire.
    let server = Server::start(
        Engine::new(frozen).unwrap_or_else(|e| fail(&format!("serve engine: {e}"))),
        ServerConfig { addr: "127.0.0.1:0".into(), ..ServerConfig::default() },
    )
    .unwrap_or_else(|e| fail(&format!("server start: {e}")));
    let addr = server.local_addr().to_string();
    let mut client = Client::connect_with_retry(&addr, 8, 50, 0x7ec)
        .unwrap_or_else(|e| fail(&format!("connect: {e}")));
    let rounds = if args.smoke { 200 } else { 2000 };
    let mut latencies = Vec::with_capacity(rounds);
    for r in 0..rounds {
        let user = ds.items + (r % ds.users);
        let start = Instant::now();
        client
            .recommend(user, k)
            .unwrap_or_else(|e| fail(&format!("serve recommend user {user}: {e}")));
        latencies.push(start.elapsed().as_secs_f64() * 1e6);
    }
    server.shutdown();
    latencies.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let (p50, p99) = (percentile(&latencies, 0.50), percentile(&latencies, 0.99));
    println!("serve: {rounds} recommends  p50={p50:.1}us  p99={p99:.1}us");

    let doc = Json::Obj(vec![
        ("bench".into(), Json::Str("rec".into())),
        ("smoke".into(), Json::Bool(args.smoke)),
        ("seed".into(), Json::Num(args.seed as f64)),
        ("items".into(), Json::Num(ds.items as f64)),
        ("users".into(), Json::Num(ds.users as f64)),
        ("classes".into(), Json::Num(ds.num_classes as f64)),
        ("epochs".into(), Json::Num(epochs as f64)),
        ("train_s".into(), Json::Num(train_s)),
        ("k".into(), Json::Num(k as f64)),
        ("users_evaluated".into(), Json::Num(model_eval.users_evaluated as f64)),
        (
            "model".into(),
            Json::Obj(vec![
                ("hit_rate".into(), Json::Num(model_eval.hit_rate)),
                ("ndcg".into(), Json::Num(model_eval.ndcg)),
            ]),
        ),
        (
            "popularity".into(),
            Json::Obj(vec![
                ("hit_rate".into(), Json::Num(pop_eval.hit_rate)),
                ("ndcg".into(), Json::Num(pop_eval.ndcg)),
            ]),
        ),
        (
            "serve".into(),
            Json::Obj(vec![
                ("requests".into(), Json::Num(rounds as f64)),
                ("p50_us".into(), Json::Num(p50)),
                ("p99_us".into(), Json::Num(p99)),
            ]),
        ),
    ]);
    std::fs::write(&args.out, format!("{doc}\n"))
        .unwrap_or_else(|e| fail(&format!("write {}: {e}", args.out.display())));
    println!("wrote {}", args.out.display());

    if model_eval.hit_rate <= pop_eval.hit_rate {
        fail(&format!(
            "model hit@{k} {:.4} does not beat popularity {:.4} — the learned ranker is not earning its keep",
            model_eval.hit_rate, pop_eval.hit_rate
        ));
    }
    println!(
        "rec bench passed: model beats popularity by {:.4} hit@{k}",
        model_eval.hit_rate - pop_eval.hit_rate
    );
}

fn connect_patiently(addr: &str) -> Client {
    Client::connect_with_retry(addr, 40, 50, 0x7ec0)
        .unwrap_or_else(|e| fail(&format!("connect {addr}: {e}")))
}

fn error_kind(doc: &Json) -> String {
    doc.get("error")
        .and_then(|e| e.get("kind"))
        .and_then(Json::as_str)
        .unwrap_or("<missing>")
        .to_string()
}

/// Conformance drive against a live recommendation server exported from
/// `--seed` (verify.sh starts the server from the CLI's export, so both
/// sides regenerate the identical dataset).
fn run_check(addr: &str, seed: u64) {
    let ds = RecDataset::generate(&bench_config(), seed);
    let mut client = connect_patiently(addr);
    let expect = |cond: bool, what: &str| {
        if !cond {
            fail(&format!("check failed: {what}"));
        }
    };

    // 1. Health reports the bipartite node count.
    let health = client.call_ok(&Request::Health).unwrap_or_else(|e| fail(&e.to_string()));
    expect(
        health.get("num_nodes").and_then(Json::as_usize) == Some(ds.num_nodes()),
        "health num_nodes must match the seeded dataset",
    );

    // 2. Happy path: sorted, deduplicated, masked training items excluded.
    for &(user, _) in ds.holdout.iter().take(5) {
        let doc = client
            .recommend(user, 10)
            .unwrap_or_else(|e| fail(&format!("recommend user {user}: {e}")));
        let items: &[Json] = doc.get("items").and_then(Json::as_arr).unwrap_or(&[]);
        expect(!items.is_empty() && items.len() <= 10, "recommend must return 1..=k items");
        let mask = ds.interacted.row_indices(user - ds.items);
        let mut last = f64::INFINITY;
        let mut seen = std::collections::HashSet::new();
        for entry in items {
            let item = entry.get("item").and_then(Json::as_usize).unwrap_or(usize::MAX);
            let score = entry.get("score").and_then(Json::as_f64).unwrap_or(f64::NAN);
            expect(item < ds.items, "recommended id must be an item node");
            expect(
                mask.binary_search(&(item as u32)).is_err(),
                "recommend must mask interacted items",
            );
            expect(seen.insert(item), "recommend must not repeat items");
            expect(score <= last, "recommend must be sorted best-first");
            last = score;
        }
    }

    // 3. k = 0 is a typed bad_request at the parse layer.
    let raw = client
        .roundtrip_raw(&format!("{{\"op\":\"recommend\",\"node\":{},\"k\":0}}", ds.items))
        .unwrap_or_else(|e| fail(&e.to_string()));
    let doc = Json::parse(&raw).unwrap_or_else(|e| fail(&format!("k=0 response: {e}")));
    expect(error_kind(&doc) == "bad_request", "k=0 must be bad_request");

    // 4. Item ids and out-of-range ids are unknown_user, with the layout
    //    as structured hints.
    for bad in [0usize, ds.num_nodes() + 7] {
        let doc = client
            .call(&Request::Recommend { node: bad, k: 5 })
            .unwrap_or_else(|e| fail(&e.to_string()));
        expect(
            error_kind(&doc) == "unknown_user",
            &format!("node {bad} must be unknown_user, got {}", error_kind(&doc)),
        );
        let error = doc.get("error").unwrap_or(&Json::Null);
        expect(
            error.get("items").and_then(Json::as_usize) == Some(ds.items)
                && error.get("users").and_then(Json::as_usize) == Some(ds.users),
            "unknown_user must carry items/users hints",
        );
    }

    // 5. The connection survives all of the above.
    client.call_ok(&Request::Health).unwrap_or_else(|e| fail(&e.to_string()));
    println!("rec check ok: ranking, masking, k=0, unknown_user all conform");
}

/// Typed-error sweep against a *classification* server: `recommend` must
/// refuse with `not_a_recommender` and the model surface must stay up.
fn run_expect_not_recommender(addr: &str) {
    let mut client = connect_patiently(addr);
    let doc = client
        .call(&Request::Recommend { node: 0, k: 5 })
        .unwrap_or_else(|e| fail(&e.to_string()));
    if error_kind(&doc) != "not_a_recommender" {
        fail(&format!(
            "classification server must answer recommend with not_a_recommender, got {}",
            error_kind(&doc)
        ));
    }
    client
        .call_ok(&Request::Predict { node: 0 })
        .unwrap_or_else(|e| fail(&format!("predict after refusal: {e}")));
    println!("not-a-recommender check ok: typed refusal, predict still answers");
}

fn main() {
    let args = parse_args();
    if args.check || args.expect_not_recommender {
        let Some(addr) = &args.addr else {
            eprintln!("--check/--expect-not-recommender need --addr HOST:PORT");
            usage()
        };
        if args.check {
            run_check(addr, args.seed);
        }
        if args.expect_not_recommender {
            run_expect_not_recommender(addr);
        }
    } else {
        run_bench(&args);
    }
}
