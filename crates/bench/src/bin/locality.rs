//! **§5.2.2 locality probe** — two analyses from the depth-analysis text:
//!
//! 1. the Average Path Length (Eq 8) of each citation dataset, which the
//!    paper uses to justify sweeping depth up to 10;
//! 2. the learned Stochastic-aggregator probabilities `P` of a 5-layer
//!    Lasagne on Cora, reported for the highest- and lowest-PageRank nodes
//!    — the paper finds the central node prefers shallow layers
//!    (`[1.00, 0.95, 0.89]`) and the peripheral node deep ones
//!    (`[0.67, 0.86, 1.00]`).

use lasagne_bench::{dataset, max_epochs};
use lasagne_core::{AggregatorKind, Lasagne, LasagneConfig};
use lasagne_datasets::DatasetId;
use lasagne_gnn::sampling::FullBatch;
use lasagne_gnn::{GraphContext, Hyper};
use lasagne_graph::{average_path_length, pagerank};
use lasagne_tensor::TensorRng;
use lasagne_train::{fit, Table, TrainConfig};

fn main() {
    // (1) APL per dataset (sampled sources on the bigger graphs).
    let mut apl_table = Table::new(
        "Average Path Length (Eq 8)",
        &["Dataset", "APL", "paper APL (real data)"],
    );
    let paper_apl = [
        (DatasetId::Cora, "7.3"),
        (DatasetId::Citeseer, "10.3"),
        (DatasetId::Pubmed, "6.3"),
        (DatasetId::Nell, "5.4"),
    ];
    let mut rng = TensorRng::seed_from_u64(0);
    for (id, paper) in paper_apl {
        let ds = dataset(id, 0);
        let sources = if ds.num_nodes() > 4000 { Some(300) } else { None };
        let apl = average_path_length(&ds.graph, sources, &mut rng);
        apl_table.row(vec![id.to_string(), format!("{apl:.1}"), paper.to_string()]);
    }
    println!("{apl_table}");

    // (2) Learned stochastic gates of extreme-PageRank nodes.
    eprintln!("training 5-layer Lasagne (Stochastic) on Cora…");
    let ds = dataset(DatasetId::Cora, 0);
    let ctx = GraphContext::from_dataset(&ds);
    let hyper = Hyper::for_dataset(DatasetId::Cora).with_depth(5);
    let cfg = LasagneConfig::from_hyper(&hyper, AggregatorKind::Stochastic);
    let mut model = Lasagne::new(ds.num_features(), ds.num_classes, Some(ds.num_nodes()), &cfg, 7);
    let train_cfg = TrainConfig { max_epochs: max_epochs(), ..TrainConfig::from_hyper(&hyper) };
    let mut strat = FullBatch::from_dataset(&ds);
    let _ = fit(&mut model, &mut strat, &ctx, &ds.split, &train_cfg, &mut rng);

    let pr = pagerank(&ds.graph, 0.85, 100);
    let argmax = (0..pr.len()).max_by(|&a, &b| pr[a].total_cmp(&pr[b])).expect("nodes");
    // Exclude isolated nodes: their gates receive no gradient and stay at
    // the init value, telling us nothing about preferences.
    let argmin = (0..pr.len())
        .filter(|&v| ds.graph.degree(v) >= 1)
        .min_by(|&a, &b| pr[a].total_cmp(&pr[b]))
        .expect("nodes");
    let probs = model.stochastic_probabilities().expect("stochastic model");
    let fmt = |node: usize| -> String {
        probs
            .row(node)
            .iter()
            .map(|p| format!("{p:.2}"))
            .collect::<Vec<_>>()
            .join(", ")
    };
    let mut p_table = Table::new(
        "Learned aggregation probabilities (per source layer) of extreme-PageRank nodes",
        &["Node", "PageRank", "degree", "P distribution [layer 1..H]"],
    );
    p_table.row(vec![
        format!("central (node {argmax})"),
        format!("{:.5}", pr[argmax]),
        format!("{}", ds.graph.degree(argmax)),
        format!("[{}]", fmt(argmax)),
    ]);
    p_table.row(vec![
        format!("peripheral (node {argmin})"),
        format!("{:.5}", pr[argmin]),
        format!("{}", ds.graph.degree(argmin)),
        format!("[{}]", fmt(argmin)),
    ]);
    println!("{p_table}");
    println!(
        "paper reference: central P = [1.00, 0.95, 0.89]; peripheral P = [0.67, 0.86, 1.00]"
    );

    // Aggregate view: correlation between PageRank decile and preference for
    // deep layers (mean P of the last layer minus the first).
    let n = ds.num_nodes();
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| pr[a].total_cmp(&pr[b]));
    let mut decile_table = Table::new(
        "Mean deep-vs-shallow gate preference by PageRank decile (P_last − P_first)",
        &["PageRank decile", "mean Δ (deep − shallow)"],
    );
    let h = probs.cols();
    for dec in 0..10 {
        let lo = dec * n / 10;
        let hi = ((dec + 1) * n / 10).min(n);
        let mut delta = 0.0f64;
        for &v in &order[lo..hi] {
            delta += (probs.get(v, h - 1) - probs.get(v, 0)) as f64;
        }
        decile_table.row(vec![
            format!("{} (low PR = peripheral)", dec + 1),
            format!("{:+.3}", delta / (hi - lo) as f64),
        ]);
    }
    println!("{decile_table}");
}
