//! Bench for the KSG mutual-information estimator (the Fig 2/6 workhorse):
//! O(N²) in the subsample size, so the `max_samples` cap matters.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lasagne_mi::MiEstimator;
use lasagne_tensor::TensorRng;

fn bench_mi(c: &mut Criterion) {
    let mut rng = TensorRng::seed_from_u64(0);
    let x = rng.normal_tensor(2708, 128, 0.0, 1.0);
    let y = x.add(&rng.normal_tensor(2708, 128, 0.0, 0.5));

    let mut group = c.benchmark_group("ksg_mi_cora_scale");
    group.sample_size(10);
    for max_samples in [200usize, 500, 800] {
        let est = MiEstimator { max_samples, n_projections: 1, ..MiEstimator::default() };
        group.bench_with_input(
            BenchmarkId::from_parameter(max_samples),
            &max_samples,
            |b, _| {
                let mut mi_rng = TensorRng::seed_from_u64(1);
                b.iter(|| est.estimate(&x, &y, &mut mi_rng))
            },
        );
    }
    group.finish();
}

criterion_group!(mi, bench_mi);
criterion_main!(mi);
