//! Bench for the KSG mutual-information estimator (the Fig 2/6 workhorse):
//! O(N²) in the subsample size, so the `max_samples` cap matters. Plain
//! binary on the `lasagne-testkit` timer.

use std::hint::black_box;

use lasagne_mi::MiEstimator;
use lasagne_tensor::TensorRng;
use lasagne_testkit::bench_with;

fn main() {
    let mut rng = TensorRng::seed_from_u64(0);
    let x = rng.normal_tensor(2708, 128, 0.0, 1.0);
    let y = x.add(&rng.normal_tensor(2708, 128, 0.0, 0.5));

    for max_samples in [200usize, 500, 800] {
        let est = MiEstimator { max_samples, n_projections: 1, ..MiEstimator::default() };
        let mut mi_rng = TensorRng::seed_from_u64(1);
        let r = bench_with(&format!("ksg_mi_cora_scale/{max_samples}"), 2, 10, || {
            black_box(est.estimate(&x, &y, &mut mi_rng));
        });
        println!("{r}");
    }
}
