//! Criterion benches for the numeric kernels under every model: dense
//! matmul (all three transposition variants), SpMM, and normalization.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use lasagne_sparse::Csr;
use lasagne_tensor::TensorRng;

fn bench_matmul(c: &mut Criterion) {
    let mut rng = TensorRng::seed_from_u64(0);
    let a = rng.uniform_tensor(512, 128, -1.0, 1.0);
    let b = rng.uniform_tensor(128, 64, -1.0, 1.0);
    let g = rng.uniform_tensor(512, 64, -1.0, 1.0);
    let mut group = c.benchmark_group("matmul");
    group.sample_size(20);
    group.bench_function("nn_512x128x64", |bench| bench.iter(|| a.matmul(&b)));
    group.bench_function("tn_512x128x64", |bench| bench.iter(|| a.matmul_tn(&g)));
    // A·Bᵀ with shared 64-dim inner axis: (512×64)·(128×64)ᵀ → 512×128.
    group.bench_function("nt_512x64x128", |bench| bench.iter(|| g.matmul_nt(&b)));
    group.finish();
}

fn bench_spmm(c: &mut Criterion) {
    let mut rng = TensorRng::seed_from_u64(1);
    // A cora-sized sparse operator.
    let mut coo = Vec::new();
    let n = 2708u32;
    for _ in 0..5400 {
        let u = rng.index(n as usize) as u32;
        let v = rng.index(n as usize) as u32;
        if u != v {
            coo.push((u, v, 1.0));
            coo.push((v, u, 1.0));
        }
    }
    let adj = Csr::from_coo(n as usize, n as usize, &coo);
    let a_hat = adj.gcn_normalize();
    let h = rng.uniform_tensor(n as usize, 32, -1.0, 1.0);

    let mut group = c.benchmark_group("spmm");
    group.sample_size(30);
    group.bench_function("cora_scale_x32", |bench| bench.iter(|| a_hat.spmm(&h)));
    group.bench_function("cora_scale_x32_transposed", |bench| bench.iter(|| a_hat.spmm_t(&h)));
    group.bench_function(
        "gcn_normalize",
        |bench| {
            bench.iter_batched(|| adj.clone(), |a| a.gcn_normalize(), BatchSize::SmallInput)
        },
    );
    group.finish();
}

criterion_group!(kernels, bench_matmul, bench_spmm);
criterion_main!(kernels);
