//! Benches for the numeric kernels under every model: dense matmul (all
//! three transposition variants), SpMM, and normalization. Plain binary on
//! the `lasagne-testkit` timer (`harness = false`).

use std::hint::black_box;

use lasagne_sparse::Csr;
use lasagne_tensor::TensorRng;
use lasagne_testkit::bench;

fn bench_matmul() {
    let mut rng = TensorRng::seed_from_u64(0);
    let a = rng.uniform_tensor(512, 128, -1.0, 1.0);
    let b = rng.uniform_tensor(128, 64, -1.0, 1.0);
    let g = rng.uniform_tensor(512, 64, -1.0, 1.0);
    bench("matmul/nn_512x128x64", || {
        black_box(a.matmul(&b));
    });
    bench("matmul/tn_512x128x64", || {
        black_box(a.matmul_tn(&g));
    });
    // A·Bᵀ with shared 64-dim inner axis: (512×64)·(128×64)ᵀ → 512×128.
    bench("matmul/nt_512x64x128", || {
        black_box(g.matmul_nt(&b));
    });
}

fn bench_spmm() {
    let mut rng = TensorRng::seed_from_u64(1);
    // A cora-sized sparse operator.
    let mut coo = Vec::new();
    let n = 2708u32;
    for _ in 0..5400 {
        let u = rng.index(n as usize) as u32;
        let v = rng.index(n as usize) as u32;
        if u != v {
            coo.push((u, v, 1.0));
            coo.push((v, u, 1.0));
        }
    }
    let adj = Csr::from_coo(n as usize, n as usize, &coo);
    let a_hat = adj.gcn_normalize();
    let h = rng.uniform_tensor(n as usize, 32, -1.0, 1.0);

    bench("spmm/cora_scale_x32", || {
        black_box(a_hat.spmm(&h));
    });
    bench("spmm/cora_scale_x32_transposed", || {
        black_box(a_hat.spmm_t(&h));
    });
    bench("spmm/gcn_normalize", || {
        black_box(adj.clone().gcn_normalize());
    });
}

fn main() {
    bench_matmul();
    bench_spmm();
}
