//! Ablation bench: forward cost of one Lasagne pass per aggregator (the
//! design-choice cost DESIGN.md calls out), plus the GC-FM layer on/off.

use criterion::{criterion_group, criterion_main, Criterion};
use lasagne_autograd::Tape;
use lasagne_core::{AggregatorKind, Lasagne, LasagneConfig};
use lasagne_datasets::{Dataset, DatasetId};
use lasagne_gnn::{GraphContext, Hyper, Mode, NodeClassifier};
use lasagne_tensor::TensorRng;

fn bench_aggregators(c: &mut Criterion) {
    let ds = Dataset::generate(DatasetId::Cora, 0);
    let ctx = GraphContext::from_dataset(&ds);
    let hyper = Hyper::for_dataset(DatasetId::Cora).with_depth(5);

    let mut group = c.benchmark_group("lasagne_forward_depth5");
    group.sample_size(10);
    for agg in AggregatorKind::extended() {
        let cfg = LasagneConfig::from_hyper(&hyper, agg);
        let model = Lasagne::new(ds.num_features(), ds.num_classes, Some(ds.num_nodes()), &cfg, 0);
        let mut rng = TensorRng::seed_from_u64(0);
        group.bench_function(agg.label(), |b| {
            b.iter(|| {
                let mut tape = Tape::new();
                let _ = model.forward(&mut tape, &ctx, Mode::Train, &mut rng);
            })
        });
    }
    // GC-FM ablation cost.
    let cfg = LasagneConfig::from_hyper(&hyper, AggregatorKind::Weighted).with_gcfm(false);
    let model = Lasagne::new(ds.num_features(), ds.num_classes, Some(ds.num_nodes()), &cfg, 0);
    let mut rng = TensorRng::seed_from_u64(0);
    group.bench_function("Weighted (no GC-FM)", |b| {
        b.iter(|| {
            let mut tape = Tape::new();
            let _ = model.forward(&mut tape, &ctx, Mode::Train, &mut rng);
        })
    });
    group.finish();
}

criterion_group!(aggregators, bench_aggregators);
criterion_main!(aggregators);
