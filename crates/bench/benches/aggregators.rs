//! Ablation bench: forward cost of one Lasagne pass per aggregator (the
//! design-choice cost DESIGN.md calls out), plus the GC-FM layer on/off.
//! Plain binary on the `lasagne-testkit` timer.

use std::hint::black_box;

use lasagne_autograd::Tape;
use lasagne_core::{AggregatorKind, Lasagne, LasagneConfig};
use lasagne_datasets::{Dataset, DatasetId};
use lasagne_gnn::{GraphContext, Hyper, Mode, NodeClassifier};
use lasagne_tensor::TensorRng;
use lasagne_testkit::bench_with;

fn main() {
    let ds = Dataset::generate(DatasetId::Cora, 0);
    let ctx = GraphContext::from_dataset(&ds);
    let hyper = Hyper::for_dataset(DatasetId::Cora).with_depth(5);

    for agg in AggregatorKind::extended() {
        let cfg = LasagneConfig::from_hyper(&hyper, agg);
        let model = Lasagne::new(ds.num_features(), ds.num_classes, Some(ds.num_nodes()), &cfg, 0);
        let mut rng = TensorRng::seed_from_u64(0);
        let r = bench_with(&format!("lasagne_forward_depth5/{}", agg.label()), 2, 10, || {
            let mut tape = Tape::new();
            black_box(model.forward(&mut tape, &ctx, Mode::Train, &mut rng));
        });
        println!("{r}");
    }
    // GC-FM ablation cost.
    let cfg = LasagneConfig::from_hyper(&hyper, AggregatorKind::Weighted).with_gcfm(false);
    let model = Lasagne::new(ds.num_features(), ds.num_classes, Some(ds.num_nodes()), &cfg, 0);
    let mut rng = TensorRng::seed_from_u64(0);
    let r = bench_with("lasagne_forward_depth5/Weighted (no GC-FM)", 2, 10, || {
        let mut tape = Tape::new();
        black_box(model.forward(&mut tape, &ctx, Mode::Train, &mut rng));
    });
    println!("{r}");
}
