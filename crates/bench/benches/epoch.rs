//! Bench version of **Fig 7(a)**: one full training epoch (forward +
//! backward + Adam step) of GCN vs Lasagne (Weighted) vs GAT at depth 4 on
//! Cora-sim. The paper's claim: Lasagne tracks GCN; GAT is far slower.
//! Plain binary on the `lasagne-testkit` timer.

use std::rc::Rc;

use lasagne_autograd::{Adam, Optimizer, Tape};
use lasagne_bench::build_model;
use lasagne_datasets::{Dataset, DatasetId};
use lasagne_gnn::{GraphContext, Hyper, Mode};
use lasagne_tensor::TensorRng;
use lasagne_testkit::bench_with;

fn main() {
    let ds = Dataset::generate(DatasetId::Cora, 0);
    let ctx = GraphContext::from_dataset(&ds);
    let labels = Rc::new(ds.labels.clone());
    let idx = Rc::new(ds.split.train.clone());

    for name in ["GCN", "Lasagne (Weighted)", "GAT"] {
        let hyper = Hyper::for_dataset(DatasetId::Cora).with_depth(4);
        let mut model = build_model(name, &ds, &hyper, 0);
        let mut opt = Adam::new(model.store(), hyper.lr, hyper.weight_decay);
        let mut rng = TensorRng::seed_from_u64(0);
        let r = bench_with(&format!("epoch_depth4_cora/{name}"), 2, 10, || {
            let mut tape = Tape::new();
            let out = model.forward(&mut tape, &ctx, Mode::Train, &mut rng);
            let lp = tape.log_softmax(out.logits);
            let loss = tape.nll_masked(lp, labels.clone(), idx.clone());
            model.store_mut().zero_grads();
            tape.backward(loss, model.store_mut());
            opt.step(model.store_mut());
        });
        println!("{r}");
    }
}
