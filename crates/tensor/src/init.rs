//! Random initializers.
//!
//! All randomness in the stack flows through [`TensorRng`], a thin wrapper
//! over the workspace's own seedable PRNG
//! ([`lasagne_testkit::Rng`](lasagne_testkit::rng::Rng), splitmix64-seeded
//! xoshiro256\*\*), so every experiment is reproducible from a single
//! `u64` seed (the paper reports mean±std over repeated seeded runs) and
//! the workspace needs no registry dependency for randomness.

use crate::Tensor;
use lasagne_testkit::rng::Rng;

/// Seedable source of randomness for initializers, dropout masks, Bernoulli
/// gates and data generation.
pub struct TensorRng {
    rng: Rng,
}

impl TensorRng {
    /// Deterministic RNG from a seed.
    pub fn seed_from_u64(seed: u64) -> Self {
        TensorRng { rng: Rng::seed_from_u64(seed) }
    }

    /// Split off an independent child stream (used to give each model its own
    /// stream while keeping the experiment seed single-valued).
    pub fn fork(&mut self) -> TensorRng {
        TensorRng { rng: self.rng.fork() }
    }

    /// The raw generator state, for crash-safe training checkpoints: a
    /// resumed run restores this and replays the exact random stream the
    /// uninterrupted run would have consumed.
    pub fn state(&self) -> [u64; 4] {
        self.rng.state()
    }

    /// Rebuild from a [`TensorRng::state`] snapshot.
    pub fn from_state(state: [u64; 4]) -> TensorRng {
        TensorRng { rng: Rng::from_state(state) }
    }

    /// Uniform sample in `[lo, hi)`.
    pub fn uniform(&mut self, lo: f32, hi: f32) -> f32 {
        self.rng.range_f32(lo, hi)
    }

    /// Uniform integer in `[0, n)`.
    pub fn index(&mut self, n: usize) -> usize {
        self.rng.index(n)
    }

    /// Standard-normal sample (Box–Muller).
    pub fn normal(&mut self) -> f32 {
        self.rng.normal_f32()
    }

    /// Bernoulli trial with success probability `p` (clamped to `[0,1]`).
    pub fn bernoulli(&mut self, p: f32) -> bool {
        self.rng.bernoulli(p as f64)
    }

    /// `rows x cols` tensor with i.i.d. `U[lo, hi)` entries.
    pub fn uniform_tensor(&mut self, rows: usize, cols: usize, lo: f32, hi: f32) -> Tensor {
        let data = (0..rows * cols).map(|_| self.rng.range_f32(lo, hi)).collect();
        Tensor::from_vec(rows, cols, data).expect("uniform_tensor: internal size")
    }

    /// `rows x cols` tensor with i.i.d. `N(mean, std²)` entries.
    pub fn normal_tensor(&mut self, rows: usize, cols: usize, mean: f32, std: f32) -> Tensor {
        let data = (0..rows * cols).map(|_| mean + std * self.normal()).collect();
        Tensor::from_vec(rows, cols, data).expect("normal_tensor: internal size")
    }

    /// Glorot/Xavier uniform initializer, the standard choice for GCN weight
    /// matrices (Kipf & Welling's reference implementation uses it).
    pub fn glorot_uniform(&mut self, rows: usize, cols: usize) -> Tensor {
        let limit = (6.0 / (rows + cols) as f32).sqrt();
        self.uniform_tensor(rows, cols, -limit, limit)
    }

    /// 0/1 mask where each entry is 1 with probability `keep`, scaled by
    /// `1/keep` (inverted dropout).
    pub fn dropout_mask(&mut self, rows: usize, cols: usize, keep: f32) -> Tensor {
        assert!(
            keep > 0.0 && keep <= 1.0,
            "dropout_mask: keep probability {keep} outside (0, 1]"
        );
        let scale = 1.0 / keep;
        let data = (0..rows * cols)
            .map(|_| if self.rng.next_f32() < keep { scale } else { 0.0 })
            .collect();
        Tensor::from_vec(rows, cols, data).expect("dropout_mask: internal size")
    }

    /// Fisher–Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        self.rng.shuffle(xs);
    }

    /// Sample `k` distinct indices from `[0, n)` (k ≤ n), in random order.
    pub fn sample_indices(&mut self, n: usize, k: usize) -> Vec<usize> {
        self.rng.sample_indices(n, k)
    }

    /// Raw access to the underlying generator for callers needing
    /// distributions not wrapped here.
    pub fn raw(&mut self) -> &mut Rng {
        &mut self.rng
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeding_is_deterministic() {
        let mut a = TensorRng::seed_from_u64(7);
        let mut b = TensorRng::seed_from_u64(7);
        assert_eq!(
            a.uniform_tensor(3, 3, -1.0, 1.0),
            b.uniform_tensor(3, 3, -1.0, 1.0)
        );
    }

    #[test]
    fn state_snapshot_resumes_the_stream() {
        let mut a = TensorRng::seed_from_u64(42);
        let _ = a.uniform_tensor(4, 4, -1.0, 1.0); // advance mid-stream
        let mut b = TensorRng::from_state(a.state());
        assert_eq!(
            a.normal_tensor(3, 3, 0.0, 1.0),
            b.normal_tensor(3, 3, 0.0, 1.0)
        );
    }

    #[test]
    fn forked_streams_differ() {
        let mut a = TensorRng::seed_from_u64(7);
        let t1 = a.fork().uniform_tensor(2, 2, 0.0, 1.0);
        let t2 = a.fork().uniform_tensor(2, 2, 0.0, 1.0);
        assert_ne!(t1, t2);
    }

    #[test]
    fn glorot_respects_limit() {
        let mut rng = TensorRng::seed_from_u64(1);
        let t = rng.glorot_uniform(50, 70);
        let limit = (6.0 / 120.0f32).sqrt();
        assert!(t.max() <= limit && t.min() >= -limit);
    }

    #[test]
    fn normal_tensor_moments() {
        let mut rng = TensorRng::seed_from_u64(2);
        let t = rng.normal_tensor(200, 200, 1.0, 2.0);
        assert!((t.mean() - 1.0).abs() < 0.05);
        let var = t.sub(&Tensor::full(200, 200, t.mean())).sqr().mean();
        assert!((var.sqrt() - 2.0).abs() < 0.05);
    }

    #[test]
    fn dropout_mask_is_inverted() {
        let mut rng = TensorRng::seed_from_u64(3);
        let m = rng.dropout_mask(100, 100, 0.8);
        // Non-zero entries carry the 1/keep scale...
        assert!(m.as_slice().iter().all(|&v| v == 0.0 || (v - 1.25).abs() < 1e-6));
        // ...and the mask mean stays close to 1 so expectations are unbiased.
        assert!((m.mean() - 1.0).abs() < 0.05);
    }

    #[test]
    fn sample_indices_distinct() {
        let mut rng = TensorRng::seed_from_u64(4);
        let s = rng.sample_indices(100, 30);
        assert_eq!(s.len(), 30);
        let mut sorted = s.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 30, "indices must be distinct");
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = TensorRng::seed_from_u64(5);
        let mut xs: Vec<usize> = (0..50).collect();
        rng.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(xs, (0..50).collect::<Vec<_>>());
    }
}
