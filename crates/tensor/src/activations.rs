//! Nonlinearities and the numerically-stable row-wise softmax family used by
//! Eq (2) of the paper (`softmax` applied row-wise over class logits).
//!
//! The element-wise nonlinearities inherit chunk-parallelism from
//! [`Tensor::map`]; the softmax family is row-independent, so it fans rows
//! out in fixed chunks — per-row arithmetic is untouched, keeping the bits
//! identical at any thread count.

use crate::{par_row_chunk, Tensor};

impl Tensor {
    /// `max(0, x)` element-wise.
    pub fn relu(&self) -> Tensor {
        self.map(|v| v.max(0.0))
    }

    /// Leaky ReLU with the given negative slope.
    pub fn leaky_relu(&self, slope: f32) -> Tensor {
        self.map(|v| if v >= 0.0 { v } else { slope * v })
    }

    /// Logistic sigmoid.
    pub fn sigmoid(&self) -> Tensor {
        self.map(|v| 1.0 / (1.0 + (-v).exp()))
    }

    /// Hyperbolic tangent.
    pub fn tanh(&self) -> Tensor {
        self.map(f32::tanh)
    }

    /// Row-wise softmax, stabilized by subtracting the row max.
    pub fn softmax_rows(&self) -> Tensor {
        let mut out = self.clone();
        let cols = out.cols;
        if cols == 0 {
            return out;
        }
        lasagne_par::par_row_chunks_mut(&mut out.data, cols, par_row_chunk(cols), |_, chunk| {
            for row in chunk.chunks_mut(cols) {
                let m = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
                let mut s = 0.0;
                for v in row.iter_mut() {
                    *v = (*v - m).exp();
                    s += *v;
                }
                if s > 0.0 {
                    let inv = 1.0 / s;
                    for v in row.iter_mut() {
                        *v *= inv;
                    }
                }
            }
        });
        out
    }

    /// Row-wise log-softmax, stabilized by subtracting the row max.
    pub fn log_softmax_rows(&self) -> Tensor {
        let mut out = self.clone();
        let cols = out.cols;
        if cols == 0 {
            return out;
        }
        lasagne_par::par_row_chunks_mut(&mut out.data, cols, par_row_chunk(cols), |_, chunk| {
            for row in chunk.chunks_mut(cols) {
                let m = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
                let lse = m + row.iter().map(|v| (v - m).exp()).sum::<f32>().ln();
                for v in row.iter_mut() {
                    *v -= lse;
                }
            }
        });
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relu_clamps_negatives() {
        let t = Tensor::from_rows(&[&[-1.0, 0.0, 2.0]]);
        assert_eq!(t.relu().row(0), &[0.0, 0.0, 2.0]);
    }

    #[test]
    fn leaky_relu_scales_negatives() {
        let t = Tensor::from_rows(&[&[-2.0, 3.0]]);
        assert_eq!(t.leaky_relu(0.1).row(0), &[-0.2, 3.0]);
    }

    #[test]
    fn sigmoid_midpoint_and_limits() {
        let t = Tensor::from_rows(&[&[0.0, 20.0, -20.0]]);
        let s = t.sigmoid();
        assert!((s.get(0, 0) - 0.5).abs() < 1e-6);
        assert!(s.get(0, 1) > 0.999);
        assert!(s.get(0, 2) < 0.001);
    }

    #[test]
    fn softmax_rows_sum_to_one() {
        let t = Tensor::from_fn(3, 4, |i, j| (i * j) as f32 - 1.5);
        let s = t.softmax_rows();
        for i in 0..3 {
            let sum: f32 = s.row(i).iter().sum();
            assert!((sum - 1.0).abs() < 1e-6, "row {i} sums to {sum}");
        }
    }

    #[test]
    fn softmax_is_shift_invariant() {
        let t = Tensor::from_rows(&[&[1.0, 2.0, 3.0]]);
        let shifted = t.add_scalar(100.0);
        assert!(t.softmax_rows().approx_eq(&shifted.softmax_rows(), 1e-6));
    }

    #[test]
    fn softmax_survives_large_logits() {
        let t = Tensor::from_rows(&[&[1000.0, 0.0]]);
        let s = t.softmax_rows();
        assert!(!s.has_non_finite());
        assert!((s.get(0, 0) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn log_softmax_matches_log_of_softmax() {
        let t = Tensor::from_fn(2, 5, |i, j| (j as f32 - i as f32) * 0.7);
        let a = t.log_softmax_rows();
        let b = t.softmax_rows().map(f32::ln);
        assert!(a.approx_eq(&b, 1e-5));
    }
}
