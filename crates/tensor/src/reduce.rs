//! Reductions: full, per-row, and per-column sums/means/extrema, plus
//! row-wise argmax (classification decisions) and norms.
//!
//! Cross-element reductions (`sum`, `sum_rows`, `frobenius_norm`) always
//! reduce over the same fixed [`PAR_CHUNK`]-element chunk tree — partials
//! per chunk, folded in chunk order — so the float result is bitwise
//! identical whether the partials were computed by one thread or eight.
//! Per-row reductions (`sum_cols`, `row_sq_norms`, `argmax_rows`) are
//! independent per output element and just fan rows out. `max`/`min` and
//! `has_non_finite` stay serial: the first two are order-exact anyway, the
//! last wants its early exit.

use crate::{par_row_chunk, Tensor, PAR_CHUNK};

impl Tensor {
    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        let data = &self.data;
        lasagne_par::parallel_map_chunks(data.len(), PAR_CHUNK, |_, r| {
            data[r].iter().sum::<f32>()
        })
        .into_iter()
        .fold(0.0, |acc, p| acc + p)
    }

    /// Mean of all elements (0.0 for an empty tensor).
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f32
        }
    }

    /// Per-column sums as a `1 x D` row vector.
    pub fn sum_rows(&self) -> Tensor {
        let mut out = Tensor::zeros(1, self.cols);
        if self.cols == 0 {
            return out;
        }
        let cols = self.cols;
        let data = &self.data;
        let partials =
            lasagne_par::parallel_map_chunks(self.rows, par_row_chunk(cols), |_, r| {
                let mut p = vec![0.0f32; cols];
                for row in data[r.start * cols..r.end * cols].chunks(cols) {
                    for (o, &v) in p.iter_mut().zip(row) {
                        *o += v;
                    }
                }
                p
            });
        for p in partials {
            for (o, v) in out.data.iter_mut().zip(p) {
                *o += v;
            }
        }
        out
    }

    /// Per-row sums as an `N x 1` column vector.
    pub fn sum_cols(&self) -> Tensor {
        let mut out = Tensor::zeros(self.rows, 1);
        let cols = self.cols;
        let data = &self.data;
        lasagne_par::par_row_chunks_mut(&mut out.data, 1, par_row_chunk(cols), |i0, chunk| {
            for (r, o) in chunk.iter_mut().enumerate() {
                *o = data[(i0 + r) * cols..(i0 + r + 1) * cols].iter().sum();
            }
        });
        out
    }

    /// Per-column means as a `1 x D` row vector.
    pub fn mean_rows(&self) -> Tensor {
        let mut s = self.sum_rows();
        if self.rows > 0 {
            s.scale_assign(1.0 / self.rows as f32);
        }
        s
    }

    /// Per-row means as an `N x 1` column vector.
    pub fn mean_cols(&self) -> Tensor {
        let mut s = self.sum_cols();
        if self.cols > 0 {
            s.scale_assign(1.0 / self.cols as f32);
        }
        s
    }

    /// Largest element (NaN-free input assumed); `-inf` for empty tensors.
    pub fn max(&self) -> f32 {
        self.data.iter().copied().fold(f32::NEG_INFINITY, f32::max)
    }

    /// Smallest element; `+inf` for empty tensors.
    pub fn min(&self) -> f32 {
        self.data.iter().copied().fold(f32::INFINITY, f32::min)
    }

    /// Index of the largest element in each row (first one wins on ties).
    pub fn argmax_rows(&self) -> Vec<usize> {
        let mut out = vec![0usize; self.rows];
        if self.cols == 0 {
            return out;
        }
        let cols = self.cols;
        let data = &self.data;
        lasagne_par::par_row_chunks_mut(&mut out, 1, par_row_chunk(cols), |i0, chunk| {
            for (r, o) in chunk.iter_mut().enumerate() {
                let row = &data[(i0 + r) * cols..(i0 + r + 1) * cols];
                let mut best = 0;
                for (j, &v) in row.iter().enumerate() {
                    if v > row[best] {
                        best = j;
                    }
                }
                *o = best;
            }
        });
        out
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f32 {
        let data = &self.data;
        lasagne_par::parallel_map_chunks(data.len(), PAR_CHUNK, |_, r| {
            data[r].iter().map(|v| v * v).sum::<f32>()
        })
        .into_iter()
        .fold(0.0, |acc, p| acc + p)
        .sqrt()
    }

    /// True if any element is NaN or ±Inf.
    ///
    /// Divergence guardrails call this once per optimization step on every
    /// gradient, so the scan must cost less than a full `is_finite` pass in
    /// the overwhelmingly common all-finite case: each 64-element chunk is
    /// folded through `v * 0.0` (exactly `±0.0` for finite `v`, NaN for
    /// NaN/±Inf), which auto-vectorizes, and the scan exits on the first
    /// poisoned chunk.
    pub fn has_non_finite(&self) -> bool {
        self.data.chunks(64).any(|chunk| {
            // NaN != 0.0 is true, ±0.0 != 0.0 is false — one compare covers
            // both the clean and the poisoned outcome.
            let probe: f32 = chunk.iter().map(|&v| v * 0.0).sum();
            probe != 0.0
        })
    }

    /// Squared L2 norm of each row, as an `N x 1` column vector.
    pub fn row_sq_norms(&self) -> Tensor {
        let mut out = Tensor::zeros(self.rows, 1);
        let cols = self.cols;
        let data = &self.data;
        lasagne_par::par_row_chunks_mut(&mut out.data, 1, par_row_chunk(cols), |i0, chunk| {
            for (r, o) in chunk.iter_mut().enumerate() {
                *o = data[(i0 + r) * cols..(i0 + r + 1) * cols]
                    .iter()
                    .map(|v| v * v)
                    .sum();
            }
        });
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Tensor {
        Tensor::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]])
    }

    #[test]
    fn full_reductions() {
        assert_eq!(sample().sum(), 21.0);
        assert_eq!(sample().mean(), 3.5);
        assert_eq!(sample().max(), 6.0);
        assert_eq!(sample().min(), 1.0);
    }

    #[test]
    fn axis_sums() {
        assert_eq!(sample().sum_rows().row(0), &[5.0, 7.0, 9.0]);
        assert_eq!(sample().sum_cols().col(0), vec![6.0, 15.0]);
        assert_eq!(sample().mean_rows().row(0), &[2.5, 3.5, 4.5]);
        assert_eq!(sample().mean_cols().col(0), vec![2.0, 5.0]);
    }

    #[test]
    fn argmax_first_wins_on_tie() {
        let t = Tensor::from_rows(&[&[1.0, 3.0, 3.0], &[0.0, -1.0, -2.0]]);
        assert_eq!(t.argmax_rows(), vec![1, 0]);
    }

    #[test]
    fn norms() {
        let t = Tensor::from_rows(&[&[3.0, 4.0]]);
        assert_eq!(t.frobenius_norm(), 5.0);
        assert_eq!(t.row_sq_norms().get(0, 0), 25.0);
    }

    #[test]
    fn has_non_finite_finds_poison_anywhere() {
        let mut t = Tensor::zeros(3, 100);
        assert!(!t.has_non_finite());
        for (i, bad) in [f32::NAN, f32::INFINITY, f32::NEG_INFINITY].iter().enumerate() {
            let mut u = t.clone();
            // Place the poison off the chunk boundary in each case.
            u.set(i, 63 + i, *bad);
            assert!(u.has_non_finite(), "case {i} missed {bad}");
        }
        // Large-but-finite values (whose chunk sum could overflow naïvely)
        // must not false-positive: v * 0.0 is exactly 0.0 for any finite v.
        t.fill(f32::MAX);
        assert!(!t.has_non_finite());
        // Negative zeros fold to -0.0 == 0.0.
        t.fill(-0.0);
        assert!(!t.has_non_finite());
        assert!(!Tensor::zeros(0, 0).has_non_finite());
    }

    #[test]
    fn empty_tensor_reductions_are_safe() {
        let t = Tensor::zeros(0, 3);
        assert_eq!(t.sum(), 0.0);
        assert_eq!(t.mean(), 0.0);
        assert_eq!(t.sum_rows().shape(), (1, 3));
    }
}
