//! Dense row-major 2-D `f32` tensors and the numeric kernels every layer of
//! the Lasagne stack computes on.
//!
//! The crate is deliberately small and dependency-free (randomness comes
//! from the in-workspace `lasagne-testkit` PRNG): it is the substitute for a BLAS/ndarray stack in this
//! offline reproduction. Kernels are written so the hot inner loops are
//! contiguous-slice iterations that LLVM auto-vectorizes.
//!
//! Shape errors are programmer errors, so mismatched shapes panic with a
//! message naming the operation and both shapes; constructors that take
//! user-provided buffers return [`TensorError`] instead.
//!
//! # Example
//! ```
//! use lasagne_tensor::Tensor;
//! let a = Tensor::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
//! let b = Tensor::eye(2);
//! assert_eq!(a.matmul(&b), a);
//! assert_eq!(a.sum(), 10.0);
//! ```

mod activations;
mod arith;
mod broadcast;
mod init;
mod matmul;
mod reduce;
mod tensor;

pub use init::TensorRng;
pub use tensor::{Tensor, TensorError};

/// Fixed chunk size (in `f32` elements, or in flops for the matmul row
/// partitioner) shared by every parallel kernel in this crate. One constant
/// everywhere keeps the determinism contract auditable: chunk boundaries
/// are a function of the tensor shape and this constant only — never of the
/// thread count (`lasagne-par` docs, DESIGN.md §8).
pub(crate) const PAR_CHUNK: usize = 1 << 16;

/// Rows per parallel chunk for a kernel doing ≈`work_per_row` flops per
/// output row: targets [`PAR_CHUNK`] flops per chunk so small tensors stay
/// on the inline path and big ones split finely enough to balance.
pub(crate) fn par_row_chunk(work_per_row: usize) -> usize {
    (PAR_CHUNK / work_per_row.max(1)).max(1)
}

/// Convenience result alias for fallible tensor constructors.
pub type Result<T> = std::result::Result<T, TensorError>;
