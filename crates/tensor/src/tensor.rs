//! The core [`Tensor`] type: a dense row-major 2-D `f32` matrix.

use std::fmt;

/// Error type for fallible tensor constructors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TensorError {
    /// The provided buffer length does not match `rows * cols`.
    LengthMismatch {
        /// Requested number of rows.
        rows: usize,
        /// Requested number of columns.
        cols: usize,
        /// Length of the provided buffer.
        len: usize,
    },
    /// Rows of a jagged input had inconsistent lengths.
    Jagged {
        /// Length of the first row.
        expected: usize,
        /// Index of the offending row.
        row: usize,
        /// Length of the offending row.
        got: usize,
    },
}

impl fmt::Display for TensorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TensorError::LengthMismatch { rows, cols, len } => write!(
                f,
                "buffer of length {len} cannot form a {rows}x{cols} tensor"
            ),
            TensorError::Jagged { expected, row, got } => write!(
                f,
                "row {row} has length {got}, expected {expected} (jagged input)"
            ),
        }
    }
}

impl std::error::Error for TensorError {}

/// Dense row-major 2-D `f32` matrix.
///
/// Everything in the Lasagne stack — node features, hidden representations,
/// weight matrices, per-node aggregation coefficients — is a `Tensor`.
#[derive(Clone, PartialEq)]
pub struct Tensor {
    pub(crate) rows: usize,
    pub(crate) cols: usize,
    pub(crate) data: Vec<f32>,
}

impl Tensor {
    /// A `rows x cols` tensor filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Tensor {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// A `rows x cols` tensor filled with ones.
    pub fn ones(rows: usize, cols: usize) -> Self {
        Self::full(rows, cols, 1.0)
    }

    /// A `rows x cols` tensor filled with `value`.
    pub fn full(rows: usize, cols: usize, value: f32) -> Self {
        Tensor {
            rows,
            cols,
            data: vec![value; rows * cols],
        }
    }

    /// The `n x n` identity matrix.
    pub fn eye(n: usize) -> Self {
        let mut t = Self::zeros(n, n);
        for i in 0..n {
            t.data[i * n + i] = 1.0;
        }
        t
    }

    /// Build from a row-major buffer. Fails if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> crate::Result<Self> {
        if data.len() != rows * cols {
            return Err(TensorError::LengthMismatch {
                rows,
                cols,
                len: data.len(),
            });
        }
        Ok(Tensor { rows, cols, data })
    }

    /// Build from row slices; panics on jagged input (use
    /// [`Tensor::try_from_rows`] for a fallible version).
    pub fn from_rows(rows: &[&[f32]]) -> Self {
        Self::try_from_rows(rows).expect("Tensor::from_rows: jagged input")
    }

    /// Fallible version of [`Tensor::from_rows`].
    pub fn try_from_rows(rows: &[&[f32]]) -> crate::Result<Self> {
        let r = rows.len();
        let c = rows.first().map_or(0, |r| r.len());
        let mut data = Vec::with_capacity(r * c);
        for (i, row) in rows.iter().enumerate() {
            if row.len() != c {
                return Err(TensorError::Jagged {
                    expected: c,
                    row: i,
                    got: row.len(),
                });
            }
            data.extend_from_slice(row);
        }
        Ok(Tensor { rows: r, cols: c, data })
    }

    /// Build by evaluating `f(row, col)` at every position.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f32) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for i in 0..rows {
            for j in 0..cols {
                data.push(f(i, j));
            }
        }
        Tensor { rows, cols, data }
    }

    /// A `1 x n` row vector from a slice.
    pub fn row_vector(v: &[f32]) -> Self {
        Tensor {
            rows: 1,
            cols: v.len(),
            data: v.to_vec(),
        }
    }

    /// An `n x 1` column vector from a slice.
    pub fn col_vector(v: &[f32]) -> Self {
        Tensor {
            rows: v.len(),
            cols: 1,
            data: v.to_vec(),
        }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)`.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the tensor holds no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Read one element; panics when out of bounds.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f32 {
        debug_assert!(i < self.rows && j < self.cols);
        self.data[i * self.cols + j]
    }

    /// Write one element; panics when out of bounds.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, v: f32) {
        debug_assert!(i < self.rows && j < self.cols);
        self.data[i * self.cols + j] = v;
    }

    /// Row `i` as a contiguous slice.
    #[inline]
    pub fn row(&self, i: usize) -> &[f32] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Row `i` as a mutable contiguous slice.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [f32] {
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// The whole row-major buffer.
    #[inline]
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// The whole row-major buffer, mutable.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consume and return the underlying buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// A new tensor holding the selected rows, in the given order
    /// (duplicates allowed — this is a gather, not a slice).
    pub fn gather_rows(&self, idx: &[usize]) -> Tensor {
        let mut out = Tensor::zeros(idx.len(), self.cols);
        for (dst, &src) in idx.iter().enumerate() {
            assert!(
                src < self.rows,
                "gather_rows: index {src} out of range for {} rows",
                self.rows
            );
            out.row_mut(dst).copy_from_slice(self.row(src));
        }
        out
    }

    /// A new tensor holding columns `[lo, hi)`.
    pub fn slice_cols(&self, lo: usize, hi: usize) -> Tensor {
        assert!(
            lo <= hi && hi <= self.cols,
            "slice_cols: [{lo},{hi}) out of range for {} cols",
            self.cols
        );
        let w = hi - lo;
        let mut out = Tensor::zeros(self.rows, w);
        for i in 0..self.rows {
            out.row_mut(i).copy_from_slice(&self.row(i)[lo..hi]);
        }
        out
    }

    /// Column `j` collected into a fresh `Vec`.
    pub fn col(&self, j: usize) -> Vec<f32> {
        assert!(j < self.cols, "col: index {j} out of range");
        (0..self.rows).map(|i| self.get(i, j)).collect()
    }

    /// The transpose.
    pub fn transpose(&self) -> Tensor {
        let mut out = Tensor::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                out.data[j * self.rows + i] = self.data[i * self.cols + j];
            }
        }
        out
    }

    /// True when every pairwise difference is at most `tol` (and shapes match).
    pub fn approx_eq(&self, other: &Tensor, tol: f32) -> bool {
        self.shape() == other.shape()
            && self
                .data
                .iter()
                .zip(&other.data)
                .all(|(a, b)| (a - b).abs() <= tol)
    }

    /// Largest absolute difference between two same-shaped tensors.
    pub fn max_abs_diff(&self, other: &Tensor) -> f32 {
        assert_eq!(self.shape(), other.shape(), "max_abs_diff: shape mismatch");
        self.data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f32::max)
    }
}

impl fmt::Debug for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Tensor {}x{} [", self.rows, self.cols)?;
        let show_rows = self.rows.min(6);
        for i in 0..show_rows {
            let row = self.row(i);
            let shown: Vec<String> = row
                .iter()
                .take(8)
                .map(|v| format!("{v:.4}"))
                .collect();
            let ell = if self.cols > 8 { ", …" } else { "" };
            writeln!(f, "  [{}{}]", shown.join(", "), ell)?;
        }
        if self.rows > show_rows {
            writeln!(f, "  …")?;
        }
        write!(f, "]")
    }
}

impl std::ops::Index<(usize, usize)> for Tensor {
    type Output = f32;
    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &f32 {
        &self.data[i * self.cols + j]
    }
}

impl std::ops::IndexMut<(usize, usize)> for Tensor {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f32 {
        let c = self.cols;
        &mut self.data[i * c + j]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_have_expected_shapes() {
        assert_eq!(Tensor::zeros(3, 4).shape(), (3, 4));
        assert_eq!(Tensor::ones(2, 2).sum(), 4.0);
        assert_eq!(Tensor::full(2, 3, 5.0).get(1, 2), 5.0);
        let e = Tensor::eye(3);
        assert_eq!(e.get(1, 1), 1.0);
        assert_eq!(e.get(0, 1), 0.0);
    }

    #[test]
    fn from_vec_checks_length() {
        assert!(Tensor::from_vec(2, 2, vec![1.0; 4]).is_ok());
        let err = Tensor::from_vec(2, 2, vec![1.0; 3]).unwrap_err();
        assert!(matches!(err, TensorError::LengthMismatch { len: 3, .. }));
    }

    #[test]
    fn from_rows_rejects_jagged() {
        let err = Tensor::try_from_rows(&[&[1.0, 2.0], &[3.0]]).unwrap_err();
        assert!(matches!(err, TensorError::Jagged { row: 1, got: 1, .. }));
    }

    #[test]
    fn transpose_is_involution() {
        let t = Tensor::from_fn(3, 5, |i, j| (i * 10 + j) as f32);
        assert_eq!(t.transpose().transpose(), t);
        assert_eq!(t.transpose().get(4, 2), t.get(2, 4));
    }

    #[test]
    fn gather_rows_selects_and_duplicates() {
        let t = Tensor::from_fn(4, 2, |i, _| i as f32);
        let g = t.gather_rows(&[3, 0, 3]);
        assert_eq!(g.col(0), vec![3.0, 0.0, 3.0]);
    }

    #[test]
    fn slice_cols_takes_contiguous_range() {
        let t = Tensor::from_fn(2, 4, |_, j| j as f32);
        let s = t.slice_cols(1, 3);
        assert_eq!(s.shape(), (2, 2));
        assert_eq!(s.row(0), &[1.0, 2.0]);
    }

    #[test]
    fn indexing_round_trips() {
        let mut t = Tensor::zeros(2, 2);
        t[(1, 0)] = 7.0;
        assert_eq!(t[(1, 0)], 7.0);
        assert_eq!(t.get(1, 0), 7.0);
    }

    #[test]
    fn approx_eq_respects_tolerance() {
        let a = Tensor::full(2, 2, 1.0);
        let mut b = a.clone();
        b.set(0, 0, 1.0005);
        assert!(a.approx_eq(&b, 1e-3));
        assert!(!a.approx_eq(&b, 1e-4));
    }

    #[test]
    fn non_finite_detection() {
        let mut t = Tensor::zeros(1, 2);
        assert!(!t.has_non_finite());
        t.set(0, 1, f32::NAN);
        assert!(t.has_non_finite());
    }
}
