//! Element-wise arithmetic: out-of-place binary ops, in-place accumulation
//! variants used by the autograd tape, and scalar ops.
//!
//! Every kernel here is element-independent, so all of them chunk the flat
//! buffer into fixed [`crate::PAR_CHUNK`]-element spans on the
//! `lasagne-par` pool: small tensors collapse to one chunk (pure inline
//! execution), big ones — feature matrices, hidden activations, their
//! gradients — fan out, and the output bits never depend on the thread
//! count.

use crate::{Tensor, PAR_CHUNK};

macro_rules! binary_op {
    ($(#[$doc:meta])* $name:ident, $op:tt) => {
        $(#[$doc])*
        pub fn $name(&self, other: &Tensor) -> Tensor {
            assert_eq!(
                self.shape(),
                other.shape(),
                concat!(stringify!($name), ": {:?} vs {:?}"),
                self.shape(),
                other.shape()
            );
            let mut data = vec![0.0f32; self.data.len()];
            let (a, b) = (&self.data, &other.data);
            lasagne_par::par_row_chunks_mut(&mut data, 1, PAR_CHUNK, |i0, chunk| {
                let len = chunk.len();
                for (o, (x, y)) in chunk
                    .iter_mut()
                    .zip(a[i0..i0 + len].iter().zip(&b[i0..i0 + len]))
                {
                    *o = x $op y;
                }
            });
            Tensor { rows: self.rows, cols: self.cols, data }
        }
    };
}

impl Tensor {
    binary_op!(
        /// Element-wise sum.
        add, +
    );
    binary_op!(
        /// Element-wise difference.
        sub, -
    );
    binary_op!(
        /// Element-wise (Hadamard) product.
        mul, *
    );
    binary_op!(
        /// Element-wise quotient.
        div, /
    );

    /// `self += other`, in place.
    pub fn add_assign(&mut self, other: &Tensor) {
        assert_eq!(self.shape(), other.shape(), "add_assign: shape mismatch");
        let b = &other.data;
        lasagne_par::par_row_chunks_mut(&mut self.data, 1, PAR_CHUNK, |i0, chunk| {
            let len = chunk.len();
            for (a, &v) in chunk.iter_mut().zip(&b[i0..i0 + len]) {
                *a += v;
            }
        });
    }

    /// `self += alpha * other`, in place (axpy).
    pub fn add_scaled_assign(&mut self, alpha: f32, other: &Tensor) {
        assert_eq!(
            self.shape(),
            other.shape(),
            "add_scaled_assign: shape mismatch"
        );
        let b = &other.data;
        lasagne_par::par_row_chunks_mut(&mut self.data, 1, PAR_CHUNK, |i0, chunk| {
            let len = chunk.len();
            for (a, &v) in chunk.iter_mut().zip(&b[i0..i0 + len]) {
                *a += alpha * v;
            }
        });
    }

    /// `alpha * self`, out of place.
    pub fn scale(&self, alpha: f32) -> Tensor {
        self.map(|v| v * alpha)
    }

    /// `alpha * self`, in place.
    pub fn scale_assign(&mut self, alpha: f32) {
        self.map_assign(|v| v * alpha);
    }

    /// `self + alpha` element-wise.
    pub fn add_scalar(&self, alpha: f32) -> Tensor {
        self.map(|v| v + alpha)
    }

    /// Apply `f` to every element, out of place.
    pub fn map(&self, f: impl Fn(f32) -> f32 + Sync) -> Tensor {
        let mut data = vec![0.0f32; self.data.len()];
        let src = &self.data;
        lasagne_par::par_row_chunks_mut(&mut data, 1, PAR_CHUNK, |i0, chunk| {
            let len = chunk.len();
            for (o, &v) in chunk.iter_mut().zip(&src[i0..i0 + len]) {
                *o = f(v);
            }
        });
        Tensor { rows: self.rows, cols: self.cols, data }
    }

    /// Apply `f` to every element, in place.
    pub fn map_assign(&mut self, f: impl Fn(f32) -> f32 + Sync) {
        lasagne_par::par_row_chunks_mut(&mut self.data, 1, PAR_CHUNK, |_, chunk| {
            for v in chunk {
                *v = f(*v);
            }
        });
    }

    /// Element-wise square.
    pub fn sqr(&self) -> Tensor {
        self.map(|v| v * v)
    }

    /// Element-wise square root.
    pub fn sqrt(&self) -> Tensor {
        self.map(f32::sqrt)
    }

    /// Element-wise clamp into `[lo, hi]`.
    pub fn clamp(&self, lo: f32, hi: f32) -> Tensor {
        self.map(|v| v.clamp(lo, hi))
    }

    /// Fill every element with `value`.
    pub fn fill(&mut self, value: f32) {
        self.map_assign(|_| value);
    }

    /// Rescale in place so the Frobenius norm does not exceed `max_norm`
    /// (direction preserved); returns the norm *before* clipping. A no-op
    /// when already within bounds.
    pub fn clip_norm_(&mut self, max_norm: f32) -> f32 {
        assert!(max_norm > 0.0, "clip_norm_: max_norm {max_norm} must be positive");
        let norm = self.frobenius_norm();
        if norm > max_norm {
            self.scale_assign(max_norm / norm);
        }
        norm
    }

    /// Concatenate tensors side by side (same row count).
    pub fn concat_cols(parts: &[&Tensor]) -> Tensor {
        assert!(!parts.is_empty(), "concat_cols: empty input");
        let rows = parts[0].rows;
        for p in parts {
            assert_eq!(p.rows, rows, "concat_cols: row count mismatch");
        }
        let cols: usize = parts.iter().map(|p| p.cols).sum();
        let mut out = Tensor::zeros(rows, cols);
        for i in 0..rows {
            let dst = out.row_mut(i);
            let mut off = 0;
            for p in parts {
                dst[off..off + p.cols].copy_from_slice(p.row(i));
                off += p.cols;
            }
        }
        out
    }

    /// Stack tensors vertically (same column count).
    pub fn concat_rows(parts: &[&Tensor]) -> Tensor {
        assert!(!parts.is_empty(), "concat_rows: empty input");
        let cols = parts[0].cols;
        let mut data = Vec::with_capacity(parts.iter().map(|p| p.data.len()).sum());
        let mut rows = 0;
        for p in parts {
            assert_eq!(p.cols, cols, "concat_rows: column count mismatch");
            data.extend_from_slice(&p.data);
            rows += p.rows;
        }
        Tensor { rows, cols, data }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binary_ops_elementwise() {
        let a = Tensor::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Tensor::from_rows(&[&[4.0, 3.0], &[2.0, 1.0]]);
        assert_eq!(a.add(&b), Tensor::full(2, 2, 5.0));
        assert_eq!(a.sub(&b).row(0), &[-3.0, -1.0]);
        assert_eq!(a.mul(&b).row(1), &[6.0, 4.0]);
        assert_eq!(b.div(&a).row(0), &[4.0, 1.5]);
    }

    #[test]
    fn clip_norm_rescales_only_when_needed() {
        let mut t = Tensor::from_rows(&[&[3.0, 4.0]]); // norm 5
        let before = t.clip_norm_(1.0);
        assert_eq!(before, 5.0);
        assert!((t.frobenius_norm() - 1.0).abs() < 1e-6);
        // Direction preserved.
        assert!((t.get(0, 1) / t.get(0, 0) - 4.0 / 3.0).abs() < 1e-5);
        // Within bounds ⇒ untouched.
        let mut small = Tensor::from_rows(&[&[0.3, 0.4]]);
        let norm = small.clip_norm_(1.0);
        assert!((norm - 0.5).abs() < 1e-6);
        assert_eq!(small, Tensor::from_rows(&[&[0.3, 0.4]]));
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn clip_norm_rejects_nonpositive_bound() {
        Tensor::ones(1, 1).clip_norm_(0.0);
    }

    #[test]
    fn axpy_accumulates() {
        let mut g = Tensor::ones(2, 2);
        g.add_scaled_assign(0.5, &Tensor::full(2, 2, 4.0));
        assert_eq!(g, Tensor::full(2, 2, 3.0));
    }

    #[test]
    fn scale_and_map() {
        let a = Tensor::from_rows(&[&[1.0, -2.0]]);
        assert_eq!(a.scale(2.0).row(0), &[2.0, -4.0]);
        assert_eq!(a.map(f32::abs).row(0), &[1.0, 2.0]);
        assert_eq!(a.sqr().row(0), &[1.0, 4.0]);
        assert_eq!(a.clamp(-1.0, 1.0).row(0), &[1.0, -1.0]);
        assert_eq!(a.add_scalar(1.0).row(0), &[2.0, -1.0]);
    }

    #[test]
    fn concat_cols_preserves_rows() {
        let a = Tensor::from_fn(2, 2, |i, j| (i * 2 + j) as f32);
        let b = Tensor::full(2, 1, 9.0);
        let c = Tensor::concat_cols(&[&a, &b]);
        assert_eq!(c.shape(), (2, 3));
        assert_eq!(c.row(0), &[0.0, 1.0, 9.0]);
        assert_eq!(c.row(1), &[2.0, 3.0, 9.0]);
    }

    #[test]
    fn concat_rows_stacks() {
        let a = Tensor::ones(1, 3);
        let b = Tensor::zeros(2, 3);
        let c = Tensor::concat_rows(&[&a, &b]);
        assert_eq!(c.shape(), (3, 3));
        assert_eq!(c.row(0), &[1.0, 1.0, 1.0]);
        assert_eq!(c.row(2), &[0.0, 0.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn add_assign_rejects_shape_mismatch() {
        Tensor::ones(2, 2).add_assign(&Tensor::ones(2, 3));
    }
}
