//! Dense matrix products.
//!
//! Three kernels cover forward and backward passes without materializing
//! transposes:
//! * `matmul`    — `C = A · B`
//! * `matmul_tn` — `C = Aᵀ · B` (weight gradients)
//! * `matmul_nt` — `C = A · Bᵀ` (input gradients)
//!
//! All use orderings whose inner loop runs over contiguous slices so LLVM
//! vectorizes them, and all three partition their *output rows* into fixed
//! chunks executed on the `lasagne-par` pool — each chunk writes a disjoint
//! row range and accumulates in the serial order, so results are bitwise
//! identical at any thread count (DESIGN.md §8).
//!
//! `matmul` and `matmul_tn` skip zero multipliers, which is a large win on
//! the sparse one-hot-ish feature matrices GNN inputs tend to be — but the
//! branch costs real time on dense hidden-layer activations where it never
//! fires, so both kernels gate it on a cheap strided density probe of the
//! left operand.

use crate::{par_row_chunk, Tensor};

/// `o += a * b` over a contiguous row — the vectorized inner loop of all
/// three kernels.
#[inline]
fn axpy(o: &mut [f32], a: f32, b: &[f32]) {
    for (o, &b) in o.iter_mut().zip(b) {
        *o += a * b;
    }
}

impl Tensor {
    /// Deterministic strided sample of up to 64 elements: does this matrix
    /// hold enough exact zeros (≥ ¼ of the sample) that the zero-skip
    /// branch in the matmul inner loops pays for itself? One-hot-ish
    /// feature matrices say yes; dense activations say no.
    fn looks_sparse(&self) -> bool {
        const SAMPLES: usize = 64;
        let len = self.data.len();
        if len == 0 {
            return false;
        }
        let step = (len / SAMPLES).max(1);
        let mut zeros = 0usize;
        let mut total = 0usize;
        let mut i = 0;
        while i < len && total < SAMPLES {
            if self.data[i] == 0.0 {
                zeros += 1;
            }
            total += 1;
            i += step;
        }
        zeros * 4 >= total
    }

    /// `self · other`. Panics if `self.cols != other.rows`.
    pub fn matmul(&self, other: &Tensor) -> Tensor {
        assert_eq!(
            self.cols, other.rows,
            "matmul: {}x{} · {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        let (n, k, m) = (self.rows, self.cols, other.cols);
        let mut out = Tensor::zeros(n, m);
        if n == 0 || m == 0 {
            return out;
        }
        lasagne_obs::span!("matmul");
        lasagne_obs::counter_add("matmul.flops", 2 * (n * k * m) as u64);
        let skip = self.looks_sparse();
        let (a, b) = (&self.data, &other.data);
        lasagne_par::par_row_chunks_mut(&mut out.data, m, par_row_chunk(k * m), |i0, chunk| {
            for (r, o_row) in chunk.chunks_mut(m).enumerate() {
                let i = i0 + r;
                let a_row = &a[i * k..(i + 1) * k];
                if skip {
                    for (kk, &aik) in a_row.iter().enumerate() {
                        if aik == 0.0 {
                            continue;
                        }
                        axpy(o_row, aik, &b[kk * m..(kk + 1) * m]);
                    }
                } else {
                    for (kk, &aik) in a_row.iter().enumerate() {
                        axpy(o_row, aik, &b[kk * m..(kk + 1) * m]);
                    }
                }
            }
        });
        out
    }

    /// The selected `rows` of `self · other`, bitwise identical to the same
    /// rows of [`Tensor::matmul`]. The zero-skip density probe runs on the
    /// **full** left operand, not the gathered rows — the branch choice (and
    /// therefore the accumulation order and bits) must match what a full
    /// product would do, which is the contract the streaming engine's
    /// row-sliced re-evaluation relies on (DESIGN.md §11). Serial: dirty
    /// row sets are tiny compared to the full product.
    pub fn matmul_rows(&self, other: &Tensor, rows: &[usize]) -> Tensor {
        assert_eq!(
            self.cols, other.rows,
            "matmul_rows: {}x{} · {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        let (k, m) = (self.cols, other.cols);
        let mut out = Tensor::zeros(rows.len(), m);
        if rows.is_empty() || m == 0 {
            return out;
        }
        let skip = self.looks_sparse();
        let (a, b) = (&self.data, &other.data);
        for (r, &i) in rows.iter().enumerate() {
            assert!(i < self.rows, "matmul_rows: row {i} out of range");
            let a_row = &a[i * k..(i + 1) * k];
            let o_row = &mut out.data[r * m..(r + 1) * m];
            if skip {
                for (kk, &aik) in a_row.iter().enumerate() {
                    if aik == 0.0 {
                        continue;
                    }
                    axpy(o_row, aik, &b[kk * m..(kk + 1) * m]);
                }
            } else {
                for (kk, &aik) in a_row.iter().enumerate() {
                    axpy(o_row, aik, &b[kk * m..(kk + 1) * m]);
                }
            }
        }
        out
    }

    /// `selfᵀ · other` without forming the transpose.
    /// Panics if `self.rows != other.rows`.
    ///
    /// Gathers over *output* rows (columns of `self`) in blocks so the
    /// kernel row-partitions cleanly for the pool: each block streams
    /// `self` row-contiguously and keeps its output block cache-hot, and
    /// each output element still accumulates over input rows in ascending
    /// order — exactly the serial scatter order.
    pub fn matmul_tn(&self, other: &Tensor) -> Tensor {
        assert_eq!(
            self.rows, other.rows,
            "matmul_tn: ({}x{})ᵀ · {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        let (n, k, m) = (self.rows, self.cols, other.cols);
        let mut out = Tensor::zeros(k, m);
        if n == 0 || k == 0 || m == 0 {
            return out;
        }
        lasagne_obs::span!("matmul_tn");
        lasagne_obs::counter_add("matmul.flops", 2 * (n * k * m) as u64);
        let skip = self.looks_sparse();
        let (a, b) = (&self.data, &other.data);
        // ≤ 16 column blocks of ≥ 16 columns: bounds the extra streaming of
        // `other` (once per block) while exposing enough chunks to balance.
        let chunk_rows = k.div_ceil(16).max(16);
        lasagne_par::par_row_chunks_mut(&mut out.data, m, chunk_rows, |i0, chunk| {
            let cw = chunk.len() / m;
            for row in 0..n {
                let a_seg = &a[row * k + i0..row * k + i0 + cw];
                let b_row = &b[row * m..(row + 1) * m];
                if skip {
                    for (r, &av) in a_seg.iter().enumerate() {
                        if av == 0.0 {
                            continue;
                        }
                        axpy(&mut chunk[r * m..(r + 1) * m], av, b_row);
                    }
                } else {
                    for (r, &av) in a_seg.iter().enumerate() {
                        axpy(&mut chunk[r * m..(r + 1) * m], av, b_row);
                    }
                }
            }
        });
        out
    }

    /// `self · otherᵀ` without forming the transpose.
    /// Panics if `self.cols != other.cols`.
    pub fn matmul_nt(&self, other: &Tensor) -> Tensor {
        assert_eq!(
            self.cols, other.cols,
            "matmul_nt: {}x{} · ({}x{})ᵀ",
            self.rows, self.cols, other.rows, other.cols
        );
        let (n, k, m) = (self.rows, self.cols, other.rows);
        let mut out = Tensor::zeros(n, m);
        if n == 0 || m == 0 {
            return out;
        }
        lasagne_obs::span!("matmul_nt");
        lasagne_obs::counter_add("matmul.flops", 2 * (n * k * m) as u64);
        let (a, b) = (&self.data, &other.data);
        lasagne_par::par_row_chunks_mut(&mut out.data, m, par_row_chunk(k * m), |i0, chunk| {
            for (r, o_row) in chunk.chunks_mut(m).enumerate() {
                let a_row = &a[(i0 + r) * k..(i0 + r + 1) * k];
                for (j, o) in o_row.iter_mut().enumerate() {
                    let b_row = &b[j * k..(j + 1) * k];
                    let mut acc = 0.0f32;
                    for (&x, &y) in a_row.iter().zip(b_row) {
                        acc += x * y;
                    }
                    *o = acc;
                }
            }
        });
        out
    }

    /// Dot product of two equally-shaped tensors viewed as flat vectors.
    pub fn dot(&self, other: &Tensor) -> f32 {
        assert_eq!(self.shape(), other.shape(), "dot: shape mismatch");
        self.data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| a * b)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(rows: &[&[f32]]) -> Tensor {
        Tensor::from_rows(rows)
    }

    #[test]
    fn matmul_known_product() {
        let a = t(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = t(&[&[5.0, 6.0], &[7.0, 8.0]]);
        assert_eq!(a.matmul(&b), t(&[&[19.0, 22.0], &[43.0, 50.0]]));
    }

    #[test]
    fn identity_is_neutral() {
        let a = Tensor::from_fn(3, 3, |i, j| (i + 2 * j) as f32);
        assert_eq!(a.matmul(&Tensor::eye(3)), a);
        assert_eq!(Tensor::eye(3).matmul(&a), a);
    }

    #[test]
    fn rectangular_shapes() {
        let a = Tensor::ones(2, 3);
        let b = Tensor::ones(3, 4);
        let c = a.matmul(&b);
        assert_eq!(c.shape(), (2, 4));
        assert!(c.approx_eq(&Tensor::full(2, 4, 3.0), 1e-6));
    }

    #[test]
    fn tn_equals_explicit_transpose() {
        let a = Tensor::from_fn(4, 3, |i, j| (i as f32 - j as f32) * 0.5);
        let b = Tensor::from_fn(4, 2, |i, j| (i * j) as f32 + 1.0);
        assert!(a.matmul_tn(&b).approx_eq(&a.transpose().matmul(&b), 1e-5));
    }

    #[test]
    fn tn_equals_explicit_transpose_beyond_one_block() {
        // > 16 columns exercises the block partitioner's interior bounds.
        let a = Tensor::from_fn(9, 37, |i, j| ((i * 37 + j) % 7) as f32 - 3.0);
        let b = Tensor::from_fn(9, 5, |i, j| (i as f32) * 0.3 - j as f32);
        assert!(a.matmul_tn(&b).approx_eq(&a.transpose().matmul(&b), 1e-4));
    }

    #[test]
    fn nt_equals_explicit_transpose() {
        let a = Tensor::from_fn(2, 5, |i, j| (i + j) as f32 * 0.25);
        let b = Tensor::from_fn(3, 5, |i, j| (i as f32) - 0.1 * j as f32);
        assert!(a.matmul_nt(&b).approx_eq(&a.matmul(&b.transpose()), 1e-5));
    }

    #[test]
    fn zero_skip_does_not_change_result() {
        // The probe sends ≥-¼-zeros matrices down the skip path and dense
        // ones down the no-branch path; both must match a naive triple
        // loop.
        let a = Tensor::from_fn(5, 5, |i, j| if (i + j) % 3 == 0 { 1.5 } else { 0.0 });
        let dense_a = Tensor::from_fn(5, 5, |i, j| if (i + j) % 3 == 0 { 1.5 } else { 7.0 });
        assert!(a.looks_sparse());
        assert!(!dense_a.looks_sparse());
        let b = Tensor::from_fn(5, 4, |i, j| (i * 4 + j) as f32);
        let reference = |l: &Tensor, r: &Tensor| {
            let mut out = Tensor::zeros(l.rows(), r.cols());
            for i in 0..l.rows() {
                for kk in 0..l.cols() {
                    for j in 0..r.cols() {
                        out[(i, j)] += l.get(i, kk) * r.get(kk, j);
                    }
                }
            }
            out
        };
        assert!(a.matmul(&b).approx_eq(&reference(&a, &b), 1e-6));
        assert!(dense_a.matmul(&b).approx_eq(&reference(&dense_a, &b), 1e-6));
    }

    #[test]
    fn density_probe_classifies_extremes() {
        assert!(Tensor::zeros(8, 8).looks_sparse());
        assert!(!Tensor::ones(8, 8).looks_sparse());
        assert!(!Tensor::zeros(0, 0).looks_sparse());
        // One-hot rows: exactly one nonzero in 16 columns.
        let onehot = Tensor::from_fn(32, 16, |i, j| if i % 16 == j { 1.0 } else { 0.0 });
        assert!(onehot.looks_sparse());
    }

    #[test]
    fn matmul_rows_is_bitwise_slice_of_matmul() {
        // Both probe branches: a sparse left operand (skip path) and a dense
        // one (no-branch path). Selected rows must match the full product
        // bit for bit, in arbitrary order and with repeats.
        let sparse_a = Tensor::from_fn(6, 5, |i, j| if (i + j) % 3 == 0 { 0.37 * (i + 1) as f32 } else { 0.0 });
        let dense_a = Tensor::from_fn(6, 5, |i, j| 0.11 * (i * 5 + j + 1) as f32);
        let b = Tensor::from_fn(5, 4, |i, j| ((i * 4 + j) as f32).sin());
        for a in [&sparse_a, &dense_a] {
            let full = a.matmul(&b);
            let rows = [4usize, 0, 4, 2];
            let part = a.matmul_rows(&b, &rows);
            assert_eq!(part.shape(), (4, 4));
            for (r, &i) in rows.iter().enumerate() {
                let got: Vec<u32> = part.row(r).iter().map(|v| v.to_bits()).collect();
                let want: Vec<u32> = full.row(i).iter().map(|v| v.to_bits()).collect();
                assert_eq!(got, want, "row {i}");
            }
        }
        assert_eq!(sparse_a.matmul_rows(&b, &[]).shape(), (0, 4));
    }

    #[test]
    fn dot_is_flat_inner_product() {
        let a = t(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = t(&[&[2.0, 0.5], &[1.0, 1.0]]);
        assert_eq!(a.dot(&b), 1.0 * 2.0 + 2.0 * 0.5 + 3.0 + 4.0);
    }

    #[test]
    #[should_panic(expected = "matmul")]
    fn mismatched_inner_dims_panic() {
        let _ = Tensor::ones(2, 3).matmul(&Tensor::ones(4, 2));
    }
}
