//! Dense matrix products.
//!
//! Three kernels cover forward and backward passes without materializing
//! transposes:
//! * `matmul`    — `C = A · B`
//! * `matmul_tn` — `C = Aᵀ · B` (weight gradients)
//! * `matmul_nt` — `C = A · Bᵀ` (input gradients)
//!
//! All three are register-blocked: the hot path is a fixed `MR×NR`
//! micro-kernel whose accumulator lives in a `[[f32; NR]; MR]` array and
//! whose inner loops run over contiguous slices with compile-time trip
//! counts, which is the shape LLVM's autovectorizer reliably lifts to SIMD
//! even at the portable x86-64 baseline. Edge tiles reuse the same
//! micro-kernel with runtime bounds (rare, cold). `matmul_packed_b` adds a
//! k-panel loop over a caller-packed right operand — the quantized serve
//! path dequantizes weight panels into it on the fly.
//!
//! Bitwise contract (DESIGN.md §8): every output element accumulates its
//! `k` products in ascending-`k` order starting from `+0.0`, exactly like
//! the seed loop nests, so tiling changes arithmetic *scheduling* but never
//! the per-element operation sequence — results are `to_bits`-identical to
//! the pinned seed references below at any thread count. (Panel splits
//! store/reload the f32 accumulator through `C`, which is exact.) The pool
//! still partitions *output rows* into chunks whose size is a function of
//! shape only, rounded to a tile multiple.
//!
//! `matmul` and `matmul_tn` skip zero multipliers, which is a large win on
//! the sparse one-hot-ish feature matrices GNN inputs tend to be — but the
//! branch costs real time on dense hidden-layer activations where it never
//! fires, so both kernels gate it on a cheap strided density probe of the
//! left operand. The skip test happens per element on the same `a == 0.0`
//! comparison as the seed, so the skip path is order-preserving too.

use crate::{par_row_chunk, Tensor};

/// Micro-tile height (output rows per register block).
const MR: usize = 4;
/// Micro-tile width (output columns per register block) — two 4-lane SSE
/// vectors, eight accumulator registers per tile.
const NR: usize = 8;
/// k-panel length for [`Tensor::matmul_packed_b`]: the packed right operand
/// is materialized at most `KC` rows at a time (`KC × m` floats of scratch).
const KC: usize = 256;
/// Input-row panel for `matmul_tn`: bounds the working set of the `A` tile
/// panel (`PC × MR` floats) and `B` strip panel (`PC × NR`) to L1-ish size.
const PC: usize = 256;

/// Round a row-chunk size up to a whole number of `MR` tiles so micro-tiles
/// never straddle a pool chunk boundary. (Chunk size is a function of shape
/// only — bitwise-safe to change, per the determinism contract.)
fn round_up_tile(rows: usize) -> usize {
    rows.div_ceil(MR) * MR
}

/// `o += a * b` over a contiguous row — the inner loop of the pinned seed
/// reference kernels and of `matmul_rows`.
#[inline]
fn axpy(o: &mut [f32], a: f32, b: &[f32]) {
    for (o, &b) in o.iter_mut().zip(b) {
        *o += a * b;
    }
}

/// The `MR×NR` micro-kernel for `matmul`-layout products: `C[i.., j..] +=
/// A[i.., :klen] · B[:klen, j..]` where `A` rows are strided (`a_stride`)
/// and `B` rows are contiguous at `b_stride`. `mr`/`nr` are runtime bounds
/// for edge tiles; the hot call site passes the `MR`/`NR` constants so the
/// inlined copy fully unrolls. Accumulates ascending `kk` per element.
#[allow(clippy::too_many_arguments)]
#[inline(always)]
fn tile_mm<const SKIP: bool>(
    c: &mut [f32],
    cs: usize,
    i: usize,
    j: usize,
    mr: usize,
    nr: usize,
    a: &[f32],
    a_stride: usize,
    b: &[f32],
    b_stride: usize,
    klen: usize,
) {
    let mut acc = [[0.0f32; NR]; MR];
    for r in 0..mr {
        let crow = &c[(i + r) * cs + j..];
        for cc in 0..nr {
            acc[r][cc] = crow[cc];
        }
    }
    for kk in 0..klen {
        let bv = &b[kk * b_stride + j..kk * b_stride + j + nr];
        for r in 0..mr {
            let av = a[(i + r) * a_stride + kk];
            if SKIP && av == 0.0 {
                continue;
            }
            let accr = &mut acc[r];
            for cc in 0..nr {
                accr[cc] += av * bv[cc];
            }
        }
    }
    for r in 0..mr {
        let crow = &mut c[(i + r) * cs + j..];
        for cc in 0..nr {
            crow[cc] = acc[r][cc];
        }
    }
}

/// The `MR×NR` micro-kernel for `matmul_tn`: the tile covers `MR` columns
/// of `A` (= output rows `ti..`) × `NR` columns of `B`, and reduces over
/// `nrows` input rows ascending — both loads contiguous (`A` segment of
/// `mr`, `B` segment of `nr` per row), the outer-product update in
/// registers. `ci` is the absolute `A`-column of the tile's first row.
#[allow(clippy::too_many_arguments)]
#[inline(always)]
fn tile_tn<const SKIP: bool>(
    c: &mut [f32],
    cs: usize,
    ti: usize,
    j: usize,
    mr: usize,
    nr: usize,
    a: &[f32],
    a_stride: usize,
    ci: usize,
    b: &[f32],
    b_stride: usize,
    nrows: usize,
) {
    let mut acc = [[0.0f32; NR]; MR];
    for r in 0..mr {
        let crow = &c[(ti + r) * cs + j..];
        for cc in 0..nr {
            acc[r][cc] = crow[cc];
        }
    }
    for row in 0..nrows {
        let av = &a[row * a_stride + ci..row * a_stride + ci + mr];
        let bv = &b[row * b_stride + j..row * b_stride + j + nr];
        for r in 0..mr {
            let ar = av[r];
            if SKIP && ar == 0.0 {
                continue;
            }
            let accr = &mut acc[r];
            for cc in 0..nr {
                accr[cc] += ar * bv[cc];
            }
        }
    }
    for r in 0..mr {
        let crow = &mut c[(ti + r) * cs + j..];
        for cc in 0..nr {
            crow[cc] = acc[r][cc];
        }
    }
}

/// Blocked `C[0..rows, :] += A[0..rows, :klen] · B[:klen, :]` over one pool
/// chunk. `j`-strips outer so the `klen × NR` B strip stays cache-hot
/// across the row tiles underneath it.
fn gemm_panel<const SKIP: bool>(
    c: &mut [f32],
    m: usize,
    a: &[f32],
    a_stride: usize,
    b: &[f32],
    b_stride: usize,
    rows: usize,
    klen: usize,
) {
    let mut j = 0;
    while j < m {
        let nr = (m - j).min(NR);
        let mut i = 0;
        while i < rows {
            let mr = (rows - i).min(MR);
            if mr == MR && nr == NR {
                tile_mm::<SKIP>(c, m, i, j, MR, NR, a, a_stride, b, b_stride, klen);
            } else {
                tile_mm::<SKIP>(c, m, i, j, mr, nr, a, a_stride, b, b_stride, klen);
            }
            i += MR;
        }
        j += NR;
    }
}

/// Blocked `matmul_tn` body over one pool chunk and one input-row panel.
fn tn_panel<const SKIP: bool>(
    c: &mut [f32],
    m: usize,
    cw: usize,
    a: &[f32],
    a_stride: usize,
    col0: usize,
    b: &[f32],
    nrows: usize,
) {
    let mut j = 0;
    while j < m {
        let nr = (m - j).min(NR);
        let mut i = 0;
        while i < cw {
            let mr = (cw - i).min(MR);
            if mr == MR && nr == NR {
                tile_tn::<SKIP>(c, m, i, j, MR, NR, a, a_stride, col0 + i, b, m, nrows);
            } else {
                tile_tn::<SKIP>(c, m, i, j, mr, nr, a, a_stride, col0 + i, b, m, nrows);
            }
            i += MR;
        }
        j += NR;
    }
}

impl Tensor {
    /// Deterministic strided sample of up to 64 elements: does this matrix
    /// hold enough exact zeros (≥ ¼ of the sample) that the zero-skip
    /// branch in the matmul inner loops pays for itself? One-hot-ish
    /// feature matrices say yes; dense activations say no.
    ///
    /// The stride rounds **up** (`len.div_ceil(64)`), so the probe spans
    /// the whole buffer: a floor-rounded stride would sample only the head
    /// for `len` slightly above 64 and misclassify tail-sparse matrices.
    fn looks_sparse(&self) -> bool {
        const SAMPLES: usize = 64;
        let len = self.data.len();
        if len == 0 {
            return false;
        }
        let step = len.div_ceil(SAMPLES).max(1);
        let mut zeros = 0usize;
        let mut total = 0usize;
        let mut i = 0;
        while i < len {
            if self.data[i] == 0.0 {
                zeros += 1;
            }
            total += 1;
            i += step;
        }
        zeros * 4 >= total
    }

    /// `self · other`. Panics if `self.cols != other.rows`.
    pub fn matmul(&self, other: &Tensor) -> Tensor {
        assert_eq!(
            self.cols, other.rows,
            "matmul: {}x{} · {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        let (n, k, m) = (self.rows, self.cols, other.cols);
        let mut out = Tensor::zeros(n, m);
        if n == 0 || m == 0 {
            return out;
        }
        lasagne_obs::span!("matmul");
        lasagne_obs::counter_add("matmul.flops", 2 * (n * k * m) as u64);
        let skip = self.looks_sparse();
        let (a, b) = (&self.data, &other.data);
        // ≥ 32 rows per chunk so each k×NR B strip loaded into cache serves
        // at least 8 row tiles before the next chunk re-streams it.
        let chunk = round_up_tile(par_row_chunk(k * m).max(32));
        lasagne_par::par_row_chunks_mut(&mut out.data, m, chunk, |i0, c| {
            let rows = c.len() / m;
            if skip {
                gemm_panel::<true>(c, m, &a[i0 * k..], k, b, m, rows, k);
            } else {
                gemm_panel::<false>(c, m, &a[i0 * k..], k, b, m, rows, k);
            }
        });
        out
    }

    /// `self · B` where the caller materializes the right operand in
    /// k-panels: `pack(p0, p1, buf)` must fill `buf` (`(p1-p0) × b_cols`,
    /// row-major) with rows `p0..p1` of `B`. The quantized serve engine
    /// dequantizes weight panels here so the int8/f16 weights never exist
    /// as a full f32 matrix; a pack that plain-copies rows of a resident
    /// `B` makes this bitwise-identical to `matmul` (same per-element
    /// ascending-`k` accumulation; the f32 store/reload of `C` between
    /// panels is exact, and the zero-skip probe is the same left-operand
    /// probe either way).
    pub fn matmul_packed_b<F>(&self, b_rows: usize, b_cols: usize, mut pack: F) -> Tensor
    where
        F: FnMut(usize, usize, &mut [f32]),
    {
        assert_eq!(
            self.cols, b_rows,
            "matmul_packed_b: {}x{} · {}x{}",
            self.rows, self.cols, b_rows, b_cols
        );
        let (n, k, m) = (self.rows, b_rows, b_cols);
        let mut out = Tensor::zeros(n, m);
        if n == 0 || m == 0 {
            return out;
        }
        lasagne_obs::span!("matmul");
        lasagne_obs::counter_add("matmul.flops", 2 * (n * k * m) as u64);
        let skip = self.looks_sparse();
        let a = &self.data;
        let chunk = round_up_tile(par_row_chunk(k * m).max(32));
        let mut panel = vec![0.0f32; KC.min(k) * m];
        let mut p0 = 0;
        while p0 < k {
            let pl = (k - p0).min(KC);
            let buf = &mut panel[..pl * m];
            pack(p0, p0 + pl, buf);
            let buf = &*buf;
            lasagne_par::par_row_chunks_mut(&mut out.data, m, chunk, |i0, c| {
                let rows = c.len() / m;
                if skip {
                    gemm_panel::<true>(c, m, &a[i0 * k + p0..], k, buf, m, rows, pl);
                } else {
                    gemm_panel::<false>(c, m, &a[i0 * k + p0..], k, buf, m, rows, pl);
                }
            });
            p0 += KC;
        }
        out
    }

    /// The selected `rows` of `self · other`, bitwise identical to the same
    /// rows of [`Tensor::matmul`]. The zero-skip density probe runs on the
    /// **full** left operand, not the gathered rows — the branch choice (and
    /// therefore the accumulation order and bits) must match what a full
    /// product would do, which is the contract the streaming engine's
    /// row-sliced re-evaluation relies on (DESIGN.md §11). Serial: dirty
    /// row sets are tiny compared to the full product. (Stays on the axpy
    /// loop — per-element ascending-`k` accumulation is what the blocked
    /// kernel computes too, so the bits agree.)
    pub fn matmul_rows(&self, other: &Tensor, rows: &[usize]) -> Tensor {
        assert_eq!(
            self.cols, other.rows,
            "matmul_rows: {}x{} · {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        let (k, m) = (self.cols, other.cols);
        let mut out = Tensor::zeros(rows.len(), m);
        if rows.is_empty() || m == 0 {
            return out;
        }
        let skip = self.looks_sparse();
        let (a, b) = (&self.data, &other.data);
        for (r, &i) in rows.iter().enumerate() {
            assert!(i < self.rows, "matmul_rows: row {i} out of range");
            let a_row = &a[i * k..(i + 1) * k];
            let o_row = &mut out.data[r * m..(r + 1) * m];
            if skip {
                for (kk, &aik) in a_row.iter().enumerate() {
                    if aik == 0.0 {
                        continue;
                    }
                    axpy(o_row, aik, &b[kk * m..(kk + 1) * m]);
                }
            } else {
                for (kk, &aik) in a_row.iter().enumerate() {
                    axpy(o_row, aik, &b[kk * m..(kk + 1) * m]);
                }
            }
        }
        out
    }

    /// `self · other` on the seed axpy loop with a **caller-supplied**
    /// zero-skip decision in place of the internal density probe. Bitwise
    /// identical to [`Tensor::matmul`] whenever `skip` equals what
    /// `looks_sparse` would report for the left operand of that product —
    /// which is how the out-of-core evaluator uses it: holding only a row
    /// subset of the true left operand, it reconstructs the full-operand
    /// probe from the (always-demanded) sampled rows and passes the verdict
    /// here, so partitioned products keep the resident branch choice and
    /// therefore the resident bits (DESIGN.md §14).
    pub fn matmul_with_skip(&self, other: &Tensor, skip: bool) -> Tensor {
        assert_eq!(
            self.cols, other.rows,
            "matmul_with_skip: {}x{} · {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        let (k, m) = (self.cols, other.cols);
        let mut out = Tensor::zeros(self.rows, m);
        if self.rows == 0 || m == 0 {
            return out;
        }
        let (a, b) = (&self.data, &other.data);
        for i in 0..self.rows {
            let a_row = &a[i * k..(i + 1) * k];
            let o_row = &mut out.data[i * m..(i + 1) * m];
            if skip {
                for (kk, &aik) in a_row.iter().enumerate() {
                    if aik == 0.0 {
                        continue;
                    }
                    axpy(o_row, aik, &b[kk * m..(kk + 1) * m]);
                }
            } else {
                for (kk, &aik) in a_row.iter().enumerate() {
                    axpy(o_row, aik, &b[kk * m..(kk + 1) * m]);
                }
            }
        }
        out
    }

    /// `selfᵀ · other` without forming the transpose.
    /// Panics if `self.rows != other.rows`.
    ///
    /// Partitions *output* rows (columns of `self`) for the pool exactly as
    /// before, then walks each chunk in `PC`-row input panels of `MR×NR`
    /// outer-product tiles: both per-row loads are contiguous segments, and
    /// each output element still accumulates over input rows in ascending
    /// order — the serial scatter order, bit for bit.
    pub fn matmul_tn(&self, other: &Tensor) -> Tensor {
        assert_eq!(
            self.rows, other.rows,
            "matmul_tn: ({}x{})ᵀ · {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        let (n, k, m) = (self.rows, self.cols, other.cols);
        let mut out = Tensor::zeros(k, m);
        if n == 0 || k == 0 || m == 0 {
            return out;
        }
        lasagne_obs::span!("matmul_tn");
        lasagne_obs::counter_add("matmul.flops", 2 * (n * k * m) as u64);
        let skip = self.looks_sparse();
        let (a, b) = (&self.data, &other.data);
        // ≤ 16 column blocks of ≥ 16 columns: bounds the extra streaming of
        // `other` (once per block) while exposing enough chunks to balance.
        let chunk_rows = round_up_tile(k.div_ceil(16).max(16));
        lasagne_par::par_row_chunks_mut(&mut out.data, m, chunk_rows, |i0, c| {
            let cw = c.len() / m;
            let mut pn = 0;
            while pn < n {
                let pl = (n - pn).min(PC);
                if skip {
                    tn_panel::<true>(c, m, cw, &a[pn * k..], k, i0, &b[pn * m..], pl);
                } else {
                    tn_panel::<false>(c, m, cw, &a[pn * k..], k, i0, &b[pn * m..], pl);
                }
                pn += PC;
            }
        });
        out
    }

    /// `self · otherᵀ` without forming the transpose in the *caller*: the
    /// kernel packs `otherᵀ` once (`k × m` floats, a vanishing cost next to
    /// the `2nkm` flops) and runs the blocked `matmul` body over it, which
    /// turns the seed's strided scalar dot products into the same
    /// contiguous micro-kernel as `matmul`. Per-element accumulation stays
    /// ascending over the shared inner dimension — bitwise what the seed
    /// computed. Panics if `self.cols != other.cols`.
    pub fn matmul_nt(&self, other: &Tensor) -> Tensor {
        assert_eq!(
            self.cols, other.cols,
            "matmul_nt: {}x{} · ({}x{})ᵀ",
            self.rows, self.cols, other.rows, other.cols
        );
        let (n, k, m) = (self.rows, self.cols, other.rows);
        let mut out = Tensor::zeros(n, m);
        if n == 0 || m == 0 {
            return out;
        }
        lasagne_obs::span!("matmul_nt");
        lasagne_obs::counter_add("matmul.flops", 2 * (n * k * m) as u64);
        let (a, b) = (&self.data, &other.data);
        let mut bt = vec![0.0f32; k * m];
        for j in 0..m {
            let b_row = &b[j * k..(j + 1) * k];
            for (kk, &v) in b_row.iter().enumerate() {
                bt[kk * m + j] = v;
            }
        }
        let chunk = round_up_tile(par_row_chunk(k * m).max(32));
        lasagne_par::par_row_chunks_mut(&mut out.data, m, chunk, |i0, c| {
            let rows = c.len() / m;
            // No zero-skip: the seed `nt` kernel never had one (gradient
            // operands are dense), and adding it would change the probe
            // surface, not the bits.
            gemm_panel::<false>(c, m, &a[i0 * k..], k, &bt, m, rows, k);
        });
        out
    }

    /// Dot product of two equally-shaped tensors viewed as flat vectors.
    pub fn dot(&self, other: &Tensor) -> f32 {
        assert_eq!(self.shape(), other.shape(), "dot: shape mismatch");
        self.data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| a * b)
            .sum()
    }

    /// Pinned copy of the seed (pre-blocking) `matmul` loop nest, serial.
    /// Exists so the bitwise-equivalence suites and the kernels bench can
    /// compare the blocked kernel against the exact code it replaced.
    /// Not part of the public API contract.
    #[doc(hidden)]
    pub fn matmul_reference(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.cols, other.rows, "matmul_reference: inner dims");
        let (n, k, m) = (self.rows, self.cols, other.cols);
        let mut out = Tensor::zeros(n, m);
        if n == 0 || m == 0 {
            return out;
        }
        let skip = self.looks_sparse();
        let (a, b) = (&self.data, &other.data);
        for (i, o_row) in out.data.chunks_mut(m).enumerate() {
            let a_row = &a[i * k..(i + 1) * k];
            if skip {
                for (kk, &aik) in a_row.iter().enumerate() {
                    if aik == 0.0 {
                        continue;
                    }
                    axpy(o_row, aik, &b[kk * m..(kk + 1) * m]);
                }
            } else {
                for (kk, &aik) in a_row.iter().enumerate() {
                    axpy(o_row, aik, &b[kk * m..(kk + 1) * m]);
                }
            }
        }
        out
    }

    /// Pinned copy of the seed `matmul_tn` kernel (serial, one chunk per
    /// 16th of the output rows like the seed partitioner). See
    /// [`Tensor::matmul_reference`].
    #[doc(hidden)]
    pub fn matmul_tn_reference(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.rows, other.rows, "matmul_tn_reference: inner dims");
        let (n, k, m) = (self.rows, self.cols, other.cols);
        let mut out = Tensor::zeros(k, m);
        if n == 0 || k == 0 || m == 0 {
            return out;
        }
        let skip = self.looks_sparse();
        let (a, b) = (&self.data, &other.data);
        let chunk_rows = k.div_ceil(16).max(16);
        let mut i0 = 0;
        while i0 < k {
            let cw = (k - i0).min(chunk_rows);
            let chunk = &mut out.data[i0 * m..(i0 + cw) * m];
            for row in 0..n {
                let a_seg = &a[row * k + i0..row * k + i0 + cw];
                let b_row = &b[row * m..(row + 1) * m];
                if skip {
                    for (r, &av) in a_seg.iter().enumerate() {
                        if av == 0.0 {
                            continue;
                        }
                        axpy(&mut chunk[r * m..(r + 1) * m], av, b_row);
                    }
                } else {
                    for (r, &av) in a_seg.iter().enumerate() {
                        axpy(&mut chunk[r * m..(r + 1) * m], av, b_row);
                    }
                }
            }
            i0 += cw;
        }
        out
    }

    /// Pinned copy of the seed `matmul_nt` kernel (serial scalar dots).
    /// See [`Tensor::matmul_reference`].
    #[doc(hidden)]
    pub fn matmul_nt_reference(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.cols, other.cols, "matmul_nt_reference: inner dims");
        let (n, k, m) = (self.rows, self.cols, other.rows);
        let mut out = Tensor::zeros(n, m);
        if n == 0 || m == 0 {
            return out;
        }
        let (a, b) = (&self.data, &other.data);
        for (i, o_row) in out.data.chunks_mut(m).enumerate() {
            let a_row = &a[i * k..(i + 1) * k];
            for (j, o) in o_row.iter_mut().enumerate() {
                let b_row = &b[j * k..(j + 1) * k];
                let mut acc = 0.0f32;
                for (&x, &y) in a_row.iter().zip(b_row) {
                    acc += x * y;
                }
                *o = acc;
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(rows: &[&[f32]]) -> Tensor {
        Tensor::from_rows(rows)
    }

    #[test]
    fn matmul_known_product() {
        let a = t(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = t(&[&[5.0, 6.0], &[7.0, 8.0]]);
        assert_eq!(a.matmul(&b), t(&[&[19.0, 22.0], &[43.0, 50.0]]));
    }

    #[test]
    fn identity_is_neutral() {
        let a = Tensor::from_fn(3, 3, |i, j| (i + 2 * j) as f32);
        assert_eq!(a.matmul(&Tensor::eye(3)), a);
        assert_eq!(Tensor::eye(3).matmul(&a), a);
    }

    #[test]
    fn rectangular_shapes() {
        let a = Tensor::ones(2, 3);
        let b = Tensor::ones(3, 4);
        let c = a.matmul(&b);
        assert_eq!(c.shape(), (2, 4));
        assert!(c.approx_eq(&Tensor::full(2, 4, 3.0), 1e-6));
    }

    #[test]
    fn tn_equals_explicit_transpose() {
        let a = Tensor::from_fn(4, 3, |i, j| (i as f32 - j as f32) * 0.5);
        let b = Tensor::from_fn(4, 2, |i, j| (i * j) as f32 + 1.0);
        assert!(a.matmul_tn(&b).approx_eq(&a.transpose().matmul(&b), 1e-5));
    }

    #[test]
    fn tn_equals_explicit_transpose_beyond_one_block() {
        // > 16 columns exercises the block partitioner's interior bounds.
        let a = Tensor::from_fn(9, 37, |i, j| ((i * 37 + j) % 7) as f32 - 3.0);
        let b = Tensor::from_fn(9, 5, |i, j| (i as f32) * 0.3 - j as f32);
        assert!(a.matmul_tn(&b).approx_eq(&a.transpose().matmul(&b), 1e-4));
    }

    #[test]
    fn nt_equals_explicit_transpose() {
        let a = Tensor::from_fn(2, 5, |i, j| (i + j) as f32 * 0.25);
        let b = Tensor::from_fn(3, 5, |i, j| (i as f32) - 0.1 * j as f32);
        assert!(a.matmul_nt(&b).approx_eq(&a.matmul(&b.transpose()), 1e-5));
    }

    #[test]
    fn zero_skip_does_not_change_result() {
        // The probe sends ≥-¼-zeros matrices down the skip path and dense
        // ones down the no-branch path; both must match a naive triple
        // loop.
        let a = Tensor::from_fn(5, 5, |i, j| if (i + j) % 3 == 0 { 1.5 } else { 0.0 });
        let dense_a = Tensor::from_fn(5, 5, |i, j| if (i + j) % 3 == 0 { 1.5 } else { 7.0 });
        assert!(a.looks_sparse());
        assert!(!dense_a.looks_sparse());
        let b = Tensor::from_fn(5, 4, |i, j| (i * 4 + j) as f32);
        let reference = |l: &Tensor, r: &Tensor| {
            let mut out = Tensor::zeros(l.rows(), r.cols());
            for i in 0..l.rows() {
                for kk in 0..l.cols() {
                    for j in 0..r.cols() {
                        out[(i, j)] += l.get(i, kk) * r.get(kk, j);
                    }
                }
            }
            out
        };
        assert!(a.matmul(&b).approx_eq(&reference(&a, &b), 1e-6));
        assert!(dense_a.matmul(&b).approx_eq(&reference(&dense_a, &b), 1e-6));
    }

    #[test]
    fn density_probe_classifies_extremes() {
        assert!(Tensor::zeros(8, 8).looks_sparse());
        assert!(!Tensor::ones(8, 8).looks_sparse());
        assert!(!Tensor::zeros(0, 0).looks_sparse());
        // One-hot rows: exactly one nonzero in 16 columns.
        let onehot = Tensor::from_fn(32, 16, |i, j| if i % 16 == j { 1.0 } else { 0.0 });
        assert!(onehot.looks_sparse());
    }

    #[test]
    fn density_probe_covers_the_tail() {
        // len = 100: the old floor-rounded stride (100/64 = 1) sampled only
        // elements 0..63 — a dense head hid a sparse tail entirely. The
        // ceil-rounded stride (2) spans the buffer: 18 of 50 samples land
        // in the 36-zero tail (36% ≥ 25% → sparse).
        let tail_sparse = Tensor::from_fn(10, 10, |i, j| if i * 10 + j < 64 { 1.0 } else { 0.0 });
        assert!(tail_sparse.looks_sparse());
        // Mirror image: zeros in the head, dense tail — same 36% zero rate,
        // same verdict, so the probe is position-blind.
        let head_sparse = Tensor::from_fn(10, 10, |i, j| if i * 10 + j < 36 { 0.0 } else { 1.0 });
        assert!(head_sparse.looks_sparse());
        // A 20-zero tail stays under the ¼ threshold → dense.
        let barely = Tensor::from_fn(10, 10, |i, j| if i * 10 + j < 80 { 1.0 } else { 0.0 });
        assert!(!barely.looks_sparse());
    }

    #[test]
    fn blocked_kernels_match_seed_reference_bitwise() {
        // Odd shapes force edge tiles on both axes; the sparse variant
        // exercises the skip path. `to_bits` equality, not approx.
        for (n, k, m, sparse) in
            [(7, 5, 9, false), (13, 11, 17, true), (4, 8, 8, false), (1, 1, 1, true)]
        {
            let a = Tensor::from_fn(n, k, |i, j| {
                if sparse && (i + j) % 3 != 0 {
                    0.0
                } else {
                    ((i * k + j) as f32).sin()
                }
            });
            let b = Tensor::from_fn(k, m, |i, j| ((i * m + j) as f32).cos());
            let bt = b.transpose();
            let rhs = Tensor::from_fn(n, m, |i, j| ((i + 2 * j) as f32).cos() * 0.5);
            let bits = |t: &Tensor| t.as_slice().iter().map(|v| v.to_bits()).collect::<Vec<_>>();
            assert_eq!(bits(&a.matmul(&b)), bits(&a.matmul_reference(&b)), "mm {n}x{k}x{m}");
            assert_eq!(bits(&a.matmul_nt(&bt)), bits(&a.matmul_nt_reference(&bt)), "nt");
            assert_eq!(bits(&a.matmul_tn(&rhs)), bits(&a.matmul_tn_reference(&rhs)), "tn");
        }
    }

    #[test]
    fn packed_b_copy_pack_is_bitwise_matmul() {
        // A pack that plain-copies B rows must reproduce `matmul` exactly,
        // including across k-panel splits (k > KC forces ≥ 2 panels).
        let (n, k, m) = (5, super::KC + 3, 6);
        let a = Tensor::from_fn(n, k, |i, j| ((i * k + j) as f32 * 0.37).sin());
        let b = Tensor::from_fn(k, m, |i, j| ((i + j) as f32 * 0.11).cos());
        let packed = a.matmul_packed_b(k, m, |p0, p1, buf| {
            buf.copy_from_slice(&b.as_slice()[p0 * m..p1 * m]);
        });
        let direct = a.matmul(&b);
        let bits = |t: &Tensor| t.as_slice().iter().map(|v| v.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&packed), bits(&direct));
    }

    #[test]
    fn matmul_rows_is_bitwise_slice_of_matmul() {
        // Both probe branches: a sparse left operand (skip path) and a dense
        // one (no-branch path). Selected rows must match the full product
        // bit for bit, in arbitrary order and with repeats.
        let sparse_a = Tensor::from_fn(6, 5, |i, j| if (i + j) % 3 == 0 { 0.37 * (i + 1) as f32 } else { 0.0 });
        let dense_a = Tensor::from_fn(6, 5, |i, j| 0.11 * (i * 5 + j + 1) as f32);
        let b = Tensor::from_fn(5, 4, |i, j| ((i * 4 + j) as f32).sin());
        for a in [&sparse_a, &dense_a] {
            let full = a.matmul(&b);
            let rows = [4usize, 0, 4, 2];
            let part = a.matmul_rows(&b, &rows);
            assert_eq!(part.shape(), (4, 4));
            for (r, &i) in rows.iter().enumerate() {
                let got: Vec<u32> = part.row(r).iter().map(|v| v.to_bits()).collect();
                let want: Vec<u32> = full.row(i).iter().map(|v| v.to_bits()).collect();
                assert_eq!(got, want, "row {i}");
            }
        }
        assert_eq!(sparse_a.matmul_rows(&b, &[]).shape(), (0, 4));
    }

    #[test]
    fn matmul_with_skip_matches_matmul_when_skip_matches_probe() {
        // Same two probe classes as above; the explicit flag with the value
        // looks_sparse would pick must reproduce the full product bitwise.
        let sparse_a = Tensor::from_fn(6, 5, |i, j| if (i + j) % 3 == 0 { 0.37 * (i + 1) as f32 } else { 0.0 });
        let dense_a = Tensor::from_fn(6, 5, |i, j| 0.11 * (i * 5 + j + 1) as f32);
        let b = Tensor::from_fn(5, 4, |i, j| ((i * 4 + j) as f32).cos());
        for a in [&sparse_a, &dense_a] {
            let full = a.matmul(&b);
            let ours = a.matmul_with_skip(&b, a.looks_sparse());
            let got: Vec<u32> = ours.as_slice().iter().map(|v| v.to_bits()).collect();
            let want: Vec<u32> = full.as_slice().iter().map(|v| v.to_bits()).collect();
            assert_eq!(got, want);
        }
        // And both flag values agree with matmul_rows under the same flag
        // semantics (all rows selected).
        for skip in [false, true] {
            let via_rows = sparse_a.matmul_rows(&b, &[0, 1, 2, 3, 4, 5]);
            let _ = skip; // matmul_rows probes internally; only compare on match
            if skip == sparse_a.looks_sparse() {
                let ours = sparse_a.matmul_with_skip(&b, skip);
                assert_eq!(ours.as_slice(), via_rows.as_slice());
            }
        }
    }

    #[test]
    fn dot_is_flat_inner_product() {
        let a = t(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = t(&[&[2.0, 0.5], &[1.0, 1.0]]);
        assert_eq!(a.dot(&b), 1.0 * 2.0 + 2.0 * 0.5 + 3.0 + 4.0);
    }

    #[test]
    #[should_panic(expected = "matmul")]
    fn mismatched_inner_dims_panic() {
        let _ = Tensor::ones(2, 3).matmul(&Tensor::ones(4, 2));
    }
}
