//! Dense matrix products.
//!
//! Three kernels cover forward and backward passes without materializing
//! transposes:
//! * `matmul`    — `C = A · B`
//! * `matmul_tn` — `C = Aᵀ · B` (weight gradients)
//! * `matmul_nt` — `C = A · Bᵀ` (input gradients)
//!
//! All use orderings whose inner loop runs over contiguous slices so LLVM
//! vectorizes them. `matmul` and `matmul_tn` skip zero multipliers, which is
//! a large win on the sparse one-hot-ish feature matrices GNN inputs tend to
//! be.

use crate::Tensor;

impl Tensor {
    /// `self · other`. Panics if `self.cols != other.rows`.
    pub fn matmul(&self, other: &Tensor) -> Tensor {
        assert_eq!(
            self.cols, other.rows,
            "matmul: {}x{} · {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        let (n, k, m) = (self.rows, self.cols, other.cols);
        let mut out = Tensor::zeros(n, m);
        for i in 0..n {
            let a_row = &self.data[i * k..(i + 1) * k];
            let o_row = &mut out.data[i * m..(i + 1) * m];
            for (kk, &aik) in a_row.iter().enumerate() {
                if aik == 0.0 {
                    continue;
                }
                let b_row = &other.data[kk * m..(kk + 1) * m];
                for (o, &b) in o_row.iter_mut().zip(b_row) {
                    *o += aik * b;
                }
            }
        }
        out
    }

    /// `selfᵀ · other` without forming the transpose.
    /// Panics if `self.rows != other.rows`.
    pub fn matmul_tn(&self, other: &Tensor) -> Tensor {
        assert_eq!(
            self.rows, other.rows,
            "matmul_tn: ({}x{})ᵀ · {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        let (n, k, m) = (self.rows, self.cols, other.cols);
        let mut out = Tensor::zeros(k, m);
        for row in 0..n {
            let a_row = &self.data[row * k..(row + 1) * k];
            let b_row = &other.data[row * m..(row + 1) * m];
            for (i, &a) in a_row.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let o_row = &mut out.data[i * m..(i + 1) * m];
                for (o, &b) in o_row.iter_mut().zip(b_row) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// `self · otherᵀ` without forming the transpose.
    /// Panics if `self.cols != other.cols`.
    pub fn matmul_nt(&self, other: &Tensor) -> Tensor {
        assert_eq!(
            self.cols, other.cols,
            "matmul_nt: {}x{} · ({}x{})ᵀ",
            self.rows, self.cols, other.rows, other.cols
        );
        let (n, k, m) = (self.rows, self.cols, other.rows);
        let mut out = Tensor::zeros(n, m);
        for i in 0..n {
            let a_row = &self.data[i * k..(i + 1) * k];
            let o_row = &mut out.data[i * m..(i + 1) * m];
            for (j, o) in o_row.iter_mut().enumerate() {
                let b_row = &other.data[j * k..(j + 1) * k];
                let mut acc = 0.0f32;
                for (&a, &b) in a_row.iter().zip(b_row) {
                    acc += a * b;
                }
                *o = acc;
            }
        }
        out
    }

    /// Dot product of two equally-shaped tensors viewed as flat vectors.
    pub fn dot(&self, other: &Tensor) -> f32 {
        assert_eq!(self.shape(), other.shape(), "dot: shape mismatch");
        self.data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| a * b)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(rows: &[&[f32]]) -> Tensor {
        Tensor::from_rows(rows)
    }

    #[test]
    fn matmul_known_product() {
        let a = t(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = t(&[&[5.0, 6.0], &[7.0, 8.0]]);
        assert_eq!(a.matmul(&b), t(&[&[19.0, 22.0], &[43.0, 50.0]]));
    }

    #[test]
    fn identity_is_neutral() {
        let a = Tensor::from_fn(3, 3, |i, j| (i + 2 * j) as f32);
        assert_eq!(a.matmul(&Tensor::eye(3)), a);
        assert_eq!(Tensor::eye(3).matmul(&a), a);
    }

    #[test]
    fn rectangular_shapes() {
        let a = Tensor::ones(2, 3);
        let b = Tensor::ones(3, 4);
        let c = a.matmul(&b);
        assert_eq!(c.shape(), (2, 4));
        assert!(c.approx_eq(&Tensor::full(2, 4, 3.0), 1e-6));
    }

    #[test]
    fn tn_equals_explicit_transpose() {
        let a = Tensor::from_fn(4, 3, |i, j| (i as f32 - j as f32) * 0.5);
        let b = Tensor::from_fn(4, 2, |i, j| (i * j) as f32 + 1.0);
        assert!(a.matmul_tn(&b).approx_eq(&a.transpose().matmul(&b), 1e-5));
    }

    #[test]
    fn nt_equals_explicit_transpose() {
        let a = Tensor::from_fn(2, 5, |i, j| (i + j) as f32 * 0.25);
        let b = Tensor::from_fn(3, 5, |i, j| (i as f32) - 0.1 * j as f32);
        assert!(a.matmul_nt(&b).approx_eq(&a.matmul(&b.transpose()), 1e-5));
    }

    #[test]
    fn zero_skip_does_not_change_result() {
        // Sparse-ish A with many exact zeros exercises the `continue` branch.
        let a = Tensor::from_fn(5, 5, |i, j| if (i + j) % 3 == 0 { 1.5 } else { 0.0 });
        let b = Tensor::from_fn(5, 4, |i, j| (i * 4 + j) as f32);
        let dense = a.transpose().transpose(); // same values, same code path
        assert!(a.matmul(&b).approx_eq(&dense.matmul(&b), 1e-6));
    }

    #[test]
    fn dot_is_flat_inner_product() {
        let a = t(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = t(&[&[2.0, 0.5], &[1.0, 1.0]]);
        assert_eq!(a.dot(&b), 1.0 * 2.0 + 2.0 * 0.5 + 3.0 + 4.0);
    }

    #[test]
    #[should_panic(expected = "matmul")]
    fn mismatched_inner_dims_panic() {
        let _ = Tensor::ones(2, 3).matmul(&Tensor::ones(4, 2));
    }
}
