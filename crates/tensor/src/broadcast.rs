//! Broadcasting ops.
//!
//! Two broadcast shapes appear throughout GNN math:
//! * **row broadcast** — a `1 x D` vector applied to every row (biases);
//! * **column broadcast** — an `N x 1` vector applied to every column
//!   (per-node scaling; this is exactly the `C(l)[:, i] ⊗ H(i)` operation of
//!   Lasagne's weighted aggregator, Eq (5) of the paper).

use crate::Tensor;

impl Tensor {
    /// Add a `1 x D` row vector to every row of an `N x D` tensor.
    pub fn add_row_broadcast(&self, row: &Tensor) -> Tensor {
        assert_eq!(row.rows, 1, "add_row_broadcast: rhs must be 1 x D");
        assert_eq!(
            self.cols, row.cols,
            "add_row_broadcast: {} cols vs {} cols",
            self.cols, row.cols
        );
        let mut out = self.clone();
        for i in 0..out.rows {
            for (o, &b) in out.row_mut(i).iter_mut().zip(&row.data) {
                *o += b;
            }
        }
        out
    }

    /// Multiply every row of an `N x D` tensor by a `1 x D` row vector.
    pub fn mul_row_broadcast(&self, row: &Tensor) -> Tensor {
        assert_eq!(row.rows, 1, "mul_row_broadcast: rhs must be 1 x D");
        assert_eq!(self.cols, row.cols, "mul_row_broadcast: col mismatch");
        let mut out = self.clone();
        for i in 0..out.rows {
            for (o, &b) in out.row_mut(i).iter_mut().zip(&row.data) {
                *o *= b;
            }
        }
        out
    }

    /// Scale row `i` of an `N x D` tensor by `col[i]` (`col` is `N x 1`).
    pub fn mul_col_broadcast(&self, col: &Tensor) -> Tensor {
        assert_eq!(col.cols, 1, "mul_col_broadcast: rhs must be N x 1");
        assert_eq!(
            self.rows, col.rows,
            "mul_col_broadcast: {} rows vs {} rows",
            self.rows, col.rows
        );
        let mut out = self.clone();
        for i in 0..out.rows {
            let c = col.data[i];
            for o in out.row_mut(i) {
                *o *= c;
            }
        }
        out
    }

    /// Add `col[i]` to every entry of row `i` (`col` is `N x 1`).
    pub fn add_col_broadcast(&self, col: &Tensor) -> Tensor {
        assert_eq!(col.cols, 1, "add_col_broadcast: rhs must be N x 1");
        assert_eq!(self.rows, col.rows, "add_col_broadcast: row mismatch");
        let mut out = self.clone();
        for i in 0..out.rows {
            let c = col.data[i];
            for o in out.row_mut(i) {
                *o += c;
            }
        }
        out
    }

    /// Divide row `i` by `col[i]` (`col` is `N x 1`); rows whose divisor is 0
    /// are left untouched (useful for normalizing by possibly-zero degrees).
    pub fn div_col_broadcast_or_keep(&self, col: &Tensor) -> Tensor {
        assert_eq!(col.cols, 1, "div_col_broadcast_or_keep: rhs must be N x 1");
        assert_eq!(self.rows, col.rows, "div_col_broadcast_or_keep: row mismatch");
        let mut out = self.clone();
        for i in 0..out.rows {
            let c = col.data[i];
            if c != 0.0 {
                let inv = 1.0 / c;
                for o in out.row_mut(i) {
                    *o *= inv;
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn row_broadcast_add_and_mul() {
        let x = Tensor::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Tensor::row_vector(&[10.0, 20.0]);
        assert_eq!(x.add_row_broadcast(&b).row(1), &[13.0, 24.0]);
        assert_eq!(x.mul_row_broadcast(&b).row(0), &[10.0, 40.0]);
    }

    #[test]
    fn col_broadcast_scales_rows() {
        let x = Tensor::ones(3, 2);
        let c = Tensor::col_vector(&[1.0, 2.0, 3.0]);
        let y = x.mul_col_broadcast(&c);
        assert_eq!(y.row(0), &[1.0, 1.0]);
        assert_eq!(y.row(2), &[3.0, 3.0]);
        let z = x.add_col_broadcast(&c);
        assert_eq!(z.row(1), &[3.0, 3.0]);
    }

    #[test]
    fn div_col_keeps_zero_divisor_rows() {
        let x = Tensor::full(2, 2, 6.0);
        let c = Tensor::col_vector(&[3.0, 0.0]);
        let y = x.div_col_broadcast_or_keep(&c);
        assert_eq!(y.row(0), &[2.0, 2.0]);
        assert_eq!(y.row(1), &[6.0, 6.0]);
    }

    #[test]
    #[should_panic(expected = "must be N x 1")]
    fn col_broadcast_requires_column() {
        Tensor::ones(2, 2).mul_col_broadcast(&Tensor::ones(2, 2));
    }
}
