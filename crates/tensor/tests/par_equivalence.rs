//! Property tests for the `lasagne-par` determinism contract on the dense
//! kernels: every parallel result must be **bitwise** identical to the
//! single-threaded one, for thread counts that tile the chunk space evenly
//! and unevenly.
//!
//! Everything lives in one `#[test]` because the pool's thread count is
//! process-global: concurrently running tests sweeping `set_threads` would
//! race each other into vacuity.

use lasagne_tensor::Tensor;
use lasagne_testkit::gens::{dense, Dense};
use lasagne_testkit::prop::{check, Config};

const SWEEP: [usize; 3] = [2, 3, 7];

fn tensor_of(d: &Dense) -> Tensor {
    Tensor::from_vec(d.rows, d.cols, d.data.clone()).expect("gen produces consistent shapes")
}

fn bits(t: &Tensor) -> Vec<u32> {
    t.as_slice().iter().map(|v| v.to_bits()).collect()
}

/// Run `compute` at one thread, then at each sweep count, asserting bitwise
/// equality throughout.
fn invariant(label: &str, compute: impl Fn() -> Vec<u32>) -> Result<(), String> {
    lasagne_par::set_threads(1);
    let baseline = compute();
    for &t in &SWEEP {
        lasagne_par::set_threads(t);
        if compute() != baseline {
            return Err(format!("{label}: bits changed at {t} threads"));
        }
    }
    Ok(())
}

#[test]
fn dense_kernels_bitwise_invariant_across_thread_counts() {
    // Elementwise/reduction kernels chunk the flat buffer in 2^16-element
    // spans, so the shapes must clear ~65k elements to exercise more than
    // one chunk; the matmul/softmax row partitioners split far earlier.
    let cfg = Config::cases(4);
    check(
        "big_elementwise_and_reductions",
        &cfg,
        &(dense(620..760, 95..110, -2.0, 2.0),),
        |(d,)| {
            let a = tensor_of(d);
            let b = a.map(|v| (v * 1.3).sin());
            invariant("add", || bits(&a.add(&b)))?;
            invariant("mul", || bits(&a.mul(&b)))?;
            invariant("map", || bits(&a.map(|v| v.exp() - 0.5)))?;
            invariant("add_scaled_assign", || {
                let mut c = a.clone();
                c.add_scaled_assign(0.37, &b);
                bits(&c)
            })?;
            invariant("softmax_rows", || bits(&a.softmax_rows()))?;
            invariant("log_softmax_rows", || bits(&a.log_softmax_rows()))?;
            invariant("sum_rows", || bits(&a.sum_rows()))?;
            invariant("sum_cols", || bits(&a.sum_cols()))?;
            invariant("row_sq_norms", || bits(&a.row_sq_norms()))?;
            invariant("sum", || vec![a.sum().to_bits()])?;
            invariant("frobenius_norm", || vec![a.frobenius_norm().to_bits()])?;
            invariant("argmax_rows", || {
                a.argmax_rows().iter().map(|&i| i as u32).collect()
            })?;
            Ok(())
        },
    );

    // The three matmul variants row-chunk at 2^16 flops, so modest shapes
    // already span several chunks; random shapes also cover the uneven
    // trailing-chunk edge.
    let cfg = Config::cases(8);
    check(
        "matmul_family",
        &cfg,
        &(dense(40..120, 20..70, -1.0, 1.0), 2usize..50),
        |(d, m)| {
            let a = tensor_of(d);
            let b = Tensor::from_fn(a.cols(), *m, |i, j| ((i * 31 + j * 7) % 13) as f32 - 6.0);
            let g = Tensor::from_fn(a.rows(), *m, |i, j| ((i * 17 + j * 3) % 11) as f32 * 0.25);
            invariant("matmul", || bits(&a.matmul(&b)))?;
            invariant("matmul_tn", || bits(&a.matmul_tn(&g)))?;
            invariant("matmul_nt", || bits(&a.matmul_nt(&b.transpose())))?;
            Ok(())
        },
    );
}
