//! Property-based tests for the tensor kernels, on the in-workspace
//! `lasagne-testkit` harness (ported from the original `proptest` suite;
//! every property is preserved and case counts match or exceed the
//! originals' 256).

use lasagne_tensor::{Tensor, TensorRng};
use lasagne_testkit::gens::{dense, Dense};
use lasagne_testkit::{prop_assert, prop_check};

/// Materialize a generated [`Dense`] matrix as a `Tensor`.
fn tensor_of(d: &Dense) -> Tensor {
    Tensor::from_vec(d.rows, d.cols, d.data.clone()).unwrap()
}

prop_check! {
    cases = 256,
    fn matmul_is_associative(n in 1usize..6, k in 1usize..6, m in 1usize..6,
                             p in 1usize..6, seed in 0u64..1_000_000) {
        let mut rng = TensorRng::seed_from_u64(seed);
        let a = rng.uniform_tensor(n, k, -10.0, 10.0);
        let b = rng.uniform_tensor(k, m, -10.0, 10.0);
        let c = rng.uniform_tensor(m, p, -10.0, 10.0);
        let left = a.matmul(&b).matmul(&c);
        let right = a.matmul(&b.matmul(&c));
        // f32 accumulation differs slightly between orders.
        prop_assert!(left.approx_eq(&right, 1e-2));
    }
}

prop_check! {
    cases = 256,
    fn matmul_distributes_over_add(n in 1usize..6, k in 1usize..6, m in 1usize..6,
                                   seed in 0u64..1000) {
        let mut rng = TensorRng::seed_from_u64(seed);
        let a = rng.uniform_tensor(n, k, -2.0, 2.0);
        let b1 = rng.uniform_tensor(k, m, -2.0, 2.0);
        let b2 = rng.uniform_tensor(k, m, -2.0, 2.0);
        let lhs = a.matmul(&b1.add(&b2));
        let rhs = a.matmul(&b1).add(&a.matmul(&b2));
        prop_assert!(lhs.approx_eq(&rhs, 1e-3));
    }
}

prop_check! {
    cases = 256,
    fn transpose_swaps_matmul(seed in 0u64..1000) {
        let mut rng = TensorRng::seed_from_u64(seed);
        let a = rng.uniform_tensor(4, 3, -1.0, 1.0);
        let b = rng.uniform_tensor(3, 5, -1.0, 1.0);
        // (A·B)ᵀ = Bᵀ·Aᵀ
        let lhs = a.matmul(&b).transpose();
        let rhs = b.transpose().matmul(&a.transpose());
        prop_assert!(lhs.approx_eq(&rhs, 1e-4));
    }
}

prop_check! {
    cases = 256,
    fn tn_and_nt_agree_with_naive(seed in 0u64..500) {
        let mut rng = TensorRng::seed_from_u64(seed);
        let a = rng.uniform_tensor(5, 4, -3.0, 3.0);
        let b = rng.uniform_tensor(5, 6, -3.0, 3.0);
        prop_assert!(a.matmul_tn(&b).approx_eq(&a.transpose().matmul(&b), 1e-3));
        let c = rng.uniform_tensor(7, 4, -3.0, 3.0);
        prop_assert!(a.matmul_nt(&c).approx_eq(&a.matmul(&c.transpose()), 1e-3));
    }
}

prop_check! {
    cases = 256,
    fn add_commutes(d in dense(3..4, 4..5, -10.0, 10.0), seed in 0u64..100) {
        let t = tensor_of(&d);
        let mut rng = TensorRng::seed_from_u64(seed);
        let u = rng.uniform_tensor(3, 4, -5.0, 5.0);
        prop_assert!(t.add(&u).approx_eq(&u.add(&t), 1e-6));
    }
}

prop_check! {
    cases = 256,
    fn softmax_rows_are_distributions(d in dense(4..5, 6..7, -10.0, 10.0)) {
        let s = tensor_of(&d).softmax_rows();
        for i in 0..4 {
            let sum: f32 = s.row(i).iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-5);
            prop_assert!(s.row(i).iter().all(|&v| (0.0..=1.0).contains(&v)));
        }
    }
}

prop_check! {
    cases = 256,
    fn sum_rows_then_sum_equals_total(d in dense(5..6, 3..4, -10.0, 10.0)) {
        let t = tensor_of(&d);
        prop_assert!((t.sum_rows().sum() - t.sum()).abs() < 1e-3);
        prop_assert!((t.sum_cols().sum() - t.sum()).abs() < 1e-3);
    }
}

prop_check! {
    cases = 256,
    fn concat_cols_then_slice_round_trips(a in dense(3..4, 2..3, -10.0, 10.0),
                                          b in dense(3..4, 4..5, -10.0, 10.0)) {
        let (a, b) = (tensor_of(&a), tensor_of(&b));
        let c = Tensor::concat_cols(&[&a, &b]);
        prop_assert!(c.slice_cols(0, 2).approx_eq(&a, 0.0));
        prop_assert!(c.slice_cols(2, 6).approx_eq(&b, 0.0));
    }
}

prop_check! {
    cases = 256,
    fn relu_is_idempotent(d in dense(3..4, 3..4, -10.0, 10.0)) {
        let r = tensor_of(&d).relu();
        prop_assert!(r.relu().approx_eq(&r, 0.0));
        prop_assert!(r.min() >= 0.0);
    }
}

// New invariant (not in the original suite): log-softmax must equal the log
// of softmax wherever softmax is bounded away from zero, and softmax must
// equal exp(log-softmax) everywhere — on arbitrary shapes, including rows
// with large logit spreads where naive implementations underflow.
prop_check! {
    cases = 256,
    fn softmax_and_log_softmax_are_consistent(d in dense(1..7, 1..9, -30.0, 30.0)) {
        let t = tensor_of(&d);
        let sm = t.softmax_rows();
        let lsm = t.log_softmax_rows();
        // exp(log_softmax) == softmax element-wise.
        prop_assert!(lsm.map(f32::exp).approx_eq(&sm, 1e-5));
        for i in 0..t.rows() {
            // Each log-softmax row log-sum-exps to 0 (it is a normalized
            // log-distribution)...
            let lse = {
                let m = lsm.row(i).iter().copied().fold(f32::NEG_INFINITY, f32::max);
                m + lsm.row(i).iter().map(|v| (v - m).exp()).sum::<f32>().ln()
            };
            prop_assert!(lse.abs() < 1e-5, "row {i} log-sum-exp {lse}");
            // ...and ln(softmax) matches wherever softmax has mass.
            for (a, b) in sm.row(i).iter().zip(lsm.row(i)) {
                if *a > 1e-6 {
                    prop_assert!((a.ln() - b).abs() < 1e-4);
                }
            }
        }
    }
}
