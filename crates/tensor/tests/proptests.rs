//! Property-based tests for the tensor kernels.

use lasagne_tensor::Tensor;
use proptest::prelude::*;

/// Strategy: a tensor with the given shape and small finite entries.
fn tensor(rows: usize, cols: usize) -> impl Strategy<Value = Tensor> {
    proptest::collection::vec(-10.0f32..10.0, rows * cols)
        .prop_map(move |v| Tensor::from_vec(rows, cols, v).unwrap())
}

/// Strategy: dimensions in a small range plus matching tensors for matmul.
fn matmul_triple() -> impl Strategy<Value = (Tensor, Tensor, Tensor)> {
    (1usize..6, 1usize..6, 1usize..6, 1usize..6).prop_flat_map(|(n, k, m, p)| {
        (tensor(n, k), tensor(k, m), tensor(m, p))
    })
}

proptest! {
    #[test]
    fn matmul_is_associative((a, b, c) in matmul_triple()) {
        let left = a.matmul(&b).matmul(&c);
        let right = a.matmul(&b.matmul(&c));
        // f32 accumulation differs slightly between orders.
        prop_assert!(left.approx_eq(&right, 1e-2));
    }

    #[test]
    fn matmul_distributes_over_add(
        (n, k, m) in (1usize..6, 1usize..6, 1usize..6)
            .prop_flat_map(|d| (Just(d.0), Just(d.1), Just(d.2))),
        seed in 0u64..1000,
    ) {
        let mut rng = lasagne_tensor::TensorRng::seed_from_u64(seed);
        let a = rng.uniform_tensor(n, k, -2.0, 2.0);
        let b1 = rng.uniform_tensor(k, m, -2.0, 2.0);
        let b2 = rng.uniform_tensor(k, m, -2.0, 2.0);
        let lhs = a.matmul(&b1.add(&b2));
        let rhs = a.matmul(&b1).add(&a.matmul(&b2));
        prop_assert!(lhs.approx_eq(&rhs, 1e-3));
    }

    #[test]
    fn transpose_swaps_matmul(
        seed in 0u64..1000,
    ) {
        let mut rng = lasagne_tensor::TensorRng::seed_from_u64(seed);
        let a = rng.uniform_tensor(4, 3, -1.0, 1.0);
        let b = rng.uniform_tensor(3, 5, -1.0, 1.0);
        // (A·B)ᵀ = Bᵀ·Aᵀ
        let lhs = a.matmul(&b).transpose();
        let rhs = b.transpose().matmul(&a.transpose());
        prop_assert!(lhs.approx_eq(&rhs, 1e-4));
    }

    #[test]
    fn tn_and_nt_agree_with_naive(seed in 0u64..500) {
        let mut rng = lasagne_tensor::TensorRng::seed_from_u64(seed);
        let a = rng.uniform_tensor(5, 4, -3.0, 3.0);
        let b = rng.uniform_tensor(5, 6, -3.0, 3.0);
        prop_assert!(a.matmul_tn(&b).approx_eq(&a.transpose().matmul(&b), 1e-3));
        let c = rng.uniform_tensor(7, 4, -3.0, 3.0);
        prop_assert!(a.matmul_nt(&c).approx_eq(&a.matmul(&c.transpose()), 1e-3));
    }

    #[test]
    fn add_commutes(t in tensor(3, 4), seed in 0u64..100) {
        let mut rng = lasagne_tensor::TensorRng::seed_from_u64(seed);
        let u = rng.uniform_tensor(3, 4, -5.0, 5.0);
        prop_assert!(t.add(&u).approx_eq(&u.add(&t), 1e-6));
    }

    #[test]
    fn softmax_rows_are_distributions(t in tensor(4, 6)) {
        let s = t.softmax_rows();
        for i in 0..4 {
            let sum: f32 = s.row(i).iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-5);
            prop_assert!(s.row(i).iter().all(|&v| (0.0..=1.0).contains(&v)));
        }
    }

    #[test]
    fn sum_rows_then_sum_equals_total(t in tensor(5, 3)) {
        prop_assert!((t.sum_rows().sum() - t.sum()).abs() < 1e-3);
        prop_assert!((t.sum_cols().sum() - t.sum()).abs() < 1e-3);
    }

    #[test]
    fn concat_cols_then_slice_round_trips(a in tensor(3, 2), b in tensor(3, 4)) {
        let c = Tensor::concat_cols(&[&a, &b]);
        prop_assert!(c.slice_cols(0, 2).approx_eq(&a, 0.0));
        prop_assert!(c.slice_cols(2, 6).approx_eq(&b, 0.0));
    }

    #[test]
    fn relu_is_idempotent(t in tensor(3, 3)) {
        let r = t.relu();
        prop_assert!(r.relu().approx_eq(&r, 0.0));
        prop_assert!(r.min() >= 0.0);
    }
}
