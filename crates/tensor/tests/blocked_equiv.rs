//! Kernel-equivalence suite: the register-blocked matmul family must be
//! **bitwise** equal (`to_bits`) to the pinned seed-kernel references —
//! copies of the exact pre-blocking loop nests — on random shapes, for
//! sparse (zero-skip path) and dense left operands, at several thread
//! counts. This is the safety net that makes the blocked rewrite safe:
//! tiling may change scheduling, never the per-element accumulation
//! sequence.
//!
//! One `#[test]`, because the pool's thread count is process-global.

use lasagne_tensor::Tensor;
use lasagne_testkit::gens::{dense, Dense};
use lasagne_testkit::prop::{check, Config};

const SWEEP: [usize; 3] = [1, 4, 3];

fn tensor_of(d: &Dense) -> Tensor {
    Tensor::from_vec(d.rows, d.cols, d.data.clone()).expect("gen produces consistent shapes")
}

fn bits(t: &Tensor) -> Vec<u32> {
    t.as_slice().iter().map(|v| v.to_bits()).collect()
}

/// Zero out a deterministic ~40% of entries so the density probe takes the
/// skip path (the references share the probe, so both sides agree on it).
fn sparsify(t: &Tensor) -> Tensor {
    let (r, c) = t.shape();
    Tensor::from_fn(r, c, |i, j| if (i * 7 + j * 3) % 5 < 2 { t.get(i, j) } else { 0.0 })
}

#[test]
fn blocked_kernels_bitwise_equal_seed_references() {
    let cfg = Config::cases(10);
    check(
        "blocked_vs_seed",
        &cfg,
        // Random shapes straddle tile boundaries: rows/cols run through
        // every residue of the MR=4 / NR=8 micro-tile and the chunk
        // partitioner's uneven trailing chunk.
        &(dense(3..90, 2..70, -1.5, 1.5), 1usize..40),
        |(d, m)| {
            let dense_a = tensor_of(d);
            let sparse_a = sparsify(&dense_a);
            let b = Tensor::from_fn(dense_a.cols(), *m, |i, j| ((i * 29 + j * 11) % 17) as f32 * 0.33 - 2.0);
            let g = Tensor::from_fn(dense_a.rows(), *m, |i, j| ((i * 13 + j * 5) % 9) as f32 * 0.21 - 0.8);
            let bt = b.transpose();
            for a in [&dense_a, &sparse_a] {
                // References are serial; compute them once at 1 thread.
                lasagne_par::set_threads(1);
                let want_mm = bits(&a.matmul_reference(&b));
                let want_tn = bits(&a.matmul_tn_reference(&g));
                let want_nt = bits(&a.matmul_nt_reference(&bt));
                for &t in &SWEEP {
                    lasagne_par::set_threads(t);
                    if bits(&a.matmul(&b)) != want_mm {
                        return Err(format!("matmul != seed at {t} threads"));
                    }
                    if bits(&a.matmul_tn(&g)) != want_tn {
                        return Err(format!("matmul_tn != seed at {t} threads"));
                    }
                    if bits(&a.matmul_nt(&bt)) != want_nt {
                        return Err(format!("matmul_nt != seed at {t} threads"));
                    }
                    // The packed-B panel product with a plain-copy pack is
                    // the fused-dequant engine's exactness contract.
                    let packed = a.matmul_packed_b(b.rows(), b.cols(), |p0, p1, buf| {
                        buf.copy_from_slice(&b.as_slice()[p0 * b.cols()..p1 * b.cols()]);
                    });
                    if bits(&packed) != want_mm {
                        return Err(format!("matmul_packed_b != seed at {t} threads"));
                    }
                }
            }
            Ok(())
        },
    );
}
