//! `lasagne-obs`: a zero-registry-dependency tracing/metrics subsystem.
//!
//! The stack's hot paths (`Tensor::matmul*`, `Csr::spmm*`, the `lasagne-par`
//! pool, trainer epochs, checkpoint I/O) carry [`span!`] RAII guards and
//! [`counter_add`] calls. When no [`TraceSink`] is active they cost **one
//! relaxed atomic load** each — the overhead contract pinned by an assertion
//! in the kernels bench. When a sink is active, spans aggregate into a
//! call tree keyed by `(parent, name)`: entering `spmm` under
//! `epoch/forward` twice bumps one node's `count` rather than growing the
//! tree, so a 150-epoch run produces a screenful of rows, not gigabytes.
//!
//! # Model
//!
//! - A span is entered with [`SpanGuard::enter`] (or the [`span!`] macro)
//!   and recorded when the guard drops. Per-thread nesting is tracked by a
//!   thread-local stack; timing uses monotonic [`Instant`].
//! - Counters are process-global named `u64` sums: `spmm.nnz`,
//!   `matmul.flops`, `train.recoveries`, `par.chunks`, … The serve
//!   overload machinery (DESIGN.md §12) ticks `serve.shed`,
//!   `serve.expired`, `serve.swaps`, `serve.too_large`,
//!   `serve.conn_refused`, and `serve.idle_reaped` here, so a traced
//!   server run shows its overload behavior next to its kernel costs.
//! - [`TraceSink::start`] resets the global state and enables recording;
//!   [`TraceSink::finish`] disables it and returns a [`TraceReport`] —
//!   depth-first span rows plus name-sorted counters — which serializes to
//!   JSONL via the `lasagne-testkit` codec.
//!
//! # Determinism
//!
//! The JSONL artifact is byte-deterministic *modulo durations*: tree shape,
//! ordering, counts, and counter values depend only on the traced workload.
//! In deterministic mode (`TraceSink::start(true)`, CLI
//! `--trace-deterministic`) every duration is recorded as 0 at the source,
//! so two same-seed runs emit **byte-identical** files — diffable in tests.
//!
//! A sink reset (start or finish) bumps a generation counter; a guard whose
//! generation no longer matches at drop time records nothing, so spans
//! straddling a reset can never corrupt the new tree.

use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

mod report;
pub use report::{SpanStat, TraceReport};

/// Global enable flag. The *only* cost on the disabled path.
static ENABLED: AtomicBool = AtomicBool::new(false);
/// When set, durations are recorded as 0 (byte-diffable traces).
static DETERMINISTIC: AtomicBool = AtomicBool::new(false);
/// Bumped on every sink start/finish; stale guards detect it and no-op.
static GENERATION: AtomicU64 = AtomicU64::new(0);

/// True while a [`TraceSink`] is recording. Instrumentation that needs more
/// than a span (e.g. taking an `Instant` for [`counter_add_ns`]) should gate
/// on this.
#[inline(always)]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// True while the active sink is in deterministic (zeroed-durations) mode.
#[inline(always)]
pub fn deterministic() -> bool {
    DETERMINISTIC.load(Ordering::Relaxed)
}

/// One aggregated node of the span call tree: all invocations of `name`
/// under the same parent chain.
struct SpanNode {
    name: &'static str,
    parent: Option<usize>,
    children: Vec<usize>,
    count: u64,
    total_ns: u64,
    /// Time attributed to direct children (subtracted to get self time).
    child_ns: u64,
}

struct Tree {
    nodes: Vec<SpanNode>,
    roots: Vec<usize>,
    counters: Vec<(&'static str, u64)>,
}

static TREE: Mutex<Tree> = Mutex::new(Tree {
    nodes: Vec::new(),
    roots: Vec::new(),
    counters: Vec::new(),
});

thread_local! {
    /// Stack of `(generation, node index)` for spans open on this thread.
    static STACK: RefCell<Vec<(u64, usize)>> = const { RefCell::new(Vec::new()) };
}

fn lock_tree() -> std::sync::MutexGuard<'static, Tree> {
    TREE.lock().unwrap_or_else(|e| e.into_inner())
}

/// RAII span guard. Construction on the disabled path is a single relaxed
/// atomic load; everything else lives in the cold functions below.
pub struct SpanGuard {
    active: Option<ActiveSpan>,
}

struct ActiveSpan {
    node: usize,
    generation: u64,
    start: Instant,
}

impl SpanGuard {
    /// Enter a span named `name`, nested under the innermost span open on
    /// this thread. No-op (and no allocation) when tracing is disabled.
    #[inline(always)]
    pub fn enter(name: &'static str) -> SpanGuard {
        if !ENABLED.load(Ordering::Relaxed) {
            return SpanGuard { active: None };
        }
        SpanGuard { active: Some(enter_slow(name)) }
    }
}

#[inline(never)]
#[cold]
fn enter_slow(name: &'static str) -> ActiveSpan {
    let generation = GENERATION.load(Ordering::Relaxed);
    // The parent is the top of this thread's stack — but only if it was
    // pushed under the *current* sink; spans left open across a reset must
    // not become parents in the new tree.
    let parent = STACK.with(|s| {
        s.borrow().last().and_then(|&(g, n)| (g == generation).then_some(n))
    });
    let node = {
        let mut tree = lock_tree();
        let siblings: &[usize] = match parent {
            Some(p) if p < tree.nodes.len() => &tree.nodes[p].children,
            Some(_) => &[],
            None => &tree.roots,
        };
        match siblings.iter().copied().find(|&c| tree.nodes[c].name == name) {
            Some(existing) => existing,
            None => {
                let idx = tree.nodes.len();
                tree.nodes.push(SpanNode {
                    name,
                    parent,
                    children: Vec::new(),
                    count: 0,
                    total_ns: 0,
                    child_ns: 0,
                });
                match parent {
                    Some(p) if p < idx => tree.nodes[p].children.push(idx),
                    _ => tree.roots.push(idx),
                }
                idx
            }
        }
    };
    STACK.with(|s| s.borrow_mut().push((generation, node)));
    ActiveSpan { node, generation, start: Instant::now() }
}

impl Drop for SpanGuard {
    #[inline(always)]
    fn drop(&mut self) {
        if let Some(active) = self.active.take() {
            exit_slow(active);
        }
    }
}

#[inline(never)]
#[cold]
fn exit_slow(active: ActiveSpan) {
    let elapsed = active.start.elapsed();
    // Spans nest strictly per thread, so our entry is the top of the stack
    // whether or not a reset happened in between.
    STACK.with(|s| {
        s.borrow_mut().pop();
    });
    if GENERATION.load(Ordering::Relaxed) != active.generation {
        return; // sink was reset mid-span; the node index is stale
    }
    let ns = if DETERMINISTIC.load(Ordering::Relaxed) {
        0
    } else {
        u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX)
    };
    let mut tree = lock_tree();
    if active.node >= tree.nodes.len() {
        return;
    }
    let parent = {
        let node = &mut tree.nodes[active.node];
        node.count += 1;
        node.total_ns = node.total_ns.saturating_add(ns);
        node.parent
    };
    if let Some(p) = parent {
        tree.nodes[p].child_ns = tree.nodes[p].child_ns.saturating_add(ns);
    }
}

/// Enter a span for the rest of the enclosing scope:
/// `span!("spmm");`
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        let _lasagne_obs_span = $crate::SpanGuard::enter($name);
    };
}

/// Add `delta` to the named counter (creating it at 0 first). Counter names
/// are static so the disabled path allocates nothing.
#[inline(always)]
pub fn counter_add(name: &'static str, delta: u64) {
    if !ENABLED.load(Ordering::Relaxed) {
        return;
    }
    counter_add_slow(name, delta);
}

/// [`counter_add`] for *time-valued* counters (e.g. per-worker pool busy
/// time): in deterministic mode the value is recorded as 0 so the counter
/// key stays present but the artifact stays byte-diffable.
#[inline(always)]
pub fn counter_add_ns(name: &'static str, ns: u64) {
    if !ENABLED.load(Ordering::Relaxed) {
        return;
    }
    counter_add_slow(name, if DETERMINISTIC.load(Ordering::Relaxed) { 0 } else { ns });
}

#[inline(never)]
#[cold]
fn counter_add_slow(name: &'static str, delta: u64) {
    let mut tree = lock_tree();
    match tree.counters.iter_mut().find(|(n, _)| *n == name) {
        Some((_, v)) => *v = v.saturating_add(delta),
        None => tree.counters.push((name, delta)),
    }
}

/// A recording session. `start` resets the global span tree and counters
/// and enables recording; `finish` disables it and snapshots the report.
/// Dropping an unfinished sink disables recording without a report.
pub struct TraceSink {
    deterministic: bool,
    finished: bool,
}

impl TraceSink {
    /// Begin recording. Any previously accumulated spans/counters are
    /// discarded; guards still open from before the reset will detect the
    /// generation bump and record nothing.
    pub fn start(deterministic: bool) -> TraceSink {
        let mut tree = lock_tree();
        tree.nodes.clear();
        tree.roots.clear();
        tree.counters.clear();
        GENERATION.fetch_add(1, Ordering::Relaxed);
        DETERMINISTIC.store(deterministic, Ordering::Relaxed);
        ENABLED.store(true, Ordering::Relaxed);
        TraceSink { deterministic, finished: false }
    }

    /// Stop recording and return the aggregated report.
    pub fn finish(mut self) -> TraceReport {
        self.finished = true;
        ENABLED.store(false, Ordering::Relaxed);
        let mut tree = lock_tree();
        GENERATION.fetch_add(1, Ordering::Relaxed);
        let report = snapshot(&tree, self.deterministic);
        tree.nodes.clear();
        tree.roots.clear();
        tree.counters.clear();
        report
    }
}

impl Drop for TraceSink {
    fn drop(&mut self) {
        if !self.finished {
            ENABLED.store(false, Ordering::Relaxed);
            GENERATION.fetch_add(1, Ordering::Relaxed);
        }
    }
}

/// Depth-first (insertion-ordered) flattening of the call tree plus
/// name-sorted counters. Deterministic in the traced workload alone.
fn snapshot(tree: &Tree, deterministic: bool) -> TraceReport {
    let mut spans = Vec::with_capacity(tree.nodes.len());
    fn walk(tree: &Tree, idx: usize, prefix: &str, depth: usize, out: &mut Vec<SpanStat>) {
        let node = &tree.nodes[idx];
        let path = if prefix.is_empty() {
            node.name.to_string()
        } else {
            format!("{prefix}/{}", node.name)
        };
        out.push(SpanStat {
            name: node.name.to_string(),
            depth,
            count: node.count,
            total_ns: node.total_ns,
            self_ns: node.total_ns.saturating_sub(node.child_ns),
            path: path.clone(),
        });
        for &c in &node.children {
            walk(tree, c, &path, depth + 1, out);
        }
    }
    for &r in &tree.roots {
        walk(tree, r, "", 0, &mut spans);
    }
    let mut counters: Vec<(String, u64)> =
        tree.counters.iter().map(|&(n, v)| (n.to_string(), v)).collect();
    counters.sort_by(|a, b| a.0.cmp(&b.0));
    TraceReport { deterministic, spans, counters }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The span tree and counters are process-global; tests must not record
    /// concurrently or they would observe each other's spans.
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    fn workload() -> TraceReport {
        let sink = TraceSink::start(true);
        for _ in 0..3 {
            span!("epoch");
            {
                span!("forward");
                span!("spmm");
                counter_add("spmm.nnz", 10);
            }
            {
                span!("backward");
            }
        }
        counter_add("flops", 7);
        sink.finish()
    }

    #[test]
    fn disabled_guard_is_inert() {
        let _l = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        assert!(!enabled());
        {
            span!("never");
            counter_add("never", 1);
        }
        let report = TraceSink::start(true).finish();
        assert!(report.spans.is_empty(), "pre-sink spans must not leak into a report");
        assert!(report.counters.is_empty());
    }

    #[test]
    fn call_tree_aggregates_by_path() {
        let _l = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let report = workload();
        let paths: Vec<(&str, u64, usize)> =
            report.spans.iter().map(|s| (s.path.as_str(), s.count, s.depth)).collect();
        assert_eq!(
            paths,
            vec![
                ("epoch", 3, 0),
                ("epoch/forward", 3, 1),
                ("epoch/forward/spmm", 3, 2),
                ("epoch/backward", 3, 1),
            ]
        );
        assert_eq!(report.counter("spmm.nnz"), Some(30));
        assert_eq!(report.counter("flops"), Some(7));
        // Counters come out name-sorted regardless of insertion order.
        assert_eq!(report.counters[0].0, "flops");
    }

    #[test]
    fn deterministic_mode_zeroes_durations_and_bytes_match() {
        let _l = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let a = workload();
        let b = workload();
        assert!(a.spans.iter().all(|s| s.total_ns == 0 && s.self_ns == 0));
        assert_eq!(a.to_jsonl(), b.to_jsonl(), "deterministic traces must be byte-identical");
    }

    #[test]
    fn timed_mode_records_nonzero_durations() {
        let _l = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let sink = TraceSink::start(false);
        {
            span!("outer");
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        let report = sink.finish();
        let (count, total) = report.total_named("outer");
        assert_eq!(count, 1);
        assert!(total >= 1_000_000, "slept 2ms but recorded {total}ns");
    }

    #[test]
    fn jsonl_round_trips() {
        let _l = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let report = workload();
        let text = report.to_jsonl();
        let parsed = TraceReport::parse_jsonl(&text).expect("parse back");
        assert_eq!(parsed.to_jsonl(), text);
        assert!(parsed.deterministic);
        assert_eq!(parsed.spans.len(), report.spans.len());
        assert_eq!(parsed.counters, report.counters);
    }

    #[test]
    fn guard_straddling_a_reset_records_nothing() {
        let _l = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let sink = TraceSink::start(true);
        let stale = SpanGuard::enter("stale");
        drop(sink.finish());
        let sink2 = TraceSink::start(true);
        drop(stale); // generation mismatch: must not touch the new tree
        {
            span!("fresh");
        }
        let report = sink2.finish();
        let paths: Vec<&str> = report.spans.iter().map(|s| s.path.as_str()).collect();
        assert_eq!(paths, vec!["fresh"], "stale guard leaked into {paths:?}");
    }
}
