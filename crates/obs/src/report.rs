//! The aggregated trace artifact: flattened span rows + counters, with a
//! JSONL serialization over the `lasagne-testkit` codec.
//!
//! # JSONL schema (one object per line)
//!
//! ```text
//! {"type":"meta","version":1,"deterministic":false,"spans":N,"counters":M}
//! {"type":"span","path":"epoch/forward/spmm","name":"spmm","depth":2,
//!  "count":450,"total_ns":1234567,"self_ns":1200000}
//! {"type":"counter","name":"spmm.nnz","value":5866200}
//! ```
//!
//! Spans appear depth-first in tree insertion order; counters are sorted by
//! name. Both orders — and every field except the `*_ns` durations — are a
//! pure function of the traced workload, so the file is byte-deterministic
//! modulo timings, and exactly byte-deterministic in deterministic mode.

use std::path::Path;

use lasagne_testkit::json::Json;

/// One aggregated call-tree node: every invocation of `name` reached
/// through the same chain of ancestors (`path`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanStat {
    /// `/`-joined ancestor chain ending in `name`, e.g. `epoch/forward/spmm`.
    pub path: String,
    pub name: String,
    pub depth: usize,
    pub count: u64,
    /// Wall time across all invocations (0 in deterministic mode).
    pub total_ns: u64,
    /// `total_ns` minus time attributed to direct child spans.
    pub self_ns: u64,
}

/// The result of a [`crate::TraceSink`] recording session.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceReport {
    pub deterministic: bool,
    pub spans: Vec<SpanStat>,
    pub counters: Vec<(String, u64)>,
}

const SCHEMA_VERSION: u64 = 1;

fn num(v: u64) -> Json {
    // Realistic counts/durations are far below 2^53, so the f64-backed
    // codec round-trips them exactly; clamp pathological values instead of
    // silently losing integrality.
    Json::Num(v.min(1u64 << 53) as f64)
}

impl TraceReport {
    /// Sum of `(count, total_ns)` over every span row with this leaf name,
    /// across all paths (e.g. `spmm` under both `forward` and `backward`).
    pub fn total_named(&self, name: &str) -> (u64, u64) {
        self.spans
            .iter()
            .filter(|s| s.name == name)
            .fold((0, 0), |(c, t), s| (c + s.count, t + s.total_ns))
    }

    /// The value of a named counter, if it was ever touched.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters.iter().find(|(n, _)| n == name).map(|&(_, v)| v)
    }

    /// The `n` span rows with the largest self time (ties broken by path so
    /// the order is stable even when all durations are zero).
    pub fn top_by_self(&self, n: usize) -> Vec<&SpanStat> {
        let mut rows: Vec<&SpanStat> = self.spans.iter().collect();
        rows.sort_by(|a, b| b.self_ns.cmp(&a.self_ns).then_with(|| a.path.cmp(&b.path)));
        rows.truncate(n);
        rows
    }

    /// Serialize to JSONL (meta line, span lines, counter lines).
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        let meta = Json::Obj(vec![
            ("type".into(), Json::Str("meta".into())),
            ("version".into(), num(SCHEMA_VERSION)),
            ("deterministic".into(), Json::Bool(self.deterministic)),
            ("spans".into(), num(self.spans.len() as u64)),
            ("counters".into(), num(self.counters.len() as u64)),
        ]);
        out.push_str(&meta.to_string());
        out.push('\n');
        for s in &self.spans {
            let line = Json::Obj(vec![
                ("type".into(), Json::Str("span".into())),
                ("path".into(), Json::Str(s.path.clone())),
                ("name".into(), Json::Str(s.name.clone())),
                ("depth".into(), num(s.depth as u64)),
                ("count".into(), num(s.count)),
                ("total_ns".into(), num(s.total_ns)),
                ("self_ns".into(), num(s.self_ns)),
            ]);
            out.push_str(&line.to_string());
            out.push('\n');
        }
        for (name, value) in &self.counters {
            let line = Json::Obj(vec![
                ("type".into(), Json::Str("counter".into())),
                ("name".into(), Json::Str(name.clone())),
                ("value".into(), num(*value)),
            ]);
            out.push_str(&line.to_string());
            out.push('\n');
        }
        out
    }

    /// Write [`Self::to_jsonl`] to a file.
    pub fn write_jsonl(&self, path: &Path) -> std::io::Result<()> {
        std::fs::write(path, self.to_jsonl())
    }

    /// Parse a JSONL artifact back into a report, validating the schema.
    pub fn parse_jsonl(text: &str) -> Result<TraceReport, String> {
        let mut lines = text.lines().enumerate().filter(|(_, l)| !l.trim().is_empty());
        let (_, meta_line) = lines.next().ok_or("empty trace file")?;
        let meta = Json::parse(meta_line).map_err(|e| format!("meta line: {e}"))?;
        if meta.get("type").and_then(Json::as_str) != Some("meta") {
            return Err("first line is not a meta record".into());
        }
        match meta.get("version").and_then(Json::as_u64) {
            Some(SCHEMA_VERSION) => {}
            v => return Err(format!("unsupported trace schema version {v:?}")),
        }
        let deterministic = meta
            .get("deterministic")
            .and_then(Json::as_bool)
            .ok_or("meta record missing 'deterministic'")?;
        let n_spans = meta.get("spans").and_then(Json::as_usize).ok_or("meta missing 'spans'")?;
        let n_counters =
            meta.get("counters").and_then(Json::as_usize).ok_or("meta missing 'counters'")?;

        let mut spans = Vec::new();
        let mut counters = Vec::new();
        for (i, line) in lines {
            let obj = Json::parse(line).map_err(|e| format!("line {}: {e}", i + 1))?;
            let field_str = |k: &str| {
                obj.get(k)
                    .and_then(Json::as_str)
                    .map(str::to_string)
                    .ok_or_else(|| format!("line {}: missing string '{k}'", i + 1))
            };
            let field_u64 = |k: &str| {
                obj.get(k)
                    .and_then(Json::as_u64)
                    .ok_or_else(|| format!("line {}: missing integer '{k}'", i + 1))
            };
            match obj.get("type").and_then(Json::as_str) {
                Some("span") => spans.push(SpanStat {
                    path: field_str("path")?,
                    name: field_str("name")?,
                    depth: field_u64("depth")? as usize,
                    count: field_u64("count")?,
                    total_ns: field_u64("total_ns")?,
                    self_ns: field_u64("self_ns")?,
                }),
                Some("counter") => counters.push((field_str("name")?, field_u64("value")?)),
                t => return Err(format!("line {}: unexpected record type {t:?}", i + 1)),
            }
        }
        if spans.len() != n_spans {
            return Err(format!("meta promised {n_spans} spans, found {}", spans.len()));
        }
        if counters.len() != n_counters {
            return Err(format!("meta promised {n_counters} counters, found {}", counters.len()));
        }
        Ok(TraceReport { deterministic, spans, counters })
    }
}
