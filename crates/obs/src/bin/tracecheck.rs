//! Validate a JSONL trace artifact: parses under the testkit codec, the
//! schema round-trips, and the required span names are present (with
//! non-zero aggregate durations unless the trace is deterministic).
//!
//! ```text
//! cargo run -p lasagne-obs --bin tracecheck -- PATH [--require name,name,...]
//! ```
//!
//! Exit status 0 on success; 1 with a diagnostic otherwise. Used by
//! `scripts/verify.sh` to gate the CLI trace stage.

use lasagne_obs::TraceReport;

const DEFAULT_REQUIRED: &[&str] =
    &["spmm", "matmul", "epoch", "forward", "backward", "step", "checkpoint.save"];

fn fail(msg: &str) -> ! {
    eprintln!("tracecheck: {msg}");
    std::process::exit(1);
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut path: Option<&str> = None;
    let mut required: Vec<String> = DEFAULT_REQUIRED.iter().map(|s| s.to_string()).collect();
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--require" => {
                i += 1;
                let list = argv.get(i).unwrap_or_else(|| {
                    fail("--require needs a comma-separated span list")
                });
                required = list.split(',').map(str::to_string).collect();
            }
            p if path.is_none() => path = Some(p),
            _ => fail("usage: tracecheck PATH [--require name,name,...]"),
        }
        i += 1;
    }
    let path = path.unwrap_or_else(|| fail("usage: tracecheck PATH [--require name,name,...]"));

    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| fail(&format!("cannot read {path}: {e}")));
    let report = TraceReport::parse_jsonl(&text)
        .unwrap_or_else(|e| fail(&format!("{path}: {e}")));
    if report.to_jsonl() != text {
        fail(&format!("{path}: artifact does not round-trip through the codec"));
    }

    for name in &required {
        let (count, total_ns) = report.total_named(name);
        if count == 0 {
            fail(&format!("{path}: required span '{name}' is missing"));
        }
        if !report.deterministic && total_ns == 0 {
            fail(&format!("{path}: span '{name}' has zero aggregate duration in a timed trace"));
        }
    }
    println!(
        "tracecheck: {path} OK ({} spans, {} counters, deterministic={})",
        report.spans.len(),
        report.counters.len(),
        report.deterministic
    );
}
