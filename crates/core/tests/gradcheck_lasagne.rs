//! Gradient checks for the Lasagne model itself: the GC-FM output layer
//! and the three node-aware aggregators (Weighted, Stochastic,
//! Max-Pooling), each at thread counts {1, 4}. The 13 baseline models are
//! swept in `crates/gnn/tests/gradcheck_models.rs`; this file covers the
//! pieces that live in `lasagne-core` (which `gnn` cannot depend on).
//!
//! The Stochastic aggregator's gate-probability parameter `agg.p` is
//! excluded from its sweep: `stochastic_prob_node` subtracts the row max
//! as a *constant* (a stop-gradient stabilizer, standard for
//! softmax-style normalizers), so the analytic gradient intentionally
//! omits the max path while a central difference sees it — at the argmax
//! coordinates the two disagree by construction, most visibly at the
//! all-zeros init where every entry ties for the max. Every other
//! parameter of the Stochastic model (convolutions, GC-FM, output head)
//! is still checked.

use std::rc::Rc;

use lasagne_autograd::{grad_check_owner, NodeId, ParamStore, Tape};
use lasagne_core::{AggregatorKind, GcFm, Lasagne, LasagneConfig};
use lasagne_gnn::{GraphContext, Hyper, Mode, NodeClassifier};
use lasagne_graph::generators::{dc_sbm, DcSbmConfig};
use lasagne_sparse::Csr;
use lasagne_tensor::TensorRng;

const EPS: f32 = 5e-3;
const TOL: f32 = 1e-2;
const IN_DIM: usize = 6;
const CLASSES: usize = 3;
const NODES: usize = 24;

fn tiny_ctx(seed: u64) -> (GraphContext, Vec<usize>) {
    let mut rng = TensorRng::seed_from_u64(seed);
    let (g, labels) = dc_sbm(
        &DcSbmConfig {
            nodes: NODES,
            classes: CLASSES,
            avg_degree: 4.0,
            homophily: 0.9,
            power_exponent: 2.5,
            max_weight_ratio: 20.0,
        },
        &mut rng,
    );
    let features = lasagne_datasets::generate_features(
        &g,
        &labels,
        CLASSES,
        &lasagne_datasets::FeatureConfig {
            dim: IN_DIM,
            signal: 1.5,
            noise_scale: 0.5,
            degree_noise_exponent: 0.3,
            mask_base: 0.0,
        },
        &mut rng,
    );
    let train: Vec<usize> = (0..12).collect();
    (GraphContext::new(&g, features, labels, CLASSES), train)
}

fn store_of(m: &mut Box<dyn NodeClassifier>) -> &mut ParamStore {
    m.store_mut()
}

/// Gradcheck a full Lasagne model (depth 3 so the aggregator actually has
/// multiple layer outputs to combine), skipping parameters by name.
fn check_lasagne(agg: AggregatorKind, skip: fn(&str) -> bool) {
    let hyper = Hyper { hidden: 4, depth: 3, dropout_keep: 1.0, gcfm_k: 2, ..Hyper::default() };
    let cfg = LasagneConfig::from_hyper(&hyper, agg);
    let mut model: Box<dyn NodeClassifier> =
        Box::new(Lasagne::new(IN_DIM, CLASSES, Some(NODES), &cfg, 5));
    let (ctx, train) = tiny_ctx(11);
    let labels = Rc::new((*ctx.labels).clone());
    let idx = Rc::new(train);
    for &threads in &[1usize, 4] {
        lasagne_par::set_threads(threads);
        let forward = |m: &Box<dyn NodeClassifier>, tape: &mut Tape| -> NodeId {
            let mut rng = TensorRng::seed_from_u64(7);
            let out = m.forward(tape, &ctx, Mode::Eval, &mut rng);
            let lp = tape.log_softmax(out.logits);
            let mut loss = tape.nll_masked(lp, labels.clone(), idx.clone());
            if let Some(reg) = out.regularizer {
                loss = tape.add(loss, reg);
            }
            loss
        };
        let report = grad_check_owner(&mut model, store_of, skip, EPS, forward);
        assert!(report.checked > 0, "{agg:?}: no parameters were checked");
        assert!(
            report.max_rel_err < TOL,
            "Lasagne-{agg:?} @ {threads} thread(s): max_rel_err {} (max_abs_err {}, {} coords)",
            report.max_rel_err,
            report.max_abs_err,
            report.checked
        );
    }
}

#[test]
fn lasagne_weighted_gradients_match() {
    check_lasagne(AggregatorKind::Weighted, |_| false);
}

#[test]
fn lasagne_stochastic_gradients_match_except_stop_grad_gate() {
    // `agg.p` skipped — see the module docs for why its analytic gradient
    // differs from a central difference by design.
    check_lasagne(AggregatorKind::Stochastic, |name| name == "agg.p");
}

#[test]
fn lasagne_maxpool_gradients_match() {
    check_lasagne(AggregatorKind::MaxPooling, |_| false);
}

#[test]
fn lasagne_mean_gradients_match() {
    check_lasagne(AggregatorKind::Mean, |_| false);
}

#[test]
fn gcfm_layer_gradients_match() {
    // The GC-FM output layer on its own (both `hs` inputs constant, so the
    // whole sweep exercises only GC-FM's pairwise/linear parameters), at
    // both thread counts.
    for &threads in &[1usize, 4] {
        lasagne_par::set_threads(threads);
        let mut rng = TensorRng::seed_from_u64(3);
        let mut store = ParamStore::new();
        let gcfm = GcFm::new(&mut store, &[IN_DIM, 4], CLASSES, 2, &mut rng);
        let a_hat = Rc::new(Csr::identity(NODES));
        let h1 = rng.uniform_tensor(NODES, IN_DIM, -1.0, 1.0);
        let h2 = rng.uniform_tensor(NODES, 4, -1.0, 1.0);
        let report = lasagne_autograd::grad_check(&mut store, EPS, |tape, s| {
            let a = tape.constant(h1.clone());
            let b = tape.constant(h2.clone());
            let o = gcfm.forward(tape, s, &a_hat, &[a, b], false);
            let sq = tape.mul(o, o);
            tape.mean_all(sq)
        });
        assert!(report.checked > 0);
        assert!(
            report.max_rel_err < TOL,
            "GC-FM @ {threads} thread(s): max_rel_err {} (max_abs_err {}, {} coords)",
            report.max_rel_err,
            report.max_abs_err,
            report.checked
        );
    }
}
