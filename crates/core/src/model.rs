//! The Lasagne model (Fig 3): base convolutions + node-aware layer
//! aggregators + GC-FM output.

use lasagne_autograd::{NodeId, ParamId, ParamStore, Tape};
use lasagne_gnn::{ForwardOutput, GraphContext, Mode, NodeClassifier};
use lasagne_tensor::{Tensor, TensorRng};

use crate::config::{AggregatorKind, BaseConv, LasagneConfig};
use crate::gcfm::GcFm;

/// Per-layer base convolution parameters (Table 7 swaps the flavor).
enum ConvParams {
    Gcn { w: ParamId, b: ParamId },
    Sgc { w: ParamId, b: ParamId },
    Gat { w: ParamId, a_src: ParamId, a_dst: ParamId },
}

/// The Lasagne node classifier.
pub struct Lasagne {
    cfg: LasagneConfig,
    /// Node count the per-node parameters are tied to (`Some` for Weighted
    /// and Stochastic; `None` for the inductive-capable Max-Pooling).
    pinned_nodes: Option<usize>,
    /// Base conv of each hidden layer (`hidden_dims.len()` of them).
    conv: Vec<ConvParams>,
    /// `pair_w[l][i]` = `W(il) ∈ R^{D(i)×D(l)}` — the extra GC transform of
    /// Eq (5) from source layer `i` into consuming layer `l` (`i < l`).
    pair_w: Vec<Vec<ParamId>>,
    /// Weighted aggregator: `c[l-1]` = `C(l) ∈ R^{N×(l+1)}` for hidden
    /// layer `l ≥ 1` (col `i < l` weights source layer `i`, col `l` the
    /// layer's own output).
    c: Vec<ParamId>,
    /// Stochastic aggregator: `P ∈ R^{N×H}` gate logits (Eq 6).
    p: Option<ParamId>,
    /// GC-FM output layer, or the plain GC output of the Table 6 ablation.
    gcfm: Option<GcFm>,
    out_conv: Option<(ParamId, ParamId)>,
    store: ParamStore,
}

impl Lasagne {
    /// Build a Lasagne model.
    ///
    /// `num_nodes` must be `Some(N)` for the Weighted and Stochastic
    /// aggregators (their `C`/`P` parameters are per node — the reason the
    /// paper restricts inductive tasks to Max-Pooling); it is ignored for
    /// Max-Pooling.
    pub fn new(
        in_dim: usize,
        num_classes: usize,
        num_nodes: Option<usize>,
        cfg: &LasagneConfig,
        seed: u64,
    ) -> Lasagne {
        let h = cfg.hidden_dims.len();
        assert!(h >= 1, "Lasagne: need at least one hidden layer");
        let mut rng = TensorRng::seed_from_u64(seed);
        let mut store = ParamStore::new();

        let mut conv = Vec::with_capacity(h);
        for l in 0..h {
            let din = if l == 0 { in_dim } else { cfg.hidden_dims[l - 1] };
            let dout = cfg.hidden_dims[l];
            conv.push(Self::make_conv(&mut store, cfg.base, l, din, dout, &mut rng));
        }

        let mut pair_w = Vec::with_capacity(h);
        for l in 0..h {
            let ws = (0..l)
                .map(|i| {
                    store.add(
                        format!("pair.w{i}_{l}"),
                        rng.glorot_uniform(cfg.hidden_dims[i], cfg.hidden_dims[l]),
                    )
                })
                .collect();
            pair_w.push(ws);
        }

        let mut c = Vec::new();
        let mut p = None;
        match cfg.aggregator {
            AggregatorKind::Weighted => {
                let n = num_nodes
                    .expect("Lasagne(Weighted): per-node C(l) parameters need num_nodes");
                for l in 1..h {
                    // Own-output column starts at 1 (plain-GCN behavior),
                    // earlier layers at 0.2 (mild residual contributions).
                    let init = Tensor::from_fn(n, l + 1, |_, j| if j == l { 1.0 } else { 0.2 });
                    c.push(store.add_with_decay(format!("agg.c{l}"), init, false));
                }
            }
            AggregatorKind::Stochastic => {
                let n = num_nodes
                    .expect("Lasagne(Stochastic): per-node P parameters need num_nodes");
                // P = 0 ⇒ all probabilities 1 ⇒ dense aggregation at init.
                p = Some(store.add_with_decay("agg.p", Tensor::zeros(n, h), false));
            }
            AggregatorKind::MaxPooling | AggregatorKind::Mean => {}
        }

        let (gcfm, out_conv) = if cfg.use_gcfm {
            (
                Some(GcFm::new(&mut store, &cfg.hidden_dims, num_classes, cfg.gcfm_k, &mut rng)),
                None,
            )
        } else {
            let w = store.add("out.w", rng.glorot_uniform(cfg.hidden_dims[h - 1], num_classes));
            let b = store.add_with_decay("out.b", Tensor::zeros(1, num_classes), false);
            (None, Some((w, b)))
        };

        Lasagne {
            cfg: cfg.clone(),
            pinned_nodes: match cfg.aggregator {
                AggregatorKind::MaxPooling | AggregatorKind::Mean => None,
                _ => num_nodes,
            },
            conv,
            pair_w,
            c,
            p,
            gcfm,
            out_conv,
            store,
        }
    }

    fn make_conv(
        store: &mut ParamStore,
        base: BaseConv,
        l: usize,
        din: usize,
        dout: usize,
        rng: &mut TensorRng,
    ) -> ConvParams {
        match base {
            BaseConv::Gcn => ConvParams::Gcn {
                w: store.add(format!("gc{l}.w"), rng.glorot_uniform(din, dout)),
                b: store.add_with_decay(format!("gc{l}.b"), Tensor::zeros(1, dout), false),
            },
            BaseConv::Sgc => ConvParams::Sgc {
                w: store.add(format!("sgc{l}.w"), rng.glorot_uniform(din, dout)),
                b: store.add_with_decay(format!("sgc{l}.b"), Tensor::zeros(1, dout), false),
            },
            BaseConv::Gat => ConvParams::Gat {
                w: store.add(format!("gat{l}.w"), rng.glorot_uniform(din, dout)),
                a_src: store.add(format!("gat{l}.a_src"), rng.glorot_uniform(dout, 1)),
                a_dst: store.add(format!("gat{l}.a_dst"), rng.glorot_uniform(dout, 1)),
            },
        }
    }

    /// One base-convolution step (the per-layer node aggregation that
    /// Lasagne keeps from the underlying model, §5.2.5).
    fn base_forward(
        &self,
        tape: &mut Tape,
        ctx: &GraphContext,
        layer: usize,
        x: NodeId,
    ) -> NodeId {
        match &self.conv[layer] {
            ConvParams::Gcn { w, b } => {
                let wn = tape.param(*w, &self.store);
                let xw = tape.matmul(x, wn);
                let prop = tape.spmm(ctx.a_hat.clone(), xw);
                let bn = tape.param(*b, &self.store);
                let biased = tape.add_row_broadcast(prop, bn);
                tape.relu(biased)
            }
            ConvParams::Sgc { w, b } => {
                // Â²(xW): SGC's linear two-hop propagation, no activation.
                let wn = tape.param(*w, &self.store);
                let xw = tape.matmul(x, wn);
                let p1 = tape.spmm(ctx.a_hat.clone(), xw);
                let p2 = tape.spmm(ctx.a_hat.clone(), p1);
                let bn = tape.param(*b, &self.store);
                tape.add_row_broadcast(p2, bn)
            }
            ConvParams::Gat { w, a_src, a_dst } => {
                let wn = tape.param(*w, &self.store);
                let z = tape.matmul(x, wn);
                let a1 = tape.param(*a_src, &self.store);
                let a2 = tape.param(*a_dst, &self.store);
                let ssrc = tape.matmul(z, a1);
                let sdst = tape.matmul(z, a2);
                let agg =
                    tape.gat_aggregate(ctx.adj_loops.clone(), z, ssrc, sdst, self.cfg.gat_slope);
                tape.relu(agg)
            }
        }
    }

    /// The stochastic aggregator's normalized probabilities
    /// `p_ij = e^{P_ij} / max_k e^{P_ik}` (Eq 6) as a tape node. The row
    /// max in the denominator is treated as a constant (stop-gradient), the
    /// standard softmax-style stabilization; at the argmax the probability
    /// is exactly 1.
    fn stochastic_prob_node(&self, tape: &mut Tape) -> NodeId {
        let pid = self.p.expect("stochastic aggregator");
        let pv = self.store.value(pid);
        let row_max: Vec<f32> = (0..pv.rows())
            .map(|i| pv.row(i).iter().copied().fold(f32::NEG_INFINITY, f32::max))
            .collect();
        let p_node = tape.param(pid, &self.store);
        let neg_max = tape.constant(Tensor::col_vector(
            &row_max.iter().map(|&m| -m).collect::<Vec<_>>(),
        ));
        let shifted = tape.add_col_broadcast(p_node, neg_max);
        tape.exp(shifted)
    }

    /// Aggregate layer `l`'s raw output with all previous layers (Eq 4/5).
    #[allow(clippy::too_many_arguments)]
    fn aggregate(
        &self,
        tape: &mut Tape,
        ctx: &GraphContext,
        l: usize,
        previous: &[NodeId],
        raw: NodeId,
        probs: Option<NodeId>,
        mode: Mode,
        rng: &mut TensorRng,
    ) -> NodeId {
        match self.cfg.aggregator {
            AggregatorKind::Weighted => {
                let c_node = tape.param(self.c[l - 1], &self.store);
                let c_raw = tape.slice_cols(c_node, l, l + 1);
                let mut acc = tape.mul_col_broadcast(raw, c_raw);
                for (i, &h_prev) in previous.iter().enumerate() {
                    let c_i = tape.slice_cols(c_node, i, i + 1);
                    let scaled = tape.mul_col_broadcast(h_prev, c_i);
                    let w = tape.param(self.pair_w[l][i], &self.store);
                    let trans = tape.matmul(scaled, w);
                    let prop = tape.spmm(ctx.a_hat.clone(), trans);
                    acc = tape.add(acc, prop);
                }
                acc
            }
            AggregatorKind::Stochastic => {
                let probs = probs.expect("stochastic probabilities computed per forward");
                let gate = |tape: &mut Tape, x: NodeId, col: usize, rng: &mut TensorRng| {
                    let p_col = tape.slice_cols(probs, col, col + 1);
                    match mode {
                        Mode::Train => tape.st_bernoulli_gate(x, p_col, rng),
                        Mode::Eval => tape.expected_gate(x, p_col),
                    }
                };
                let mut acc = gate(tape, raw, l, rng);
                for (i, &h_prev) in previous.iter().enumerate() {
                    let gated = gate(tape, h_prev, i, rng);
                    let w = tape.param(self.pair_w[l][i], &self.store);
                    let trans = tape.matmul(gated, w);
                    let prop = tape.spmm(ctx.a_hat.clone(), trans);
                    acc = tape.add(acc, prop);
                }
                acc
            }
            AggregatorKind::MaxPooling => {
                let mut parts = Vec::with_capacity(previous.len() + 1);
                for (i, &h_prev) in previous.iter().enumerate() {
                    let w = tape.param(self.pair_w[l][i], &self.store);
                    let trans = tape.matmul(h_prev, w);
                    parts.push(tape.spmm(ctx.a_hat.clone(), trans));
                }
                parts.push(raw);
                tape.max_stack(&parts)
            }
            AggregatorKind::Mean => {
                // Uniform (node-blind) average of all contributions — the
                // §4.1 "mean" alternative, kept as a node-awareness
                // ablation.
                let mut acc = raw;
                for (i, &h_prev) in previous.iter().enumerate() {
                    let w = tape.param(self.pair_w[l][i], &self.store);
                    let trans = tape.matmul(h_prev, w);
                    let prop = tape.spmm(ctx.a_hat.clone(), trans);
                    acc = tape.add(acc, prop);
                }
                tape.scale(acc, 1.0 / (previous.len() + 1) as f32)
            }
        }
    }

    /// The configuration this model was built with.
    pub fn config(&self) -> &LasagneConfig {
        &self.cfg
    }

    /// The learned stochastic gate probabilities `p = e^P / max e^P`
    /// (`N×H`), for the §5.2.2 node-locality analysis. `None` unless the
    /// Stochastic aggregator is in use.
    pub fn stochastic_probabilities(&self) -> Option<Tensor> {
        let pid = self.p?;
        let pv = self.store.value(pid);
        let mut out = pv.clone();
        for i in 0..out.rows() {
            let m = out.row(i).iter().copied().fold(f32::NEG_INFINITY, f32::max);
            for v in out.row_mut(i) {
                *v = (*v - m).exp();
            }
        }
        Some(out)
    }

    /// The learned `C(l)` matrix of the Weighted aggregator for hidden
    /// layer `l ≥ 1` (`N×(l+1)`), if applicable.
    pub fn aggregation_weights(&self, l: usize) -> Option<Tensor> {
        if self.cfg.aggregator != AggregatorKind::Weighted || l == 0 || l > self.c.len() {
            return None;
        }
        Some(self.store.value(self.c[l - 1]).clone())
    }
}

impl NodeClassifier for Lasagne {
    fn name(&self) -> String {
        let base = match self.cfg.base {
            BaseConv::Gcn => String::new(),
            other => format!("+{}", other.label()),
        };
        let fm = if self.cfg.use_gcfm { "" } else { "-noFM" };
        format!(
            "Lasagne({}){}{}-{}",
            self.cfg.aggregator.label(),
            base,
            fm,
            self.cfg.depth()
        )
    }

    fn forward(
        &self,
        tape: &mut Tape,
        ctx: &GraphContext,
        mode: Mode,
        rng: &mut TensorRng,
    ) -> ForwardOutput {
        self.forward_with_hiddens(tape, ctx, mode, rng).0
    }

    fn forward_with_hiddens(
        &self,
        tape: &mut Tape,
        ctx: &GraphContext,
        mode: Mode,
        rng: &mut TensorRng,
    ) -> (ForwardOutput, Vec<NodeId>) {
        if let Some(n) = self.pinned_nodes {
            assert_eq!(
                ctx.num_nodes(),
                n,
                "Lasagne({}): per-node aggregation parameters are tied to the \
                 construction graph (N={n}); this aggregator is not suitable for \
                 inductive contexts (got N={})",
                self.cfg.aggregator.label(),
                ctx.num_nodes(),
            );
        }
        let keep = self.cfg.dropout_keep;
        let probs = match self.cfg.aggregator {
            AggregatorKind::Stochastic => Some(self.stochastic_prob_node(tape)),
            _ => None,
        };

        let x0 = tape.constant((*ctx.features).clone());
        let x = match mode {
            Mode::Train => tape.dropout(x0, keep, rng),
            Mode::Eval => x0,
        };

        let h_count = self.cfg.hidden_dims.len();
        let mut hs: Vec<NodeId> = Vec::with_capacity(h_count);
        for l in 0..h_count {
            let input = if l == 0 {
                x
            } else {
                let prev = hs[l - 1];
                match mode {
                    Mode::Train => tape.dropout(prev, keep, rng),
                    Mode::Eval => prev,
                }
            };
            let raw = self.base_forward(tape, ctx, l, input);
            let agg = if l == 0 {
                raw
            } else {
                self.aggregate(tape, ctx, l, &hs[..l], raw, probs, mode, rng)
            };
            hs.push(agg);
        }

        let logits = match (&self.gcfm, &self.out_conv) {
            (Some(gcfm), _) => {
                gcfm.forward(tape, &self.store, &ctx.a_hat, &hs, self.cfg.final_relu)
            }
            (None, Some((w, b))) => {
                let last = match mode {
                    Mode::Train => tape.dropout(hs[h_count - 1], keep, rng),
                    Mode::Eval => hs[h_count - 1],
                };
                let wn = tape.param(*w, &self.store);
                let hw = tape.matmul(last, wn);
                let prop = tape.spmm(ctx.a_hat.clone(), hw);
                let bn = tape.param(*b, &self.store);
                tape.add_row_broadcast(prop, bn)
            }
            (None, None) => unreachable!("constructor always sets one output head"),
        };
        hs.push(logits);
        (ForwardOutput::logits(logits), hs)
    }

    fn store(&self) -> &ParamStore {
        &self.store
    }

    fn store_mut(&mut self) -> &mut ParamStore {
        &mut self.store
    }
}

#[cfg(test)]
mod tests {
    use std::rc::Rc;

    use super::*;
    use lasagne_gnn::Hyper;

    fn tiny_ctx(seed: u64) -> (GraphContext, Vec<usize>) {
        let mut rng = TensorRng::seed_from_u64(seed);
        let (g, labels) = lasagne_graph::generators::dc_sbm(
            &lasagne_graph::generators::DcSbmConfig {
                nodes: 60,
                classes: 3,
                avg_degree: 6.0,
                homophily: 0.9,
                power_exponent: 2.5,
                max_weight_ratio: 20.0,
            },
            &mut rng,
        );
        let feats = lasagne_datasets::generate_features(
            &g,
            &labels,
            3,
            &lasagne_datasets::FeatureConfig {
                dim: 8,
                signal: 1.5,
                noise_scale: 0.5,
                degree_noise_exponent: 0.3,
                mask_base: 0.0,
            },
            &mut rng,
        );
        let train: Vec<usize> = (0..30).collect();
        (GraphContext::new(&g, feats, labels, 3), train)
    }

    fn cfg(agg: AggregatorKind, depth: usize) -> LasagneConfig {
        LasagneConfig::from_hyper(&Hyper::default().with_depth(depth).with_hidden(12), agg)
    }

    fn fit(model: &mut Lasagne, ctx: &GraphContext, train: &[usize], steps: usize) -> (f32, f32) {
        use lasagne_autograd::{Adam, Optimizer};
        let labels = Rc::new((*ctx.labels).clone());
        let idx = Rc::new(train.to_vec());
        let mut rng = TensorRng::seed_from_u64(7);
        let mut opt = Adam::new(model.store(), 0.02, 5e-4);
        let (mut first, mut last) = (f32::NAN, f32::NAN);
        for step in 0..steps {
            let mut tape = Tape::new();
            let out = model.forward(&mut tape, ctx, Mode::Train, &mut rng);
            let lp = tape.log_softmax(out.logits);
            let loss = tape.nll_masked(lp, labels.clone(), idx.clone());
            let v = tape.value(loss).get(0, 0);
            if step == 0 {
                first = v;
            }
            last = v;
            model.store_mut().zero_grads();
            tape.backward(loss, model.store_mut());
            opt.step(model.store_mut());
        }
        (first, last)
    }

    #[test]
    fn all_aggregators_learn() {
        let (ctx, train) = tiny_ctx(0);
        for agg in AggregatorKind::extended() {
            let mut m = Lasagne::new(8, 3, Some(60), &cfg(agg, 4), 0);
            let (first, last) = fit(&mut m, &ctx, &train, 40);
            assert!(
                last < first * 0.9,
                "{}: loss {first} → {last}",
                m.name()
            );
        }
    }

    #[test]
    fn logit_shapes_and_finiteness_at_depth_8() {
        let (ctx, _) = tiny_ctx(1);
        for agg in AggregatorKind::all() {
            let m = Lasagne::new(8, 3, Some(60), &cfg(agg, 8), 0);
            let mut rng = TensorRng::seed_from_u64(0);
            let mut tape = Tape::new();
            let out = m.forward(&mut tape, &ctx, Mode::Eval, &mut rng);
            assert_eq!(tape.value(out.logits).shape(), (60, 3));
            assert!(!tape.value(out.logits).has_non_finite(), "{}", m.name());
        }
    }

    #[test]
    fn flexible_hidden_dims_are_supported() {
        // The whole point of removing the equal-dimension restriction.
        let cfg = cfg(AggregatorKind::Weighted, 4).with_hidden_dims(vec![16, 8, 24]);
        let (ctx, train) = tiny_ctx(2);
        let mut m = Lasagne::new(8, 3, Some(60), &cfg, 0);
        let (first, last) = fit(&mut m, &ctx, &train, 30);
        assert!(last < first, "flexible dims: {first} → {last}");
    }

    #[test]
    fn maxpool_runs_on_other_graph_sizes() {
        // Inductive capability: no per-node parameters.
        let m = Lasagne::new(8, 3, None, &cfg(AggregatorKind::MaxPooling, 3), 0);
        let (big, _) = tiny_ctx(3);
        let mut rng = TensorRng::seed_from_u64(0);
        let mut t1 = Tape::new();
        let a = m.forward(&mut t1, &big, Mode::Eval, &mut rng);
        assert_eq!(t1.value(a.logits).rows(), 60);
        let g = lasagne_graph::Graph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]);
        let feats = rng.uniform_tensor(5, 8, -1.0, 1.0);
        let small = GraphContext::new(&g, feats, vec![0, 1, 2, 0, 1], 3);
        let mut t2 = Tape::new();
        let b = m.forward(&mut t2, &small, Mode::Eval, &mut rng);
        assert_eq!(t2.value(b.logits).rows(), 5);
    }

    #[test]
    #[should_panic(expected = "not suitable for inductive")]
    fn weighted_panics_on_foreign_graph() {
        let m = Lasagne::new(8, 3, Some(60), &cfg(AggregatorKind::Weighted, 3), 0);
        let g = lasagne_graph::Graph::from_edges(5, &[(0, 1)]);
        let mut rng = TensorRng::seed_from_u64(0);
        let feats = rng.uniform_tensor(5, 8, -1.0, 1.0);
        let ctx = GraphContext::new(&g, feats, vec![0; 5], 3);
        let mut tape = Tape::new();
        let _ = m.forward(&mut tape, &ctx, Mode::Eval, &mut rng);
    }

    #[test]
    fn stochastic_probabilities_start_at_one() {
        let m = Lasagne::new(8, 3, Some(60), &cfg(AggregatorKind::Stochastic, 5), 0);
        let p = m.stochastic_probabilities().unwrap();
        assert_eq!(p.shape(), (60, 4));
        assert!(p.as_slice().iter().all(|&v| (v - 1.0).abs() < 1e-6));
        // Weighted model exposes C instead.
        let w = Lasagne::new(8, 3, Some(60), &cfg(AggregatorKind::Weighted, 4), 0);
        assert!(w.stochastic_probabilities().is_none());
        assert_eq!(w.aggregation_weights(2).unwrap().shape(), (60, 3));
    }

    #[test]
    fn stochastic_eval_is_deterministic_train_is_not() {
        let (ctx, _) = tiny_ctx(4);
        let m = Lasagne::new(8, 3, Some(60), &cfg(AggregatorKind::Stochastic, 4), 0);
        let mut rng = TensorRng::seed_from_u64(0);
        let mut t1 = Tape::new();
        let a = m.forward(&mut t1, &ctx, Mode::Eval, &mut rng);
        let mut t2 = Tape::new();
        let b = m.forward(&mut t2, &ctx, Mode::Eval, &mut rng);
        assert!(t1.value(a.logits).approx_eq(t2.value(b.logits), 0.0));
        // Training forwards differ thanks to gate sampling + dropout.
        let mut t3 = Tape::new();
        let c = m.forward(&mut t3, &ctx, Mode::Train, &mut rng);
        let mut t4 = Tape::new();
        let d = m.forward(&mut t4, &ctx, Mode::Train, &mut rng);
        assert!(!t3.value(c.logits).approx_eq(t4.value(d.logits), 1e-9));
    }

    #[test]
    fn ablation_without_gcfm_builds_plain_gc_head() {
        let cfg = cfg(AggregatorKind::Weighted, 4).with_gcfm(false);
        let (ctx, train) = tiny_ctx(5);
        let mut m = Lasagne::new(8, 3, Some(60), &cfg, 0);
        assert!(m.name().contains("noFM"));
        let (first, last) = fit(&mut m, &ctx, &train, 30);
        assert!(last < first);
    }

    #[test]
    fn table7_base_models_build_and_learn() {
        let (ctx, train) = tiny_ctx(6);
        for base in [BaseConv::Sgc, BaseConv::Gat] {
            let cfg = cfg(AggregatorKind::Stochastic, 3).with_base(base);
            let mut m = Lasagne::new(8, 3, Some(60), &cfg, 0);
            let (first, last) = fit(&mut m, &ctx, &train, 80);
            assert!(
                last < first * 0.9,
                "{}: loss {first} → {last}",
                m.name()
            );
        }
    }

    #[test]
    fn names_describe_configuration() {
        let m = Lasagne::new(8, 3, Some(60), &cfg(AggregatorKind::Weighted, 4), 0);
        assert_eq!(m.name(), "Lasagne(Weighted)-4");
        let g = Lasagne::new(
            8,
            3,
            Some(60),
            &cfg(AggregatorKind::Stochastic, 3).with_base(BaseConv::Gat),
            0,
        );
        assert_eq!(g.name(), "Lasagne(Stochastic)+GAT-3");
    }
}
