//! **Lasagne** — the paper's contribution: a multi-layer GCN framework with
//! node-aware layer aggregators and factorization-based layer interactions.
//!
//! Architecture (Fig 3 of the paper):
//!
//! 1. a stack of graph-convolution layers with *flexible per-layer hidden
//!    dimensions* (the equal-dimension restriction of ResGCN/DenseGCN is
//!    removed, §4.1.1);
//! 2. after each layer, a **node-aware layer aggregator** (Eq 4/5) lets
//!    every node weight every previous layer's output differently —
//!    [`AggregatorKind::Weighted`], [`AggregatorKind::MaxPooling`], or
//!    [`AggregatorKind::Stochastic`] (Eq 6);
//! 3. a **GC-FM** output layer (Eq 7) models pairwise interactions between
//!    different layers' embeddings before the final propagation.
//!
//! The node-awareness is the point: hub nodes learn to rely on shallow
//! layers (their deep neighborhoods over-smooth), peripheral nodes learn to
//! pull from deep layers (they need large receptive fields) — see the
//! locality probe in `lasagne-bench`.
//!
//! # Example
//! ```
//! use lasagne_core::{AggregatorKind, Lasagne, LasagneConfig};
//! use lasagne_gnn::{GraphContext, Hyper, Mode, NodeClassifier};
//! use lasagne_datasets::{Dataset, DatasetId};
//! use lasagne_autograd::Tape;
//! use lasagne_tensor::TensorRng;
//!
//! let ds = Dataset::generate(DatasetId::Cora, 0);
//! let ctx = GraphContext::from_dataset(&ds);
//! let cfg = LasagneConfig::from_hyper(
//!     &Hyper::for_dataset(DatasetId::Cora).with_depth(4),
//!     AggregatorKind::MaxPooling,
//! );
//! let model = Lasagne::new(ctx.input_dim(), ds.num_classes, Some(ctx.num_nodes()), &cfg, 0);
//! let mut tape = Tape::new();
//! let mut rng = TensorRng::seed_from_u64(0);
//! let out = model.forward(&mut tape, &ctx, Mode::Eval, &mut rng);
//! assert_eq!(tape.value(out.logits).shape(), (2708, 7));
//! ```

mod config;
mod gcfm;
mod model;

pub use config::{AggregatorKind, BaseConv, LasagneConfig};
pub use gcfm::{gcfm_reference, GcFm};
pub use model::Lasagne;
