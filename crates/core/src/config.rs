//! Lasagne configuration: aggregator choice, base convolution, GC-FM.

use lasagne_gnn::Hyper;

/// The three node-aware layer aggregators of §4.1.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggregatorKind {
    /// Eq (5): trainable per-node, per-layer weights `C(l) ∈ R^{N×l}`.
    /// Transductive only (the weights are tied to the training graph).
    Weighted,
    /// §4.1.2: element-wise max over (projected) previous layers — the
    /// constrained one-hot `C`; no extra aggregation parameters, valid
    /// inductively (the only variant used in Table 4).
    MaxPooling,
    /// Eq (6): per-node Bernoulli gates with trainable logits
    /// `P ∈ R^{N×L}`, sampled each iteration (stochastic-depth style),
    /// straight-through gradients. Transductive only.
    Stochastic,
    /// Uniform mean over the (projected) previous layers — one of the
    /// "other custom aggregation operations (e.g., mean, LSTM)" §4.1 says
    /// are possible. *Not* node-aware: kept as the natural ablation that
    /// isolates how much of Lasagne's gain comes from node awareness
    /// rather than from dense layer aggregation alone. Inductive-capable
    /// (no per-node parameters).
    Mean,
}

impl AggregatorKind {
    /// The paper's three node-aware variants, in the tables' order.
    pub fn all() -> [AggregatorKind; 3] {
        [
            AggregatorKind::Weighted,
            AggregatorKind::Stochastic,
            AggregatorKind::MaxPooling,
        ]
    }

    /// All variants including the non-node-aware Mean extension.
    pub fn extended() -> [AggregatorKind; 4] {
        [
            AggregatorKind::Weighted,
            AggregatorKind::Stochastic,
            AggregatorKind::MaxPooling,
            AggregatorKind::Mean,
        ]
    }

    /// Table row label.
    pub fn label(self) -> &'static str {
        match self {
            AggregatorKind::Weighted => "Weighted",
            AggregatorKind::Stochastic => "Stochastic",
            AggregatorKind::MaxPooling => "Max pooling",
            AggregatorKind::Mean => "Mean",
        }
    }

    /// Whether the aggregator's parameters are independent of the node set
    /// (required for inductive tasks; see §5.2.1 "Inductive").
    pub fn inductive_capable(self) -> bool {
        matches!(self, AggregatorKind::MaxPooling | AggregatorKind::Mean)
    }
}

/// Per-layer node aggregation operation — Lasagne "is also applicable to
/// other models (e.g., GAT, GraphSAGE)" (§4); Table 7 evaluates GCN, SGC
/// and GAT bases.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BaseConv {
    /// `ReLU(Â H W)` — the default.
    Gcn,
    /// `Â² (H W)` — SGC's linearized propagation (power 2, no activation).
    Sgc,
    /// Single-head additive attention over neighborhoods.
    Gat,
}

impl BaseConv {
    /// Table row label.
    pub fn label(self) -> &'static str {
        match self {
            BaseConv::Gcn => "GCN",
            BaseConv::Sgc => "SGC",
            BaseConv::Gat => "GAT",
        }
    }
}

/// Full Lasagne configuration.
#[derive(Debug, Clone)]
pub struct LasagneConfig {
    /// Per-hidden-layer widths (length = depth − 1; the final layer outputs
    /// classes). Unequal widths are allowed — that is a Lasagne feature.
    pub hidden_dims: Vec<usize>,
    /// Which layer aggregator to use.
    pub aggregator: AggregatorKind,
    /// Which per-layer convolution to use (Table 7).
    pub base: BaseConv,
    /// Use the GC-FM output layer (turn off to reproduce the Table 6
    /// ablation's "baseline" rows, which use a plain GC output layer).
    pub use_gcfm: bool,
    /// FM latent dimension k (paper: 5).
    pub gcfm_k: usize,
    /// Dropout keep probability.
    pub dropout_keep: f32,
    /// Apply the paper's final `ReLU(Â O)` verbatim. Eq (7) writes the
    /// output activation as ReLU, but zero-clipping logits before the
    /// softmax starves gradients and we measured a large accuracy loss and
    /// seed variance with it on (see EXPERIMENTS.md); the published PyTorch
    /// reference almost certainly feeds pre-activation logits to the
    /// classifier, so the default here is `false` (`Â O` only).
    pub final_relu: bool,
    /// GAT slope when `base == Gat`.
    pub gat_slope: f32,
}

impl LasagneConfig {
    /// Uniform-width configuration from the shared [`Hyper`] block.
    pub fn from_hyper(hyper: &Hyper, aggregator: AggregatorKind) -> LasagneConfig {
        assert!(hyper.depth >= 2, "LasagneConfig: depth must be ≥ 2");
        LasagneConfig {
            hidden_dims: vec![hyper.hidden; hyper.depth - 1],
            aggregator,
            base: BaseConv::Gcn,
            use_gcfm: true,
            gcfm_k: hyper.gcfm_k,
            dropout_keep: hyper.dropout_keep,
            final_relu: false,
            gat_slope: hyper.gat_slope,
        }
    }

    /// Total layer count (hidden layers + output layer).
    pub fn depth(&self) -> usize {
        self.hidden_dims.len() + 1
    }

    /// Builder: swap the aggregator.
    pub fn with_aggregator(mut self, aggregator: AggregatorKind) -> Self {
        self.aggregator = aggregator;
        self
    }

    /// Builder: swap the base convolution.
    pub fn with_base(mut self, base: BaseConv) -> Self {
        self.base = base;
        self
    }

    /// Builder: toggle GC-FM (Table 6 ablation).
    pub fn with_gcfm(mut self, on: bool) -> Self {
        self.use_gcfm = on;
        self
    }

    /// Builder: set explicitly non-uniform hidden widths.
    pub fn with_hidden_dims(mut self, dims: Vec<usize>) -> Self {
        assert!(!dims.is_empty(), "with_hidden_dims: need at least one layer");
        self.hidden_dims = dims;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_hyper_uniform_dims() {
        let cfg = LasagneConfig::from_hyper(
            &Hyper::default().with_depth(5).with_hidden(48),
            AggregatorKind::Weighted,
        );
        assert_eq!(cfg.hidden_dims, vec![48; 4]);
        assert_eq!(cfg.depth(), 5);
        assert!(cfg.use_gcfm);
    }

    #[test]
    fn per_node_aggregators_are_not_inductive() {
        assert!(AggregatorKind::MaxPooling.inductive_capable());
        assert!(AggregatorKind::Mean.inductive_capable());
        assert!(!AggregatorKind::Weighted.inductive_capable());
        assert!(!AggregatorKind::Stochastic.inductive_capable());
    }

    #[test]
    fn extended_superset_of_paper_variants() {
        let paper = AggregatorKind::all();
        let ext = AggregatorKind::extended();
        assert_eq!(ext.len(), 4);
        for a in paper {
            assert!(ext.contains(&a));
        }
    }

    #[test]
    fn builders_compose() {
        let cfg = LasagneConfig::from_hyper(&Hyper::default().with_depth(3), AggregatorKind::Weighted)
            .with_base(BaseConv::Sgc)
            .with_gcfm(false)
            .with_hidden_dims(vec![16, 32, 24]);
        assert_eq!(cfg.base, BaseConv::Sgc);
        assert!(!cfg.use_gcfm);
        assert_eq!(cfg.depth(), 4);
    }

    #[test]
    fn labels_match_tables() {
        assert_eq!(AggregatorKind::MaxPooling.label(), "Max pooling");
        assert_eq!(BaseConv::Sgc.label(), "SGC");
    }
}
