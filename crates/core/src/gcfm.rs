//! The GC-FM layer (§4.2, Eq 7): a factorization machine over the
//! *cross-layer* pairs of embedding coordinates, followed by one graph
//! convolution.
//!
//! Eq (7) as written costs `O(F·L²·D²·k)` per node. Because the FM latent
//! product only couples coordinates from *different* layers, the classic FM
//! identity applies per class `j` with per-layer summaries
//! `s_p = V_{jp}ᵀ h^{(p)} ∈ R^k`:
//!
//! ```text
//! Σ_{p<q} ⟨s_p, s_q⟩ = ½ ( ‖Σ_p s_p‖² − Σ_p ‖s_p‖² )
//! ```
//!
//! bringing the cost to `O(F·L·D·k)`. [`gcfm_reference`] keeps the
//! brute-force quadruple sum for equivalence tests.

use std::rc::Rc;

use lasagne_autograd::{NodeId, ParamId, ParamStore, Tape};
use lasagne_sparse::Csr;
use lasagne_tensor::{Tensor, TensorRng};

/// The GC-FM output layer.
pub struct GcFm {
    /// Linear part: concat-dim × F.
    w: ParamId,
    /// Bias 1×F.
    b: ParamId,
    /// `v[j][p]`: `D(p) × k` latent factors for class `j`, layer `p`.
    v: Vec<Vec<ParamId>>,
    k: usize,
    classes: usize,
}

impl GcFm {
    /// Build for hidden layer widths `dims` (one entry per aggregated
    /// layer), `classes` outputs and latent dimension `k`.
    pub fn new(
        store: &mut ParamStore,
        dims: &[usize],
        classes: usize,
        k: usize,
        rng: &mut TensorRng,
    ) -> GcFm {
        assert!(!dims.is_empty(), "GcFm: need at least one input layer");
        assert!(k >= 1, "GcFm: latent dim must be ≥ 1");
        let total: usize = dims.iter().sum();
        let w = store.add("gcfm.w", rng.glorot_uniform(total, classes));
        let b = store.add_with_decay("gcfm.b", Tensor::zeros(1, classes), false);
        // Small init keeps the quadratic term from swamping the linear one
        // at the start (standard FM practice).
        let v = (0..classes)
            .map(|j| {
                dims.iter()
                    .enumerate()
                    .map(|(p, &d)| {
                        store.add(format!("gcfm.v{j}.{p}"), rng.normal_tensor(d, k, 0.0, 0.02))
                    })
                    .collect()
            })
            .collect();
        GcFm { w, b, v, k, classes }
    }

    /// Forward: `hs` are the aggregated hidden representations
    /// `H(1)…H(L-1)`; returns `ReLU(Â O)` (or `Â O` when `final_relu` is
    /// off) with `O` from Eq (7).
    pub fn forward(
        &self,
        tape: &mut Tape,
        store: &ParamStore,
        a_hat: &Rc<Csr>,
        hs: &[NodeId],
        final_relu: bool,
    ) -> NodeId {
        assert_eq!(hs.len(), self.v[0].len(), "GcFm: layer count mismatch");
        // Linear part: concat(h) W + b.
        let cat = tape.concat_cols(hs);
        let w = tape.param(self.w, store);
        let lin = tape.matmul(cat, w);
        let b = tape.param(self.b, store);
        let linear = tape.add_row_broadcast(lin, b);

        // FM part, one N×1 column per class.
        let mut fm_cols = Vec::with_capacity(self.classes);
        for j in 0..self.classes {
            // s_p = h_p · V_jp; T = Σ_p s_p.
            let mut t_sum: Option<NodeId> = None;
            let mut sq_sum: Option<NodeId> = None;
            for (p, &h) in hs.iter().enumerate() {
                let v = tape.param(self.v[j][p], store);
                let s = tape.matmul(h, v);
                t_sum = Some(match t_sum {
                    Some(t) => tape.add(t, s),
                    None => s,
                });
                let s2 = tape.mul(s, s);
                let s2r = tape.sum_cols(s2);
                sq_sum = Some(match sq_sum {
                    Some(q) => tape.add(q, s2r),
                    None => s2r,
                });
            }
            let t = t_sum.expect("at least one layer");
            let t2 = tape.mul(t, t);
            let t2r = tape.sum_cols(t2);
            let diff = tape.sub(t2r, sq_sum.expect("at least one layer"));
            fm_cols.push(tape.scale(diff, 0.5));
        }
        let fm = tape.concat_cols(&fm_cols);
        let o = tape.add(linear, fm);
        let prop = tape.spmm(Rc::clone(a_hat), o);
        if final_relu {
            tape.relu(prop)
        } else {
            prop
        }
    }

    /// FM latent dimension.
    pub fn latent_dim(&self) -> usize {
        self.k
    }

    /// Read the latent tensors back (for the reference-path test).
    pub fn latent(&self, store: &ParamStore, class: usize, layer: usize) -> Tensor {
        store.value(self.v[class][layer]).clone()
    }

    /// Read the linear weight back.
    pub fn linear_weight(&self, store: &ParamStore) -> Tensor {
        store.value(self.w).clone()
    }
}

/// Brute-force Eq (7), literally: for every node `i` and class `j`,
///
/// ```text
/// O_ij = ⟨W[:,j], h_i⟩ + Σ_{p<q} Σ_{m,n} ⟨V_jpm, V_jqn⟩ h_ipm h_iqn
/// ```
///
/// (plus the bias used by the fast path). Exponential in nothing but
/// painfully slow — test use only.
pub fn gcfm_reference(
    hs: &[&Tensor],
    w: &Tensor,
    bias: &Tensor,
    latent: &dyn Fn(usize, usize) -> Tensor,
    classes: usize,
) -> Tensor {
    let n = hs[0].rows();
    let layers = hs.len();
    let mut o = Tensor::zeros(n, classes);
    // Linear term on the concatenation.
    let cat = Tensor::concat_cols(hs);
    let lin = cat.matmul(w);
    for i in 0..n {
        for j in 0..classes {
            let mut acc = lin.get(i, j) + bias.get(0, j);
            for p in 0..layers {
                let vp = latent(j, p);
                for q in (p + 1)..layers {
                    let vq = latent(j, q);
                    for m in 0..hs[p].cols() {
                        for nn in 0..hs[q].cols() {
                            let dot: f32 = (0..vp.cols())
                                .map(|kk| vp.get(m, kk) * vq.get(nn, kk))
                                .sum();
                            acc += dot * hs[p].get(i, m) * hs[q].get(i, nn);
                        }
                    }
                }
            }
            o.set(i, j, acc);
        }
    }
    o
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fast_path_matches_brute_force_eq7() {
        let mut rng = TensorRng::seed_from_u64(0);
        let mut store = ParamStore::new();
        let dims = [3usize, 4, 2]; // deliberately unequal (flexible dims)
        let gcfm = GcFm::new(&mut store, &dims, 3, 2, &mut rng);

        let n = 5;
        let hs_t: Vec<Tensor> = dims
            .iter()
            .map(|&d| rng.uniform_tensor(n, d, -1.0, 1.0))
            .collect();

        // Fast path without the final propagation: use the identity graph
        // so Â = I isolates O itself (self-loop on isolated nodes ⇒ Â = I).
        let eye = Rc::new(Csr::identity(n));
        let mut tape = Tape::new();
        let hs_nodes: Vec<NodeId> = hs_t.iter().map(|t| tape.constant(t.clone())).collect();
        let out = gcfm.forward(&mut tape, &store, &eye, &hs_nodes, false);

        let hs_refs: Vec<&Tensor> = hs_t.iter().collect();
        let w = gcfm.linear_weight(&store);
        let bias = store.value(store.require("gcfm.b").expect("gcfm bias registered")).clone();
        let reference = gcfm_reference(
            &hs_refs,
            &w,
            &bias,
            &|j, p| gcfm.latent(&store, j, p),
            3,
        );
        assert!(
            tape.value(out).approx_eq(&reference, 1e-4),
            "FM identity violated: max diff {}",
            tape.value(out).max_abs_diff(&reference)
        );
    }

    #[test]
    fn final_relu_clips_negatives() {
        let mut rng = TensorRng::seed_from_u64(1);
        let mut store = ParamStore::new();
        let gcfm = GcFm::new(&mut store, &[4], 2, 2, &mut rng);
        let eye = Rc::new(Csr::identity(6));
        let mut tape = Tape::new();
        let h = tape.constant(rng.uniform_tensor(6, 4, -2.0, 2.0));
        let with = gcfm.forward(&mut tape, &store, &eye, &[h], true);
        assert!(tape.value(with).min() >= 0.0);
    }

    #[test]
    fn single_layer_has_no_fm_interactions() {
        // With one input layer there are no cross-layer pairs: output must
        // equal the linear part exactly.
        let mut rng = TensorRng::seed_from_u64(2);
        let mut store = ParamStore::new();
        let gcfm = GcFm::new(&mut store, &[5], 3, 4, &mut rng);
        let eye = Rc::new(Csr::identity(4));
        let h_t = rng.uniform_tensor(4, 5, -1.0, 1.0);
        let mut tape = Tape::new();
        let h = tape.constant(h_t.clone());
        let out = gcfm.forward(&mut tape, &store, &eye, &[h], false);
        let expect = h_t.matmul(&gcfm.linear_weight(&store));
        assert!(tape.value(out).approx_eq(&expect, 1e-5));
    }

    #[test]
    fn gcfm_params_are_trainable_end_to_end() {
        // Gradient check through the fast path.
        let mut rng = TensorRng::seed_from_u64(3);
        let mut store = ParamStore::new();
        let gcfm = GcFm::new(&mut store, &[3, 2], 2, 2, &mut rng);
        let eye = Rc::new(Csr::identity(3));
        let h1 = rng.uniform_tensor(3, 3, -1.0, 1.0);
        let h2 = rng.uniform_tensor(3, 2, -1.0, 1.0);
        let report = lasagne_autograd::grad_check(&mut store, 5e-3, |tape, s| {
            let a = tape.constant(h1.clone());
            let b = tape.constant(h2.clone());
            let o = gcfm.forward(tape, s, &eye, &[a, b], false);
            let sq = tape.mul(o, o);
            tape.mean_all(sq)
        });
        assert!(report.passes(2e-2), "GC-FM gradcheck failed: {report:?}");
    }
}
