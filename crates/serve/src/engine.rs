//! The tape-free forward engine.
//!
//! [`evaluate_program`] interprets an exported [`Program`] by calling the
//! exact same `lasagne-tensor` / `lasagne-sparse` kernels the autograd tape
//! constructors call, in the same topological order — which is what makes a
//! frozen forward bitwise-identical to the training-path eval forward, at
//! any `lasagne-par` thread count (the parallel runtime's determinism
//! contract says threads change wall-clock, never bits).
//!
//! [`Engine`] adds the **propagation cache**: for a transductive model the
//! graph, features, and weights are all frozen, so the full-graph program is
//! evaluated exactly once at load time and every node query after that is a
//! row lookup plus a softmax — no per-request linear algebra at all. That is
//! also why the engine is `Send` (plain tensors, no `Rc`): the program is
//! consumed at construction; what survives is the cache — plus, for models
//! frozen with a graph binding, the streaming state that can patch it.

use lasagne_autograd::{gat_attention, Program, ProgramOp};
use lasagne_sparse::Csr;
use lasagne_tensor::Tensor;

use crate::error::{ServeError, ServeResult};
use crate::frozen::{FrozenMeta, FrozenModel, FrozenRec, FrozenWeight};
use crate::quant::QuantMatrix;
use crate::streaming::StreamingState;

/// Evaluate `program`, binding `Param` leaves against `weights` by name.
/// Returns the output tensor (for a classifier: `N×F` logits).
pub fn evaluate_program(program: &Program, weights: &[(String, Tensor)]) -> ServeResult<Tensor> {
    let sparse: Vec<&Csr> = program.sparse.iter().map(|m| &**m).collect();
    let mut values = evaluate_ops(&program.ops, &sparse, weights)?;
    Ok(values.swap_remove(program.output))
}

/// Evaluate an op list against a sparse table and named weights, keeping
/// **every** intermediate tensor. `evaluate_program` discards all but the
/// output; the streaming engine keeps the whole vector as its per-op cache
/// so mutations can re-derive only dirty rows (DESIGN.md §11).
pub(crate) fn evaluate_ops(
    ops: &[ProgramOp],
    sparse: &[&Csr],
    weights: &[(String, Tensor)],
) -> ServeResult<Vec<Tensor>> {
    evaluate_ops_with_quant(ops, sparse, weights, &[])
}

/// [`evaluate_ops`] plus a fused-quantization table: `quant` lists Param op
/// indices whose weight stays compressed — those slots get a placeholder
/// value (never read, guaranteed by the fusion analysis in
/// [`Engine::new`]), and every `MatMul` whose right operand is such a slot
/// runs [`Tensor::matmul_packed_b`] with the dequantizing panel kernel
/// instead of materializing the weight. Bitwise-identical to dequantizing
/// up front and calling `matmul` (same values, same per-element
/// accumulation order, same left-operand density probe).
pub(crate) fn evaluate_ops_with_quant(
    ops: &[ProgramOp],
    sparse: &[&Csr],
    weights: &[(String, Tensor)],
    quant: &[(usize, &QuantMatrix)],
) -> ServeResult<Vec<Tensor>> {
    lasagne_obs::span!("serve.evaluate");
    let lookup = |name: &str| -> ServeResult<&Tensor> {
        weights
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, t)| t)
            .ok_or_else(|| ServeError::MissingParam(name.to_string()))
    };
    let fused = |i: usize| quant.iter().find(|(qi, _)| *qi == i).map(|(_, q)| *q);
    let mut values: Vec<Tensor> = Vec::with_capacity(ops.len());
    for (i, op) in ops.iter().enumerate() {
        let v = |i: usize| -> &Tensor { &values[i] };
        let out = match op {
            ProgramOp::Constant { value } => value.clone(),
            ProgramOp::Param { name } => match fused(i) {
                // Slot stays compressed; consumers go through the panel
                // kernel below and never read this placeholder.
                Some(_) => Tensor::zeros(0, 0),
                None => lookup(name)?.clone(),
            },
            ProgramOp::MatMul { a, b } => match fused(*b) {
                Some(q) => {
                    let (qr, qc) = q.shape();
                    v(*a).matmul_packed_b(qr, qc, |p0, p1, buf| q.dequant_rows_into(p0, p1, buf))
                }
                None => v(*a).matmul(v(*b)),
            },
            ProgramOp::SpMM { m, x } => sparse[*m].spmm(v(*x)),
            ProgramOp::Add { a, b } => v(*a).add(v(*b)),
            ProgramOp::Sub { a, b } => v(*a).sub(v(*b)),
            ProgramOp::Mul { a, b } => v(*a).mul(v(*b)),
            ProgramOp::Div { a, b } => v(*a).div(v(*b)),
            ProgramOp::Scale { x, alpha } => v(*x).scale(*alpha),
            ProgramOp::AddConst { x, c } => v(*x).add_scalar(*c),
            ProgramOp::Pow { x, p, eps } => {
                let (p, eps) = (*p, *eps);
                v(*x).map(|t| (t + eps).powf(p))
            }
            ProgramOp::Exp { x } => v(*x).map(f32::exp),
            ProgramOp::Relu { x } => v(*x).relu(),
            ProgramOp::LeakyRelu { x, slope } => v(*x).leaky_relu(*slope),
            ProgramOp::Sigmoid { x } => v(*x).sigmoid(),
            ProgramOp::Tanh { x } => v(*x).tanh(),
            ProgramOp::AddRowBroadcast { x, b } => v(*x).add_row_broadcast(v(*b)),
            ProgramOp::AddColBroadcast { x, c } => v(*x).add_col_broadcast(v(*c)),
            ProgramOp::MulColBroadcast { x, c } => v(*x).mul_col_broadcast(v(*c)),
            ProgramOp::MulScalarNode { x, s } => v(*x).scale(v(*s).get(0, 0)),
            ProgramOp::LogSoftmax { x } => v(*x).log_softmax_rows(),
            ProgramOp::ConcatCols { parts } => {
                let tensors: Vec<&Tensor> = parts.iter().map(|&p| v(p)).collect();
                Tensor::concat_cols(&tensors)
            }
            ProgramOp::SliceCols { x, lo, hi } => v(*x).slice_cols(*lo, *hi),
            ProgramOp::GatherRows { x, idx } => v(*x).gather_rows(idx),
            ProgramOp::SumAll { x } => Tensor::full(1, 1, v(*x).sum()),
            ProgramOp::SumRows { x } => v(*x).sum_rows(),
            ProgramOp::SumCols { x } => v(*x).sum_cols(),
            ProgramOp::MaxStack { parts } => {
                // Mirror of `Tape::max_stack`: clone the first part, then
                // fold element-wise max with strict `>` so ties keep the
                // earliest layer — same comparison, same bits.
                let mut acc = v(parts[0]).clone();
                for &p in &parts[1..] {
                    let pv = v(p);
                    for (best, cand) in acc.as_mut_slice().iter_mut().zip(pv.as_slice()) {
                        if *cand > *best {
                            *best = *cand;
                        }
                    }
                }
                acc
            }
            ProgramOp::GatAggregate { adj, z, ssrc, sdst, slope } => {
                gat_attention(sparse[*adj], v(*z), v(*ssrc), v(*sdst), *slope).out
            }
        };
        values.push(out);
    }
    Ok(values)
}

/// One node's answer: the argmax class and the full softmax distribution.
#[derive(Debug, Clone, PartialEq)]
pub struct Prediction {
    /// Queried node id.
    pub node: usize,
    /// Argmax class.
    pub class: usize,
    /// Softmax probabilities, one per class.
    pub probs: Vec<f32>,
}

/// A loaded model ready to answer node queries out of its propagation
/// cache. Construction runs the frozen program once; queries are O(classes).
/// Models frozen with a graph binding also accept mutations
/// ([`Engine::apply_mutation`]), which patch the cache incrementally.
pub struct Engine {
    pub(crate) meta: FrozenMeta,
    /// Full-graph logits — the propagation cache.
    pub(crate) logits: Tensor,
    /// Full-graph softmax rows, cached alongside (clients overwhelmingly
    /// want probabilities).
    pub(crate) probs: Tensor,
    /// Streaming-mutation state; `None` for pre-streaming frozen files,
    /// which answer mutations with a typed `mismatch` error.
    pub(crate) streaming: Option<StreamingState>,
    /// Whether the loaded file carried quantized weights (approximate
    /// logits, DESIGN.md §13). Surfaced in `stats`.
    pub(crate) quantized: bool,
    /// Recommendation binding (bipartite layout + interaction mask);
    /// `None` for node-classification artifacts, which answer `recommend`
    /// with a typed `not_a_recommender` error.
    pub(crate) rec: Option<FrozenRec>,
}

/// Decide which quantized weights stay compressed (fused into the matmul
/// panel kernel) versus materialized: a Param slot is fusable iff every
/// consumer uses it as a matmul right operand and it is not the program
/// output. Returns the materialized weight table (placeholders for
/// fully-fused names, so a fused weight never exists as a full f32 matrix)
/// and the `(op index, matrix)` fusion table.
fn quant_binding<'w>(
    ops: &[ProgramOp],
    output: usize,
    weights: &'w [(String, FrozenWeight)],
) -> (Vec<(String, Tensor)>, Vec<(usize, &'w QuantMatrix)>) {
    let mut fused: Vec<Option<&QuantMatrix>> = vec![None; ops.len()];
    for (i, op) in ops.iter().enumerate() {
        if let ProgramOp::Param { name } = op {
            if let Some((_, FrozenWeight::Quant(q))) = weights.iter().find(|(n, _)| n == name) {
                fused[i] = Some(q);
            }
        }
    }
    for op in ops {
        match op {
            // The right operand is the one fusable position.
            ProgramOp::MatMul { a, .. } => fused[*a] = None,
            _ => {
                for inp in op.inputs() {
                    fused[inp] = None;
                }
            }
        }
    }
    if let Some(slot) = fused.get_mut(output) {
        *slot = None;
    }
    let quant: Vec<(usize, &QuantMatrix)> =
        fused.iter().enumerate().filter_map(|(i, q)| q.map(|q| (i, q))).collect();
    let mats: Vec<(String, Tensor)> = weights
        .iter()
        .map(|(n, w)| {
            let t = match w {
                FrozenWeight::Exact(t) => t.clone(),
                FrozenWeight::Quant(q) => {
                    // Materialize only if some slot of this name escaped
                    // fusion (e.g. a hand-built program also adds it).
                    let needed = ops.iter().enumerate().any(|(i, op)| {
                        matches!(op, ProgramOp::Param { name } if name == n) && fused[i].is_none()
                    });
                    if needed {
                        q.dequantize()
                    } else {
                        Tensor::zeros(0, 0)
                    }
                }
            };
            (n.clone(), t)
        })
        .collect();
    (mats, quant)
}

impl Engine {
    /// Evaluate `frozen`'s program over the whole graph and cache the
    /// result. Fails if the program references a weight the file does not
    /// carry, or if its output shape contradicts the metadata.
    pub fn new(frozen: FrozenModel) -> ServeResult<Engine> {
        lasagne_obs::span!("serve.engine.load");
        let quantized = frozen.is_quantized();
        if quantized && frozen.graph.is_some() {
            // `FrozenModel::quantize` strips the binding; a file carrying
            // both would silently degrade the §11 exactness contract.
            return Err(ServeError::Mismatch(
                "quantized frozen models do not support a streaming graph binding \
                 (serve the exact f32 artifact for mutations)"
                    .into(),
            ));
        }
        if quantized && frozen.rec.is_some() {
            // Same contract for recommendations: `recommend` promises
            // bitwise parity with the training-path evaluator, which
            // quantized logits cannot deliver. `quantize` strips the block.
            return Err(ServeError::Mismatch(
                "quantized frozen models do not carry a recommendation binding \
                 (serve the exact f32 artifact for `recommend`)"
                    .into(),
            ));
        }
        let rec = frozen.rec;
        let sparse: Vec<&Csr> = frozen.program.sparse.iter().map(|m| &**m).collect();
        let (weights, quant) =
            quant_binding(&frozen.program.ops, frozen.program.output, &frozen.weights);
        let values = evaluate_ops_with_quant(&frozen.program.ops, &sparse, &weights, &quant)?;
        let logits = values[frozen.program.output].clone();
        if logits.shape() != (frozen.meta.num_nodes, frozen.meta.num_classes) {
            return Err(ServeError::Mismatch(format!(
                "program output is {:?} but metadata says {} nodes × {} classes",
                logits.shape(),
                frozen.meta.num_nodes,
                frozen.meta.num_classes
            )));
        }
        let probs = logits.softmax_rows();
        let streaming = match frozen.graph {
            Some(g) => Some(StreamingState::new(frozen.program, g, weights, values)?),
            None => None,
        };
        Ok(Engine { meta: frozen.meta, logits, probs, streaming, quantized, rec })
    }

    /// Whether this engine serves approximate (quantized-weight) logits.
    pub fn is_quantized(&self) -> bool {
        self.quantized
    }

    /// Load + checksum the frozen file at `path` and build its engine —
    /// `Engine::new(FrozenModel::load(path)?)` as one call. This is the
    /// hot-swap loading path: it runs on the swapping thread so the
    /// batcher keeps serving the old model while the new one propagates.
    pub fn load_path(path: &std::path::Path) -> ServeResult<Engine> {
        Engine::new(FrozenModel::load(path)?)
    }

    /// Provenance/shape metadata of the loaded model.
    pub fn meta(&self) -> &FrozenMeta {
        &self.meta
    }

    /// Nodes in the frozen graph (valid query ids are `0..num_nodes`).
    pub fn num_nodes(&self) -> usize {
        self.meta.num_nodes
    }

    /// Output classes.
    pub fn num_classes(&self) -> usize {
        self.meta.num_classes
    }

    fn check_node(&self, node: usize) -> ServeResult<()> {
        if node >= self.meta.num_nodes {
            return Err(ServeError::UnknownNode { node, num_nodes: self.meta.num_nodes });
        }
        Ok(())
    }

    /// Raw logits row for a node (bitwise-comparable against the training
    /// path's eval forward).
    pub fn logits_row(&self, node: usize) -> ServeResult<&[f32]> {
        self.check_node(node)?;
        Ok(self.logits.row(node))
    }

    /// Argmax class + softmax distribution for a node.
    pub fn predict(&self, node: usize) -> ServeResult<Prediction> {
        self.check_node(node)?;
        let probs = self.probs.row(node);
        let class = probs
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
            .map(|(i, _)| i)
            .unwrap_or(0);
        Ok(Prediction { node, class, probs: probs.to_vec() })
    }

    /// The `k` most probable classes for a node, most probable first
    /// (ties broken by lower class id; `k` is clamped to the class count).
    pub fn top_k(&self, node: usize, k: usize) -> ServeResult<Vec<(usize, f32)>> {
        self.check_node(node)?;
        let probs = self.probs.row(node);
        let mut ranked: Vec<(usize, f32)> = probs.iter().copied().enumerate().collect();
        ranked.sort_by(|a, b| {
            b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal).then(a.0.cmp(&b.0))
        });
        ranked.truncate(k.min(self.meta.num_classes));
        Ok(ranked)
    }

    /// Whether the loaded file carried a recommendation binding (bipartite
    /// layout + interaction mask), i.e. whether `recommend` will answer.
    pub fn is_recommender(&self) -> bool {
        self.rec.is_some()
    }

    /// Top-`k` item recommendations for user node `node`, best first.
    ///
    /// Scores every item the user has *not* interacted with (the frozen
    /// interaction mask hides training items) as the dot product of the
    /// user's and the item's embedding rows from the propagation cache.
    /// The accumulation order (ascending index) and the ranking order
    /// (score descending via `total_cmp`, ties to the lower item id) are
    /// the exact contract of `lasagne_datasets::{dot_score, sort_ranked}`,
    /// so serving-side rankings are bitwise-reproducible against the
    /// training-side evaluator.
    pub fn recommend(&self, node: usize, k: usize) -> ServeResult<Vec<(usize, f32)>> {
        let rec = self.rec.as_ref().ok_or_else(|| ServeError::NotARecommender {
            reason: format!(
                "model '{}' was frozen without a recommendation binding \
                 (predict/top_k remain available)",
                self.meta.model
            ),
        })?;
        if node < rec.items || node >= rec.items + rec.users {
            return Err(ServeError::UnknownUser { node, items: rec.items, users: rec.users });
        }
        let mask = rec.interacted.row_indices(node - rec.items);
        let user_row = self.logits.row(node);
        let mut scored: Vec<(usize, f32)> = Vec::with_capacity(rec.items - mask.len());
        for item in 0..rec.items {
            // `interacted` rows are sorted (CSR invariant), so masking is a
            // binary search, not a set lookup.
            if mask.binary_search(&(item as u32)).is_ok() {
                continue;
            }
            let mut acc = 0.0f32;
            for (x, y) in user_row.iter().zip(self.logits.row(item)) {
                acc += x * y;
            }
            scored.push((item, acc));
        }
        if scored.is_empty() {
            return Err(ServeError::NoCandidates { node });
        }
        lasagne_obs::counter_add("serve.recommend", 1);
        lasagne_obs::counter_add("rec.candidates", scored.len() as u64);
        scored.sort_unstable_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        scored.truncate(k);
        Ok(scored)
    }
}
