//! `lasagne-serve`: the inference subsystem (DESIGN.md §10).
//!
//! Training builds a fresh autograd tape per forward pass; serving should
//! not. This crate closes the gap in three layers:
//!
//! 1. **Frozen model format** ([`FrozenModel`]) — a self-contained on-disk
//!    artifact: metadata, named weights, deduplicated sparse operators, and
//!    the model's eval-mode forward exported as a static op program
//!    ([`lasagne_autograd::Program`]). Serialized with the workspace JSON
//!    codec inside the same FNV-1a checksum envelope as training
//!    checkpoints; exports are byte-deterministic.
//! 2. **Tape-free engine** ([`Engine`]) — interprets the program with the
//!    exact kernels the tape would have called, so frozen logits are
//!    bitwise-identical to the training path's eval forward at any thread
//!    count. The full-graph result is computed once at load (the
//!    *propagation cache*); per-node queries are row lookups.
//! 3. **Batched TCP server** ([`Server`]) — newline-delimited JSON over
//!    `std::net`, a micro-batcher that coalesces concurrent requests,
//!    panic isolation per request, and latency/batch counters surfaced via
//!    `stats` and `lasagne-obs`.
//! 4. **Streaming mutations** ([`Mutation`], DESIGN.md §11) — `add_edge` /
//!    `remove_edge` / `add_node` against the live engine. Edge toggles hit a
//!    delta adjacency and re-derive only the dirty k-hop rows of the
//!    propagation cache; the result is bitwise what a cold reload of the
//!    mutated graph would compute, a property the test harness proves.
//! 5. **Overload contract** (DESIGN.md §12) — bounded admission with typed
//!    `overloaded` sheds + retry hints, per-request deadlines, request-line
//!    byte caps, connection caps, idle reaping, `ok|degraded|draining`
//!    health states on a lock-light fast path, and atomic hot model swap
//!    ([`Server::swap`] / the `swap_model` verb) with a monotonic
//!    `model_version` echoed in every response.
//!
//! ```no_run
//! use lasagne_serve::{freeze, Engine, FrozenModel, Server, ServerConfig};
//! # fn demo(model: &dyn lasagne_gnn::NodeClassifier, ctx: &lasagne_gnn::GraphContext)
//! # -> lasagne_serve::ServeResult<()> {
//! let frozen = freeze(model, ctx, "cora")?;
//! frozen.save(std::path::Path::new("model.frozen.json"))?;
//!
//! let engine = Engine::new(FrozenModel::load(std::path::Path::new("model.frozen.json"))?)?;
//! let server = Server::start(engine, ServerConfig::default())?;
//! println!("serving on {}", server.local_addr());
//! # Ok(()) }
//! ```

mod client;
mod engine;
mod error;
mod export;
mod frozen;
mod lazy;
mod protocol;
mod quant;
mod server;
mod streaming;

pub use client::Client;
pub use engine::{evaluate_program, Engine, Prediction};
pub use lazy::LazyEngine;
pub use error::{ServeError, ServeResult};
pub use export::{freeze, freeze_rec};
pub use frozen::{FrozenGraph, FrozenMeta, FrozenModel, FrozenRec, FrozenWeight, SparseKind};
pub use protocol::{
    debug_sleep_response, error_response, error_response_versioned, health_response,
    mutation_response, predict_response, recommend_response, shutdown_response, stats_response,
    swap_response, top_k_response, Request, StatsSnapshot,
};
pub use quant::{QuantMatrix, QuantMode};
pub use server::{Server, ServerConfig, ServerEngine};
pub use streaming::{Mutation, MutationReport, DEFAULT_COMPACT_EVERY};
