//! The serving error type. Every failure a client or operator can trigger —
//! bad files, bad requests, unknown nodes, worker panics — maps to a typed
//! variant, and every variant maps to a stable wire `kind` string, so
//! clients can branch on failures without parsing prose.

use std::fmt;

use lasagne_autograd::{ExportError, ModelError};
use lasagne_train::TrainError;

/// `Result` alias for the serving subsystem.
pub type ServeResult<T> = Result<T, ServeError>;

/// Everything that can go wrong between a frozen-model file and a client
/// response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// Filesystem / socket failure.
    Io(String),
    /// Unparseable JSON (file or wire).
    Parse(String),
    /// Checksum mismatch: the file was damaged after it was written.
    Corrupt(String),
    /// Structurally valid but wrong for this model (version, shapes, kinds).
    Mismatch(String),
    /// The frozen program references a weight the file does not carry.
    MissingParam(String),
    /// Query for a node id outside the frozen graph.
    UnknownNode {
        /// The requested node id.
        node: usize,
        /// Number of nodes in the frozen graph.
        num_nodes: usize,
    },
    /// A syntactically valid request the server refuses (missing fields,
    /// bad types, unknown op).
    BadRequest(String),
    /// The model could not be exported (train-only ops on the tape).
    Export(String),
    /// A worker panicked while handling the request; the server survives
    /// and reports this.
    Internal(String),
    /// The admission queue is full: the request was shed without queueing.
    /// `retry_after_ms` is the server's estimate of when capacity frees up.
    Overloaded {
        /// Suggested client backoff before retrying, in milliseconds.
        retry_after_ms: u64,
    },
    /// The request sat in the queue past its deadline; the batcher dropped
    /// it instead of computing a dead answer.
    DeadlineExceeded {
        /// How long the request waited before being dropped, milliseconds.
        waited_ms: u64,
        /// The deadline it was stamped with at enqueue, milliseconds.
        deadline_ms: u64,
    },
    /// A request line exceeded the server's byte cap. Framing is lost, so
    /// the server answers typed and closes the connection.
    RequestTooLarge {
        /// The configured per-line byte cap.
        limit: usize,
    },
    /// The server is at its connection cap; this connection was refused.
    TooManyConnections {
        /// The configured connection cap.
        limit: usize,
    },
    /// The server is draining its queue for shutdown; no new model work is
    /// admitted (control ops still answer).
    Draining,
    /// A client-side read/write deadline elapsed before the server answered.
    Timeout(String),
    /// `recommend` against a model with no recommendation binding (a
    /// node-classification artifact, a quantized export, or a lazy
    /// partitioned engine) — refused typed instead of ranking garbage
    /// class logits as if they were item scores.
    NotARecommender {
        /// Why this engine cannot recommend.
        reason: String,
    },
    /// `recommend` for a node id that is not a user node of the bipartite
    /// layout (items and out-of-range ids both land here).
    UnknownUser {
        /// The requested node id.
        node: usize,
        /// Item-node count (`0..items` are items).
        items: usize,
        /// User-node count (`items..items+users` are users).
        users: usize,
    },
    /// Every item is masked for this user — nothing left to recommend.
    NoCandidates {
        /// The requesting user node.
        node: usize,
    },
}

impl ServeError {
    /// Stable machine-readable discriminator used on the wire.
    pub fn kind(&self) -> &'static str {
        match self {
            ServeError::Io(_) => "io",
            ServeError::Parse(_) => "parse",
            ServeError::Corrupt(_) => "corrupt",
            ServeError::Mismatch(_) => "mismatch",
            ServeError::MissingParam(_) => "missing_param",
            ServeError::UnknownNode { .. } => "unknown_node",
            ServeError::BadRequest(_) => "bad_request",
            ServeError::Export(_) => "export",
            ServeError::Internal(_) => "internal",
            ServeError::Overloaded { .. } => "overloaded",
            ServeError::DeadlineExceeded { .. } => "deadline_exceeded",
            ServeError::RequestTooLarge { .. } => "request_too_large",
            ServeError::TooManyConnections { .. } => "too_many_connections",
            ServeError::Draining => "draining",
            ServeError::Timeout(_) => "timeout",
            ServeError::NotARecommender { .. } => "not_a_recommender",
            ServeError::UnknownUser { .. } => "unknown_user",
            ServeError::NoCandidates { .. } => "no_candidates",
        }
    }
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Io(m) => write!(f, "io error: {m}"),
            ServeError::Parse(m) => write!(f, "parse error: {m}"),
            ServeError::Corrupt(m) => write!(f, "corrupt frozen model: {m}"),
            ServeError::Mismatch(m) => write!(f, "mismatch: {m}"),
            ServeError::MissingParam(name) => {
                write!(f, "frozen program needs parameter '{name}' but the file does not carry it")
            }
            ServeError::UnknownNode { node, num_nodes } => {
                write!(f, "unknown node {node} (frozen graph has {num_nodes} nodes)")
            }
            ServeError::BadRequest(m) => write!(f, "bad request: {m}"),
            ServeError::Export(m) => write!(f, "export failed: {m}"),
            ServeError::Internal(m) => write!(f, "internal error: {m}"),
            ServeError::Overloaded { retry_after_ms } => {
                write!(f, "server overloaded: admission queue full, retry in ~{retry_after_ms} ms")
            }
            ServeError::DeadlineExceeded { waited_ms, deadline_ms } => {
                write!(f, "deadline exceeded: waited {waited_ms} ms past a {deadline_ms} ms budget")
            }
            ServeError::RequestTooLarge { limit } => {
                write!(f, "request line exceeds the {limit}-byte cap; closing the connection")
            }
            ServeError::TooManyConnections { limit } => {
                write!(f, "connection refused: server is at its cap of {limit} connections")
            }
            ServeError::Draining => write!(f, "server is draining for shutdown"),
            ServeError::Timeout(m) => write!(f, "timeout: {m}"),
            ServeError::NotARecommender { reason } => {
                write!(f, "not a recommender: {reason}")
            }
            ServeError::UnknownUser { node, items, users } => {
                write!(
                    f,
                    "node {node} is not a user (users are {items}..{} in this bipartite layout)",
                    items + users
                )
            }
            ServeError::NoCandidates { node } => {
                write!(f, "no candidate items left for user {node}: everything is masked")
            }
        }
    }
}

impl std::error::Error for ServeError {}

impl From<TrainError> for ServeError {
    fn from(e: TrainError) -> ServeError {
        match e {
            TrainError::Io(m) => ServeError::Io(m),
            TrainError::Parse(m) => ServeError::Parse(m),
            TrainError::Corrupt(m) => ServeError::Corrupt(m),
            other => ServeError::Mismatch(other.to_string()),
        }
    }
}

impl From<ModelError> for ServeError {
    fn from(e: ModelError) -> ServeError {
        match e {
            ModelError::MissingParam(name) => ServeError::MissingParam(name),
        }
    }
}

impl From<ExportError> for ServeError {
    fn from(e: ExportError) -> ServeError {
        ServeError::Export(e.to_string())
    }
}
