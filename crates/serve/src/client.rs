//! Minimal blocking client for the wire protocol — used by the
//! fault-injection tests, the `serve-bench` load generator, and the
//! verify-script drive.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::Duration;

use lasagne_testkit::{Json, Rng};

use crate::error::{ServeError, ServeResult};
use crate::protocol::Request;

/// One persistent connection to a model server.
pub struct Client {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    /// Connect to `addr` (e.g. `"127.0.0.1:7878"`).
    pub fn connect(addr: &str) -> ServeResult<Client> {
        let stream = TcpStream::connect(addr)
            .map_err(|e| ServeError::Io(format!("connect {addr}: {e}")))?;
        Client::from_stream(stream)
    }

    /// Connect with bounded exponential backoff + jitter: try up to
    /// `attempts` times, sleeping `base_ms · 2^i · (1 + jitter)` between
    /// failures, jitter drawn in `[0, 1)` from the deterministic testkit
    /// PRNG seeded with `seed` (so retry schedules are replayable in tests
    /// yet fleet-decorrelated by distinct seeds). This replaces
    /// connect-or-die for callers racing a server that is still binding.
    pub fn connect_with_retry(
        addr: &str,
        attempts: usize,
        base_ms: u64,
        seed: u64,
    ) -> ServeResult<Client> {
        let mut rng = Rng::seed_from_u64(seed);
        let mut last = ServeError::Io(format!("connect {addr}: no attempts made"));
        for attempt in 0..attempts.max(1) {
            match Client::connect(addr) {
                Ok(client) => return Ok(client),
                Err(e) => last = e,
            }
            if attempt + 1 < attempts.max(1) {
                let backoff = base_ms.saturating_mul(1u64 << attempt.min(10)) as f64;
                let jittered = backoff * (1.0 + rng.range_f64(0.0, 1.0));
                std::thread::sleep(Duration::from_millis(jittered as u64));
            }
        }
        Err(last)
    }

    fn from_stream(stream: TcpStream) -> ServeResult<Client> {
        // One-line requests + one-line responses are exactly the traffic
        // pattern Nagle + delayed ACK punishes (~40-200 ms stalls).
        let _ = stream.set_nodelay(true);
        let reader = BufReader::new(
            stream.try_clone().map_err(|e| ServeError::Io(format!("clone stream: {e}")))?,
        );
        Ok(Client { writer: stream, reader })
    }

    /// Set a per-call deadline on both directions of the socket: any
    /// single send or receive that takes longer fails with a typed
    /// [`ServeError::Timeout`] instead of blocking forever on a stalled
    /// server. `None` restores fully blocking behavior.
    pub fn set_timeout(&mut self, timeout: Option<Duration>) -> ServeResult<()> {
        let apply = |s: &TcpStream| -> std::io::Result<()> {
            s.set_read_timeout(timeout)?;
            s.set_write_timeout(timeout)
        };
        apply(&self.writer).map_err(|e| ServeError::Io(format!("set timeout: {e}")))?;
        apply(self.reader.get_ref()).map_err(|e| ServeError::Io(format!("set timeout: {e}")))
    }

    fn map_io(stage: &str, e: std::io::Error) -> ServeError {
        if matches!(e.kind(), std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut) {
            ServeError::Timeout(format!("{stage} deadline elapsed"))
        } else {
            ServeError::Io(format!("{stage}: {e}"))
        }
    }

    /// Send one raw line and read one response line (lets tests send
    /// garbage or truncated requests on purpose).
    pub fn roundtrip_raw(&mut self, line: &str) -> ServeResult<String> {
        self.writer
            .write_all(line.as_bytes())
            .and_then(|()| self.writer.write_all(b"\n"))
            .map_err(|e| Client::map_io("send", e))?;
        let mut response = String::new();
        let n = self
            .reader
            .read_line(&mut response)
            .map_err(|e| Client::map_io("recv", e))?;
        if n == 0 {
            return Err(ServeError::Io("server closed the connection".into()));
        }
        Ok(response.trim_end().to_string())
    }

    /// Send a typed request and parse the JSON response.
    pub fn call(&mut self, request: &Request) -> ServeResult<Json> {
        let line = self.roundtrip_raw(&request.to_line())?;
        Json::parse(&line).map_err(|e| ServeError::Parse(format!("response: {e}")))
    }

    /// Send a typed request, parse the response, and fail on `ok:false`
    /// with the server's error kind + message.
    pub fn call_ok(&mut self, request: &Request) -> ServeResult<Json> {
        let doc = self.call(request)?;
        if doc.get("ok").and_then(Json::as_bool) == Some(true) {
            return Ok(doc);
        }
        let kind = doc
            .get("error")
            .and_then(|e| e.get("kind"))
            .and_then(Json::as_str)
            .unwrap_or("unknown");
        let message = doc
            .get("error")
            .and_then(|e| e.get("message"))
            .and_then(Json::as_str)
            .unwrap_or("<no message>");
        Err(ServeError::BadRequest(format!("server error [{kind}]: {message}")))
    }

    /// Top-`k` item recommendations for user node `node`. Returns the full
    /// response; its `items` array carries `{item, score}` pairs best-first.
    pub fn recommend(&mut self, node: usize, k: usize) -> ServeResult<Json> {
        self.call_ok(&Request::Recommend { node, k })
    }

    /// Insert undirected edge `u — v` into the live graph.
    pub fn add_edge(&mut self, u: usize, v: usize) -> ServeResult<Json> {
        self.call_ok(&Request::AddEdge { u, v })
    }

    /// Delete undirected edge `u — v` from the live graph.
    pub fn remove_edge(&mut self, u: usize, v: usize) -> ServeResult<Json> {
        self.call_ok(&Request::RemoveEdge { u, v })
    }

    /// Append an isolated node with the given feature row; the response's
    /// `node` field carries its id.
    pub fn add_node(&mut self, features: &[f32]) -> ServeResult<Json> {
        self.call_ok(&Request::AddNode { features: features.to_vec() })
    }

    /// Ask the server to hot-swap to the frozen model at `path`
    /// (server-side path). Returns the full response; its `model_version`
    /// is the version the new model will serve as.
    pub fn swap_model(&mut self, path: &str) -> ServeResult<Json> {
        self.call_ok(&Request::SwapModel { path: path.to_string() })
    }
}
