//! Minimal blocking client for the wire protocol — used by the
//! fault-injection tests, the `serve-bench` load generator, and the
//! verify-script drive.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;

use lasagne_testkit::Json;

use crate::error::{ServeError, ServeResult};
use crate::protocol::Request;

/// One persistent connection to a model server.
pub struct Client {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    /// Connect to `addr` (e.g. `"127.0.0.1:7878"`).
    pub fn connect(addr: &str) -> ServeResult<Client> {
        let stream = TcpStream::connect(addr)
            .map_err(|e| ServeError::Io(format!("connect {addr}: {e}")))?;
        // One-line requests + one-line responses are exactly the traffic
        // pattern Nagle + delayed ACK punishes (~40-200 ms stalls).
        let _ = stream.set_nodelay(true);
        let reader = BufReader::new(
            stream.try_clone().map_err(|e| ServeError::Io(format!("clone stream: {e}")))?,
        );
        Ok(Client { writer: stream, reader })
    }

    /// Send one raw line and read one response line (lets tests send
    /// garbage or truncated requests on purpose).
    pub fn roundtrip_raw(&mut self, line: &str) -> ServeResult<String> {
        self.writer
            .write_all(line.as_bytes())
            .and_then(|()| self.writer.write_all(b"\n"))
            .map_err(|e| ServeError::Io(format!("send: {e}")))?;
        let mut response = String::new();
        let n = self
            .reader
            .read_line(&mut response)
            .map_err(|e| ServeError::Io(format!("recv: {e}")))?;
        if n == 0 {
            return Err(ServeError::Io("server closed the connection".into()));
        }
        Ok(response.trim_end().to_string())
    }

    /// Send a typed request and parse the JSON response.
    pub fn call(&mut self, request: &Request) -> ServeResult<Json> {
        let line = self.roundtrip_raw(&request.to_line())?;
        Json::parse(&line).map_err(|e| ServeError::Parse(format!("response: {e}")))
    }

    /// Send a typed request, parse the response, and fail on `ok:false`
    /// with the server's error kind + message.
    pub fn call_ok(&mut self, request: &Request) -> ServeResult<Json> {
        let doc = self.call(request)?;
        if doc.get("ok").and_then(Json::as_bool) == Some(true) {
            return Ok(doc);
        }
        let kind = doc
            .get("error")
            .and_then(|e| e.get("kind"))
            .and_then(Json::as_str)
            .unwrap_or("unknown");
        let message = doc
            .get("error")
            .and_then(|e| e.get("message"))
            .and_then(Json::as_str)
            .unwrap_or("<no message>");
        Err(ServeError::BadRequest(format!("server error [{kind}]: {message}")))
    }

    /// Insert undirected edge `u — v` into the live graph.
    pub fn add_edge(&mut self, u: usize, v: usize) -> ServeResult<Json> {
        self.call_ok(&Request::AddEdge { u, v })
    }

    /// Delete undirected edge `u — v` from the live graph.
    pub fn remove_edge(&mut self, u: usize, v: usize) -> ServeResult<Json> {
        self.call_ok(&Request::RemoveEdge { u, v })
    }

    /// Append an isolated node with the given feature row; the response's
    /// `node` field carries its id.
    pub fn add_node(&mut self, features: &[f32]) -> ServeResult<Json> {
        self.call_ok(&Request::AddNode { features: features.to_vec() })
    }
}
