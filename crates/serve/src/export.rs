//! Freezing: turn a trained [`NodeClassifier`] into a [`FrozenModel`].
//!
//! The model's `Mode::Eval` forward is recorded on a throwaway tape (eval
//! forwards are deterministic — dropout is off, DropEdge uses the full
//! `Â`, stochastic gates run at expectation — so the RNG passed in is never
//! consulted in a way that affects the output), the logits subgraph is
//! exported as a tape-free program, and the full parameter store is copied
//! out by name.

use std::rc::Rc;

use lasagne_gnn::{GraphContext, Mode, NodeClassifier};
use lasagne_tensor::TensorRng;

use lasagne_autograd::{ProgramOp, Tape};

use crate::error::ServeResult;
use crate::frozen::{FrozenGraph, FrozenMeta, FrozenModel, FrozenRec, FrozenWeight, SparseKind};

/// Export `model`'s eval forward on `ctx` as a frozen inference artifact.
/// `dataset` is recorded as provenance (e.g. `"cora"`).
pub fn freeze(
    model: &dyn NodeClassifier,
    ctx: &GraphContext,
    dataset: &str,
) -> ServeResult<FrozenModel> {
    lasagne_obs::span!("serve.freeze");
    // Eval forwards never sample, but the trait takes an RNG; any seed gives
    // the same tape.
    let mut rng = TensorRng::seed_from_u64(0);
    let mut tape = Tape::new();
    let out = model.forward(&mut tape, ctx, Mode::Eval, &mut rng);
    let store = model.store();
    let program = tape.export_program(store, out.logits)?;
    let weights = store
        .iter()
        .map(|(id, t)| (store.name(id).to_string(), FrozenWeight::Exact(t.clone())))
        .collect();
    // Graph binding for streaming (DESIGN.md §11): the exported sparse
    // table holds `Rc::clone`s of the context's operators, so pointer
    // identity tells us exactly which normalization produced each entry.
    // Constants bitwise-equal to the feature matrix are the ops `add_node`
    // must grow. Anything unrecognized is tagged opaque and the engine
    // refuses mutations on it rather than guessing. Models that fold graph
    // structure into tape constants (SGC's off-tape `Â^K X`) get no binding
    // at all — their graph dependence is invisible to the program, so the
    // only honest behavior is the typed no-binding refusal.
    if model.bakes_graph_into_constants() {
        return Ok(FrozenModel {
            meta: FrozenMeta {
                model: model.name(),
                dataset: dataset.to_string(),
                num_nodes: ctx.num_nodes(),
                num_classes: ctx.num_classes,
            },
            weights,
            program,
            graph: None,
            rec: None,
        });
    }
    let kinds = program
        .sparse
        .iter()
        .map(|m| {
            if Rc::ptr_eq(m, &ctx.a_hat) {
                SparseKind::Sym
            } else if Rc::ptr_eq(m, &ctx.rw_adj) {
                SparseKind::Rw
            } else if Rc::ptr_eq(m, &ctx.adj_loops) {
                SparseKind::Loops
            } else if Rc::ptr_eq(m, &ctx.adjacency) {
                SparseKind::Adj
            } else {
                SparseKind::Opaque
            }
        })
        .collect();
    let features_ops = program
        .ops
        .iter()
        .enumerate()
        .filter(|(_, op)| matches!(op, ProgramOp::Constant { value } if value == &*ctx.features))
        .map(|(i, _)| i)
        .collect();
    let graph = FrozenGraph { adjacency: (*ctx.adjacency).clone(), kinds, features_ops };
    Ok(FrozenModel {
        meta: FrozenMeta {
            model: model.name(),
            dataset: dataset.to_string(),
            num_nodes: ctx.num_nodes(),
            num_classes: ctx.num_classes,
        },
        weights,
        program,
        graph: Some(graph),
        rec: None,
    })
}

/// Like [`freeze`], additionally attaching the recommendation binding that
/// activates the `recommend` verb: the bipartite layout and the
/// `users×items` training-interaction mask. Shapes are validated against
/// the context before anything is exported.
pub fn freeze_rec(
    model: &dyn NodeClassifier,
    ctx: &GraphContext,
    dataset: &str,
    rec: FrozenRec,
) -> ServeResult<FrozenModel> {
    if rec.items + rec.users != ctx.num_nodes() {
        return Err(crate::error::ServeError::Export(format!(
            "freeze_rec: {} items + {} users != {} context nodes",
            rec.items,
            rec.users,
            ctx.num_nodes()
        )));
    }
    if rec.interacted.rows() != rec.users || rec.interacted.cols() != rec.items {
        return Err(crate::error::ServeError::Export(format!(
            "freeze_rec: interacted matrix is {}x{}, expected {}x{}",
            rec.interacted.rows(),
            rec.interacted.cols(),
            rec.users,
            rec.items
        )));
    }
    let mut frozen = freeze(model, ctx, dataset)?;
    frozen.rec = Some(rec);
    Ok(frozen)
}
