//! Freezing: turn a trained [`NodeClassifier`] into a [`FrozenModel`].
//!
//! The model's `Mode::Eval` forward is recorded on a throwaway tape (eval
//! forwards are deterministic — dropout is off, DropEdge uses the full
//! `Â`, stochastic gates run at expectation — so the RNG passed in is never
//! consulted in a way that affects the output), the logits subgraph is
//! exported as a tape-free program, and the full parameter store is copied
//! out by name.

use lasagne_gnn::{GraphContext, Mode, NodeClassifier};
use lasagne_tensor::TensorRng;

use lasagne_autograd::Tape;

use crate::error::ServeResult;
use crate::frozen::{FrozenMeta, FrozenModel};

/// Export `model`'s eval forward on `ctx` as a frozen inference artifact.
/// `dataset` is recorded as provenance (e.g. `"cora"`).
pub fn freeze(
    model: &dyn NodeClassifier,
    ctx: &GraphContext,
    dataset: &str,
) -> ServeResult<FrozenModel> {
    lasagne_obs::span!("serve.freeze");
    // Eval forwards never sample, but the trait takes an RNG; any seed gives
    // the same tape.
    let mut rng = TensorRng::seed_from_u64(0);
    let mut tape = Tape::new();
    let out = model.forward(&mut tape, ctx, Mode::Eval, &mut rng);
    let store = model.store();
    let program = tape.export_program(store, out.logits)?;
    let weights = store
        .iter()
        .map(|(id, t)| (store.name(id).to_string(), t.clone()))
        .collect();
    Ok(FrozenModel {
        meta: FrozenMeta {
            model: model.name(),
            dataset: dataset.to_string(),
            num_nodes: ctx.num_nodes(),
            num_classes: ctx.num_classes,
        },
        weights,
        program,
    })
}
