//! The on-disk frozen model format (DESIGN.md §10).
//!
//! A frozen model is everything inference needs and nothing training does:
//! a small metadata block, the named weight tensors, the deduplicated
//! sparse operators, and the exported eval-forward [`Program`]. It is
//! serialized with the workspace JSON codec inside the same
//! `{format_version, checksum, body}` envelope as training checkpoints
//! (FNV-1a 64 over the canonical body bytes, atomic tmp+rename publish),
//! so torn writes and bit flips are detected before a single weight binds.
//!
//! The codec round-trips every `f32` exactly and emits insertion-ordered
//! objects, so exporting the same trained model twice produces
//! **byte-identical** files — verified in `scripts/verify.sh` with `cmp`.

use std::path::Path;
use std::rc::Rc;

use lasagne_autograd::{Program, ProgramOp};
use lasagne_sparse::Csr;
use lasagne_tensor::Tensor;
use lasagne_testkit::Json;
use lasagne_train::{
    atomic_write_envelope, named_param_from_json, named_param_to_json, read_envelope,
    tensor_from_json, tensor_to_json,
};

use crate::error::{ServeError, ServeResult};
use crate::quant::{QuantMatrix, QuantMode};

/// Provenance and shape facts about a frozen model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FrozenMeta {
    /// Model display name (e.g. `"GCN"`, `"Lasagne-Weighted"`).
    pub model: String,
    /// Dataset the transductive graph came from (e.g. `"cora"`).
    pub dataset: String,
    /// Nodes in the frozen graph — the valid query id range.
    pub num_nodes: usize,
    /// Output classes.
    pub num_classes: usize,
}

/// How a sparse-table entry derives from the raw adjacency. Recorded at
/// freeze time (by `Rc` identity against the exporting `GraphContext`) so
/// the streaming engine knows which normalization to re-run after a graph
/// mutation — the exactness contract of DESIGN.md §11 is that each rebuilt
/// operator is the *same call* `GraphContext::new` would make.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SparseKind {
    /// `Â = D̃^{-1/2}(A+I)D̃^{-1/2}` — `with_self_loops().sym_normalize()`.
    Sym,
    /// Row-stochastic — `with_self_loops().rw_normalize()`.
    Rw,
    /// `A + I` — `with_self_loops()`.
    Loops,
    /// The raw adjacency itself.
    Adj,
    /// No known derivation (e.g. a sampled operator); mutations are
    /// refused on models that use one.
    Opaque,
}

impl SparseKind {
    fn as_str(self) -> &'static str {
        match self {
            SparseKind::Sym => "sym",
            SparseKind::Rw => "rw",
            SparseKind::Loops => "loops",
            SparseKind::Adj => "adj",
            SparseKind::Opaque => "opaque",
        }
    }

    fn parse(s: &str) -> Option<SparseKind> {
        Some(match s {
            "sym" => SparseKind::Sym,
            "rw" => SparseKind::Rw,
            "loops" => SparseKind::Loops,
            "adj" => SparseKind::Adj,
            "opaque" => SparseKind::Opaque,
            _ => return None,
        })
    }
}

/// The graph binding a streaming-capable frozen model carries: the raw
/// adjacency the sparse operators were derived from, one [`SparseKind`] per
/// sparse-table entry, and the program ops holding the feature matrix
/// (grown row-wise by `add_node`). Models frozen before streaming support
/// load with `graph: None` and refuse mutations with a typed error.
#[derive(Debug, Clone)]
pub struct FrozenGraph {
    /// Raw (unnormalized, loop-free) symmetric adjacency.
    pub adjacency: Csr,
    /// Derivation of each `program.sparse` entry, same order.
    pub kinds: Vec<SparseKind>,
    /// Indices of `Constant` ops that hold the node-feature matrix.
    pub features_ops: Vec<usize>,
}

/// How one named weight is stored in the frozen file: exact f32 (the
/// default — bitwise-faithful to training) or quantized (opt-in, produced
/// by [`FrozenModel::quantize`]; approximate, with the documented per-mode
/// error bounds of [`crate::quant`]).
#[derive(Debug, Clone)]
pub enum FrozenWeight {
    /// Full-precision tensor, byte-identical to the training checkpoint.
    Exact(Tensor),
    /// Compressed i8/f16 matrix, dequantized on the fly at serve time.
    Quant(QuantMatrix),
}

impl FrozenWeight {
    /// Materialize as an f32 tensor (clone for exact, dequantize for
    /// quantized).
    pub fn to_tensor(&self) -> Tensor {
        match self {
            FrozenWeight::Exact(t) => t.clone(),
            FrozenWeight::Quant(q) => q.dequantize(),
        }
    }

    /// `(rows, cols)`.
    pub fn shape(&self) -> (usize, usize) {
        match self {
            FrozenWeight::Exact(t) => t.shape(),
            FrozenWeight::Quant(q) => q.shape(),
        }
    }
}

/// The recommendation binding (DESIGN.md §15): bipartite layout plus the
/// training-interaction mask the `recommend` verb uses to exclude items the
/// user has already consumed. Models without this block answer `recommend`
/// with a typed `not_a_recommender` refusal.
#[derive(Debug, Clone)]
pub struct FrozenRec {
    /// Item-node count — nodes `0..items` are items.
    pub items: usize,
    /// User-node count — nodes `items..items+users` are users.
    pub users: usize,
    /// `users×items` binary training-interaction matrix (row `u` lists the
    /// items user node `items+u` interacted with).
    pub interacted: Csr,
}

/// A self-contained inference artifact: metadata, weights, and the exported
/// eval-forward program.
#[derive(Clone)]
pub struct FrozenModel {
    /// Provenance/shape metadata.
    pub meta: FrozenMeta,
    /// Named weights, in [`lasagne_autograd::ParamStore`] order.
    pub weights: Vec<(String, FrozenWeight)>,
    /// The tape-free forward program (references weights by name and sparse
    /// operators by table index).
    pub program: Program,
    /// Graph binding for streaming mutations; `None` on pre-streaming files.
    pub graph: Option<FrozenGraph>,
    /// Recommendation binding; `None` on node-classification artifacts.
    pub rec: Option<FrozenRec>,
}

fn num(v: usize) -> Json {
    Json::Num(v as f64)
}

fn f32_bits(v: f32) -> Json {
    // f32 constants ride as bit-exact hex so NaN payloads and negative
    // zero survive the trip (plain JSON numbers would lose NaN entirely).
    Json::Str(format!("{:08x}", v.to_bits()))
}

fn f32_from_bits(j: Option<&Json>, what: &str) -> ServeResult<f32> {
    j.and_then(Json::as_str)
        .and_then(|s| u32::from_str_radix(s, 16).ok())
        .map(f32::from_bits)
        .ok_or_else(|| ServeError::Parse(format!("{what}: missing or malformed f32 bits")))
}

fn field<'a>(j: &'a Json, k: &str, what: &str) -> ServeResult<&'a Json> {
    j.get(k).ok_or_else(|| ServeError::Parse(format!("{what}: missing field '{k}'")))
}

fn usize_field(j: &Json, k: &str, what: &str) -> ServeResult<usize> {
    field(j, k, what)?
        .as_usize()
        .ok_or_else(|| ServeError::Parse(format!("{what}: field '{k}' not an integer")))
}

fn str_field<'a>(j: &'a Json, k: &str, what: &str) -> ServeResult<&'a str> {
    field(j, k, what)?
        .as_str()
        .ok_or_else(|| ServeError::Parse(format!("{what}: field '{k}' not a string")))
}

fn usize_arr(j: &Json, k: &str, what: &str) -> ServeResult<Vec<usize>> {
    field(j, k, what)?
        .as_arr()
        .ok_or_else(|| ServeError::Parse(format!("{what}: field '{k}' not an array")))?
        .iter()
        .map(|v| {
            v.as_usize()
                .ok_or_else(|| ServeError::Parse(format!("{what}: '{k}' entry not an integer")))
        })
        .collect()
}

fn csr_to_json(m: &Csr) -> Json {
    Json::Obj(vec![
        ("rows".into(), num(m.rows())),
        ("cols".into(), num(m.cols())),
        ("indptr".into(), Json::Arr(m.indptr().iter().map(|&p| num(p)).collect())),
        ("indices".into(), Json::Arr(m.indices().iter().map(|&c| num(c as usize)).collect())),
        ("values".into(), Json::from_f32s(m.values().iter().copied())),
    ])
}

fn csr_from_json(j: &Json) -> ServeResult<Csr> {
    let rows = usize_field(j, "rows", "sparse")?;
    let cols = usize_field(j, "cols", "sparse")?;
    let indptr = usize_arr(j, "indptr", "sparse")?;
    let indices: Vec<u32> =
        usize_arr(j, "indices", "sparse")?.into_iter().map(|c| c as u32).collect();
    let values = field(j, "values", "sparse")?
        .to_f32s()
        .ok_or_else(|| ServeError::Parse("sparse: 'values' not a number array".into()))?;
    if indptr.len() != rows + 1
        || indptr.first() != Some(&0)
        || indptr.last() != Some(&indices.len())
        || indices.len() != values.len()
        || indptr.windows(2).any(|w| w[0] > w[1])
        || indices.iter().any(|&c| c as usize >= cols)
    {
        return Err(ServeError::Mismatch("sparse: inconsistent CSR arrays".into()));
    }
    Ok(Csr::from_parts(rows, cols, indptr, indices, values))
}

fn op_to_json(op: &ProgramOp) -> Json {
    use ProgramOp::*;
    let mut fields: Vec<(String, Json)> = Vec::with_capacity(4);
    let tag = |t: &str, fields: &mut Vec<(String, Json)>| {
        fields.push(("op".into(), Json::Str(t.into())));
    };
    match op {
        Constant { value } => {
            tag("constant", &mut fields);
            fields.push(("value".into(), tensor_to_json(value)));
        }
        Param { name } => {
            tag("param", &mut fields);
            fields.push(("name".into(), Json::Str(name.clone())));
        }
        MatMul { a, b } => {
            tag("matmul", &mut fields);
            fields.push(("a".into(), num(*a)));
            fields.push(("b".into(), num(*b)));
        }
        SpMM { m, x } => {
            tag("spmm", &mut fields);
            fields.push(("m".into(), num(*m)));
            fields.push(("x".into(), num(*x)));
        }
        Add { a, b } => {
            tag("add", &mut fields);
            fields.push(("a".into(), num(*a)));
            fields.push(("b".into(), num(*b)));
        }
        Sub { a, b } => {
            tag("sub", &mut fields);
            fields.push(("a".into(), num(*a)));
            fields.push(("b".into(), num(*b)));
        }
        Mul { a, b } => {
            tag("mul", &mut fields);
            fields.push(("a".into(), num(*a)));
            fields.push(("b".into(), num(*b)));
        }
        Div { a, b } => {
            tag("div", &mut fields);
            fields.push(("a".into(), num(*a)));
            fields.push(("b".into(), num(*b)));
        }
        Scale { x, alpha } => {
            tag("scale", &mut fields);
            fields.push(("x".into(), num(*x)));
            fields.push(("alpha".into(), f32_bits(*alpha)));
        }
        AddConst { x, c } => {
            tag("add_const", &mut fields);
            fields.push(("x".into(), num(*x)));
            fields.push(("c".into(), f32_bits(*c)));
        }
        Pow { x, p, eps } => {
            tag("pow", &mut fields);
            fields.push(("x".into(), num(*x)));
            fields.push(("p".into(), f32_bits(*p)));
            fields.push(("eps".into(), f32_bits(*eps)));
        }
        Exp { x } => {
            tag("exp", &mut fields);
            fields.push(("x".into(), num(*x)));
        }
        Relu { x } => {
            tag("relu", &mut fields);
            fields.push(("x".into(), num(*x)));
        }
        LeakyRelu { x, slope } => {
            tag("leaky_relu", &mut fields);
            fields.push(("x".into(), num(*x)));
            fields.push(("slope".into(), f32_bits(*slope)));
        }
        Sigmoid { x } => {
            tag("sigmoid", &mut fields);
            fields.push(("x".into(), num(*x)));
        }
        Tanh { x } => {
            tag("tanh", &mut fields);
            fields.push(("x".into(), num(*x)));
        }
        AddRowBroadcast { x, b } => {
            tag("add_row_broadcast", &mut fields);
            fields.push(("x".into(), num(*x)));
            fields.push(("b".into(), num(*b)));
        }
        AddColBroadcast { x, c } => {
            tag("add_col_broadcast", &mut fields);
            fields.push(("x".into(), num(*x)));
            fields.push(("c".into(), num(*c)));
        }
        MulColBroadcast { x, c } => {
            tag("mul_col_broadcast", &mut fields);
            fields.push(("x".into(), num(*x)));
            fields.push(("c".into(), num(*c)));
        }
        MulScalarNode { x, s } => {
            tag("mul_scalar_node", &mut fields);
            fields.push(("x".into(), num(*x)));
            fields.push(("s".into(), num(*s)));
        }
        LogSoftmax { x } => {
            tag("log_softmax", &mut fields);
            fields.push(("x".into(), num(*x)));
        }
        ConcatCols { parts } => {
            tag("concat_cols", &mut fields);
            fields.push(("parts".into(), Json::Arr(parts.iter().map(|&p| num(p)).collect())));
        }
        SliceCols { x, lo, hi } => {
            tag("slice_cols", &mut fields);
            fields.push(("x".into(), num(*x)));
            fields.push(("lo".into(), num(*lo)));
            fields.push(("hi".into(), num(*hi)));
        }
        GatherRows { x, idx } => {
            tag("gather_rows", &mut fields);
            fields.push(("x".into(), num(*x)));
            fields.push(("idx".into(), Json::Arr(idx.iter().map(|&i| num(i)).collect())));
        }
        SumAll { x } => {
            tag("sum_all", &mut fields);
            fields.push(("x".into(), num(*x)));
        }
        SumRows { x } => {
            tag("sum_rows", &mut fields);
            fields.push(("x".into(), num(*x)));
        }
        SumCols { x } => {
            tag("sum_cols", &mut fields);
            fields.push(("x".into(), num(*x)));
        }
        MaxStack { parts } => {
            tag("max_stack", &mut fields);
            fields.push(("parts".into(), Json::Arr(parts.iter().map(|&p| num(p)).collect())));
        }
        GatAggregate { adj, z, ssrc, sdst, slope } => {
            tag("gat_aggregate", &mut fields);
            fields.push(("adj".into(), num(*adj)));
            fields.push(("z".into(), num(*z)));
            fields.push(("ssrc".into(), num(*ssrc)));
            fields.push(("sdst".into(), num(*sdst)));
            fields.push(("slope".into(), f32_bits(*slope)));
        }
    }
    Json::Obj(fields)
}

fn op_from_json(j: &Json, n_ops: usize, n_sparse: usize) -> ServeResult<ProgramOp> {
    let tag = str_field(j, "op", "program op")?;
    let node = |k: &str| -> ServeResult<usize> {
        let v = usize_field(j, k, tag)?;
        if v >= n_ops {
            return Err(ServeError::Mismatch(format!("{tag}: operand '{k}' = {v} out of range")));
        }
        Ok(v)
    };
    let nodes = |k: &str| -> ServeResult<Vec<usize>> {
        let parts = usize_arr(j, k, tag)?;
        if let Some(&bad) = parts.iter().find(|&&p| p >= n_ops) {
            return Err(ServeError::Mismatch(format!("{tag}: operand in '{k}' = {bad} out of range")));
        }
        Ok(parts)
    };
    let sparse = |k: &str| -> ServeResult<usize> {
        let v = usize_field(j, k, tag)?;
        if v >= n_sparse {
            return Err(ServeError::Mismatch(format!(
                "{tag}: sparse ref '{k}' = {v} out of range (table has {n_sparse})"
            )));
        }
        Ok(v)
    };
    let bits = |k: &str| f32_from_bits(j.get(k), tag);
    Ok(match tag {
        "constant" => ProgramOp::Constant {
            value: tensor_from_json(field(j, "value", tag)?).map_err(ServeError::from)?,
        },
        "param" => ProgramOp::Param { name: str_field(j, "name", tag)?.to_string() },
        "matmul" => ProgramOp::MatMul { a: node("a")?, b: node("b")? },
        "spmm" => ProgramOp::SpMM { m: sparse("m")?, x: node("x")? },
        "add" => ProgramOp::Add { a: node("a")?, b: node("b")? },
        "sub" => ProgramOp::Sub { a: node("a")?, b: node("b")? },
        "mul" => ProgramOp::Mul { a: node("a")?, b: node("b")? },
        "div" => ProgramOp::Div { a: node("a")?, b: node("b")? },
        "scale" => ProgramOp::Scale { x: node("x")?, alpha: bits("alpha")? },
        "add_const" => ProgramOp::AddConst { x: node("x")?, c: bits("c")? },
        "pow" => ProgramOp::Pow { x: node("x")?, p: bits("p")?, eps: bits("eps")? },
        "exp" => ProgramOp::Exp { x: node("x")? },
        "relu" => ProgramOp::Relu { x: node("x")? },
        "leaky_relu" => ProgramOp::LeakyRelu { x: node("x")?, slope: bits("slope")? },
        "sigmoid" => ProgramOp::Sigmoid { x: node("x")? },
        "tanh" => ProgramOp::Tanh { x: node("x")? },
        "add_row_broadcast" => ProgramOp::AddRowBroadcast { x: node("x")?, b: node("b")? },
        "add_col_broadcast" => ProgramOp::AddColBroadcast { x: node("x")?, c: node("c")? },
        "mul_col_broadcast" => ProgramOp::MulColBroadcast { x: node("x")?, c: node("c")? },
        "mul_scalar_node" => ProgramOp::MulScalarNode { x: node("x")?, s: node("s")? },
        "log_softmax" => ProgramOp::LogSoftmax { x: node("x")? },
        "concat_cols" => ProgramOp::ConcatCols { parts: nodes("parts")? },
        "slice_cols" => {
            ProgramOp::SliceCols { x: node("x")?, lo: usize_field(j, "lo", tag)?, hi: usize_field(j, "hi", tag)? }
        }
        "gather_rows" => ProgramOp::GatherRows { x: node("x")?, idx: usize_arr(j, "idx", tag)? },
        "sum_all" => ProgramOp::SumAll { x: node("x")? },
        "sum_rows" => ProgramOp::SumRows { x: node("x")? },
        "sum_cols" => ProgramOp::SumCols { x: node("x")? },
        "max_stack" => ProgramOp::MaxStack { parts: nodes("parts")? },
        "gat_aggregate" => ProgramOp::GatAggregate {
            adj: sparse("adj")?,
            z: node("z")?,
            ssrc: node("ssrc")?,
            sdst: node("sdst")?,
            slope: bits("slope")?,
        },
        other => return Err(ServeError::Parse(format!("unknown program op '{other}'"))),
    })
}

fn graph_to_json(g: &FrozenGraph) -> Json {
    Json::Obj(vec![
        ("adjacency".into(), csr_to_json(&g.adjacency)),
        (
            "kinds".into(),
            Json::Arr(g.kinds.iter().map(|k| Json::Str(k.as_str().into())).collect()),
        ),
        ("features_ops".into(), Json::Arr(g.features_ops.iter().map(|&i| num(i)).collect())),
    ])
}

fn graph_from_json(j: &Json, ops: &[ProgramOp], n_sparse: usize) -> ServeResult<FrozenGraph> {
    let adjacency = csr_from_json(field(j, "adjacency", "graph")?)?;
    if adjacency.rows() != adjacency.cols() {
        return Err(ServeError::Mismatch("graph: adjacency must be square".into()));
    }
    let kinds = field(j, "kinds", "graph")?
        .as_arr()
        .ok_or_else(|| ServeError::Parse("graph: 'kinds' not an array".into()))?
        .iter()
        .map(|k| {
            k.as_str()
                .and_then(SparseKind::parse)
                .ok_or_else(|| ServeError::Parse("graph: unknown sparse kind".into()))
        })
        .collect::<ServeResult<Vec<_>>>()?;
    if kinds.len() != n_sparse {
        return Err(ServeError::Mismatch(format!(
            "graph: {} kinds for a sparse table of {n_sparse}",
            kinds.len()
        )));
    }
    let features_ops = usize_arr(j, "features_ops", "graph")?;
    for &i in &features_ops {
        if !matches!(ops.get(i), Some(ProgramOp::Constant { .. })) {
            return Err(ServeError::Mismatch(format!(
                "graph: features op {i} is not a program constant"
            )));
        }
    }
    Ok(FrozenGraph { adjacency, kinds, features_ops })
}

fn rec_to_json(r: &FrozenRec) -> Json {
    Json::Obj(vec![
        ("items".into(), num(r.items)),
        ("users".into(), num(r.users)),
        ("interacted".into(), csr_to_json(&r.interacted)),
    ])
}

fn rec_from_json(j: &Json, num_nodes: usize) -> ServeResult<FrozenRec> {
    let items = usize_field(j, "items", "rec")?;
    let users = usize_field(j, "users", "rec")?;
    let interacted = csr_from_json(field(j, "interacted", "rec")?)?;
    if items + users != num_nodes {
        return Err(ServeError::Mismatch(format!(
            "rec: {items} items + {users} users != {num_nodes} nodes"
        )));
    }
    if interacted.rows() != users || interacted.cols() != items {
        return Err(ServeError::Mismatch(format!(
            "rec: interacted matrix is {}x{}, expected {users}x{items}",
            interacted.rows(),
            interacted.cols()
        )));
    }
    Ok(FrozenRec { items, users, interacted })
}

impl FrozenModel {
    /// Serialize into the envelope body (`"kind":"frozen_model"`).
    pub fn to_json(&self) -> Json {
        let mut fields = vec![
            ("kind".into(), Json::Str("frozen_model".into())),
            (
                "meta".into(),
                Json::Obj(vec![
                    ("model".into(), Json::Str(self.meta.model.clone())),
                    ("dataset".into(), Json::Str(self.meta.dataset.clone())),
                    ("num_nodes".into(), num(self.meta.num_nodes)),
                    ("num_classes".into(), num(self.meta.num_classes)),
                ]),
            ),
            (
                "weights".into(),
                Json::Arr(
                    self.weights
                        .iter()
                        .map(|(n, w)| match w {
                            // Exact weights keep the checkpoint entry layout
                            // byte for byte, so pre-quantization files and
                            // f32 exports are unchanged on disk.
                            FrozenWeight::Exact(t) => named_param_to_json(n, t),
                            FrozenWeight::Quant(q) => {
                                let mut fields =
                                    vec![("name".into(), Json::Str(n.clone()))];
                                if let Json::Obj(qf) = q.to_json() {
                                    fields.extend(qf);
                                }
                                Json::Obj(fields)
                            }
                        })
                        .collect(),
                ),
            ),
            (
                "sparse".into(),
                Json::Arr(self.program.sparse.iter().map(|m| csr_to_json(m)).collect()),
            ),
            (
                "program".into(),
                Json::Obj(vec![
                    ("ops".into(), Json::Arr(self.program.ops.iter().map(op_to_json).collect())),
                    ("output".into(), num(self.program.output)),
                ]),
            ),
        ];
        if let Some(g) = &self.graph {
            fields.push(("graph".into(), graph_to_json(g)));
        }
        if let Some(r) = &self.rec {
            fields.push(("rec".into(), rec_to_json(r)));
        }
        Json::Obj(fields)
    }

    /// Parse an envelope body written by [`FrozenModel::to_json`].
    pub fn from_json(body: &Json) -> ServeResult<FrozenModel> {
        if body.get("kind").and_then(Json::as_str) != Some("frozen_model") {
            return Err(ServeError::Mismatch(
                "not a frozen model (kind field; did you pass a training checkpoint?)".into(),
            ));
        }
        let meta = field(body, "meta", "frozen model")?;
        let meta = FrozenMeta {
            model: str_field(meta, "model", "meta")?.to_string(),
            dataset: str_field(meta, "dataset", "meta")?.to_string(),
            num_nodes: usize_field(meta, "num_nodes", "meta")?,
            num_classes: usize_field(meta, "num_classes", "meta")?,
        };
        let weights = field(body, "weights", "frozen model")?
            .as_arr()
            .ok_or_else(|| ServeError::Parse("weights not an array".into()))?
            .iter()
            .map(|p| -> ServeResult<(String, FrozenWeight)> {
                if p.get("quant").is_some() {
                    let name = str_field(p, "name", "quant weight")?.to_string();
                    Ok((name, FrozenWeight::Quant(QuantMatrix::from_json(p)?)))
                } else {
                    let (name, t) = named_param_from_json(p).map_err(ServeError::from)?;
                    Ok((name, FrozenWeight::Exact(t)))
                }
            })
            .collect::<ServeResult<Vec<_>>>()?;
        let sparse = field(body, "sparse", "frozen model")?
            .as_arr()
            .ok_or_else(|| ServeError::Parse("sparse table not an array".into()))?
            .iter()
            .map(|m| csr_from_json(m).map(Rc::new))
            .collect::<ServeResult<Vec<_>>>()?;
        let prog = field(body, "program", "frozen model")?;
        let ops_json = field(prog, "ops", "program")?
            .as_arr()
            .ok_or_else(|| ServeError::Parse("program ops not an array".into()))?;
        let ops = ops_json
            .iter()
            .map(|op| op_from_json(op, ops_json.len(), sparse.len()))
            .collect::<ServeResult<Vec<_>>>()?;
        let output = usize_field(prog, "output", "program")?;
        if output >= ops.len() {
            return Err(ServeError::Mismatch(format!(
                "program output {output} out of range ({} ops)",
                ops.len()
            )));
        }
        let graph = match body.get("graph") {
            Some(g) => Some(graph_from_json(g, &ops, sparse.len())?),
            None => None,
        };
        let rec = match body.get("rec") {
            Some(r) => Some(rec_from_json(r, meta.num_nodes)?),
            None => None,
        };
        Ok(FrozenModel { meta, weights, program: Program { ops, sparse, output }, graph, rec })
    }

    /// Write to `path` under the checksum envelope, atomically. The output is
    /// byte-deterministic: freezing the same weights twice gives `cmp`-equal
    /// files.
    pub fn save(&self, path: &Path) -> ServeResult<()> {
        lasagne_obs::span!("serve.freeze.save");
        atomic_write_envelope(path, self.to_json()).map_err(ServeError::from)
    }

    /// Load and checksum-verify a frozen model file.
    pub fn load(path: &Path) -> ServeResult<FrozenModel> {
        lasagne_obs::span!("serve.freeze.load");
        FrozenModel::from_json(&read_envelope(path).map_err(ServeError::from)?)
    }

    /// Does any weight carry a quantized encoding?
    pub fn is_quantized(&self) -> bool {
        self.weights.iter().any(|(_, w)| matches!(w, FrozenWeight::Quant(_)))
    }

    /// Produce the quantized variant of this model: every weight the
    /// program consumes **only** as a matmul right operand (and that is big
    /// enough to be worth compressing) is re-encoded per `mode`; biases,
    /// attention scores, and anything else the program touches elsewhere
    /// stay exact, so the only approximation sites are products the engine
    /// runs through its dequantizing panel kernel.
    ///
    /// The graph binding is dropped: streaming mutations re-derive cache
    /// rows against the weights, and re-deriving against dequantized
    /// weights would silently change the §11 exactness story. Quantized
    /// models answer mutations with the same typed error as pre-streaming
    /// files; streaming deployments should serve the exact f32 artifact.
    pub fn quantize(mut self, mode: QuantMode) -> ServeResult<FrozenModel> {
        let eligible: Vec<String> =
            self.program.matmul_only_params().iter().map(|s| s.to_string()).collect();
        let mut hits = 0usize;
        for (name, w) in &mut self.weights {
            if !eligible.iter().any(|e| e == name) {
                continue;
            }
            if let FrozenWeight::Exact(t) = w {
                let (r, c) = t.shape();
                if r * c < 64 {
                    continue; // not worth the scales overhead
                }
                *w = FrozenWeight::Quant(QuantMatrix::quantize(t, mode));
                hits += 1;
            }
        }
        if hits == 0 {
            return Err(ServeError::Export(
                "quantize: no matmul-only weights to compress in this program".into(),
            ));
        }
        self.graph = None;
        // Quantized logits are approximate, so dot-product rankings would
        // drift from the exact artifact's — the recommend surface claims
        // bitwise parity with training eval, so it is exact-only.
        self.rec = None;
        Ok(self)
    }
}
