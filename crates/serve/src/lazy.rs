//! Lazy per-partition propagation caches (DESIGN.md §14).
//!
//! [`crate::Engine`] evaluates the whole frozen program at load time — the
//! right trade when most nodes will be queried. [`LazyEngine`] instead
//! plans the program through the row-demand evaluator
//! ([`lasagne_autograd::RowPlan`]) at load time and materializes logits
//! **one partition at a time**, on first query of any node in that
//! partition. Peak memory is O(partition + halo) per fault instead of
//! O(graph), and partitions never touched stay unmaterialized.
//!
//! The exactness contract is inherited from the evaluator, not relaxed:
//! every row served is bitwise identical to the resident engine's row
//! (pinned by `tests/partition_equiv.rs`). Programs that cannot honor that
//! contract row-locally (GAT's graph-global attention softmax) are refused
//! typed at load time, as are quantized artifacts (the fused panel kernel
//! is a whole-matrix path) and streaming mutations (the caches would go
//! silently stale).

use std::sync::OnceLock;

use lasagne_autograd::{PevalError, ProgramOp, RowPlan};
use lasagne_graph::{Graph, Partitioning};
use lasagne_sparse::Csr;
use lasagne_tensor::{Tensor, TensorRng};

use crate::engine::Prediction;
use crate::error::{ServeError, ServeResult};
use crate::frozen::{FrozenMeta, FrozenModel};
use crate::streaming::Mutation;

/// Deterministic seed for the load-time BFS partitioning: partition layout
/// is a pure function of the frozen artifact and `k`.
const PARTITION_SEED: u64 = 0;

fn peval_err(e: PevalError) -> ServeError {
    match e {
        PevalError::MissingParam(name) => ServeError::MissingParam(name),
        PevalError::NotRowLocal { .. } => ServeError::Mismatch(format!(
            "program is not row-local, cannot serve it partition-lazily: {e} \
             (serve the resident engine instead)"
        )),
        other => ServeError::Internal(format!("partitioned evaluation: {other}")),
    }
}

/// One materialized partition: logits and softmax rows for the partition's
/// nodes, in partition order.
struct PartCache {
    logits: Tensor,
    probs: Tensor,
}

/// A frozen model serving out of lazily materialized per-partition caches.
pub struct LazyEngine {
    meta: FrozenMeta,
    // The plan inputs, held without `Rc` so the engine stays `Send + Sync`
    // (a `RowPlan` is rebuilt per materialization; planning is shape
    // inference only, evaluation dominates).
    ops: Vec<ProgramOp>,
    sparse: Vec<Csr>,
    weights: Vec<(String, Tensor)>,
    output: usize,
    /// Sorted node lists forming an exact cover of `0..num_nodes`, in
    /// deterministic order.
    parts: Vec<Vec<usize>>,
    /// Partition index per node.
    part_of: Vec<u32>,
    /// Row position of each node inside its partition's cache.
    pos_in_part: Vec<u32>,
    /// Materialize-once slots; an evaluation failure is cached typed too.
    caches: Vec<OnceLock<ServeResult<PartCache>>>,
}

impl LazyEngine {
    /// Plan `frozen` for partition-lazy serving with `k` partitions.
    ///
    /// Models frozen with a graph binding are partitioned with the same
    /// BFS-grown [`Partitioning`] the training side uses (seeded
    /// deterministically); models without a binding fall back to contiguous
    /// node ranges — the exactness contract is independent of the layout.
    pub fn new(frozen: FrozenModel, k: usize) -> ServeResult<LazyEngine> {
        lasagne_obs::span!("serve.engine.lazy_load");
        if frozen.is_quantized() {
            return Err(ServeError::Mismatch(
                "quantized frozen models cannot be served partition-lazily \
                 (the fused dequantizing matmul is a whole-matrix kernel); \
                 serve the exact f32 artifact"
                    .into(),
            ));
        }
        let n = frozen.meta.num_nodes;
        if k < 1 || k > n.max(1) {
            return Err(ServeError::Mismatch(format!(
                "invalid partition count {k} for a graph of {n} nodes"
            )));
        }
        let parts = match &frozen.graph {
            Some(binding) => {
                let g = graph_from_adjacency(&binding.adjacency);
                let mut rng = TensorRng::seed_from_u64(PARTITION_SEED);
                let partitioning = Partitioning::new(&g, k, &mut rng)
                    .map_err(|e| ServeError::Mismatch(e.to_string()))?;
                partitioning.parts().iter().map(|b| b.core.clone()).collect::<Vec<_>>()
            }
            None => contiguous_parts(n, k),
        };
        let mut part_of = vec![0u32; n];
        let mut pos_in_part = vec![0u32; n];
        for (p, part) in parts.iter().enumerate() {
            for (pos, &v) in part.iter().enumerate() {
                part_of[v] = p as u32;
                pos_in_part[v] = pos as u32;
            }
        }
        let weights: Vec<(String, Tensor)> =
            frozen.weights.iter().map(|(name, w)| (name.clone(), w.to_tensor())).collect();
        let ops = frozen.program.ops;
        let sparse: Vec<Csr> = frozen
            .program
            .sparse
            .into_iter()
            .map(|m| std::rc::Rc::try_unwrap(m).unwrap_or_else(|rc| (*rc).clone()))
            .collect();
        let output = frozen.program.output;
        // Plan once up front: row-locality and missing weights surface as
        // typed load errors, not first-query surprises.
        {
            let plan = RowPlan::from_parts(&ops, sparse.iter().collect(), &weights, output)
                .map_err(peval_err)?;
            if plan.output_shape() != (n, frozen.meta.num_classes) {
                return Err(ServeError::Mismatch(format!(
                    "program output is {:?} but metadata says {} nodes × {} classes",
                    plan.output_shape(),
                    n,
                    frozen.meta.num_classes
                )));
            }
        }
        let caches = (0..parts.len()).map(|_| OnceLock::new()).collect();
        Ok(LazyEngine {
            meta: frozen.meta,
            ops,
            sparse,
            weights,
            output,
            parts,
            part_of,
            pos_in_part,
            caches,
        })
    }

    /// Load + checksum the frozen file at `path` and plan it lazily.
    pub fn load_path(path: &std::path::Path, k: usize) -> ServeResult<LazyEngine> {
        LazyEngine::new(FrozenModel::load(path)?, k)
    }

    /// Provenance/shape metadata of the loaded model.
    pub fn meta(&self) -> &FrozenMeta {
        &self.meta
    }

    /// Nodes in the frozen graph (valid query ids are `0..num_nodes`).
    pub fn num_nodes(&self) -> usize {
        self.meta.num_nodes
    }

    /// Output classes.
    pub fn num_classes(&self) -> usize {
        self.meta.num_classes
    }

    /// Number of partitions the node set is split into.
    pub fn num_parts(&self) -> usize {
        self.parts.len()
    }

    /// How many partitions have been materialized so far — the observable
    /// laziness (starts at 0, grows only when queries touch new parts).
    pub fn cached_parts(&self) -> usize {
        self.caches.iter().filter(|c| c.get().is_some()).count()
    }

    fn check_node(&self, node: usize) -> ServeResult<()> {
        if node >= self.meta.num_nodes {
            return Err(ServeError::UnknownNode { node, num_nodes: self.meta.num_nodes });
        }
        Ok(())
    }

    /// Materialize (once) and return the cache of partition `p`.
    fn part_cache(&self, p: usize) -> ServeResult<&PartCache> {
        self.caches[p]
            .get_or_init(|| {
                lasagne_obs::span!("serve.engine.lazy_materialize");
                let plan = RowPlan::from_parts(
                    &self.ops,
                    self.sparse.iter().collect(),
                    &self.weights,
                    self.output,
                )
                .map_err(peval_err)?;
                let logits = plan.eval_rows(&self.parts[p]).map_err(peval_err)?;
                let probs = logits.softmax_rows();
                Ok(PartCache { logits, probs })
            })
            .as_ref()
            .map_err(|e| e.clone())
    }

    /// Raw logits row for a node — bitwise identical to
    /// [`crate::Engine::logits_row`] on the same artifact.
    pub fn logits_row(&self, node: usize) -> ServeResult<&[f32]> {
        self.check_node(node)?;
        let p = self.part_of[node] as usize;
        let cache = self.part_cache(p)?;
        Ok(cache.logits.row(self.pos_in_part[node] as usize))
    }

    /// Argmax class + softmax distribution for a node.
    pub fn predict(&self, node: usize) -> ServeResult<Prediction> {
        self.check_node(node)?;
        let p = self.part_of[node] as usize;
        let cache = self.part_cache(p)?;
        let probs = cache.probs.row(self.pos_in_part[node] as usize);
        let class = probs
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
            .map(|(i, _)| i)
            .unwrap_or(0);
        Ok(Prediction { node, class, probs: probs.to_vec() })
    }

    /// The `k` most probable classes for a node, most probable first
    /// (ties broken by lower class id; `k` is clamped to the class count).
    pub fn top_k(&self, node: usize, k: usize) -> ServeResult<Vec<(usize, f32)>> {
        self.check_node(node)?;
        let p = self.part_of[node] as usize;
        let cache = self.part_cache(p)?;
        let probs = cache.probs.row(self.pos_in_part[node] as usize);
        let mut ranked: Vec<(usize, f32)> = probs.iter().copied().enumerate().collect();
        ranked.sort_by(|a, b| {
            b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal).then(a.0.cmp(&b.0))
        });
        ranked.truncate(k.min(self.meta.num_classes));
        Ok(ranked)
    }

    /// Streaming mutations are refused typed: patching a lazily cached
    /// engine would leave unmaterialized partitions reading the old graph
    /// and materialized ones the new — serve the resident [`crate::Engine`]
    /// for mutable graphs.
    pub fn apply_mutation(&mut self, _mutation: &Mutation) -> ServeResult<()> {
        Err(ServeError::Mismatch(
            "lazy partitioned engines do not support streaming mutations; \
             serve the resident engine for mutable graphs"
                .into(),
        ))
    }
}

/// Rebuild a [`Graph`] from the frozen raw adjacency (upper triangle of the
/// symmetric CSR).
fn graph_from_adjacency(adj: &Csr) -> Graph {
    let (n, _) = adj.shape();
    let mut edges = Vec::new();
    for u in 0..n {
        for &v in adj.row_indices(u) {
            if (v as usize) > u {
                edges.push((u as u32, v));
            }
        }
    }
    Graph::from_edges(n, &edges)
}

/// Contiguous node ranges — the binding-free fallback layout.
fn contiguous_parts(n: usize, k: usize) -> Vec<Vec<usize>> {
    if n == 0 {
        return vec![Vec::new(); k];
    }
    let cap = n.div_ceil(k);
    (0..n).collect::<Vec<_>>().chunks(cap).map(|c| c.to_vec()).collect()
}
