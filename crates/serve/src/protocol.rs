//! The newline-delimited JSON wire protocol (grammar in DESIGN.md §10).
//!
//! One request object per line in, one response object per line out, over a
//! plain TCP stream. Every response carries `"ok"`; failures carry a typed
//! `error.kind` (the [`ServeError::kind`] string) so clients can branch
//! without parsing prose. A line the server cannot even parse still gets a
//! well-formed error response — garbage in never kills the connection, let
//! alone the server.

use lasagne_testkit::Json;

use crate::engine::Prediction;
use crate::error::{ServeError, ServeResult};
use crate::frozen::FrozenMeta;
use crate::streaming::MutationReport;

/// A decoded client request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Argmax class + distribution for one node.
    Predict {
        /// Node id in the frozen graph.
        node: usize,
    },
    /// The `k` most probable classes for one node.
    TopK {
        /// Node id in the frozen graph.
        node: usize,
        /// How many classes to return.
        k: usize,
    },
    /// Insert undirected edge `u — v` into the live graph.
    AddEdge {
        /// One endpoint.
        u: usize,
        /// The other endpoint.
        v: usize,
    },
    /// Delete undirected edge `u — v` from the live graph.
    RemoveEdge {
        /// One endpoint.
        u: usize,
        /// The other endpoint.
        v: usize,
    },
    /// Append an isolated node with the given feature row.
    AddNode {
        /// Feature row, `input_dim` long.
        features: Vec<f32>,
    },
    /// Liveness probe: answered inline, never queued behind model work.
    Health,
    /// Serving counters (request/batch/latency).
    Stats,
    /// Stop the server.
    Shutdown,
    /// Test-only op (enabled by `ServerConfig::debug_ops`): the worker
    /// panics while handling it, exercising panic isolation.
    DebugPanic,
}

impl Request {
    /// Parse one request line. Errors name the offending field.
    pub fn parse(line: &str) -> ServeResult<Request> {
        let doc = Json::parse(line).map_err(|e| ServeError::Parse(format!("request: {e}")))?;
        let op = doc
            .get("op")
            .and_then(Json::as_str)
            .ok_or_else(|| ServeError::BadRequest("missing string field 'op'".into()))?;
        let node = |doc: &Json| -> ServeResult<usize> {
            doc.get("node")
                .and_then(Json::as_usize)
                .ok_or_else(|| ServeError::BadRequest(format!("'{op}' needs integer field 'node'")))
        };
        match op {
            "predict" => Ok(Request::Predict { node: node(&doc)? }),
            "top_k" => {
                let k = doc
                    .get("k")
                    .and_then(Json::as_usize)
                    .ok_or_else(|| ServeError::BadRequest("'top_k' needs integer field 'k'".into()))?;
                if k == 0 {
                    return Err(ServeError::BadRequest("'top_k' needs k >= 1".into()));
                }
                Ok(Request::TopK { node: node(&doc)?, k })
            }
            "add_edge" | "remove_edge" => {
                let end = |field: &str| -> ServeResult<usize> {
                    doc.get(field).and_then(Json::as_usize).ok_or_else(|| {
                        ServeError::BadRequest(format!("'{op}' needs integer field '{field}'"))
                    })
                };
                let (u, v) = (end("u")?, end("v")?);
                if op == "add_edge" {
                    Ok(Request::AddEdge { u, v })
                } else {
                    Ok(Request::RemoveEdge { u, v })
                }
            }
            "add_node" => {
                let features = doc
                    .get("features")
                    .and_then(Json::to_f32s)
                    .ok_or_else(|| {
                        ServeError::BadRequest("'add_node' needs number array 'features'".into())
                    })?;
                Ok(Request::AddNode { features })
            }
            "health" => Ok(Request::Health),
            "stats" => Ok(Request::Stats),
            "shutdown" => Ok(Request::Shutdown),
            "debug_panic" => Ok(Request::DebugPanic),
            other => Err(ServeError::BadRequest(format!("unknown op '{other}'"))),
        }
    }

    /// Serialize a request line (the load generator and tests use this).
    pub fn to_line(&self) -> String {
        let obj = match self {
            Request::Predict { node } => vec![
                ("op".to_string(), Json::Str("predict".into())),
                ("node".to_string(), Json::Num(*node as f64)),
            ],
            Request::TopK { node, k } => vec![
                ("op".to_string(), Json::Str("top_k".into())),
                ("node".to_string(), Json::Num(*node as f64)),
                ("k".to_string(), Json::Num(*k as f64)),
            ],
            Request::AddEdge { u, v } => vec![
                ("op".to_string(), Json::Str("add_edge".into())),
                ("u".to_string(), Json::Num(*u as f64)),
                ("v".to_string(), Json::Num(*v as f64)),
            ],
            Request::RemoveEdge { u, v } => vec![
                ("op".to_string(), Json::Str("remove_edge".into())),
                ("u".to_string(), Json::Num(*u as f64)),
                ("v".to_string(), Json::Num(*v as f64)),
            ],
            Request::AddNode { features } => vec![
                ("op".to_string(), Json::Str("add_node".into())),
                ("features".to_string(), Json::from_f32s(features.iter().copied())),
            ],
            Request::Health => vec![("op".to_string(), Json::Str("health".into()))],
            Request::Stats => vec![("op".to_string(), Json::Str("stats".into()))],
            Request::Shutdown => vec![("op".to_string(), Json::Str("shutdown".into()))],
            Request::DebugPanic => vec![("op".to_string(), Json::Str("debug_panic".into()))],
        };
        Json::Obj(obj).to_string()
    }
}

/// Point-in-time serving counters reported by `stats`.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct StatsSnapshot {
    /// Model requests answered (predict/top_k, ok or error).
    pub requests: u64,
    /// Batches the micro-batcher dispatched.
    pub batches: u64,
    /// Largest batch coalesced so far.
    pub max_batch: u64,
    /// Mean requests per batch.
    pub mean_batch: f64,
    /// Median request latency, microseconds (enqueue → response ready).
    pub p50_us: f64,
    /// 99th-percentile request latency, microseconds.
    pub p99_us: f64,
}

fn ok_head() -> (String, Json) {
    ("ok".to_string(), Json::Bool(true))
}

/// `predict` success response line.
pub fn predict_response(p: &Prediction) -> String {
    Json::Obj(vec![
        ok_head(),
        ("node".into(), Json::Num(p.node as f64)),
        ("class".into(), Json::Num(p.class as f64)),
        ("probs".into(), Json::from_f32s(p.probs.iter().copied())),
    ])
    .to_string()
}

/// `top_k` success response line.
pub fn top_k_response(node: usize, ranked: &[(usize, f32)]) -> String {
    Json::Obj(vec![
        ok_head(),
        ("node".into(), Json::Num(node as f64)),
        (
            "top".into(),
            Json::Arr(
                ranked
                    .iter()
                    .map(|&(class, prob)| {
                        Json::Obj(vec![
                            ("class".into(), Json::Num(class as f64)),
                            ("prob".into(), Json::Num(prob as f64)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
    .to_string()
}

/// `health` response line (includes the model identity so probes double as
/// a deployment sanity check).
pub fn health_response(meta: &FrozenMeta) -> String {
    Json::Obj(vec![
        ok_head(),
        ("status".into(), Json::Str("healthy".into())),
        ("model".into(), Json::Str(meta.model.clone())),
        ("dataset".into(), Json::Str(meta.dataset.clone())),
        ("num_nodes".into(), Json::Num(meta.num_nodes as f64)),
        ("num_classes".into(), Json::Num(meta.num_classes as f64)),
    ])
    .to_string()
}

/// `stats` response line.
pub fn stats_response(s: &StatsSnapshot) -> String {
    Json::Obj(vec![
        ok_head(),
        ("requests".into(), Json::Num(s.requests as f64)),
        ("batches".into(), Json::Num(s.batches as f64)),
        ("max_batch".into(), Json::Num(s.max_batch as f64)),
        ("mean_batch".into(), Json::Num(s.mean_batch)),
        ("p50_us".into(), Json::Num(s.p50_us)),
        ("p99_us".into(), Json::Num(s.p99_us)),
    ])
    .to_string()
}

/// `add_edge` / `remove_edge` / `add_node` success response line. `op`
/// echoes the verb; `node` is present only for `add_node`.
pub fn mutation_response(op: &str, r: &MutationReport) -> String {
    let mut fields = vec![
        ok_head(),
        ("op".into(), Json::Str(op.into())),
        ("dirty_rows".into(), Json::Num(r.dirty_rows as f64)),
        ("full_recompute".into(), Json::Bool(r.full)),
        ("num_nodes".into(), Json::Num(r.num_nodes as f64)),
    ];
    if let Some(node) = r.node {
        fields.push(("node".into(), Json::Num(node as f64)));
    }
    Json::Obj(fields).to_string()
}

/// `shutdown` acknowledgement line.
pub fn shutdown_response() -> String {
    Json::Obj(vec![ok_head(), ("status".into(), Json::Str("shutting_down".into()))]).to_string()
}

/// Error response line for any failed request.
pub fn error_response(e: &ServeError) -> String {
    Json::Obj(vec![
        ("ok".to_string(), Json::Bool(false)),
        (
            "error".to_string(),
            Json::Obj(vec![
                ("kind".into(), Json::Str(e.kind().into())),
                ("message".into(), Json::Str(e.to_string())),
            ]),
        ),
    ])
    .to_string()
}
