//! The newline-delimited JSON wire protocol (grammar in DESIGN.md §10).
//!
//! One request object per line in, one response object per line out, over a
//! plain TCP stream. Every response carries `"ok"`; failures carry a typed
//! `error.kind` (the [`ServeError::kind`] string) so clients can branch
//! without parsing prose. A line the server cannot even parse still gets a
//! well-formed error response — garbage in never kills the connection, let
//! alone the server.

use lasagne_testkit::Json;

use crate::engine::Prediction;
use crate::error::{ServeError, ServeResult};
use crate::frozen::FrozenMeta;
use crate::streaming::MutationReport;

/// A decoded client request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Argmax class + distribution for one node.
    Predict {
        /// Node id in the frozen graph.
        node: usize,
    },
    /// The `k` most probable classes for one node.
    TopK {
        /// Node id in the frozen graph.
        node: usize,
        /// How many classes to return.
        k: usize,
    },
    /// Top-`k` item recommendations for one user node (models frozen with
    /// a recommendation binding only).
    Recommend {
        /// User node id (`items..items+users` in the bipartite layout).
        node: usize,
        /// How many items to return.
        k: usize,
    },
    /// Insert undirected edge `u — v` into the live graph.
    AddEdge {
        /// One endpoint.
        u: usize,
        /// The other endpoint.
        v: usize,
    },
    /// Delete undirected edge `u — v` from the live graph.
    RemoveEdge {
        /// One endpoint.
        u: usize,
        /// The other endpoint.
        v: usize,
    },
    /// Append an isolated node with the given feature row.
    AddNode {
        /// Feature row, `input_dim` long.
        features: Vec<f32>,
    },
    /// Liveness probe: answered inline, never queued behind model work.
    Health,
    /// Serving counters (request/batch/latency/overload/swap).
    Stats,
    /// Load + checksum a new frozen file off the batcher thread, then
    /// atomically install it at the next batch boundary. In-flight work
    /// drains on the old model; new requests answer on the new one.
    SwapModel {
        /// Server-side path of the frozen file to load.
        path: String,
    },
    /// Stop the server.
    Shutdown,
    /// Test-only op (enabled by `ServerConfig::debug_ops`): the worker
    /// panics while handling it, exercising panic isolation.
    DebugPanic,
    /// Test-only op (enabled by `ServerConfig::debug_ops`): the batcher
    /// sleeps for `ms` while "handling" it — the chaos suite's tool for
    /// making model work slow enough to fill the admission queue.
    DebugSleep {
        /// Milliseconds the batcher sleeps.
        ms: u64,
    },
}

impl Request {
    /// Parse one request line. Errors name the offending field.
    pub fn parse(line: &str) -> ServeResult<Request> {
        let doc = Json::parse(line).map_err(|e| ServeError::Parse(format!("request: {e}")))?;
        let op = doc
            .get("op")
            .and_then(Json::as_str)
            .ok_or_else(|| ServeError::BadRequest("missing string field 'op'".into()))?;
        let node = |doc: &Json| -> ServeResult<usize> {
            doc.get("node")
                .and_then(Json::as_usize)
                .ok_or_else(|| ServeError::BadRequest(format!("'{op}' needs integer field 'node'")))
        };
        match op {
            "predict" => Ok(Request::Predict { node: node(&doc)? }),
            "top_k" => {
                let k = doc
                    .get("k")
                    .and_then(Json::as_usize)
                    .ok_or_else(|| ServeError::BadRequest("'top_k' needs integer field 'k'".into()))?;
                if k == 0 {
                    return Err(ServeError::BadRequest("'top_k' needs k >= 1".into()));
                }
                Ok(Request::TopK { node: node(&doc)?, k })
            }
            "recommend" => {
                let k = doc.get("k").and_then(Json::as_usize).ok_or_else(|| {
                    ServeError::BadRequest("'recommend' needs integer field 'k'".into())
                })?;
                if k == 0 {
                    return Err(ServeError::BadRequest("'recommend' needs k >= 1".into()));
                }
                Ok(Request::Recommend { node: node(&doc)?, k })
            }
            "add_edge" | "remove_edge" => {
                let end = |field: &str| -> ServeResult<usize> {
                    doc.get(field).and_then(Json::as_usize).ok_or_else(|| {
                        ServeError::BadRequest(format!("'{op}' needs integer field '{field}'"))
                    })
                };
                let (u, v) = (end("u")?, end("v")?);
                if op == "add_edge" {
                    Ok(Request::AddEdge { u, v })
                } else {
                    Ok(Request::RemoveEdge { u, v })
                }
            }
            "add_node" => {
                let features = doc
                    .get("features")
                    .and_then(Json::to_f32s)
                    .ok_or_else(|| {
                        ServeError::BadRequest("'add_node' needs number array 'features'".into())
                    })?;
                Ok(Request::AddNode { features })
            }
            "health" => Ok(Request::Health),
            "stats" => Ok(Request::Stats),
            "swap_model" => {
                let path = doc.get("path").and_then(Json::as_str).ok_or_else(|| {
                    ServeError::BadRequest("'swap_model' needs string field 'path'".into())
                })?;
                Ok(Request::SwapModel { path: path.to_string() })
            }
            "shutdown" => Ok(Request::Shutdown),
            "debug_panic" => Ok(Request::DebugPanic),
            "debug_sleep" => {
                let ms = doc.get("ms").and_then(Json::as_u64).ok_or_else(|| {
                    ServeError::BadRequest("'debug_sleep' needs integer field 'ms'".into())
                })?;
                Ok(Request::DebugSleep { ms })
            }
            other => Err(ServeError::BadRequest(format!("unknown op '{other}'"))),
        }
    }

    /// Serialize a request line (the load generator and tests use this).
    pub fn to_line(&self) -> String {
        let obj = match self {
            Request::Predict { node } => vec![
                ("op".to_string(), Json::Str("predict".into())),
                ("node".to_string(), Json::Num(*node as f64)),
            ],
            Request::TopK { node, k } => vec![
                ("op".to_string(), Json::Str("top_k".into())),
                ("node".to_string(), Json::Num(*node as f64)),
                ("k".to_string(), Json::Num(*k as f64)),
            ],
            Request::Recommend { node, k } => vec![
                ("op".to_string(), Json::Str("recommend".into())),
                ("node".to_string(), Json::Num(*node as f64)),
                ("k".to_string(), Json::Num(*k as f64)),
            ],
            Request::AddEdge { u, v } => vec![
                ("op".to_string(), Json::Str("add_edge".into())),
                ("u".to_string(), Json::Num(*u as f64)),
                ("v".to_string(), Json::Num(*v as f64)),
            ],
            Request::RemoveEdge { u, v } => vec![
                ("op".to_string(), Json::Str("remove_edge".into())),
                ("u".to_string(), Json::Num(*u as f64)),
                ("v".to_string(), Json::Num(*v as f64)),
            ],
            Request::AddNode { features } => vec![
                ("op".to_string(), Json::Str("add_node".into())),
                ("features".to_string(), Json::from_f32s(features.iter().copied())),
            ],
            Request::Health => vec![("op".to_string(), Json::Str("health".into()))],
            Request::Stats => vec![("op".to_string(), Json::Str("stats".into()))],
            Request::SwapModel { path } => vec![
                ("op".to_string(), Json::Str("swap_model".into())),
                ("path".to_string(), Json::Str(path.clone())),
            ],
            Request::Shutdown => vec![("op".to_string(), Json::Str("shutdown".into()))],
            Request::DebugPanic => vec![("op".to_string(), Json::Str("debug_panic".into()))],
            Request::DebugSleep { ms } => vec![
                ("op".to_string(), Json::Str("debug_sleep".into())),
                ("ms".to_string(), Json::Num(*ms as f64)),
            ],
        };
        Json::Obj(obj).to_string()
    }
}

/// Point-in-time serving counters reported by `stats`.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct StatsSnapshot {
    /// Model requests answered (predict/top_k, ok or error).
    pub requests: u64,
    /// Batches the micro-batcher dispatched.
    pub batches: u64,
    /// Largest batch coalesced so far.
    pub max_batch: u64,
    /// Mean requests per batch.
    pub mean_batch: f64,
    /// Median request latency, microseconds (enqueue → response ready).
    pub p50_us: f64,
    /// 99th-percentile request latency, microseconds.
    pub p99_us: f64,
    /// Requests currently sitting in the admission queue.
    pub queue_depth: u64,
    /// Requests shed with a typed `overloaded` (queue was full).
    pub shed: u64,
    /// Requests dropped with a typed `deadline_exceeded` (expired in queue).
    pub expired: u64,
    /// Hot model swaps installed since start.
    pub swaps: u64,
    /// Monotonic version of the currently installed model (starts at 1).
    pub model_version: u64,
    /// Live client connections (including the one asking).
    pub connections: u64,
    /// Whether the installed model serves approximate (quantized-weight)
    /// logits rather than the exact f32 path (DESIGN.md §13).
    pub quantized: bool,
}

fn ok_head() -> (String, Json) {
    ("ok".to_string(), Json::Bool(true))
}

fn version_field(version: u64) -> (String, Json) {
    ("model_version".to_string(), Json::Num(version as f64))
}

/// `predict` success response line, stamped with the version of the model
/// that computed it.
pub fn predict_response(p: &Prediction, version: u64) -> String {
    Json::Obj(vec![
        ok_head(),
        version_field(version),
        ("node".into(), Json::Num(p.node as f64)),
        ("class".into(), Json::Num(p.class as f64)),
        ("probs".into(), Json::from_f32s(p.probs.iter().copied())),
    ])
    .to_string()
}

/// `top_k` success response line.
pub fn top_k_response(node: usize, ranked: &[(usize, f32)], version: u64) -> String {
    Json::Obj(vec![
        ok_head(),
        version_field(version),
        ("node".into(), Json::Num(node as f64)),
        (
            "top".into(),
            Json::Arr(
                ranked
                    .iter()
                    .map(|&(class, prob)| {
                        Json::Obj(vec![
                            ("class".into(), Json::Num(class as f64)),
                            ("prob".into(), Json::Num(prob as f64)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
    .to_string()
}

/// `recommend` success response line. Scores are raw dot products of
/// embedding rows (not probabilities) — useful for thresholding and for
/// bitwise comparison against the training-side evaluator.
pub fn recommend_response(node: usize, ranked: &[(usize, f32)], version: u64) -> String {
    Json::Obj(vec![
        ok_head(),
        version_field(version),
        ("node".into(), Json::Num(node as f64)),
        (
            "items".into(),
            Json::Arr(
                ranked
                    .iter()
                    .map(|&(item, score)| {
                        Json::Obj(vec![
                            ("item".into(), Json::Num(item as f64)),
                            ("score".into(), Json::Num(score as f64)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
    .to_string()
}

/// `health` response line (includes the model identity so probes double as
/// a deployment sanity check). `status` is the degradation state machine of
/// DESIGN.md §12: `ok` | `degraded` | `draining`.
pub fn health_response(meta: &FrozenMeta, status: &str, version: u64, queue_depth: u64) -> String {
    Json::Obj(vec![
        ok_head(),
        ("status".into(), Json::Str(status.into())),
        version_field(version),
        ("queue_depth".into(), Json::Num(queue_depth as f64)),
        ("model".into(), Json::Str(meta.model.clone())),
        ("dataset".into(), Json::Str(meta.dataset.clone())),
        ("num_nodes".into(), Json::Num(meta.num_nodes as f64)),
        ("num_classes".into(), Json::Num(meta.num_classes as f64)),
    ])
    .to_string()
}

/// `stats` response line.
pub fn stats_response(s: &StatsSnapshot) -> String {
    Json::Obj(vec![
        ok_head(),
        ("requests".into(), Json::Num(s.requests as f64)),
        ("batches".into(), Json::Num(s.batches as f64)),
        ("max_batch".into(), Json::Num(s.max_batch as f64)),
        ("mean_batch".into(), Json::Num(s.mean_batch)),
        ("p50_us".into(), Json::Num(s.p50_us)),
        ("p99_us".into(), Json::Num(s.p99_us)),
        ("queue_depth".into(), Json::Num(s.queue_depth as f64)),
        ("shed".into(), Json::Num(s.shed as f64)),
        ("expired".into(), Json::Num(s.expired as f64)),
        ("swaps".into(), Json::Num(s.swaps as f64)),
        version_field(s.model_version),
        ("connections".into(), Json::Num(s.connections as f64)),
        ("quantized".into(), Json::Bool(s.quantized)),
    ])
    .to_string()
}

/// `add_edge` / `remove_edge` / `add_node` success response line. `op`
/// echoes the verb; `node` is present only for `add_node`.
pub fn mutation_response(op: &str, r: &MutationReport, version: u64) -> String {
    let mut fields = vec![
        ok_head(),
        version_field(version),
        ("op".into(), Json::Str(op.into())),
        ("dirty_rows".into(), Json::Num(r.dirty_rows as f64)),
        ("full_recompute".into(), Json::Bool(r.full)),
        ("num_nodes".into(), Json::Num(r.num_nodes as f64)),
    ];
    if let Some(node) = r.node {
        fields.push(("node".into(), Json::Num(node as f64)));
    }
    Json::Obj(fields).to_string()
}

/// `swap_model` acknowledgement: the new file loaded and checksummed clean
/// and will be installed at the next batch boundary as `model_version`.
pub fn swap_response(version: u64) -> String {
    Json::Obj(vec![
        ok_head(),
        ("status".into(), Json::Str("pending".into())),
        version_field(version),
    ])
    .to_string()
}

/// `debug_sleep` acknowledgement (test-only op).
pub fn debug_sleep_response(version: u64) -> String {
    Json::Obj(vec![ok_head(), version_field(version), ("op".into(), Json::Str("debug_sleep".into()))])
        .to_string()
}

/// `shutdown` acknowledgement line.
pub fn shutdown_response() -> String {
    Json::Obj(vec![ok_head(), ("status".into(), Json::Str("shutting_down".into()))]).to_string()
}

/// Error response line for any failed request. Overload-family errors carry
/// their machine-readable hints (`retry_after_ms`, `waited_ms`, `limit`) as
/// structured fields next to `kind`, so a client can back off without
/// parsing prose.
pub fn error_response(e: &ServeError) -> String {
    error_response_versioned(e, None)
}

/// [`error_response`], stamped with the model version of the batcher that
/// rejected it (errors from reader threads carry no version).
pub fn error_response_versioned(e: &ServeError, version: Option<u64>) -> String {
    let mut error = vec![
        ("kind".to_string(), Json::Str(e.kind().into())),
        ("message".to_string(), Json::Str(e.to_string())),
    ];
    match e {
        ServeError::Overloaded { retry_after_ms } => {
            error.push(("retry_after_ms".into(), Json::Num(*retry_after_ms as f64)));
        }
        ServeError::DeadlineExceeded { waited_ms, deadline_ms } => {
            error.push(("waited_ms".into(), Json::Num(*waited_ms as f64)));
            error.push(("deadline_ms".into(), Json::Num(*deadline_ms as f64)));
        }
        ServeError::RequestTooLarge { limit } | ServeError::TooManyConnections { limit } => {
            error.push(("limit".into(), Json::Num(*limit as f64)));
        }
        ServeError::UnknownUser { items, users, .. } => {
            error.push(("items".into(), Json::Num(*items as f64)));
            error.push(("users".into(), Json::Num(*users as f64)));
        }
        _ => {}
    }
    let mut fields = vec![("ok".to_string(), Json::Bool(false))];
    if let Some(v) = version {
        fields.push(version_field(v));
    }
    fields.push(("error".to_string(), Json::Obj(error)));
    Json::Obj(fields).to_string()
}
