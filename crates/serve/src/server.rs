//! The batched TCP model server, hardened for overload.
//!
//! Architecture: one accept thread, one reader thread per connection, and a
//! single **micro-batcher** thread that owns the [`Engine`]. Readers parse
//! newline-delimited JSON requests; model queries (`predict`/`top_k`/
//! mutations) are enqueued and the batcher drains the queue in one gulp (up
//! to `max_batch`). Control queries (`health`/`stats`/`swap_model`/
//! `shutdown`) are answered on the reader's thread — a reserved fast path
//! that never queues behind model work, so a liveness probe stays
//! microsecond-fast even when the queue is full.
//!
//! The overload contract (DESIGN.md §12), in order of the request's life:
//!
//! * **Connection admission** — at most `max_connections` live connections;
//!   the acceptor answers the excess with a typed `too_many_connections`
//!   line and closes.
//! * **Read hygiene** — every socket carries read/write timeouts; a request
//!   line over `max_request_bytes` gets a typed `request_too_large` and the
//!   connection closes (framing is lost); a connection silent for
//!   `idle_timeout_ms` is reaped, so slowloris clients cannot pin reader
//!   threads forever.
//! * **Queue admission** — the request queue holds at most `queue_capacity`
//!   jobs; the excess is shed immediately with a typed `overloaded` carrying
//!   a `retry_after_ms` hint derived from queue depth × mean service time.
//! * **Deadlines** — every admitted job is stamped `now + deadline_ms`; the
//!   batcher answers expired jobs with a typed `deadline_exceeded` instead
//!   of computing a dead answer.
//! * **Hot swap** — `swap_model` (or [`Server::swap`]) loads + checksums a
//!   new frozen file on the *calling* thread, then parks the built engine in
//!   a pending slot; the batcher installs it atomically at the next batch
//!   boundary. In-flight work drains on the old model, every response is
//!   stamped with the `model_version` that computed it.
//! * **Health states** — `health` reports `ok` | `degraded` (queue more
//!   than half full, shed in the last second, or a swap pending) |
//!   `draining` (shutdown in progress); graceful shutdown drains the queue
//!   before the worker threads join.
//!
//! Each queued request is handled inside `catch_unwind`: a panicking worker
//! produces a typed `internal` error response for that one request and the
//! server keeps answering everything else.

use std::collections::VecDeque;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crate::engine::{Engine, Prediction};
use crate::error::{ServeError, ServeResult};
use crate::frozen::FrozenMeta;
use crate::lazy::LazyEngine;
use crate::protocol::{
    debug_sleep_response, error_response, error_response_versioned, health_response,
    mutation_response, predict_response, recommend_response, shutdown_response, stats_response,
    swap_response, top_k_response, Request, StatsSnapshot,
};
use crate::streaming::{Mutation, MutationReport};

/// The engine a server answers from: the resident propagation-cache
/// [`Engine`], or the partition-lazy [`LazyEngine`] (DESIGN.md §14). The
/// batcher thread owns it either way, and hot swaps preserve the mode — a
/// lazy server re-plans the incoming artifact with the same partition
/// count instead of silently materializing a full cache.
pub enum ServerEngine {
    /// Full-graph cache materialized at load.
    Resident(Engine),
    /// Per-partition caches materialized on first query.
    Lazy(LazyEngine),
}

impl From<Engine> for ServerEngine {
    fn from(e: Engine) -> ServerEngine {
        ServerEngine::Resident(e)
    }
}

impl From<LazyEngine> for ServerEngine {
    fn from(e: LazyEngine) -> ServerEngine {
        ServerEngine::Lazy(e)
    }
}

impl ServerEngine {
    fn meta(&self) -> &FrozenMeta {
        match self {
            ServerEngine::Resident(e) => e.meta(),
            ServerEngine::Lazy(e) => e.meta(),
        }
    }

    fn is_quantized(&self) -> bool {
        match self {
            ServerEngine::Resident(e) => e.is_quantized(),
            // Lazy engines refuse quantized artifacts at construction.
            ServerEngine::Lazy(_) => false,
        }
    }

    /// `Some(k)` when lazy — the partition count swaps must preserve.
    fn lazy_partitions(&self) -> Option<usize> {
        match self {
            ServerEngine::Resident(_) => None,
            ServerEngine::Lazy(e) => Some(e.num_parts()),
        }
    }

    fn predict(&mut self, node: usize) -> ServeResult<Prediction> {
        match self {
            ServerEngine::Resident(e) => e.predict(node),
            ServerEngine::Lazy(e) => e.predict(node),
        }
    }

    fn top_k(&mut self, node: usize, k: usize) -> ServeResult<Vec<(usize, f32)>> {
        match self {
            ServerEngine::Resident(e) => e.top_k(node, k),
            ServerEngine::Lazy(e) => e.top_k(node, k),
        }
    }

    fn recommend(&mut self, node: usize, k: usize) -> ServeResult<Vec<(usize, f32)>> {
        match self {
            ServerEngine::Resident(e) => e.recommend(node, k),
            // A lazy engine pages logits per partition and never holds the
            // whole-graph embedding table a dot-product ranking needs.
            ServerEngine::Lazy(_) => Err(ServeError::NotARecommender {
                reason: "partition-lazy serving has no recommendation state \
                         (serve the resident artifact for `recommend`)"
                    .into(),
            }),
        }
    }

    fn apply_mutation(&mut self, m: &Mutation) -> ServeResult<MutationReport> {
        match self {
            ServerEngine::Resident(e) => e.apply_mutation(m),
            ServerEngine::Lazy(e) => match e.apply_mutation(m) {
                Err(err) => Err(err),
                Ok(()) => {
                    Err(ServeError::Internal("lazy mutation unexpectedly succeeded".into()))
                }
            },
        }
    }
}

/// Server tunables. The defaults are sized for a trusted LAN client pool;
/// the chaos suite and the verify soak run with much tighter ones.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; use port 0 to let the OS pick (tests do).
    pub addr: String,
    /// Most queued requests the batcher drains per gulp.
    pub max_batch: usize,
    /// Enable test-only ops (`debug_panic`, `debug_sleep`). Never enable in
    /// production.
    pub debug_ops: bool,
    /// Admission-queue capacity; requests beyond it are shed with a typed
    /// `overloaded`.
    pub queue_capacity: usize,
    /// Deadline stamped on every admitted request, milliseconds; jobs that
    /// expire in the queue answer `deadline_exceeded`. 0 disables deadlines.
    pub deadline_ms: u64,
    /// Most live connections; the excess is refused with a typed
    /// `too_many_connections`.
    pub max_connections: usize,
    /// Per-line byte cap; longer request lines answer `request_too_large`
    /// and the connection closes.
    pub max_request_bytes: usize,
    /// Reap a connection after this much inactivity, milliseconds. 0
    /// disables reaping.
    pub idle_timeout_ms: u64,
    /// Socket write timeout, milliseconds — a dead client can stall a
    /// reader thread for at most this long. 0 disables.
    pub write_timeout_ms: u64,
    /// Read-poll granularity, milliseconds: how often an idle reader wakes
    /// to check the idle clock. Clamped to ≥ 10.
    pub poll_interval_ms: u64,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            addr: "127.0.0.1:7878".into(),
            max_batch: 64,
            debug_ops: false,
            queue_capacity: 1024,
            deadline_ms: 2_000,
            max_connections: 1024,
            max_request_bytes: 1 << 20,
            idle_timeout_ms: 30_000,
            write_timeout_ms: 2_000,
            poll_interval_ms: 100,
        }
    }
}

/// One queued model request and the channel its response goes back on.
struct Job {
    request: Request,
    enqueued: Instant,
    deadline: Option<Instant>,
    reply: mpsc::Sender<String>,
}

/// An engine built off-thread, waiting for the batcher to install it.
struct PendingSwap {
    engine: ServerEngine,
    version: u64,
}

/// Latency reservoir: a fixed-size ring so a long-lived server's stats stay
/// O(1) in memory while still reflecting recent traffic.
const LATENCY_RING: usize = 65_536;

/// A shed within this window marks health `degraded`.
const SHED_DEGRADED_WINDOW: Duration = Duration::from_secs(1);

#[derive(Default)]
struct StatsInner {
    requests: u64,
    batches: u64,
    max_batch: u64,
    batch_req_sum: u64,
    latency_sum_us: f64,
    latencies_us: Vec<f64>,
    next_slot: usize,
}

impl StatsInner {
    fn record_latency(&mut self, us: f64) {
        self.latency_sum_us += us;
        if self.latencies_us.len() < LATENCY_RING {
            self.latencies_us.push(us);
        } else {
            self.latencies_us[self.next_slot] = us;
            self.next_slot = (self.next_slot + 1) % LATENCY_RING;
        }
    }

    /// Mean service time over the whole run — the basis of the
    /// `retry_after_ms` hint.
    fn mean_latency_us(&self) -> f64 {
        if self.requests == 0 {
            0.0
        } else {
            self.latency_sum_us / self.requests as f64
        }
    }
}

struct Shared {
    meta: Mutex<FrozenMeta>,
    /// Bound address; a client-initiated shutdown self-connects to it to
    /// wake the blocking accept loop.
    addr: SocketAddr,
    queue: Mutex<VecDeque<Job>>,
    available: Condvar,
    shutdown: AtomicBool,
    stats: Mutex<StatsInner>,
    config: ServerConfig,
    /// Mirror of `queue.len()`, readable without the queue lock — the
    /// health fast path must never wait on model-work locks.
    queue_depth: AtomicUsize,
    connections: AtomicUsize,
    /// Version of the engine currently installed in the batcher.
    model_version: AtomicU64,
    /// Allocator for swap versions; monotonic, may skip numbers if a
    /// pending swap is replaced before installation.
    version_alloc: AtomicU64,
    /// The built-but-not-yet-installed engine. Last submission wins.
    swap_slot: Mutex<Option<PendingSwap>>,
    swap_pending: AtomicBool,
    shed: AtomicU64,
    expired: AtomicU64,
    swaps: AtomicU64,
    /// Nanoseconds since `start` of the most recent shed; `u64::MAX` =
    /// never shed.
    last_shed_ns: AtomicU64,
    /// Mirror of the installed engine's quantized flag (the engine itself
    /// lives in the batcher thread); updated at swap install.
    quantized: AtomicBool,
    /// `Some(k)` when the server runs partition-lazily: swap loads re-plan
    /// the new artifact with the same `k` instead of going resident.
    lazy_partitions: Option<usize>,
    start: Instant,
    debug_ops: bool,
}

impl Shared {
    fn lock_queue(&self) -> std::sync::MutexGuard<'_, VecDeque<Job>> {
        self.queue.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn lock_stats(&self) -> std::sync::MutexGuard<'_, StatsInner> {
        self.stats.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn lock_swap(&self) -> std::sync::MutexGuard<'_, Option<PendingSwap>> {
        self.swap_slot.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn lock_meta(&self) -> std::sync::MutexGuard<'_, FrozenMeta> {
        self.meta.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// The health state machine: `draining` once shutdown begins,
    /// `degraded` when the queue is more than half full, a shed happened
    /// within the last second, or a swap is waiting to install — else `ok`.
    fn health_status(&self) -> &'static str {
        if self.shutdown.load(Ordering::SeqCst) {
            return "draining";
        }
        let depth = self.queue_depth.load(Ordering::Relaxed);
        let half_full = 2 * depth >= self.config.queue_capacity.max(1);
        let last_shed = self.last_shed_ns.load(Ordering::Relaxed);
        let shed_recently = last_shed != u64::MAX
            && self.start.elapsed().saturating_sub(Duration::from_nanos(last_shed))
                <= SHED_DEGRADED_WINDOW;
        if half_full || shed_recently || self.swap_pending.load(Ordering::SeqCst) {
            "degraded"
        } else {
            "ok"
        }
    }

    fn snapshot(&self) -> StatsSnapshot {
        let (requests, batches, max_batch, mean_batch, p50_us, p99_us) = {
            let stats = self.lock_stats();
            let mut sorted = stats.latencies_us.clone();
            sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
            let pct = |q: f64| -> f64 {
                if sorted.is_empty() {
                    return 0.0;
                }
                let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
                sorted[rank - 1]
            };
            let mean_batch = if stats.batches == 0 {
                0.0
            } else {
                stats.batch_req_sum as f64 / stats.batches as f64
            };
            (stats.requests, stats.batches, stats.max_batch, mean_batch, pct(0.50), pct(0.99))
        };
        StatsSnapshot {
            requests,
            batches,
            max_batch,
            mean_batch,
            p50_us,
            p99_us,
            queue_depth: self.queue_depth.load(Ordering::Relaxed) as u64,
            shed: self.shed.load(Ordering::Relaxed),
            expired: self.expired.load(Ordering::Relaxed),
            swaps: self.swaps.load(Ordering::Relaxed),
            model_version: self.model_version.load(Ordering::SeqCst),
            connections: self.connections.load(Ordering::Relaxed) as u64,
            quantized: self.quantized.load(Ordering::Relaxed),
        }
    }
}

/// A running server. Dropping it (or calling [`Server::shutdown`]) stops
/// the accept loop, drains the queue, and joins the worker threads.
pub struct Server {
    addr: SocketAddr,
    shared: Arc<Shared>,
    accept_thread: Option<JoinHandle<()>>,
    batcher_thread: Option<JoinHandle<()>>,
}

impl Server {
    /// Bind, spawn the accept + batcher threads, and start answering.
    /// The engine moves into the batcher thread — it is the only thread
    /// that touches model state.
    pub fn start(engine: Engine, config: ServerConfig) -> ServeResult<Server> {
        Server::start_with(ServerEngine::Resident(engine), config)
    }

    /// [`Server::start`] for either engine mode — pass
    /// `ServerEngine::Lazy(LazyEngine::new(frozen, k)?)` to serve out of
    /// lazily materialized per-partition caches.
    pub fn start_with(engine: ServerEngine, config: ServerConfig) -> ServeResult<Server> {
        let listener = TcpListener::bind(&config.addr)
            .map_err(|e| ServeError::Io(format!("bind {}: {e}", config.addr)))?;
        let addr = listener
            .local_addr()
            .map_err(|e| ServeError::Io(format!("local_addr: {e}")))?;
        let debug_ops = config.debug_ops;
        let shared = Arc::new(Shared {
            meta: Mutex::new(engine.meta().clone()),
            addr,
            queue: Mutex::new(VecDeque::new()),
            available: Condvar::new(),
            shutdown: AtomicBool::new(false),
            stats: Mutex::new(StatsInner::default()),
            config,
            queue_depth: AtomicUsize::new(0),
            connections: AtomicUsize::new(0),
            model_version: AtomicU64::new(1),
            version_alloc: AtomicU64::new(1),
            swap_slot: Mutex::new(None),
            swap_pending: AtomicBool::new(false),
            shed: AtomicU64::new(0),
            expired: AtomicU64::new(0),
            swaps: AtomicU64::new(0),
            last_shed_ns: AtomicU64::new(u64::MAX),
            quantized: AtomicBool::new(engine.is_quantized()),
            lazy_partitions: engine.lazy_partitions(),
            start: Instant::now(),
            debug_ops,
        });

        let batcher = {
            let shared = Arc::clone(&shared);
            let max_batch = shared.config.max_batch.max(1);
            std::thread::Builder::new()
                .name("serve-batcher".into())
                .spawn(move || batcher_loop(engine, shared, max_batch))
                .map_err(|e| ServeError::Io(format!("spawn batcher: {e}")))?
        };

        let acceptor = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("serve-accept".into())
                .spawn(move || accept_loop(listener, shared))
                .map_err(|e| ServeError::Io(format!("spawn acceptor: {e}")))?
        };

        Ok(Server {
            addr,
            shared,
            accept_thread: Some(acceptor),
            batcher_thread: Some(batcher),
        })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Current serving counters.
    pub fn stats(&self) -> StatsSnapshot {
        self.shared.snapshot()
    }

    /// Version of the model answering new requests (monotonic, starts at 1).
    pub fn model_version(&self) -> u64 {
        self.shared.model_version.load(Ordering::SeqCst)
    }

    /// Hot-swap the served model: load + checksum `path` and build its
    /// engine on *this* thread (the batcher keeps serving), then hand it to
    /// the batcher, which installs it atomically at the next batch
    /// boundary. Returns the version the new model will serve as. The wire
    /// verb `swap_model` is this same path invoked from a reader thread.
    pub fn swap(&self, path: &Path) -> ServeResult<u64> {
        submit_swap(&self.shared, path)
    }

    /// Stop accepting, drain queued requests, and join the worker threads.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    /// Block until a client sends `shutdown` (foreground serving — the CLI
    /// `serve` subcommand), then drain and join.
    pub fn wait(mut self) {
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.shared.available.notify_all();
        // Wake the blocking accept() with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        if let Some(t) = self.batcher_thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        if self.accept_thread.is_some() || self.batcher_thread.is_some() {
            self.stop_and_join();
        }
    }
}

/// Load + checksum a frozen file, build its engine (the expensive part —
/// full propagation), and park it for the batcher. Runs entirely on the
/// caller's thread; the batcher never blocks on a load.
fn submit_swap(shared: &Shared, path: &Path) -> ServeResult<u64> {
    lasagne_obs::span!("serve.swap.load");
    let engine = match shared.lazy_partitions {
        Some(k) => ServerEngine::Lazy(LazyEngine::load_path(path, k)?),
        None => ServerEngine::Resident(Engine::load_path(path)?),
    };
    let version = shared.version_alloc.fetch_add(1, Ordering::SeqCst) + 1;
    {
        let mut slot = shared.lock_swap();
        *slot = Some(PendingSwap { engine, version });
    }
    shared.swap_pending.store(true, Ordering::SeqCst);
    // Wake the batcher even if the queue is empty so the swap installs
    // promptly, not at the next request.
    shared.available.notify_all();
    Ok(version)
}

/// Decrements the live-connection gauge when a reader exits, however it
/// exits.
struct ConnGuard(Arc<Shared>);

impl Drop for ConnGuard {
    fn drop(&mut self) {
        self.0.connections.fetch_sub(1, Ordering::SeqCst);
    }
}

fn accept_loop(listener: TcpListener, shared: Arc<Shared>) {
    for stream in listener.incoming() {
        if shared.shutdown.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        // Line-oriented request/response traffic stalls badly under Nagle
        // + delayed ACK (~40-200 ms per round trip); disable buffering.
        let _ = stream.set_nodelay(true);
        let limit = shared.config.max_connections.max(1);
        if shared.connections.fetch_add(1, Ordering::SeqCst) >= limit {
            shared.connections.fetch_sub(1, Ordering::SeqCst);
            lasagne_obs::counter_add("serve.conn_refused", 1);
            let mut stream = stream;
            let _ = stream.set_write_timeout(Some(Duration::from_secs(1)));
            let _ = writeln!(stream, "{}", error_response(&ServeError::TooManyConnections { limit }));
            continue; // dropped: refused connections never get a thread
        }
        let guard = ConnGuard(Arc::clone(&shared));
        let shared = Arc::clone(&shared);
        // Reader threads are detached: they end when their client hangs up
        // or idles out, and a shut-down server answers their enqueues with
        // a typed error.
        let spawned = std::thread::Builder::new()
            .name("serve-conn".into())
            .spawn(move || connection_loop(stream, shared, guard));
        // On spawn failure the guard (moved into the closure that never
        // ran) is dropped by the Err, decrementing the gauge.
        let _ = spawned;
    }
}

/// What one poll of the bounded line reader produced.
enum NextLine {
    Line(String),
    /// The accumulated line crossed `max_request_bytes` with no newline.
    TooLarge,
    /// Read timed out with no new bytes; the caller checks the idle clock.
    Idle,
    /// EOF or a hard socket error.
    Closed,
}

/// A newline-delimited reader with a hard per-line byte cap, built on a
/// raw `TcpStream` so a read timeout never loses buffered partial input
/// (BufReader's `read_line` drops its progress on `Err`).
struct BoundedLineReader {
    stream: TcpStream,
    buf: Vec<u8>,
    max_line: usize,
}

impl BoundedLineReader {
    fn next_line(&mut self) -> NextLine {
        loop {
            if let Some(p) = self.buf.iter().position(|&b| b == b'\n') {
                // The cap is on the line, not the buffer: a pipelined short
                // request ahead of a long one must not shield the long one.
                if p > self.max_line {
                    return NextLine::TooLarge;
                }
                let line: Vec<u8> = self.buf.drain(..=p).collect();
                let text = String::from_utf8_lossy(&line[..line.len() - 1]);
                return NextLine::Line(text.trim_end_matches('\r').to_string());
            }
            if self.buf.len() > self.max_line {
                return NextLine::TooLarge;
            }
            let mut chunk = [0u8; 4096];
            match self.stream.read(&mut chunk) {
                Ok(0) => return NextLine::Closed,
                Ok(n) => self.buf.extend_from_slice(&chunk[..n]),
                Err(e)
                    if matches!(
                        e.kind(),
                        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                    ) =>
                {
                    return NextLine::Idle
                }
                Err(_) => return NextLine::Closed,
            }
        }
    }
}

fn connection_loop(stream: TcpStream, shared: Arc<Shared>, _guard: ConnGuard) {
    let cfg = &shared.config;
    // The read timeout doubles as the idle-poll tick: an idle reader wakes
    // this often to check the reap clock, holding no locks in between.
    let tick = Duration::from_millis(cfg.poll_interval_ms.max(10));
    let _ = stream.set_read_timeout(Some(tick));
    if cfg.write_timeout_ms > 0 {
        let _ = stream.set_write_timeout(Some(Duration::from_millis(cfg.write_timeout_ms)));
    }
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let idle_timeout =
        (cfg.idle_timeout_ms > 0).then(|| Duration::from_millis(cfg.idle_timeout_ms));
    let max_line = cfg.max_request_bytes.max(1);
    let mut reader = BoundedLineReader { stream, buf: Vec::new(), max_line };
    let mut last_activity = Instant::now();
    loop {
        let line = match reader.next_line() {
            NextLine::Line(line) => {
                last_activity = Instant::now();
                line
            }
            NextLine::TooLarge => {
                // Framing is lost mid-line: answer typed, then close. The
                // close must *linger* — if we slam the socket while the
                // client is still blasting its oversized line, the kernel
                // answers the unread bytes with an RST that destroys our
                // response before the client can read it. So: send, FIN
                // our side, then drain and discard input for a bounded
                // window before dropping the socket.
                lasagne_obs::counter_add("serve.too_large", 1);
                let e = ServeError::RequestTooLarge { limit: max_line };
                let _ = writeln!(writer, "{}", error_response(&e));
                let _ = writer.shutdown(std::net::Shutdown::Write);
                let linger_until = Instant::now() + Duration::from_millis(500);
                let mut sink = [0u8; 4096];
                while Instant::now() < linger_until {
                    match reader.stream.read(&mut sink) {
                        Ok(0) => break,
                        Ok(_) => continue,
                        Err(e)
                            if matches!(
                                e.kind(),
                                std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                            ) =>
                        {
                            continue
                        }
                        Err(_) => break,
                    }
                }
                return;
            }
            NextLine::Idle => {
                match idle_timeout {
                    Some(limit) if last_activity.elapsed() >= limit => {
                        lasagne_obs::counter_add("serve.idle_reaped", 1);
                        return;
                    }
                    _ => continue,
                }
            }
            NextLine::Closed => return,
        };
        if line.trim().is_empty() {
            continue;
        }
        let response = match Request::parse(&line) {
            Err(e) => error_response(&e),
            // The control fast path: health/stats/swap/shutdown answer on
            // this thread and never touch the model-work queue.
            Ok(Request::Health) => health_response(
                &shared.lock_meta(),
                shared.health_status(),
                shared.model_version.load(Ordering::SeqCst),
                shared.queue_depth.load(Ordering::Relaxed) as u64,
            ),
            Ok(Request::Stats) => stats_response(&shared.snapshot()),
            Ok(Request::SwapModel { path }) => match submit_swap(&shared, Path::new(&path)) {
                Ok(version) => swap_response(version),
                Err(e) => error_response(&e),
            },
            Ok(Request::Shutdown) => {
                let _ = writeln!(writer, "{}", shutdown_response());
                shared.shutdown.store(true, Ordering::SeqCst);
                shared.available.notify_all();
                // Wake the blocking accept() so the server can exit.
                let _ = TcpStream::connect(shared.addr);
                return;
            }
            Ok(request) => match enqueue_and_wait(&shared, request) {
                Ok(resp) => resp,
                Err(e) => error_response(&e),
            },
        };
        if writeln!(writer, "{response}").is_err() {
            break;
        }
    }
}

/// Bounded admission: queue a model request for the batcher and block until
/// its response. A full queue sheds immediately with a typed `overloaded`
/// (plus a backoff hint); a draining server refuses with `draining`.
fn enqueue_and_wait(shared: &Shared, request: Request) -> ServeResult<String> {
    if shared.shutdown.load(Ordering::SeqCst) {
        return Err(ServeError::Draining);
    }
    let capacity = shared.config.queue_capacity.max(1);
    let (tx, rx) = mpsc::channel();
    {
        let mut queue = shared.lock_queue();
        if queue.len() >= capacity {
            drop(queue);
            shared.shed.fetch_add(1, Ordering::Relaxed);
            shared
                .last_shed_ns
                .store(shared.start.elapsed().as_nanos() as u64, Ordering::Relaxed);
            lasagne_obs::counter_add("serve.shed", 1);
            // Retry hint: roughly how long the backlog takes to service at
            // the observed mean latency; 1 ms floor so clients always wait.
            let mean_us = shared.lock_stats().mean_latency_us();
            let hint = (capacity as f64 * mean_us / 1e3).ceil() as u64;
            return Err(ServeError::Overloaded { retry_after_ms: hint.clamp(1, 10_000) });
        }
        let deadline = (shared.config.deadline_ms > 0)
            .then(|| Instant::now() + Duration::from_millis(shared.config.deadline_ms));
        queue.push_back(Job { request, enqueued: Instant::now(), deadline, reply: tx });
        shared.queue_depth.store(queue.len(), Ordering::Relaxed);
    }
    shared.available.notify_one();
    rx.recv().map_err(|_| ServeError::Draining)
}

fn batcher_loop(mut engine: ServerEngine, shared: Arc<Shared>, max_batch: usize) {
    let mut version = shared.model_version.load(Ordering::SeqCst);
    loop {
        // Swap installation point: always at a batch boundary, so a batch
        // never straddles two models and every response is stamped with
        // exactly the version that computed it.
        if shared.swap_pending.swap(false, Ordering::SeqCst) {
            if let Some(pending) = shared.lock_swap().take() {
                engine = pending.engine;
                version = pending.version;
                shared.model_version.store(version, Ordering::SeqCst);
                *shared.lock_meta() = engine.meta().clone();
                shared.quantized.store(engine.is_quantized(), Ordering::Relaxed);
                shared.swaps.fetch_add(1, Ordering::Relaxed);
                lasagne_obs::counter_add("serve.swaps", 1);
            }
        }
        let batch: Vec<Job> = {
            let mut queue = shared.lock_queue();
            loop {
                if !queue.is_empty() {
                    let n = queue.len().min(max_batch);
                    let batch: Vec<Job> = queue.drain(..n).collect();
                    shared.queue_depth.store(queue.len(), Ordering::Relaxed);
                    break batch;
                }
                if shared.shutdown.load(Ordering::SeqCst) {
                    return; // drained and told to stop
                }
                if shared.swap_pending.load(Ordering::SeqCst) {
                    break Vec::new(); // install at the top of the loop
                }
                queue = shared
                    .available
                    .wait(queue)
                    .unwrap_or_else(|e| e.into_inner());
            }
        };
        if batch.is_empty() {
            continue;
        }
        lasagne_obs::span!("serve.batch");
        lasagne_obs::counter_add("serve.batches", 1);
        lasagne_obs::counter_add("serve.batch_nodes", batch.len() as u64);
        {
            let mut stats = shared.lock_stats();
            stats.batches += 1;
            stats.batch_req_sum += batch.len() as u64;
            stats.max_batch = stats.max_batch.max(batch.len() as u64);
        }
        for job in batch {
            // Deadline check before compute: an expired job answers typed
            // instead of burning batcher time on a dead answer.
            let response = match job.deadline {
                Some(d) if Instant::now() > d => {
                    shared.expired.fetch_add(1, Ordering::Relaxed);
                    lasagne_obs::counter_add("serve.expired", 1);
                    let e = ServeError::DeadlineExceeded {
                        waited_ms: job.enqueued.elapsed().as_millis() as u64,
                        deadline_ms: shared.config.deadline_ms,
                    };
                    error_response_versioned(&e, Some(version))
                }
                _ => {
                    // Panic isolation: a crashing handler answers *this*
                    // request with a typed internal error and the loop
                    // moves on.
                    catch_unwind(AssertUnwindSafe(|| {
                        handle_model_request(&mut engine, &job.request, shared.debug_ops, version)
                    }))
                    .unwrap_or_else(|panic| {
                        let what = panic
                            .downcast_ref::<&str>()
                            .map(|s| s.to_string())
                            .or_else(|| panic.downcast_ref::<String>().cloned())
                            .unwrap_or_else(|| "worker panicked".into());
                        error_response_versioned(&ServeError::Internal(what), Some(version))
                    })
                }
            };
            let us = job.enqueued.elapsed().as_secs_f64() * 1e6;
            lasagne_obs::counter_add("serve.requests", 1);
            lasagne_obs::counter_add_ns("serve.latency_ns", (us * 1e3) as u64);
            {
                let mut stats = shared.lock_stats();
                stats.requests += 1;
                stats.record_latency(us);
            }
            let _ = job.reply.send(response);
        }
    }
}

fn handle_model_request(
    engine: &mut ServerEngine,
    request: &Request,
    debug_ops: bool,
    version: u64,
) -> String {
    lasagne_obs::span!("serve.request");
    let mutate = |engine: &mut ServerEngine, op: &str, m: Mutation| -> String {
        match engine.apply_mutation(&m) {
            Ok(report) => mutation_response(op, &report, version),
            Err(e) => error_response_versioned(&e, Some(version)),
        }
    };
    match request {
        Request::Predict { node } => match engine.predict(*node) {
            Ok(p) => predict_response(&p, version),
            Err(e) => error_response_versioned(&e, Some(version)),
        },
        Request::TopK { node, k } => match engine.top_k(*node, *k) {
            Ok(ranked) => top_k_response(*node, &ranked, version),
            Err(e) => error_response_versioned(&e, Some(version)),
        },
        Request::Recommend { node, k } => match engine.recommend(*node, *k) {
            Ok(ranked) => recommend_response(*node, &ranked, version),
            Err(e) => error_response_versioned(&e, Some(version)),
        },
        Request::AddEdge { u, v } => mutate(engine, "add_edge", Mutation::AddEdge { u: *u, v: *v }),
        Request::RemoveEdge { u, v } => {
            mutate(engine, "remove_edge", Mutation::RemoveEdge { u: *u, v: *v })
        }
        Request::AddNode { features } => {
            mutate(engine, "add_node", Mutation::AddNode { features: features.clone() })
        }
        Request::DebugPanic => {
            if debug_ops {
                panic!("debug_panic requested by client");
            }
            error_response(&ServeError::BadRequest(
                "debug ops are disabled on this server".into(),
            ))
        }
        Request::DebugSleep { ms } => {
            if debug_ops {
                std::thread::sleep(Duration::from_millis(*ms));
                debug_sleep_response(version)
            } else {
                error_response(&ServeError::BadRequest(
                    "debug ops are disabled on this server".into(),
                ))
            }
        }
        // Health/Stats/SwapModel/Shutdown are answered inline by the
        // reader thread — the fast path never reaches the batcher.
        other => error_response(&ServeError::Internal(format!(
            "control request {other:?} reached the batcher"
        ))),
    }
}
