//! The batched TCP model server.
//!
//! Architecture: one accept thread, one reader thread per connection, and a
//! single **micro-batcher** thread that owns the [`Engine`]. Readers parse
//! newline-delimited JSON requests; model queries (`predict`/`top_k`) are
//! enqueued and the batcher drains the queue in one gulp (up to
//! `max_batch`), so concurrent clients are coalesced into batches instead
//! of interleaving lock traffic — batch sizes are visible in `stats` and in
//! the `serve.batch_nodes` observability counter. Control queries
//! (`health`/`stats`/`shutdown`) are answered inline by the reader so a
//! liveness probe can never be starved by model work.
//!
//! Each queued request is handled inside `catch_unwind`: a panicking worker
//! produces a typed `internal` error response for that one request and the
//! server keeps answering everything else — exercised by the fault-injection
//! tests via the `debug_panic` op (off by default, enabled in
//! [`ServerConfig::debug_ops`]).

use std::collections::VecDeque;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

use crate::engine::Engine;
use crate::error::{ServeError, ServeResult};
use crate::frozen::FrozenMeta;
use crate::protocol::{
    error_response, health_response, mutation_response, predict_response, shutdown_response,
    stats_response, top_k_response, Request, StatsSnapshot,
};
use crate::streaming::Mutation;

/// Server tunables.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; use port 0 to let the OS pick (tests do).
    pub addr: String,
    /// Most queued requests the batcher drains per gulp.
    pub max_batch: usize,
    /// Enable test-only ops (`debug_panic`). Never enable in production.
    pub debug_ops: bool,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig { addr: "127.0.0.1:7878".into(), max_batch: 64, debug_ops: false }
    }
}

/// One queued model request and the channel its response goes back on.
struct Job {
    request: Request,
    enqueued: Instant,
    reply: mpsc::Sender<String>,
}

/// Latency reservoir: a fixed-size ring so a long-lived server's stats stay
/// O(1) in memory while still reflecting recent traffic.
const LATENCY_RING: usize = 65_536;

#[derive(Default)]
struct StatsInner {
    requests: u64,
    batches: u64,
    max_batch: u64,
    batch_req_sum: u64,
    latencies_us: Vec<f64>,
    next_slot: usize,
}

impl StatsInner {
    fn record_latency(&mut self, us: f64) {
        if self.latencies_us.len() < LATENCY_RING {
            self.latencies_us.push(us);
        } else {
            self.latencies_us[self.next_slot] = us;
            self.next_slot = (self.next_slot + 1) % LATENCY_RING;
        }
    }

    fn snapshot(&self) -> StatsSnapshot {
        let mut sorted = self.latencies_us.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        let pct = |q: f64| -> f64 {
            if sorted.is_empty() {
                return 0.0;
            }
            let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
            sorted[rank - 1]
        };
        StatsSnapshot {
            requests: self.requests,
            batches: self.batches,
            max_batch: self.max_batch,
            mean_batch: if self.batches == 0 {
                0.0
            } else {
                self.batch_req_sum as f64 / self.batches as f64
            },
            p50_us: pct(0.50),
            p99_us: pct(0.99),
        }
    }
}

struct Shared {
    meta: FrozenMeta,
    /// Bound address; a client-initiated shutdown self-connects to it to
    /// wake the blocking accept loop.
    addr: SocketAddr,
    queue: Mutex<VecDeque<Job>>,
    available: Condvar,
    shutdown: AtomicBool,
    stats: Mutex<StatsInner>,
    debug_ops: bool,
}

impl Shared {
    fn lock_queue(&self) -> std::sync::MutexGuard<'_, VecDeque<Job>> {
        self.queue.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn lock_stats(&self) -> std::sync::MutexGuard<'_, StatsInner> {
        self.stats.lock().unwrap_or_else(|e| e.into_inner())
    }
}

/// A running server. Dropping it (or calling [`Server::shutdown`]) stops
/// the accept loop, drains the queue, and joins the worker threads.
pub struct Server {
    addr: SocketAddr,
    shared: Arc<Shared>,
    accept_thread: Option<JoinHandle<()>>,
    batcher_thread: Option<JoinHandle<()>>,
}

impl Server {
    /// Bind, spawn the accept + batcher threads, and start answering.
    /// The engine moves into the batcher thread — it is the only thread
    /// that touches model state.
    pub fn start(engine: Engine, config: ServerConfig) -> ServeResult<Server> {
        let listener = TcpListener::bind(&config.addr)
            .map_err(|e| ServeError::Io(format!("bind {}: {e}", config.addr)))?;
        let addr = listener
            .local_addr()
            .map_err(|e| ServeError::Io(format!("local_addr: {e}")))?;
        let shared = Arc::new(Shared {
            meta: engine.meta().clone(),
            addr,
            queue: Mutex::new(VecDeque::new()),
            available: Condvar::new(),
            shutdown: AtomicBool::new(false),
            stats: Mutex::new(StatsInner::default()),
            debug_ops: config.debug_ops,
        });

        let batcher = {
            let shared = Arc::clone(&shared);
            let max_batch = config.max_batch.max(1);
            std::thread::Builder::new()
                .name("serve-batcher".into())
                .spawn(move || batcher_loop(engine, shared, max_batch))
                .map_err(|e| ServeError::Io(format!("spawn batcher: {e}")))?
        };

        let acceptor = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("serve-accept".into())
                .spawn(move || accept_loop(listener, shared))
                .map_err(|e| ServeError::Io(format!("spawn acceptor: {e}")))?
        };

        Ok(Server {
            addr,
            shared,
            accept_thread: Some(acceptor),
            batcher_thread: Some(batcher),
        })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Current serving counters.
    pub fn stats(&self) -> StatsSnapshot {
        self.shared.lock_stats().snapshot()
    }

    /// Stop accepting, drain queued requests, and join the worker threads.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    /// Block until a client sends `shutdown` (foreground serving — the CLI
    /// `serve` subcommand), then drain and join.
    pub fn wait(mut self) {
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.shared.available.notify_all();
        // Wake the blocking accept() with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        if let Some(t) = self.batcher_thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        if self.accept_thread.is_some() || self.batcher_thread.is_some() {
            self.stop_and_join();
        }
    }
}

fn accept_loop(listener: TcpListener, shared: Arc<Shared>) {
    for stream in listener.incoming() {
        if shared.shutdown.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        // Line-oriented request/response traffic stalls badly under Nagle
        // + delayed ACK (~40-200 ms per round trip); disable buffering.
        let _ = stream.set_nodelay(true);
        let shared = Arc::clone(&shared);
        // Reader threads are detached: they end when their client hangs up,
        // and a shut-down server answers their enqueues with a typed error.
        let _ = std::thread::Builder::new()
            .name("serve-conn".into())
            .spawn(move || connection_loop(stream, shared));
    }
}

fn connection_loop(stream: TcpStream, shared: Arc<Shared>) {
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let reader = BufReader::new(stream);
    for line in reader.lines() {
        let Ok(line) = line else { break };
        if line.trim().is_empty() {
            continue;
        }
        let response = match Request::parse(&line) {
            Err(e) => error_response(&e),
            Ok(Request::Health) => health_response(&shared.meta),
            Ok(Request::Stats) => stats_response(&shared.lock_stats().snapshot()),
            Ok(Request::Shutdown) => {
                let _ = writeln!(writer, "{}", shutdown_response());
                shared.shutdown.store(true, Ordering::SeqCst);
                shared.available.notify_all();
                // Wake the blocking accept() so the server can exit.
                let _ = TcpStream::connect(shared.addr);
                return;
            }
            Ok(request) => match enqueue_and_wait(&shared, request) {
                Ok(resp) => resp,
                Err(e) => error_response(&e),
            },
        };
        if writeln!(writer, "{response}").is_err() {
            break;
        }
    }
}

/// Queue a model request for the batcher and block until its response.
fn enqueue_and_wait(shared: &Shared, request: Request) -> ServeResult<String> {
    if shared.shutdown.load(Ordering::SeqCst) {
        return Err(ServeError::Io("server is shutting down".into()));
    }
    let (tx, rx) = mpsc::channel();
    {
        let mut queue = shared.lock_queue();
        queue.push_back(Job { request, enqueued: Instant::now(), reply: tx });
    }
    shared.available.notify_one();
    rx.recv().map_err(|_| ServeError::Io("server is shutting down".into()))
}

fn batcher_loop(mut engine: Engine, shared: Arc<Shared>, max_batch: usize) {
    loop {
        let batch: Vec<Job> = {
            let mut queue = shared.lock_queue();
            loop {
                if !queue.is_empty() {
                    let n = queue.len().min(max_batch);
                    break queue.drain(..n).collect();
                }
                if shared.shutdown.load(Ordering::SeqCst) {
                    return; // drained and told to stop
                }
                queue = shared
                    .available
                    .wait(queue)
                    .unwrap_or_else(|e| e.into_inner());
            }
        };
        lasagne_obs::span!("serve.batch");
        lasagne_obs::counter_add("serve.batches", 1);
        lasagne_obs::counter_add("serve.batch_nodes", batch.len() as u64);
        {
            let mut stats = shared.lock_stats();
            stats.batches += 1;
            stats.batch_req_sum += batch.len() as u64;
            stats.max_batch = stats.max_batch.max(batch.len() as u64);
        }
        for job in batch {
            // Panic isolation: a crashing handler answers *this* request
            // with a typed internal error and the loop moves on.
            let response = catch_unwind(AssertUnwindSafe(|| {
                handle_model_request(&mut engine, &job.request, shared.debug_ops)
            }))
            .unwrap_or_else(|panic| {
                let what = panic
                    .downcast_ref::<&str>()
                    .map(|s| s.to_string())
                    .or_else(|| panic.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "worker panicked".into());
                error_response(&ServeError::Internal(what))
            });
            let us = job.enqueued.elapsed().as_secs_f64() * 1e6;
            lasagne_obs::counter_add("serve.requests", 1);
            lasagne_obs::counter_add_ns("serve.latency_ns", (us * 1e3) as u64);
            {
                let mut stats = shared.lock_stats();
                stats.requests += 1;
                stats.record_latency(us);
            }
            let _ = job.reply.send(response);
        }
    }
}

fn handle_model_request(engine: &mut Engine, request: &Request, debug_ops: bool) -> String {
    lasagne_obs::span!("serve.request");
    let mutate = |engine: &mut Engine, op: &str, m: Mutation| -> String {
        match engine.apply_mutation(&m) {
            Ok(report) => mutation_response(op, &report),
            Err(e) => error_response(&e),
        }
    };
    match request {
        Request::Predict { node } => match engine.predict(*node) {
            Ok(p) => predict_response(&p),
            Err(e) => error_response(&e),
        },
        Request::TopK { node, k } => match engine.top_k(*node, *k) {
            Ok(ranked) => top_k_response(*node, &ranked),
            Err(e) => error_response(&e),
        },
        Request::AddEdge { u, v } => mutate(engine, "add_edge", Mutation::AddEdge { u: *u, v: *v }),
        Request::RemoveEdge { u, v } => {
            mutate(engine, "remove_edge", Mutation::RemoveEdge { u: *u, v: *v })
        }
        Request::AddNode { features } => {
            mutate(engine, "add_node", Mutation::AddNode { features: features.clone() })
        }
        Request::DebugPanic => {
            if debug_ops {
                panic!("debug_panic requested by client");
            }
            error_response(&ServeError::BadRequest(
                "debug ops are disabled on this server".into(),
            ))
        }
        // Health/Stats/Shutdown are answered inline by the reader thread.
        other => error_response(&ServeError::Internal(format!(
            "control request {other:?} reached the batcher"
        ))),
    }
}
