//! Quantized weight storage for the frozen format (DESIGN.md §13).
//!
//! Two opt-in compressed encodings for matmul-only weights:
//!
//! * **i8** — symmetric per-row linear quantization. Each row `r` stores a
//!   scale `s_r = max|w[r,:]| / 127` and one signed byte per element,
//!   `q = round(w / s_r)` clamped to `[-127, 127]`; dequantization is
//!   `q · s_r`. No zero-point: weights are zero-centered in practice and a
//!   symmetric grid keeps `0.0` exact (an all-zero row stores `s_r = 0`).
//!   Per-element error is bounded by `s_r / 2` — half a quantization step.
//! * **f16** — IEEE 754 binary16 with round-to-nearest-even, converted in
//!   software (the crate policy is zero dependencies). Relative error for
//!   normal values is bounded by `2⁻¹¹`; subnormals, infinities and NaN
//!   payloads follow the standard.
//!
//! Both encodings are byte-deterministic pure functions of the f32 input,
//! so quantized exports stay `cmp`-equal across runs like every other
//! artifact. On the wire the payload rides as lowercase hex inside the
//! workspace JSON codec — bytes, not JSON numbers, so the envelope
//! checksum covers the exact quantized values.
//!
//! Exactness escape hatch: quantization never touches the default path.
//! f32 weights remain the format default; a quantized file is produced
//! only by `--export-quantized` and served only under `serve --quantized`.

use lasagne_tensor::Tensor;
use lasagne_testkit::Json;

use crate::error::{ServeError, ServeResult};

/// Which compressed encoding a [`QuantMatrix`] uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QuantMode {
    /// Symmetric per-row-scaled signed bytes (4× smaller than f32).
    I8,
    /// IEEE binary16 (2× smaller than f32).
    F16,
}

impl QuantMode {
    /// Wire tag (`"i8"` / `"f16"`).
    pub fn as_str(self) -> &'static str {
        match self {
            QuantMode::I8 => "i8",
            QuantMode::F16 => "f16",
        }
    }

    /// Parse a wire tag.
    pub fn parse(s: &str) -> Option<QuantMode> {
        match s {
            "i8" => Some(QuantMode::I8),
            "f16" => Some(QuantMode::F16),
            _ => None,
        }
    }
}

/// A quantized weight matrix: shape, per-row scales (i8 mode), and the
/// packed payload bytes.
#[derive(Debug, Clone, PartialEq)]
pub struct QuantMatrix {
    mode: QuantMode,
    rows: usize,
    cols: usize,
    /// Per-row symmetric scales; empty in f16 mode.
    scales: Vec<f32>,
    /// i8: one byte per element (two's complement); f16: two LE bytes.
    data: Vec<u8>,
}

/// Convert an `f32` to IEEE binary16 bits with round-to-nearest-even.
/// Software implementation (zero-dependency policy); the exhaustive
/// half→f32→half round-trip test pins it against the standard.
pub(crate) fn f32_to_f16_bits(x: f32) -> u16 {
    let b = x.to_bits();
    let sign = ((b >> 16) & 0x8000) as u16;
    let abs = b & 0x7fff_ffff;
    if abs >= 0x7f80_0000 {
        // Inf stays Inf; NaN keeps a quiet bit so it stays NaN.
        return sign | if abs > 0x7f80_0000 { 0x7e00 } else { 0x7c00 };
    }
    if abs >= 0x477f_f000 {
        // ≥ 65520 rounds past the largest finite half (65504) → Inf.
        return sign | 0x7c00;
    }
    if abs >= 0x3880_0000 {
        // Normal range: rebias 127→15, round mantissa 23→10 bits. Adding
        // `0x0fff + lsb` is RNE; a carry that overflows the mantissa
        // correctly bumps the exponent.
        let v = abs + 0x0fff + ((abs >> 13) & 1);
        return sign | ((v - 0x3800_0000) >> 13) as u16;
    }
    // Subnormal half (or underflow to zero): value = m · 2^(e-150) with the
    // hidden bit restored; the target ulp is 2⁻²⁴.
    let e = (abs >> 23) as i32;
    if e == 0 {
        // f32 subnormal: < 2⁻¹²⁶, far below half the smallest half ulp.
        return sign;
    }
    let m = (abs & 0x007f_ffff) | 0x0080_0000;
    let shift = 126 - e; // ≥ 14 here
    if shift >= 25 {
        return sign;
    }
    let shift = shift as u32;
    let half = 1u32 << (shift - 1);
    let rem = m & ((1u32 << shift) - 1);
    let mut q = m >> shift;
    if rem > half || (rem == half && (q & 1) == 1) {
        q += 1;
    }
    sign | q as u16
}

/// Convert IEEE binary16 bits to the exactly-representable `f32`.
pub(crate) fn f16_bits_to_f32(h: u16) -> f32 {
    let sign = ((h as u32) & 0x8000) << 16;
    let exp = ((h >> 10) & 0x1f) as u32;
    let man = (h & 0x3ff) as u32;
    let bits = match (exp, man) {
        (0, 0) => sign,
        (0, m) => {
            // Subnormal: m · 2⁻²⁴, exact in f32.
            sign | (m as f32 * (1.0 / 16_777_216.0)).to_bits()
        }
        (31, 0) => sign | 0x7f80_0000,
        (31, m) => sign | 0x7fc0_0000 | (m << 13),
        _ => sign | ((exp + 112) << 23) | (man << 13),
    };
    f32::from_bits(bits)
}

fn hex_encode(bytes: &[u8]) -> String {
    const HEX: &[u8; 16] = b"0123456789abcdef";
    let mut out = String::with_capacity(bytes.len() * 2);
    for &b in bytes {
        out.push(HEX[(b >> 4) as usize] as char);
        out.push(HEX[(b & 0xf) as usize] as char);
    }
    out
}

fn hex_decode(s: &str) -> Option<Vec<u8>> {
    let b = s.as_bytes();
    if b.len() % 2 != 0 {
        return None;
    }
    let nibble = |c: u8| -> Option<u8> {
        match c {
            b'0'..=b'9' => Some(c - b'0'),
            b'a'..=b'f' => Some(c - b'a' + 10),
            _ => None,
        }
    };
    b.chunks(2).map(|p| Some((nibble(p[0])? << 4) | nibble(p[1])?)).collect()
}

impl QuantMatrix {
    /// Quantize a tensor. Deterministic: the same input always produces the
    /// same scales and bytes.
    pub fn quantize(t: &Tensor, mode: QuantMode) -> QuantMatrix {
        let (rows, cols) = t.shape();
        let w = t.as_slice();
        match mode {
            QuantMode::I8 => {
                let mut scales = Vec::with_capacity(rows);
                let mut data = Vec::with_capacity(rows * cols);
                for r in 0..rows {
                    let row = &w[r * cols..(r + 1) * cols];
                    let amax = row.iter().fold(0.0f32, |m, &v| m.max(v.abs()));
                    let scale = amax / 127.0;
                    scales.push(scale);
                    if scale == 0.0 {
                        data.extend(std::iter::repeat(0u8).take(cols));
                        continue;
                    }
                    for &v in row {
                        let q = (v / scale).round().clamp(-127.0, 127.0) as i8;
                        data.push(q as u8);
                    }
                }
                QuantMatrix { mode, rows, cols, scales, data }
            }
            QuantMode::F16 => {
                let mut data = Vec::with_capacity(rows * cols * 2);
                for &v in w {
                    data.extend_from_slice(&f32_to_f16_bits(v).to_le_bytes());
                }
                QuantMatrix { mode, rows, cols, scales: Vec::new(), data }
            }
        }
    }

    /// Encoding of this matrix.
    pub fn mode(&self) -> QuantMode {
        self.mode
    }

    /// `(rows, cols)` of the dequantized matrix.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Payload bytes (excluding scales) — the footprint the format saves.
    pub fn payload_len(&self) -> usize {
        self.data.len()
    }

    /// Dequantize rows `r0..r1` into `out` (`(r1-r0) × cols`, row-major).
    /// This is the panel micro-kernel the engine's fused matmul packs with:
    /// plain contiguous multiply (i8) or bit conversion (f16), no
    /// data-dependent branches, so it autovectorizes and is deterministic.
    pub fn dequant_rows_into(&self, r0: usize, r1: usize, out: &mut [f32]) {
        assert!(r0 <= r1 && r1 <= self.rows, "dequant_rows_into: row range");
        assert_eq!(out.len(), (r1 - r0) * self.cols, "dequant_rows_into: out size");
        let cols = self.cols;
        match self.mode {
            QuantMode::I8 => {
                for (r, o_row) in (r0..r1).zip(out.chunks_mut(cols)) {
                    let s = self.scales[r];
                    let q_row = &self.data[r * cols..(r + 1) * cols];
                    for (o, &q) in o_row.iter_mut().zip(q_row) {
                        *o = (q as i8) as f32 * s;
                    }
                }
            }
            QuantMode::F16 => {
                let src = &self.data[r0 * cols * 2..r1 * cols * 2];
                for (o, pair) in out.iter_mut().zip(src.chunks_exact(2)) {
                    *o = f16_bits_to_f32(u16::from_le_bytes([pair[0], pair[1]]));
                }
            }
        }
    }

    /// Dequantize the whole matrix.
    pub fn dequantize(&self) -> Tensor {
        let mut out = Tensor::zeros(self.rows, self.cols);
        if self.rows * self.cols > 0 {
            self.dequant_rows_into(0, self.rows, out.as_mut_slice());
        }
        out
    }

    pub(crate) fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("quant".into(), Json::Str(self.mode.as_str().into())),
            ("rows".into(), Json::Num(self.rows as f64)),
            ("cols".into(), Json::Num(self.cols as f64)),
            ("scales".into(), Json::from_f32s(self.scales.iter().copied())),
            ("data".into(), Json::Str(hex_encode(&self.data))),
        ])
    }

    pub(crate) fn from_json(j: &Json) -> ServeResult<QuantMatrix> {
        let parse = |msg: &str| ServeError::Parse(format!("quant weight: {msg}"));
        let mode = j
            .get("quant")
            .and_then(Json::as_str)
            .and_then(QuantMode::parse)
            .ok_or_else(|| parse("unknown or missing 'quant' mode"))?;
        let rows = j.get("rows").and_then(Json::as_usize).ok_or_else(|| parse("bad 'rows'"))?;
        let cols = j.get("cols").and_then(Json::as_usize).ok_or_else(|| parse("bad 'cols'"))?;
        let scales = j.get("scales").and_then(Json::to_f32s).ok_or_else(|| parse("bad 'scales'"))?;
        let data = j
            .get("data")
            .and_then(Json::as_str)
            .and_then(hex_decode)
            .ok_or_else(|| parse("bad 'data' hex payload"))?;
        let want_bytes = match mode {
            QuantMode::I8 => rows * cols,
            QuantMode::F16 => rows * cols * 2,
        };
        let want_scales = match mode {
            QuantMode::I8 => rows,
            QuantMode::F16 => 0,
        };
        if data.len() != want_bytes || scales.len() != want_scales {
            return Err(ServeError::Mismatch(format!(
                "quant weight: {} payload bytes / {} scales for a {rows}x{cols} {} matrix",
                data.len(),
                scales.len(),
                mode.as_str()
            )));
        }
        Ok(QuantMatrix { mode, rows, cols, scales, data })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f16_round_trip_is_identity_on_all_bit_patterns() {
        // Every half value is exactly representable in f32, so
        // half → f32 → half must be the identity for all 65536 patterns
        // (NaNs may canonicalize payloads but must stay NaN).
        for h in 0..=u16::MAX {
            let f = f16_bits_to_f32(h);
            let back = f32_to_f16_bits(f);
            let is_nan = (h & 0x7c00) == 0x7c00 && (h & 0x3ff) != 0;
            if is_nan {
                assert!(f.is_nan(), "{h:04x} should decode NaN");
                assert_eq!(back & 0x7c00, 0x7c00);
                assert_ne!(back & 0x3ff, 0, "{h:04x} must stay NaN");
            } else {
                assert_eq!(back, h, "round trip of {h:04x} (decoded {f})");
            }
        }
    }

    #[test]
    fn f16_conversion_pins_known_values() {
        assert_eq!(f32_to_f16_bits(0.0), 0x0000);
        assert_eq!(f32_to_f16_bits(-0.0), 0x8000);
        assert_eq!(f32_to_f16_bits(1.0), 0x3c00);
        assert_eq!(f32_to_f16_bits(-2.0), 0xc000);
        assert_eq!(f32_to_f16_bits(65504.0), 0x7bff); // largest finite half
        assert_eq!(f32_to_f16_bits(65520.0), 0x7c00); // first value rounding to Inf
        assert_eq!(f32_to_f16_bits(65519.9), 0x7bff);
        assert_eq!(f32_to_f16_bits(f32::INFINITY), 0x7c00);
        assert_eq!(f32_to_f16_bits(6.1035156e-5), 0x0400); // smallest normal
        assert_eq!(f32_to_f16_bits(5.9604645e-8), 0x0001); // smallest subnormal
        assert_eq!(f32_to_f16_bits(2.9802322e-8), 0x0000); // 2⁻²⁵ ties to even → 0
        assert_eq!(f32_to_f16_bits(3.0e-8), 0x0001); // just above the tie
        assert_eq!(f16_bits_to_f32(0x3555), 0.33325195f32); // 1/3 in half
    }

    #[test]
    fn i8_round_trip_error_is_bounded_by_half_step() {
        let t = Tensor::from_fn(7, 33, |i, j| ((i * 33 + j) as f32 * 0.7).sin() * (i as f32 + 0.5));
        let q = QuantMatrix::quantize(&t, QuantMode::I8);
        let d = q.dequantize();
        for i in 0..7 {
            let amax = t.row(i).iter().fold(0.0f32, |m, &v| m.max(v.abs()));
            let step = amax / 127.0;
            for (a, b) in t.row(i).iter().zip(d.row(i)) {
                assert!((a - b).abs() <= step * 0.5 + 1e-7, "row {i}: {a} vs {b} (step {step})");
            }
        }
    }

    #[test]
    fn i8_all_zero_row_stays_exact() {
        let t = Tensor::from_fn(3, 5, |i, j| if i == 1 { 0.0 } else { (j as f32) - 2.0 });
        let q = QuantMatrix::quantize(&t, QuantMode::I8);
        assert_eq!(q.dequantize().row(1), &[0.0; 5]);
    }

    #[test]
    fn json_round_trip_is_lossless() {
        let t = Tensor::from_fn(5, 9, |i, j| ((i * 9 + j) as f32 * 1.3).cos());
        for mode in [QuantMode::I8, QuantMode::F16] {
            let q = QuantMatrix::quantize(&t, mode);
            let back = QuantMatrix::from_json(&q.to_json()).expect("parse");
            assert_eq!(q, back);
        }
    }

    #[test]
    fn hex_codec_rejects_garbage() {
        assert_eq!(hex_decode("0g"), None);
        assert_eq!(hex_decode("abc"), None);
        assert_eq!(hex_decode("ab0f"), Some(vec![0xab, 0x0f]));
    }
}
