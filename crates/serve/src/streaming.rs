//! Streaming graph mutations with bitwise-exact incremental recomputation
//! (DESIGN.md §11).
//!
//! The engine's propagation cache makes queries O(classes) — but only
//! because the graph is frozen. This module un-freezes it without giving up
//! the exactness story. A [`Mutation`] flows through three stages:
//!
//! 1. **Delta adjacency** — the raw symmetric adjacency lives in a
//!    [`DeltaCsr`]; edge toggles are buffer updates, compaction folds them
//!    back every `compact_every` mutations.
//! 2. **Operator rebuild** — every derived sparse operator (`Â`, the
//!    random-walk operator, `A+I`, `A`) is rebuilt from the merged
//!    adjacency with the *same calls* `GraphContext::new` makes. That is
//!    O(nnz) and bitwise-equal to a cold reload by construction; what it
//!    buys is knowing the exact set of operator rows that changed, which is
//!    tiny for a single edge.
//! 3. **Dirty-row dataflow** — changed operator rows seed a per-op dirty
//!    set pushed through the program. Each SpMM expands dirtiness by one
//!    hop, so a depth-k model dirties exactly the k-hop neighborhood.
//!    Row-local ops are re-evaluated only on their dirty rows with the same
//!    kernels full evaluation uses (gather → kernel → scatter is bitwise
//!    per-row for every op the exporter emits); non-row-local ops
//!    (`SumAll`, `SumRows`, `GatAggregate`), oversized dirty sets (> half
//!    an op's rows), compaction, and `add_node` fall back to full
//!    re-evaluation — which is the cold path itself, so exactness holds on
//!    every branch.

use std::collections::BTreeSet;
use std::time::Instant;

use lasagne_autograd::{Program, ProgramOp};
use lasagne_sparse::{Csr, DeltaCsr, DeltaError};
use lasagne_tensor::Tensor;

use crate::engine::{evaluate_ops, Engine};
use crate::error::{ServeError, ServeResult};
use crate::frozen::{FrozenGraph, SparseKind};

/// Mutations applied after every this many mutations by default (tunable
/// via [`Engine::set_compact_every`] / the CLI `--compact-every` flag).
pub const DEFAULT_COMPACT_EVERY: usize = 256;

/// A graph mutation. Edges are undirected: both CSR directions are applied
/// atomically, keeping the adjacency symmetric (the invariant every
/// normalization and the dirty-expansion rule rely on).
#[derive(Debug, Clone, PartialEq)]
pub enum Mutation {
    /// Insert undirected edge `u — v` with weight 1.
    AddEdge {
        /// One endpoint.
        u: usize,
        /// The other endpoint.
        v: usize,
    },
    /// Delete undirected edge `u — v`.
    RemoveEdge {
        /// One endpoint.
        u: usize,
        /// The other endpoint.
        v: usize,
    },
    /// Append a node with the given feature row (initially isolated; wire
    /// it up with `AddEdge`).
    AddNode {
        /// Feature row, `input_dim` long.
        features: Vec<f32>,
    },
}

/// What a mutation did to the caches.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MutationReport {
    /// Output rows re-derived (equals `num_nodes` when `full`).
    pub dirty_rows: usize,
    /// Whether the engine fell back to full re-evaluation.
    pub full: bool,
    /// Node count after the mutation.
    pub num_nodes: usize,
    /// Id of the node created by `AddNode`.
    pub node: Option<usize>,
}

/// Internal mutation outcome: `rows: None` means a full recompute ran.
struct Outcome {
    rows: Option<Vec<usize>>,
    node: Option<usize>,
}

/// Everything the engine needs to replay mutations: the program (ops owned,
/// sparse table as plain `Csr` so the engine stays `Send`), the per-op value
/// cache, and the delta adjacency. Feature growth from `add_node` mutates
/// the `Constant` ops listed in `features_ops` directly, so a subsequent
/// full evaluation is *the* cold evaluation of the grown graph.
pub(crate) struct StreamingState {
    ops: Vec<ProgramOp>,
    output: usize,
    sparse: Vec<Csr>,
    kinds: Vec<SparseKind>,
    features_ops: Vec<usize>,
    weights: Vec<(String, Tensor)>,
    /// One cached tensor per op — the full-graph evaluation.
    values: Vec<Tensor>,
    raw: DeltaCsr,
    compact_every: usize,
    since_compact: usize,
}

fn map_delta(e: DeltaError) -> ServeError {
    match e {
        DeltaError::DuplicateEdge { row, col } => {
            ServeError::BadRequest(format!("edge {row}-{col} already exists"))
        }
        DeltaError::MissingEdge { row, col } => {
            ServeError::BadRequest(format!("edge {row}-{col} does not exist"))
        }
        DeltaError::OutOfRange { row, col, rows, .. } => {
            ServeError::UnknownNode { node: row.max(col) as usize, num_nodes: rows }
        }
    }
}

impl StreamingState {
    pub(crate) fn new(
        program: Program,
        graph: FrozenGraph,
        weights: Vec<(String, Tensor)>,
        values: Vec<Tensor>,
    ) -> ServeResult<StreamingState> {
        if graph.kinds.len() != program.sparse.len() {
            return Err(ServeError::Mismatch(format!(
                "graph binding has {} kinds for {} sparse operators",
                graph.kinds.len(),
                program.sparse.len()
            )));
        }
        if graph.adjacency.rows() != graph.adjacency.cols() {
            return Err(ServeError::Mismatch("graph adjacency must be square".into()));
        }
        for &i in &graph.features_ops {
            match program.ops.get(i) {
                Some(ProgramOp::Constant { value }) if value.rows() == graph.adjacency.rows() => {}
                _ => {
                    return Err(ServeError::Mismatch(format!(
                        "graph features op {i} is not an N-row program constant"
                    )))
                }
            }
        }
        let sparse = program.sparse.iter().map(|m| (**m).clone()).collect();
        Ok(StreamingState {
            ops: program.ops,
            output: program.output,
            sparse,
            kinds: graph.kinds,
            features_ops: graph.features_ops,
            weights,
            values,
            raw: DeltaCsr::new(graph.adjacency),
            compact_every: DEFAULT_COMPACT_EVERY,
            since_compact: 0,
        })
    }

    /// Refuse mutations when any sparse operator has no known derivation —
    /// there would be nothing exact to rebuild it from.
    fn check_mutable(&self) -> ServeResult<()> {
        if self.kinds.contains(&SparseKind::Opaque) {
            return Err(ServeError::Mismatch(
                "model uses a sparse operator with no recorded derivation from the adjacency; \
                 graph mutations are unsupported"
                    .into(),
            ));
        }
        Ok(())
    }

    /// Rebuild every derived operator from the merged adjacency — the exact
    /// `GraphContext::new` call sequence, so each operator is bitwise what a
    /// cold reload would compute. Returns `A + I` for seed derivation.
    fn rebuild_sparse(&mut self) -> Csr {
        let adj = self.raw.to_csr();
        let with_loops = adj.with_self_loops();
        for (slot, kind) in self.sparse.iter_mut().zip(&self.kinds) {
            *slot = match kind {
                SparseKind::Sym => with_loops.sym_normalize(),
                SparseKind::Rw => with_loops.rw_normalize(),
                SparseKind::Loops => with_loops.clone(),
                SparseKind::Adj => adj.clone(),
                SparseKind::Opaque => unreachable!("opaque operators rejected by check_mutable"),
            };
        }
        with_loops
    }

    /// Re-evaluate every op from scratch against the current operators —
    /// the cold path, and therefore exact by definition.
    fn full_recompute(&mut self) -> ServeResult<()> {
        let refs: Vec<&Csr> = self.sparse.iter().collect();
        self.values = evaluate_ops(&self.ops, &refs, &self.weights)?;
        Ok(())
    }

    fn edge_mutation(&mut self, u: usize, v: usize, add: bool) -> ServeResult<Outcome> {
        self.check_mutable()?;
        let n = self.raw.rows();
        if u >= n || v >= n {
            return Err(ServeError::UnknownNode { node: u.max(v), num_nodes: n });
        }
        if u == v {
            return Err(ServeError::BadRequest(
                "self-loops are managed by the propagation operators; u and v must differ".into(),
            ));
        }
        let (cu, cv) = (u as u32, v as u32);
        if add {
            self.raw.insert(cu, cv, 1.0).map_err(map_delta)?;
            self.raw.insert(cv, cu, 1.0).expect("mirror insert on a symmetric adjacency");
        } else {
            self.raw.remove(cu, cv).map_err(map_delta)?;
            self.raw.remove(cv, cu).expect("mirror remove on a symmetric adjacency");
        }
        self.since_compact += 1;
        if self.since_compact >= self.compact_every {
            self.raw.compact();
            self.since_compact = 0;
            self.rebuild_sparse();
            self.full_recompute()?;
            return Ok(Outcome { rows: None, node: None });
        }
        self.incremental(u, v)
    }

    fn add_node(&mut self, features: &[f32]) -> ServeResult<Outcome> {
        self.check_mutable()?;
        let n = self.raw.rows();
        let &first = self.features_ops.first().ok_or_else(|| {
            ServeError::BadRequest(
                "model carries no feature-table binding; 'add_node' is unsupported".into(),
            )
        })?;
        let dim = match &self.ops[first] {
            ProgramOp::Constant { value } => value.cols(),
            _ => return Err(ServeError::Internal("features op is not a constant".into())),
        };
        if features.len() != dim {
            return Err(ServeError::BadRequest(format!(
                "'add_node' needs {dim} features, got {}",
                features.len()
            )));
        }
        // Node-pinned state makes the model transductive-only: a weight or
        // non-feature constant with one row per node (Lasagne's Weighted
        // c-parameters, Stochastic's p-parameter and its neg-max constant)
        // has no principled value for an unseen node.
        for (name, t) in &self.weights {
            if t.rows() == n {
                return Err(ServeError::BadRequest(format!(
                    "parameter '{name}' is pinned to the frozen node set; \
                     'add_node' is unsupported for this model"
                )));
            }
        }
        for (i, op) in self.ops.iter().enumerate() {
            if let ProgramOp::Constant { value } = op {
                if value.rows() == n && !self.features_ops.contains(&i) {
                    return Err(ServeError::BadRequest(format!(
                        "program constant {i} is pinned to the frozen node set; \
                         'add_node' is unsupported for this model"
                    )));
                }
            }
        }
        let id = self.raw.add_node();
        let features_ops = self.features_ops.clone();
        for fi in features_ops {
            if let ProgramOp::Constant { value } = &mut self.ops[fi] {
                let mut data = value.as_slice().to_vec();
                data.extend_from_slice(features);
                *value = Tensor::from_vec(value.rows() + 1, dim, data)
                    .map_err(|e| ServeError::Internal(format!("grow features: {e}")))?;
            }
        }
        self.since_compact += 1;
        if self.since_compact >= self.compact_every {
            self.raw.compact();
            self.since_compact = 0;
        }
        // Every op's row count changes, so there is no incremental path:
        // rebuild the operators and run the cold evaluation of the grown
        // graph (its feature constants are already the grown ones).
        self.rebuild_sparse();
        self.full_recompute()?;
        Ok(Outcome { rows: None, node: Some(id) })
    }

    /// The incremental path for a single edge toggle on `u — v`.
    fn incremental(&mut self, u: usize, v: usize) -> ServeResult<Outcome> {
        let with_loops = self.rebuild_sparse();
        // Changed-row seeds per operator. Â's row i changes iff i's own row
        // structure changed (i ∈ {u,v}) or a neighbor's degree did (i
        // adjacent to u or v) — the post-mutation with-loops rows of u and v
        // cover both for a single-edge change (on delete, v itself covers
        // u's lost neighbor and vice versa). Rw/Loops/Adj rows only change
        // for u and v: their other rows keep identical entries and degrees.
        let mut sym_seed = BTreeSet::new();
        for &node in &[u, v] {
            for &j in with_loops.row_indices(node) {
                sym_seed.insert(j as usize);
            }
            sym_seed.insert(node);
        }
        let mut edge_seed = BTreeSet::new();
        edge_seed.insert(u);
        edge_seed.insert(v);
        let changed: Vec<&BTreeSet<usize>> = self
            .kinds
            .iter()
            .map(|k| if matches!(k, SparseKind::Sym) { &sym_seed } else { &edge_seed })
            .collect();

        // Push dirtiness through the program. Each SpMM expands by one hop
        // (structure is symmetric, so `row_indices(j)` is exactly the set
        // of output rows reading input row j). Ops whose every output row
        // depends on a dirty input (MatMul's right operand, broadcast
        // sources, reductions, GAT's global attention) force the full path.
        let mut dirty: Vec<BTreeSet<usize>> = Vec::with_capacity(self.ops.len());
        let mut full = false;
        for op in &self.ops {
            let d: BTreeSet<usize> = match op {
                ProgramOp::Constant { .. } | ProgramOp::Param { .. } => BTreeSet::new(),
                ProgramOp::SpMM { m, x } => {
                    let mut d = changed[*m].clone();
                    let mat = &self.sparse[*m];
                    for &j in &dirty[*x] {
                        for &i in mat.row_indices(j) {
                            d.insert(i as usize);
                        }
                    }
                    d
                }
                ProgramOp::MatMul { a, b } => {
                    if dirty[*b].is_empty() {
                        dirty[*a].clone()
                    } else {
                        full = true;
                        BTreeSet::new()
                    }
                }
                ProgramOp::Add { a, b }
                | ProgramOp::Sub { a, b }
                | ProgramOp::Mul { a, b }
                | ProgramOp::Div { a, b } => dirty[*a].union(&dirty[*b]).copied().collect(),
                ProgramOp::Scale { x, .. }
                | ProgramOp::AddConst { x, .. }
                | ProgramOp::Pow { x, .. }
                | ProgramOp::Exp { x }
                | ProgramOp::Relu { x }
                | ProgramOp::LeakyRelu { x, .. }
                | ProgramOp::Sigmoid { x }
                | ProgramOp::Tanh { x }
                | ProgramOp::LogSoftmax { x }
                | ProgramOp::SliceCols { x, .. }
                | ProgramOp::SumCols { x } => dirty[*x].clone(),
                ProgramOp::AddRowBroadcast { x, b } => {
                    if dirty[*b].is_empty() {
                        dirty[*x].clone()
                    } else {
                        full = true;
                        BTreeSet::new()
                    }
                }
                ProgramOp::AddColBroadcast { x, c } | ProgramOp::MulColBroadcast { x, c } => {
                    dirty[*x].union(&dirty[*c]).copied().collect()
                }
                ProgramOp::MulScalarNode { x, s } => {
                    if dirty[*s].is_empty() {
                        dirty[*x].clone()
                    } else {
                        full = true;
                        BTreeSet::new()
                    }
                }
                ProgramOp::ConcatCols { parts } | ProgramOp::MaxStack { parts } => {
                    let mut d = BTreeSet::new();
                    for &p in parts {
                        d.extend(dirty[p].iter().copied());
                    }
                    d
                }
                ProgramOp::GatherRows { x, idx } => idx
                    .iter()
                    .enumerate()
                    .filter(|(_, src)| dirty[*x].contains(src))
                    .map(|(p, _)| p)
                    .collect(),
                ProgramOp::SumAll { x } | ProgramOp::SumRows { x } => {
                    if !dirty[*x].is_empty() {
                        full = true;
                    }
                    BTreeSet::new()
                }
                ProgramOp::GatAggregate { adj, z, ssrc, sdst, .. } => {
                    if !changed[*adj].is_empty()
                        || !dirty[*z].is_empty()
                        || !dirty[*ssrc].is_empty()
                        || !dirty[*sdst].is_empty()
                    {
                        full = true;
                    }
                    BTreeSet::new()
                }
            };
            if full {
                break;
            }
            // Patching the majority of an op's rows costs more than a clean
            // sweep; fall back before doing strictly more work than cold.
            if d.len() * 2 > self.values[dirty.len()].rows().max(1) {
                full = true;
                break;
            }
            dirty.push(d);
        }
        if full {
            self.full_recompute()?;
            return Ok(Outcome { rows: None, node: None });
        }

        // Gather → kernel → scatter each dirty op, in topological order so
        // inputs are already patched when their consumers re-derive.
        for i in 0..self.ops.len() {
            if dirty[i].is_empty() {
                continue;
            }
            let rows: Vec<usize> = dirty[i].iter().copied().collect();
            let patch = compute_rows(&self.ops[i], &self.sparse, &self.values, &rows)?;
            let target = &mut self.values[i];
            for (r, &row) in rows.iter().enumerate() {
                target.row_mut(row).copy_from_slice(patch.row(r));
            }
        }
        Ok(Outcome { rows: Some(dirty[self.output].iter().copied().collect()), node: None })
    }
}

/// Re-derive the selected `rows` of one op from its (already patched)
/// inputs. Every arm calls the same kernel full evaluation uses, restricted
/// to the gathered rows — bitwise per-row because those kernels are all
/// row- or element-local (`matmul_rows` and `Csr::gather_rows` exist
/// precisely to preserve that for the two matrix products).
fn compute_rows(
    op: &ProgramOp,
    sparse: &[Csr],
    values: &[Tensor],
    rows: &[usize],
) -> ServeResult<Tensor> {
    let v = |i: usize| -> &Tensor { &values[i] };
    let gather = |i: usize| -> Tensor { values[i].gather_rows(rows) };
    Ok(match op {
        ProgramOp::MatMul { a, b } => v(*a).matmul_rows(v(*b), rows),
        ProgramOp::SpMM { m, x } => sparse[*m].gather_rows(rows).spmm(v(*x)),
        ProgramOp::Add { a, b } => gather(*a).add(&gather(*b)),
        ProgramOp::Sub { a, b } => gather(*a).sub(&gather(*b)),
        ProgramOp::Mul { a, b } => gather(*a).mul(&gather(*b)),
        ProgramOp::Div { a, b } => gather(*a).div(&gather(*b)),
        ProgramOp::Scale { x, alpha } => gather(*x).scale(*alpha),
        ProgramOp::AddConst { x, c } => gather(*x).add_scalar(*c),
        ProgramOp::Pow { x, p, eps } => {
            let (p, eps) = (*p, *eps);
            gather(*x).map(|t| (t + eps).powf(p))
        }
        ProgramOp::Exp { x } => gather(*x).map(f32::exp),
        ProgramOp::Relu { x } => gather(*x).relu(),
        ProgramOp::LeakyRelu { x, slope } => gather(*x).leaky_relu(*slope),
        ProgramOp::Sigmoid { x } => gather(*x).sigmoid(),
        ProgramOp::Tanh { x } => gather(*x).tanh(),
        ProgramOp::AddRowBroadcast { x, b } => gather(*x).add_row_broadcast(v(*b)),
        ProgramOp::AddColBroadcast { x, c } => gather(*x).add_col_broadcast(&gather(*c)),
        ProgramOp::MulColBroadcast { x, c } => gather(*x).mul_col_broadcast(&gather(*c)),
        ProgramOp::MulScalarNode { x, s } => gather(*x).scale(v(*s).get(0, 0)),
        ProgramOp::LogSoftmax { x } => gather(*x).log_softmax_rows(),
        ProgramOp::ConcatCols { parts } => {
            let gathered: Vec<Tensor> = parts.iter().map(|&p| gather(p)).collect();
            let refs: Vec<&Tensor> = gathered.iter().collect();
            Tensor::concat_cols(&refs)
        }
        ProgramOp::SliceCols { x, lo, hi } => gather(*x).slice_cols(*lo, *hi),
        ProgramOp::GatherRows { x, idx } => {
            let src = v(*x);
            let mut out = Tensor::zeros(rows.len(), src.cols());
            for (r, &p) in rows.iter().enumerate() {
                out.row_mut(r).copy_from_slice(src.row(idx[p]));
            }
            out
        }
        ProgramOp::SumCols { x } => gather(*x).sum_cols(),
        ProgramOp::MaxStack { parts } => {
            // Mirror of the engine's fold: strict `>` so ties keep the
            // earliest layer — same comparison per element, same bits.
            let mut acc = gather(parts[0]);
            for &p in &parts[1..] {
                let pv = gather(p);
                for (best, cand) in acc.as_mut_slice().iter_mut().zip(pv.as_slice()) {
                    if *cand > *best {
                        *best = *cand;
                    }
                }
            }
            acc
        }
        ProgramOp::Constant { .. }
        | ProgramOp::Param { .. }
        | ProgramOp::SumAll { .. }
        | ProgramOp::SumRows { .. }
        | ProgramOp::GatAggregate { .. } => {
            return Err(ServeError::Internal(format!(
                "op {op:?} has no row-local recompute (dirty dataflow should have \
                 forced the full path)"
            )))
        }
    })
}

impl Engine {
    /// Whether this model was frozen with a graph binding (mutations work).
    pub fn supports_mutation(&self) -> bool {
        self.streaming.is_some()
    }

    /// Compact the delta adjacency (and take the full-recompute fallback)
    /// every `n` mutations. Clamped to ≥ 1; `1` makes every mutation a
    /// cold recompute — the reference the equivalence harness diffs against.
    pub fn set_compact_every(&mut self, n: usize) {
        if let Some(st) = self.streaming.as_mut() {
            st.compact_every = n.max(1);
        }
    }

    /// Apply one graph mutation, patching the propagation cache either
    /// incrementally (dirty rows only) or via full re-evaluation. Either
    /// way the cache is bitwise what a cold engine on the mutated graph
    /// would hold — the invariant `streaming_equiv.rs` proves.
    pub fn apply_mutation(&mut self, mutation: &Mutation) -> ServeResult<MutationReport> {
        lasagne_obs::span!("serve.mutate");
        let t0 = Instant::now();
        let st = self.streaming.as_mut().ok_or_else(|| {
            ServeError::Mismatch(
                "frozen model carries no graph binding (exported before streaming support); \
                 re-export it to enable mutations"
                    .into(),
            )
        })?;
        let outcome = match mutation {
            Mutation::AddEdge { u, v } => st.edge_mutation(*u, *v, true)?,
            Mutation::RemoveEdge { u, v } => st.edge_mutation(*u, *v, false)?,
            Mutation::AddNode { features } => st.add_node(features)?,
        };
        match &outcome.rows {
            None => {
                self.logits = st.values[st.output].clone();
                self.probs = self.logits.softmax_rows();
            }
            Some(rows) => {
                let out = &st.values[st.output];
                for &r in rows {
                    self.logits.row_mut(r).copy_from_slice(out.row(r));
                }
                // softmax_rows is per-row: softmax of the gathered rows is
                // bitwise the corresponding rows of a full softmax.
                let patched = self.logits.gather_rows(rows).softmax_rows();
                for (i, &r) in rows.iter().enumerate() {
                    self.probs.row_mut(r).copy_from_slice(patched.row(i));
                }
            }
        }
        self.meta.num_nodes = st.raw.rows();
        let report = MutationReport {
            dirty_rows: outcome.rows.as_ref().map_or(self.meta.num_nodes, Vec::len),
            full: outcome.rows.is_none(),
            num_nodes: self.meta.num_nodes,
            node: outcome.node,
        };
        lasagne_obs::counter_add("serve.mutations", 1);
        lasagne_obs::counter_add("serve.dirty_rows", report.dirty_rows as u64);
        lasagne_obs::counter_add_ns("serve.recompute_ns", t0.elapsed().as_nanos() as u64);
        Ok(report)
    }
}
