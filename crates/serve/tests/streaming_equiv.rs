//! The streaming exactness contract (DESIGN.md §11): after **any** sequence
//! of live mutations, the engine's propagation cache must be bitwise
//! identical — `to_bits` on every logit and probability, no tolerance — to
//! a cold engine frozen from scratch on the mutated graph. Checked for GCN
//! and all four Lasagne aggregators, at 1 and 4 `lasagne-par` threads, and
//! each edge sequence must exercise the genuinely incremental path at least
//! once (a run that always fell back to full recompute would prove
//! nothing about the dirty-row machinery).

use std::collections::BTreeSet;

use lasagne_core::{AggregatorKind, Lasagne, LasagneConfig};
use lasagne_gnn::{models, GraphContext, Hyper, NodeClassifier};
use lasagne_graph::generators::{dc_sbm, DcSbmConfig};
use lasagne_graph::Graph;
use lasagne_serve::{freeze, Engine, Mutation};
use lasagne_tensor::{Tensor, TensorRng};
use lasagne_testkit::rng::Rng;

const IN_DIM: usize = 6;
const CLASSES: usize = 3;
const NODES: usize = 60;

/// Sparse 60-node planted partition: low average degree keeps 2-hop dirty
/// sets well under the half-rows fallback threshold, so edge toggles
/// actually take the incremental path this suite exists to prove out.
fn sparse_ctx(seed: u64) -> (Graph, Tensor, Vec<usize>) {
    let mut rng = TensorRng::seed_from_u64(seed);
    let (g, labels) = dc_sbm(
        &DcSbmConfig {
            nodes: NODES,
            classes: CLASSES,
            avg_degree: 2.5,
            homophily: 0.9,
            power_exponent: 2.5,
            max_weight_ratio: 20.0,
        },
        &mut rng,
    );
    let features = lasagne_datasets::generate_features(
        &g,
        &labels,
        CLASSES,
        &lasagne_datasets::FeatureConfig {
            dim: IN_DIM,
            signal: 1.5,
            noise_scale: 0.5,
            degree_noise_exponent: 0.3,
            mask_base: 0.0,
        },
        &mut rng,
    );
    (g, features, labels)
}

fn tiny_hyper() -> Hyper {
    Hyper { hidden: 4, depth: 2, dropout_keep: 1.0, sgc_k: 2, ..Hyper::default() }
}

fn lasagne_model(agg: AggregatorKind, n: usize) -> Box<dyn NodeClassifier> {
    let cfg = LasagneConfig::from_hyper(&tiny_hyper(), agg);
    Box::new(Lasagne::new(IN_DIM, CLASSES, Some(n), &cfg, 5))
}

/// Cold reference: rebuild the graph from the shadow edge set, re-freeze the
/// same model on it, and return (logit bits, prob bits) for every node.
fn cold_bits(
    model: &dyn NodeClassifier,
    n: usize,
    edges: &BTreeSet<(u32, u32)>,
    features: &Tensor,
    labels: &[usize],
) -> (Vec<u32>, Vec<u32>) {
    let edge_vec: Vec<(u32, u32)> = edges.iter().copied().collect();
    let g = Graph::from_edges(n, &edge_vec);
    let ctx = GraphContext::new(&g, features.clone(), labels.to_vec(), CLASSES);
    let engine = Engine::new(freeze(model, &ctx, "tiny").expect("freeze")).expect("cold engine");
    engine_bits(&engine, n)
}

fn engine_bits(engine: &Engine, n: usize) -> (Vec<u32>, Vec<u32>) {
    let mut logits = Vec::new();
    let mut probs = Vec::new();
    for node in 0..n {
        logits.extend(engine.logits_row(node).expect("row").iter().map(|v| v.to_bits()));
        probs.extend(engine.predict(node).expect("predict").probs.iter().map(|v| v.to_bits()));
    }
    (logits, probs)
}

/// Replay `steps` random edge toggles against a live engine, diffing the
/// whole cache against a cold rebuild after every single mutation.
fn assert_streaming_matches_cold(name: &str, model: &dyn NodeClassifier, steps: usize) {
    let (g, features, labels) = sparse_ctx(17);
    for &threads in &[1usize, 4] {
        lasagne_par::set_threads(threads);
        let ctx = GraphContext::new(&g, features.clone(), labels.clone(), CLASSES);
        let mut engine =
            Engine::new(freeze(model, &ctx, "tiny").expect("freeze")).expect("live engine");
        assert!(engine.supports_mutation(), "{name}: freshly frozen model must carry a graph");
        let mut edges: BTreeSet<(u32, u32)> = g.edges().iter().copied().collect();
        let mut rng = Rng::seed_from_u64(23);
        let mut incremental = 0usize;
        for step in 0..steps {
            let mutation = pick_edge_toggle(&mut rng, &mut edges);
            let report = engine
                .apply_mutation(&mutation)
                .unwrap_or_else(|e| panic!("{name} step {step}: {mutation:?} failed: {e}"));
            assert_eq!(report.num_nodes, NODES, "{name} step {step}: node count drifted");
            if !report.full {
                incremental += 1;
                assert!(
                    report.dirty_rows < NODES,
                    "{name} step {step}: incremental path re-derived every row"
                );
            }
            let got = engine_bits(&engine, NODES);
            let want = cold_bits(model, NODES, &edges, &features, &labels);
            assert_eq!(
                got, want,
                "{name} @ {threads} thread(s), step {step} ({mutation:?}): \
                 live cache differs from a cold rebuild"
            );
        }
        assert!(
            incremental > 0,
            "{name} @ {threads} thread(s): no mutation took the incremental path — \
             the equivalence run never exercised the dirty-row machinery"
        );
    }
}

/// Toggle a random edge, mirroring the choice into the shadow set: mostly
/// inserts (so the graph stays connected enough to be interesting), removals
/// of an existing edge about a third of the time.
fn pick_edge_toggle(rng: &mut Rng, edges: &mut BTreeSet<(u32, u32)>) -> Mutation {
    if !edges.is_empty() && rng.index(3) == 0 {
        let pick = rng.index(edges.len());
        let &(u, v) = edges.iter().nth(pick).expect("non-empty");
        edges.remove(&(u, v));
        return Mutation::RemoveEdge { u: u as usize, v: v as usize };
    }
    loop {
        let u = rng.index(NODES) as u32;
        let v = rng.index(NODES) as u32;
        if u == v {
            continue;
        }
        let key = if u < v { (u, v) } else { (v, u) };
        if edges.insert(key) {
            return Mutation::AddEdge { u: key.0 as usize, v: key.1 as usize };
        }
    }
}

#[test]
fn gcn_streaming_bitwise_equivalent() {
    let model = models::Gcn::new(IN_DIM, CLASSES, &tiny_hyper(), 5);
    assert_streaming_matches_cold("Gcn", &model, 12);
}

/// SGC folds `Â^K X` into a tape constant, so its exported program has no
/// visible graph dependence — freezing must withhold the graph binding and
/// mutations must fail typed instead of silently serving stale rows (the
/// exact failure mode this suite caught when SGC still got a binding).
#[test]
fn sgc_refuses_mutations_with_typed_error() {
    let (g, features, labels) = sparse_ctx(17);
    let model = models::Sgc::new(IN_DIM, CLASSES, &tiny_hyper(), 5);
    let ctx = GraphContext::new(&g, features, labels, CLASSES);
    let mut engine =
        Engine::new(freeze(&model, &ctx, "tiny").expect("freeze")).expect("engine");
    assert!(!engine.supports_mutation(), "SGC must freeze without a graph binding");
    let err = engine
        .apply_mutation(&Mutation::AddEdge { u: 0, v: 1 })
        .expect_err("mutation must be refused");
    assert_eq!(err.kind(), "mismatch", "refusal must be the typed no-binding error");
}

#[test]
fn lasagne_weighted_streaming_bitwise_equivalent() {
    let model = lasagne_model(AggregatorKind::Weighted, NODES);
    assert_streaming_matches_cold("Lasagne-Weighted", model.as_ref(), 10);
}

#[test]
fn lasagne_stochastic_streaming_bitwise_equivalent() {
    let model = lasagne_model(AggregatorKind::Stochastic, NODES);
    assert_streaming_matches_cold("Lasagne-Stochastic", model.as_ref(), 10);
}

#[test]
fn lasagne_maxpool_streaming_bitwise_equivalent() {
    let model = lasagne_model(AggregatorKind::MaxPooling, NODES);
    assert_streaming_matches_cold("Lasagne-MaxPooling", model.as_ref(), 10);
}

#[test]
fn lasagne_mean_streaming_bitwise_equivalent() {
    let model = lasagne_model(AggregatorKind::Mean, NODES);
    assert_streaming_matches_cold("Lasagne-Mean", model.as_ref(), 10);
}

/// Compaction is a full-recompute fallback; forcing it after every mutation
/// must leave the cache just as bitwise-exact as the incremental path.
#[test]
fn compact_every_mutation_still_bitwise_equivalent() {
    let (g, features, labels) = sparse_ctx(17);
    lasagne_par::set_threads(1);
    let model = models::Gcn::new(IN_DIM, CLASSES, &tiny_hyper(), 5);
    let ctx = GraphContext::new(&g, features.clone(), labels.clone(), CLASSES);
    let mut engine =
        Engine::new(freeze(&model, &ctx, "tiny").expect("freeze")).expect("live engine");
    engine.set_compact_every(1);
    let mut edges: BTreeSet<(u32, u32)> = g.edges().iter().copied().collect();
    let mut rng = Rng::seed_from_u64(29);
    for step in 0..6 {
        let mutation = pick_edge_toggle(&mut rng, &mut edges);
        let report = engine.apply_mutation(&mutation).expect("mutation");
        assert!(report.full, "step {step}: compact_every=1 must force the full path");
        let got = engine_bits(&engine, NODES);
        let want = cold_bits(&model, NODES, &edges, &features, &labels);
        assert_eq!(got, want, "step {step} ({mutation:?}): post-compaction cache differs");
    }
}

/// `add_node` grows the live graph; the grown cache must match a cold
/// engine on the (n+1)-node graph, both right after the append and after
/// wiring the new node in with edges.
#[test]
fn gcn_add_node_bitwise_equivalent() {
    let (g, features, labels) = sparse_ctx(17);
    let new_row: Vec<f32> = (0..IN_DIM).map(|i| 0.25 * (i as f32 + 1.0)).collect();
    let mut grown = features.as_slice().to_vec();
    grown.extend_from_slice(&new_row);
    let grown_features =
        Tensor::from_vec(NODES + 1, IN_DIM, grown).expect("grown feature tensor");
    let mut grown_labels = labels.clone();
    grown_labels.push(0);

    let model = models::Gcn::new(IN_DIM, CLASSES, &tiny_hyper(), 5);
    for &threads in &[1usize, 4] {
        lasagne_par::set_threads(threads);
        let ctx = GraphContext::new(&g, features.clone(), labels.clone(), CLASSES);
        let mut engine =
            Engine::new(freeze(&model, &ctx, "tiny").expect("freeze")).expect("live engine");
        let mut edges: BTreeSet<(u32, u32)> = g.edges().iter().copied().collect();

        let report = engine
            .apply_mutation(&Mutation::AddNode { features: new_row.clone() })
            .expect("add_node");
        assert_eq!(report.node, Some(NODES), "appended node id");
        assert_eq!(report.num_nodes, NODES + 1);
        assert!(report.full, "add_node has no incremental path");
        assert_eq!(engine.num_nodes(), NODES + 1, "engine metadata must grow");

        let got = engine_bits(&engine, NODES + 1);
        let want = cold_bits(&model, NODES + 1, &edges, &grown_features, &grown_labels);
        assert_eq!(got, want, "@ {threads} thread(s): isolated new node differs from cold");

        // Wire the new node in and check the mutated caches again.
        for &peer in &[0u32, 7, 31] {
            edges.insert((peer, NODES as u32));
            engine
                .apply_mutation(&Mutation::AddEdge { u: peer as usize, v: NODES })
                .expect("wire new node");
        }
        let got = engine_bits(&engine, NODES + 1);
        let want = cold_bits(&model, NODES + 1, &edges, &grown_features, &grown_labels);
        assert_eq!(got, want, "@ {threads} thread(s): wired new node differs from cold");
    }
}
