//! The recommendation-serving contract (DESIGN.md §15):
//!
//! 1. `Engine::recommend` reproduces the training-side ranker
//!    (`RecDataset::score_topk` over tape-path eval logits) **bitwise** —
//!    same items, same scores — at 1 and 4 `lasagne-par` threads.
//! 2. The `rec` block survives save → load byte-deterministically.
//! 3. Every misuse fails typed: items and out-of-range ids are
//!    `unknown_user`, a fully-masked user is `no_candidates`, a
//!    node-classification artifact is `not_a_recommender`, `k = 0` is a
//!    `bad_request` at the protocol layer, and `quantize` strips the
//!    binding rather than serving approximate scores as exact.
//! 4. The wire path (`recommend` verb over a live TCP server) agrees with
//!    the in-process engine and enforces the same typed errors.

use std::rc::Rc;

use lasagne_autograd::{Adam, Optimizer, Tape};
use lasagne_datasets::{dot_score, sort_ranked, RecConfig, RecDataset};
use lasagne_gnn::{models, GraphContext, Hyper, Mode, NodeClassifier};
use lasagne_serve::{
    freeze, freeze_rec, Client, Engine, FrozenModel, FrozenRec, QuantMode, Request, ServeError,
    Server, ServerConfig,
};
use lasagne_sparse::Csr;
use lasagne_tensor::TensorRng;
use lasagne_testkit::Json;

fn small_cfg() -> RecConfig {
    RecConfig {
        items: 60,
        users: 40,
        classes: 4,
        // 16×4 first-layer weight keeps `quantize` eligible (≥ 64 elems).
        features: 16,
        avg_user_degree: 4.0,
        time_buckets: 6,
        ..RecConfig::default()
    }
}

fn rec_ctx(ds: &RecDataset) -> GraphContext {
    GraphContext::with_edge_data(
        &ds.graph,
        ds.features.clone(),
        ds.labels.clone(),
        ds.num_classes,
        &ds.edge_data,
    )
    .expect("rec dataset edge data is aligned by construction")
}

fn tiny_hyper() -> Hyper {
    Hyper { hidden: 4, depth: 2, dropout_keep: 1.0, ..Hyper::default() }
}

/// An edge-gated model trained for two epochs on the item-classification
/// loss — enough to move weights off their init so the equivalence checks
/// run on non-trivial values.
fn trained_model(ds: &RecDataset, ctx: &GraphContext) -> models::EdgeGatedGcn {
    let mut model =
        models::EdgeGatedGcn::new(ds.features.shape().1, ds.num_classes, ds.edge_dim, &tiny_hyper(), 5);
    let labels = Rc::new(ds.labels.clone());
    let idx = Rc::new(ds.train_items.clone());
    let mut opt = Adam::new(model.store(), 0.01, 5e-4);
    let mut rng = TensorRng::seed_from_u64(3);
    for _ in 0..2 {
        let mut tape = Tape::new();
        let out = model.forward(&mut tape, ctx, Mode::Train, &mut rng);
        let lp = tape.log_softmax(out.logits);
        let loss = tape.nll_masked(lp, labels.clone(), idx.clone());
        model.store_mut().zero_grads();
        tape.backward(loss, model.store_mut());
        opt.step(model.store_mut());
    }
    model
}

fn frozen_rec_block(ds: &RecDataset) -> FrozenRec {
    FrozenRec { items: ds.items, users: ds.users, interacted: ds.interacted.clone() }
}

fn training_logits(model: &dyn NodeClassifier, ctx: &GraphContext) -> lasagne_tensor::Tensor {
    let mut rng = TensorRng::seed_from_u64(7);
    let mut tape = Tape::new();
    let out = model.forward(&mut tape, ctx, Mode::Eval, &mut rng);
    tape.value(out.logits).clone()
}

fn temp_path(name: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("lasagne-rec-{name}-{}.json", std::process::id()))
}

#[test]
fn recommend_matches_training_side_ranker_bitwise() {
    let ds = RecDataset::generate(&small_cfg(), 9);
    let ctx = rec_ctx(&ds);
    let model = trained_model(&ds, &ctx);
    let frozen = freeze_rec(&model, &ctx, "rec-tiny", frozen_rec_block(&ds)).expect("freeze_rec");
    for &threads in &[1usize, 4] {
        lasagne_par::set_threads(threads);
        let logits = training_logits(&model, &ctx);
        let engine = Engine::new(frozen.clone()).expect("engine");
        assert!(engine.is_recommender());
        for &(user_node, _) in &ds.holdout {
            // Item ids agree with the dataset-side ranker...
            let served = engine.recommend(user_node, 10).expect("recommend");
            let reference = ds.score_topk(&logits, user_node, 10);
            let served_items: Vec<usize> = served.iter().map(|&(i, _)| i).collect();
            assert_eq!(
                served_items, reference,
                "user {user_node} @ {threads} thread(s): ranking diverged"
            );
            // ...and the scores are bitwise the shared dot_score contract.
            for &(item, score) in &served {
                let expect = dot_score(logits.row(user_node), logits.row(item));
                assert_eq!(
                    score.to_bits(),
                    expect.to_bits(),
                    "user {user_node} item {item}: score not bitwise-equal"
                );
            }
        }
    }
}

#[test]
fn rec_block_round_trips_byte_deterministically() {
    let ds = RecDataset::generate(&small_cfg(), 4);
    let ctx = rec_ctx(&ds);
    let model = trained_model(&ds, &ctx);
    let frozen = freeze_rec(&model, &ctx, "rec-tiny", frozen_rec_block(&ds)).expect("freeze_rec");
    let (a, b) = (temp_path("rt-a"), temp_path("rt-b"));
    frozen.save(&a).expect("save a");
    freeze_rec(&model, &ctx, "rec-tiny", frozen_rec_block(&ds))
        .expect("freeze_rec again")
        .save(&b)
        .expect("save b");
    assert_eq!(
        std::fs::read(&a).expect("read a"),
        std::fs::read(&b).expect("read b"),
        "rec export must be byte-deterministic"
    );
    let loaded = Engine::new(FrozenModel::load(&a).expect("load")).expect("engine");
    let direct = Engine::new(frozen).expect("direct engine");
    assert!(loaded.is_recommender());
    let user_node = ds.holdout[0].0;
    let (from_file, from_mem) =
        (loaded.recommend(user_node, 10).expect("file"), direct.recommend(user_node, 10).expect("mem"));
    assert_eq!(from_file.len(), from_mem.len());
    for (&(ia, sa), &(ib, sb)) in from_file.iter().zip(&from_mem) {
        assert_eq!(ia, ib);
        assert_eq!(sa.to_bits(), sb.to_bits(), "round-trip changed a score");
    }
    let _ = std::fs::remove_file(a);
    let _ = std::fs::remove_file(b);
}

#[test]
fn recommend_never_returns_masked_or_duplicate_items() {
    let ds = RecDataset::generate(&small_cfg(), 5);
    let ctx = rec_ctx(&ds);
    let model = trained_model(&ds, &ctx);
    let engine =
        Engine::new(freeze_rec(&model, &ctx, "rec-tiny", frozen_rec_block(&ds)).expect("freeze"))
            .expect("engine");
    for u in 0..ds.users {
        let node = ds.items + u;
        let top = engine.recommend(node, 10).expect("recommend");
        let mask = ds.interacted.row_indices(u);
        let mut seen = std::collections::HashSet::new();
        for &(item, _) in &top {
            assert!(item < ds.items, "user {node}: non-item id {item}");
            assert!(
                mask.binary_search(&(item as u32)).is_err(),
                "user {node}: recommended interacted item {item}"
            );
            assert!(seen.insert(item), "user {node}: duplicate item {item}");
        }
        // Descending by score, ties to the lower id — re-sorting is a no-op.
        let mut resorted = top.clone();
        sort_ranked(&mut resorted);
        assert_eq!(top, resorted, "user {node}: ranking order violated");
    }
}

#[test]
fn recommend_fails_typed_on_misuse() {
    let ds = RecDataset::generate(&small_cfg(), 6);
    let ctx = rec_ctx(&ds);
    let model = trained_model(&ds, &ctx);
    let engine =
        Engine::new(freeze_rec(&model, &ctx, "rec-tiny", frozen_rec_block(&ds)).expect("freeze"))
            .expect("engine");
    // An item id and an out-of-range id are both unknown_user.
    for bad in [0usize, ds.items - 1, ds.num_nodes(), ds.num_nodes() + 100] {
        let err = engine.recommend(bad, 5).expect_err("must refuse");
        assert_eq!(err.kind(), "unknown_user", "node {bad}");
        assert_eq!(
            err,
            ServeError::UnknownUser { node: bad, items: ds.items, users: ds.users }
        );
    }
    // A user whose mask covers every item has nothing left to rank.
    let full_row: Vec<(u32, u32, f32)> = (0..ds.items as u32).map(|i| (0, i, 1.0)).collect();
    let all_masked = FrozenRec {
        items: ds.items,
        users: ds.users,
        interacted: Csr::from_coo(ds.users, ds.items, &full_row),
    };
    let engine2 =
        Engine::new(freeze_rec(&model, &ctx, "rec-tiny", all_masked).expect("freeze"))
            .expect("engine");
    let err = engine2.recommend(ds.items, 5).expect_err("must refuse");
    assert_eq!(err.kind(), "no_candidates");
    // A node-classification artifact (no rec block) refuses typed.
    let plain = Engine::new(freeze(&model, &ctx, "rec-tiny").expect("freeze plain"))
        .expect("plain engine");
    assert!(!plain.is_recommender());
    let err = plain.recommend(ds.items, 5).expect_err("must refuse");
    assert_eq!(err.kind(), "not_a_recommender");
}

#[test]
fn quantize_strips_the_rec_block() {
    let ds = RecDataset::generate(&small_cfg(), 7);
    let ctx = rec_ctx(&ds);
    let model = trained_model(&ds, &ctx);
    let frozen = freeze_rec(&model, &ctx, "rec-tiny", frozen_rec_block(&ds)).expect("freeze_rec");
    let quantized = frozen.quantize(QuantMode::I8).expect("quantize");
    let engine = Engine::new(quantized).expect("quantized engine");
    assert!(!engine.is_recommender(), "quantize must drop the rec binding");
    assert_eq!(
        engine.recommend(ds.items, 5).expect_err("must refuse").kind(),
        "not_a_recommender"
    );
    // A hand-crafted file carrying both quantized weights and a rec block
    // is refused at load — approximate scores must never serve as exact.
    let mut doctored =
        freeze_rec(&model, &ctx, "rec-tiny", frozen_rec_block(&ds)).expect("freeze_rec");
    doctored = doctored.quantize(QuantMode::I8).expect("quantize");
    doctored.rec = Some(frozen_rec_block(&ds));
    let err = match Engine::new(doctored) {
        Err(e) => e,
        Ok(_) => panic!("quantized + rec file must be refused at load"),
    };
    assert_eq!(err.kind(), "mismatch");
}

#[test]
fn recommend_over_the_wire() {
    let ds = RecDataset::generate(&small_cfg(), 8);
    let ctx = rec_ctx(&ds);
    let model = trained_model(&ds, &ctx);
    let frozen = freeze_rec(&model, &ctx, "rec-tiny", frozen_rec_block(&ds)).expect("freeze_rec");
    let reference = Engine::new(frozen.clone()).expect("reference engine");
    let server = Server::start(
        Engine::new(frozen).expect("engine"),
        ServerConfig { addr: "127.0.0.1:0".into(), ..ServerConfig::default() },
    )
    .expect("server start");
    let addr = server.local_addr().to_string();
    let mut client = Client::connect(&addr).expect("connect");

    // Happy path agrees with the in-process engine, items and scores.
    let user_node = ds.holdout[0].0;
    let doc = client.recommend(user_node, 10).expect("recommend");
    let items = doc.get("items").and_then(Json::as_arr).expect("items array");
    let expect = reference.recommend(user_node, 10).expect("reference");
    assert_eq!(items.len(), expect.len());
    for (entry, &(item, score)) in items.iter().zip(&expect) {
        assert_eq!(entry.get("item").and_then(Json::as_usize), Some(item));
        let wire_score = entry.get("score").and_then(Json::as_f64).expect("score") as f32;
        assert_eq!(wire_score.to_bits(), score.to_bits(), "score drifted over the wire");
    }

    // k = 0 is rejected at parse time with a typed bad_request.
    let raw = client
        .roundtrip_raw(&format!("{{\"op\":\"recommend\",\"node\":{user_node},\"k\":0}}"))
        .expect("roundtrip");
    let doc = Json::parse(&raw).expect("parse");
    assert_eq!(doc.get("ok").and_then(Json::as_bool), Some(false));
    assert_eq!(
        doc.get("error").and_then(|e| e.get("kind")).and_then(Json::as_str),
        Some("bad_request")
    );

    // An item id comes back unknown_user with the layout as structured hints.
    let doc = client.call(&Request::Recommend { node: 0, k: 5 }).expect("call");
    let error = doc.get("error").expect("error object");
    assert_eq!(error.get("kind").and_then(Json::as_str), Some("unknown_user"));
    assert_eq!(error.get("items").and_then(Json::as_usize), Some(ds.items));
    assert_eq!(error.get("users").and_then(Json::as_usize), Some(ds.users));

    // The connection survives all of the above.
    client.call_ok(&Request::Health).expect("health");
    client.call_ok(&Request::Shutdown).expect("shutdown ack");
}

#[test]
fn classifier_server_refuses_recommend_over_the_wire() {
    let ds = RecDataset::generate(&small_cfg(), 10);
    let ctx = rec_ctx(&ds);
    let model = trained_model(&ds, &ctx);
    // Frozen WITHOUT the rec block: an ordinary classification artifact.
    let server = Server::start(
        Engine::new(freeze(&model, &ctx, "rec-tiny").expect("freeze")).expect("engine"),
        ServerConfig { addr: "127.0.0.1:0".into(), ..ServerConfig::default() },
    )
    .expect("server start");
    let mut client = Client::connect(&server.local_addr().to_string()).expect("connect");
    let doc = client.call(&Request::Recommend { node: ds.items, k: 5 }).expect("call");
    assert_eq!(doc.get("ok").and_then(Json::as_bool), Some(false));
    assert_eq!(
        doc.get("error").and_then(|e| e.get("kind")).and_then(Json::as_str),
        Some("not_a_recommender")
    );
    // predict still answers on the same connection.
    client.call_ok(&Request::Predict { node: 0 }).expect("predict");
    client.call_ok(&Request::Shutdown).expect("shutdown ack");
}
