//! Serve-side partition-equivalence harness (DESIGN.md §14): the lazy
//! per-partition engine must be indistinguishable — bitwise — from the
//! resident propagation-cache engine and from the training path's eval
//! forward, for GCN and all four Lasagne aggregators, at 1 and 4 threads
//! and across partition counts. Laziness itself is observable (partitions
//! materialize only when queried), and everything the lazy engine cannot
//! serve exactly is refused typed: non-row-local programs (GAT), quantized
//! artifacts, streaming mutations, bad partition counts.

use lasagne_autograd::Tape;
use lasagne_core::{AggregatorKind, Lasagne, LasagneConfig};
use lasagne_gnn::{models, GraphContext, Hyper, Mode, NodeClassifier};
use lasagne_graph::generators::{dc_sbm, DcSbmConfig};
use lasagne_serve::{freeze, Engine, LazyEngine, Mutation, QuantMode, ServeError};
use lasagne_tensor::TensorRng;

const IN_DIM: usize = 6;
const CLASSES: usize = 3;

/// Same 24-node planted-partition context the frozen-path suite uses.
fn tiny_ctx(seed: u64) -> GraphContext {
    let mut rng = TensorRng::seed_from_u64(seed);
    let (g, labels) = dc_sbm(
        &DcSbmConfig {
            nodes: 24,
            classes: CLASSES,
            avg_degree: 4.0,
            homophily: 0.9,
            power_exponent: 2.5,
            max_weight_ratio: 20.0,
        },
        &mut rng,
    );
    let features = lasagne_datasets::generate_features(
        &g,
        &labels,
        CLASSES,
        &lasagne_datasets::FeatureConfig {
            dim: IN_DIM,
            signal: 1.5,
            noise_scale: 0.5,
            degree_noise_exponent: 0.3,
            mask_base: 0.0,
        },
        &mut rng,
    );
    GraphContext::new(&g, features, labels, CLASSES)
}

fn tiny_hyper() -> Hyper {
    Hyper {
        hidden: 4,
        depth: 2,
        dropout_keep: 1.0,
        gat_heads: 2,
        sgc_k: 2,
        ..Hyper::default()
    }
}

fn lasagne_model(agg: AggregatorKind, n: usize) -> Box<dyn NodeClassifier> {
    let cfg = LasagneConfig::from_hyper(&tiny_hyper(), agg);
    Box::new(Lasagne::new(IN_DIM, CLASSES, Some(n), &cfg, 5))
}

/// Training-path reference: eval-mode logits off a fresh tape.
fn training_path_logits(model: &dyn NodeClassifier, ctx: &GraphContext) -> Vec<u32> {
    let mut rng = TensorRng::seed_from_u64(7);
    let mut tape = Tape::new();
    let out = model.forward(&mut tape, ctx, Mode::Eval, &mut rng);
    tape.value(out.logits).as_slice().iter().map(|v| v.to_bits()).collect()
}

/// For every (thread count, partition count): lazy rows == resident engine
/// rows == training-path rows, to the bit.
fn assert_lazy_matches(name: &str, model: &dyn NodeClassifier, ctx: &GraphContext) {
    let frozen = freeze(model, ctx, "tiny").expect("freeze");
    for &threads in &[1usize, 4] {
        lasagne_par::set_threads(threads);
        let reference = training_path_logits(model, ctx);
        let resident = Engine::new(frozen.clone()).expect("resident engine");
        for &k in &[1usize, 3, 5] {
            let lazy = LazyEngine::new(frozen.clone(), k).expect("lazy engine");
            assert_eq!(lazy.num_nodes(), ctx.num_nodes(), "{name}: node count");
            assert_eq!(lazy.num_classes(), CLASSES, "{name}: class count");
            let mut lazy_bits = Vec::with_capacity(reference.len());
            for node in 0..lazy.num_nodes() {
                let row = lazy.logits_row(node).expect("lazy row");
                assert_eq!(
                    row.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                    resident.logits_row(node).expect("resident row").iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                    "{name} @ {threads} thread(s), k={k}, node {node}: lazy != resident"
                );
                lazy_bits.extend(row.iter().map(|v| v.to_bits()));
                // Derived answers agree too.
                assert_eq!(
                    lazy.predict(node).expect("lazy predict"),
                    resident.predict(node).expect("resident predict"),
                    "{name} @ {threads} thread(s), k={k}, node {node}: predictions differ"
                );
                assert_eq!(
                    lazy.top_k(node, 2).expect("lazy top_k"),
                    resident.top_k(node, 2).expect("resident top_k"),
                    "{name} @ {threads} thread(s), k={k}, node {node}: top-k differs"
                );
            }
            assert_eq!(
                lazy_bits, reference,
                "{name} @ {threads} thread(s), k={k}: lazy logits differ from training path"
            );
        }
    }
    lasagne_par::set_threads(1);
}

#[test]
fn lazy_engine_is_bitwise_for_gcn_and_all_lasagne_aggregators() {
    let ctx = tiny_ctx(5);
    let n = ctx.num_nodes();
    let gcn = models::Gcn::new(IN_DIM, CLASSES, &tiny_hyper(), 3);
    assert_lazy_matches("gcn", &gcn, &ctx);
    for agg in [
        AggregatorKind::Weighted,
        AggregatorKind::MaxPooling,
        AggregatorKind::Stochastic,
        AggregatorKind::Mean,
    ] {
        let model = lasagne_model(agg, n);
        assert_lazy_matches(agg.label(), model.as_ref(), &ctx);
    }
}

#[test]
fn partitions_materialize_lazily_and_only_when_touched() {
    let ctx = tiny_ctx(5);
    let model = models::Gcn::new(IN_DIM, CLASSES, &tiny_hyper(), 3);
    let frozen = freeze(&model, &ctx, "tiny").expect("freeze");
    let lazy = LazyEngine::new(frozen, 4).expect("lazy engine");
    assert_eq!(lazy.cached_parts(), 0, "nothing materialized at load");
    lazy.predict(0).expect("query");
    assert_eq!(lazy.cached_parts(), 1, "first query fills exactly one partition");
    lazy.predict(0).expect("repeat query");
    assert_eq!(lazy.cached_parts(), 1, "repeat queries hit the cache");
    for node in 0..lazy.num_nodes() {
        lazy.logits_row(node).expect("row");
    }
    assert_eq!(lazy.cached_parts(), lazy.num_parts(), "full sweep fills every partition");
}

#[test]
fn everything_inexact_is_refused_typed() {
    let ctx = tiny_ctx(5);

    // GAT: graph-global attention softmax — not row-local, refused at load.
    let gat = models::Gat::new(IN_DIM, CLASSES, &tiny_hyper(), 3);
    let frozen_gat = freeze(&gat, &ctx, "tiny").expect("freeze gat");
    match LazyEngine::new(frozen_gat, 3) {
        Err(ServeError::Mismatch(msg)) => {
            assert!(msg.contains("row-local"), "unexpected message: {msg}")
        }
        other => panic!("expected typed row-locality refusal, got {:?}", other.err()),
    }

    let model = models::Gcn::new(IN_DIM, CLASSES, &tiny_hyper(), 3);
    let frozen = freeze(&model, &ctx, "tiny").expect("freeze");

    // Quantized artifacts: the fused panel kernel is whole-matrix. (Wider
    // hidden layer so the weights clear the quantizer's size floor.)
    let wide = models::Gcn::new(IN_DIM, CLASSES, &Hyper { hidden: 16, ..tiny_hyper() }, 3);
    let quantized = freeze(&wide, &ctx, "tiny")
        .expect("freeze wide")
        .quantize(QuantMode::I8)
        .expect("quantize");
    match LazyEngine::new(quantized, 3) {
        Err(ServeError::Mismatch(msg)) => {
            assert!(msg.contains("quantized"), "unexpected message: {msg}")
        }
        other => panic!("expected typed quantized refusal, got {:?}", other.err()),
    }

    // Bad partition counts.
    for k in [0usize, 1000] {
        match LazyEngine::new(frozen.clone(), k) {
            Err(ServeError::Mismatch(_)) => {}
            other => panic!("k={k}: expected typed refusal, got {:?}", other.err()),
        }
    }

    // Streaming mutations would leave caches silently stale.
    let mut lazy = LazyEngine::new(frozen.clone(), 3).expect("lazy engine");
    match lazy.apply_mutation(&Mutation::AddEdge { u: 0, v: 5 }) {
        Err(ServeError::Mismatch(msg)) => {
            assert!(msg.contains("mutation"), "unexpected message: {msg}")
        }
        other => panic!("expected typed mutation refusal, got {:?}", other.err()),
    }

    // Unknown nodes answer typed, same as the resident engine.
    match lazy.logits_row(999) {
        Err(ServeError::UnknownNode { node: 999, num_nodes: 24 }) => {}
        other => panic!("expected UnknownNode, got {:?}", other.err()),
    }
}
