//! The quantized-path contract (DESIGN.md §13): exporting a frozen model
//! with `--export-quantized` compresses every matmul-only weight to i8
//! (per-row scales) or f16, the engine dequantizes inside the packed-panel
//! matmul kernel, and the resulting logits stay within a documented
//! tolerance of the exact f32 path:
//!
//! * i8:  `max |q_logit - f32_logit| <= 0.05 * (1 + max |f32_logit|)`
//! * f16: `max |q_logit - f32_logit| <= 2e-3 * (1 + max |f32_logit|)`
//! * argmax preservation: >= 90% of nodes keep their predicted class,
//!   per model, per mode.
//!
//! Checked across **all 17 model variants** (13 baselines + 4 Lasagne
//! aggregators), at 1 and 4 threads. Alongside the tolerance contract, two
//! exactness properties are pinned bitwise: the fused dequantize-in-kernel
//! evaluation equals materialize-then-matmul, and quantized exports are
//! byte-deterministic (and smaller than their f32 counterparts).
//!
//! The graph context here is wider than the frozen_forward one (24 input
//! dims, hidden 16) so the weight matrices clear the `r*c >= 64`
//! worth-compressing floor in `FrozenModel::quantize`.

use lasagne_core::{AggregatorKind, Lasagne, LasagneConfig};
use lasagne_gnn::{models, GraphContext, Hyper, NodeClassifier};
use lasagne_graph::generators::{dc_sbm, DcSbmConfig};
use lasagne_serve::{evaluate_program, freeze, Engine, FrozenModel, QuantMatrix, QuantMode};
use lasagne_tensor::{Tensor, TensorRng};
use lasagne_testkit::gens::dense;
use lasagne_testkit::prop::{check, Config};

const IN_DIM: usize = 24;
const CLASSES: usize = 3;

fn wide_ctx(seed: u64) -> GraphContext {
    let mut rng = TensorRng::seed_from_u64(seed);
    let (g, labels) = dc_sbm(
        &DcSbmConfig {
            nodes: 24,
            classes: CLASSES,
            avg_degree: 4.0,
            homophily: 0.9,
            power_exponent: 2.5,
            max_weight_ratio: 20.0,
        },
        &mut rng,
    );
    let features = lasagne_datasets::generate_features(
        &g,
        &labels,
        CLASSES,
        &lasagne_datasets::FeatureConfig {
            dim: IN_DIM,
            signal: 1.5,
            noise_scale: 0.5,
            degree_noise_exponent: 0.3,
            mask_base: 0.0,
        },
        &mut rng,
    );
    GraphContext::new(&g, features, labels, CLASSES)
}

fn wide_hyper() -> Hyper {
    Hyper {
        hidden: 16,
        depth: 2,
        dropout_keep: 1.0,
        gat_heads: 2,
        appnp_k: 3,
        fastgcn_samples: 24,
        madreg_pairs: 8,
        sgc_k: 2,
        ..Hyper::default()
    }
}

fn all_models(n: usize) -> Vec<(&'static str, Box<dyn NodeClassifier>)> {
    let h = wide_hyper();
    let lasagne = |agg| -> Box<dyn NodeClassifier> {
        Box::new(Lasagne::new(IN_DIM, CLASSES, Some(n), &LasagneConfig::from_hyper(&h, agg), 5))
    };
    vec![
        ("gcn", Box::new(models::Gcn::new(IN_DIM, CLASSES, &h, 5))),
        ("resgcn", Box::new(models::ResGcn::new(IN_DIM, CLASSES, &h, 5))),
        ("densegcn", Box::new(models::DenseGcn::new(IN_DIM, CLASSES, &h, 5))),
        ("jknet", Box::new(models::JkNet::new(IN_DIM, CLASSES, &h, 5))),
        ("gat", Box::new(models::Gat::new(IN_DIM, CLASSES, &h, 5))),
        ("sgc", Box::new(models::Sgc::new(IN_DIM, CLASSES, &h, 5))),
        ("appnp", Box::new(models::Appnp::new(IN_DIM, CLASSES, &h, 5))),
        ("mixhop", Box::new(models::MixHop::new(IN_DIM, CLASSES, &h, 5))),
        ("dropedge", Box::new(models::DropEdgeGcn::new(IN_DIM, CLASSES, &h, 5))),
        ("pairnorm", Box::new(models::PairNormGcn::new(IN_DIM, CLASSES, &h, 5))),
        ("madreg", Box::new(models::MadRegGcn::new(IN_DIM, CLASSES, &h, 5))),
        ("graphsage", Box::new(models::GraphSage::new(IN_DIM, CLASSES, &h, 5))),
        ("fastgcn", Box::new(models::FastGcn::new(IN_DIM, CLASSES, &h, 5))),
        ("lasagne-weighted", lasagne(AggregatorKind::Weighted)),
        ("lasagne-stochastic", lasagne(AggregatorKind::Stochastic)),
        ("lasagne-maxpool", lasagne(AggregatorKind::MaxPooling)),
        ("lasagne-mean", lasagne(AggregatorKind::Mean)),
    ]
}

fn temp_path(name: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("lasagne-quant-{name}-{}.json", std::process::id()))
}

fn engine_logits(engine: &Engine) -> Vec<f32> {
    let mut out = Vec::new();
    for node in 0..engine.num_nodes() {
        out.extend_from_slice(engine.logits_row(node).expect("row"));
    }
    out
}

fn argmax(row: &[f32]) -> usize {
    let mut best = 0;
    for (j, &v) in row.iter().enumerate() {
        if v > row[best] {
            best = j;
        }
    }
    best
}

/// The documented end-to-end logit tolerance for a mode, given the exact
/// path's logit magnitude.
fn logit_tolerance(mode: QuantMode, max_abs_logit: f32) -> f32 {
    let rel = match mode {
        QuantMode::I8 => 0.05,
        QuantMode::F16 => 2e-3,
    };
    rel * (1.0 + max_abs_logit)
}

/// End-to-end contract over every model variant and both modes, at 1 and 4
/// threads: bounded logit error, >= 90% argmax preservation, quantized
/// file strictly smaller than the exact file.
#[test]
fn quantized_logit_tolerance_all_models() {
    let ctx = wide_ctx(11);
    for (name, model) in all_models(ctx.num_nodes()) {
        let exact_path = temp_path(&format!("{name}-exact"));
        freeze(model.as_ref(), &ctx, "tiny").expect("freeze").save(&exact_path).expect("save");
        let exact_size = std::fs::metadata(&exact_path).expect("stat").len();
        let exact =
            engine_logits(&Engine::new(FrozenModel::load(&exact_path).expect("load")).expect("engine"));
        let max_abs = exact.iter().fold(0.0f32, |m, v| m.max(v.abs()));
        for mode in [QuantMode::I8, QuantMode::F16] {
            let qpath = temp_path(&format!("{name}-{}", mode.as_str()));
            freeze(model.as_ref(), &ctx, "tiny")
                .expect("freeze")
                .quantize(mode)
                .expect("quantize")
                .save(&qpath)
                .expect("save");
            let qsize = std::fs::metadata(&qpath).expect("stat").len();
            assert!(
                qsize < exact_size,
                "{name}/{}: quantized file ({qsize} B) not smaller than exact ({exact_size} B)",
                mode.as_str()
            );
            let frozen = FrozenModel::load(&qpath).expect("load");
            assert!(frozen.is_quantized(), "{name}: round-trip lost quantization");
            let tol = logit_tolerance(mode, max_abs);
            for &threads in &[1usize, 4] {
                lasagne_par::set_threads(threads);
                let q = engine_logits(&Engine::new(FrozenModel::load(&qpath).expect("load")).expect("engine"));
                assert_eq!(q.len(), exact.len(), "{name}: logit count");
                let worst = q
                    .iter()
                    .zip(&exact)
                    .fold(0.0f32, |m, (a, b)| m.max((a - b).abs()));
                assert!(
                    worst <= tol,
                    "{name}/{} @ {threads}t: logit error {worst} exceeds tolerance {tol}",
                    mode.as_str()
                );
                let kept = q
                    .chunks(CLASSES)
                    .zip(exact.chunks(CLASSES))
                    .filter(|(a, b)| argmax(a) == argmax(b))
                    .count();
                let total = q.len() / CLASSES;
                assert!(
                    kept * 10 >= total * 9,
                    "{name}/{} @ {threads}t: argmax preserved on only {kept}/{total} nodes",
                    mode.as_str()
                );
            }
            let _ = std::fs::remove_file(qpath);
        }
        let _ = std::fs::remove_file(exact_path);
    }
    lasagne_par::set_threads(1);
}

/// The fused path (weights stay compressed, dequantized panel-by-panel
/// inside the matmul) must be **bitwise** what materialize-then-matmul
/// computes — same values, same per-element accumulation order, same
/// left-operand density probe.
#[test]
fn fused_dequant_matches_materialized_bitwise() {
    let ctx = wide_ctx(11);
    for mode in [QuantMode::I8, QuantMode::F16] {
        let model = models::Gcn::new(IN_DIM, CLASSES, &wide_hyper(), 5);
        let frozen = freeze(&model, &ctx, "tiny").expect("freeze").quantize(mode).expect("quantize");
        let materialized: Vec<(String, Tensor)> =
            frozen.weights.iter().map(|(n, w)| (n.clone(), w.to_tensor())).collect();
        let want: Vec<u32> = evaluate_program(&frozen.program, &materialized)
            .expect("materialized eval")
            .as_slice()
            .iter()
            .map(|v| v.to_bits())
            .collect();
        for &threads in &[1usize, 4] {
            lasagne_par::set_threads(threads);
            let engine = Engine::new(frozen.clone()).expect("engine");
            let got: Vec<u32> = engine_logits(&engine).iter().map(|v| v.to_bits()).collect();
            assert_eq!(got, want, "{} @ {threads}t: fused != materialized", mode.as_str());
        }
    }
    lasagne_par::set_threads(1);
}

/// Same model quantized twice writes `cmp`-equal files.
#[test]
fn quantized_export_is_byte_deterministic() {
    let ctx = wide_ctx(11);
    let model = models::Gcn::new(IN_DIM, CLASSES, &wide_hyper(), 5);
    let a = temp_path("det-a");
    let b = temp_path("det-b");
    for path in [&a, &b] {
        freeze(&model, &ctx, "tiny")
            .expect("freeze")
            .quantize(QuantMode::I8)
            .expect("quantize")
            .save(path)
            .expect("save");
    }
    let bytes_a = std::fs::read(&a).expect("read a");
    let bytes_b = std::fs::read(&b).expect("read b");
    assert_eq!(bytes_a, bytes_b, "quantized export must be byte-deterministic");
    let _ = std::fs::remove_file(a);
    let _ = std::fs::remove_file(b);
}

/// `quantize` drops the streaming graph binding, and the engine refuses a
/// hand-crafted file carrying both (the §11 exactness contract would
/// silently degrade otherwise).
#[test]
fn quantized_model_has_no_graph_binding_and_engine_rejects_one() {
    let ctx = wide_ctx(11);
    let model = models::Gcn::new(IN_DIM, CLASSES, &wide_hyper(), 5);
    let frozen = freeze(&model, &ctx, "tiny").expect("freeze");
    assert!(frozen.graph.is_some(), "gcn freeze should carry a graph binding");
    let graph = frozen.graph.clone();
    let mut quantized = frozen.quantize(QuantMode::I8).expect("quantize");
    assert!(quantized.graph.is_none(), "quantize must drop the graph binding");
    assert!(
        Engine::new(quantized.clone()).expect("engine").is_quantized(),
        "engine should report quantized"
    );
    quantized.graph = graph;
    match Engine::new(quantized) {
        Ok(_) => panic!("graph + quantized must be rejected"),
        Err(err) => assert!(
            err.to_string().contains("streaming"),
            "rejection should name the streaming contract, got: {err}"
        ),
    }
}

/// Property: per-row i8 round-trip error is bounded by half a quantization
/// step (`scale / 2`), and f16 round-trip error by half an ulp at the
/// value's scale (rel `2^-11`, with an absolute floor below the f16
/// normal range).
#[test]
fn quantization_round_trip_error_bounds() {
    let cfg = Config::cases(24);
    check("quant_round_trip_bounds", &cfg, &dense(1..20, 1..20, -40.0, 40.0), |d| {
        let t = Tensor::from_vec(d.rows, d.cols, d.data.clone()).expect("gen shape");
        let (rows, cols) = t.shape();
        let src = t.as_slice();

        let qi = QuantMatrix::quantize(&t, QuantMode::I8).dequantize();
        for r in 0..rows {
            let row = &src[r * cols..(r + 1) * cols];
            let amax = row.iter().fold(0.0f32, |m, v| m.max(v.abs()));
            let half_step = amax / 127.0 / 2.0 + 1e-6;
            for c in 0..cols {
                let err = (qi.as_slice()[r * cols + c] - row[c]).abs();
                if err > half_step {
                    return Err(format!(
                        "i8 row {r} col {c}: err {err} > half-step {half_step} (amax {amax})"
                    ));
                }
            }
        }

        let qf = QuantMatrix::quantize(&t, QuantMode::F16).dequantize();
        for (i, (&got, &want)) in qf.as_slice().iter().zip(src).enumerate() {
            let bound = (want.abs() * (1.0 / 2048.0)).max(6.2e-5);
            let err = (got - want).abs();
            if err > bound {
                return Err(format!("f16 elem {i}: err {err} > bound {bound} (src {want})"));
            }
        }
        Ok(())
    });
}
