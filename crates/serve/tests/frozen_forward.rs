//! The frozen-path contract: for every model in the stack, exporting the
//! eval forward, saving it, loading it back, and replaying it tape-free
//! must reproduce the training path's eval logits **bitwise** (`to_bits`
//! equality, not tolerance), at 1 and 4 `lasagne-par` threads.
//!
//! This mirrors the model set of the gradcheck sweeps
//! (`crates/gnn/tests/gradcheck_models.rs`,
//! `crates/core/tests/gradcheck_lasagne.rs`): the 13 baselines plus the
//! four Lasagne aggregators. Three of them (GCN, Lasagne-Weighted,
//! Lasagne-MaxPooling) are additionally trained for 2 epochs first, so the
//! round-trip is checked on weights that have actually moved — exercising
//! save → load → bind on non-initialization values.

use std::rc::Rc;

use lasagne_autograd::{Adam, Optimizer, Tape};
use lasagne_core::{AggregatorKind, Lasagne, LasagneConfig};
use lasagne_gnn::{models, GraphContext, Hyper, Mode, NodeClassifier};
use lasagne_graph::generators::{bipartite_user_item, dc_sbm, BipartiteConfig, DcSbmConfig};
use lasagne_serve::{freeze, Engine, FrozenModel};
use lasagne_sparse::EdgeData;
use lasagne_tensor::{Tensor, TensorRng};

const IN_DIM: usize = 6;
const CLASSES: usize = 3;

/// Same 24-node planted-partition context the gradcheck sweeps use.
fn tiny_ctx(seed: u64) -> (GraphContext, Vec<usize>) {
    let mut rng = TensorRng::seed_from_u64(seed);
    let (g, labels) = dc_sbm(
        &DcSbmConfig {
            nodes: 24,
            classes: CLASSES,
            avg_degree: 4.0,
            homophily: 0.9,
            power_exponent: 2.5,
            max_weight_ratio: 20.0,
        },
        &mut rng,
    );
    let features = lasagne_datasets::generate_features(
        &g,
        &labels,
        CLASSES,
        &lasagne_datasets::FeatureConfig {
            dim: IN_DIM,
            signal: 1.5,
            noise_scale: 0.5,
            degree_noise_exponent: 0.3,
            mask_base: 0.0,
        },
        &mut rng,
    );
    let train: Vec<usize> = (0..12).collect();
    (GraphContext::new(&g, features, labels, CLASSES), train)
}

fn tiny_hyper() -> Hyper {
    Hyper {
        hidden: 4,
        depth: 2,
        dropout_keep: 1.0,
        gat_heads: 2,
        appnp_k: 3,
        fastgcn_samples: 24,
        madreg_pairs: 8,
        sgc_k: 2,
        ..Hyper::default()
    }
}

fn lasagne_model(agg: AggregatorKind, n: usize) -> Box<dyn NodeClassifier> {
    let cfg = LasagneConfig::from_hyper(&tiny_hyper(), agg);
    Box::new(Lasagne::new(IN_DIM, CLASSES, Some(n), &cfg, 5))
}

/// Training-path reference: eval-mode logits off a fresh tape.
fn training_path_logits(model: &dyn NodeClassifier, ctx: &GraphContext) -> Vec<u32> {
    let mut rng = TensorRng::seed_from_u64(7);
    let mut tape = Tape::new();
    let out = model.forward(&mut tape, ctx, Mode::Eval, &mut rng);
    tape.value(out.logits).as_slice().iter().map(|v| v.to_bits()).collect()
}

fn temp_path(name: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("lasagne-frozen-{name}-{}.json", std::process::id()))
}

/// Freeze → save → load → evaluate tape-free; assert bitwise logit
/// equality against the tape path at 1 and 4 threads.
fn assert_frozen_matches(name: &str, model: &dyn NodeClassifier, ctx: &GraphContext) {
    let path = temp_path(name);
    freeze(model, ctx, "tiny").expect("freeze").save(&path).expect("save");
    for &threads in &[1usize, 4] {
        lasagne_par::set_threads(threads);
        let reference = training_path_logits(model, ctx);
        let engine = Engine::new(FrozenModel::load(&path).expect("load")).expect("engine");
        assert_eq!(engine.num_nodes(), ctx.num_nodes(), "{name}: node count");
        assert_eq!(engine.num_classes(), CLASSES, "{name}: class count");
        let mut frozen_bits = Vec::with_capacity(reference.len());
        for node in 0..engine.num_nodes() {
            frozen_bits
                .extend(engine.logits_row(node).expect("row").iter().map(|v| v.to_bits()));
        }
        assert_eq!(
            frozen_bits, reference,
            "{name} @ {threads} thread(s): frozen logits differ from the training path"
        );
    }
    let _ = std::fs::remove_file(path);
}

/// Two full-batch Adam epochs — enough to move every weight off its init.
fn train_epochs(model: &mut dyn NodeClassifier, ctx: &GraphContext, train: &[usize], epochs: usize) {
    let labels = Rc::new((*ctx.labels).clone());
    let idx = Rc::new(train.to_vec());
    let mut opt = Adam::new(model.store(), 0.01, 5e-4);
    let mut rng = TensorRng::seed_from_u64(3);
    for _ in 0..epochs {
        let mut tape = Tape::new();
        let out = model.forward(&mut tape, ctx, Mode::Train, &mut rng);
        let lp = tape.log_softmax(out.logits);
        let mut loss = tape.nll_masked(lp, labels.clone(), idx.clone());
        if let Some(reg) = out.regularizer {
            loss = tape.add(loss, reg);
        }
        model.store_mut().zero_grads();
        tape.backward(loss, model.store_mut());
        opt.step(model.store_mut());
    }
}

macro_rules! frozen_matches {
    ($test:ident, $ty:ident) => {
        #[test]
        fn $test() {
            let (ctx, _) = tiny_ctx(11);
            let model = models::$ty::new(IN_DIM, CLASSES, &tiny_hyper(), 5);
            assert_frozen_matches(stringify!($ty), &model, &ctx);
        }
    };
}

frozen_matches!(gcn_frozen_bitwise, Gcn);
frozen_matches!(resgcn_frozen_bitwise, ResGcn);
frozen_matches!(densegcn_frozen_bitwise, DenseGcn);
frozen_matches!(jknet_frozen_bitwise, JkNet);
frozen_matches!(gat_frozen_bitwise, Gat);
frozen_matches!(sgc_frozen_bitwise, Sgc);
frozen_matches!(appnp_frozen_bitwise, Appnp);
frozen_matches!(mixhop_frozen_bitwise, MixHop);
frozen_matches!(dropedge_frozen_bitwise, DropEdgeGcn);
frozen_matches!(pairnorm_frozen_bitwise, PairNormGcn);
frozen_matches!(madreg_frozen_bitwise, MadRegGcn);
frozen_matches!(graphsage_frozen_bitwise, GraphSage);
frozen_matches!(fastgcn_frozen_bitwise, FastGcn);

#[test]
fn lasagne_weighted_frozen_bitwise() {
    let (ctx, _) = tiny_ctx(11);
    let model = lasagne_model(AggregatorKind::Weighted, ctx.num_nodes());
    assert_frozen_matches("Lasagne-Weighted", model.as_ref(), &ctx);
}

#[test]
fn lasagne_stochastic_frozen_bitwise() {
    let (ctx, _) = tiny_ctx(11);
    let model = lasagne_model(AggregatorKind::Stochastic, ctx.num_nodes());
    assert_frozen_matches("Lasagne-Stochastic", model.as_ref(), &ctx);
}

#[test]
fn lasagne_maxpool_frozen_bitwise() {
    let (ctx, _) = tiny_ctx(11);
    let model = lasagne_model(AggregatorKind::MaxPooling, ctx.num_nodes());
    assert_frozen_matches("Lasagne-MaxPooling", model.as_ref(), &ctx);
}

#[test]
fn lasagne_mean_frozen_bitwise() {
    let (ctx, _) = tiny_ctx(11);
    let model = lasagne_model(AggregatorKind::Mean, ctx.num_nodes());
    assert_frozen_matches("Lasagne-Mean", model.as_ref(), &ctx);
}

#[test]
fn trained_gcn_frozen_bitwise() {
    let (ctx, train) = tiny_ctx(11);
    let mut model = models::Gcn::new(IN_DIM, CLASSES, &tiny_hyper(), 5);
    train_epochs(&mut model, &ctx, &train, 2);
    assert_frozen_matches("Gcn-trained", &model, &ctx);
}

#[test]
fn trained_lasagne_weighted_frozen_bitwise() {
    let (ctx, train) = tiny_ctx(11);
    let mut model = lasagne_model(AggregatorKind::Weighted, ctx.num_nodes());
    train_epochs(model.as_mut(), &ctx, &train, 2);
    assert_frozen_matches("Lasagne-Weighted-trained", model.as_ref(), &ctx);
}

#[test]
fn trained_lasagne_maxpool_frozen_bitwise() {
    let (ctx, train) = tiny_ctx(11);
    let mut model = lasagne_model(AggregatorKind::MaxPooling, ctx.num_nodes());
    train_epochs(model.as_mut(), &ctx, &train, 2);
    assert_frozen_matches("Lasagne-MaxPooling-trained", model.as_ref(), &ctx);
}

/// Bipartite user–item context with per-edge (rating, recency) features —
/// the edge-gated model's native habitat. Same attribute encoding as
/// `lasagne_datasets::RecDataset`.
fn tiny_edge_ctx(seed: u64) -> (GraphContext, Vec<usize>) {
    let mut rng = TensorRng::seed_from_u64(seed);
    let items = 18usize;
    let buckets = 4usize;
    let b = bipartite_user_item(
        &BipartiteConfig {
            items,
            users: 12,
            classes: CLASSES,
            avg_user_degree: 3.0,
            popularity_exponent: 2.0,
            user_focus: 0.8,
            time_buckets: buckets,
        },
        &mut rng,
    );
    let n = b.graph.num_nodes();
    let centroids = rng.normal_tensor(CLASSES, IN_DIM, 0.0, 0.6);
    let mut features = Tensor::zeros(n, IN_DIM);
    let mut labels = vec![0usize; n];
    for v in 0..n {
        labels[v] = if v < items { b.item_labels[v] } else { b.user_prefs[v - items] };
        for (x, &mu) in features.row_mut(v).iter_mut().zip(centroids.row(labels[v])) {
            *x = mu + 0.3 * rng.normal();
        }
    }
    let attrs: std::collections::HashMap<(u32, u32), (u8, u8)> = b
        .interactions
        .iter()
        .enumerate()
        .map(|(e, &(i, u))| ((i, u), (b.edge_ratings[e], b.edge_time_buckets[e])))
        .collect();
    let edges = EdgeData::for_csr(b.graph.adjacency(), 2, |r, c, out| {
        let key = if (r as usize) < items { (r, c) } else { (c, r) };
        let (rating, bucket) = attrs[&key];
        out[0] = (rating as f32 - 3.0) / 2.0;
        out[1] = bucket as f32 / (buckets - 1) as f32 - 0.5;
    });
    let ctx = GraphContext::with_edge_data(&b.graph, features, labels, CLASSES, &edges)
        .expect("edge data aligned by construction");
    (ctx, (0..items / 2).collect())
}

#[test]
fn edgegated_frozen_bitwise() {
    let (ctx, _) = tiny_edge_ctx(11);
    let model = models::EdgeGatedGcn::new(IN_DIM, CLASSES, 2, &tiny_hyper(), 5);
    assert_frozen_matches("EdgeGatedGCN", &model, &ctx);
}

#[test]
fn trained_edgegated_frozen_bitwise() {
    let (ctx, train) = tiny_edge_ctx(11);
    let mut model = models::EdgeGatedGcn::new(IN_DIM, CLASSES, 2, &tiny_hyper(), 5);
    train_epochs(&mut model, &ctx, &train, 2);
    assert_frozen_matches("EdgeGatedGCN-trained", &model, &ctx);
}

#[test]
fn same_model_exports_byte_identical_files() {
    let (ctx, _) = tiny_ctx(11);
    let model = models::Gcn::new(IN_DIM, CLASSES, &tiny_hyper(), 5);
    let a = temp_path("det-a");
    let b = temp_path("det-b");
    freeze(&model, &ctx, "tiny").expect("freeze a").save(&a).expect("save a");
    freeze(&model, &ctx, "tiny").expect("freeze b").save(&b).expect("save b");
    let bytes_a = std::fs::read(&a).expect("read a");
    let bytes_b = std::fs::read(&b).expect("read b");
    assert_eq!(bytes_a, bytes_b, "export must be byte-deterministic");
    let _ = std::fs::remove_file(a);
    let _ = std::fs::remove_file(b);
}
