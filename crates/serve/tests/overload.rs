//! Chaos suite for the overload contract (DESIGN.md §12). The server under
//! test gets floods past its admission queue, requests that expire in the
//! queue, oversized and trickled request lines, silent campers, connection
//! storms, mid-request hangups, a 10k-line protocol fuzz, and a hot model
//! swap in the middle of a flood — and must answer every single line with a
//! typed response, keep the health fast path responsive, stamp every answer
//! with exactly the model version that computed it, and drain cleanly on
//! shutdown.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use lasagne_gnn::{models, GraphContext, Hyper};
use lasagne_graph::generators::{dc_sbm, DcSbmConfig};
use lasagne_serve::{freeze, Client, Engine, FrozenModel, Request, Server, ServerConfig};
use lasagne_tensor::TensorRng;
use lasagne_testkit::chaos;
use lasagne_testkit::{Json, Rng};

const IN_DIM: usize = 6;
const CLASSES: usize = 3;
const NODES: usize = 24;

/// Same 24-node dc_sbm fixture as `server_robustness.rs`; `weight_seed`
/// picks the GCN's init so two seeds give two genuinely different models
/// for the hot-swap checks.
fn tiny_frozen(weight_seed: u64) -> FrozenModel {
    let mut rng = TensorRng::seed_from_u64(11);
    let (g, labels) = dc_sbm(
        &DcSbmConfig {
            nodes: NODES,
            classes: CLASSES,
            avg_degree: 4.0,
            homophily: 0.9,
            power_exponent: 2.5,
            max_weight_ratio: 20.0,
        },
        &mut rng,
    );
    let features = lasagne_datasets::generate_features(
        &g,
        &labels,
        CLASSES,
        &lasagne_datasets::FeatureConfig {
            dim: IN_DIM,
            signal: 1.5,
            noise_scale: 0.5,
            degree_noise_exponent: 0.3,
            mask_base: 0.0,
        },
        &mut rng,
    );
    let ctx = GraphContext::new(&g, features, labels, CLASSES);
    let hyper = Hyper { hidden: 4, depth: 2, dropout_keep: 1.0, ..Hyper::default() };
    let model = models::Gcn::new(IN_DIM, CLASSES, &hyper, weight_seed);
    freeze(&model, &ctx, "tiny").expect("freeze")
}

fn start_with(config: ServerConfig) -> (Server, String) {
    let engine = Engine::new(tiny_frozen(5)).expect("engine");
    let server = Server::start(engine, config).expect("server start");
    let addr = server.local_addr().to_string();
    (server, addr)
}

fn tight_config() -> ServerConfig {
    ServerConfig { addr: "127.0.0.1:0".into(), debug_ops: true, ..ServerConfig::default() }
}

fn error_field(doc: &Json, field: &str) -> Option<f64> {
    doc.get("error").and_then(|e| e.get(field)).and_then(Json::as_f64)
}

fn error_kind(doc: &Json) -> String {
    doc.get("error")
        .and_then(|e| e.get("kind"))
        .and_then(Json::as_str)
        .unwrap_or("<missing>")
        .to_string()
}

fn assert_healthy(addr: &str) {
    let mut client = Client::connect(addr).expect("connect for health");
    let health = client.call_ok(&Request::Health).expect("health after abuse");
    assert!(health.get("status").and_then(Json::as_str).is_some());
    let pred = client.call_ok(&Request::Predict { node: 1 }).expect("predict after abuse");
    let probs = pred.get("probs").and_then(Json::to_f32s).expect("probs");
    assert_eq!(probs.len(), CLASSES);
}

/// Park the batcher in a `debug_sleep` so the admission queue can be
/// filled deterministically; returns the sleeper's thread.
fn stall_batcher(addr: &str, ms: u64) -> std::thread::JoinHandle<()> {
    let addr = addr.to_string();
    let handle = std::thread::spawn(move || {
        let mut c = Client::connect(&addr).expect("sleeper connect");
        c.call_ok(&Request::DebugSleep { ms }).expect("debug_sleep ack");
    });
    // Long enough for the batcher to have dequeued the sleeper, so the
    // jobs queued next sit behind it rather than beside it.
    std::thread::sleep(Duration::from_millis(150));
    handle
}

#[test]
fn full_queue_sheds_typed_overloaded_with_retry_hint() {
    let (_server, addr) = start_with(ServerConfig {
        queue_capacity: 2,
        max_batch: 1,
        deadline_ms: 0,
        ..tight_config()
    });
    let sleeper = stall_batcher(&addr, 800);
    // Fill the 2-slot queue behind the sleeping batcher.
    let fillers: Vec<_> = (0..2)
        .map(|i| {
            let addr = addr.clone();
            std::thread::spawn(move || {
                let mut c = Client::connect(&addr).expect("filler connect");
                c.call_ok(&Request::Predict { node: i }).expect("queued predict succeeds")
            })
        })
        .collect();
    std::thread::sleep(Duration::from_millis(150));
    // Queue is full: this one must be shed immediately, not block.
    let mut client = Client::connect(&addr).expect("connect");
    let t = Instant::now();
    let doc = client.call(&Request::Predict { node: 3 }).expect("shed response");
    assert!(t.elapsed() < Duration::from_millis(300), "shed must be immediate, not queued");
    assert_eq!(doc.get("ok").and_then(Json::as_bool), Some(false));
    assert_eq!(error_kind(&doc), "overloaded");
    let hint = error_field(&doc, "retry_after_ms").expect("structured retry_after_ms");
    assert!(hint >= 1.0, "retry hint must be at least 1 ms, got {hint}");
    // While shedding, health must say degraded (queue full + recent shed).
    let health = client.call_ok(&Request::Health).expect("health while overloaded");
    assert_eq!(health.get("status").and_then(Json::as_str), Some("degraded"));
    // The queued work itself still completes once the batcher wakes.
    for f in fillers {
        f.join().expect("filler thread");
    }
    sleeper.join().expect("sleeper thread");
    assert_healthy(&addr);
}

#[test]
fn expired_jobs_answer_deadline_exceeded_with_version() {
    let (_server, addr) = start_with(ServerConfig {
        deadline_ms: 100,
        max_batch: 1,
        ..tight_config()
    });
    let sleeper = stall_batcher(&addr, 500);
    // Queued behind a 500 ms sleep with a 100 ms deadline: must expire.
    let mut client = Client::connect(&addr).expect("connect");
    let doc = client.call(&Request::Predict { node: 0 }).expect("expired response");
    assert_eq!(doc.get("ok").and_then(Json::as_bool), Some(false));
    assert_eq!(error_kind(&doc), "deadline_exceeded");
    assert_eq!(error_field(&doc, "deadline_ms"), Some(100.0));
    let waited = error_field(&doc, "waited_ms").expect("structured waited_ms");
    assert!(waited >= 100.0, "an expired job waited at least its deadline, got {waited}");
    // The drop is stamped by the batcher, so it carries the model version.
    assert_eq!(doc.get("model_version").and_then(Json::as_usize), Some(1));
    sleeper.join().expect("sleeper thread");
    assert_healthy(&addr);
}

#[test]
fn oversized_request_line_is_typed_then_the_connection_closes() {
    let (_server, addr) = start_with(ServerConfig {
        max_request_bytes: 256,
        debug_ops: false,
        ..tight_config()
    });
    let mut stream = TcpStream::connect(&addr).expect("connect");
    let big = format!("{{\"op\":\"predict\",\"pad\":\"{}\"}}\n", "x".repeat(1000));
    stream.write_all(big.as_bytes()).expect("send oversized line");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let mut line = String::new();
    reader.read_line(&mut line).expect("typed response before close");
    let doc = Json::parse(line.trim_end()).expect("response parses");
    assert_eq!(doc.get("ok").and_then(Json::as_bool), Some(false));
    assert_eq!(error_kind(&doc), "request_too_large");
    assert_eq!(error_field(&doc, "limit"), Some(256.0));
    // Framing is lost, so the server must close: next read is EOF.
    line.clear();
    let n = reader.read_line(&mut line).expect("read after refusal");
    assert_eq!(n, 0, "connection must be closed after request_too_large");
    assert_healthy(&addr);
}

#[test]
fn connection_cap_refuses_the_excess_typed() {
    let (_server, addr) = start_with(ServerConfig {
        max_connections: 2,
        debug_ops: false,
        ..tight_config()
    });
    let mut c1 = Client::connect(&addr).expect("c1");
    let mut c2 = Client::connect(&addr).expect("c2");
    c1.call_ok(&Request::Health).expect("c1 live");
    c2.call_ok(&Request::Health).expect("c2 live");
    // Third connection: typed refusal, then close.
    let stream = TcpStream::connect(&addr).expect("c3 tcp connect");
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    reader.read_line(&mut line).expect("refusal line");
    let doc = Json::parse(line.trim_end()).expect("refusal parses");
    assert_eq!(error_kind(&doc), "too_many_connections");
    assert_eq!(error_field(&doc, "limit"), Some(2.0));
    line.clear();
    assert_eq!(reader.read_line(&mut line).expect("post-refusal read"), 0);
    // Freeing a slot re-admits: drop c2, its reader notices EOF within a
    // poll tick, and a fresh connect succeeds.
    drop(c2);
    let mut c4 = Client::connect_with_retry(&addr, 8, 50, 7).expect("slot freed");
    c4.call_ok(&Request::Health).expect("c4 live");
    c1.call_ok(&Request::Health).expect("c1 still live");
}

#[test]
fn slowloris_is_bounded_by_the_line_cap() {
    let (_server, addr) = start_with(ServerConfig {
        max_request_bytes: 128,
        poll_interval_ms: 20,
        debug_ops: false,
        ..tight_config()
    });
    // Trickle 1 byte/ms, never sending a newline. At byte 129 the server
    // answers request_too_large and closes (after its bounded linger); the
    // trickler must observe the close long before its 4096-byte payload
    // runs out.
    let payload = vec![b'a'; 4096];
    let (sent, outcome) =
        chaos::slow_sender(&addr, &payload, Duration::from_millis(1)).expect("slow send");
    assert_eq!(
        outcome,
        chaos::SlowSendOutcome::ServerClosed,
        "server must cut a slowloris off (got {sent} bytes through)"
    );
    assert_healthy(&addr);
}

#[test]
fn silent_idle_connections_are_reaped() {
    let (server, addr) = start_with(ServerConfig {
        idle_timeout_ms: 200,
        poll_interval_ms: 50,
        debug_ops: false,
        ..tight_config()
    });
    let reaped = chaos::silent_camper(&addr, Duration::from_secs(3)).expect("camper");
    assert!(reaped, "a connection silent past idle_timeout_ms must be closed");
    // The reaped camper no longer counts against the connection gauge.
    std::thread::sleep(Duration::from_millis(100));
    let stats = server.stats();
    assert_eq!(stats.connections, 0, "reaped connections must release their slot");
    assert_healthy(&addr);
}

#[test]
fn mid_request_disconnects_leak_nothing() {
    let (server, addr) = start_with(ServerConfig { debug_ops: false, ..tight_config() });
    for i in 0..20 {
        chaos::drop_mid_request(&addr, "{\"op\":\"pre").unwrap_or_else(|e| panic!("drop {i}: {e}"));
    }
    assert_healthy(&addr);
    // Torn connections must fully release their reader slots.
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        if server.stats().connections == 0 {
            break;
        }
        assert!(Instant::now() < deadline, "{} connections leaked", server.stats().connections);
        std::thread::sleep(Duration::from_millis(50));
    }
}

#[test]
fn health_fast_path_answers_while_the_queue_is_full() {
    let (_server, addr) = start_with(ServerConfig {
        queue_capacity: 2,
        max_batch: 1,
        deadline_ms: 0,
        ..tight_config()
    });
    let sleeper = stall_batcher(&addr, 700);
    let fillers: Vec<_> = (0..2)
        .map(|i| {
            let addr = addr.clone();
            std::thread::spawn(move || {
                let mut c = Client::connect(&addr).expect("filler connect");
                c.call_ok(&Request::Predict { node: i }).expect("queued predict")
            })
        })
        .collect();
    std::thread::sleep(Duration::from_millis(150));
    // Queue full, batcher asleep — health and stats must still answer
    // immediately because control ops never enter the model-work queue.
    let mut probe = Client::connect(&addr).expect("probe connect");
    probe.set_timeout(Some(Duration::from_millis(500))).expect("probe deadline");
    for _ in 0..20 {
        let t = Instant::now();
        let health = probe.call_ok(&Request::Health).expect("health under load");
        assert!(
            t.elapsed() < Duration::from_millis(250),
            "health stalled {:?} behind model work",
            t.elapsed()
        );
        assert_eq!(health.get("status").and_then(Json::as_str), Some("degraded"));
        assert_eq!(health.get("queue_depth").and_then(Json::as_usize), Some(2));
        let stats = probe.call_ok(&Request::Stats).expect("stats under load");
        assert_eq!(stats.get("queue_depth").and_then(Json::as_usize), Some(2));
    }
    for f in fillers {
        f.join().expect("filler");
    }
    sleeper.join().expect("sleeper");
    assert_healthy(&addr);
}

#[test]
fn stats_surfaces_shed_expired_and_swap_counters_over_the_wire() {
    let dir = std::env::temp_dir();
    let path = dir.join(format!("lasagne-overload-stats-{}.json", std::process::id()));
    tiny_frozen(6).save(&path).expect("save swap target");
    let (server, addr) = start_with(ServerConfig {
        queue_capacity: 1,
        max_batch: 1,
        deadline_ms: 80,
        ..tight_config()
    });
    let sleeper = stall_batcher(&addr, 600);
    // One job fills the 1-slot queue (and will expire), the next is shed.
    let expired = {
        let addr = addr.clone();
        std::thread::spawn(move || {
            let mut c = Client::connect(&addr).expect("expired connect");
            c.call(&Request::Predict { node: 0 }).expect("expired response")
        })
    };
    std::thread::sleep(Duration::from_millis(150));
    let mut client = Client::connect(&addr).expect("connect");
    let shed = client.call(&Request::Predict { node: 1 }).expect("shed response");
    assert_eq!(error_kind(&shed), "overloaded");
    assert_eq!(error_kind(&expired.join().expect("expired thread")), "deadline_exceeded");
    sleeper.join().expect("sleeper");
    let v2 = server.swap(&path).expect("swap");
    assert_eq!(v2, 2);
    // Swap installs at the next batch boundary; poke it and poll.
    let deadline = Instant::now() + Duration::from_secs(5);
    while server.model_version() != 2 {
        assert!(Instant::now() < deadline, "swap never installed");
        std::thread::sleep(Duration::from_millis(20));
    }
    let doc = client.call_ok(&Request::Stats).expect("stats");
    assert!(doc.get("shed").and_then(Json::as_usize).unwrap_or(0) >= 1);
    assert!(doc.get("expired").and_then(Json::as_usize).unwrap_or(0) >= 1);
    assert_eq!(doc.get("swaps").and_then(Json::as_usize), Some(1));
    assert_eq!(doc.get("model_version").and_then(Json::as_usize), Some(2));
    assert!(doc.get("connections").and_then(Json::as_usize).unwrap_or(0) >= 1);
    assert!(doc.get("queue_depth").and_then(Json::as_usize).is_some());
    let _ = std::fs::remove_file(path);
}

#[test]
fn swap_model_verb_swaps_and_bad_paths_fail_typed() {
    let dir = std::env::temp_dir();
    let path = dir.join(format!("lasagne-overload-verb-{}.json", std::process::id()));
    tiny_frozen(6).save(&path).expect("save swap target");
    let (server, addr) = start_with(ServerConfig { debug_ops: false, ..tight_config() });
    let mut client = Client::connect(&addr).expect("connect");
    // A bad path fails typed at load time and changes nothing.
    let bad = client.call(&Request::SwapModel { path: "/nonexistent/m.json".into() }).expect("bad");
    assert_eq!(bad.get("ok").and_then(Json::as_bool), Some(false));
    assert_eq!(error_kind(&bad), "io");
    assert_eq!(server.model_version(), 1);
    // The verb: ack names the pending version...
    let ack = client.swap_model(path.to_str().expect("utf8 path")).expect("swap_model");
    assert_eq!(ack.get("status").and_then(Json::as_str), Some("pending"));
    assert_eq!(ack.get("model_version").and_then(Json::as_usize), Some(2));
    // ...and after installation every prediction is the new model's,
    // bitwise equal to a cold engine on the same file.
    let cold = Engine::load_path(&path).expect("cold engine");
    let deadline = Instant::now() + Duration::from_secs(5);
    while server.model_version() != 2 {
        assert!(Instant::now() < deadline, "swap never installed");
        std::thread::sleep(Duration::from_millis(20));
    }
    for node in 0..NODES {
        let doc = client.call_ok(&Request::Predict { node }).expect("predict after swap");
        assert_eq!(doc.get("model_version").and_then(Json::as_usize), Some(2));
        let wire: Vec<u32> = doc
            .get("probs")
            .and_then(Json::to_f32s)
            .expect("probs")
            .iter()
            .map(|v| v.to_bits())
            .collect();
        let local: Vec<u32> =
            cold.predict(node).expect("cold predict").probs.iter().map(|v| v.to_bits()).collect();
        assert_eq!(wire, local, "node {node}: swapped model must match a cold load bitwise");
    }
    let _ = std::fs::remove_file(path);
}

/// The headline atomicity test: hot-swap in the middle of a multi-client
/// flood. Every single response must carry exactly one model version, and
/// its probabilities must be bitwise what a cold engine on *that* version
/// computes — no torn batches, no mixed weights, no version skew.
#[test]
fn hot_swap_mid_flood_is_atomic_and_bitwise_versioned() {
    let dir = std::env::temp_dir();
    let path_b = dir.join(format!("lasagne-overload-swap-{}.json", std::process::id()));
    tiny_frozen(6).save(&path_b).expect("save model B");
    let cold_a = Engine::new(tiny_frozen(5)).expect("cold A");
    let cold_b = Engine::load_path(&path_b).expect("cold B");
    // The check below is vacuous if A and B happen to agree; prove they don't.
    assert_ne!(
        cold_a.predict(0).expect("a").probs[0].to_bits(),
        cold_b.predict(0).expect("b").probs[0].to_bits(),
        "fixture models must differ for the swap test to mean anything"
    );

    let (server, addr) = start_with(ServerConfig {
        max_batch: 8,
        deadline_ms: 0,
        debug_ops: false,
        ..tight_config()
    });
    let stop = Arc::new(AtomicBool::new(false));
    let floods: Vec<_> = (0..4)
        .map(|t| {
            let addr = addr.clone();
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut client = Client::connect(&addr).expect("flood connect");
                let mut seen: Vec<(u64, usize, Vec<u32>)> = Vec::new();
                let mut i = t;
                while !stop.load(Ordering::Relaxed) {
                    let node = i % NODES;
                    i += 1;
                    let doc = client.call_ok(&Request::Predict { node }).expect("flood predict");
                    let version =
                        doc.get("model_version").and_then(Json::as_usize).expect("version stamp");
                    let bits: Vec<u32> = doc
                        .get("probs")
                        .and_then(Json::to_f32s)
                        .expect("probs")
                        .iter()
                        .map(|v| v.to_bits())
                        .collect();
                    seen.push((version as u64, node, bits));
                }
                seen
            })
        })
        .collect();
    // Let version-1 traffic accumulate, swap, then let version-2 traffic
    // accumulate. The swap itself loads + propagates on this thread while
    // the flood keeps being answered.
    std::thread::sleep(Duration::from_millis(100));
    let v2 = server.swap(&path_b).expect("swap mid-flood");
    assert_eq!(v2, 2);
    let deadline = Instant::now() + Duration::from_secs(10);
    while server.model_version() != 2 {
        assert!(Instant::now() < deadline, "swap never installed mid-flood");
        std::thread::sleep(Duration::from_millis(10));
    }
    std::thread::sleep(Duration::from_millis(150));
    stop.store(true, Ordering::Relaxed);

    let mut v1 = 0u64;
    let mut v2_seen = 0u64;
    for flood in floods {
        for (version, node, bits) in flood.join().expect("flood thread") {
            let reference = match version {
                1 => {
                    v1 += 1;
                    &cold_a
                }
                2 => {
                    v2_seen += 1;
                    &cold_b
                }
                other => panic!("response stamped with unknown version {other}"),
            };
            let local: Vec<u32> = reference
                .predict(node)
                .expect("reference predict")
                .probs
                .iter()
                .map(|v| v.to_bits())
                .collect();
            assert_eq!(
                bits, local,
                "node {node} @ v{version}: response does not match that version's cold engine"
            );
        }
    }
    assert!(v1 > 0, "flood never observed the old model");
    assert!(v2_seen > 0, "flood never observed the new model");
    assert_eq!(server.stats().swaps, 1);
    let _ = std::fs::remove_file(path_b);
}

/// 10k PRNG lines — valid requests, near-miss mutations, garbage, and
/// oversized lines — and the server owes a well-formed JSON response with
/// an `ok` bool (plus a typed `error.kind` when false) for every one.
/// Never a hang, never a panic, never a silent drop.
#[test]
fn protocol_fuzz_10k_lines_every_response_is_typed() {
    const MAX_BYTES: usize = 2048;
    let (_server, addr) = start_with(ServerConfig {
        max_request_bytes: MAX_BYTES,
        deadline_ms: 0,
        debug_ops: false,
        ..tight_config()
    });
    let mut rng = Rng::seed_from_u64(0xC0FFEE);
    let valid_pool = |rng: &mut Rng| -> String {
        match rng.index(7) {
            0 => Request::Predict { node: rng.index(NODES * 2) }.to_line(),
            1 => Request::TopK { node: rng.index(NODES * 2), k: rng.range_usize(1, 6) }.to_line(),
            2 => Request::Health.to_line(),
            3 => Request::Stats.to_line(),
            4 => Request::AddEdge { u: rng.index(NODES), v: rng.index(NODES) }.to_line(),
            5 => Request::RemoveEdge { u: rng.index(NODES), v: rng.index(NODES) }.to_line(),
            _ => {
                let n = if rng.bernoulli(0.5) { IN_DIM } else { rng.index(3) };
                Request::AddNode { features: vec![0.25; n] }.to_line()
            }
        }
    };
    let mut client = Client::connect(&addr).expect("connect");
    client.set_timeout(Some(Duration::from_secs(10))).expect("fuzz deadline");
    let mut reconnects = 0u32;
    for i in 0..10_000 {
        let line = match rng.index(4) {
            0 => valid_pool(&mut rng),
            1 => {
                let base = valid_pool(&mut rng);
                chaos::mutate_line(&mut rng, &base)
            }
            2 => chaos::garbage_line(&mut rng, 200),
            // Oversized on purpose, ~1 in 40 lines.
            _ if rng.bernoulli(0.1) => chaos::garbage_line(&mut rng, MAX_BYTES * 2).repeat(3),
            _ => chaos::garbage_line(&mut rng, 200),
        };
        let response = client
            .roundtrip_raw(&line)
            .unwrap_or_else(|e| panic!("iteration {i}: no response ({e}) for line {line:?}"));
        let doc = Json::parse(&response)
            .unwrap_or_else(|e| panic!("iteration {i}: unparseable response {response:?}: {e}"));
        let ok = doc
            .get("ok")
            .and_then(Json::as_bool)
            .unwrap_or_else(|| panic!("iteration {i}: response without ok bool: {response:?}"));
        if !ok {
            let kind = error_kind(&doc);
            assert_ne!(kind, "<missing>", "iteration {i}: untyped failure {response:?}");
            assert_ne!(kind, "internal", "iteration {i}: fuzz line caused a panic: {line:?}");
            if kind == "request_too_large" {
                // Framing is gone; the server closed us. Reconnect.
                reconnects += 1;
                client = Client::connect(&addr).expect("reconnect after oversize");
                client.set_timeout(Some(Duration::from_secs(10))).expect("fuzz deadline");
            }
        }
    }
    assert!(reconnects > 0, "fuzz never exercised the oversized-line path");
    assert_healthy(&addr);
}

/// Graceful drain: jobs already admitted when shutdown starts still get
/// real answers; `shutdown()` joins without abandoning them.
#[test]
fn graceful_shutdown_drains_admitted_work() {
    let (server, addr) = start_with(ServerConfig {
        max_batch: 1,
        deadline_ms: 0,
        ..tight_config()
    });
    let sleeper = stall_batcher(&addr, 400);
    let queued: Vec<_> = (0..10)
        .map(|i| {
            let addr = addr.clone();
            std::thread::spawn(move || {
                let mut c = Client::connect(&addr).expect("queued connect");
                c.call(&Request::Predict { node: i % NODES }).expect("queued response")
            })
        })
        .collect();
    std::thread::sleep(Duration::from_millis(150));
    // Shutdown with 10 admitted jobs behind a sleeping batcher: all of
    // them must drain with real answers before the join returns.
    server.shutdown();
    for (i, thread) in queued.into_iter().enumerate() {
        let doc = thread.join().expect("queued thread");
        assert_eq!(
            doc.get("ok").and_then(Json::as_bool),
            Some(true),
            "admitted job {i} was abandoned during drain: {doc:?}"
        );
    }
    sleeper.join().expect("sleeper");
    // After the drain, new model work is refused typed (reader threads
    // outlive the drain to answer exactly this way).
    let mut late = Client::connect_with_retry(&addr, 3, 20, 9);
    if let Ok(client) = late.as_mut() {
        if let Ok(doc) = client.call(&Request::Predict { node: 0 }) {
            assert_eq!(error_kind(&doc), "draining");
        }
    }
}

/// `connect_with_retry` survives a server that binds late, and its jittered
/// schedule is deterministic per seed.
#[test]
fn connect_with_retry_rides_out_a_late_binding_server() {
    // Reserve a port, release it, then bind it again after a delay.
    let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("reserve");
    let addr = listener.local_addr().expect("addr").to_string();
    drop(listener);
    let addr_for_server = addr.clone();
    let server_thread = std::thread::spawn(move || {
        std::thread::sleep(Duration::from_millis(300));
        let engine = Engine::new(tiny_frozen(5)).expect("engine");
        Server::start(engine, ServerConfig { addr: addr_for_server, ..ServerConfig::default() })
            .expect("late server")
    });
    // Plain connect fails immediately; the retrying connect hangs on.
    assert!(Client::connect(&addr).is_err(), "port must be closed at first");
    let mut client =
        Client::connect_with_retry(&addr, 10, 50, 42).expect("retry outlasts the bind delay");
    let server = server_thread.join().expect("server thread");
    client.call_ok(&Request::Health).expect("health over retried connection");
    server.shutdown();
}
