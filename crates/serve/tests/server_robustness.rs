//! Fault-injection suite for the TCP server and the frozen-file loader.
//! The contract under test: no request — however malformed, out of range,
//! or deliberately panicking — may take the server down. After every abuse
//! the same server must still answer `health` and serve correct
//! predictions. Frozen files, in turn, must fail *typed* (corrupt / parse
//! / mismatch), never by panicking or by silently serving garbage.

use std::io::Write;
use std::net::TcpStream;

use lasagne_gnn::{models, GraphContext, Hyper};
use lasagne_graph::generators::{dc_sbm, DcSbmConfig};
use lasagne_serve::{freeze, Client, Engine, FrozenModel, Request, Server, ServerConfig};
use lasagne_tensor::TensorRng;
use lasagne_testkit::Json;

const IN_DIM: usize = 6;
const CLASSES: usize = 3;
const NODES: usize = 24;

fn tiny_frozen() -> lasagne_serve::FrozenModel {
    let mut rng = TensorRng::seed_from_u64(11);
    let (g, labels) = dc_sbm(
        &DcSbmConfig {
            nodes: NODES,
            classes: CLASSES,
            avg_degree: 4.0,
            homophily: 0.9,
            power_exponent: 2.5,
            max_weight_ratio: 20.0,
        },
        &mut rng,
    );
    let features = lasagne_datasets::generate_features(
        &g,
        &labels,
        CLASSES,
        &lasagne_datasets::FeatureConfig {
            dim: IN_DIM,
            signal: 1.5,
            noise_scale: 0.5,
            degree_noise_exponent: 0.3,
            mask_base: 0.0,
        },
        &mut rng,
    );
    let ctx = GraphContext::new(&g, features, labels, CLASSES);
    let hyper = Hyper { hidden: 4, depth: 2, dropout_keep: 1.0, ..Hyper::default() };
    let model = models::Gcn::new(IN_DIM, CLASSES, &hyper, 5);
    freeze(&model, &ctx, "tiny").expect("freeze")
}

fn start_server(debug_ops: bool) -> (Server, String) {
    let engine = Engine::new(tiny_frozen()).expect("engine");
    let server = Server::start(
        engine,
        ServerConfig { addr: "127.0.0.1:0".into(), debug_ops, ..ServerConfig::default() },
    )
    .expect("server start");
    let addr = server.local_addr().to_string();
    (server, addr)
}

fn error_kind(doc: &Json) -> String {
    doc.get("error")
        .and_then(|e| e.get("kind"))
        .and_then(Json::as_str)
        .unwrap_or("<missing>")
        .to_string()
}

fn assert_healthy(addr: &str) {
    let mut client = Client::connect(addr).expect("connect for health");
    let health = client.call_ok(&Request::Health).expect("health after abuse");
    assert_eq!(health.get("num_nodes").and_then(Json::as_usize), Some(NODES));
    let pred = client.call_ok(&Request::Predict { node: 1 }).expect("predict after abuse");
    let probs = pred.get("probs").and_then(Json::to_f32s).expect("probs");
    assert_eq!(probs.len(), CLASSES);
    assert!((probs.iter().sum::<f32>() - 1.0).abs() < 1e-3, "probs must stay normalized");
}

#[test]
fn garbage_json_gets_a_typed_error_on_a_live_connection() {
    let (_server, addr) = start_server(false);
    let mut client = Client::connect(&addr).expect("connect");
    let response = client.roundtrip_raw("{\"op\": \"predict\", node}").expect("roundtrip");
    let doc = Json::parse(&response).expect("error response must still be valid JSON");
    assert_eq!(doc.get("ok").and_then(Json::as_bool), Some(false));
    assert_eq!(error_kind(&doc), "parse");
    // Same connection keeps working after the bad line.
    let pred = client.call_ok(&Request::Predict { node: 0 }).expect("predict after garbage");
    assert!(pred.get("class").and_then(Json::as_usize).is_some());
    assert_healthy(&addr);
}

#[test]
fn truncated_request_then_hangup_does_not_kill_the_server() {
    let (_server, addr) = start_server(false);
    {
        // Half a request, no newline, then a hard hangup.
        let mut raw = TcpStream::connect(&addr).expect("raw connect");
        raw.write_all(b"{\"op\":\"pre").expect("partial write");
    } // dropped here — server side sees EOF mid-line
    assert_healthy(&addr);
}

#[test]
fn wrong_field_types_and_unknown_ops_are_bad_request() {
    let (_server, addr) = start_server(false);
    let mut client = Client::connect(&addr).expect("connect");
    for (line, what) in [
        ("{\"op\":\"predict\"}", "predict without node"),
        ("{\"op\":\"predict\",\"node\":-3}", "negative node"),
        ("{\"op\":\"top_k\",\"node\":0,\"k\":0}", "k = 0"),
        ("{\"op\":\"florp\"}", "unknown op"),
        ("[1,2,3]", "non-object request"),
    ] {
        let response = client.roundtrip_raw(line).expect(what);
        let doc = Json::parse(&response).expect(what);
        assert_eq!(doc.get("ok").and_then(Json::as_bool), Some(false), "{what}");
        assert_eq!(error_kind(&doc), "bad_request", "{what}");
    }
    assert_healthy(&addr);
}

#[test]
fn unknown_node_is_a_typed_unknown_node_error() {
    let (_server, addr) = start_server(false);
    let mut client = Client::connect(&addr).expect("connect");
    let doc = client.call(&Request::Predict { node: NODES + 100 }).expect("call");
    assert_eq!(doc.get("ok").and_then(Json::as_bool), Some(false));
    assert_eq!(error_kind(&doc), "unknown_node");
    assert_healthy(&addr);
}

#[test]
fn debug_panic_is_isolated_to_one_request() {
    let (server, addr) = start_server(true);
    let mut client = Client::connect(&addr).expect("connect");
    let doc = client.call(&Request::DebugPanic).expect("panic request must get a response");
    assert_eq!(doc.get("ok").and_then(Json::as_bool), Some(false));
    assert_eq!(error_kind(&doc), "internal");
    // The batcher caught the panic; the same server keeps serving.
    assert_healthy(&addr);
    let stats = server.stats();
    assert!(stats.requests >= 1, "panicking request still counts in stats");
}

#[test]
fn debug_panic_is_refused_when_debug_ops_are_off() {
    let (_server, addr) = start_server(false);
    let mut client = Client::connect(&addr).expect("connect");
    let doc = client.call(&Request::DebugPanic).expect("call");
    assert_eq!(doc.get("ok").and_then(Json::as_bool), Some(false));
    assert_eq!(error_kind(&doc), "bad_request");
    assert_healthy(&addr);
}

#[test]
fn concurrent_clients_are_batched_and_counted() {
    let (server, addr) = start_server(false);
    let per_client = 25usize;
    let clients = 8usize;
    let handles: Vec<_> = (0..clients)
        .map(|c| {
            let addr = addr.clone();
            std::thread::spawn(move || {
                let mut client = Client::connect(&addr).expect("connect");
                for i in 0..per_client {
                    let node = (c * per_client + i) % NODES;
                    client.call_ok(&Request::Predict { node }).expect("predict");
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("client thread");
    }
    let stats = server.stats();
    assert_eq!(stats.requests, (clients * per_client) as u64);
    assert!(stats.batches >= 1 && stats.batches <= stats.requests);
    assert!(stats.max_batch >= 1);
    assert!(stats.p99_us >= stats.p50_us);
}

#[test]
fn protocol_shutdown_stops_the_server() {
    let (server, addr) = start_server(false);
    let mut client = Client::connect(&addr).expect("connect");
    client.call_ok(&Request::Shutdown).expect("shutdown ack");
    // wait() joins the accept + batcher threads; a hung shutdown would hang
    // the test harness here, which is exactly what this test guards.
    server.wait();
}

/// Malformed streaming mutations: every abuse gets a typed error and the
/// server keeps serving correct predictions afterwards.
#[test]
fn malformed_mutations_are_typed_and_leave_the_server_healthy() {
    let (_server, addr) = start_server(false);
    let mut client = Client::connect(&addr).expect("connect");
    for (line, kind, what) in [
        ("{\"op\":\"add_edge\",\"u\":3}", "bad_request", "add_edge without v"),
        ("{\"op\":\"add_edge\",\"u\":\"a\",\"v\":1}", "bad_request", "non-integer endpoint"),
        ("{\"op\":\"add_edge\",\"u\":3,\"v\":3}", "bad_request", "self-loop"),
        ("{\"op\":\"add_edge\",\"u\":0,\"v\":9999}", "unknown_node", "unknown add endpoint"),
        ("{\"op\":\"remove_edge\",\"u\":9999,\"v\":0}", "unknown_node", "unknown remove endpoint"),
        ("{\"op\":\"add_node\"}", "bad_request", "add_node without features"),
        ("{\"op\":\"add_node\",\"features\":[0.5]}", "bad_request", "feature-length mismatch"),
        ("{\"op\":\"add_node\",\"features\":\"x\"}", "bad_request", "non-array features"),
    ] {
        let response = client.roundtrip_raw(line).expect(what);
        let doc = Json::parse(&response).expect(what);
        assert_eq!(doc.get("ok").and_then(Json::as_bool), Some(false), "{what}");
        assert_eq!(error_kind(&doc), kind, "{what}");
    }
    assert_healthy(&addr);
}

/// Duplicate insert and missing delete are `bad_request`, and a toggle pair
/// leaves the server exactly where it started.
#[test]
fn duplicate_and_missing_edges_are_bad_request() {
    let (_server, addr) = start_server(false);
    let mut client = Client::connect(&addr).expect("connect");
    // The generator decides whether (2, 17) exists; force it to exist.
    let first = client.call(&Request::AddEdge { u: 2, v: 17 }).expect("first add");
    let added_by_us = first.get("ok").and_then(Json::as_bool) == Some(true);
    let dup = client.call(&Request::AddEdge { u: 2, v: 17 }).expect("duplicate add");
    assert_eq!(dup.get("ok").and_then(Json::as_bool), Some(false));
    assert_eq!(error_kind(&dup), "bad_request", "duplicate edge");
    // Endpoint order must not matter for the delete.
    let removed = client.remove_edge(17, 2).expect("remove");
    assert_eq!(removed.get("op").and_then(Json::as_str), Some("remove_edge"));
    assert_eq!(removed.get("num_nodes").and_then(Json::as_usize), Some(NODES));
    let missing = client.call(&Request::RemoveEdge { u: 2, v: 17 }).expect("remove again");
    assert_eq!(missing.get("ok").and_then(Json::as_bool), Some(false));
    assert_eq!(error_kind(&missing), "bad_request", "missing edge");
    if !added_by_us {
        client.add_edge(2, 17).expect("restore pre-existing edge");
    }
    assert_healthy(&addr);
}

/// `add_node` over the wire: the response names the new id, and the grown
/// node is immediately queryable with a normalized distribution.
#[test]
fn add_node_over_the_wire_is_immediately_queryable() {
    let (_server, addr) = start_server(false);
    let mut client = Client::connect(&addr).expect("connect");
    let doc = client.add_node(&[0.1; IN_DIM]).expect("add_node");
    assert_eq!(doc.get("node").and_then(Json::as_usize), Some(NODES));
    assert_eq!(doc.get("num_nodes").and_then(Json::as_usize), Some(NODES + 1));
    assert_eq!(doc.get("full_recompute").and_then(Json::as_bool), Some(true));
    client.add_edge(NODES, 0).expect("wire the new node in");
    let pred = client.call_ok(&Request::Predict { node: NODES }).expect("predict new node");
    let probs = pred.get("probs").and_then(Json::to_f32s).expect("probs");
    assert_eq!(probs.len(), CLASSES);
    assert!((probs.iter().sum::<f32>() - 1.0).abs() < 1e-3);
    // `health` reports the live meta snapshot; liveness itself must hold.
    let health = client.call_ok(&Request::Health).expect("health after growth");
    assert_eq!(health.get("status").and_then(Json::as_str), Some("ok"));
}

/// Lasagne-Weighted carries per-node parameters: edge toggles are fine,
/// `add_node` must be refused typed (no principled value for the new row).
#[test]
fn node_pinned_model_refuses_add_node_but_accepts_edges() {
    let mut rng = TensorRng::seed_from_u64(11);
    let (g, labels) = dc_sbm(
        &DcSbmConfig {
            nodes: NODES,
            classes: CLASSES,
            avg_degree: 4.0,
            homophily: 0.9,
            power_exponent: 2.5,
            max_weight_ratio: 20.0,
        },
        &mut rng,
    );
    let features = lasagne_datasets::generate_features(
        &g,
        &labels,
        CLASSES,
        &lasagne_datasets::FeatureConfig {
            dim: IN_DIM,
            signal: 1.5,
            noise_scale: 0.5,
            degree_noise_exponent: 0.3,
            mask_base: 0.0,
        },
        &mut rng,
    );
    let ctx = GraphContext::new(&g, features, labels, CLASSES);
    // Depth 3 so the Weighted aggregator actually registers a per-node
    // C(l) parameter (depth 2 has a single hidden layer and no C at all).
    let hyper = Hyper { hidden: 4, depth: 3, dropout_keep: 1.0, ..Hyper::default() };
    let cfg = lasagne_core::LasagneConfig::from_hyper(&hyper, lasagne_core::AggregatorKind::Weighted);
    let model = lasagne_core::Lasagne::new(IN_DIM, CLASSES, Some(NODES), &cfg, 5);
    let engine = Engine::new(freeze(&model, &ctx, "tiny").expect("freeze")).expect("engine");
    let server = Server::start(
        engine,
        ServerConfig { addr: "127.0.0.1:0".into(), ..ServerConfig::default() },
    )
    .expect("server start");
    let addr = server.local_addr().to_string();

    let mut client = Client::connect(&addr).expect("connect");
    let doc = client.call(&Request::AddNode { features: vec![0.1; IN_DIM] }).expect("add_node");
    assert_eq!(doc.get("ok").and_then(Json::as_bool), Some(false));
    assert_eq!(error_kind(&doc), "bad_request", "node-pinned add_node");
    // Edge mutations on the same model still work — toggle and restore.
    let first = client.call(&Request::AddEdge { u: 1, v: 19 }).expect("add");
    if first.get("ok").and_then(Json::as_bool) == Some(true) {
        client.remove_edge(1, 19).expect("restore");
    } else {
        client.remove_edge(1, 19).expect("remove existing");
        client.add_edge(1, 19).expect("restore");
    }
    assert_healthy(&addr);
}

/// A mutation arriving after `shutdown` gets the typed `draining` error on
/// its still-open connection instead of hanging or crashing the teardown.
#[test]
fn mutation_during_shutdown_gets_a_typed_draining_error() {
    let (server, addr) = start_server(false);
    let mut survivor = Client::connect(&addr).expect("connect survivor");
    survivor.call_ok(&Request::Health).expect("health before shutdown");
    let mut trigger = Client::connect(&addr).expect("connect trigger");
    trigger.call_ok(&Request::Shutdown).expect("shutdown ack");
    // The ack is written just before the flag flips; give it a beat.
    std::thread::sleep(std::time::Duration::from_millis(100));
    let doc = survivor
        .call(&Request::AddEdge { u: 0, v: 1 })
        .expect("open connection must still get a response line");
    assert_eq!(doc.get("ok").and_then(Json::as_bool), Some(false));
    assert_eq!(error_kind(&doc), "draining", "mutation during shutdown");
    server.wait();
}

#[test]
fn flipped_byte_in_frozen_file_fails_typed_on_load() {
    let dir = std::env::temp_dir();
    let path = dir.join(format!("lasagne-serve-flip-{}.json", std::process::id()));
    tiny_frozen().save(&path).expect("save");
    let mut rng = lasagne_testkit::rng::Rng::seed_from_u64(99);
    // A single flipped byte must never load cleanly: either the checksum
    // catches it (corrupt), the JSON no longer parses, or — if it lands in
    // a value — the shape/invariant checks reject it (mismatch).
    for trial in 0..8 {
        lasagne_testkit::fault::flip_byte(&path, &mut rng).expect("flip");
        let err = FrozenModel::load(&path)
            .err()
            .unwrap_or_else(|| panic!("trial {trial}: corrupted file loaded cleanly"));
        assert!(
            matches!(err.kind(), "corrupt" | "parse" | "mismatch" | "missing_param"),
            "trial {trial}: unexpected kind {}",
            err.kind()
        );
        // Restore for the next independent trial.
        tiny_frozen().save(&path).expect("re-save");
    }
    let _ = std::fs::remove_file(path);
}

#[test]
fn truncated_frozen_file_fails_typed_on_load() {
    let dir = std::env::temp_dir();
    let path = dir.join(format!("lasagne-serve-trunc-{}.json", std::process::id()));
    tiny_frozen().save(&path).expect("save");
    lasagne_testkit::fault::truncate_file(&path, 0.5).expect("truncate");
    let err = FrozenModel::load(&path).err().expect("truncated file must not load");
    assert!(matches!(err.kind(), "corrupt" | "parse"), "unexpected kind {}", err.kind());
    let _ = std::fs::remove_file(path);
}

#[test]
fn frozen_file_round_trips_through_disk() {
    let dir = std::env::temp_dir();
    let path = dir.join(format!("lasagne-serve-rt-{}.json", std::process::id()));
    let frozen = tiny_frozen();
    frozen.save(&path).expect("save");
    let engine_a = Engine::new(frozen).expect("engine from memory");
    let engine_b = Engine::new(FrozenModel::load(&path).expect("load")).expect("engine from disk");
    for node in 0..NODES {
        let a: Vec<u32> =
            engine_a.logits_row(node).expect("row a").iter().map(|v| v.to_bits()).collect();
        let b: Vec<u32> =
            engine_b.logits_row(node).expect("row b").iter().map(|v| v.to_bits()).collect();
        assert_eq!(a, b, "node {node}: disk round-trip changed the logits");
    }
    let _ = std::fs::remove_file(path);
}
