//! Kernel-equivalence suite for the column-blocked SpMM: bitwise equal
//! (`to_bits`) to the pinned seed reference (`spmm_reference`, the exact
//! pre-blocking whole-row-axpy loop) on random graphs and dense operands,
//! at several thread counts. Widths straddle the CB=64 column-block
//! boundary in both directions (narrow, exact multiple, ragged edge).
//!
//! One `#[test]`, because the pool's thread count is process-global.

use lasagne_sparse::Csr;
use lasagne_tensor::Tensor;
use lasagne_testkit::gens::coo_graph;
use lasagne_testkit::prop::{check, Config};

const SWEEP: [usize; 3] = [1, 4, 3];

fn bits(t: &Tensor) -> Vec<u32> {
    t.as_slice().iter().map(|v| v.to_bits()).collect()
}

#[test]
fn blocked_spmm_bitwise_equal_seed_reference() {
    let cfg = Config::cases(8);
    check(
        "spmm_blocked_vs_seed",
        &cfg,
        // Width range 1..150 covers d < CB, d == CB-ish multiples, and a
        // ragged final block; density 0.15 leaves empty rows in play.
        &(coo_graph(2..60, 0.15, -2.0, 2.0), 1usize..150),
        |(g, d)| {
            let m = Csr::from_coo(g.n, g.n, &g.entries);
            let x = Tensor::from_fn(g.n, *d, |i, j| ((i * 37 + j * 13) % 23) as f32 * 0.17 - 1.9);
            lasagne_par::set_threads(1);
            let want = bits(&m.spmm_reference(&x));
            let want_t = bits(&m.transpose().spmm_reference(&x));
            for &t in &SWEEP {
                lasagne_par::set_threads(t);
                if bits(&m.spmm(&x)) != want {
                    return Err(format!("spmm != seed at {t} threads (n={}, d={d})", g.n));
                }
                if bits(&m.spmm_t(&x)) != want_t {
                    return Err(format!("spmm_t != seed at {t} threads (n={}, d={d})", g.n));
                }
            }
            Ok(())
        },
    );
}
