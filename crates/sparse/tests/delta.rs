//! Property suite for the streaming delta layer (DESIGN.md §11): any random
//! interleaving of insert / delete / add_node / compact must leave the
//! merged view **bitwise identical** — exact `indptr`/`indices`, value bits
//! compared via `to_bits` — to building the final matrix from scratch with
//! `Csr::from_coo`. Swept at thread counts {1, 4}: the pool is process-
//! global, but every kernel is bitwise thread-count-invariant, so re-running
//! the same seed under both pool sizes must reproduce the same bits.

use lasagne_sparse::{Csr, DeltaCsr, DeltaError};
use lasagne_testkit::gens::{sym_adj, CooGraph};
use lasagne_testkit::rng::Rng;
use lasagne_testkit::{prop_assert, prop_assert_eq, prop_check};

/// Bitwise equality: exact structure, exact value bits.
fn assert_bitwise(got: &Csr, want: &Csr) -> Result<(), String> {
    prop_assert_eq!(got.shape(), want.shape());
    prop_assert_eq!(got.indptr(), want.indptr());
    prop_assert_eq!(got.indices(), want.indices());
    prop_assert_eq!(got.values().len(), want.values().len());
    for (i, (a, b)) in got.values().iter().zip(want.values()).enumerate() {
        prop_assert!(
            a.to_bits() == b.to_bits(),
            "value {i}: {a} ({:#010x}) != {b} ({:#010x})",
            a.to_bits(),
            b.to_bits()
        );
    }
    Ok(())
}

/// Replay `steps` random mutations on both a [`DeltaCsr`] and a shadow entry
/// map, then check the merged view against a from-scratch build.
fn run_interleaving(g: &CooGraph, seed: u64, steps: usize) -> Result<(), String> {
    let mut d = DeltaCsr::new(Csr::from_coo(g.n, g.n, &g.entries));
    let mut shadow: std::collections::BTreeMap<(u32, u32), f32> =
        g.entries.iter().map(|&(r, c, v)| ((r, c), v)).collect();
    let mut n = g.n;
    let mut rng = Rng::seed_from_u64(seed);

    for _ in 0..steps {
        match rng.index(8) {
            0..=3 => {
                let r = rng.index(n) as u32;
                let c = rng.index(n) as u32;
                let v = rng.range_f32(-2.0, 2.0);
                if shadow.contains_key(&(r, c)) {
                    prop_assert_eq!(
                        d.insert(r, c, v),
                        Err(DeltaError::DuplicateEdge { row: r, col: c })
                    );
                } else {
                    prop_assert_eq!(d.insert(r, c, v), Ok(()));
                    shadow.insert((r, c), v);
                }
            }
            4..=5 => {
                let r = rng.index(n) as u32;
                let c = rng.index(n) as u32;
                if shadow.remove(&(r, c)).is_some() {
                    prop_assert_eq!(d.remove(r, c), Ok(()));
                } else {
                    prop_assert_eq!(
                        d.remove(r, c),
                        Err(DeltaError::MissingEdge { row: r, col: c })
                    );
                }
            }
            6 => {
                d.compact();
                prop_assert_eq!(d.pending(), 0);
            }
            _ => {
                prop_assert_eq!(d.add_node(), n);
                n += 1;
            }
        }
        prop_assert_eq!(d.rows(), n);
        prop_assert_eq!(d.nnz(), shadow.len());
    }

    let entries: Vec<(u32, u32, f32)> = shadow.iter().map(|(&(r, c), &v)| (r, c, v)).collect();
    let scratch = Csr::from_coo(n, n, &entries);
    assert_bitwise(&d.to_csr(), &scratch)?;
    // Compaction must preserve the view exactly (and the compacted base IS
    // the view afterwards).
    d.compact();
    assert_bitwise(d.base(), &scratch)?;
    assert_bitwise(&d.to_csr(), &scratch)?;
    Ok(())
}

prop_check! {
    cases = 192,
    fn random_interleavings_match_from_scratch(g in sym_adj(2..15, 0.3),
                                               seed in 0u64..300) {
        for &threads in &[1usize, 4] {
            lasagne_par::set_threads(threads);
            run_interleaving(&g, seed, 40)?;
        }
    }
}

prop_check! {
    cases = 128,
    fn normalized_operators_match_from_scratch(g in sym_adj(2..12, 0.3),
                                               seed in 0u64..300) {
        // The serve path cares about the *derived* operators: after toggling
        // undirected edges through the delta, Â and the random-walk operator
        // built from the merged view must be bitwise equal to the ones built
        // from scratch.
        let mut d = DeltaCsr::new(Csr::from_coo(g.n, g.n, &g.entries));
        let mut shadow: std::collections::BTreeSet<(u32, u32)> =
            g.entries.iter().map(|&(r, c, _)| (r, c)).collect();
        let mut rng = Rng::seed_from_u64(seed ^ 0x5eed);
        for _ in 0..12 {
            if g.n < 2 {
                break;
            }
            let u = rng.index(g.n) as u32;
            let v = rng.index(g.n) as u32;
            if u == v {
                continue;
            }
            if shadow.contains(&(u, v)) {
                prop_assert_eq!(d.remove(u, v), Ok(()));
                prop_assert_eq!(d.remove(v, u), Ok(()));
                shadow.remove(&(u, v));
                shadow.remove(&(v, u));
            } else {
                prop_assert_eq!(d.insert(u, v, 1.0), Ok(()));
                prop_assert_eq!(d.insert(v, u, 1.0), Ok(()));
                shadow.insert((u, v));
                shadow.insert((v, u));
            }
        }
        let entries: Vec<(u32, u32, f32)> =
            shadow.iter().map(|&(r, c)| (r, c, 1.0)).collect();
        let scratch = Csr::from_coo(g.n, g.n, &entries);
        let live = d.to_csr();
        assert_bitwise(&live.gcn_normalize(), &scratch.gcn_normalize())?;
        assert_bitwise(
            &live.with_self_loops().rw_normalize(),
            &scratch.with_self_loops().rw_normalize(),
        )?;
    }
}
