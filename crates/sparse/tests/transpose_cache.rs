//! Regression test for the transpose-cache invalidation contract:
//! `Csr::values_mut` must drop the lazily cached transpose, so an
//! `spmm_t` issued *after* an in-place value edit reflects the new values
//! instead of replaying the stale cache. Checked at thread counts {1, 4}
//! because the cached transpose is (re)built inside the instrumented
//! kernel path and the pool must not resurrect stale state either.
//!
//! One `#[test]` only: the pool thread count is process-global, so
//! concurrent tests sweeping `set_threads` would race.

use lasagne_sparse::Csr;
use lasagne_tensor::Tensor;

#[test]
fn values_mut_between_spmm_t_calls_invalidates_the_cached_transpose() {
    for &threads in &[1usize, 4] {
        lasagne_par::set_threads(threads);

        let mut a = Csr::from_coo(
            3,
            3,
            &[(0, 1, 1.0), (1, 0, 1.0), (1, 2, 2.0), (2, 1, 2.0), (0, 0, 3.0)],
        );
        let h = Tensor::from_fn(3, 2, |i, j| (i * 2 + j + 1) as f32);

        // Populate the cache, then edit a value in place.
        let before = a.spmm_t(&h);
        assert_eq!(&a.transpose().spmm(&h), &before, "{threads} threads: baseline");
        a.values_mut()[0] = 10.0;

        // The second call must see the edit…
        let after = a.spmm_t(&h);
        assert_eq!(
            &a.transpose().spmm(&h),
            &after,
            "{threads} threads: spmm_t replayed a stale cached transpose"
        );
        // …and the edit genuinely changes the product (guards against the
        // assertion passing vacuously).
        assert_ne!(
            before.as_slice(),
            after.as_slice(),
            "{threads} threads: fixture edit did not affect the product"
        );
    }
}
