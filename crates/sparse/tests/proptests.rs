//! Property tests: CSR algebra must agree with densified linear algebra.

use lasagne_sparse::Csr;
use lasagne_tensor::TensorRng;
use proptest::prelude::*;

/// Random sparse square matrix with ~`density` fill.
fn random_csr(n: usize, density: f64, seed: u64) -> Csr {
    let mut rng = TensorRng::seed_from_u64(seed);
    let mut coo = Vec::new();
    for i in 0..n {
        for j in 0..n {
            if rng.bernoulli(density as f32) {
                coo.push((i as u32, j as u32, rng.uniform(-2.0, 2.0)));
            }
        }
    }
    Csr::from_coo(n, n, &coo)
}

/// Random symmetric unweighted adjacency (no self-loops).
fn random_adj(n: usize, density: f64, seed: u64) -> Csr {
    let mut rng = TensorRng::seed_from_u64(seed);
    let mut coo = Vec::new();
    for i in 0..n {
        for j in (i + 1)..n {
            if rng.bernoulli(density as f32) {
                coo.push((i as u32, j as u32, 1.0));
                coo.push((j as u32, i as u32, 1.0));
            }
        }
    }
    Csr::from_coo(n, n, &coo)
}

proptest! {
    #[test]
    fn spmm_equals_dense_matmul(seed in 0u64..300, n in 2usize..12, d in 1usize..5) {
        let m = random_csr(n, 0.4, seed);
        let mut rng = TensorRng::seed_from_u64(seed.wrapping_add(99));
        let x = rng.uniform_tensor(n, d, -3.0, 3.0);
        prop_assert!(m.spmm(&x).approx_eq(&m.to_dense().matmul(&x), 1e-4));
    }

    #[test]
    fn spmm_t_equals_transpose_spmm(seed in 0u64..300, n in 2usize..12) {
        let m = random_csr(n, 0.3, seed);
        let mut rng = TensorRng::seed_from_u64(seed ^ 0xabcd);
        let x = rng.uniform_tensor(n, 3, -1.0, 1.0);
        prop_assert!(m.spmm_t(&x).approx_eq(&m.transpose().spmm(&x), 1e-4));
    }

    #[test]
    fn transpose_is_involution(seed in 0u64..200, n in 1usize..15) {
        let m = random_csr(n, 0.3, seed);
        prop_assert_eq!(m.transpose().transpose(), m);
    }

    #[test]
    fn gcn_normalization_is_symmetric_and_bounded(seed in 0u64..200, n in 2usize..15) {
        let a = random_adj(n, 0.3, seed).gcn_normalize();
        let d = a.to_dense();
        prop_assert!(d.approx_eq(&d.transpose(), 1e-5));
        // Entries of Â lie in [0, 1].
        prop_assert!(d.min() >= 0.0 && d.max() <= 1.0 + 1e-6);
    }

    #[test]
    fn rw_rows_are_stochastic(seed in 0u64..200, n in 2usize..15) {
        let a = random_adj(n, 0.4, seed).with_self_loops().rw_normalize();
        for s in a.row_sums() {
            prop_assert!((s - 1.0).abs() < 1e-5);
        }
    }

    #[test]
    fn induced_matches_dense_slice(seed in 0u64..200) {
        let m = random_csr(8, 0.4, seed);
        let nodes = [6usize, 2, 5];
        let s = m.induced(&nodes).to_dense();
        let d = m.to_dense();
        for (ri, &r) in nodes.iter().enumerate() {
            for (ci, &c) in nodes.iter().enumerate() {
                prop_assert!((s[(ri, ci)] - d[(r, c)]).abs() < 1e-6);
            }
        }
    }

    #[test]
    fn slice_matches_dense_rectangle(seed in 0u64..200) {
        let m = random_csr(9, 0.35, seed);
        let rows = [1usize, 8, 3];
        let cols = [0usize, 4];
        let s = m.slice(&rows, &cols).to_dense();
        let d = m.to_dense();
        for (ri, &r) in rows.iter().enumerate() {
            for (ci, &c) in cols.iter().enumerate() {
                prop_assert!((s[(ri, ci)] - d[(r, c)]).abs() < 1e-6);
            }
        }
    }

    #[test]
    fn from_coo_duplicate_merging_is_order_invariant(seed in 0u64..100) {
        let mut rng = TensorRng::seed_from_u64(seed);
        let mut entries: Vec<(u32, u32, f32)> = (0..30)
            .map(|_| (rng.index(5) as u32, rng.index(5) as u32, rng.uniform(-1.0, 1.0)))
            .collect();
        let a = Csr::from_coo(5, 5, &entries);
        rng.shuffle(&mut entries);
        let b = Csr::from_coo(5, 5, &entries);
        prop_assert!(a.to_dense().approx_eq(&b.to_dense(), 1e-5));
    }
}
