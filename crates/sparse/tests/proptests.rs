//! Property tests: CSR algebra must agree with densified linear algebra.
//! Ported from `proptest` to the in-workspace `lasagne-testkit` harness;
//! every original property is preserved at ≥ the original 256 cases.

use lasagne_sparse::Csr;
use lasagne_tensor::{Tensor, TensorRng};
use lasagne_testkit::gens::{coo_graph, sym_adj, CooGraph};
use lasagne_testkit::{prop_assert, prop_assert_eq, prop_check};

/// Materialize a generated COO matrix.
fn csr_of(g: &CooGraph) -> Csr {
    Csr::from_coo(g.n, g.n, &g.entries)
}

prop_check! {
    cases = 256,
    fn spmm_equals_dense_matmul(g in coo_graph(2..12, 0.4, -2.0, 2.0),
                                d in 1usize..5, seed in 0u64..300) {
        let m = csr_of(&g);
        let mut rng = TensorRng::seed_from_u64(seed.wrapping_add(99));
        let x = rng.uniform_tensor(g.n, d, -3.0, 3.0);
        prop_assert!(m.spmm(&x).approx_eq(&m.to_dense().matmul(&x), 1e-4));
    }
}

prop_check! {
    cases = 256,
    fn spmm_t_equals_transpose_spmm(g in coo_graph(2..12, 0.3, -2.0, 2.0),
                                    seed in 0u64..300) {
        let m = csr_of(&g);
        let mut rng = TensorRng::seed_from_u64(seed ^ 0xabcd);
        let x = rng.uniform_tensor(g.n, 3, -1.0, 1.0);
        prop_assert!(m.spmm_t(&x).approx_eq(&m.transpose().spmm(&x), 1e-4));
    }
}

prop_check! {
    cases = 256,
    fn transpose_is_involution(g in coo_graph(1..15, 0.3, -2.0, 2.0)) {
        let m = csr_of(&g);
        prop_assert_eq!(m.transpose().transpose(), m);
    }
}

prop_check! {
    cases = 256,
    fn gcn_normalization_is_symmetric_and_bounded(g in sym_adj(2..15, 0.3)) {
        let a = csr_of(&g).gcn_normalize();
        let d = a.to_dense();
        prop_assert!(d.approx_eq(&d.transpose(), 1e-5));
        // Entries of Â lie in [0, 1].
        prop_assert!(d.min() >= 0.0 && d.max() <= 1.0 + 1e-6);
    }
}

prop_check! {
    cases = 256,
    fn rw_rows_are_stochastic(g in sym_adj(2..15, 0.4)) {
        let a = csr_of(&g).with_self_loops().rw_normalize();
        for s in a.row_sums() {
            prop_assert!((s - 1.0).abs() < 1e-5);
        }
    }
}

prop_check! {
    cases = 256,
    fn induced_matches_dense_slice(g in coo_graph(8..9, 0.4, -2.0, 2.0)) {
        let m = csr_of(&g);
        let nodes = [6usize, 2, 5];
        let s = m.induced(&nodes).to_dense();
        let d = m.to_dense();
        for (ri, &r) in nodes.iter().enumerate() {
            for (ci, &c) in nodes.iter().enumerate() {
                prop_assert!((s[(ri, ci)] - d[(r, c)]).abs() < 1e-6);
            }
        }
    }
}

prop_check! {
    cases = 256,
    fn slice_matches_dense_rectangle(g in coo_graph(9..10, 0.35, -2.0, 2.0)) {
        let m = csr_of(&g);
        let rows = [1usize, 8, 3];
        let cols = [0usize, 4];
        let s = m.slice(&rows, &cols).to_dense();
        let d = m.to_dense();
        for (ri, &r) in rows.iter().enumerate() {
            for (ci, &c) in cols.iter().enumerate() {
                prop_assert!((s[(ri, ci)] - d[(r, c)]).abs() < 1e-6);
            }
        }
    }
}

prop_check! {
    cases = 256,
    fn from_coo_duplicate_merging_is_order_invariant(seed in 0u64..100_000) {
        let mut rng = TensorRng::seed_from_u64(seed);
        let mut entries: Vec<(u32, u32, f32)> = (0..30)
            .map(|_| (rng.index(5) as u32, rng.index(5) as u32, rng.uniform(-1.0, 1.0)))
            .collect();
        let a = Csr::from_coo(5, 5, &entries);
        rng.shuffle(&mut entries);
        let b = Csr::from_coo(5, 5, &entries);
        prop_assert!(a.to_dense().approx_eq(&b.to_dense(), 1e-5));
    }
}

// New invariant (not in the original suite): the full GCN operator contract
// on random graphs. Â = D̃^{-1/2}(A+I)D̃^{-1/2} must (1) keep self-loop mass
// on the diagonal, (2) be exactly symmetric as a *structure*, and (3) have
// spectral radius ≤ 1 — the property that makes arbitrarily deep stacks of
// Â-multiplications stable (and over-smoothing, not divergence, the failure
// mode the paper studies).
prop_check! {
    cases = 128,
    fn gcn_operator_has_unit_spectral_radius(g in sym_adj(2..20, 0.3), seed in 0u64..1000) {
        let a_hat = csr_of(&g).gcn_normalize();
        let n = g.n;
        let d = a_hat.to_dense();

        // Self-loops give every diagonal entry 1/d̃_i > 0.
        for i in 0..n {
            prop_assert!(d[(i, i)] > 0.0, "zero diagonal at {i}");
        }

        // Power iteration on a symmetric operator converges to |λ|_max.
        let mut rng = TensorRng::seed_from_u64(seed);
        let mut v = rng.uniform_tensor(n, 1, 0.1, 1.0); // positive start: aligned with Perron vector
        let mut radius = 0.0f32;
        for _ in 0..60 {
            let w = a_hat.spmm(&v);
            let norm = w.as_slice().iter().map(|x| x * x).sum::<f32>().sqrt();
            prop_assert!(norm.is_finite());
            if norm < 1e-12 {
                break;
            }
            radius = norm
                / v.as_slice().iter().map(|x| x * x).sum::<f32>().sqrt().max(1e-12);
            v = w.scale(1.0 / norm);
        }
        prop_assert!(
            radius <= 1.0 + 1e-4,
            "spectral radius estimate {radius} exceeds 1"
        );
        // Â is never nilpotent (diagonal is positive), so the estimate must
        // also be bounded away from zero.
        prop_assert!(radius > 0.0);
    }
}
