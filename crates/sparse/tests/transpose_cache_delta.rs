//! Regression test for the delta/compaction half of the transpose-cache
//! invalidation contract (companion to `transpose_cache.rs`, which covers
//! `values_mut`): `Csr::replace_parts` — the compaction path of `DeltaCsr`
//! — must drop the lazily cached transpose, so an `spmm_t` issued after an
//! `add_edge`-then-compact reflects the new structure instead of replaying
//! a stale cache built on the pre-mutation graph.
//!
//! One `#[test]` only: the pool thread count is process-global, so
//! concurrent tests sweeping `set_threads` would race.

use lasagne_sparse::{Csr, DeltaCsr};
use lasagne_tensor::Tensor;

#[test]
fn compaction_after_add_edge_invalidates_the_cached_transpose() {
    for &threads in &[1usize, 4] {
        lasagne_par::set_threads(threads);

        let adj = Csr::from_coo(4, 4, &[(0, 1, 1.0), (1, 0, 1.0), (1, 2, 1.0), (2, 1, 1.0)]);
        let h = Tensor::from_fn(4, 2, |i, j| (i * 2 + j + 1) as f32);

        let mut d = DeltaCsr::new(adj);
        // Populate the base's transpose cache, exactly as a training/serve
        // loop would have before the first mutation arrives.
        let before = d.base().spmm_t(&h);
        assert_eq!(&d.base().transpose().spmm(&h), &before, "{threads} threads: baseline");

        // add_edge 0-3 (both directions, as the serve layer applies it),
        // then compact: the base is rewritten in place via `replace_parts`.
        d.insert(0, 3, 1.0).unwrap();
        d.insert(3, 0, 1.0).unwrap();
        d.compact();

        // The next spmm_t must rebuild the transpose on the new structure…
        let after = d.base().spmm_t(&h);
        assert_eq!(
            &d.base().transpose().spmm(&h),
            &after,
            "{threads} threads: spmm_t replayed a stale transpose across replace_parts"
        );
        // …and the new edge genuinely changes the product (guards against
        // the assertion passing vacuously).
        assert_ne!(
            before.as_slice(),
            after.as_slice(),
            "{threads} threads: fixture edge did not affect the product"
        );

        // Same contract on a bare Csr driven through replace_parts directly.
        let mut m = Csr::from_coo(3, 3, &[(0, 1, 2.0), (1, 0, 2.0)]);
        let x = Tensor::from_fn(3, 2, |i, j| (i + j) as f32 + 0.5);
        let stale = m.spmm_t(&x);
        let grown = Csr::from_coo(3, 3, &[(0, 1, 2.0), (1, 0, 2.0), (2, 0, 1.0), (0, 2, 1.0)]);
        m.replace_parts(
            3,
            3,
            grown.indptr().to_vec(),
            grown.indices().to_vec(),
            grown.values().to_vec(),
        );
        let fresh = m.spmm_t(&x);
        assert_eq!(&m.transpose().spmm(&x), &fresh, "{threads} threads: bare replace_parts");
        assert_ne!(stale.as_slice(), fresh.as_slice());
    }
}
