//! Property tests for the `lasagne-par` determinism contract on the sparse
//! kernels, plus the gather-vs-scatter `spmm_t` equivalence: the cached-
//! transpose gather rewrite must reproduce the retired per-edge scatter
//! kernel bit for bit (the transposed rows list source rows in ascending
//! order — exactly the scatter accumulation order).
//!
//! One `#[test]` only: the pool thread count is process-global, so
//! concurrent tests sweeping `set_threads` would race.

use lasagne_sparse::Csr;
use lasagne_tensor::Tensor;
use lasagne_testkit::gens::sym_adj;
use lasagne_testkit::prop::{check, Config};

const SWEEP: [usize; 3] = [2, 3, 7];

fn bits(t: &Tensor) -> Vec<u32> {
    t.as_slice().iter().map(|v| v.to_bits()).collect()
}

fn invariant(label: &str, compute: impl Fn() -> Vec<u32>) -> Result<(), String> {
    lasagne_par::set_threads(1);
    let baseline = compute();
    for &t in &SWEEP {
        lasagne_par::set_threads(t);
        if compute() != baseline {
            return Err(format!("{label}: bits changed at {t} threads"));
        }
    }
    Ok(())
}

#[test]
fn sparse_kernels_bitwise_invariant_across_thread_counts() {
    // Dense graphs so the nnz-balanced partitioner (4096 nnz per chunk)
    // actually produces several chunks; small-n cases cover the
    // single-chunk inline path.
    let cfg = Config::cases(6);
    check(
        "spmm_family",
        &cfg,
        &(sym_adj(40..220, 0.35), 1usize..24),
        |(g, d)| {
            let a = Csr::from_coo(g.n, g.n, &g.entries).gcn_normalize();
            let h = Tensor::from_fn(g.n, *d, |i, j| ((i * 13 + j * 5) % 17) as f32 * 0.3 - 2.0);
            invariant("spmm", || bits(&a.spmm(&h)))?;
            invariant("spmm_t", || bits(&a.spmm_t(&h)))?;
            invariant("spmv", || {
                a.spmv(h.col(0).as_slice())
                    .iter()
                    .map(|v| v.to_bits())
                    .collect()
            })?;

            // Gather (new) vs scatter (retired reference), bit for bit.
            lasagne_par::set_threads(1);
            let gather = a.spmm_t(&h);
            let scatter = a.spmm_t_scatter(&h);
            if bits(&gather) != bits(&scatter) {
                return Err("spmm_t gather != scatter bitwise".to_string());
            }
            Ok(())
        },
    );
}
