//! Property suite for the edge-feature layer (DESIGN.md §15): `EdgeData`
//! rows must track their CSR entries through transposition and through an
//! arbitrary interleaving of `EdgeDeltaCsr` inserts/removes/compactions —
//! and every drift or bad shape must fail typed, never misread.

use std::collections::BTreeMap;

use lasagne_sparse::{Csr, EdgeData, EdgeDataError, EdgeDeltaCsr};
use lasagne_testkit::gens::{coo_graph, CooGraph};
use lasagne_testkit::{prop_assert, prop_assert_eq, prop_check, Rng};

fn csr_of(g: &CooGraph) -> Csr {
    Csr::from_coo(g.n, g.n, &g.entries)
}

/// Features that name their edge: row for entry `(r, c)` is `[r, c, r*31+c]`.
fn tag(r: u32, c: u32, out: &mut [f32]) {
    out[0] = r as f32;
    out[1] = c as f32;
    out[2] = (r * 31 + c) as f32;
}

fn tagged(m: &Csr) -> EdgeData {
    EdgeData::for_csr(m, 3, tag)
}

/// Assert every edge row of `e` names the CSR entry it sits under.
fn assert_aligned(m: &Csr, e: &EdgeData) {
    e.check_aligned(m).unwrap();
    let mut flat = 0usize;
    for r in 0..m.rows() {
        for &c in m.row_indices(r) {
            let mut want = [0.0f32; 3];
            tag(r as u32, c, &mut want);
            assert_eq!(e.row(flat), &want, "edge row {flat} misaligned at ({r},{c})");
            assert_eq!(m.edge_position(r as u32, c), Some(flat));
            flat += 1;
        }
    }
}

prop_check! {
    cases = 256,
    fn for_csr_rows_sit_under_their_entries(g in coo_graph(1..14, 0.4, -2.0, 2.0)) {
        let m = csr_of(&g);
        assert_aligned(&m, &tagged(&m));
        prop_assert!(true);
    }
}

prop_check! {
    cases = 256,
    fn transpose_permutation_keeps_alignment(g in coo_graph(1..14, 0.35, -2.0, 2.0)) {
        let m = csr_of(&g);
        let e = tagged(&m);
        let t = m.transpose();
        let et = e.transposed_with(&m).unwrap();
        et.check_aligned(&t).unwrap();
        let mut flat = 0usize;
        for r in 0..t.rows() {
            for &c in t.row_indices(r) {
                let mut want = [0.0f32; 3];
                tag(c, r as u32, &mut want); // source entry was (c, r)
                prop_assert_eq!(et.row(flat), &want[..]);
                flat += 1;
            }
        }
    }
}

prop_check! {
    cases = 200,
    fn delta_session_keeps_nnz_edge_row_alignment(
        g in coo_graph(2..10, 0.35, -2.0, 2.0),
        seed in 0u64..500,
        ops in 1usize..40
    ) {
        let m = csr_of(&g);
        let n = m.rows() as u32;
        let mut d = EdgeDeltaCsr::new(m.clone(), tagged(&m)).unwrap();
        // Shadow model: the ground-truth edge → feature map.
        let mut shadow: BTreeMap<(u32, u32), [f32; 3]> = BTreeMap::new();
        for r in 0..m.rows() {
            for &c in m.row_indices(r) {
                let mut f = [0.0f32; 3];
                tag(r as u32, c, &mut f);
                shadow.insert((r as u32, c), f);
            }
        }
        let mut rng = Rng::seed_from_u64(seed ^ 0x5eed);
        for _ in 0..ops {
            let r = rng.range_usize(0, d.rows()) as u32;
            let c = rng.range_usize(0, d.cols()) as u32;
            let mut f = [0.0f32; 3];
            tag(r, c, &mut f);
            match rng.range_usize(0, 3) {
                0 => {
                    // Insert: succeeds iff absent; either way shadow agrees.
                    let was = shadow.contains_key(&(r, c));
                    let got = d.insert(r, c, 1.0, &f);
                    prop_assert_eq!(got.is_ok(), !was);
                    if !was {
                        shadow.insert((r, c), f);
                    }
                }
                1 => {
                    let was = shadow.contains_key(&(r, c));
                    let got = d.remove(r, c);
                    prop_assert_eq!(got.is_ok(), was);
                    if was {
                        shadow.remove(&(r, c));
                    }
                }
                _ => {
                    d.compact().unwrap();
                    prop_assert_eq!(d.pending(), 0);
                }
            }
            let _ = n;
        }
        // The merged view must be exactly the shadow, rows aligned.
        let (csr, edges) = d.to_parts().unwrap();
        edges.check_aligned(&csr).unwrap();
        prop_assert_eq!(csr.nnz(), shadow.len());
        let mut flat = 0usize;
        for r in 0..csr.rows() {
            for &c in csr.row_indices(r) {
                let want = shadow.get(&(r as u32, c)).expect("entry not in shadow");
                prop_assert_eq!(edges.row(flat), &want[..]);
                flat += 1;
            }
        }
    }
}

prop_check! {
    cases = 200,
    fn compact_matches_from_coo_alignment(
        g in coo_graph(2..10, 0.3, -2.0, 2.0),
        seed in 0u64..500
    ) {
        // After a compact, base() must be bitwise the same pair to_parts()
        // produced — compaction is re-emission, not re-derivation.
        let m = csr_of(&g);
        let mut d = EdgeDeltaCsr::new(m.clone(), tagged(&m)).unwrap();
        let mut rng = Rng::seed_from_u64(seed);
        for _ in 0..6 {
            let r = rng.range_usize(0, d.rows()) as u32;
            let c = rng.range_usize(0, d.cols()) as u32;
            let mut f = [0.0f32; 3];
            tag(r, c, &mut f);
            if d.contains(r, c) {
                d.remove(r, c).unwrap();
            } else {
                d.insert(r, c, 2.0, &f).unwrap();
            }
        }
        let (csr, edges) = d.to_parts().unwrap();
        d.compact().unwrap();
        let (base, base_edges) = d.base();
        prop_assert_eq!(base.indptr(), csr.indptr());
        prop_assert_eq!(base.indices(), csr.indices());
        prop_assert!(base
            .values()
            .iter()
            .zip(csr.values())
            .all(|(a, b)| a.to_bits() == b.to_bits()));
        prop_assert!(base_edges
            .as_slice()
            .iter()
            .zip(edges.as_slice())
            .all(|(a, b)| a.to_bits() == b.to_bits()));
    }
}

#[test]
fn drifted_structure_fails_typed() {
    // Widen the structure behind the edge table's back: to_parts must
    // refuse with MissingFeature, not fabricate rows.
    let m = Csr::from_coo(3, 3, &[(0, 1, 1.0), (2, 0, 1.0)]);
    let short = EdgeData::zeros(m.nnz(), 2);
    let wrong = EdgeData::zeros(m.nnz() + 2, 2);
    assert!(matches!(
        EdgeDeltaCsr::new(m.clone(), wrong),
        Err(EdgeDataError::Misaligned { .. })
    ));
    let d = EdgeDeltaCsr::new(m, short).unwrap();
    // feature() on an absent edge is the typed drift signal.
    assert!(matches!(
        d.feature(1, 1),
        Err(EdgeDataError::MissingFeature { row: 1, col: 1 })
    ));
}
