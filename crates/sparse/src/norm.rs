//! Graph-convolution normalizations.
//!
//! * [`Csr::gcn_normalize`] — `Â = D̃^{-1/2} (A + I) D̃^{-1/2}`, the Kipf &
//!   Welling renormalization of Eq (1); this is what every model in the
//!   paper propagates with.
//! * [`Csr::rw_normalize`] — row-stochastic `D^{-1} A`, used by the APPNP
//!   baseline's personalized-PageRank propagation and by PageRank itself.

use crate::Csr;

impl Csr {
    /// Add unit self-loops (`A + I`). Existing diagonal entries are summed
    /// with the added 1, matching `Ã = A + I_N` from the paper.
    pub fn with_self_loops(&self) -> Csr {
        assert_eq!(self.rows(), self.cols(), "with_self_loops: must be square");
        let n = self.rows();
        let mut coo: Vec<(u32, u32, f32)> = Vec::with_capacity(self.nnz() + n);
        for i in 0..n {
            for (j, v) in self.row(i) {
                coo.push((i as u32, j, v));
            }
            coo.push((i as u32, i as u32, 1.0));
        }
        Csr::from_coo(n, n, &coo)
    }

    /// Symmetric GCN normalization with self-loops:
    /// `Â = D̃^{-1/2} (A + I) D̃^{-1/2}`.
    ///
    /// Isolated rows (degree 0 even after self-loops cannot happen, but a
    /// fully-zero weighted row can) are left as zero rows.
    pub fn gcn_normalize(&self) -> Csr {
        self.with_self_loops().sym_normalize()
    }

    /// Symmetric normalization of the matrix as-is (no self-loop insertion):
    /// `D^{-1/2} M D^{-1/2}` with `D = diag(row sums)`.
    pub fn sym_normalize(&self) -> Csr {
        assert_eq!(self.rows(), self.cols(), "sym_normalize: must be square");
        let deg = self.row_sums();
        let inv_sqrt: Vec<f32> = deg
            .iter()
            .map(|&d| if d > 0.0 { 1.0 / d.sqrt() } else { 0.0 })
            .collect();
        let mut out = self.clone();
        for i in 0..out.rows() {
            let di = inv_sqrt[i];
            let lo = out.indptr()[i];
            let hi = out.indptr()[i + 1];
            for e in lo..hi {
                let j = out.indices()[e] as usize;
                out.values_mut()[e] *= di * inv_sqrt[j];
            }
        }
        out
    }

    /// Row-stochastic (random-walk) normalization `D^{-1} M`; zero rows stay
    /// zero.
    pub fn rw_normalize(&self) -> Csr {
        let deg = self.row_sums();
        let mut out = self.clone();
        for i in 0..out.rows() {
            let d = deg[i];
            if d > 0.0 {
                let inv = 1.0 / d;
                let lo = out.indptr()[i];
                let hi = out.indptr()[i + 1];
                for e in lo..hi {
                    out.values_mut()[e] *= inv;
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Path graph 0 - 1 - 2 (symmetric, unweighted).
    fn path3() -> Csr {
        Csr::from_coo(
            3,
            3,
            &[(0, 1, 1.0), (1, 0, 1.0), (1, 2, 1.0), (2, 1, 1.0)],
        )
    }

    #[test]
    fn self_loops_add_diagonal() {
        let m = path3().with_self_loops();
        assert_eq!(m.nnz(), 7);
        let d = m.to_dense();
        for i in 0..3 {
            assert_eq!(d[(i, i)], 1.0);
        }
    }

    #[test]
    fn self_loops_merge_with_existing_diagonal() {
        let m = Csr::from_coo(2, 2, &[(0, 0, 2.0)]).with_self_loops();
        assert_eq!(m.to_dense()[(0, 0)], 3.0);
    }

    #[test]
    fn gcn_normalize_known_values() {
        // Degrees with self-loops: [2, 3, 2].
        let a = path3().gcn_normalize().to_dense();
        let s2 = 1.0 / 2.0f32; // 1/(sqrt2*sqrt2)
        let s23 = 1.0 / (2.0f32.sqrt() * 3.0f32.sqrt());
        assert!((a[(0, 0)] - s2).abs() < 1e-6);
        assert!((a[(0, 1)] - s23).abs() < 1e-6);
        assert!((a[(1, 1)] - 1.0 / 3.0).abs() < 1e-6);
        assert!((a[(2, 1)] - s23).abs() < 1e-6);
    }

    #[test]
    fn gcn_normalize_is_symmetric() {
        let a = path3().gcn_normalize();
        let d = a.to_dense();
        assert!(d.approx_eq(&d.transpose(), 1e-6));
    }

    #[test]
    fn gcn_normalize_spectral_radius_at_most_one() {
        // Power iteration on Â must not blow up: ‖Âx‖ ≤ ‖x‖ for the
        // normalized operator (λ_max = 1 with self-loops).
        let a = path3().gcn_normalize();
        let mut x = vec![1.0f32; 3];
        for _ in 0..50 {
            x = a.spmv(&x);
        }
        let norm: f32 = x.iter().map(|v| v * v).sum::<f32>().sqrt();
        assert!(norm <= 3.0f32.sqrt() + 1e-4);
    }

    #[test]
    fn rw_normalize_rows_sum_to_one() {
        let m = path3().with_self_loops().rw_normalize();
        for (i, s) in m.row_sums().iter().enumerate() {
            assert!((s - 1.0).abs() < 1e-6, "row {i} sums to {s}");
        }
    }

    #[test]
    fn rw_normalize_keeps_zero_rows() {
        let m = Csr::from_coo(2, 2, &[(0, 1, 4.0)]).rw_normalize();
        assert_eq!(m.row_nnz(1), 0);
        assert_eq!(m.row_values(0), &[1.0]);
    }
}
