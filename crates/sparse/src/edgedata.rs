//! Edge-feature storage aligned to CSR nnz order (DESIGN.md §15).
//!
//! An [`EdgeData`] is a dense `nnz x d_e` row-major matrix whose row `e`
//! holds the feature vector of the `e`-th stored entry of a companion
//! [`Csr`] — the entry at flat position `e` in the CSR's `indices`/`values`
//! arrays. Alignment is the whole contract: every structural change to the
//! companion (transpose, delta compaction, `replace_parts`) must be mirrored
//! by the matching row permutation here, and every mismatch is a typed
//! [`EdgeDataError`], never a silent misread.
//!
//! [`EdgeDeltaCsr`] pairs a [`DeltaCsr`] with its edge features and keeps
//! the two consistent through buffered inserts/removes and compaction.

use std::collections::BTreeMap;

use crate::{Csr, DeltaCsr, DeltaError};
use lasagne_tensor::Tensor;

/// Typed failures of the edge-feature layer. Every variant names the shapes
/// involved so callers can log without re-deriving state.
#[derive(Debug, Clone, PartialEq)]
pub enum EdgeDataError {
    /// A feature row had the wrong width.
    DimMismatch { expected: usize, got: usize },
    /// The flat buffer length is not `nnz * dim`.
    LengthMismatch { nnz: usize, dim: usize, len: usize },
    /// The edge table and the CSR disagree on entry count — the structure
    /// drifted without the features following (or vice versa).
    Misaligned { nnz: usize, edge_rows: usize },
    /// An edge-row index was out of range.
    RowOutOfRange { row: usize, nnz: usize },
    /// A merged CSR entry has no feature row on either side of the delta —
    /// structure and features have drifted apart.
    MissingFeature { row: u32, col: u32 },
    /// The underlying delta buffer refused the structural change.
    Delta(DeltaError),
}

impl std::fmt::Display for EdgeDataError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EdgeDataError::DimMismatch { expected, got } => {
                write!(f, "edge feature dim mismatch: expected {expected}, got {got}")
            }
            EdgeDataError::LengthMismatch { nnz, dim, len } => {
                write!(f, "edge data length {len} != nnz {nnz} * dim {dim}")
            }
            EdgeDataError::Misaligned { nnz, edge_rows } => {
                write!(f, "edge data has {edge_rows} rows but companion csr has {nnz} entries")
            }
            EdgeDataError::RowOutOfRange { row, nnz } => {
                write!(f, "edge row {row} out of range for nnz {nnz}")
            }
            EdgeDataError::MissingFeature { row, col } => {
                write!(f, "entry ({row},{col}) has no feature row — structure and edge data drifted")
            }
            EdgeDataError::Delta(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for EdgeDataError {}

impl From<DeltaError> for EdgeDataError {
    fn from(e: DeltaError) -> Self {
        EdgeDataError::Delta(e)
    }
}

/// Dense `nnz x dim` edge-feature matrix, row `e` aligned to flat CSR
/// position `e` of a companion matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct EdgeData {
    nnz: usize,
    dim: usize,
    data: Vec<f32>,
}

impl EdgeData {
    /// All-zero features for `nnz` edges of width `dim`.
    pub fn zeros(nnz: usize, dim: usize) -> EdgeData {
        EdgeData { nnz, dim, data: vec![0.0; nnz * dim] }
    }

    /// Wrap a flat row-major buffer; errors if the length is not `nnz * dim`.
    pub fn from_flat(nnz: usize, dim: usize, data: Vec<f32>) -> Result<EdgeData, EdgeDataError> {
        if data.len() != nnz * dim {
            return Err(EdgeDataError::LengthMismatch { nnz, dim, len: data.len() });
        }
        Ok(EdgeData { nnz, dim, data })
    }

    /// Build features aligned to `csr` by construction: `f(r, c)` is called
    /// once per stored entry in flat nnz order and must fill `out` (length
    /// `dim`, pre-zeroed) with that edge's features.
    pub fn for_csr(csr: &Csr, dim: usize, mut f: impl FnMut(u32, u32, &mut [f32])) -> EdgeData {
        let mut data = vec![0.0f32; csr.nnz() * dim];
        let mut e = 0usize;
        for r in 0..csr.rows() {
            for &c in csr.row_indices(r) {
                f(r as u32, c, &mut data[e * dim..(e + 1) * dim]);
                e += 1;
            }
        }
        EdgeData { nnz: csr.nnz(), dim, data }
    }

    /// Number of edge rows.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.nnz
    }

    /// Feature width `d_e`.
    #[inline]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The feature row of flat edge position `e`.
    #[inline]
    pub fn row(&self, e: usize) -> &[f32] {
        &self.data[e * self.dim..(e + 1) * self.dim]
    }

    /// Mutable feature row of flat edge position `e`.
    #[inline]
    pub fn row_mut(&mut self, e: usize) -> &mut [f32] {
        &mut self.data[e * self.dim..(e + 1) * self.dim]
    }

    /// The flat row-major buffer.
    #[inline]
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Gather edge rows by flat position, mirroring `Tensor::gather_rows` —
    /// but typed: an out-of-range index is an error, not a panic, because
    /// gather indices typically come from a (possibly stale) structure walk.
    pub fn gather_edge_rows(&self, idx: &[usize]) -> Result<EdgeData, EdgeDataError> {
        let mut data = Vec::with_capacity(idx.len() * self.dim);
        for &e in idx {
            if e >= self.nnz {
                return Err(EdgeDataError::RowOutOfRange { row: e, nnz: self.nnz });
            }
            data.extend_from_slice(self.row(e));
        }
        Ok(EdgeData { nnz: idx.len(), dim: self.dim, data })
    }

    /// Check row-count alignment against a companion CSR.
    pub fn check_aligned(&self, m: &Csr) -> Result<(), EdgeDataError> {
        if self.nnz != m.nnz() {
            return Err(EdgeDataError::Misaligned { nnz: m.nnz(), edge_rows: self.nnz });
        }
        Ok(())
    }

    /// Apply a row permutation: output row `t` is input row `perm[t]`.
    /// `perm` must index valid rows; its length becomes the new row count.
    pub fn permuted(&self, perm: &[usize]) -> Result<EdgeData, EdgeDataError> {
        self.gather_edge_rows(perm)
    }

    /// The features re-aligned to `m.transpose()`: row `t` of the result is
    /// the feature row of the source entry that lands at transpose position
    /// `t`. Errors typed if `self` is not aligned to `m`.
    pub fn transposed_with(&self, m: &Csr) -> Result<EdgeData, EdgeDataError> {
        self.check_aligned(m)?;
        self.permuted(&m.transpose_permutation())
    }

    /// Densify into an `nnz x dim` tensor (the form the autograd tape
    /// consumes as a constant).
    pub fn to_tensor(&self) -> Tensor {
        Tensor::from_vec(self.nnz, self.dim, self.data.clone())
            .expect("EdgeData invariant: len == nnz * dim")
    }
}

/// A [`DeltaCsr`] whose edges carry features: buffered inserts store their
/// feature row alongside the value, removes drop it, and
/// [`EdgeDeltaCsr::to_parts`] / [`EdgeDeltaCsr::compact`] re-emit a clean
/// `(Csr, EdgeData)` pair with rows aligned to the merged nnz order — or
/// fail typed if structure and features have drifted.
#[derive(Debug, Clone)]
pub struct EdgeDeltaCsr {
    delta: DeltaCsr,
    dim: usize,
    base_edges: EdgeData,
    pending_feats: BTreeMap<(u32, u32), Vec<f32>>,
}

impl EdgeDeltaCsr {
    /// Wrap a base matrix and its aligned edge features. Errors typed on
    /// misalignment.
    pub fn new(base: Csr, edges: EdgeData) -> Result<EdgeDeltaCsr, EdgeDataError> {
        edges.check_aligned(&base)?;
        let dim = edges.dim();
        Ok(EdgeDeltaCsr {
            delta: DeltaCsr::new(base),
            dim,
            base_edges: edges,
            pending_feats: BTreeMap::new(),
        })
    }

    /// Rows of the merged view.
    pub fn rows(&self) -> usize {
        self.delta.rows()
    }

    /// Columns of the merged view.
    pub fn cols(&self) -> usize {
        self.delta.cols()
    }

    /// Entry count of the merged view.
    pub fn nnz(&self) -> usize {
        self.delta.nnz()
    }

    /// Feature width.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Buffered mutations not yet compacted.
    pub fn pending(&self) -> usize {
        self.delta.pending()
    }

    /// Is entry `(r, c)` present in the merged view?
    pub fn contains(&self, r: u32, c: u32) -> bool {
        self.delta.contains(r, c)
    }

    /// Buffer an edge insert with its feature row. The feature width must
    /// match; duplicate/out-of-range edges fail typed like [`DeltaCsr`].
    pub fn insert(&mut self, r: u32, c: u32, v: f32, feat: &[f32]) -> Result<(), EdgeDataError> {
        if feat.len() != self.dim {
            return Err(EdgeDataError::DimMismatch { expected: self.dim, got: feat.len() });
        }
        self.delta.insert(r, c, v)?;
        self.pending_feats.insert((r, c), feat.to_vec());
        Ok(())
    }

    /// Buffer an edge remove, dropping its buffered feature row if the edge
    /// was itself a buffered insert.
    pub fn remove(&mut self, r: u32, c: u32) -> Result<(), EdgeDataError> {
        self.delta.remove(r, c)?;
        self.pending_feats.remove(&(r, c));
        Ok(())
    }

    /// Grow a square matrix by one empty row/column; returns the new id.
    pub fn add_node(&mut self) -> usize {
        self.delta.add_node()
    }

    /// The feature row of a live edge: a buffered insert's row wins, then the
    /// base table. Errors typed if the edge is absent or its feature row is
    /// missing (drift).
    pub fn feature(&self, r: u32, c: u32) -> Result<&[f32], EdgeDataError> {
        if let Some(row) = self.pending_feats.get(&(r, c)) {
            return Ok(row);
        }
        if self.delta.contains(r, c) {
            if let Some(e) = self.delta.base().edge_position(r, c) {
                return Ok(self.base_edges.row(e));
            }
        }
        Err(EdgeDataError::MissingFeature { row: r, col: c })
    }

    /// Materialize the merged view as an aligned `(Csr, EdgeData)` pair —
    /// the CSR is bitwise what [`DeltaCsr::to_csr`] produces, and edge row
    /// `e` is the feature row of the CSR's `e`-th entry. Fails typed if any
    /// merged entry lost its features.
    pub fn to_parts(&self) -> Result<(Csr, EdgeData), EdgeDataError> {
        let merged = self.delta.to_csr();
        let mut data = Vec::with_capacity(merged.nnz() * self.dim);
        for r in 0..merged.rows() {
            for &c in merged.row_indices(r) {
                let row = self.feature(r as u32, c)?;
                data.extend_from_slice(row);
            }
        }
        let edges = EdgeData::from_flat(merged.nnz(), self.dim, data)?;
        Ok((merged, edges))
    }

    /// Fold the buffer into the base (structure via [`DeltaCsr::compact`]'s
    /// `replace_parts` path, features re-emitted in the new nnz order) and
    /// reset both buffers. Fails typed — leaving the buffer untouched — if
    /// the merged view has drifted.
    pub fn compact(&mut self) -> Result<(), EdgeDataError> {
        let (_, edges) = self.to_parts()?;
        self.delta.compact();
        self.base_edges = edges;
        self.pending_feats.clear();
        debug_assert!(self.base_edges.check_aligned(self.delta.base()).is_ok());
        Ok(())
    }

    /// The compacted base pair (aligned by construction after `compact`).
    pub fn base(&self) -> (&Csr, &EdgeData) {
        (self.delta.base(), &self.base_edges)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path3() -> Csr {
        Csr::from_coo(3, 3, &[(0, 1, 1.0), (1, 0, 1.0), (1, 2, 1.0), (2, 1, 1.0)])
    }

    fn tagged(csr: &Csr) -> EdgeData {
        // Feature = (row, col) so alignment failures are visible as values.
        EdgeData::for_csr(csr, 2, |r, c, out| {
            out[0] = r as f32;
            out[1] = c as f32;
        })
    }

    #[test]
    fn for_csr_aligns_rows_to_flat_positions() {
        let m = path3();
        let e = tagged(&m);
        e.check_aligned(&m).unwrap();
        let mut flat = 0usize;
        for r in 0..m.rows() {
            for &c in m.row_indices(r) {
                assert_eq!(m.edge_position(r as u32, c), Some(flat));
                assert_eq!(e.row(flat), &[r as f32, c as f32]);
                flat += 1;
            }
        }
    }

    #[test]
    fn transposed_with_follows_the_counting_sort() {
        let m = Csr::from_coo(3, 4, &[(0, 3, 1.0), (1, 0, 2.0), (1, 3, 3.0), (2, 1, 4.0)]);
        let e = tagged(&m);
        let t = m.transpose();
        let et = e.transposed_with(&m).unwrap();
        et.check_aligned(&t).unwrap();
        let mut flat = 0usize;
        for r in 0..t.rows() {
            for &c in t.row_indices(r) {
                // Transposed entry (r, c) came from source entry (c, r).
                assert_eq!(et.row(flat), &[c as f32, r as f32]);
                flat += 1;
            }
        }
    }

    #[test]
    fn misalignment_and_bad_shapes_fail_typed() {
        let m = path3();
        let e = EdgeData::zeros(m.nnz() + 1, 2);
        assert_eq!(
            e.check_aligned(&m),
            Err(EdgeDataError::Misaligned { nnz: 4, edge_rows: 5 })
        );
        assert_eq!(
            EdgeData::from_flat(3, 2, vec![0.0; 5]),
            Err(EdgeDataError::LengthMismatch { nnz: 3, dim: 2, len: 5 })
        );
        assert_eq!(
            EdgeData::zeros(2, 2).gather_edge_rows(&[0, 2]),
            Err(EdgeDataError::RowOutOfRange { row: 2, nnz: 2 })
        );
    }

    #[test]
    fn delta_insert_remove_compact_keeps_alignment() {
        let m = path3();
        let e = tagged(&m);
        let mut d = EdgeDeltaCsr::new(m, e).unwrap();
        d.insert(0, 2, 9.0, &[0.0, 2.0]).unwrap();
        d.remove(1, 0).unwrap();
        assert_eq!(d.feature(0, 2).unwrap(), &[0.0, 2.0]);
        let (csr, edges) = d.to_parts().unwrap();
        edges.check_aligned(&csr).unwrap();
        d.compact().unwrap();
        let (base, base_edges) = d.base();
        assert_eq!(base.nnz(), csr.nnz());
        assert_eq!(base_edges.as_slice(), edges.as_slice());
    }

    #[test]
    fn delta_dim_mismatch_fails_typed_and_buffers_nothing() {
        let m = path3();
        let mut d = EdgeDeltaCsr::new(m.clone(), tagged(&m)).unwrap();
        let err = d.insert(0, 2, 1.0, &[1.0]).unwrap_err();
        assert_eq!(err, EdgeDataError::DimMismatch { expected: 2, got: 1 });
        assert_eq!(d.pending(), 0);
        assert!(!d.contains(0, 2));
    }
}
