//! A mutation buffer over [`Csr`]: edge inserts/deletes and node growth,
//! with periodic compaction back into a clean CSR.
//!
//! The streaming serve path (DESIGN.md §11) keeps the live adjacency in a
//! [`DeltaCsr`]: mutations are O(log pending) buffer updates, reads merge the
//! buffer with the base on the fly, and [`DeltaCsr::compact`] folds the
//! buffer back into the base in O(nnz). The exactness contract is that
//! [`DeltaCsr::to_csr`] is **bitwise identical** to `Csr::from_coo` over the
//! final entry set — merged rows list columns in the same ascending order
//! with the same `f32` bits, so every downstream normalization sees exactly
//! the matrix a from-scratch build would produce. All failure modes are
//! typed [`DeltaError`]s; nothing here panics on duplicate or missing edges.

use std::collections::{BTreeMap, BTreeSet};

use crate::Csr;

/// Typed mutation failures. The serve layer maps these onto wire errors, so
/// a bad client request can never take the server down.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DeltaError {
    /// `insert` of an entry that is already present (in the base or buffer).
    DuplicateEdge {
        /// Row of the offending entry.
        row: u32,
        /// Column of the offending entry.
        col: u32,
    },
    /// `remove` of an entry that is not present.
    MissingEdge {
        /// Row of the missing entry.
        row: u32,
        /// Column of the missing entry.
        col: u32,
    },
    /// Coordinate outside the current matrix shape.
    OutOfRange {
        /// Offending row.
        row: u32,
        /// Offending column.
        col: u32,
        /// Current row count.
        rows: usize,
        /// Current column count.
        cols: usize,
    },
}

impl std::fmt::Display for DeltaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DeltaError::DuplicateEdge { row, col } => {
                write!(f, "entry ({row},{col}) already exists")
            }
            DeltaError::MissingEdge { row, col } => {
                write!(f, "entry ({row},{col}) does not exist")
            }
            DeltaError::OutOfRange { row, col, rows, cols } => {
                write!(f, "entry ({row},{col}) outside {rows}x{cols}")
            }
        }
    }
}

impl std::error::Error for DeltaError {}

/// A [`Csr`] plus a mutation buffer.
///
/// Invariant: the insert buffer and the *live* base entries are disjoint —
/// an insert at a coordinate the base holds is only legal if that base entry
/// is in the delete set (delete-then-reinsert), in which case the insert's
/// value wins. This keeps merged rows duplicate-free by construction, which
/// is what makes the bitwise contract with `from_coo` trivial: no summing
/// ever happens on either path.
#[derive(Debug, Clone)]
pub struct DeltaCsr {
    base: Csr,
    inserts: BTreeMap<(u32, u32), f32>,
    deletes: BTreeSet<(u32, u32)>,
    /// Nodes added since the last compaction (base keeps its old shape).
    grown: usize,
    /// Mutations applied since the last compaction.
    pending: usize,
}

impl DeltaCsr {
    /// Wrap a base matrix with an empty mutation buffer.
    pub fn new(base: Csr) -> DeltaCsr {
        DeltaCsr { base, inserts: BTreeMap::new(), deletes: BTreeSet::new(), grown: 0, pending: 0 }
    }

    /// Current row count (base plus nodes added since compaction).
    #[inline]
    pub fn rows(&self) -> usize {
        self.base.rows() + self.grown
    }

    /// Current column count.
    #[inline]
    pub fn cols(&self) -> usize {
        self.base.cols() + self.grown
    }

    /// Stored entries in the merged view.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.base.nnz() - self.deletes.len() + self.inserts.len()
    }

    /// Mutations buffered since the last compaction.
    #[inline]
    pub fn pending(&self) -> usize {
        self.pending
    }

    /// The compacted base (ignores any pending buffer — callers that need
    /// the live view go through [`DeltaCsr::to_csr`]).
    #[inline]
    pub fn base(&self) -> &Csr {
        &self.base
    }

    fn base_has(&self, r: u32, c: u32) -> bool {
        (r as usize) < self.base.rows() && self.base.row_indices(r as usize).binary_search(&c).is_ok()
    }

    /// Is entry `(r, c)` present in the merged view?
    pub fn contains(&self, r: u32, c: u32) -> bool {
        self.inserts.contains_key(&(r, c))
            || (self.base_has(r, c) && !self.deletes.contains(&(r, c)))
    }

    fn check_bounds(&self, r: u32, c: u32) -> Result<(), DeltaError> {
        if (r as usize) >= self.rows() || (c as usize) >= self.cols() {
            return Err(DeltaError::OutOfRange { row: r, col: c, rows: self.rows(), cols: self.cols() });
        }
        Ok(())
    }

    /// Buffer an entry insert. Errors on out-of-range coordinates and on
    /// entries already present.
    pub fn insert(&mut self, r: u32, c: u32, v: f32) -> Result<(), DeltaError> {
        self.check_bounds(r, c)?;
        if self.contains(r, c) {
            return Err(DeltaError::DuplicateEdge { row: r, col: c });
        }
        // A deleted base entry stays in `deletes` — the insert's value wins
        // in the merge, the tombstone keeps the base entry suppressed.
        self.inserts.insert((r, c), v);
        self.pending += 1;
        Ok(())
    }

    /// Buffer an entry delete. Errors on out-of-range coordinates and on
    /// entries not present.
    pub fn remove(&mut self, r: u32, c: u32) -> Result<(), DeltaError> {
        self.check_bounds(r, c)?;
        if self.inserts.remove(&(r, c)).is_some() {
            // Un-buffer the earlier insert; any tombstone under it remains.
            self.pending += 1;
            return Ok(());
        }
        if self.base_has(r, c) && !self.deletes.contains(&(r, c)) {
            self.deletes.insert((r, c));
            self.pending += 1;
            return Ok(());
        }
        Err(DeltaError::MissingEdge { row: r, col: c })
    }

    /// Grow a square matrix by one empty row/column; returns the new id.
    /// Edges touching the new node arrive as ordinary [`DeltaCsr::insert`]s.
    pub fn add_node(&mut self) -> usize {
        assert_eq!(self.rows(), self.cols(), "add_node: matrix must be square");
        self.grown += 1;
        self.pending += 1;
        self.rows() - 1
    }

    /// The merged `(column, value)` pairs of row `i`, ascending by column.
    pub fn row_merged(&self, i: usize) -> Vec<(u32, f32)> {
        assert!(i < self.rows(), "row_merged: row {i} out of range");
        let r = i as u32;
        let mut ins = self.inserts.range((r, 0)..=(r, u32::MAX)).map(|(&(_, c), &v)| (c, v)).peekable();
        let mut out = Vec::new();
        if i < self.base.rows() {
            for (c, v) in self.base.row(i) {
                if self.deletes.contains(&(r, c)) {
                    continue;
                }
                while let Some(&(ic, iv)) = ins.peek() {
                    if ic < c {
                        out.push((ic, iv));
                        ins.next();
                    } else {
                        // `ic == c` is impossible: a live base entry and a
                        // buffered insert never share a coordinate.
                        break;
                    }
                }
                out.push((c, v));
            }
        }
        out.extend(ins);
        out
    }

    /// Materialize the merged view as a clean [`Csr`] — bitwise identical to
    /// `Csr::from_coo` over the same final entries.
    pub fn to_csr(&self) -> Csr {
        let rows = self.rows();
        let mut indptr = Vec::with_capacity(rows + 1);
        indptr.push(0);
        let mut indices = Vec::with_capacity(self.nnz());
        let mut values = Vec::with_capacity(self.nnz());
        for i in 0..rows {
            for (c, v) in self.row_merged(i) {
                indices.push(c);
                values.push(v);
            }
            indptr.push(indices.len());
        }
        Csr::from_parts(rows, self.cols(), indptr, indices, values)
    }

    /// Fold the buffer into the base in place (via [`Csr::replace_parts`],
    /// which also drops the base's cached transpose) and reset the buffer.
    pub fn compact(&mut self) {
        let merged = self.to_csr();
        let rows = merged.rows();
        let cols = merged.cols();
        let indptr = merged.indptr().to_vec();
        let indices = merged.indices().to_vec();
        let values = merged.values().to_vec();
        self.base.replace_parts(rows, cols, indptr, indices, values);
        self.inserts.clear();
        self.deletes.clear();
        self.grown = 0;
        self.pending = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path3() -> Csr {
        Csr::from_coo(3, 3, &[(0, 1, 1.0), (1, 0, 1.0), (1, 2, 1.0), (2, 1, 1.0)])
    }

    #[test]
    fn insert_then_to_csr_matches_from_coo() {
        let mut d = DeltaCsr::new(path3());
        d.insert(0, 2, 5.0).unwrap();
        d.insert(2, 0, 5.0).unwrap();
        let expect = Csr::from_coo(
            3,
            3,
            &[(0, 1, 1.0), (0, 2, 5.0), (1, 0, 1.0), (1, 2, 1.0), (2, 0, 5.0), (2, 1, 1.0)],
        );
        assert_eq!(d.to_csr(), expect);
        assert_eq!(d.nnz(), 6);
    }

    #[test]
    fn remove_then_to_csr_matches_from_coo() {
        let mut d = DeltaCsr::new(path3());
        d.remove(1, 2).unwrap();
        d.remove(2, 1).unwrap();
        let expect = Csr::from_coo(3, 3, &[(0, 1, 1.0), (1, 0, 1.0)]);
        assert_eq!(d.to_csr(), expect);
    }

    #[test]
    fn duplicate_insert_is_typed_error() {
        let mut d = DeltaCsr::new(path3());
        assert_eq!(d.insert(0, 1, 1.0), Err(DeltaError::DuplicateEdge { row: 0, col: 1 }));
        d.insert(0, 2, 1.0).unwrap();
        assert_eq!(d.insert(0, 2, 2.0), Err(DeltaError::DuplicateEdge { row: 0, col: 2 }));
    }

    #[test]
    fn missing_remove_is_typed_error() {
        let mut d = DeltaCsr::new(path3());
        assert_eq!(d.remove(0, 2), Err(DeltaError::MissingEdge { row: 0, col: 2 }));
        d.remove(0, 1).unwrap();
        assert_eq!(d.remove(0, 1), Err(DeltaError::MissingEdge { row: 0, col: 1 }));
    }

    #[test]
    fn out_of_range_is_typed_error() {
        let mut d = DeltaCsr::new(path3());
        assert_eq!(
            d.insert(0, 3, 1.0),
            Err(DeltaError::OutOfRange { row: 0, col: 3, rows: 3, cols: 3 })
        );
        assert_eq!(
            d.remove(7, 0),
            Err(DeltaError::OutOfRange { row: 7, col: 0, rows: 3, cols: 3 })
        );
    }

    #[test]
    fn delete_then_reinsert_takes_new_value() {
        let mut d = DeltaCsr::new(path3());
        d.remove(0, 1).unwrap();
        d.insert(0, 1, 9.0).unwrap();
        assert_eq!(d.row_merged(0), vec![(1, 9.0)]);
        d.compact();
        assert_eq!(d.base().row_values(0), &[9.0]);
    }

    #[test]
    fn insert_then_remove_round_trips() {
        let mut d = DeltaCsr::new(path3());
        d.insert(0, 2, 1.0).unwrap();
        d.remove(0, 2).unwrap();
        assert_eq!(d.to_csr(), path3());
        assert_eq!(d.remove(0, 2), Err(DeltaError::MissingEdge { row: 0, col: 2 }));
    }

    #[test]
    fn add_node_grows_shape_and_accepts_edges() {
        let mut d = DeltaCsr::new(path3());
        let id = d.add_node();
        assert_eq!(id, 3);
        assert_eq!(d.rows(), 4);
        d.insert(3, 0, 1.0).unwrap();
        d.insert(0, 3, 1.0).unwrap();
        let m = d.to_csr();
        assert_eq!(m.shape(), (4, 4));
        assert_eq!(m.row_indices(3), &[0]);
        assert_eq!(m.row_indices(0), &[1, 3]);
    }

    #[test]
    fn compact_resets_pending_and_preserves_view() {
        let mut d = DeltaCsr::new(path3());
        d.insert(0, 2, 2.0).unwrap();
        d.remove(1, 0).unwrap();
        assert_eq!(d.pending(), 2);
        let before = d.to_csr();
        d.compact();
        assert_eq!(d.pending(), 0);
        assert_eq!(d.to_csr(), before);
        assert_eq!(d.base(), &before);
    }
}
