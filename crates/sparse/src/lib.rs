//! Sparse matrix support for graph convolutions.
//!
//! The whole paper runs on one sparse kernel: `Â · H` where
//! `Â = D̃^{-1/2} (A + I) D̃^{-1/2}` (Eq 1–2). This crate provides the CSR
//! representation, the normalizations, SpMM, and the structural operations
//! the sampling baselines need (edge dropout for DropEdge, induced subgraphs
//! for ClusterGCN/GraphSAINT, row slices for FastGCN).
//!
//! # Example
//! ```
//! use lasagne_sparse::Csr;
//! use lasagne_tensor::Tensor;
//! // A path graph 0 - 1 - 2, symmetrically normalized with self-loops.
//! let adj = Csr::from_coo(3, 3, &[(0, 1, 1.0), (1, 0, 1.0), (1, 2, 1.0), (2, 1, 1.0)]);
//! let a_hat = adj.gcn_normalize();
//! let h = Tensor::eye(3);
//! let out = a_hat.spmm(&h); // one propagation step
//! assert_eq!(out.shape(), (3, 3));
//! ```

mod csr;
mod delta;
mod edgedata;
mod norm;
mod structure;

pub use csr::Csr;
pub use delta::{DeltaCsr, DeltaError};
pub use edgedata::{EdgeData, EdgeDataError, EdgeDeltaCsr};
