//! The [`Csr`] type: compressed sparse row `f32` matrices with `u32` column
//! indices (graphs here stay below 2³² nodes by a wide margin, and the
//! narrower index type halves the memory traffic of SpMM).
//!
//! Both SpMM kernels run gather-style over *output* rows — each output row
//! is written by exactly one chunk, and its neighbors accumulate in
//! ascending source-row order — so they partition onto the `lasagne-par`
//! pool with nnz-balanced chunks while staying bitwise identical to the
//! serial loop at any thread count (DESIGN.md §8).

use std::sync::OnceLock;

use lasagne_tensor::Tensor;

/// Column-block width of the blocked SpMM: each output row is produced
/// `CB` columns at a time into a stack accumulator, so the dense operand
/// streams through cache once per block (256-byte segments) instead of
/// once per nonzero (whole rows, which thrash L1 at wide hidden dims).
/// The hot path has a compile-time trip count for the autovectorizer.
const CB: usize = 64;

/// One output-row × one column-block of SpMM, full-width fast path:
/// `acc[0..CB] += v · x[j, c0..c0+CB]` over the row's nonzeros in stored
/// order — the same per-element accumulation sequence as the seed kernel,
/// so bits are unchanged.
#[inline(always)]
fn spmm_row_block(acc: &mut [f32; CB], idx: &[u32], vals: &[f32], x: &[f32], d: usize, c0: usize) {
    for (&j, &v) in idx.iter().zip(vals) {
        let seg = &x[j as usize * d + c0..j as usize * d + c0 + CB];
        for cc in 0..CB {
            acc[cc] += v * seg[cc];
        }
    }
}

/// Edge-block variant (`cw < CB`): identical accumulation with a runtime
/// bound.
#[inline(always)]
fn spmm_row_block_edge(
    acc: &mut [f32],
    idx: &[u32],
    vals: &[f32],
    x: &[f32],
    d: usize,
    c0: usize,
) {
    let cw = acc.len();
    for (&j, &v) in idx.iter().zip(vals) {
        let seg = &x[j as usize * d + c0..j as usize * d + c0 + cw];
        for (a, &xv) in acc.iter_mut().zip(seg) {
            *a += v * xv;
        }
    }
}

/// Compressed-sparse-row matrix.
///
/// Invariants (maintained by all constructors):
/// * `indptr.len() == rows + 1`, `indptr[0] == 0`, non-decreasing;
/// * column indices within each row are strictly increasing (duplicates are
///   summed at construction);
/// * `indices.len() == values.len() == indptr[rows]`.
pub struct Csr {
    rows: usize,
    cols: usize,
    indptr: Vec<usize>,
    indices: Vec<u32>,
    values: Vec<f32>,
    /// Lazily materialized transpose, shared by every `spmm_t` call (the
    /// backward of each training step re-uses the one built on step 1).
    /// Invalidated whenever `values_mut` hands out write access. Boxed so
    /// the recursion in the type is finite; deliberately excluded from
    /// `Clone`/`PartialEq`/`Debug` — it is a cache, not state.
    t_cache: OnceLock<Box<Csr>>,
}

impl Clone for Csr {
    fn clone(&self) -> Csr {
        Csr {
            rows: self.rows,
            cols: self.cols,
            indptr: self.indptr.clone(),
            indices: self.indices.clone(),
            values: self.values.clone(),
            t_cache: OnceLock::new(),
        }
    }
}

impl PartialEq for Csr {
    fn eq(&self, other: &Csr) -> bool {
        self.rows == other.rows
            && self.cols == other.cols
            && self.indptr == other.indptr
            && self.indices == other.indices
            && self.values == other.values
    }
}

impl std::fmt::Debug for Csr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Csr")
            .field("rows", &self.rows)
            .field("cols", &self.cols)
            .field("indptr", &self.indptr)
            .field("indices", &self.indices)
            .field("values", &self.values)
            .finish()
    }
}

impl Csr {
    /// Build from COO triplets `(row, col, value)`. Duplicate coordinates are
    /// summed; explicit zeros are kept (callers may rely on structure).
    pub fn from_coo(rows: usize, cols: usize, entries: &[(u32, u32, f32)]) -> Csr {
        for &(r, c, _) in entries {
            assert!(
                (r as usize) < rows && (c as usize) < cols,
                "from_coo: entry ({r},{c}) outside {rows}x{cols}"
            );
        }
        let mut sorted: Vec<(u32, u32, f32)> = entries.to_vec();
        sorted.sort_unstable_by_key(|&(r, c, _)| (r, c));

        // Per-row counts first, then prefix-sum into offsets; duplicate
        // coordinates collapse into the previously-pushed entry.
        let mut indptr = vec![0usize; rows + 1];
        let mut indices = Vec::with_capacity(sorted.len());
        let mut values = Vec::with_capacity(sorted.len());
        let mut prev: Option<(u32, u32)> = None;
        for &(r, c, v) in &sorted {
            if prev == Some((r, c)) {
                *values.last_mut().expect("non-empty on duplicate") += v;
            } else {
                indices.push(c);
                values.push(v);
                indptr[r as usize + 1] += 1;
                prev = Some((r, c));
            }
        }
        for r in 0..rows {
            indptr[r + 1] += indptr[r];
        }
        Csr {
            rows,
            cols,
            indptr,
            indices,
            values,
            t_cache: OnceLock::new(),
        }
    }

    /// Construct directly from CSR arrays, validating the invariants.
    pub fn from_parts(
        rows: usize,
        cols: usize,
        indptr: Vec<usize>,
        indices: Vec<u32>,
        values: Vec<f32>,
    ) -> Csr {
        assert_eq!(indptr.len(), rows + 1, "from_parts: indptr length");
        assert_eq!(indptr[0], 0, "from_parts: indptr[0]");
        assert_eq!(indices.len(), values.len(), "from_parts: nnz mismatch");
        assert_eq!(*indptr.last().unwrap(), indices.len(), "from_parts: total nnz");
        for w in indptr.windows(2) {
            assert!(w[0] <= w[1], "from_parts: indptr must be non-decreasing");
        }
        for &c in &indices {
            assert!((c as usize) < cols, "from_parts: col {c} out of range");
        }
        Csr {
            rows,
            cols,
            indptr,
            indices,
            values,
            t_cache: OnceLock::new(),
        }
    }

    /// Replace this matrix's contents in place with new CSR arrays,
    /// validating the same invariants as [`Csr::from_parts`]. This is the
    /// compaction path of the streaming delta layer; like
    /// [`Csr::values_mut`], it drops the cached transpose — the structure
    /// itself just changed, so a stale transpose would be worse than a stale
    /// reweighting.
    pub fn replace_parts(
        &mut self,
        rows: usize,
        cols: usize,
        indptr: Vec<usize>,
        indices: Vec<u32>,
        values: Vec<f32>,
    ) {
        let next = Csr::from_parts(rows, cols, indptr, indices, values);
        self.rows = next.rows;
        self.cols = next.cols;
        self.indptr = next.indptr;
        self.indices = next.indices;
        self.values = next.values;
        self.t_cache = OnceLock::new();
    }

    /// The `n x n` sparse identity.
    pub fn identity(n: usize) -> Csr {
        Csr {
            rows: n,
            cols: n,
            indptr: (0..=n).collect(),
            indices: (0..n as u32).collect(),
            values: vec![1.0; n],
            t_cache: OnceLock::new(),
        }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)`.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Number of stored entries.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.indices.len()
    }

    /// The `(column, value)` pairs of row `i`.
    #[inline]
    pub fn row(&self, i: usize) -> impl Iterator<Item = (u32, f32)> + '_ {
        let lo = self.indptr[i];
        let hi = self.indptr[i + 1];
        self.indices[lo..hi]
            .iter()
            .copied()
            .zip(self.values[lo..hi].iter().copied())
    }

    /// Column indices of row `i`.
    #[inline]
    pub fn row_indices(&self, i: usize) -> &[u32] {
        &self.indices[self.indptr[i]..self.indptr[i + 1]]
    }

    /// Values of row `i`.
    #[inline]
    pub fn row_values(&self, i: usize) -> &[f32] {
        &self.values[self.indptr[i]..self.indptr[i + 1]]
    }

    /// Number of stored entries in row `i`.
    #[inline]
    pub fn row_nnz(&self, i: usize) -> usize {
        self.indptr[i + 1] - self.indptr[i]
    }

    /// Raw indptr array (for kernels that walk the structure directly, e.g.
    /// GAT's per-edge attention).
    #[inline]
    pub fn indptr(&self) -> &[usize] {
        &self.indptr
    }

    /// Raw column-index array.
    #[inline]
    pub fn indices(&self) -> &[u32] {
        &self.indices
    }

    /// Raw value array.
    #[inline]
    pub fn values(&self) -> &[f32] {
        &self.values
    }

    /// Mutable value array (structure-preserving reweighting, e.g. GraphSAINT
    /// normalization). Drops the cached transpose — its values would go
    /// stale the moment the caller writes.
    #[inline]
    pub fn values_mut(&mut self) -> &mut [f32] {
        self.t_cache = OnceLock::new();
        &mut self.values
    }

    /// The transpose, materialized once on first use and cached for the
    /// lifetime of this matrix (or until [`Csr::values_mut`] invalidates
    /// it). This is what makes gather-form [`Csr::spmm_t`] pay the O(nnz)
    /// transpose cost once per training run instead of once per step.
    pub fn transposed(&self) -> &Csr {
        self.t_cache.get_or_init(|| {
            lasagne_obs::span!("csr.transpose");
            Box::new(self.transpose())
        })
    }

    /// Sparse × dense: `self · dense` — the hot kernel of every model in
    /// the stack. Column-blocked: each output row is built `CB` columns at
    /// a time in a stack accumulator, with the row's index/value segments
    /// fetched once and reused across blocks, so the dense operand moves
    /// through cache in small contiguous segments instead of whole rows
    /// per nonzero. Output rows are fanned out in nnz-balanced chunks —
    /// every chunk writes only its own rows, and each output element still
    /// accumulates its neighbors in stored (ascending-column) order, so
    /// the result is bitwise identical to the seed loop
    /// ([`Csr::spmm_reference`]) at any thread count.
    pub fn spmm(&self, dense: &Tensor) -> Tensor {
        assert_eq!(
            self.cols,
            dense.rows(),
            "spmm: {}x{} · {}x{}",
            self.rows,
            self.cols,
            dense.rows(),
            dense.cols()
        );
        let d = dense.cols();
        let mut out = Tensor::zeros(self.rows, d);
        if d == 0 || self.rows == 0 {
            return out;
        }
        lasagne_obs::span!("spmm");
        lasagne_obs::counter_add("spmm.nnz", self.values.len() as u64);
        let x = dense.as_slice();
        let (indptr, indices, values) = (&self.indptr, &self.indices, &self.values);
        lasagne_par::par_csr_row_chunks_mut(
            out.as_mut_slice(),
            d,
            indptr,
            lasagne_par::DEFAULT_CSR_CHUNK_NNZ,
            |i0, chunk| {
                for (r, o_row) in chunk.chunks_mut(d).enumerate() {
                    let i = i0 + r;
                    let (lo, hi) = (indptr[i], indptr[i + 1]);
                    let idx = &indices[lo..hi];
                    let vals = &values[lo..hi];
                    if d <= CB {
                        // Narrow operand: the whole output row is one block,
                        // so skip the block loop and the accumulate-then-copy
                        // round trip — axpy straight into the (zeroed) output
                        // row. Per-element accumulation order over the row's
                        // nonzeros is unchanged, so bits are unchanged.
                        for (&j, &v) in idx.iter().zip(vals) {
                            let x_row = &x[j as usize * d..j as usize * d + d];
                            for (o, &xv) in o_row.iter_mut().zip(x_row) {
                                *o += v * xv;
                            }
                        }
                        continue;
                    }
                    let mut c0 = 0;
                    while c0 < d {
                        let cw = (d - c0).min(CB);
                        if cw == CB {
                            let mut acc = [0.0f32; CB];
                            spmm_row_block(&mut acc, idx, vals, x, d, c0);
                            o_row[c0..c0 + CB].copy_from_slice(&acc);
                        } else {
                            let mut acc = [0.0f32; CB];
                            spmm_row_block_edge(&mut acc[..cw], idx, vals, x, d, c0);
                            o_row[c0..c0 + cw].copy_from_slice(&acc[..cw]);
                        }
                        c0 += CB;
                    }
                }
            },
        );
        out
    }

    /// Pinned copy of the seed (pre-blocking) SpMM loop, serial: whole-row
    /// axpy per nonzero. Exists so the bitwise-equivalence suite and the
    /// kernels bench can compare the blocked kernel against the exact code
    /// it replaced. Not part of the public API contract.
    #[doc(hidden)]
    pub fn spmm_reference(&self, dense: &Tensor) -> Tensor {
        assert_eq!(self.cols, dense.rows(), "spmm_reference: shape mismatch");
        let d = dense.cols();
        let mut out = Tensor::zeros(self.rows, d);
        if d == 0 || self.rows == 0 {
            return out;
        }
        for (i, o_row) in out.as_mut_slice().chunks_mut(d).enumerate() {
            for e in self.indptr[i]..self.indptr[i + 1] {
                let j = self.indices[e] as usize;
                let v = self.values[e];
                for (o, &x) in o_row.iter_mut().zip(dense.row(j)) {
                    *o += v * x;
                }
            }
        }
        out
    }

    /// `selfᵀ · dense` without forming a transpose per call: runs
    /// [`Csr::spmm`] on the lazily [cached transpose](Csr::transposed).
    /// This is the backward pass of [`Csr::spmm`].
    ///
    /// Gather form replaces the old per-edge scatter (which copied a dense
    /// row per *source* row and could not row-partition); the transposed
    /// rows list source rows in ascending order — the scatter's exact
    /// accumulation order — so results are bitwise unchanged
    /// ([`Csr::spmm_t_scatter`] stays around as the test reference).
    pub fn spmm_t(&self, dense: &Tensor) -> Tensor {
        assert_eq!(
            self.rows,
            dense.rows(),
            "spmm_t: ({}x{})ᵀ · {}x{}",
            self.rows,
            self.cols,
            dense.rows(),
            dense.cols()
        );
        lasagne_obs::span!("spmm_t");
        self.transposed().spmm(dense)
    }

    /// The original scatter-form `selfᵀ · dense`, kept (not wired anywhere)
    /// as the independent reference implementation for the
    /// gather-equals-scatter bitwise equivalence test.
    #[doc(hidden)]
    pub fn spmm_t_scatter(&self, dense: &Tensor) -> Tensor {
        assert_eq!(self.rows, dense.rows(), "spmm_t_scatter: shape mismatch");
        let d = dense.cols();
        let mut out = Tensor::zeros(self.cols, d);
        for i in 0..self.rows {
            let lo = self.indptr[i];
            let hi = self.indptr[i + 1];
            let d_row = dense.row(i).to_vec(); // copy: out and dense may alias rows
            for e in lo..hi {
                let j = self.indices[e] as usize;
                let v = self.values[e];
                let o_row = out.row_mut(j);
                for (o, &x) in o_row.iter_mut().zip(&d_row) {
                    *o += v * x;
                }
            }
        }
        out
    }

    /// Sparse × dense-vector specialization (used by PageRank).
    pub fn spmv(&self, x: &[f32]) -> Vec<f32> {
        assert_eq!(self.cols, x.len(), "spmv: dimension mismatch");
        lasagne_obs::span!("spmv");
        lasagne_obs::counter_add("spmv.nnz", self.values.len() as u64);
        let mut out = vec![0.0; self.rows];
        let (indptr, indices, values) = (&self.indptr, &self.indices, &self.values);
        lasagne_par::par_csr_row_chunks_mut(
            &mut out,
            1,
            indptr,
            lasagne_par::DEFAULT_CSR_CHUNK_NNZ,
            |i0, chunk| {
                for (r, o) in chunk.iter_mut().enumerate() {
                    let i = i0 + r;
                    let mut acc = 0.0;
                    for e in indptr[i]..indptr[i + 1] {
                        acc += values[e] * x[indices[e] as usize];
                    }
                    *o = acc;
                }
            },
        );
        out
    }

    /// The transpose, materialized (counting sort over columns, O(nnz)).
    pub fn transpose(&self) -> Csr {
        let mut counts = vec![0usize; self.cols + 1];
        for &c in &self.indices {
            counts[c as usize + 1] += 1;
        }
        for i in 1..=self.cols {
            counts[i] += counts[i - 1];
        }
        let indptr = counts.clone();
        let mut cursor = counts;
        let mut indices = vec![0u32; self.nnz()];
        let mut values = vec![0.0f32; self.nnz()];
        for r in 0..self.rows {
            for (c, v) in self.row(r) {
                let slot = cursor[c as usize];
                indices[slot] = r as u32;
                values[slot] = v;
                cursor[c as usize] += 1;
            }
        }
        Csr {
            rows: self.cols,
            cols: self.rows,
            indptr,
            indices,
            values,
            t_cache: OnceLock::new(),
        }
    }

    /// The flat nnz position of entry `(r, c)`, or `None` if the entry is
    /// not stored. Requires the column indices of row `r` to be sorted
    /// ascending, which every workspace constructor guarantees
    /// ([`Csr::from_coo`] sorts, [`Csr::transpose`] emits rows in order).
    /// This position is the row index into an aligned edge-feature matrix
    /// (`EdgeData`), which is why it is exposed.
    pub fn edge_position(&self, r: u32, c: u32) -> Option<usize> {
        let i = r as usize;
        if i >= self.rows {
            return None;
        }
        let lo = self.indptr[i];
        let hi = self.indptr[i + 1];
        self.indices[lo..hi]
            .binary_search(&c)
            .ok()
            .map(|off| lo + off)
    }

    /// For each entry of [`Csr::transpose`], the flat nnz position of the
    /// source entry it came from: `perm[t]` is the index into this matrix's
    /// value array whose `(r, c)` lands at transpose position `t`. Runs the
    /// same counting sort as `transpose()`, so the mapping is exact for any
    /// aligned side data — `EdgeData::transposed_with` applies it to keep
    /// edge-feature rows aligned across transposition.
    pub fn transpose_permutation(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.cols + 1];
        for &c in &self.indices {
            counts[c as usize + 1] += 1;
        }
        for i in 1..=self.cols {
            counts[i] += counts[i - 1];
        }
        let mut cursor = counts;
        let mut perm = vec![0usize; self.nnz()];
        for r in 0..self.rows {
            for e in self.indptr[r]..self.indptr[r + 1] {
                let c = self.indices[e] as usize;
                perm[cursor[c]] = e;
                cursor[c] += 1;
            }
        }
        perm
    }

    /// Row sums (weighted out-degrees).
    pub fn row_sums(&self) -> Vec<f32> {
        (0..self.rows)
            .map(|i| self.row_values(i).iter().sum())
            .collect()
    }

    /// Densify — for tests and tiny examples only.
    pub fn to_dense(&self) -> Tensor {
        let mut out = Tensor::zeros(self.rows, self.cols);
        for i in 0..self.rows {
            for (j, v) in self.row(i) {
                out[(i, j as usize)] += v;
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Csr {
        // [[0, 2, 0],
        //  [1, 0, 3],
        //  [0, 0, 0]]
        Csr::from_coo(3, 3, &[(0, 1, 2.0), (1, 0, 1.0), (1, 2, 3.0)])
    }

    #[test]
    fn from_coo_builds_expected_structure() {
        let m = sample();
        assert_eq!(m.nnz(), 3);
        assert_eq!(m.row_indices(0), &[1]);
        assert_eq!(m.row_values(1), &[1.0, 3.0]);
        assert_eq!(m.row_nnz(2), 0);
    }

    #[test]
    fn from_coo_sums_duplicates() {
        let m = Csr::from_coo(2, 2, &[(0, 0, 1.0), (0, 0, 2.5), (1, 1, 1.0)]);
        assert_eq!(m.nnz(), 2);
        assert_eq!(m.row_values(0), &[3.5]);
    }

    #[test]
    fn from_coo_handles_unsorted_input() {
        let a = Csr::from_coo(3, 3, &[(2, 0, 1.0), (0, 2, 2.0), (1, 1, 3.0)]);
        let b = Csr::from_coo(3, 3, &[(0, 2, 2.0), (1, 1, 3.0), (2, 0, 1.0)]);
        assert_eq!(a, b);
    }

    #[test]
    fn empty_leading_and_trailing_rows() {
        let m = Csr::from_coo(4, 2, &[(2, 1, 5.0)]);
        assert_eq!(m.row_nnz(0), 0);
        assert_eq!(m.row_nnz(1), 0);
        assert_eq!(m.row_values(2), &[5.0]);
        assert_eq!(m.row_nnz(3), 0);
    }

    #[test]
    fn identity_spmm_is_noop() {
        let x = Tensor::from_fn(4, 3, |i, j| (i * 3 + j) as f32);
        assert!(Csr::identity(4).spmm(&x).approx_eq(&x, 0.0));
    }

    #[test]
    fn spmm_matches_dense() {
        let m = sample();
        let x = Tensor::from_fn(3, 2, |i, j| (i + j) as f32 + 0.5);
        assert!(m.spmm(&x).approx_eq(&m.to_dense().matmul(&x), 1e-6));
    }

    #[test]
    fn spmm_t_matches_dense_transpose() {
        let m = sample();
        let x = Tensor::from_fn(3, 2, |i, j| (2 * i + j) as f32);
        let expect = m.to_dense().transpose().matmul(&x);
        assert!(m.spmm_t(&x).approx_eq(&expect, 1e-6));
    }

    #[test]
    fn spmv_matches_spmm() {
        let m = sample();
        let x = vec![1.0, 2.0, 3.0];
        let via_mm = m.spmm(&Tensor::col_vector(&x));
        assert_eq!(m.spmv(&x), via_mm.col(0));
    }

    #[test]
    fn transpose_round_trips() {
        let m = sample();
        assert_eq!(m.transpose().transpose(), m);
        assert!(m
            .transpose()
            .to_dense()
            .approx_eq(&m.to_dense().transpose(), 0.0));
    }

    #[test]
    fn row_sums_are_weighted_degrees() {
        assert_eq!(sample().row_sums(), vec![2.0, 4.0, 0.0]);
    }

    #[test]
    fn transposed_is_cached_and_invalidated_by_values_mut() {
        let mut m = sample();
        let first: *const Csr = m.transposed();
        let second: *const Csr = m.transposed();
        assert_eq!(first, second, "second call must hit the cache");
        assert_eq!(m.transposed(), &m.transpose());
        // Reweighting must rebuild the transpose with the new values.
        m.values_mut()[0] = 10.0;
        assert_eq!(m.transposed(), &m.transpose());
        assert!(m.transposed().values().contains(&10.0));
    }

    #[test]
    fn clone_and_eq_ignore_the_transpose_cache() {
        let m = sample();
        let _ = m.transposed();
        let c = m.clone();
        assert_eq!(m, c, "cache must not affect equality");
        assert_eq!(c.transposed(), &c.transpose());
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn from_coo_bounds_checked() {
        let _ = Csr::from_coo(2, 2, &[(2, 0, 1.0)]);
    }

    #[test]
    #[should_panic(expected = "spmm")]
    fn spmm_shape_checked() {
        let _ = sample().spmm(&Tensor::ones(4, 2));
    }
}
