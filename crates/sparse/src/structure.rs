//! Structural operations the sampling baselines are built from:
//! edge dropout (DropEdge), induced subgraphs (ClusterGCN, GraphSAINT,
//! inductive splits) and row/column slices (FastGCN layer sampling).

use crate::Csr;
use lasagne_tensor::TensorRng;

impl Csr {
    /// Randomly keep each stored entry with probability `keep`
    /// (independently). This is the DropEdge operation on a directed edge
    /// list; for an undirected graph apply it to the upper triangle and
    /// mirror (see `drop_edges_sym`).
    pub fn drop_entries(&self, keep: f32, rng: &mut TensorRng) -> Csr {
        assert!((0.0..=1.0).contains(&keep), "drop_entries: keep={keep}");
        let mut coo = Vec::with_capacity((self.nnz() as f32 * keep) as usize + 1);
        for i in 0..self.rows() {
            for (j, v) in self.row(i) {
                if rng.bernoulli(keep) {
                    coo.push((i as u32, j, v));
                }
            }
        }
        Csr::from_coo(self.rows(), self.cols(), &coo)
    }

    /// DropEdge for symmetric adjacencies: drop undirected edges (upper
    /// triangle) with probability `1 - keep` and mirror the survivors, so the
    /// result stays symmetric. Diagonal entries are always kept.
    pub fn drop_edges_sym(&self, keep: f32, rng: &mut TensorRng) -> Csr {
        assert_eq!(self.rows(), self.cols(), "drop_edges_sym: must be square");
        assert!((0.0..=1.0).contains(&keep), "drop_edges_sym: keep={keep}");
        let mut coo = Vec::with_capacity(self.nnz());
        for i in 0..self.rows() {
            for (j, v) in self.row(i) {
                let ju = j as usize;
                match ju.cmp(&i) {
                    std::cmp::Ordering::Equal => coo.push((i as u32, j, v)),
                    std::cmp::Ordering::Greater => {
                        if rng.bernoulli(keep) {
                            coo.push((i as u32, j, v));
                            coo.push((j, i as u32, v));
                        }
                    }
                    std::cmp::Ordering::Less => {} // mirrored from the upper triangle
                }
            }
        }
        Csr::from_coo(self.rows(), self.cols(), &coo)
    }

    /// Induced square submatrix on `nodes` (which must be square-compatible):
    /// keeps entries whose row *and* column are selected, renumbered to
    /// `0..nodes.len()`. Returns the submatrix; `nodes[i]` is the original id
    /// of new node `i`.
    pub fn induced(&self, nodes: &[usize]) -> Csr {
        assert_eq!(self.rows(), self.cols(), "induced: must be square");
        let mut inv = vec![u32::MAX; self.cols()];
        for (new, &old) in nodes.iter().enumerate() {
            assert!(old < self.rows(), "induced: node {old} out of range");
            assert!(
                inv[old] == u32::MAX,
                "induced: node {old} selected twice"
            );
            inv[old] = new as u32;
        }
        let mut coo = Vec::new();
        for (new_r, &old_r) in nodes.iter().enumerate() {
            for (old_c, v) in self.row(old_r) {
                let new_c = inv[old_c as usize];
                if new_c != u32::MAX {
                    coo.push((new_r as u32, new_c, v));
                }
            }
        }
        Csr::from_coo(nodes.len(), nodes.len(), &coo)
    }

    /// Rectangular slice: selected rows × selected columns, renumbered.
    /// This is the FastGCN building block (layer ℓ nodes × layer ℓ+1 nodes).
    pub fn slice(&self, row_ids: &[usize], col_ids: &[usize]) -> Csr {
        let mut inv = vec![u32::MAX; self.cols()];
        for (new, &old) in col_ids.iter().enumerate() {
            assert!(old < self.cols(), "slice: col {old} out of range");
            inv[old] = new as u32;
        }
        let mut coo = Vec::new();
        for (new_r, &old_r) in row_ids.iter().enumerate() {
            assert!(old_r < self.rows(), "slice: row {old_r} out of range");
            for (old_c, v) in self.row(old_r) {
                let new_c = inv[old_c as usize];
                if new_c != u32::MAX {
                    coo.push((new_r as u32, new_c, v));
                }
            }
        }
        Csr::from_coo(row_ids.len(), col_ids.len(), &coo)
    }

    /// Selected rows × *all* columns, column indices unchanged (unlike
    /// [`Csr::slice`], which renumbers). The result left-multiplies the same
    /// dense operands as `self`, so `gather_rows(rows).spmm(x)` computes
    /// exactly the `rows` of `self.spmm(x)` — the streaming engine's
    /// row-sliced re-propagation primitive.
    pub fn gather_rows(&self, rows: &[usize]) -> Csr {
        let mut indptr = Vec::with_capacity(rows.len() + 1);
        indptr.push(0);
        let mut indices = Vec::new();
        let mut values = Vec::new();
        for &r in rows {
            assert!(r < self.rows(), "gather_rows: row {r} out of range");
            indices.extend_from_slice(self.row_indices(r));
            values.extend_from_slice(self.row_values(r));
            indptr.push(indices.len());
        }
        Csr::from_parts(rows.len(), self.cols(), indptr, indices, values)
    }

    /// Column-degree vector (in-degrees for a directed adjacency), used by
    /// FastGCN's importance distribution `q(v) ∝ ‖Â[:,v]‖²`.
    pub fn col_sq_norms(&self) -> Vec<f32> {
        let mut out = vec![0.0f32; self.cols()];
        for e in 0..self.nnz() {
            let c = self.indices()[e] as usize;
            let v = self.values()[e];
            out[c] += v * v;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ring(n: usize) -> Csr {
        let mut coo = Vec::new();
        for i in 0..n {
            let j = (i + 1) % n;
            coo.push((i as u32, j as u32, 1.0));
            coo.push((j as u32, i as u32, 1.0));
        }
        Csr::from_coo(n, n, &coo)
    }

    #[test]
    fn drop_entries_respects_extremes() {
        let m = ring(10);
        let mut rng = TensorRng::seed_from_u64(0);
        assert_eq!(m.drop_entries(1.0, &mut rng).nnz(), m.nnz());
        assert_eq!(m.drop_entries(0.0, &mut rng).nnz(), 0);
    }

    #[test]
    fn drop_entries_keeps_roughly_fraction() {
        let m = ring(500);
        let mut rng = TensorRng::seed_from_u64(1);
        let kept = m.drop_entries(0.7, &mut rng).nnz() as f32 / m.nnz() as f32;
        assert!((kept - 0.7).abs() < 0.08, "kept fraction {kept}");
    }

    #[test]
    fn drop_edges_sym_stays_symmetric() {
        let m = ring(50);
        let mut rng = TensorRng::seed_from_u64(2);
        let d = m.drop_edges_sym(0.5, &mut rng);
        let dense = d.to_dense();
        assert!(dense.approx_eq(&dense.transpose(), 0.0));
        assert!(d.nnz() < m.nnz());
    }

    #[test]
    fn induced_subgraph_renumbers() {
        let m = ring(6);
        // Nodes 0,1,2 form a path inside the ring (edges 0-1, 1-2).
        let s = m.induced(&[0, 1, 2]);
        assert_eq!(s.shape(), (3, 3));
        assert_eq!(s.nnz(), 4);
        assert_eq!(s.to_dense()[(0, 1)], 1.0);
        assert_eq!(s.to_dense()[(0, 2)], 0.0);
    }

    #[test]
    fn induced_respects_selection_order() {
        let m = ring(4);
        let s = m.induced(&[2, 1]);
        // New node 0 = old 2, new node 1 = old 1; edge 1-2 exists.
        assert_eq!(s.to_dense()[(0, 1)], 1.0);
    }

    #[test]
    fn slice_extracts_rectangle() {
        let m = ring(5);
        let s = m.slice(&[0, 1], &[1, 2, 4]);
        assert_eq!(s.shape(), (2, 3));
        // Row old-0 has neighbors 1 and 4 → new cols 0 and 2.
        assert_eq!(s.row_indices(0), &[0, 2]);
        // Row old-1 has neighbors 0 (dropped) and 2 → new col 1.
        assert_eq!(s.row_indices(1), &[1]);
    }

    #[test]
    fn col_sq_norms_match_dense() {
        let m = ring(6).gcn_normalize();
        let d = m.to_dense();
        let norms = m.col_sq_norms();
        for j in 0..6 {
            let expect: f32 = (0..6).map(|i| d[(i, j)] * d[(i, j)]).sum();
            assert!((norms[j] - expect).abs() < 1e-6);
        }
    }

    #[test]
    #[should_panic(expected = "selected twice")]
    fn induced_rejects_duplicates() {
        let _ = ring(4).induced(&[1, 1]);
    }
}
