//! Property test: gradient-check randomly-generated tape programs.
//!
//! Instead of checking each op in isolation (see `gradcheck.rs`), build
//! random DAGs of smooth ops and verify the whole composition against
//! central differences — this catches wrong gradient *routing* (missed
//! accumulation when a node fans out, wrong parent order) that per-op
//! tests cannot.
//!
//! Ported from `proptest` to the `lasagne-testkit` harness; the case count
//! (64) exceeds the original 48 and vector shrinking still minimizes the
//! failing op sequence.

use lasagne_autograd::{grad_check, NodeId, ParamStore, Tape};
use lasagne_tensor::TensorRng;
use lasagne_testkit::gens::{vec_of, OneOf};
use lasagne_testkit::{prop_assert, prop_check, Rng};

/// One step of program growth: combine existing nodes with a smooth op.
/// (Only C¹ ops — no ReLU/max — so the numeric derivative is clean.)
#[derive(Debug, Clone)]
enum Step {
    Add(usize, usize),
    Sub(usize, usize),
    Mul(usize, usize),
    Tanh(usize),
    Sigmoid(usize),
    Scale(usize),
    MatMulSquare(usize, usize),
    RowBias(usize),
    SumColsThenBroadcast(usize),
}

fn step_gen() -> OneOf<Step> {
    let pair = |rng: &mut Rng| (rng.index(100), rng.index(100));
    OneOf::new(vec![
        Box::new(move |rng: &mut Rng| { let (a, b) = pair(rng); Step::Add(a, b) }),
        Box::new(move |rng: &mut Rng| { let (a, b) = pair(rng); Step::Sub(a, b) }),
        Box::new(move |rng: &mut Rng| { let (a, b) = pair(rng); Step::Mul(a, b) }),
        Box::new(|rng: &mut Rng| Step::Tanh(rng.index(100))),
        Box::new(|rng: &mut Rng| Step::Sigmoid(rng.index(100))),
        Box::new(|rng: &mut Rng| Step::Scale(rng.index(100))),
        Box::new(move |rng: &mut Rng| { let (a, b) = pair(rng); Step::MatMulSquare(a, b) }),
        Box::new(|rng: &mut Rng| Step::RowBias(rng.index(100))),
        Box::new(|rng: &mut Rng| Step::SumColsThenBroadcast(rng.index(100))),
    ])
}

/// Execute a program over 3×3 nodes; every step's operand indices are
/// reduced modulo the current frontier, so any random sequence is valid.
fn run_program(
    tape: &mut Tape,
    store: &ParamStore,
    params: &[lasagne_autograd::ParamId],
    bias: lasagne_autograd::ParamId,
    steps: &[Step],
) -> NodeId {
    let mut nodes: Vec<NodeId> = params.iter().map(|&p| tape.param(p, store)).collect();
    for step in steps {
        let pick = |i: &usize, len: usize| i % len;
        let n = nodes.len();
        let out = match step {
            Step::Add(a, b) => {
                let (x, y) = (nodes[pick(a, n)], nodes[pick(b, n)]);
                tape.add(x, y)
            }
            Step::Sub(a, b) => {
                let (x, y) = (nodes[pick(a, n)], nodes[pick(b, n)]);
                tape.sub(x, y)
            }
            Step::Mul(a, b) => {
                let (x, y) = (nodes[pick(a, n)], nodes[pick(b, n)]);
                tape.mul(x, y)
            }
            Step::Tanh(a) => {
                let x = nodes[pick(a, n)];
                tape.tanh(x)
            }
            Step::Sigmoid(a) => {
                let x = nodes[pick(a, n)];
                tape.sigmoid(x)
            }
            Step::Scale(a) => {
                let x = nodes[pick(a, n)];
                tape.scale(x, 0.7)
            }
            Step::MatMulSquare(a, b) => {
                let (x, y) = (nodes[pick(a, n)], nodes[pick(b, n)]);
                tape.matmul(x, y)
            }
            Step::RowBias(a) => {
                let x = nodes[pick(a, n)];
                let bn = tape.param(bias, store);
                tape.add_row_broadcast(x, bn)
            }
            Step::SumColsThenBroadcast(a) => {
                let x = nodes[pick(a, n)];
                let c = tape.sum_cols(x); // 3×1
                tape.mul_col_broadcast(x, c)
            }
        };
        nodes.push(out);
    }
    let last = *nodes.last().expect("non-empty");
    // tanh keeps the loss surface bounded so f32 central differences stay
    // accurate even for adversarial programs.
    let squashed = tape.tanh(last);
    let sq = tape.mul(squashed, squashed);
    tape.mean_all(sq)
}

prop_check! {
    cases = 64,
    fn random_dags_pass_gradient_check(
        steps in vec_of(step_gen(), 1..10),
        seed in 0u64..10_000,
    ) {
        let mut rng = TensorRng::seed_from_u64(seed);
        let mut store = ParamStore::new();
        let params: Vec<_> = (0..2)
            .map(|i| store.add(format!("p{i}"), rng.uniform_tensor(3, 3, -0.8, 0.8)))
            .collect();
        let bias = store.add("bias", rng.uniform_tensor(1, 3, -0.5, 0.5));
        let report = grad_check(&mut store, 4e-3, |tape, s| {
            run_program(tape, s, &params, bias, &steps)
        });
        prop_assert!(
            report.passes(3e-2),
            "program {steps:?} failed: {report:?}"
        );
    }
}
