//! Central-difference gradient checks for every differentiable op.
//!
//! Inputs are kept away from kinks (ReLU at 0, max-stack ties) so the
//! numerical derivative is well-defined.

use std::rc::Rc;

use lasagne_autograd::{grad_check, NodeId, ParamStore, Tape};
use lasagne_sparse::Csr;
use lasagne_tensor::{Tensor, TensorRng};

const EPS: f32 = 5e-3;
const TOL: f32 = 2e-2;

fn check(store: &mut ParamStore, forward: impl FnMut(&mut Tape, &ParamStore) -> NodeId) {
    let report = grad_check(store, EPS, forward);
    assert!(
        report.passes(TOL),
        "gradient check failed: {report:?} (tol {TOL})"
    );
    assert!(report.checked > 0);
}

/// Store with one named parameter drawn away from zero to dodge kinks.
fn store_with(shape: (usize, usize), seed: u64) -> (ParamStore, lasagne_autograd::ParamId) {
    let mut rng = TensorRng::seed_from_u64(seed);
    let mut t = rng.uniform_tensor(shape.0, shape.1, 0.25, 1.75);
    // Random signs, magnitudes stay ≥ 0.25.
    for v in t.as_mut_slice() {
        if rng.bernoulli(0.5) {
            *v = -*v;
        }
    }
    let mut s = ParamStore::new();
    let id = s.add("w", t);
    (s, id)
}

#[test]
fn matmul_grads() {
    let mut rng = TensorRng::seed_from_u64(0);
    let mut store = ParamStore::new();
    let a = store.add("a", rng.uniform_tensor(3, 4, -1.0, 1.0));
    let b = store.add("b", rng.uniform_tensor(4, 2, -1.0, 1.0));
    check(&mut store, |t, s| {
        let an = t.param(a, s);
        let bn = t.param(b, s);
        let y = t.matmul(an, bn);
        let sq = t.mul(y, y);
        t.mean_all(sq)
    });
}

#[test]
fn add_sub_mul_grads() {
    let mut rng = TensorRng::seed_from_u64(1);
    let mut store = ParamStore::new();
    let a = store.add("a", rng.uniform_tensor(2, 3, -1.0, 1.0));
    let b = store.add("b", rng.uniform_tensor(2, 3, -1.0, 1.0));
    check(&mut store, |t, s| {
        let an = t.param(a, s);
        let bn = t.param(b, s);
        let x = t.add(an, bn);
        let y = t.sub(x, bn);
        let z = t.mul(y, an);
        t.mean_all(z)
    });
}

#[test]
fn exp_and_add_col_broadcast_grads() {
    let mut rng = TensorRng::seed_from_u64(21);
    let mut store = ParamStore::new();
    let x = store.add("x", rng.uniform_tensor(3, 4, -1.0, 1.0));
    let c = store.add("c", rng.uniform_tensor(3, 1, -0.5, 0.5));
    check(&mut store, |t, s| {
        let xn = t.param(x, s);
        let cn = t.param(c, s);
        let shifted = t.add_col_broadcast(xn, cn);
        let e = t.exp(shifted);
        t.mean_all(e)
    });
}

#[test]
fn div_grads() {
    let mut rng = TensorRng::seed_from_u64(2);
    let mut store = ParamStore::new();
    let a = store.add("a", rng.uniform_tensor(2, 2, 0.5, 1.5));
    let b = store.add("b", rng.uniform_tensor(2, 2, 1.0, 2.0));
    check(&mut store, |t, s| {
        let an = t.param(a, s);
        let bn = t.param(b, s);
        let y = t.div(an, bn);
        t.mean_all(y)
    });
}

#[test]
fn scale_addconst_pow_grads() {
    let (mut store, w) = store_with((2, 3), 3);
    // Force positive values for pow.
    store.value_mut(w).map_assign(f32::abs);
    check(&mut store, |t, s| {
        let wn = t.param(w, s);
        let a = t.scale(wn, 1.7);
        let b = t.add_const(a, 0.3);
        let c = t.pow(b, 1.5, 1e-3);
        t.mean_all(c)
    });
}

#[test]
fn negative_pow_grads() {
    let (mut store, w) = store_with((2, 2), 4);
    store.value_mut(w).map_assign(|v| v.abs() + 0.5);
    check(&mut store, |t, s| {
        let wn = t.param(w, s);
        let y = t.pow(wn, -0.5, 1e-3);
        t.mean_all(y)
    });
}

#[test]
fn mul_scalar_node_grads() {
    let mut rng = TensorRng::seed_from_u64(5);
    let mut store = ParamStore::new();
    let x = store.add("x", rng.uniform_tensor(3, 2, -1.0, 1.0));
    let s = store.add("s", Tensor::full(1, 1, 0.7));
    check(&mut store, |t, st| {
        let xn = t.param(x, st);
        let sn = t.param(s, st);
        let y = t.mul_scalar_node(xn, sn);
        let sq = t.mul(y, y);
        t.mean_all(sq)
    });
}

#[test]
fn activation_grads() {
    let (mut store, w) = store_with((3, 3), 6);
    check(&mut store, |t, s| {
        let wn = t.param(w, s);
        let a = t.relu(wn);
        let b = t.sigmoid(a);
        let c = t.tanh(b);
        let d = t.leaky_relu(c, 0.2);
        t.mean_all(d)
    });
}

#[test]
fn leaky_relu_negative_branch_grads() {
    let mut store = ParamStore::new();
    let w = store.add("w", Tensor::from_rows(&[&[-1.0, -0.5], &[-2.0, -0.25]]));
    check(&mut store, |t, s| {
        let wn = t.param(w, s);
        let y = t.leaky_relu(wn, 0.2);
        t.mean_all(y)
    });
}

#[test]
fn dropout_grads_with_deterministic_mask() {
    let (mut store, w) = store_with((4, 4), 7);
    check(&mut store, |t, s| {
        // Fresh-but-identical RNG per rebuild keeps the mask fixed.
        let mut rng = TensorRng::seed_from_u64(12345);
        let wn = t.param(w, s);
        let y = t.dropout(wn, 0.6, &mut rng);
        let sq = t.mul(y, y);
        t.mean_all(sq)
    });
}

#[test]
fn broadcast_grads() {
    let mut rng = TensorRng::seed_from_u64(8);
    let mut store = ParamStore::new();
    let x = store.add("x", rng.uniform_tensor(3, 4, -1.0, 1.0));
    let b = store.add("b", rng.uniform_tensor(1, 4, -0.5, 0.5));
    let c = store.add("c", rng.uniform_tensor(3, 1, 0.5, 1.5));
    check(&mut store, |t, s| {
        let xn = t.param(x, s);
        let bn = t.param(b, s);
        let cn = t.param(c, s);
        let y = t.add_row_broadcast(xn, bn);
        let z = t.mul_col_broadcast(y, cn);
        let sq = t.mul(z, z);
        t.mean_all(sq)
    });
}

#[test]
fn log_softmax_and_nll_grads() {
    let mut rng = TensorRng::seed_from_u64(9);
    let mut store = ParamStore::new();
    let x = store.add("logits", rng.uniform_tensor(5, 3, -2.0, 2.0));
    let labels = Rc::new(vec![0usize, 2, 1, 1, 0]);
    let idx = Rc::new(vec![0usize, 2, 4]);
    check(&mut store, move |t, s| {
        let xn = t.param(x, s);
        let lp = t.log_softmax(xn);
        t.nll_masked(lp, labels.clone(), idx.clone())
    });
}

#[test]
fn concat_slice_gather_grads() {
    let mut rng = TensorRng::seed_from_u64(10);
    let mut store = ParamStore::new();
    let a = store.add("a", rng.uniform_tensor(3, 2, -1.0, 1.0));
    let b = store.add("b", rng.uniform_tensor(3, 3, -1.0, 1.0));
    let idx = Rc::new(vec![2usize, 0, 2]);
    check(&mut store, move |t, s| {
        let an = t.param(a, s);
        let bn = t.param(b, s);
        let cat = t.concat_cols(&[an, bn]);
        let sl = t.slice_cols(cat, 1, 4);
        let ga = t.gather_rows(sl, idx.clone());
        let sq = t.mul(ga, ga);
        t.mean_all(sq)
    });
}

#[test]
fn reduction_grads() {
    let (mut store, w) = store_with((3, 4), 11);
    check(&mut store, |t, s| {
        let wn = t.param(w, s);
        let rows = t.sum_rows(wn); // 1×4
        let cols = t.sum_cols(wn); // 3×1
        let a = t.mul(rows, rows);
        let b = t.mul(cols, cols);
        let sa = t.sum_all(a);
        let sb = t.sum_all(b);
        t.add(sa, sb)
    });
}

#[test]
fn max_stack_grads_away_from_ties() {
    let mut store = ParamStore::new();
    // Clearly separated values so ±eps never flips a winner.
    let a = store.add("a", Tensor::from_rows(&[&[1.0, -3.0], &[0.5, 2.0]]));
    let b = store.add("b", Tensor::from_rows(&[&[-1.0, 3.0], &[2.5, -2.0]]));
    check(&mut store, |t, s| {
        let an = t.param(a, s);
        let bn = t.param(b, s);
        let m = t.max_stack(&[an, bn]);
        let sq = t.mul(m, m);
        t.mean_all(sq)
    });
}

#[test]
fn pairnorm_grads() {
    let (mut store, w) = store_with((4, 3), 12);
    check(&mut store, |t, s| {
        let wn = t.param(w, s);
        let y = t.pairnorm(wn, 1.0);
        let sq = t.mul(y, y);
        // Weight the entries so the gradient isn't trivially zero under the
        // norm constraint.
        let weights = t.constant(Tensor::from_fn(4, 3, |i, j| (i + 2 * j) as f32 * 0.1));
        let prod = t.mul(sq, weights);
        t.mean_all(prod)
    });
}

#[test]
fn spmm_grads() {
    let adj = Rc::new(
        Csr::from_coo(
            3,
            3,
            &[(0, 1, 1.0), (1, 0, 1.0), (1, 2, 1.0), (2, 1, 1.0)],
        )
        .gcn_normalize(),
    );
    let (mut store, w) = store_with((3, 2), 13);
    check(&mut store, move |t, s| {
        let wn = t.param(w, s);
        let y = t.spmm(adj.clone(), wn);
        let sq = t.mul(y, y);
        t.mean_all(sq)
    });
}

#[test]
fn gat_aggregate_grads() {
    // Ring of 4 with self-loops as the attention structure.
    let mut coo = Vec::new();
    for i in 0u32..4 {
        let j = (i + 1) % 4;
        coo.push((i, j, 1.0));
        coo.push((j, i, 1.0));
        coo.push((i, i, 1.0));
    }
    let adj = Rc::new(Csr::from_coo(4, 4, &coo));
    let mut rng = TensorRng::seed_from_u64(14);
    let mut store = ParamStore::new();
    let z = store.add("z", rng.uniform_tensor(4, 3, -1.0, 1.0));
    let asrc = store.add("asrc", rng.uniform_tensor(3, 1, -0.7, 0.7));
    let adst = store.add("adst", rng.uniform_tensor(3, 1, -0.7, 0.7));
    check(&mut store, move |t, s| {
        let zn = t.param(z, s);
        let a1 = t.param(asrc, s);
        let a2 = t.param(adst, s);
        let ssrc = t.matmul(zn, a1);
        let sdst = t.matmul(zn, a2);
        let out = t.gat_aggregate(adj.clone(), zn, ssrc, sdst, 0.2);
        let sq = t.mul(out, out);
        t.mean_all(sq)
    });
}

#[test]
fn st_gate_x_path_grads() {
    // The straight-through estimator is exact for the x path; fix p as a
    // constant so the sampled mask is stable under parameter perturbation.
    let (mut store, w) = store_with((5, 3), 15);
    check(&mut store, |t, s| {
        let mut rng = TensorRng::seed_from_u64(77);
        let wn = t.param(w, s);
        let p = t.constant(Tensor::col_vector(&[0.9, 0.1, 0.95, 0.5, 0.99]));
        let gated = t.st_bernoulli_gate(wn, p, &mut rng);
        let sq = t.mul(gated, gated);
        t.mean_all(sq)
    });
}

#[test]
fn st_gate_probability_path_is_straight_through() {
    // Analytic expectation: dL/dp_i = Σ_j g_ij · x_ij with g = ∂L/∂(x⊙m).
    // With L = sum(x ⊙ m), g = 1, so dL/dp_i must equal Σ_j x_ij regardless
    // of the sampled mask.
    let mut store = ParamStore::new();
    let x = store.add("x", Tensor::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]));
    let p = store.add_with_decay("p", Tensor::col_vector(&[0.8, 0.3]), false);
    let mut tape = Tape::new();
    let mut rng = TensorRng::seed_from_u64(3);
    let xn = tape.param(x, &store);
    let pn = tape.param(p, &store);
    let gated = tape.st_bernoulli_gate(xn, pn, &mut rng);
    let loss = tape.sum_all(gated);
    store.zero_grads();
    tape.backward(loss, &mut store);
    let gp = store.grad(p);
    assert_eq!(gp.get(0, 0), 3.0);
    assert_eq!(gp.get(1, 0), 7.0);
}

#[test]
fn two_layer_gcn_end_to_end_grads() {
    // Full pipeline: Â (X W1) → ReLU → Â (· W2) → log-softmax → NLL.
    let adj = Rc::new(
        Csr::from_coo(
            4,
            4,
            &[
                (0, 1, 1.0),
                (1, 0, 1.0),
                (1, 2, 1.0),
                (2, 1, 1.0),
                (2, 3, 1.0),
                (3, 2, 1.0),
            ],
        )
        .gcn_normalize(),
    );
    let mut rng = TensorRng::seed_from_u64(16);
    let x = Rc::new(rng.uniform_tensor(4, 5, -1.0, 1.0));
    let mut store = ParamStore::new();
    let w1 = store.add("w1", rng.glorot_uniform(5, 4));
    let w2 = store.add("w2", rng.glorot_uniform(4, 3));
    let labels = Rc::new(vec![0usize, 1, 2, 1]);
    let idx = Rc::new(vec![0usize, 1, 3]);
    check(&mut store, move |t, s| {
        let xn = t.constant((*x).clone());
        let w1n = t.param(w1, s);
        let w2n = t.param(w2, s);
        let h0 = t.matmul(xn, w1n);
        let h0p = t.spmm(adj.clone(), h0);
        let h1 = t.relu(h0p);
        let h1w = t.matmul(h1, w2n);
        let h1p = t.spmm(adj.clone(), h1w);
        let lp = t.log_softmax(h1p);
        t.nll_masked(lp, labels.clone(), idx.clone())
    });
}

#[test]
fn constants_receive_no_gradient_work() {
    // Constant-only graphs backprop trivially (smoke test for the
    // needs_grad pruning).
    let mut store = ParamStore::new();
    let mut tape = Tape::new();
    let c = tape.constant(Tensor::ones(3, 3));
    let d = tape.mul(c, c);
    let loss = tape.mean_all(d);
    tape.backward(loss, &mut store);
    assert!(!tape.needs_grad(d));
}
