//! First-order optimizers. The paper trains everything with Adam plus an L2
//! regularization factor (§5.1.3); SGD is kept for tests and ablations.

use lasagne_tensor::Tensor;

use crate::{ParamId, ParamStore};

/// A gradient-descent update rule over a [`ParamStore`].
pub trait Optimizer {
    /// Apply one update using the currently-accumulated gradients.
    fn step(&mut self, store: &mut ParamStore);

    /// Learning rate currently in effect.
    fn learning_rate(&self) -> f32;

    /// Replace the learning rate (schedules, warm restarts).
    fn set_learning_rate(&mut self, lr: f32);
}

/// Plain stochastic gradient descent with optional L2 weight decay.
pub struct Sgd {
    lr: f32,
    weight_decay: f32,
}

impl Sgd {
    /// SGD with learning rate `lr` and L2 factor `weight_decay`.
    pub fn new(lr: f32, weight_decay: f32) -> Self {
        Sgd { lr, weight_decay }
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, store: &mut ParamStore) {
        for i in 0..store.len() {
            let id = ParamId(i);
            let decay = self.weight_decay * store.decay_factor(id);
            let mut update = store.grad(id).clone();
            if decay != 0.0 {
                update.add_scaled_assign(decay, store.value(id));
            }
            let lr = self.lr;
            store.value_mut(id).add_scaled_assign(-lr, &update);
        }
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }
}

/// Adam (Kingma & Ba) with L2 regularization folded into the gradient, the
/// same convention as `torch.optim.Adam(weight_decay=...)` that the paper's
/// PyTorch implementation used.
pub struct Adam {
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    weight_decay: f32,
    t: u64,
    m: Vec<Tensor>,
    v: Vec<Tensor>,
}

impl Adam {
    /// Adam with the usual β₁=0.9, β₂=0.999, ε=1e-8.
    pub fn new(store: &ParamStore, lr: f32, weight_decay: f32) -> Self {
        let m = store
            .iter()
            .map(|(_, t)| Tensor::zeros(t.rows(), t.cols()))
            .collect();
        let v = store
            .iter()
            .map(|(_, t)| Tensor::zeros(t.rows(), t.cols()))
            .collect();
        Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            weight_decay,
            t: 0,
            m,
            v,
        }
    }
}

/// A serializable snapshot of Adam's mutable state (step count plus first
/// and second moments). Crash-safe training checkpoints persist it so a
/// resumed run applies bit-identical updates; the divergence guardrail
/// restores it on rollback so a retried epoch replays exactly.
#[derive(Clone, Debug)]
pub struct AdamState {
    /// Steps taken so far (drives bias correction).
    pub t: u64,
    /// First-moment estimates, one per parameter.
    pub m: Vec<Tensor>,
    /// Second-moment estimates, one per parameter.
    pub v: Vec<Tensor>,
}

impl Adam {
    /// Snapshot the mutable state (see [`AdamState`]).
    pub fn state(&self) -> AdamState {
        AdamState { t: self.t, m: self.m.clone(), v: self.v.clone() }
    }

    /// Restore a snapshot taken with [`Adam::state`] (or deserialized from
    /// a checkpoint). The moment shapes must match the optimizer's.
    pub fn restore_state(&mut self, state: &AdamState) {
        assert_eq!(state.m.len(), self.m.len(), "Adam::restore_state: param count changed");
        assert_eq!(state.v.len(), self.v.len(), "Adam::restore_state: param count changed");
        for (ours, theirs) in self.m.iter().zip(&state.m).chain(self.v.iter().zip(&state.v)) {
            assert_eq!(ours.shape(), theirs.shape(), "Adam::restore_state: shape changed");
        }
        self.t = state.t;
        self.m.clone_from(&state.m);
        self.v.clone_from(&state.v);
    }
}

impl Optimizer for Adam {
    fn step(&mut self, store: &mut ParamStore) {
        assert_eq!(
            self.m.len(),
            store.len(),
            "Adam: store gained parameters after optimizer construction"
        );
        self.t += 1;
        let b1 = self.beta1;
        let b2 = self.beta2;
        let bc1 = 1.0 - b1.powi(self.t as i32);
        let bc2 = 1.0 - b2.powi(self.t as i32);
        for i in 0..store.len() {
            let id = ParamId(i);
            let decay = self.weight_decay * store.decay_factor(id);
            // g = grad + decay·w
            let mut g = store.grad(id).clone();
            if decay != 0.0 {
                g.add_scaled_assign(decay, store.value(id));
            }
            let m = &mut self.m[i];
            let v = &mut self.v[i];
            let lr = self.lr;
            let eps = self.eps;
            let w = store.value_mut(id);
            for ((wj, gj), (mj, vj)) in w
                .as_mut_slice()
                .iter_mut()
                .zip(g.as_slice())
                .zip(m.as_mut_slice().iter_mut().zip(v.as_mut_slice()))
            {
                *mj = b1 * *mj + (1.0 - b1) * gj;
                *vj = b2 * *vj + (1.0 - b2) * gj * gj;
                let mhat = *mj / bc1;
                let vhat = *vj / bc2;
                *wj -= lr * mhat / (vhat.sqrt() + eps);
            }
        }
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Tape;

    /// Minimize ‖w − target‖² and check convergence.
    fn quadratic_descent(mut opt: impl Optimizer, steps: usize) -> f32 {
        let mut store = ParamStore::new();
        let w = store.add("w", Tensor::full(2, 2, 5.0));
        let target = Tensor::full(2, 2, 1.0);
        for _ in 0..steps {
            let mut tape = Tape::new();
            let wn = tape.param(w, &store);
            let t = tape.constant(target.clone());
            let diff = tape.sub(wn, t);
            let sq = tape.mul(diff, diff);
            let loss = tape.mean_all(sq);
            store.zero_grads();
            tape.backward(loss, &mut store);
            opt.step(&mut store);
        }
        store.value(w).max_abs_diff(&target)
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let err = quadratic_descent(Sgd::new(0.5, 0.0), 100);
        assert!(err < 1e-3, "residual {err}");
    }

    #[test]
    fn adam_converges_on_quadratic() {
        let store = {
            let mut s = ParamStore::new();
            s.add("w", Tensor::full(2, 2, 5.0));
            s
        };
        let err = quadratic_descent(Adam::new(&store, 0.2, 0.0), 200);
        assert!(err < 1e-2, "residual {err}");
    }

    #[test]
    fn adam_state_round_trip_replays_identically() {
        // Two optimizers over identical stores; snapshot one mid-descent,
        // push it further, restore — both must then take bitwise-equal steps.
        let mut store = ParamStore::new();
        let w = store.add("w", Tensor::full(2, 2, 5.0));
        let mut opt = Adam::new(&store, 0.1, 0.0);
        let mut do_step = |store: &mut ParamStore, opt: &mut Adam| {
            store.zero_grads();
            store.accumulate_grad(w, &Tensor::full(2, 2, 1.0));
            opt.step(store);
        };
        for _ in 0..3 {
            do_step(&mut store, &mut opt);
        }
        let saved_state = opt.state();
        let saved_params = store.snapshot();
        assert_eq!(saved_state.t, 3);
        for _ in 0..4 {
            do_step(&mut store, &mut opt);
        }
        let diverged = store.value(w).clone();
        opt.restore_state(&saved_state);
        store.restore(&saved_params);
        do_step(&mut store, &mut opt);
        let replay_once = store.value(w).clone();
        assert_ne!(replay_once, diverged);
        // Replaying from the same state twice is exact.
        opt.restore_state(&saved_state);
        store.restore(&saved_params);
        do_step(&mut store, &mut opt);
        assert_eq!(store.value(w), &replay_once);
    }

    #[test]
    #[should_panic(expected = "param count changed")]
    fn adam_state_rejects_mismatched_store() {
        let mut small = ParamStore::new();
        small.add("w", Tensor::zeros(1, 1));
        let mut big = ParamStore::new();
        big.add("a", Tensor::zeros(1, 1));
        big.add("b", Tensor::zeros(1, 1));
        let mut opt = Adam::new(&small, 0.1, 0.0);
        opt.restore_state(&Adam::new(&big, 0.1, 0.0).state());
    }

    #[test]
    fn weight_decay_shrinks_params() {
        // Zero gradients + pure decay ⇒ exponential shrink toward 0.
        let mut store = ParamStore::new();
        let w = store.add("w", Tensor::full(1, 1, 2.0));
        let mut opt = Sgd::new(0.1, 1.0);
        for _ in 0..10 {
            store.zero_grads();
            opt.step(&mut store);
        }
        let v = store.value(w).get(0, 0);
        assert!((v - 2.0 * 0.9f32.powi(10)).abs() < 1e-5);
    }

    #[test]
    fn decay_mask_exempts_parameters() {
        let mut store = ParamStore::new();
        let c = store.add_with_decay("c", Tensor::full(1, 1, 2.0), false);
        let mut opt = Sgd::new(0.1, 1.0);
        store.zero_grads();
        opt.step(&mut store);
        assert_eq!(store.value(c).get(0, 0), 2.0);
    }

    #[test]
    fn lr_accessors() {
        let mut o = Sgd::new(0.1, 0.0);
        assert_eq!(o.learning_rate(), 0.1);
        o.set_learning_rate(0.01);
        assert_eq!(o.learning_rate(), 0.01);
    }
}
