//! Trainable parameter storage, shared across tapes.
//!
//! A [`ParamStore`] owns parameter values and their gradient accumulators;
//! tapes copy values in at [`crate::Tape::param`] time and scatter gradients
//! back during [`crate::Tape::backward`]. Optimizers mutate the store.

use std::fmt;

use lasagne_tensor::Tensor;

/// Typed failure when interrogating a model's parameter set by name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ModelError {
    /// No parameter registered under this name — usually a model/checkpoint
    /// mismatch (different architecture, depth, or naming scheme).
    MissingParam(String),
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::MissingParam(name) => {
                write!(f, "no parameter named '{name}' in this model's store")
            }
        }
    }
}

impl std::error::Error for ModelError {}

/// Handle to one parameter tensor inside a [`ParamStore`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ParamId(pub(crate) usize);

impl ParamId {
    /// The raw index (stable for the life of the store).
    pub fn index(self) -> usize {
        self.0
    }

    /// Rebuild a handle from a raw index (checkpoint loading; the caller is
    /// responsible for pairing it with the right store).
    pub fn from_index(index: usize) -> ParamId {
        ParamId(index)
    }
}

/// Owns all trainable tensors of a model plus one gradient buffer each.
#[derive(Default)]
pub struct ParamStore {
    names: Vec<String>,
    values: Vec<Tensor>,
    grads: Vec<Tensor>,
    /// Per-parameter L2 multiplier (1.0 = regularize, 0.0 = exempt); the
    /// paper applies weight decay to weight matrices but models may exempt
    /// e.g. per-node aggregation coefficients.
    decay_mask: Vec<f32>,
}

impl ParamStore {
    /// Empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a trainable tensor (L2-regularized by default).
    pub fn add(&mut self, name: impl Into<String>, value: Tensor) -> ParamId {
        self.add_with_decay(name, value, true)
    }

    /// Register a tensor, choosing whether weight decay applies to it.
    pub fn add_with_decay(
        &mut self,
        name: impl Into<String>,
        value: Tensor,
        decay: bool,
    ) -> ParamId {
        let id = ParamId(self.values.len());
        self.grads.push(Tensor::zeros(value.rows(), value.cols()));
        self.values.push(value);
        self.names.push(name.into());
        self.decay_mask.push(if decay { 1.0 } else { 0.0 });
        id
    }

    /// Current value of a parameter.
    pub fn value(&self, id: ParamId) -> &Tensor {
        &self.values[id.0]
    }

    /// Mutable value (used by optimizers and manual surgery in tests).
    pub fn value_mut(&mut self, id: ParamId) -> &mut Tensor {
        &mut self.values[id.0]
    }

    /// Accumulated gradient of a parameter.
    pub fn grad(&self, id: ParamId) -> &Tensor {
        &self.grads[id.0]
    }

    /// Mutable gradient buffer (in-place clipping, fault injection in
    /// robustness tests).
    pub fn grad_mut(&mut self, id: ParamId) -> &mut Tensor {
        &mut self.grads[id.0]
    }

    /// Accumulate `delta` into the gradient buffer of `id`.
    pub fn accumulate_grad(&mut self, id: ParamId, delta: &Tensor) {
        self.grads[id.0].add_assign(delta);
    }

    /// Name the parameter was registered under.
    pub fn name(&self, id: ParamId) -> &str {
        &self.names[id.0]
    }

    /// Whether weight decay applies to this parameter (1.0 or 0.0).
    pub fn decay_factor(&self, id: ParamId) -> f32 {
        self.decay_mask[id.0]
    }

    /// Number of registered tensors.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True when nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Total scalar parameter count (the paper's efficiency discussion is in
    /// these terms).
    pub fn num_scalars(&self) -> usize {
        self.values.iter().map(Tensor::len).sum()
    }

    /// Reset every gradient buffer to zero (call once per step).
    pub fn zero_grads(&mut self) {
        for g in &mut self.grads {
            g.fill(0.0);
        }
    }

    /// Copy all parameter values (early-stopping checkpoints).
    pub fn snapshot(&self) -> Vec<Tensor> {
        self.values.clone()
    }

    /// Restore values from a [`ParamStore::snapshot`].
    pub fn restore(&mut self, snapshot: &[Tensor]) {
        assert_eq!(snapshot.len(), self.values.len(), "restore: param count changed");
        for (v, s) in self.values.iter_mut().zip(snapshot) {
            assert_eq!(v.shape(), s.shape(), "restore: shape changed");
            v.clone_from(s);
        }
    }

    /// True if any accumulated gradient contains NaN/±Inf. Early-exits on
    /// the first poisoned tensor — the divergence guardrail calls this every
    /// optimization step, so the all-finite fast path matters.
    pub fn grads_non_finite(&self) -> bool {
        self.grads.iter().any(Tensor::has_non_finite)
    }

    /// True if any parameter value contains NaN/±Inf (a blown-up update).
    pub fn values_non_finite(&self) -> bool {
        self.values.iter().any(Tensor::has_non_finite)
    }

    /// Global L2 norm of all gradients taken together (the quantity
    /// [`crate::clip_grad_norm`] bounds).
    pub fn grad_global_norm(&self) -> f32 {
        self.grads
            .iter()
            .map(|g| g.as_slice().iter().map(|v| v * v).sum::<f32>())
            .sum::<f32>()
            .sqrt()
    }

    /// Look up a parameter by its registered name.
    pub fn find(&self, name: &str) -> Option<ParamId> {
        self.names.iter().position(|n| n == name).map(ParamId)
    }

    /// Like [`ParamStore::find`], but a missing name is a typed error that
    /// carries the name — callers binding checkpoints or frozen models get a
    /// diagnosable failure instead of a bare `unwrap` panic.
    pub fn require(&self, name: &str) -> Result<ParamId, ModelError> {
        self.find(name)
            .ok_or_else(|| ModelError::MissingParam(name.to_string()))
    }

    /// Iterate over `(id, value)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (ParamId, &Tensor)> {
        self.values.iter().enumerate().map(|(i, t)| (ParamId(i), t))
    }

    /// Sum of squared Frobenius norms of decayed parameters — the explicit
    /// L2 term if a caller wants the loss value to include it.
    pub fn l2_penalty(&self) -> f32 {
        self.values
            .iter()
            .zip(&self.decay_mask)
            .map(|(v, &m)| m * v.as_slice().iter().map(|x| x * x).sum::<f32>())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_lookup() {
        let mut s = ParamStore::new();
        let a = s.add("w1", Tensor::ones(2, 3));
        let b = s.add_with_decay("c", Tensor::zeros(4, 1), false);
        assert_eq!(s.len(), 2);
        assert_eq!(s.num_scalars(), 10);
        assert_eq!(s.name(a), "w1");
        assert_eq!(s.decay_factor(a), 1.0);
        assert_eq!(s.decay_factor(b), 0.0);
        assert_eq!(s.value(b).shape(), (4, 1));
    }

    #[test]
    fn require_is_find_with_a_typed_error() {
        let mut s = ParamStore::new();
        let a = s.add("w1", Tensor::ones(2, 3));
        assert_eq!(s.require("w1"), Ok(a));
        let err = s.require("nope").unwrap_err();
        assert_eq!(err, ModelError::MissingParam("nope".into()));
        assert!(err.to_string().contains("'nope'"), "{err}");
    }

    #[test]
    fn grads_accumulate_and_reset() {
        let mut s = ParamStore::new();
        let a = s.add("w", Tensor::ones(2, 2));
        s.accumulate_grad(a, &Tensor::full(2, 2, 0.5));
        s.accumulate_grad(a, &Tensor::full(2, 2, 0.25));
        assert_eq!(s.grad(a), &Tensor::full(2, 2, 0.75));
        s.zero_grads();
        assert_eq!(s.grad(a), &Tensor::zeros(2, 2));
    }

    #[test]
    fn non_finite_detection_covers_grads_and_values() {
        let mut s = ParamStore::new();
        let a = s.add("w", Tensor::ones(2, 2));
        assert!(!s.grads_non_finite());
        assert!(!s.values_non_finite());
        s.grad_mut(a).set(1, 1, f32::NAN);
        assert!(s.grads_non_finite());
        s.zero_grads();
        assert!(!s.grads_non_finite());
        s.value_mut(a).set(0, 0, f32::INFINITY);
        assert!(s.values_non_finite());
    }

    #[test]
    fn grad_global_norm_spans_params() {
        let mut s = ParamStore::new();
        let a = s.add("a", Tensor::zeros(1, 1));
        let b = s.add("b", Tensor::zeros(1, 1));
        s.accumulate_grad(a, &Tensor::full(1, 1, 3.0));
        s.accumulate_grad(b, &Tensor::full(1, 1, 4.0));
        assert!((s.grad_global_norm() - 5.0).abs() < 1e-6);
    }

    #[test]
    fn l2_penalty_respects_mask() {
        let mut s = ParamStore::new();
        s.add("w", Tensor::full(1, 2, 2.0)); // contributes 8
        s.add_with_decay("c", Tensor::full(1, 2, 3.0), false); // exempt
        assert_eq!(s.l2_penalty(), 8.0);
    }
}
