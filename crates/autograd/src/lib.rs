//! Tape-based reverse-mode automatic differentiation.
//!
//! Every model in this reproduction — the Lasagne architecture and all the
//! baselines it is compared against — is trained by building a fresh
//! computation [`Tape`] per forward pass (define-by-run, so stochastic
//! structure like dropout masks, DropEdge graphs and Lasagne's Bernoulli
//! layer gates is naturally supported), calling [`Tape::backward`], and
//! applying an optimizer to the [`ParamStore`].
//!
//! The op set is exactly what the paper's math needs: dense/sparse matrix
//! products (Eq 1–2), broadcasts for the node-aware coefficients `C(l)`
//! (Eq 5), element-wise max over stacked layers (§4.1.2), straight-through
//! Bernoulli gates (Eq 6), the log-softmax + masked cross-entropy objective
//! (Eq 3), and a CSR attention aggregation for the GAT baseline.
//!
//! # Example
//! ```
//! use lasagne_autograd::{ParamStore, Tape, Adam, Optimizer};
//! use lasagne_tensor::{Tensor, TensorRng};
//!
//! let mut rng = TensorRng::seed_from_u64(0);
//! let mut store = ParamStore::new();
//! let w = store.add("w", rng.glorot_uniform(3, 2));
//! let x = rng.uniform_tensor(8, 3, -1.0, 1.0); // full-rank design matrix
//!
//! let initial_norm = store.value(w).frobenius_norm();
//! let mut opt = Adam::new(&store, 0.05, 0.0);
//! for _ in 0..50 {
//!     let mut tape = Tape::new();
//!     let xn = tape.constant(x.clone());
//!     let wn = tape.param(w, &store);
//!     let y = tape.matmul(xn, wn);
//!     let sq = tape.mul(y, y);
//!     let loss = tape.mean_all(sq);
//!     store.zero_grads();
//!     tape.backward(loss, &mut store);
//!     opt.step(&mut store);
//! }
//! // Minimizing ‖X·W‖² drives W toward zero.
//! assert!(store.value(w).frobenius_norm() < 0.5 * initial_norm);
//! ```

mod backward;
mod export;
mod gradcheck;
mod ops_basic;
mod ops_graph;
mod ops_nn;
mod optim;
mod params;
mod peval;
mod schedule;
mod tape;

pub use export::{ExportError, Program, ProgramOp};
pub use peval::{eval_partitions, evaluate_program_partitioned, PevalError, RowPlan};
pub use gradcheck::{grad_check, grad_check_owner, GradCheckReport};
pub use ops_graph::{gat_attention, GatForward};
pub use optim::{Adam, AdamState, Optimizer, Sgd};
pub use schedule::{clip_grad_norm, ConstantLr, LinearWarmup, LrSchedule, StepDecay};
pub use params::{ModelError, ParamId, ParamStore};
pub use tape::{NodeId, Tape};
