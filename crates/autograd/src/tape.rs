//! The computation tape: a flat arena of nodes recorded during the forward
//! pass and replayed in reverse by [`Tape::backward`].

use std::rc::Rc;

use lasagne_sparse::Csr;
use lasagne_tensor::Tensor;

use crate::{ParamId, ParamStore};

/// Handle to a value recorded on a [`Tape`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NodeId(pub(crate) usize);

/// Every differentiable operation the stack needs. Data captured at record
/// time (dropout masks, attention coefficients, argmax indices) lives inside
/// the variant so backward is a pure function of the tape.
pub(crate) enum Op {
    /// Non-trainable input (features, precomputed propagations).
    Constant,
    /// Leaf backed by a [`ParamStore`] entry; backward scatters into it.
    Param(ParamId),
    MatMul(NodeId, NodeId),
    /// Sparse · dense with a fixed (non-differentiable) sparse operand.
    SpMM { m: Rc<Csr>, x: NodeId },
    Add(NodeId, NodeId),
    Sub(NodeId, NodeId),
    Mul(NodeId, NodeId),
    Div(NodeId, NodeId),
    Scale(NodeId, f32),
    AddConst(NodeId, f32),
    /// Element-wise `(x + eps)^p` (eps keeps fractional powers away from 0).
    Pow { x: NodeId, p: f32, eps: f32 },
    /// Element-wise `e^x`.
    Exp(NodeId),
    Relu(NodeId),
    LeakyRelu(NodeId, f32),
    Sigmoid(NodeId),
    Tanh(NodeId),
    /// Inverted dropout; the sampled mask (entries 0 or 1/keep) is captured.
    Dropout { x: NodeId, mask: Tensor },
    /// `x (N×D) + b (1×D)` broadcast over rows.
    AddRowBroadcast(NodeId, NodeId),
    /// `x (N×D) + c (N×1)` broadcast over columns.
    AddColBroadcast(NodeId, NodeId),
    /// `x (N×D) ⊙ c (N×1)` broadcast over columns — the `C(l)[:,i] ⊗ H(i)`
    /// operation of Eq (5).
    MulColBroadcast(NodeId, NodeId),
    /// `x (N×D) * s (1×1)` with a *node* scalar (differentiable scale).
    MulScalarNode(NodeId, NodeId),
    LogSoftmax(NodeId),
    ConcatCols(Vec<NodeId>),
    SliceCols { x: NodeId, lo: usize, hi: usize },
    GatherRows { x: NodeId, idx: Rc<Vec<usize>> },
    SumAll(NodeId),
    /// Column sums: `N×D → 1×D`.
    SumRows(NodeId),
    /// Row sums: `N×D → N×1`.
    SumCols(NodeId),
    /// Element-wise max over same-shaped parts; winners recorded for backward
    /// (the Max-Pooling aggregator of §4.1.2).
    MaxStack { parts: Vec<NodeId>, argmax: Vec<u32> },
    /// Straight-through Bernoulli column gate (Eq 6): forward multiplies by
    /// the sampled 0/1 mask, backward routes the gate gradient to the
    /// probability node as if the mask had been the probability itself.
    StMulCol { x: NodeId, p: NodeId, mask: Tensor },
    /// Mean negative log-likelihood over the labeled subset (Eq 3).
    NllMasked {
        logp: NodeId,
        labels: Rc<Vec<usize>>,
        idx: Rc<Vec<usize>>,
    },
    /// GAT neighborhood attention over a fixed CSR structure; the attention
    /// coefficients and LeakyReLU slopes at record time are captured.
    GatAggregate {
        adj: Rc<Csr>,
        z: NodeId,
        ssrc: NodeId,
        sdst: NodeId,
        slope: f32,
        alpha: Vec<f32>,
        dleaky: Vec<f32>,
    },
}

pub(crate) struct Node {
    pub value: Tensor,
    pub op: Op,
    pub needs_grad: bool,
}

/// A define-by-run computation graph. Build one per forward pass.
#[derive(Default)]
pub struct Tape {
    pub(crate) nodes: Vec<Node>,
}

impl Tape {
    /// Fresh empty tape.
    pub fn new() -> Self {
        Tape { nodes: Vec::with_capacity(64) }
    }

    /// Number of recorded nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The forward value of a node.
    pub fn value(&self, id: NodeId) -> &Tensor {
        &self.nodes[id.0].value
    }

    /// Whether gradients flow through this node.
    pub fn needs_grad(&self, id: NodeId) -> bool {
        self.nodes[id.0].needs_grad
    }

    pub(crate) fn push(&mut self, value: Tensor, op: Op, needs_grad: bool) -> NodeId {
        let id = NodeId(self.nodes.len());
        self.nodes.push(Node { value, op, needs_grad });
        id
    }

    /// Record a non-trainable input.
    pub fn constant(&mut self, value: Tensor) -> NodeId {
        self.push(value, Op::Constant, false)
    }

    /// Record a trainable parameter leaf (value copied from the store).
    pub fn param(&mut self, id: ParamId, store: &ParamStore) -> NodeId {
        self.push(store.value(id).clone(), Op::Param(id), true)
    }
}
