//! Record-time constructors for the dense algebra ops.

use std::rc::Rc;

use lasagne_tensor::Tensor;

use crate::tape::{NodeId, Op, Tape};

impl Tape {
    fn needs2(&self, a: NodeId, b: NodeId) -> bool {
        self.needs_grad(a) || self.needs_grad(b)
    }

    /// `a · b`.
    pub fn matmul(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let v = self.value(a).matmul(self.value(b));
        let needs = self.needs2(a, b);
        self.push(v, Op::MatMul(a, b), needs)
    }

    /// `a + b` (same shape).
    pub fn add(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let v = self.value(a).add(self.value(b));
        let needs = self.needs2(a, b);
        self.push(v, Op::Add(a, b), needs)
    }

    /// `a - b` (same shape).
    pub fn sub(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let v = self.value(a).sub(self.value(b));
        let needs = self.needs2(a, b);
        self.push(v, Op::Sub(a, b), needs)
    }

    /// Hadamard product `a ⊙ b`.
    pub fn mul(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let v = self.value(a).mul(self.value(b));
        let needs = self.needs2(a, b);
        self.push(v, Op::Mul(a, b), needs)
    }

    /// Element-wise `a / b` (b must be non-zero where it matters).
    pub fn div(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let v = self.value(a).div(self.value(b));
        let needs = self.needs2(a, b);
        self.push(v, Op::Div(a, b), needs)
    }

    /// `alpha * x`.
    pub fn scale(&mut self, x: NodeId, alpha: f32) -> NodeId {
        let v = self.value(x).scale(alpha);
        let needs = self.needs_grad(x);
        self.push(v, Op::Scale(x, alpha), needs)
    }

    /// `x + c` element-wise, constant `c`.
    pub fn add_const(&mut self, x: NodeId, c: f32) -> NodeId {
        let v = self.value(x).add_scalar(c);
        let needs = self.needs_grad(x);
        self.push(v, Op::AddConst(x, c), needs)
    }

    /// Element-wise `(x + eps)^p`. Use `eps > 0` for fractional/negative `p`.
    pub fn pow(&mut self, x: NodeId, p: f32, eps: f32) -> NodeId {
        let v = self.value(x).map(|t| (t + eps).powf(p));
        let needs = self.needs_grad(x);
        self.push(v, Op::Pow { x, p, eps }, needs)
    }

    /// `x * s` where `s` is a differentiable `1×1` node.
    pub fn mul_scalar_node(&mut self, x: NodeId, s: NodeId) -> NodeId {
        assert_eq!(self.value(s).shape(), (1, 1), "mul_scalar_node: s must be 1x1");
        let sv = self.value(s).get(0, 0);
        let v = self.value(x).scale(sv);
        let needs = self.needs2(x, s);
        self.push(v, Op::MulScalarNode(x, s), needs)
    }

    /// Concatenate nodes side by side.
    pub fn concat_cols(&mut self, parts: &[NodeId]) -> NodeId {
        let tensors: Vec<&Tensor> = parts.iter().map(|&p| self.value(p)).collect();
        let v = Tensor::concat_cols(&tensors);
        let needs = parts.iter().any(|&p| self.needs_grad(p));
        self.push(v, Op::ConcatCols(parts.to_vec()), needs)
    }

    /// Columns `[lo, hi)` of `x`.
    pub fn slice_cols(&mut self, x: NodeId, lo: usize, hi: usize) -> NodeId {
        let v = self.value(x).slice_cols(lo, hi);
        let needs = self.needs_grad(x);
        self.push(v, Op::SliceCols { x, lo, hi }, needs)
    }

    /// Gather rows of `x` in the given order (duplicates allowed).
    pub fn gather_rows(&mut self, x: NodeId, idx: Rc<Vec<usize>>) -> NodeId {
        let v = self.value(x).gather_rows(&idx);
        let needs = self.needs_grad(x);
        self.push(v, Op::GatherRows { x, idx }, needs)
    }

    /// Sum of all elements, as a `1×1` node.
    pub fn sum_all(&mut self, x: NodeId) -> NodeId {
        let v = Tensor::full(1, 1, self.value(x).sum());
        let needs = self.needs_grad(x);
        self.push(v, Op::SumAll(x), needs)
    }

    /// Mean of all elements, as a `1×1` node.
    pub fn mean_all(&mut self, x: NodeId) -> NodeId {
        let n = self.value(x).len() as f32;
        let s = self.sum_all(x);
        self.scale(s, 1.0 / n)
    }

    /// Column sums: `N×D → 1×D`.
    pub fn sum_rows(&mut self, x: NodeId) -> NodeId {
        let v = self.value(x).sum_rows();
        let needs = self.needs_grad(x);
        self.push(v, Op::SumRows(x), needs)
    }

    /// Row sums: `N×D → N×1`.
    pub fn sum_cols(&mut self, x: NodeId) -> NodeId {
        let v = self.value(x).sum_cols();
        let needs = self.needs_grad(x);
        self.push(v, Op::SumCols(x), needs)
    }
}
